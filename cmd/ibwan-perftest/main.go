// Command ibwan-perftest runs verbs-level performance tests across the
// simulated IB WAN testbed, in the spirit of the OFED perftest suite
// (ib_send_lat, ib_send_bw, ...).
//
// Usage:
//
//	ibwan-perftest -test lat|wlat|bw|bibw [-transport rc|ud] [-delay us]
//	               [-size bytes] [-count n] [-window msgs]
//
// Examples:
//
//	ibwan-perftest -test lat -transport rc -delay 1000
//	ibwan-perftest -test bw -size 65536 -delay 1000 -window 8
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/ib"
	"repro/internal/perftest"
	"repro/internal/sim"
)

func main() {
	test := flag.String("test", "lat", "test: lat, wlat (RDMA write latency), bw, bibw")
	transport := flag.String("transport", "rc", "transport: rc or ud")
	delay := flag.Float64("delay", 0, "one-way WAN delay in microseconds")
	size := flag.Int("size", 8, "message size in bytes")
	count := flag.Int("count", 1000, "messages per bandwidth measurement")
	iters := flag.Int("iters", 1000, "iterations per latency measurement")
	window := flag.Int("window", 0, "RC in-flight message window (0 = default)")
	trace := flag.String("trace", "", "write a JSONL packet trace to this file")
	flag.Parse()

	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(*delay)})
	a, b := tb.A[0].HCA, tb.B[0].HCA
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibwan-perftest: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		defer w.Flush()
		a.Fabric().SetTracer(ib.JSONLTracer(w))
	}
	tr := ib.RC
	if *transport == "ud" {
		tr = ib.UD
	}

	switch *test {
	case "lat":
		lat := perftest.SendLatency(env, a, b, tr, *size, *iters)
		fmt.Printf("send/recv %s latency, %d bytes, delay %.0fus: %.2f us\n",
			tr, *size, *delay, lat.Microseconds())
	case "wlat":
		lat := perftest.WriteLatency(env, a, b, *size, *iters)
		fmt.Printf("RDMA write latency, %d bytes, delay %.0fus: %.2f us\n",
			*size, *delay, lat.Microseconds())
	case "bw":
		var bw float64
		if tr == ib.UD {
			bw = perftest.BandwidthUD(env, a, b, *size, *count)
		} else {
			bw = perftest.BandwidthRC(env, a, b, *size, *count, *window)
		}
		fmt.Printf("%s bandwidth, %d bytes, delay %.0fus: %.1f MillionBytes/s\n",
			tr, *size, *delay, bw)
	case "bibw":
		var bw float64
		if tr == ib.UD {
			bw = perftest.BiBandwidthUD(env, a, b, *size, *count)
		} else {
			bw = perftest.BiBandwidthRC(env, a, b, *size, *count, *window)
		}
		fmt.Printf("%s bidirectional bandwidth, %d bytes, delay %.0fus: %.1f MillionBytes/s\n",
			tr, *size, *delay, bw)
	default:
		fmt.Fprintf(os.Stderr, "ibwan-perftest: unknown test %q\n", *test)
		os.Exit(2)
	}
}
