// Command ibwan-mpi runs OSU-microbenchmark-style MPI measurements across
// the simulated IB WAN testbed.
//
// Usage:
//
//	ibwan-mpi -bench latency|bw|bibw|mr|bcast [-delay us] [-size bytes]
//	          [-threshold bytes] [-pairs n] [-nodes n] [-ppn n] [-hier]
//	          [-autotune]
//
// Examples:
//
//	ibwan-mpi -bench bw -size 16384 -delay 1000
//	ibwan-mpi -bench bw -size 16384 -delay 1000 -threshold 65536
//	ibwan-mpi -bench bw -size 16384 -delay 1000 -autotune
//	ibwan-mpi -bench bcast -size 131072 -delay 1000 -hier -nodes 32 -ppn 2
//	ibwan-mpi -bench mr -pairs 16 -size 1024 -delay 10000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func main() {
	bench := flag.String("bench", "latency", "benchmark: latency, bw, bibw, mr, bcast")
	delay := flag.Float64("delay", 0, "one-way WAN delay in microseconds")
	size := flag.Int("size", 8, "message size in bytes")
	iters := flag.Int("iters", 10, "iterations")
	threshold := flag.Int("threshold", 0, "eager/rendezvous threshold (0 = default 8K)")
	autotune := flag.Bool("autotune", false, "probe the link and set the threshold adaptively")
	pairs := flag.Int("pairs", 4, "communicating pairs for -bench mr")
	nodes := flag.Int("nodes", 32, "nodes per cluster for -bench bcast")
	ppn := flag.Int("ppn", 2, "processes per node for -bench bcast")
	hier := flag.Bool("hier", false, "use the WAN-aware hierarchical broadcast")
	flag.Parse()

	d := sim.Micros(*delay)
	cfg := mpi.Config{EagerThreshold: *threshold}

	switch *bench {
	case "latency", "bw", "bibw":
		env := sim.NewEnv()
		tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: d})
		if *autotune {
			cfg = core.AutoTune(env, tb.A[0], tb.B[0])
			fmt.Printf("autotuned eager threshold: %d bytes\n", cfg.EagerThreshold)
		}
		w := mpi.NewWorld(env, []*cluster.Node{tb.A[0], tb.B[0]}, cfg)
		switch *bench {
		case "latency":
			fmt.Printf("MPI latency, %d bytes, delay %.0fus: %.2f us\n",
				*size, *delay, mpi.Latency(w, *size, *iters).Microseconds())
		case "bw":
			fmt.Printf("MPI bandwidth, %d bytes, delay %.0fus, threshold %d: %.1f MillionBytes/s\n",
				*size, *delay, w.Config().EagerThreshold, mpi.Bandwidth(w, *size, *iters))
		case "bibw":
			fmt.Printf("MPI bidirectional bandwidth, %d bytes, delay %.0fus: %.1f MillionBytes/s\n",
				*size, *delay, mpi.BiBandwidth(w, *size, *iters))
		}
	case "mr":
		env := sim.NewEnv()
		tb := cluster.New(env, cluster.Config{NodesA: *pairs, NodesB: *pairs, Delay: d})
		var placement []*cluster.Node
		placement = append(placement, tb.A...)
		placement = append(placement, tb.B...)
		w := mpi.NewWorld(env, placement, cfg)
		fmt.Printf("MPI message rate, %d pairs, %d bytes, delay %.0fus: %.3f Million msgs/s\n",
			*pairs, *size, *delay, mpi.MessageRate(w, *pairs, *size, *iters))
	case "bcast":
		env := sim.NewEnv()
		tb := cluster.New(env, cluster.Config{NodesA: *nodes, NodesB: *nodes, Delay: d})
		placement := mpi.BlockPlacement(tb.Nodes(), *ppn)
		w := mpi.NewWorld(env, placement, cfg)
		kind := "original"
		if *hier {
			kind = "hierarchical"
		}
		fmt.Printf("MPI %s bcast latency, %d procs, %d bytes, delay %.0fus: %.2f us\n",
			kind, len(placement), *size, *delay,
			mpi.BcastLatency(w, *size, *iters, *hier).Microseconds())
	default:
		fmt.Fprintf(os.Stderr, "ibwan-mpi: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
}
