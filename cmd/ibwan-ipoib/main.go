// Command ibwan-ipoib measures socket-stream throughput across the
// simulated IB WAN testbed, iperf-style, over TCP/IPoIB or SDP.
//
// Usage:
//
//	ibwan-ipoib [-mode ud|rc|sdp] [-mtu bytes] [-window bytes] [-streams n]
//	            [-delay us] [-ms virtual-milliseconds]
//
// Examples:
//
//	ibwan-ipoib -mode ud -delay 1000 -streams 8
//	ibwan-ipoib -mode rc -mtu 65532 -delay 100
//	ibwan-ipoib -mode sdp -delay 100
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/ipoib"
	"repro/internal/sdp"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

func main() {
	mode := flag.String("mode", "ud", "transport: ud (IPoIB datagram), rc (IPoIB connected) or sdp")
	mtu := flag.Int("mtu", 0, "IP MTU (0 = mode default: 2044 for ud, 65532 for rc)")
	window := flag.Int("window", 0, "TCP window in bytes (0 = auto-tuned default)")
	streams := flag.Int("streams", 1, "parallel TCP connections")
	delay := flag.Float64("delay", 0, "one-way WAN delay in microseconds")
	ms := flag.Int("ms", 100, "measurement duration in virtual milliseconds")
	flag.Parse()

	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(*delay)})
	if *mode == "sdp" {
		runSDP(env, tb, *streams, *delay, *ms)
		return
	}
	m := ipoib.Datagram
	if *mode == "rc" {
		m = ipoib.Connected
	} else if *mode != "ud" {
		fmt.Fprintf(os.Stderr, "ibwan-ipoib: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	net := ipoib.NewNetwork()
	da := net.Attach(tb.A[0].HCA, m, *mtu)
	db := net.Attach(tb.B[0].HCA, m, *mtu)
	sa := tcpsim.NewStack(da, tcpsim.Config{Window: *window})
	sb := tcpsim.NewStack(db, tcpsim.Config{Window: *window})

	dur := sim.Time(*ms)*sim.Millisecond + 60*sim.Micros(*delay)
	for i := 0; i < *streams; i++ {
		port := 5000 + i
		ln := sb.Listen(port)
		env.Go("srv", func(p *sim.Proc) { ln.Accept(p) })
		env.Go("cli", func(p *sim.Proc) {
			c, err := sa.Dial(p, sb.Addr(), port)
			if err != nil {
				panic(err)
			}
			for {
				if err := c.WriteSynthetic(p, 2<<20); err != nil {
					panic(err)
				}
			}
		})
	}
	env.RunUntil(dur / 2)
	mid := sb.Stats().RxBytes
	env.RunUntil(dur)
	bw := float64(sb.Stats().RxBytes-mid) / (dur / 2).Seconds() / 1e6
	env.Shutdown()
	fmt.Printf("IPoIB-%s throughput: %d stream(s), window %d, MTU %d, delay %.0fus: %.1f MillionBytes/s\n",
		m, *streams, sa.Window(), da.MTU(), *delay, bw)
}

// runSDP measures SDP stream throughput on the same testbed.
func runSDP(env *sim.Env, tb *cluster.Testbed, streams int, delay float64, ms int) {
	dur := sim.Time(ms)*sim.Millisecond + 60*sim.Micros(delay)
	conns := make([]*sdp.Conn, 0, streams)
	for i := 0; i < streams; i++ {
		port := 5000 + i
		ln := sdp.Listen(tb.B[0], port)
		env.Go("srv", func(p *sim.Proc) { conns = append(conns, ln.Accept(p)) })
		env.Go("cli", func(p *sim.Proc) {
			c := sdp.Dial(p, tb.A[0], tb.B[0], port)
			for {
				c.WriteSynthetic(p, 1<<20)
			}
		})
	}
	env.RunUntil(dur / 2)
	var mid int64
	for _, c := range conns {
		mid += c.Delivered()
	}
	env.RunUntil(dur)
	var end int64
	for _, c := range conns {
		end += c.Delivered()
	}
	env.Shutdown()
	bw := float64(end-mid) / (dur / 2).Seconds() / 1e6
	fmt.Printf("SDP throughput: %d stream(s), delay %.0fus: %.1f MillionBytes/s\n", streams, delay, bw)
}
