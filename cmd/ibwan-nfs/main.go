// Command ibwan-nfs measures NFS throughput across the simulated IB WAN
// testbed with an IOzone-style workload.
//
// Usage:
//
//	ibwan-nfs [-transport rdma|tcp-rc|tcp-ud] [-threads n] [-delay us]
//	          [-filemb n] [-record bytes] [-write] [-lan]
//
// Examples:
//
//	ibwan-nfs -transport rdma -threads 8 -delay 100
//	ibwan-nfs -transport tcp-rc -threads 8 -delay 1000
//	ibwan-nfs -transport rdma -lan          # same-cluster DDR baseline
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/ipoib"
	"repro/internal/nfs"
	"repro/internal/sim"
)

func main() {
	transport := flag.String("transport", "rdma", "transport: rdma, tcp-rc or tcp-ud")
	threads := flag.Int("threads", 1, "IOzone client threads")
	delay := flag.Float64("delay", 0, "one-way WAN delay in microseconds")
	fileMB := flag.Int("filemb", 512, "file size in MB")
	record := flag.Int("record", 256<<10, "record size in bytes")
	writeMode := flag.Bool("write", false, "measure writes instead of reads")
	lan := flag.Bool("lan", false, "mount within one cluster (DDR, no Longbows)")
	flag.Parse()

	env := sim.NewEnv()
	var server, client *cluster.Node
	if *lan {
		tb := cluster.New(env, cluster.Config{NodesA: 2, NodesB: 1})
		server, client = tb.A[1], tb.A[0]
	} else {
		tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(*delay)})
		server, client = tb.B[0], tb.A[0]
	}

	var srv *nfs.Server
	var cl *nfs.Client
	var mountErr error
	switch *transport {
	case "rdma":
		srv, cl = nfs.MountRDMA(server, client)
	case "tcp-rc":
		srv, cl, mountErr = nfs.MountTCP(env, server, client, ipoib.Connected)
	case "tcp-ud":
		srv, cl, mountErr = nfs.MountTCP(env, server, client, ipoib.Datagram)
	default:
		fmt.Fprintf(os.Stderr, "ibwan-nfs: unknown transport %q\n", *transport)
		os.Exit(2)
	}
	if mountErr != nil {
		fmt.Fprintf(os.Stderr, "ibwan-nfs: mount: %v\n", mountErr)
		os.Exit(1)
	}
	srv.AddSyntheticFile("bench", int64(*fileMB)<<20)
	bw := nfs.IOzone(env, cl, "bench", nfs.IOzoneConfig{
		FileSize:   int64(*fileMB) << 20,
		RecordSize: *record,
		Threads:    *threads,
		Write:      *writeMode,
	})
	op := "read"
	if *writeMode {
		op = "write"
	}
	where := fmt.Sprintf("WAN delay %.0fus", *delay)
	if *lan {
		where = "LAN (DDR)"
	}
	fmt.Printf("NFS/%s %s throughput, %d thread(s), %d MB file, %d B records, %s: %.1f MillionBytes/s\n",
		*transport, op, *threads, *fileMB, *record, where, bw)
}
