// Command ibwan-exp regenerates the tables and figures of "Performance of
// HPC Middleware over InfiniBand WAN" on the simulated testbed.
//
// Usage:
//
//	ibwan-exp [flags] <experiment>...
//	ibwan-exp all
//
// Experiments: table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//
// Examples:
//
//	ibwan-exp fig5                 # verbs RC bandwidth vs delay
//	ibwan-exp -csv fig9            # threshold tuning, CSV output
//	ibwan-exp -class A fig12       # NAS sweep at class A (faster)
//	ibwan-exp all                  # everything (takes a while)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
)

// flagSet reports whether the named flag was set explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	chart := flag.Bool("chart", false, "render terminal sparkline charts instead of tables")
	class := flag.String("class", "B", "NAS problem class for fig12 (B, A or W)")
	fileMB := flag.Int("filemb", 512, "IOzone file size in MB for fig13")
	tcpMS := flag.Int("tcpms", 60, "TCP measurement window (virtual ms) for fig6/fig7")
	quick := flag.Bool("quick", false, "coarse sweeps for a fast smoke run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ibwan-exp [flags] <experiment>...\nexperiments: %s all\nflags:\n",
			strings.Join(core.ExperimentIDs, " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	opt := core.Options{NASClass: *class, NFSFileMB: *fileMB, TCPMillis: *tcpMS, Quick: *quick}
	if *quick {
		// Let Quick pick its own lighter defaults unless overridden.
		if !flagSet("class") {
			opt.NASClass = ""
		}
		if !flagSet("filemb") {
			opt.NFSFileMB = 0
		}
		if !flagSet("tcpms") {
			opt.TCPMillis = 0
		}
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = core.ExperimentIDs
	}
	valid := map[string]bool{}
	for _, id := range core.ExperimentIDs {
		valid[id] = true
	}
	for _, id := range ids {
		if !valid[id] {
			fmt.Fprintf(os.Stderr, "ibwan-exp: unknown experiment %q\n", id)
			os.Exit(2)
		}
	}
	for _, id := range ids {
		fmt.Printf("=== %s ===\n", id)
		for _, t := range core.Run(id, opt) {
			switch {
			case *csv:
				t.RenderCSV(os.Stdout)
			case *chart:
				t.RenderChart(os.Stdout)
			default:
				t.Render(os.Stdout)
			}
		}
	}
}
