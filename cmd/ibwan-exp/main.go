// Command ibwan-exp regenerates the tables and figures of "Performance of
// HPC Middleware over InfiniBand WAN" on the simulated testbed.
//
// Usage:
//
//	ibwan-exp [flags] <experiment>...
//	ibwan-exp all
//
// Experiments: table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//
// Every experiment expands into independent measurement points (one
// simulated testbed per point) that run on a bounded worker pool; -par
// controls the pool size and output is byte-identical at any parallelism.
//
// Examples:
//
//	ibwan-exp fig5                 # verbs RC bandwidth vs delay
//	ibwan-exp -csv fig9            # threshold tuning, CSV output
//	ibwan-exp -class A fig12       # NAS sweep at class A (faster)
//	ibwan-exp -par 8 -progress all # everything, 8 workers, live status
//	ibwan-exp -quick -json - all   # metrics + table data as JSON on stdout
//	ibwan-exp -quick -bench BENCH_harness.json all  # par=1 vs par=N timing
//	ibwan-exp -cpuprofile cpu.out -par 1 fig5       # profile the hot path
//	ibwan-exp -memprofile mem.out all               # heap profile at exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// flagSet reports whether the named flag was set explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	chart := flag.Bool("chart", false, "render terminal sparkline charts instead of tables")
	class := flag.String("class", "B", "NAS problem class for fig12 (B, A or W)")
	fileMB := flag.Int("filemb", 512, "IOzone file size in MB for fig13")
	tcpMS := flag.Int("tcpms", 60, "TCP measurement window (virtual ms) for fig6/fig7")
	quick := flag.Bool("quick", false, "coarse sweeps for a fast smoke run")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "measurement points run concurrently (output is identical at any value)")
	progress := flag.Bool("progress", false, "live per-point status line on stderr")
	jsonOut := flag.String("json", "", "write a JSON report (metrics + table data) to this file ('-' = stdout, suppresses tables)")
	benchOut := flag.String("bench", "", "time each experiment at -par 1 vs -par N and write the comparison JSON to this file (suppresses tables)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
	memProfile := flag.String("memprofile", "", "write an allocation profile taken at exit to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ibwan-exp [flags] <experiment>...\nexperiments: %s all\nflags:\n",
			strings.Join(core.ExperimentIDs, " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	opt := core.Options{NASClass: *class, NFSFileMB: *fileMB, TCPMillis: *tcpMS, Quick: *quick}
	if *quick {
		// Let Quick pick its own lighter defaults unless overridden.
		if !flagSet("class") {
			opt.NASClass = ""
		}
		if !flagSet("filemb") {
			opt.NFSFileMB = 0
		}
		if !flagSet("tcpms") {
			opt.TCPMillis = 0
		}
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = core.ExperimentIDs
	}
	for _, id := range ids {
		if _, ok := core.Lookup(id); !ok {
			fmt.Fprintf(os.Stderr, "ibwan-exp: unknown experiment %q\n\n", id)
			flag.Usage()
			os.Exit(2)
		}
	}
	ropt := core.RunnerOptions{Workers: *par}
	if *progress {
		ropt.Progress = os.Stderr
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibwan-exp: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ibwan-exp: %v\n", err)
			os.Exit(1)
		}
	}
	err := run(ids, opt, ropt, *benchOut, *jsonOut, *csv, *chart)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		if merr := writeMemProfile(*memProfile); merr != nil && err == nil {
			err = merr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibwan-exp: %v\n", err)
		os.Exit(1)
	}
}

// run executes the selected experiments and renders or serializes results.
// Profiling bookkeeping stays in main: every exit path from here returns,
// so the profiles are always flushed.
func run(ids []string, opt core.Options, ropt core.RunnerOptions, benchOut, jsonOut string, csv, chart bool) error {
	if benchOut != "" {
		return runBench(benchOut, ids, opt, ropt)
	}
	var results []core.Result
	render := jsonOut != "-"
	for _, id := range ids {
		res := core.RunWith(id, opt, ropt)
		results = append(results, res)
		if !render {
			continue
		}
		fmt.Printf("=== %s ===\n", res.ID)
		for _, t := range res.Tables {
			switch {
			case csv:
				t.RenderCSV(os.Stdout)
			case chart:
				t.RenderChart(os.Stdout)
			default:
				t.Render(os.Stdout)
			}
		}
	}
	if jsonOut != "" {
		return writeJSONReport(jsonOut, opt, ropt, results)
	}
	return nil
}

// writeMemProfile records the live-heap allocation profile at exit.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // settle the heap so the profile shows retained allocations
	return pprof.WriteHeapProfile(f)
}

// JSON report types: a stable schema for benchmark-trajectory tracking.

type jsonSeries struct {
	Label string    `json:"label"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"`
}

type jsonTable struct {
	Title  string       `json:"title"`
	XLabel string       `json:"x_label"`
	YLabel string       `json:"y_label"`
	Series []jsonSeries `json:"series"`
}

type jsonExperiment struct {
	ID         string      `json:"id"`
	Points     int         `json:"points"`
	Workers    int         `json:"workers"`
	WallMS     float64     `json:"wall_ms"`
	SimSeconds float64     `json:"sim_s"`
	Events     int64       `json:"events"`
	Tables     []jsonTable `json:"tables"`
}

type jsonReport struct {
	Schema      string           `json:"schema"`
	Quick       bool             `json:"quick"`
	Par         int              `json:"par"`
	Cores       int              `json:"cores"`
	TotalWallMS float64          `json:"total_wall_ms"`
	Experiments []jsonExperiment `json:"experiments"`
}

func toJSONTables(tabs []*stats.Table) []jsonTable {
	out := make([]jsonTable, 0, len(tabs))
	for _, t := range tabs {
		jt := jsonTable{Title: t.Title, XLabel: t.XLabel, YLabel: t.YLabel}
		for _, s := range t.Series {
			jt.Series = append(jt.Series, jsonSeries{Label: s.Label, X: s.X, Y: s.Y})
		}
		out = append(out, jt)
	}
	return out
}

func writeJSONReport(path string, opt core.Options, ropt core.RunnerOptions, results []core.Result) error {
	rep := jsonReport{
		Schema: "ibwan-exp/v1",
		Quick:  opt.Quick,
		Par:    ropt.Workers,
		Cores:  runtime.NumCPU(),
	}
	for _, res := range results {
		rep.TotalWallMS += float64(res.Metrics.Wall.Microseconds()) / 1e3
		rep.Experiments = append(rep.Experiments, jsonExperiment{
			ID:         res.ID,
			Points:     res.Metrics.Points,
			Workers:    res.Metrics.Workers,
			WallMS:     float64(res.Metrics.Wall.Microseconds()) / 1e3,
			SimSeconds: res.Metrics.SimTime.Seconds(),
			Events:     res.Metrics.Events,
			Tables:     toJSONTables(res.Tables),
		})
	}
	return writeJSON(path, rep)
}

// Harness benchmark: per-figure wall time at par=1 vs par=N.

type benchFigure struct {
	ID       string  `json:"id"`
	Points   int     `json:"points"`
	Par1MS   float64 `json:"par1_ms"`
	ParNMS   float64 `json:"parN_ms"`
	SpeedupX float64 `json:"speedup_x"`
}

type benchReport struct {
	Schema  string        `json:"schema"`
	Quick   bool          `json:"quick"`
	Cores   int           `json:"cores"`
	ParN    int           `json:"parN"`
	Note    string        `json:"note,omitempty"`
	Figures []benchFigure `json:"figures"`
	Total   benchFigure   `json:"total"`
}

func runBench(path string, ids []string, opt core.Options, ropt core.RunnerOptions) error {
	parN := ropt.Workers
	if parN <= 0 {
		parN = runtime.GOMAXPROCS(0)
	}
	rep := benchReport{Schema: "ibwan-bench/v1", Quick: opt.Quick, Cores: runtime.NumCPU(), ParN: parN}
	if rep.Cores == 1 {
		rep.Note = "single-core host: the worker pool can only timeshare, so speedup_x ~ 1.0 is expected; rerun on a multicore machine to observe scaling"
	}
	rep.Total = benchFigure{ID: "total"}
	for _, id := range ids {
		seq := core.RunWith(id, opt, core.RunnerOptions{Workers: 1, Progress: ropt.Progress})
		par := core.RunWith(id, opt, core.RunnerOptions{Workers: parN, Progress: ropt.Progress})
		f := benchFigure{
			ID:     id,
			Points: seq.Metrics.Points,
			Par1MS: float64(seq.Metrics.Wall.Microseconds()) / 1e3,
			ParNMS: float64(par.Metrics.Wall.Microseconds()) / 1e3,
		}
		if f.ParNMS > 0 {
			f.SpeedupX = round2(f.Par1MS / f.ParNMS)
		}
		rep.Figures = append(rep.Figures, f)
		rep.Total.Points += f.Points
		rep.Total.Par1MS += f.Par1MS
		rep.Total.ParNMS += f.ParNMS
		fmt.Fprintf(os.Stderr, "bench %-7s par1=%8.1fms  par%d=%8.1fms  %.2fx\n",
			id, f.Par1MS, parN, f.ParNMS, f.SpeedupX)
	}
	if rep.Total.ParNMS > 0 {
		rep.Total.SpeedupX = round2(rep.Total.Par1MS / rep.Total.ParNMS)
	}
	return writeJSON(path, rep)
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}

func writeJSON(path string, v any) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
