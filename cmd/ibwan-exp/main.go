// Command ibwan-exp regenerates the tables and figures of "Performance of
// HPC Middleware over InfiniBand WAN" on the simulated testbed.
//
// Usage:
//
//	ibwan-exp [flags] <experiment>...
//	ibwan-exp all
//
// Experiments: table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// fig13, plus the loss-* family (loss-goodput loss-latency loss-flap
// loss-tcp) extending the paper to lossy WAN circuits (see FAULTS.md), the
// multisite-* family (multisite-bcast multisite-allreduce multisite-nfs
// multisite-loss) running on N-site topologies selected with -topo, the
// congest-* family (congest-streams congest-queue) bounding the WAN egress
// queues so marks and drops emerge from stream contention, and the
// failover-* family arming the self-healing routing layer (see
// EXPERIMENTS.md). -list enumerates them all with descriptions.
//
// Every experiment expands into independent measurement points (one
// simulated testbed per point) that run on a bounded worker pool; -par
// controls the pool size and output is byte-identical at any parallelism.
// Orthogonally, -shards lets each multi-site world run its sites as
// parallel event shards under a conservative channel-clock scheduler:
// each WAN link's delay bounds its own directed channel, so every
// shard's window follows its own incoming links rather than the world
// minimum — again with byte-identical output at any value (see
// DESIGN.md, "Parallel execution"). The JSON report's shard_windows /
// shard_horizon_s fields expose the scheduler's synchronization cost.
//
// Examples:
//
//	ibwan-exp fig5                 # verbs RC bandwidth vs delay
//	ibwan-exp -csv fig9            # threshold tuning, CSV output
//	ibwan-exp -class A fig12       # NAS sweep at class A (faster)
//	ibwan-exp -par 8 -progress all # everything, 8 workers, live status
//	ibwan-exp -quick -json - all   # metrics + table data as JSON on stdout
//	ibwan-exp -quick -bench BENCH_harness.json all  # par=1 vs par=N timing
//	ibwan-exp -cpuprofile cpu.out -par 1 fig5       # profile the hot path
//	ibwan-exp -memprofile mem.out all               # heap profile at exit
//	ibwan-exp -quick -trace-out trace.json fig8     # Perfetto trace of the run
//	ibwan-exp -quick -metrics-out metrics.txt fig8  # telemetry metrics dump
//	ibwan-exp -quick -fault wan-loss=0.01 fig5      # chaos: 1% WAN packet loss
//	ibwan-exp -quick -fault wan-down fig8           # chaos: WAN dead, ERR rows
//	ibwan-exp -quick -topo ring4 multisite-bcast    # 4-site ring, flat vs hier bcast
//	ibwan-exp -quick -topo mesh4 -shards 4 multisite-allreduce  # sharded 4-site world
//	ibwan-exp -quick congest-streams congest-queue  # emergent congestion, bounded queues
//	ibwan-exp -quick -sample-every 1ms -timeline-out tl.json fig8   # sampled timelines
//	ibwan-exp -quick -sample-every 1ms -timeline-out tl.csv loss-flap  # same, CSV
//	ibwan-exp -list                                 # experiment ids + descriptions
//
// -sample-every arms the sim-time timeline sampler: every point's metrics
// are snapshotted at that cadence of virtual time into deterministic
// per-interval series (counter rates, hi-res histogram percentiles), written
// by -timeline-out as JSON ("ibwan-timeline/v1") or CSV (.csv suffix).
// Sampling never perturbs the simulation and timelines are byte-identical
// at any -par / -shards combination. With -trace-out, the sampled series
// also appear as Perfetto counter tracks pinned above the span rows.
//
// Every output path (-json, -bench, -cpuprofile, -memprofile, -trace-out,
// -metrics-out, -timeline-out) is opened before any simulation runs, so an
// unwritable path fails immediately instead of discarding results after
// minutes of work.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// flagSet reports whether the named flag was set explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	chart := flag.Bool("chart", false, "render terminal sparkline charts instead of tables")
	class := flag.String("class", "B", "NAS problem class for fig12 (B, A or W)")
	fileMB := flag.Int("filemb", 512, "IOzone file size in MB for fig13")
	tcpMS := flag.Int("tcpms", 60, "TCP measurement window (virtual ms) for fig6/fig7")
	quick := flag.Bool("quick", false, "coarse sweeps for a fast smoke run")
	topoName := flag.String("topo", "star3", "site topology preset for the multisite-* family ("+strings.Join(topo.PresetNames(), "|")+")")
	list := flag.Bool("list", false, "list the experiment registry with one-line descriptions and exit")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "measurement points run concurrently (output is identical at any value)")
	shards := flag.Int("shards", 1, "OS workers per simulation world: a shardable multi-site world runs one event shard per site on up to this many workers (output is identical at any value)")
	progress := flag.Bool("progress", false, "live per-point status line on stderr")
	jsonOut := flag.String("json", "", "write a JSON report (metrics + table data) to this file ('-' = stdout, suppresses tables)")
	benchOut := flag.String("bench", "", "time each experiment at -par 1 vs -par N and write the comparison JSON to this file (suppresses tables)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
	memProfile := flag.String("memprofile", "", "write an allocation profile taken at exit to this file")
	traceOut := flag.String("trace-out", "", "write a Perfetto (Chrome trace event) JSON trace of the run to this file ('-' = stdout, suppresses tables); forces -par 1")
	metricsOut := flag.String("metrics-out", "", "write a telemetry metrics dump to this file ('-' = stdout, suppresses tables; a .json suffix selects JSON, otherwise text)")
	spanDepth := flag.Int("span-depth", 0, "suppress trace spans nested deeper than this (0 = unlimited; applies to -trace-out)")
	sampleEvery := flag.Duration("sample-every", 0, "sample telemetry timelines at this interval of virtual time (e.g. 1ms; output is identical at any -par/-shards)")
	timelineOut := flag.String("timeline-out", "", "write sampled timelines to this file ('-' = stdout, suppresses tables; a .csv suffix selects CSV, otherwise JSON); requires -sample-every")
	faultSpec := flag.String("fault", "", "run-wide chaos plan, e.g. 'wan-loss=0.01,seed=7' or 'wan-down' or 'wan-flap=5ms:20ms'; prefix 'link=NAME:' targets one link of a multi-link topology (e.g. 'link=r1-r2:wan-down'); failed points render as ERR")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ibwan-exp [flags] <experiment>...\nexperiments: %s all\nflags:\n",
			strings.Join(core.ExperimentIDs, " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, s := range core.Specs() {
			fmt.Printf("%-20s %s\n", s.ID, s.Desc)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if _, err := topo.Preset(*topoName, 0, 0); err != nil {
		fmt.Fprintf(os.Stderr, "ibwan-exp: -topo: %v\n", err)
		os.Exit(2)
	}
	opt := core.Options{NASClass: *class, NFSFileMB: *fileMB, TCPMillis: *tcpMS, Topo: *topoName, Quick: *quick}
	if *quick {
		// Let Quick pick its own lighter defaults unless overridden.
		if !flagSet("class") {
			opt.NASClass = ""
		}
		if !flagSet("filemb") {
			opt.NFSFileMB = 0
		}
		if !flagSet("tcpms") {
			opt.TCPMillis = 0
		}
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = core.ExperimentIDs
	}
	for _, id := range ids {
		if _, ok := core.Lookup(id); !ok {
			fmt.Fprintf(os.Stderr, "ibwan-exp: unknown experiment %q\n\n", id)
			flag.Usage()
			os.Exit(2)
		}
	}
	// Validate observability knobs before any simulation: a zero or negative
	// sampling interval, a negative span depth, or a timeline sink with no
	// sampler are configuration errors, reported exactly like an unknown
	// experiment id (usage + exit 2), not silently ignored.
	if flagSet("sample-every") && *sampleEvery <= 0 {
		fmt.Fprintf(os.Stderr, "ibwan-exp: -sample-every must be a positive duration (got %v)\n\n", *sampleEvery)
		flag.Usage()
		os.Exit(2)
	}
	if *spanDepth < 0 {
		fmt.Fprintf(os.Stderr, "ibwan-exp: -span-depth must be non-negative (got %d)\n\n", *spanDepth)
		flag.Usage()
		os.Exit(2)
	}
	if *timelineOut != "" && *sampleEvery <= 0 {
		fmt.Fprintf(os.Stderr, "ibwan-exp: -timeline-out requires -sample-every (there is nothing to write without a sampling interval)\n\n")
		flag.Usage()
		os.Exit(2)
	}
	ropt := core.RunnerOptions{Workers: *par, SampleEvery: sim.Duration(*sampleEvery)}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "ibwan-exp: -shards must be at least 1 (got %d)\n", *shards)
		os.Exit(2)
	}
	if *shards > 1 {
		maxProcs := runtime.GOMAXPROCS(0)
		if flagSet("par") && flagSet("shards") && *par**shards > maxProcs {
			// Points and shards multiply: -par worlds each running -shards
			// workers. Refuse a combination that can only thrash rather than
			// silently timesharing it.
			fmt.Fprintf(os.Stderr, "ibwan-exp: -par %d x -shards %d needs %d OS workers but GOMAXPROCS is %d; lower -par or -shards (they multiply: each of -par concurrent points runs -shards shard workers)\n",
				*par, *shards, *par**shards, maxProcs)
			os.Exit(2)
		}
		if !flagSet("par") {
			// Give the shard workers their share of the machine instead of
			// letting the default point pool claim every core.
			if p := maxProcs / *shards; p > 1 {
				ropt.Workers = p
			} else {
				ropt.Workers = 1
			}
		}
		ropt.ShardWorkers = *shards
	}
	if *progress {
		ropt.Progress = os.Stderr
	}
	if *faultSpec != "" {
		plan, err := parseFaultSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibwan-exp: -fault: %v\n", err)
			os.Exit(2)
		}
		ropt.Fault = plan
	}

	// Open every output up front: a typo'd or unwritable path must fail the
	// run before any simulation happens, not silently discard its results.
	outs := map[string]*os.File{}
	for _, o := range []struct{ flag, path string }{
		{"cpuprofile", *cpuProfile},
		{"memprofile", *memProfile},
		{"json", *jsonOut},
		{"bench", *benchOut},
		{"trace-out", *traceOut},
		{"metrics-out", *metricsOut},
		{"timeline-out", *timelineOut},
	} {
		if o.path == "" {
			continue
		}
		f, err := outFile(o.path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibwan-exp: -%s: %v\n", o.flag, err)
			os.Exit(1)
		}
		outs[o.flag] = f
	}

	var tel *telemetry.Telemetry
	if outs["trace-out"] != nil || outs["metrics-out"] != nil {
		tel = &telemetry.Telemetry{Metrics: telemetry.NewRegistry()}
		if outs["trace-out"] != nil {
			tel.Spans = telemetry.NewRecorder(0, *spanDepth)
		}
		ropt.Telemetry = tel
	}

	if f := outs["cpuprofile"]; f != nil {
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ibwan-exp: %v\n", err)
			os.Exit(1)
		}
	}
	// Rendered tables would corrupt any machine-readable stream sharing
	// stdout, so '-' on any report flag suppresses them.
	render := outs["json"] != os.Stdout && outs["trace-out"] != os.Stdout &&
		outs["metrics-out"] != os.Stdout && outs["timeline-out"] != os.Stdout
	results, err := run(ids, opt, ropt, outs["bench"], outs["json"], *csv, *chart, render)
	if outs["cpuprofile"] != nil {
		pprof.StopCPUProfile()
	}
	if f := outs["memprofile"]; f != nil {
		if merr := writeMemProfile(f); merr != nil && err == nil {
			err = merr
		}
	}
	timelines := collectTimelines(results)
	if err == nil {
		if f := outs["timeline-out"]; f != nil {
			err = writeTimeline(f, *timelineOut, ropt.SampleEvery, timelines)
		}
	}
	if err == nil {
		err = writeTelemetry(outs["trace-out"], outs["metrics-out"], *metricsOut, tel, timelines)
	}
	for _, f := range outs {
		if f != os.Stdout {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibwan-exp: %v\n", err)
		os.Exit(1)
	}
}

// outFile opens an output path for writing; "-" selects stdout.
func outFile(path string) (*os.File, error) {
	if path == "-" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

// collectTimelines flattens the per-experiment sampled timelines in run
// order (empty unless -sample-every was set).
func collectTimelines(results []core.Result) []telemetry.PointTimeline {
	var out []telemetry.PointTimeline
	for _, res := range results {
		out = append(out, res.Timelines...)
	}
	return out
}

// writeTimeline serializes the sampled timelines; a .csv suffix on the
// output path selects CSV, anything else the ibwan-timeline/v1 JSON schema.
func writeTimeline(f *os.File, path string, every sim.Time, pts []telemetry.PointTimeline) error {
	var err error
	if strings.HasSuffix(path, ".csv") {
		err = telemetry.WriteTimelineCSV(f, every, pts)
	} else {
		err = telemetry.WriteTimelineJSON(f, every, pts)
	}
	if err != nil {
		return fmt.Errorf("timeline-out: %w", err)
	}
	return nil
}

// writeTelemetry emits the trace and metrics dumps after the run. The
// metrics format follows the path: a .json suffix (or JSON-loving tools
// reading files by extension) selects the stable JSON schema, anything else
// the aligned text table. Sampled timelines, when present, become Perfetto
// counter tracks alongside the spans.
func writeTelemetry(trace, metrics *os.File, metricsPath string, tel *telemetry.Telemetry, pts []telemetry.PointTimeline) error {
	if tel == nil {
		return nil
	}
	if trace != nil {
		if err := telemetry.WritePerfettoTimeline(trace, tel.Spans, pts); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
	}
	if metrics != nil {
		var err error
		if strings.HasSuffix(metricsPath, ".json") {
			err = telemetry.WriteMetricsJSON(metrics, tel.Metrics)
		} else {
			err = telemetry.WriteMetricsText(metrics, tel.Metrics)
		}
		if err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
	}
	return nil
}

// run executes the selected experiments and renders or serializes results,
// returning them so main can emit the timeline and trace outputs.
// Profiling bookkeeping stays in main: every exit path from here returns,
// so the profiles are always flushed. Output files arrive as already-open
// handles (nil = not requested).
func run(ids []string, opt core.Options, ropt core.RunnerOptions, benchOut, jsonOut *os.File, csv, chart, render bool) ([]core.Result, error) {
	if benchOut != nil {
		return nil, runBench(benchOut, ids, opt, ropt)
	}
	var results []core.Result
	for _, id := range ids {
		res := core.RunWith(id, opt, ropt)
		results = append(results, res)
		if !render {
			continue
		}
		fmt.Printf("=== %s ===\n", res.ID)
		for _, t := range res.Tables {
			switch {
			case csv:
				t.RenderCSV(os.Stdout)
			case chart:
				t.RenderChart(os.Stdout)
			default:
				t.Render(os.Stdout)
			}
		}
		core.RenderErrors(os.Stdout, res.Errors)
	}
	if jsonOut != nil {
		return results, writeJSONReport(jsonOut, opt, ropt, results)
	}
	return results, nil
}

// writeMemProfile records the live-heap allocation profile at exit.
func writeMemProfile(f *os.File) error {
	runtime.GC() // settle the heap so the profile shows retained allocations
	return pprof.WriteHeapProfile(f)
}

// JSON report types: a stable schema for benchmark-trajectory tracking.

// jsonFloats marshals a measurement vector with NaN (a failed point's
// error row) encoded as null — encoding/json rejects NaN outright, which
// would turn one failed point into a lost report.
type jsonFloats []float64

func (v jsonFloats) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('[')
	for i, y := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		if math.IsNaN(y) {
			b.WriteString("null")
		} else {
			fmt.Fprintf(&b, "%g", y)
		}
	}
	b.WriteByte(']')
	return []byte(b.String()), nil
}

type jsonSeries struct {
	Label string     `json:"label"`
	X     jsonFloats `json:"x"`
	Y     jsonFloats `json:"y"`
}

type jsonPointError struct {
	Label string `json:"label"`
	Err   string `json:"err"`
}

// jsonTimeline summarizes one point's sampled timeline (the full series
// live in the -timeline-out file; the report only carries enough to see
// sampling happened and how much).
type jsonTimeline struct {
	Label   string `json:"label"`
	Series  int    `json:"series"`
	Samples int    `json:"samples"`
}

type jsonTable struct {
	Title  string       `json:"title"`
	XLabel string       `json:"x_label"`
	YLabel string       `json:"y_label"`
	Series []jsonSeries `json:"series"`
}

type jsonExperiment struct {
	ID         string  `json:"id"`
	Points     int     `json:"points"`
	Workers    int     `json:"workers"`
	WallMS     float64 `json:"wall_ms"`
	SimSeconds float64 `json:"sim_s"`
	Events     int64   `json:"events"`
	// Sharded-scheduler cost counters (absent on single-heap runs):
	// barrier windows and cumulative safe-horizon advance in simulated
	// seconds. windows/events is the synchronization overhead per event.
	ShardWindows  int64            `json:"shard_windows,omitempty"`
	ShardHorizonS float64          `json:"shard_horizon_s,omitempty"`
	Tables        []jsonTable      `json:"tables"`
	Errors        []jsonPointError `json:"errors,omitempty"`
	Timelines     []jsonTimeline   `json:"timelines,omitempty"`
}

type jsonReport struct {
	Schema        string           `json:"schema"`
	Quick         bool             `json:"quick"`
	Par           int              `json:"par"`
	Cores         int              `json:"cores"`
	SampleEveryNS int64            `json:"sample_every_ns,omitempty"`
	TotalWallMS   float64          `json:"total_wall_ms"`
	Experiments   []jsonExperiment `json:"experiments"`
}

func toJSONTables(tabs []*stats.Table) []jsonTable {
	out := make([]jsonTable, 0, len(tabs))
	for _, t := range tabs {
		jt := jsonTable{Title: t.Title, XLabel: t.XLabel, YLabel: t.YLabel}
		for _, s := range t.Series {
			jt.Series = append(jt.Series, jsonSeries{Label: s.Label, X: s.X, Y: s.Y})
		}
		out = append(out, jt)
	}
	return out
}

func writeJSONReport(w io.Writer, opt core.Options, ropt core.RunnerOptions, results []core.Result) error {
	rep := jsonReport{
		Schema:        "ibwan-exp/v1",
		Quick:         opt.Quick,
		Par:           ropt.Workers,
		Cores:         runtime.NumCPU(),
		SampleEveryNS: int64(ropt.SampleEvery),
	}
	for _, res := range results {
		rep.TotalWallMS += float64(res.Metrics.Wall.Microseconds()) / 1e3
		var errs []jsonPointError
		for _, e := range res.Errors {
			errs = append(errs, jsonPointError{Label: e.Label, Err: e.Err})
		}
		var tls []jsonTimeline
		for _, pt := range res.Timelines {
			tls = append(tls, jsonTimeline{Label: pt.Point, Series: len(pt.Series), Samples: pt.SampleCount()})
		}
		rep.Experiments = append(rep.Experiments, jsonExperiment{
			ID:            res.ID,
			Points:        res.Metrics.Points,
			Workers:       res.Metrics.Workers,
			WallMS:        float64(res.Metrics.Wall.Microseconds()) / 1e3,
			SimSeconds:    res.Metrics.SimTime.Seconds(),
			Events:        res.Metrics.Events,
			ShardWindows:  res.Metrics.ShardWindows,
			ShardHorizonS: res.Metrics.ShardHorizon.Seconds(),
			Tables:        toJSONTables(res.Tables),
			Errors:        errs,
			Timelines:     tls,
		})
	}
	return writeJSON(w, rep)
}

// Harness benchmark: per-figure wall time at par=1 vs par=N.

type benchFigure struct {
	ID       string  `json:"id"`
	Points   int     `json:"points"`
	Par1MS   float64 `json:"par1_ms"`
	ParNMS   float64 `json:"parN_ms"`
	SpeedupX float64 `json:"speedup_x"`
}

type benchReport struct {
	Schema  string        `json:"schema"`
	Quick   bool          `json:"quick"`
	Cores   int           `json:"cores"`
	ParN    int           `json:"parN"`
	Note    string        `json:"note,omitempty"`
	Figures []benchFigure `json:"figures"`
	Total   benchFigure   `json:"total"`
}

func runBench(w io.Writer, ids []string, opt core.Options, ropt core.RunnerOptions) error {
	parN := ropt.Workers
	if parN <= 0 {
		parN = runtime.GOMAXPROCS(0)
	}
	rep := benchReport{Schema: "ibwan-bench/v1", Quick: opt.Quick, Cores: runtime.NumCPU(), ParN: parN}
	if rep.Cores == 1 {
		rep.Note = "single-core host: the worker pool can only timeshare, so speedup_x ~ 1.0 is expected; rerun on a multicore machine to observe scaling"
	}
	rep.Total = benchFigure{ID: "total"}
	for _, id := range ids {
		seq := core.RunWith(id, opt, core.RunnerOptions{Workers: 1, Progress: ropt.Progress})
		par := core.RunWith(id, opt, core.RunnerOptions{Workers: parN, Progress: ropt.Progress})
		f := benchFigure{
			ID:     id,
			Points: seq.Metrics.Points,
			Par1MS: float64(seq.Metrics.Wall.Microseconds()) / 1e3,
			ParNMS: float64(par.Metrics.Wall.Microseconds()) / 1e3,
		}
		if f.ParNMS > 0 {
			f.SpeedupX = round2(f.Par1MS / f.ParNMS)
		}
		rep.Figures = append(rep.Figures, f)
		rep.Total.Points += f.Points
		rep.Total.Par1MS += f.Par1MS
		rep.Total.ParNMS += f.ParNMS
		fmt.Fprintf(os.Stderr, "bench %-7s par1=%8.1fms  par%d=%8.1fms  %.2fx\n",
			id, f.Par1MS, parN, f.ParNMS, f.SpeedupX)
	}
	if rep.Total.ParNMS > 0 {
		rep.Total.SpeedupX = round2(rep.Total.Par1MS / rep.Total.ParNMS)
	}
	return writeJSON(w, rep)
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
