package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
)

// parseFaultSpec turns the -fault flag into a run-wide chaos plan. The
// grammar is an optional link restriction followed by a comma-separated
// list of levers:
//
//	link=NAME:               restrict the WAN levers to the named link on
//	                         multi-link topologies, NAME in siteA-siteB
//	                         form (e.g. link=r1-r2:wan-down); the default
//	                         arms every WAN link
//	wan-down                 take the WAN link down permanently
//	wan-loss=P               per-packet WAN loss probability (0..1)
//	wan-corrupt=P            per-packet WAN corruption probability (0..1)
//	wan-flap=AT:DUR          WAN outage: down at AT, back up after DUR
//	                         (Go durations, e.g. wan-flap=5ms:20ms)
//	tcp-loss=P               per-segment loss inside the TCP stack (0..1)
//	seed=N                   fault-decision seed (default 1)
//
// Example: -fault wan-loss=0.01,seed=7
func parseFaultSpec(spec string) (*fault.Plan, error) {
	p := &fault.Plan{Seed: 1}
	if rest, ok := strings.CutPrefix(spec, "link="); ok {
		name, body, ok := strings.Cut(rest, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("link= wants link=NAME:levers (e.g. link=r1-r2:wan-down)")
		}
		p.Link = name
		spec = body
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, hasVal := strings.Cut(item, "=")
		switch key {
		case "wan-down":
			if hasVal {
				return nil, fmt.Errorf("wan-down takes no value")
			}
			p.WANDown = true
		case "wan-loss", "wan-corrupt", "tcp-loss":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", key, err)
			}
			switch key {
			case "wan-loss":
				p.WANLoss = f
			case "wan-corrupt":
				p.WANCorrupt = f
			case "tcp-loss":
				p.TCPLoss = f
			}
		case "wan-flap":
			at, dur, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("wan-flap wants AT:DUR (e.g. 5ms:20ms)")
			}
			atD, err := time.ParseDuration(at)
			if err != nil {
				return nil, fmt.Errorf("wan-flap at: %v", err)
			}
			durD, err := time.ParseDuration(dur)
			if err != nil {
				return nil, fmt.Errorf("wan-flap duration: %v", err)
			}
			down := sim.Time(atD.Nanoseconds())
			p.WANFlaps = append(p.WANFlaps,
				fault.FlapStep{At: down, Down: true},
				fault.FlapStep{At: down + sim.Time(durD.Nanoseconds()), Down: false})
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("seed: %v", err)
			}
			p.Seed = n
		default:
			return nil, fmt.Errorf("unknown fault lever %q", key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
