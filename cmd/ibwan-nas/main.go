// Command ibwan-nas runs NAS parallel benchmark communication skeletons
// (IS, FT, CG) across the simulated cluster-of-clusters.
//
// Usage:
//
//	ibwan-nas [-kernel IS|FT|CG|all] [-class B|A|W] [-procs n] [-delay us]
//	          [-profile]
//
// Examples:
//
//	ibwan-nas -kernel IS -delay 10000
//	ibwan-nas -kernel all -class A -procs 16
//	ibwan-nas -kernel CG -profile
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/sim"
)

func main() {
	kernel := flag.String("kernel", "all", "kernel: IS, FT, CG, MG, LU or all")
	class := flag.String("class", "B", "problem class: B (paper), A or W")
	procs := flag.Int("procs", 64, "total MPI processes (half per cluster)")
	delay := flag.Float64("delay", 0, "one-way WAN delay in microseconds")
	profile := flag.Bool("profile", false, "print the message-size profile")
	flag.Parse()

	kernels := nas.AllKernels()
	if *kernel != "all" {
		ok := false
		for _, k := range kernels {
			if k == *kernel {
				ok = true
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "ibwan-nas: unknown kernel %q\n", *kernel)
			os.Exit(2)
		}
		kernels = []string{*kernel}
	}
	if *procs%2 != 0 || *procs < 2 {
		fmt.Fprintln(os.Stderr, "ibwan-nas: -procs must be even and >= 2")
		os.Exit(2)
	}

	for _, k := range kernels {
		env := sim.NewEnv()
		tb := cluster.New(env, cluster.Config{NodesA: *procs / 2, NodesB: *procs / 2, Delay: sim.Micros(*delay)})
		var nodes []*cluster.Node
		nodes = append(nodes, tb.A...)
		nodes = append(nodes, tb.B...)
		w := mpi.NewWorld(env, nodes, mpi.Config{})
		elapsed := nas.RunClass(w, k, *class)
		fmt.Printf("NAS %s class %s, %d procs, delay %.0fus: %.3f s\n",
			k, *class, *procs, *delay, elapsed.Seconds())
		if *profile {
			mp := w.Profile()
			fmt.Printf("  messages: %d, volume: %.1f MB, large-volume fraction: %.2f, tiny-count fraction: %.2f, max message: %d B\n",
				mp.Msgs, float64(mp.Bytes)/1e6, mp.LargeVolumeFraction(), mp.TinyCountFraction(), mp.MaxMessage)
		}
		w.Shutdown()
	}
}
