// Command ibwan-trace analyzes a JSONL packet trace produced by
// ibwan-perftest -trace (or any ib.JSONLTracer): per-device packet and byte
// counts, per-packet-kind breakdown, and end-to-end delivery latency
// percentiles for data packets.
//
// Usage:
//
//	ibwan-perftest -test bw -size 65536 -delay 1000 -trace /tmp/t.jsonl
//	ibwan-trace /tmp/t.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/ib"
	"repro/internal/sim"
)

type flowKey struct {
	msg  int64
	seq  int
	kind string
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: ibwan-trace <trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibwan-trace:", err)
		os.Exit(1)
	}
	defer f.Close()

	type devStat struct {
		tx, rx, drop int64
		bytes        int64
	}
	devs := map[string]*devStat{}
	kinds := map[string]int64{}
	firstTx := map[flowKey]sim.Time{}
	var latencies []sim.Time
	var events int64

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev ib.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			fmt.Fprintf(os.Stderr, "ibwan-trace: bad line: %v\n", err)
			os.Exit(1)
		}
		events++
		d := devs[ev.Dev]
		if d == nil {
			d = &devStat{}
			devs[ev.Dev] = d
		}
		key := flowKey{ev.Msg, ev.Seq, ev.Pkt}
		switch ev.Kind {
		case "tx":
			d.tx++
			d.bytes += int64(ev.Wire)
			kinds[ev.Pkt]++
			if _, seen := firstTx[key]; !seen {
				firstTx[key] = ev.Time
			}
		case "rx":
			d.rx++
			// End-to-end latency: first tx of this packet to its arrival
			// at the destination HCA.
			if t0, ok := firstTx[key]; ok && ev.Pkt == "data" {
				latencies = append(latencies, ev.Time-t0)
				delete(firstTx, key)
			}
		case "drop":
			d.drop++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "ibwan-trace:", err)
		os.Exit(1)
	}

	fmt.Printf("%d events\n\n", events)
	fmt.Println("per-device:")
	names := make([]string, 0, len(devs))
	for n := range devs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := devs[n]
		fmt.Printf("  %-14s tx %7d pkts %12d B   rx %7d   drops %d\n", n, d.tx, d.bytes, d.rx, d.drop)
	}
	fmt.Println("\npacket kinds (tx):")
	kn := make([]string, 0, len(kinds))
	for k := range kinds {
		kn = append(kn, k)
	}
	sort.Strings(kn)
	for _, k := range kn {
		fmt.Printf("  %-10s %d\n", k, kinds[k])
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) sim.Time {
			i := int(p * float64(len(latencies)-1))
			return latencies[i]
		}
		fmt.Printf("\ndata-packet delivery latency (%d packets):\n", len(latencies))
		fmt.Printf("  p50 %v   p90 %v   p99 %v   max %v\n",
			pct(0.50), pct(0.90), pct(0.99), latencies[len(latencies)-1])
	}
}
