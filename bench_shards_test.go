package repro

// Sharded-scheduler benchmarks: one mesh4 world (4 sites, a WAN link per
// site pair) running hierarchical allreduce + broadcast traffic, executed
// single-heap (shards=1) and with one shard worker per site (shards=4).
// Contrasting the two tracks the conservative parallel scheduler's speedup
// in events/s; the headline numbers live in BENCH_shards.json (regenerate
// with `go test -bench BenchmarkShardedMultisite -run - .`). On a
// single-core host the shard workers can only timeshare, so ~1x is
// expected there.

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/topo"
)

// shardedMultisiteWorkload builds a mesh4 world with the given shard worker
// count, runs a collective-heavy workload across all four sites, and
// returns the number of simulation events executed.
func shardedMultisiteWorkload(b *testing.B, shardWorkers int) int64 {
	b.Helper()
	env := sim.NewEnv()
	env.SetShardWorkers(shardWorkers)
	spec, err := topo.Preset("mesh4", 2, sim.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := topo.Build(env, spec)
	if err != nil {
		b.Fatal(err)
	}
	if shardWorkers > 1 && !env.Sharded() {
		b.Fatal("mesh4 world did not partition")
	}
	w := mpi.NewWorld(nw.Env, nw.Nodes(), mpi.Config{})
	w.Run(func(r *mpi.Rank, p *sim.Proc) {
		vec := make([]float64, 1024)
		for i := 0; i < 3; i++ {
			r.HierAllreduce(p, vec)
			r.HierBcast(p, 0, nil, 64<<10)
			r.Allreduce(p, vec)
		}
	})
	w.Shutdown()
	return env.Executed()
}

func BenchmarkShardedMultisite1(b *testing.B) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		events += shardedMultisiteWorkload(b, 1)
	}
	reportKernelRate(b, events)
}

func BenchmarkShardedMultisite4(b *testing.B) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		events += shardedMultisiteWorkload(b, 4)
	}
	b.ReportMetric(4, "shard_workers")
	reportKernelRate(b, events)
}
