package repro

// Sharded-scheduler benchmarks: a mesh4 world (4 sites, a WAN link per
// site pair) running hierarchical allreduce + broadcast traffic, executed
// single-heap (shards=1) and with one shard worker per site (shards=4),
// plus the star3-hetero preset where the channel-clock scheduler's
// per-link bounds pay off (a 1ms metro link next to 10ms long-haul links).
// Contrasting the tracks gives the parallel scheduler's speedup in
// events/s and its synchronization cost in windows/event; the headline
// numbers live in BENCH_shards.json (regenerate with
// `go test -bench BenchmarkSharded -run - .`). On a single-core host the
// shard workers can only timeshare, so ~1x events/s is expected there —
// the windows/event drop is host-independent.

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/topo"
)

// shardedPresetWorkload builds the given preset with the given shard
// worker count, runs a collective-heavy workload across all sites, and
// returns the events executed and scheduler windows run (0 windows when
// the world ran single-heap).
func shardedPresetWorkload(tb testing.TB, preset string, shardWorkers int) (events, windows int64) {
	tb.Helper()
	env := sim.NewEnv()
	env.SetShardWorkers(shardWorkers)
	spec, err := topo.Preset(preset, 2, sim.Millisecond)
	if err != nil {
		tb.Fatal(err)
	}
	nw, err := topo.Build(env, spec)
	if err != nil {
		tb.Fatal(err)
	}
	if shardWorkers > 1 && !env.Sharded() {
		tb.Fatalf("%s world did not partition", preset)
	}
	w := mpi.NewWorld(nw.Env, nw.Nodes(), mpi.Config{})
	w.Run(func(r *mpi.Rank, p *sim.Proc) {
		vec := make([]float64, 1024)
		for i := 0; i < 3; i++ {
			r.HierAllreduce(p, vec)
			r.HierBcast(p, 0, nil, 64<<10)
			r.Allreduce(p, vec)
		}
	})
	w.Shutdown()
	windows, _ = env.WindowStats()
	return env.Executed(), windows
}

// shardedMultisiteWorkload is the mesh4 variant, shared with the
// allocation-bound regression test.
func shardedMultisiteWorkload(tb testing.TB, shardWorkers int) int64 {
	events, _ := shardedPresetWorkload(tb, "mesh4", shardWorkers)
	return events
}

// benchSharded runs one preset x shard-worker cell, reporting events/s,
// events/op and the scheduler's windows/event synchronization cost.
func benchSharded(b *testing.B, preset string, shardWorkers int) {
	b.ReportAllocs()
	var events, windows int64
	for i := 0; i < b.N; i++ {
		ev, wi := shardedPresetWorkload(b, preset, shardWorkers)
		events += ev
		windows += wi
	}
	if shardWorkers > 1 {
		b.ReportMetric(float64(shardWorkers), "shard_workers")
	}
	if events > 0 {
		b.ReportMetric(float64(windows)/float64(events), "windows/event")
	}
	reportKernelRate(b, events)
}

func BenchmarkShardedMultisite1(b *testing.B) { benchSharded(b, "mesh4", 1) }

func BenchmarkShardedMultisite4(b *testing.B) { benchSharded(b, "mesh4", 4) }

func BenchmarkShardedStarHetero1(b *testing.B) { benchSharded(b, "star3-hetero", 1) }

func BenchmarkShardedStarHetero4(b *testing.B) { benchSharded(b, "star3-hetero", 4) }
