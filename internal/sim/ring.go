package sim

// Ring is a growable FIFO ring buffer. It replaces the slice-shift idiom
// (`s = s[1:]` after reading the head), which leaks the consumed prefix of
// the backing array and forces a fresh allocation every time append
// catches up with the shifted window. A Ring reuses its backing array
// forever: steady-state Push/Pop traffic allocates nothing.
//
// The zero value is an empty ring ready for use. Ring is not safe for
// concurrent use; like every simulation structure it relies on the
// one-goroutine-at-a-time execution model.
type Ring[T any] struct {
	buf  []T // power-of-two capacity
	head int // index of the first element
	n    int // number of elements
}

// Len returns the number of buffered elements.
func (r *Ring[T]) Len() int { return r.n }

// Push appends v at the tail.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the head element. It panics on an empty ring.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("sim: Pop from empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero // drop the reference so the GC can reclaim it
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// Front returns a pointer to the head element (valid until the next Push
// or Pop). It panics on an empty ring.
func (r *Ring[T]) Front() *T {
	if r.n == 0 {
		panic("sim: Front of empty ring")
	}
	return &r.buf[r.head]
}

// At returns a pointer to the i-th element from the head (valid until the
// next Push or Pop).
func (r *Ring[T]) At(i int) *T {
	if i < 0 || i >= r.n {
		panic("sim: ring index out of range")
	}
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

// grow doubles the capacity, unwrapping the elements into order.
func (r *Ring[T]) grow() {
	c := len(r.buf) * 2
	if c == 0 {
		c = 8
	}
	buf := make([]T, c)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
