package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestAtRunsCallbacksInTimeOrder(t *testing.T) {
	e := NewEnv()
	var order []int
	e.At(30*Microsecond, func() { order = append(order, 3) })
	e.At(10*Microsecond, func() { order = append(order, 1) })
	e.At(20*Microsecond, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30*Microsecond {
		t.Errorf("Run() = %v, want 30us", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Microsecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO at equal times)", i, v, i)
		}
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEnv()
	defer func() {
		if recover() == nil {
			t.Fatal("At(-1) did not panic")
		}
	}()
	e.At(-1, func() {})
}

func TestProcSleepAdvancesClock(t *testing.T) {
	e := NewEnv()
	var woke Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(42 * Microsecond)
		woke = p.Now()
	})
	e.Run()
	if woke != 42*Microsecond {
		t.Errorf("woke at %v, want 42us", woke)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	e := NewEnv()
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10)
		trace = append(trace, "a1")
		p.Sleep(20)
		trace = append(trace, "a2")
	})
	e.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15)
		trace = append(trace, "b1")
	})
	e.Run()
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestEventDeliversValue(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var got any
	e.Go("waiter", func(p *Proc) { got = p.Wait(ev) })
	e.At(5*Microsecond, func() { ev.Trigger("hello") })
	e.Run()
	if got != "hello" {
		t.Errorf("Wait = %v, want hello", got)
	}
}

func TestWaitOnTriggeredEventReturnsImmediately(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.Trigger(7)
	var got any
	var at Time
	e.Go("w", func(p *Proc) {
		p.Sleep(3 * Microsecond)
		got = p.Wait(ev)
		at = p.Now()
	})
	e.Run()
	if got != 7 || at != 3*Microsecond {
		t.Errorf("got %v at %v, want 7 at 3us", got, at)
	}
}

func TestDoubleTriggerPanics(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.Trigger(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("second Trigger did not panic")
		}
	}()
	ev.Trigger(nil)
}

func TestTryTrigger(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	if !ev.TryTrigger(1) {
		t.Fatal("first TryTrigger = false")
	}
	if ev.TryTrigger(2) {
		t.Fatal("second TryTrigger = true")
	}
	if ev.Value() != 1 {
		t.Fatalf("Value = %v, want 1", ev.Value())
	}
}

func TestMultipleWaitersResumeInOrder(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go("", func(p *Proc) {
			p.Wait(ev)
			order = append(order, i)
		})
	}
	e.At(time1us(), func() { ev.Trigger(nil) })
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func time1us() Time { return Microsecond }

func TestProcDoneEvent(t *testing.T) {
	e := NewEnv()
	p1 := e.Go("child", func(p *Proc) { p.Sleep(10 * Microsecond) })
	var joined Time
	e.Go("parent", func(p *Proc) {
		p.Wait(p1.Done())
		joined = p.Now()
	})
	e.Run()
	if joined != 10*Microsecond {
		t.Errorf("joined at %v, want 10us", joined)
	}
	if !p1.Finished() {
		t.Error("child not finished")
	}
}

func TestKillUnwindsDefers(t *testing.T) {
	e := NewEnv()
	cleaned := false
	p := e.Go("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(Second)
	})
	e.At(10*Microsecond, func() { p.Kill() })
	e.Run()
	if !cleaned {
		t.Error("deferred cleanup did not run on Kill")
	}
	if !p.Finished() {
		t.Error("killed process not finished")
	}
	if e.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestShutdownKillsParkedProcs(t *testing.T) {
	e := NewEnv()
	for i := 0; i < 20; i++ {
		ev := e.NewEvent() // never triggered
		e.Go("", func(p *Proc) { p.Wait(ev) })
	}
	e.Run()
	if e.LiveProcs() != 20 {
		t.Fatalf("LiveProcs = %d, want 20", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Errorf("after Shutdown LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEnv()
	e.Go("bad", func(p *Proc) { panic("boom") })
	defer func() {
		if recover() == nil {
			t.Fatal("process panic did not propagate to Run")
		}
	}()
	e.Run()
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEnv()
	fired := false
	e.At(100*Microsecond, func() { fired = true })
	end := e.RunUntil(50 * Microsecond)
	if end != 50*Microsecond || fired {
		t.Fatalf("RunUntil = %v fired=%v, want 50us false", end, fired)
	}
	e.Run()
	if !fired {
		t.Fatal("entry lost after horizon resume")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEnv()
	n := 0
	e.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(Microsecond)
			n++
			if n == 5 {
				e.Stop()
			}
		}
	})
	e.Run()
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
	e.Shutdown()
}

func TestQueueFIFO(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 0)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
			p.Sleep(Microsecond)
		}
	})
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v, want [0 1 2 3 4]", got)
		}
	}
}

func TestBoundedQueueBlocksPutter(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 2)
	var putDone Time
	e.Go("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // blocks until a Get
		putDone = p.Now()
	})
	e.Go("consumer", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		q.Get(p)
	})
	e.Run()
	if putDone != 10*Microsecond {
		t.Errorf("third Put completed at %v, want 10us", putDone)
	}
}

func TestQueueTryOps(t *testing.T) {
	e := NewEnv()
	q := NewQueue[string](e, 1)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	if !q.TryPut("x") {
		t.Fatal("TryPut on empty bounded queue failed")
	}
	if q.TryPut("y") {
		t.Fatal("TryPut on full queue succeeded")
	}
	v, ok := q.TryGet()
	if !ok || v != "x" {
		t.Fatalf("TryGet = %q,%v, want x,true", v, ok)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Go("", func(p *Proc) {
			r.Use(p, 10*Microsecond)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{10 * Microsecond, 20 * Microsecond, 30 * Microsecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceParallelSlots(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Go("", func(p *Proc) {
			r.Use(p, 10*Microsecond)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{10 * Microsecond, 10 * Microsecond, 20 * Microsecond, 20 * Microsecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	r.Release()
}

func TestWaitAny(t *testing.T) {
	e := NewEnv()
	a, b := e.NewEvent(), e.NewEvent()
	var idx int
	var at Time
	e.Go("w", func(p *Proc) {
		idx, _ = p.WaitAny(a, b)
		at = p.Now()
	})
	e.At(7*Microsecond, func() { b.Trigger(nil) })
	e.At(20*Microsecond, func() { a.Trigger(nil) })
	e.Run()
	if idx != 1 || at != 7*Microsecond {
		t.Errorf("WaitAny = idx %d at %v, want 1 at 7us", idx, at)
	}
}

func TestWaitAll(t *testing.T) {
	e := NewEnv()
	a, b, c := e.NewEvent(), e.NewEvent(), e.NewEvent()
	var at Time
	e.Go("w", func(p *Proc) {
		p.WaitAll(a, b, c)
		at = p.Now()
	})
	e.At(5*Microsecond, func() { b.Trigger(nil) })
	e.At(9*Microsecond, func() { a.Trigger(nil) })
	e.At(2*Microsecond, func() { c.Trigger(nil) })
	e.Run()
	if at != 9*Microsecond {
		t.Errorf("WaitAll finished at %v, want 9us", at)
	}
}

func TestOnTriggerAfterFire(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.Trigger(3)
	var got any
	ev.OnTrigger(func(v any) { got = v })
	e.Run()
	if got != 3 {
		t.Errorf("OnTrigger after fire got %v, want 3", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{12500, "12.50us"},
		{3200 * Microsecond, "3.200ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

// Property: for any set of non-negative delays, callbacks fire in
// nondecreasing time order and the final clock equals the max delay.
func TestPropCallbackOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEnv()
		var fired []Time
		var max Time
		for _, d := range delays {
			d := Time(d) * Microsecond
			if d > max {
				max = d
			}
			e.At(d, func() { fired = append(fired, e.Now()) })
		}
		end := e.Run()
		if len(delays) > 0 && end != max {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: queue preserves exact FIFO contents for any input sequence.
func TestPropQueueFIFO(t *testing.T) {
	f := func(vals []int32) bool {
		e := NewEnv()
		q := NewQueue[int32](e, 0)
		var got []int32
		e.Go("c", func(p *Proc) {
			for range vals {
				got = append(got, q.Get(p))
			}
		})
		e.Go("p", func(p *Proc) {
			for _, v := range vals {
				q.Put(p, v)
			}
		})
		e.Run()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: the same program produces the identical trace twice.
func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEnv()
		var trace []Time
		q := NewQueue[int](e, 3)
		for i := 0; i < 4; i++ {
			i := i
			e.Go("", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(Time(i+1) * Microsecond)
					q.Put(p, i)
					trace = append(trace, p.Now())
				}
			})
		}
		e.Go("drain", func(p *Proc) {
			for k := 0; k < 20; k++ {
				q.Get(p)
				p.Sleep(2 * Microsecond)
				trace = append(trace, p.Now())
			}
		})
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestExecutedCountsDispatchedEntries(t *testing.T) {
	env := NewEnv()
	if env.Executed() != 0 {
		t.Fatalf("fresh env executed %d entries", env.Executed())
	}
	for i := 0; i < 5; i++ {
		env.At(Time(i), func() {})
	}
	env.Step()
	if env.Executed() != 1 {
		t.Errorf("after one Step: executed = %d, want 1", env.Executed())
	}
	env.Run()
	if env.Executed() != 5 {
		t.Errorf("after Run: executed = %d, want 5", env.Executed())
	}
	// Entries scheduled beyond the horizon stay pending and uncounted.
	env.At(100, func() {})
	env.RunUntil(env.Now() + 1)
	if env.Executed() != 5 || env.Pending() != 1 {
		t.Errorf("horizon run: executed = %d pending = %d", env.Executed(), env.Pending())
	}
}
