package sim

import "fmt"

// killSignal is delivered to a process's resume channel to unwind it.
type killSignal struct{}

// Proc is a simulation process: a goroutine that runs cooperatively under
// the environment's scheduler. At most one process (or the scheduler) runs
// at any instant; a process only ever blocks in Wait, Sleep or the blocking
// operations built on them.
type Proc struct {
	env      *Env
	id       int64
	name     string
	resume   chan any // scheduler -> process, carries the wait value
	done     *Event   // triggered with the process result when it returns
	finished bool
	killed   bool
}

// Go starts a new process executing fn. The process body receives its own
// Proc handle, through which it sleeps and waits. fn begins executing at the
// current virtual time, after already-scheduled work for this instant.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	e.nprocs++
	if name == "" {
		name = fmt.Sprintf("proc-%d", e.nprocs)
	}
	p := &Proc{
		env:    e,
		id:     e.nprocs,
		name:   name,
		resume: make(chan any),
		done:   e.NewEvent(),
	}
	e.procs[p] = struct{}{}
	go p.run(fn)
	// First activation rides a typed resume entry (which skips killed or
	// finished processes at dispatch), not a closure.
	e.scheduleResume(e.now, p, nil)
	return p
}

// run is the goroutine body wrapping the user function.
func (p *Proc) run(fn func(p *Proc)) {
	// Park until first activation.
	v := <-p.resume
	if _, dead := v.(killSignal); dead {
		p.exit()
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, dead := r.(killSignal); dead {
				p.exit()
				return
			}
			// A genuine panic in simulation code: surface it on the
			// scheduler side rather than crashing a bare goroutine.
			p.finished = true
			delete(p.env.procs, p)
			p.env.fatal = fmt.Sprintf("sim: panic in process %q: %v", p.name, r)
			p.env.yield <- struct{}{}
			return
		}
	}()
	fn(p)
	p.finished = true
	delete(p.env.procs, p)
	p.done.Trigger(nil)
	p.env.yield <- struct{}{}
}

// exit unwinds a killed process.
func (p *Proc) exit() {
	p.finished = true
	delete(p.env.procs, p)
	p.done.Trigger(nil)
	p.env.yield <- struct{}{}
}

// handoff transfers control to process p, delivering v as the value its
// pending Wait returns, and blocks until p yields back.
func (e *Env) handoff(p *Proc, v any) {
	prev := e.current
	e.current = p
	p.resume <- v
	<-e.yield
	e.current = prev
	if e.fatal != "" {
		msg := e.fatal
		e.fatal = ""
		panic(msg)
	}
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Done returns an event triggered when the process function returns or the
// process is killed.
func (p *Proc) Done() *Event { return p.done }

// Finished reports whether the process has returned or been killed.
func (p *Proc) Finished() bool { return p.finished }

// Kill forcibly unwinds the process (its deferred functions run). Killing a
// finished process is a no-op. A process must not kill itself; return from
// the process function instead.
func (p *Proc) Kill() {
	if p.finished {
		return
	}
	if p.env.current == p {
		panic("sim: process cannot Kill itself")
	}
	p.killed = true
	p.env.handoff(p, killSignal{})
}

// yield parks the process and returns the value delivered at resumption.
func (p *Proc) yield() any {
	p.env.yield <- struct{}{}
	v := <-p.resume
	if _, dead := v.(killSignal); dead {
		panic(killSignal{})
	}
	return v
}

// Wait blocks the process until ev triggers and returns the event's value.
// If the event already triggered, Wait returns immediately without yielding.
//
// On a partitioned world the event must belong to the process's own shard:
// Trigger resumes waiters through the event's environment, so a process
// parked on another shard's event would be rescheduled by that shard's
// dispatcher — racing its home heap and deadlocking the window barrier.
// Cross-shard signalling goes through the mailbox lanes (AtArgOn) instead,
// with the receiving shard triggering a local event. Waiting across shards
// panics immediately rather than deadlocking at trigger time.
func (p *Proc) Wait(ev *Event) any {
	if p.env.current != p {
		panic("sim: Wait called from outside process context")
	}
	if ev.env != p.env && ev.env.world != nil && ev.env.world == p.env.world {
		panic(fmt.Sprintf("sim: process %q on shard %d cannot wait on shard %d's event: cross-shard signalling must ride the mailbox lanes (AtArgOn)",
			p.name, p.env.shard, ev.env.shard))
	}
	if ev.Triggered() {
		return ev.val
	}
	ev.waiters = append(ev.waiters, p)
	return p.yield()
}

// Sleep blocks the process for d units of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	// The timer event's lifetime is exactly this call: recycle it. If the
	// process is killed mid-sleep the release is skipped and the event
	// falls back to the garbage collector, which is safe.
	env := p.env
	ev := env.AcquireEvent()
	env.scheduleTrigger(env.now+d, ev, nil)
	p.Wait(ev)
	env.ReleaseEvent(ev)
}

// WaitAll blocks until every event in evs has triggered.
func (p *Proc) WaitAll(evs ...*Event) {
	for _, ev := range evs {
		p.Wait(ev)
	}
}

// WaitAny blocks until at least one of evs triggers, returning the index and
// value of the first event (in evs order) found triggered when the process
// resumes.
func (p *Proc) WaitAny(evs ...*Event) (int, any) {
	for {
		for i, ev := range evs {
			if ev.Triggered() {
				return i, ev.val
			}
		}
		first := p.env.NewEvent()
		for _, ev := range evs {
			ev.onTrigger(func(v any) {
				first.TryTrigger(v)
			})
		}
		p.Wait(first)
	}
}
