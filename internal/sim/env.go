package sim

import (
	"fmt"
	"sort"
)

// Env is a discrete-event simulation environment: a virtual clock, an event
// heap and the set of live processes. An Env is not safe for concurrent use
// from multiple OS-level goroutines other than through the Proc mechanism.
type Env struct {
	now      Time
	queue    entryHeap
	seq      int64
	yield    chan struct{} // proc -> scheduler handoff
	current  *Proc
	procs    map[*Proc]struct{} // live (started, not finished) processes
	stopped  bool               // set by Stop to end Run early
	nprocs   int64              // counter for default proc names
	fatal    string             // set when a process panics; re-raised by handoff
	executed int64              // heap entries dispatched so far
	evFree   []*Event           // recycled Events (see AcquireEvent)
	tel      any                // opaque telemetry attachment (see SetTelemetry)
	flt      any                // opaque fault-plan attachment (see SetFault)

	// Periodic observation hook (see SetSampler). The sampler is NOT a heap
	// event: it fires inside the dispatch loop between events, so sequence
	// numbers, executed counts and therefore all simulated behavior are
	// identical with sampling on or off.
	sampleEvery Time
	sampleNext  Time
	sampleFn    func(at Time)

	// Sharded parallel execution (see shard.go). All zero on the classic
	// single-heap path: world stays nil and every check below is one nil
	// test, so unpartitioned behavior is unchanged.
	world        *world // non-nil once Partition has run
	shard        int32  // this view's shard index within world
	xseq         int64  // per-shard sequence for cross-shard deposits
	shardWorkers int    // declared worker bound (SetShardWorkers)
	windowStalls int64  // windows in which this shard dispatched nothing
}

// NewEnv creates an empty simulation environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// SetTelemetry attaches an opaque observability handle to the environment.
// The kernel never inspects it; layers built on the environment retrieve it
// with Telemetry and type-assert. Keeping the slot untyped avoids an import
// cycle (the telemetry package needs sim.Time) while giving every layer a
// single well-known place to find the session's recorder.
func (e *Env) SetTelemetry(t any) { e.tel = t }

// Telemetry returns the attachment installed by SetTelemetry (nil if none).
func (e *Env) Telemetry() any { return e.tel }

// SetFault attaches an opaque fault-injection plan to the environment, the
// same way SetTelemetry carries the observability handle: the kernel never
// inspects it, and layers that can arm faults (the WAN link, the TCP stack)
// retrieve it with Fault and type-assert. See the fault package.
func (e *Env) SetFault(f any) { e.flt = f }

// Fault returns the attachment installed by SetFault (nil if none).
func (e *Env) Fault() any { return e.flt }

// SetSampler installs a periodic observation hook: fn(S) is invoked at
// S = every, 2*every, 3*every, ... of virtual time, with the guarantee that
// every event scheduled at or before S has executed and no event after S
// has — fn observes a consistent prefix of the simulation. The hook runs in
// scheduler context between event dispatches (never as a heap event, so it
// perturbs nothing) and must not schedule simulation work. Sample times
// with no event activity around them still fire, in order, as soon as the
// clock is known to have passed them; samples past a Stop are skipped (the
// stopping event's shard peers may not have settled). On a partitioned
// world the hook fires at window barriers, with window horizons clamped so
// no shard runs past a pending sample time — the observable guarantee is
// identical to the single-heap one. Installing with every <= 0 or a nil fn
// removes the sampler.
func (e *Env) SetSampler(every Time, fn func(at Time)) {
	if every <= 0 || fn == nil {
		e.sampleEvery, e.sampleNext, e.sampleFn = 0, 0, nil
		return
	}
	e.sampleEvery = every
	e.sampleNext = e.now + every
	e.sampleFn = fn
}

// fireSamples invokes the sampler for every pending sample time <= through,
// advancing the schedule. Callers guarantee all events at or before
// `through` have been dispatched.
func (e *Env) fireSamples(through Time) {
	for e.sampleFn != nil && e.sampleNext <= through {
		at := e.sampleNext
		e.sampleNext += e.sampleEvery
		e.sampleFn(at)
	}
}

// push enqueues ent at absolute time ent.at (>= e.now), stamping the FIFO
// tie-breaker sequence.
func (e *Env) push(ent entry) {
	if ent.at < e.now {
		panic(fmt.Sprintf("sim: schedule in the past: at=%v now=%v", ent.at, e.now))
	}
	e.seq++
	ent.seq = e.seq
	e.queue.push(ent)
}

// schedule enqueues fn to run at absolute time at (>= e.now).
func (e *Env) schedule(at Time, fn func()) {
	e.push(entry{at: at, kind: kindFn, fn: fn})
}

// scheduleArg enqueues fn(v) at absolute time at without a closure.
func (e *Env) scheduleArg(at Time, fn func(any), v any) {
	e.push(entry{at: at, kind: kindFnArg, fnv: fn, val: v})
}

// scheduleResume enqueues the resumption of p with value v at time at.
func (e *Env) scheduleResume(at Time, p *Proc, v any) {
	e.push(entry{at: at, kind: kindResume, p: p, val: v})
}

// scheduleTrigger enqueues ev.Trigger(v) at time at.
func (e *Env) scheduleTrigger(at Time, ev *Event, v any) {
	e.push(entry{at: at, kind: kindTrigger, ev: ev, val: v})
}

// At schedules fn to be invoked (in scheduler context, not in a process) at
// the given delay from now. It is the low-level hook used to build timers
// and hardware models that do not need a full process.
func (e *Env) At(delay Time, fn func()) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.schedule(e.now+delay, fn)
}

// AtArg schedules fn(arg) at the given delay from now. Unlike At, it
// allocates no closure: fn is typically a long-lived function value cached
// by the caller (a port's deliver hook, a QP's receive hook) and arg the
// per-event payload, so hardware models can schedule millions of packet
// events without per-event garbage.
func (e *Env) AtArg(delay Time, fn func(any), arg any) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.scheduleArg(e.now+delay, fn, arg)
}

// dispatch advances the clock to ent and executes it.
func (e *Env) dispatch(ent *entry) {
	e.now = ent.at
	e.executed++
	switch ent.kind {
	case kindFn:
		ent.fn()
	case kindFnArg:
		ent.fnv(ent.val)
	case kindResume:
		if p := ent.p; !p.finished && !p.killed {
			e.handoff(p, ent.val)
		}
	case kindTrigger:
		ent.ev.Trigger(ent.val)
	}
}

// Run executes scheduled work until the event heap is empty or Stop is
// called, and returns the final virtual time. Processes still blocked when
// the heap drains are left parked; call Shutdown to unwind them.
func (e *Env) Run() Time { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes scheduled work until the heap is empty, Stop is called,
// or the next entry would be after the horizon. The clock never advances
// beyond horizon. On a partitioned world (see Partition) the call drives
// every shard under the conservative window protocol and returns when all
// shard heaps are empty.
func (e *Env) RunUntil(horizon Time) Time {
	if e.world != nil {
		return e.runWorld(horizon)
	}
	e.stopped = false
	for !e.queue.empty() && !e.stopped {
		at := e.queue.peek().at
		if at > horizon {
			// Events at or before the horizon have all run; settle any
			// samples up to it before parking the clock there.
			e.fireSamples(horizon)
			e.now = horizon
			return e.now
		}
		if e.sampleFn != nil && e.sampleNext < at {
			e.fireSamples(at - 1)
		}
		ent := e.queue.pop()
		e.dispatch(&ent)
	}
	if !e.stopped {
		// Heap drained: fire samples through the final clock. After a Stop
		// the tail is deliberately unsampled — the stopping event decided
		// the run is over, and (on a sharded world) peers may not have
		// settled, so a post-Stop sample would not be a consistent prefix.
		e.fireSamples(e.now)
	}
	return e.now
}

// Step executes exactly one scheduled entry and reports whether one existed.
func (e *Env) Step() bool {
	if e.queue.empty() {
		return false
	}
	ent := e.queue.pop()
	e.dispatch(&ent)
	return true
}

// Pending returns the number of scheduled heap entries (summed across
// shards on a partitioned world; call only between windows, not from
// concurrently running shard code).
func (e *Env) Pending() int {
	if w := e.world; w != nil {
		n := 0
		for _, s := range w.shards {
			n += s.queue.len()
		}
		return n
	}
	return e.queue.len()
}

// Executed returns the number of heap entries dispatched since the
// environment was created — a machine-independent measure of how much
// simulation work an experiment cost. On a partitioned world it sums all
// shards (call after Run returns, not from concurrent shard code).
func (e *Env) Executed() int64 {
	if w := e.world; w != nil {
		var n int64
		for _, s := range w.shards {
			n += s.executed
		}
		return n
	}
	return e.executed
}

// LiveProcs returns the number of started but unfinished processes (summed
// across shards on a partitioned world).
func (e *Env) LiveProcs() int {
	if w := e.world; w != nil {
		n := 0
		for _, s := range w.shards {
			n += len(s.procs)
		}
		return n
	}
	return len(e.procs)
}

// Stop halts Run/RunUntil after the current entry completes. It may be
// called from process or callback context. On a partitioned world it stops
// every shard at its next dispatch check; measurements taken before the
// Stop are deterministic, but the exact final clock of the other shards is
// not (each may finish the event it is on).
func (e *Env) Stop() {
	if w := e.world; w != nil {
		w.stopped.Store(true)
		return
	}
	e.stopped = true
}

// Shutdown forcibly kills every live process so their goroutines exit. It
// must be called from outside process context (i.e., not from within a
// Proc), typically after Run returns. The environment remains usable for
// inspection but no further processes should be started.
//
// Victims die in ascending id (creation) order. The live set is collected
// and sorted once per round rather than min-scanned per kill (the old
// O(n²) behavior); extra rounds only happen when a victim's deferred
// cleanup starts new processes, which — ids being monotonic — are always
// killed after every process of the previous round, exactly as before.
func (e *Env) Shutdown() {
	if w := e.world; w != nil {
		// Kill shard by shard in index order; loop in case a victim's
		// deferred cleanup starts a process on another shard.
		for again := true; again; {
			again = false
			for _, s := range w.shards {
				if len(s.procs) > 0 {
					s.shutdownLocal()
					again = true
				}
			}
		}
		return
	}
	e.shutdownLocal()
}

func (e *Env) shutdownLocal() {
	var victims []*Proc
	for len(e.procs) > 0 {
		victims = victims[:0]
		for p := range e.procs {
			victims = append(victims, p)
		}
		sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
		for _, p := range victims {
			p.Kill() // no-op if a prior victim's unwind finished it
		}
	}
}
