package sim

import (
	"container/heap"
	"fmt"
)

// entry is a scheduled closure on the event heap.
type entry struct {
	at  Time
	seq int64 // tie-breaker: FIFO among equal times
	fn  func()
}

type entryHeap []*entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(*entry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h entryHeap) peek() *entry { return h[0] }
func (h entryHeap) empty() bool  { return len(h) == 0 }

// Env is a discrete-event simulation environment: a virtual clock, an event
// heap and the set of live processes. An Env is not safe for concurrent use
// from multiple OS-level goroutines other than through the Proc mechanism.
type Env struct {
	now      Time
	queue    entryHeap
	seq      int64
	yield    chan struct{} // proc -> scheduler handoff
	current  *Proc
	procs    map[*Proc]struct{} // live (started, not finished) processes
	stopped  bool               // set by Stop to end Run early
	nprocs   int64              // counter for default proc names
	fatal    string             // set when a process panics; re-raised by handoff
	executed int64              // heap entries dispatched so far
}

// NewEnv creates an empty simulation environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// schedule enqueues fn to run at absolute time at (>= e.now).
func (e *Env) schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule in the past: at=%v now=%v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &entry{at: at, seq: e.seq, fn: fn})
}

// At schedules fn to be invoked (in scheduler context, not in a process) at
// the given delay from now. It is the low-level hook used to build timers
// and hardware models that do not need a full process.
func (e *Env) At(delay Time, fn func()) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.schedule(e.now+delay, fn)
}

// Run executes scheduled work until the event heap is empty or Stop is
// called, and returns the final virtual time. Processes still blocked when
// the heap drains are left parked; call Shutdown to unwind them.
func (e *Env) Run() Time { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes scheduled work until the heap is empty, Stop is called,
// or the next entry would be after the horizon. The clock never advances
// beyond horizon.
func (e *Env) RunUntil(horizon Time) Time {
	e.stopped = false
	for !e.queue.empty() && !e.stopped {
		if e.queue.peek().at > horizon {
			e.now = horizon
			return e.now
		}
		ent := heap.Pop(&e.queue).(*entry)
		e.now = ent.at
		e.executed++
		ent.fn()
	}
	return e.now
}

// Step executes exactly one scheduled entry and reports whether one existed.
func (e *Env) Step() bool {
	if e.queue.empty() {
		return false
	}
	ent := heap.Pop(&e.queue).(*entry)
	e.now = ent.at
	e.executed++
	ent.fn()
	return true
}

// Pending returns the number of scheduled heap entries.
func (e *Env) Pending() int { return len(e.queue) }

// Executed returns the number of heap entries dispatched since the
// environment was created — a machine-independent measure of how much
// simulation work an experiment cost.
func (e *Env) Executed() int64 { return e.executed }

// LiveProcs returns the number of started but unfinished processes.
func (e *Env) LiveProcs() int { return len(e.procs) }

// Stop halts Run/RunUntil after the current entry completes. It may be
// called from process or callback context.
func (e *Env) Stop() { e.stopped = true }

// Shutdown forcibly kills every live process so their goroutines exit. It
// must be called from outside process context (i.e., not from within a
// Proc), typically after Run returns. The environment remains usable for
// inspection but no further processes should be started.
func (e *Env) Shutdown() {
	for len(e.procs) > 0 {
		// Pick the process with the smallest id for determinism.
		var victim *Proc
		for p := range e.procs {
			if victim == nil || p.id < victim.id {
				victim = p
			}
		}
		victim.Kill()
	}
}
