package sim

import (
	"math"
	"testing"
)

// TestRunUntilMaxHorizonNoOverflow is the regression test for the window
// limit overflow: a horizon at MaxInt64 (or a huge registered bound) used
// to wrap `limit` negative, so the window executed nothing and the loop
// never terminated. The arithmetic must saturate instead.
func TestRunUntilMaxHorizonNoOverflow(t *testing.T) {
	for _, la := range []Time{10 * Microsecond, Time(math.MaxInt64 - 1)} {
		env := NewEnv()
		views := env.Partition(2)
		env.RegisterLookahead(la)
		ran := 0
		views[0].At(Microsecond, func() { ran++ })
		views[1].At(2*Microsecond, func() { ran++ })
		end := env.RunUntil(Time(math.MaxInt64))
		if ran != 2 {
			t.Fatalf("lookahead %v: executed %d events, want 2", la, ran)
		}
		if end < 2*Microsecond {
			t.Fatalf("lookahead %v: RunUntil returned %v, want >= 2us", la, end)
		}
	}
}

// TestChannelLookaheadRegistration checks the directed-channel bound API:
// bounds are per (src,dst) direction, lower later wins, the global
// RegisterLookahead is shorthand for all pairs, and Lookahead reports the
// world minimum.
func TestChannelLookaheadRegistration(t *testing.T) {
	env := NewEnv()
	views := env.Partition(3)
	views[0].RegisterLookaheadBetween(views[1], 5*Microsecond)
	views[1].RegisterLookaheadBetween(views[0], 7*Microsecond)
	if got := views[0].ChannelLookahead(views[1]); got != 5*Microsecond {
		t.Fatalf("channel 0->1 = %v, want 5us", got)
	}
	if got := views[1].ChannelLookahead(views[0]); got != 7*Microsecond {
		t.Fatalf("channel 1->0 = %v, want 7us", got)
	}
	if got := views[0].ChannelLookahead(views[2]); got != 0 {
		t.Fatalf("unregistered channel 0->2 = %v, want 0", got)
	}
	// Re-registering only lowers.
	views[0].RegisterLookaheadBetween(views[1], 9*Microsecond)
	if got := views[0].ChannelLookahead(views[1]); got != 5*Microsecond {
		t.Fatalf("channel 0->1 after higher re-register = %v, want 5us", got)
	}
	views[0].RegisterLookaheadBetween(views[1], 3*Microsecond)
	if got := views[0].ChannelLookahead(views[1]); got != 3*Microsecond {
		t.Fatalf("channel 0->1 after lower re-register = %v, want 3us", got)
	}
	if got := env.Lookahead(); got != 3*Microsecond {
		t.Fatalf("world lookahead = %v, want the 3us minimum", got)
	}
	// The all-pairs shorthand fills in the remaining channels.
	env.RegisterLookahead(4 * Microsecond)
	if got := views[0].ChannelLookahead(views[2]); got != 4*Microsecond {
		t.Fatalf("channel 0->2 after global register = %v, want 4us", got)
	}
	if got := views[0].ChannelLookahead(views[1]); got != 3*Microsecond {
		t.Fatalf("channel 0->1 after global register = %v, want to keep 3us", got)
	}
	// Same-shard and unpartitioned environments have no channels.
	if got := views[0].ChannelLookahead(views[0]); got != 0 {
		t.Fatalf("self channel = %v, want 0", got)
	}
	if got := NewEnv().ChannelLookahead(views[0]); got != 0 {
		t.Fatalf("unpartitioned ChannelLookahead = %v, want 0", got)
	}
}

// TestAtArgOnUnregisteredChannelPanics: a cross-shard deposit on a channel
// with no registered bound is unsound (the scheduler cannot account for it
// in any shard's horizon) and must be rejected loudly.
func TestAtArgOnUnregisteredChannelPanics(t *testing.T) {
	env := NewEnv()
	views := env.Partition(3)
	views[0].RegisterLookaheadBetween(views[1], 10*Microsecond)
	views[0].AtArgOn(views[1], 10*Microsecond, func(any) {}, nil) // registered: fine
	defer func() {
		if recover() == nil {
			t.Fatal("deposit on unregistered channel did not panic")
		}
	}()
	views[0].AtArgOn(views[2], 10*Microsecond, func(any) {}, nil)
}

// TestCrossShardWaitPanics: a process parked on another shard's event
// would be resumed by that shard's dispatcher — racing its home heap and
// deadlocking the window barrier — so Wait must reject it immediately
// with a pointer at the supported mechanism (mailbox lanes).
func TestCrossShardWaitPanics(t *testing.T) {
	env := NewEnv()
	env.SetShardWorkers(2)
	views := env.Partition(2)
	env.RegisterLookahead(Millisecond)
	remote := views[1].NewEvent()
	views[0].Go("waiter", func(p *Proc) {
		p.Wait(remote)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard Wait did not panic")
		}
	}()
	env.Run()
}

// TestTakeWindowStatsDeltas: consecutive takes must report independent
// per-interval counts while WindowStats stays cumulative.
func TestTakeWindowStatsDeltas(t *testing.T) {
	env := NewEnv()
	views := env.Partition(2)
	env.RegisterLookahead(10 * Microsecond)
	phase := func(base Time, n int) {
		for i := 0; i < n; i++ {
			views[0].At(base+Time(i)*20*Microsecond-env.Now(), func() {})
		}
	}
	phase(Microsecond, 3)
	env.Run()
	d1 := env.TakeWindowStats()
	if d1.Windows <= 0 || d1.Shards[0].Executed != 3 {
		t.Fatalf("first delta = %+v, want >0 windows and 3 events on shard 0", d1)
	}
	phase(env.Now()+Microsecond, 5)
	env.Run()
	d2 := env.TakeWindowStats()
	if d2.Shards[0].Executed != 5 {
		t.Fatalf("second delta executed = %d, want 5 (independent of the first interval)", d2.Shards[0].Executed)
	}
	if d2.Windows <= 0 {
		t.Fatalf("second delta windows = %d, want > 0", d2.Windows)
	}
	wins, shards := env.WindowStats()
	if wins != d1.Windows+d2.Windows {
		t.Fatalf("cumulative windows %d != sum of deltas %d+%d", wins, d1.Windows, d2.Windows)
	}
	if shards[0].Executed != 8 {
		t.Fatalf("cumulative executed %d, want 8", shards[0].Executed)
	}
	d3 := env.TakeWindowStats()
	if d3.Windows != 0 || d3.Shards[0].Executed != 0 {
		t.Fatalf("idle delta = %+v, want zeros", d3)
	}
	if d := NewEnv().TakeWindowStats(); d.Shards != nil {
		t.Fatal("unpartitioned TakeWindowStats must return nil shard stats")
	}
}

// starWindows runs a heterogeneous-delay star workload — a hub bouncing
// with two satellites over 10ms channels while each arrival triggers a
// dense burst of 1ms-spaced local events, plus an idle shard reachable
// over a 1ms channel — and returns (windows, horizon, executed). With
// perChannel the links register their own bounds; otherwise a uniform 1ms
// bound stands in for the old global-lookahead scheduler (its window width
// was the world minimum, so the uniform registration is a faithful — in
// fact slightly generous — baseline).
func starWindows(t *testing.T, workers int, perChannel bool) (int64, Time, int64) {
	t.Helper()
	const (
		short  = Millisecond
		long   = 10 * Millisecond
		rounds = 20
		burst  = 9
	)
	env := NewEnv()
	env.SetShardWorkers(workers)
	views := env.Partition(4) // 0 hub, 1 metro satellite (idle), 2 and 3 busy
	if perChannel {
		for i := 1; i < 4; i++ {
			d := long
			if i == 1 {
				d = short
			}
			views[0].RegisterLookaheadBetween(views[i], d)
			views[i].RegisterLookaheadBetween(views[0], d)
		}
	} else {
		env.RegisterLookahead(short)
	}
	var bounce func(peer int, round int) func(any)
	bounce = func(peer, round int) func(any) {
		return func(any) {
			v := views[peer]
			for k := 0; k < burst; k++ {
				v.At(Time(k+1)*Millisecond, func() {})
			}
			if round < rounds {
				v.AtArgOn(views[0], long, func(any) {
					views[0].AtArgOn(views[peer], long, bounce(peer, round+1), nil)
				}, nil)
			}
		}
	}
	views[1].At(Microsecond, func() {}) // the metro shard: one event, then idle
	views[0].At(Microsecond, func() {
		views[0].AtArgOn(views[2], long, bounce(2, 0), nil)
		views[0].AtArgOn(views[3], long, bounce(3, 0), nil)
	})
	env.Run()
	wins, _ := env.WindowStats()
	return wins, env.HorizonAdvance(), env.Executed()
}

// TestPerChannelWindowsDrop: on a heterogeneous star whose short link is
// idle, per-channel horizons must run the same workload in at least 2x
// fewer windows than a uniform world-minimum bound (it is the short link's
// bound that chops the busy satellites' bursts under the uniform rule),
// with a correspondingly larger cumulative horizon per window, and execute
// exactly the same events at any worker count.
func TestPerChannelWindowsDrop(t *testing.T) {
	globalWins, _, globalEvents := starWindows(t, 1, false)
	for _, workers := range []int{1, 4} {
		chanWins, chanHorizon, chanEvents := starWindows(t, workers, true)
		if chanEvents != globalEvents {
			t.Fatalf("workers=%d: per-channel executed %d events, uniform %d", workers, chanEvents, globalEvents)
		}
		if chanWins*2 > globalWins {
			t.Fatalf("workers=%d: per-channel ran %d windows, uniform %d — want at least a 2x drop", workers, chanWins, globalWins)
		}
		if chanWins > 0 && chanHorizon/Time(chanWins) < Millisecond {
			t.Fatalf("workers=%d: mean horizon advance %v per window, want >= 1ms", workers, chanHorizon/Time(chanWins))
		}
	}
}
