package sim

// Event is a one-shot occurrence that processes can wait on and callbacks
// can subscribe to. An event carries an optional value delivered to waiters.
type Event struct {
	env       *Env
	triggered bool
	val       any
	waiters   []*Proc
	callbacks []func(any)
}

// NewEvent creates an untriggered event. The event's lifetime is managed by
// the garbage collector; kernel-internal hot paths with a provable last use
// recycle events through AcquireEvent/ReleaseEvent instead.
func (e *Env) NewEvent() *Event { return &Event{env: e} }

// AcquireEvent returns an untriggered event from the environment's
// freelist (or a fresh one). It is the allocation-free counterpart of
// NewEvent for blocking primitives — sleep timers, queue and resource
// waits, CQ polls — whose events have a strictly scoped lifetime: created,
// waited on, triggered exactly once, then dead.
func (e *Env) AcquireEvent() *Event {
	if n := len(e.evFree); n > 0 {
		ev := e.evFree[n-1]
		e.evFree = e.evFree[:n-1]
		return ev
	}
	return &Event{env: e}
}

// ReleaseEvent recycles ev onto the freelist. The caller asserts that no
// reference to ev survives — no parked waiter, no pending callback, no
// scheduled trigger. The canonical pattern is release immediately after a
// Wait on the event returns. Events a peer may still observe (completion
// events handed to user code, WaitAny composites) must use NewEvent and be
// left to the garbage collector. The freelist is per-Env and therefore
// deterministic: reuse order depends only on the simulation itself.
func (e *Env) ReleaseEvent(ev *Event) {
	ev.triggered = false
	ev.val = nil
	ev.waiters = ev.waiters[:0]
	ev.callbacks = ev.callbacks[:0]
	e.evFree = append(e.evFree, ev)
}

// Triggered reports whether the event has fired.
func (ev *Event) Triggered() bool { return ev.triggered }

// Value returns the value the event was triggered with (nil if untriggered).
func (ev *Event) Value() any { return ev.val }

// Trigger fires the event with the given value. Waiting processes are
// resumed, and callbacks invoked, at the current virtual time in
// registration order. Triggering an already-triggered event panics: events
// are one-shot by design (use Queue for streams of values).
func (ev *Event) Trigger(v any) {
	if ev.triggered {
		panic("sim: event triggered twice")
	}
	ev.triggered = true
	ev.val = v
	env := ev.env
	for _, w := range ev.waiters {
		env.scheduleResume(env.now, w, v)
	}
	for _, cb := range ev.callbacks {
		env.scheduleArg(env.now, cb, v)
	}
	// Truncate rather than nil out: a recycled event reuses the backing
	// arrays. Nothing can append after the trigger — late Waits return
	// immediately and late OnTriggers schedule directly.
	ev.waiters = ev.waiters[:0]
	ev.callbacks = ev.callbacks[:0]
}

// TryTrigger fires the event if it has not fired yet and reports whether it
// did. It is useful for idempotent completion paths (timeout vs. success).
func (ev *Event) TryTrigger(v any) bool {
	if ev.triggered {
		return false
	}
	ev.Trigger(v)
	return true
}

// onTrigger registers cb to run when the event fires; if it already fired,
// cb is scheduled immediately.
func (ev *Event) onTrigger(cb func(any)) {
	if ev.triggered {
		ev.env.scheduleArg(ev.env.now, cb, ev.val)
		return
	}
	ev.callbacks = append(ev.callbacks, cb)
}

// OnTrigger registers cb to run (in scheduler context) when the event fires.
func (ev *Event) OnTrigger(cb func(any)) { ev.onTrigger(cb) }
