package sim

// Event is a one-shot occurrence that processes can wait on and callbacks
// can subscribe to. An event carries an optional value delivered to waiters.
type Event struct {
	env       *Env
	triggered bool
	val       any
	waiters   []*Proc
	callbacks []func(any)
}

// NewEvent creates an untriggered event.
func (e *Env) NewEvent() *Event { return &Event{env: e} }

// Triggered reports whether the event has fired.
func (ev *Event) Triggered() bool { return ev.triggered }

// Value returns the value the event was triggered with (nil if untriggered).
func (ev *Event) Value() any { return ev.val }

// Trigger fires the event with the given value. Waiting processes are
// resumed, and callbacks invoked, at the current virtual time in
// registration order. Triggering an already-triggered event panics: events
// are one-shot by design (use Queue for streams of values).
func (ev *Event) Trigger(v any) {
	if ev.triggered {
		panic("sim: event triggered twice")
	}
	ev.triggered = true
	ev.val = v
	waiters, callbacks := ev.waiters, ev.callbacks
	ev.waiters, ev.callbacks = nil, nil
	for _, w := range waiters {
		w := w
		ev.env.schedule(ev.env.now, func() {
			if w.finished || w.killed {
				return
			}
			ev.env.handoff(w, v)
		})
	}
	for _, cb := range callbacks {
		cb := cb
		ev.env.schedule(ev.env.now, func() { cb(v) })
	}
}

// TryTrigger fires the event if it has not fired yet and reports whether it
// did. It is useful for idempotent completion paths (timeout vs. success).
func (ev *Event) TryTrigger(v any) bool {
	if ev.triggered {
		return false
	}
	ev.Trigger(v)
	return true
}

// onTrigger registers cb to run when the event fires; if it already fired,
// cb is scheduled immediately.
func (ev *Event) onTrigger(cb func(any)) {
	if ev.triggered {
		v := ev.val
		ev.env.schedule(ev.env.now, func() { cb(v) })
		return
	}
	ev.callbacks = append(ev.callbacks, cb)
}

// OnTrigger registers cb to run (in scheduler context) when the event fires.
func (ev *Event) OnTrigger(cb func(any)) { ev.onTrigger(cb) }
