package sim

// Queue is an unbounded-or-bounded FIFO channel between processes. A zero
// capacity means unbounded. Put blocks while the queue is full (bounded
// queues only); Get blocks while it is empty. Ordering among blocked
// processes is FIFO, which keeps the simulation deterministic.
//
// Items and waiter lists live in ring buffers, so steady-state streaming
// through a queue allocates nothing.
type Queue[T any] struct {
	env     *Env
	cap     int // 0 = unbounded
	items   Ring[T]
	getters Ring[*Event] // waiting receivers, FIFO
	putters Ring[*Event] // waiting senders, FIFO (bounded only)
}

// NewQueue creates a queue with the given capacity; capacity 0 means
// unbounded.
func NewQueue[T any](env *Env, capacity int) *Queue[T] {
	if capacity < 0 {
		panic("sim: negative queue capacity")
	}
	return &Queue[T]{env: env, cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return q.items.Len() }

// Put appends v, blocking while a bounded queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.cap > 0 && q.items.Len() >= q.cap {
		ev := q.env.AcquireEvent()
		q.putters.Push(ev)
		p.Wait(ev)
		q.env.ReleaseEvent(ev)
	}
	q.push(v)
}

// TryPut appends v without blocking and reports whether it fit.
func (q *Queue[T]) TryPut(v T) bool {
	if q.cap > 0 && q.items.Len() >= q.cap {
		return false
	}
	q.push(v)
	return true
}

func (q *Queue[T]) push(v T) {
	q.items.Push(v)
	if q.getters.Len() > 0 {
		q.getters.Pop().Trigger(nil)
	}
}

// Get removes and returns the head item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Proc) T {
	for q.items.Len() == 0 {
		ev := q.env.AcquireEvent()
		q.getters.Push(ev)
		p.Wait(ev)
		q.env.ReleaseEvent(ev)
	}
	v := q.items.Pop()
	if q.putters.Len() > 0 {
		q.putters.Pop().Trigger(nil)
	}
	return v
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if q.items.Len() == 0 {
		return zero, false
	}
	v := q.items.Pop()
	if q.putters.Len() > 0 {
		q.putters.Pop().Trigger(nil)
	}
	return v, true
}

// Resource is a counting semaphore with FIFO queuing, used to model
// contended hardware such as a node CPU or a DMA engine.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waiters  Ring[*Event] // FIFO
}

// NewResource creates a resource with the given number of slots.
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: env, capacity: capacity}
}

// Acquire blocks until a slot is free and claims it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		ev := r.env.AcquireEvent()
		r.waiters.Push(ev)
		p.Wait(ev)
		r.env.ReleaseEvent(ev)
	}
	r.inUse++
}

// Release frees a slot previously claimed with Acquire.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of unacquired resource")
	}
	r.inUse--
	if r.waiters.Len() > 0 {
		r.waiters.Pop().Trigger(nil)
	}
}

// Use runs the resource for d time on behalf of p: acquire, hold for d,
// release. It models a serial processing element.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// InUse returns the number of currently claimed slots.
func (r *Resource) InUse() int { return r.inUse }
