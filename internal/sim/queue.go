package sim

// Queue is an unbounded-or-bounded FIFO channel between processes. A zero
// capacity means unbounded. Put blocks while the queue is full (bounded
// queues only); Get blocks while it is empty. Ordering among blocked
// processes is FIFO, which keeps the simulation deterministic.
type Queue[T any] struct {
	env     *Env
	cap     int // 0 = unbounded
	items   []T
	getters []*Event // waiting receivers, FIFO
	putters []*Event // waiting senders, FIFO (bounded only)
}

// NewQueue creates a queue with the given capacity; capacity 0 means
// unbounded.
func NewQueue[T any](env *Env, capacity int) *Queue[T] {
	if capacity < 0 {
		panic("sim: negative queue capacity")
	}
	return &Queue[T]{env: env, cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v, blocking while a bounded queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.cap > 0 && len(q.items) >= q.cap {
		ev := q.env.NewEvent()
		q.putters = append(q.putters, ev)
		p.Wait(ev)
	}
	q.push(v)
}

// TryPut appends v without blocking and reports whether it fit.
func (q *Queue[T]) TryPut(v T) bool {
	if q.cap > 0 && len(q.items) >= q.cap {
		return false
	}
	q.push(v)
	return true
}

func (q *Queue[T]) push(v T) {
	q.items = append(q.items, v)
	if len(q.getters) > 0 {
		ev := q.getters[0]
		q.getters = q.getters[1:]
		ev.Trigger(nil)
	}
}

// Get removes and returns the head item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		ev := q.env.NewEvent()
		q.getters = append(q.getters, ev)
		p.Wait(ev)
	}
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		ev := q.putters[0]
		q.putters = q.putters[1:]
		ev.Trigger(nil)
	}
	return v
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		ev := q.putters[0]
		q.putters = q.putters[1:]
		ev.Trigger(nil)
	}
	return v, true
}

// Resource is a counting semaphore with FIFO queuing, used to model
// contended hardware such as a node CPU or a DMA engine.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waiters  []*Event // FIFO
}

// NewResource creates a resource with the given number of slots.
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: env, capacity: capacity}
}

// Acquire blocks until a slot is free and claims it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		ev := r.env.NewEvent()
		r.waiters = append(r.waiters, ev)
		p.Wait(ev)
	}
	r.inUse++
}

// Release frees a slot previously claimed with Acquire.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of unacquired resource")
	}
	r.inUse--
	if len(r.waiters) > 0 {
		ev := r.waiters[0]
		r.waiters = r.waiters[1:]
		ev.Trigger(nil)
	}
}

// Use runs the resource for d time on behalf of p: acquire, hold for d,
// release. It models a serial processing element.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// InUse returns the number of currently claimed slots.
func (r *Resource) InUse() int { return r.inUse }
