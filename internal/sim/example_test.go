package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// Two processes coordinating through an event: the classic DES pattern.
func Example() {
	env := sim.NewEnv()
	ready := env.NewEvent()
	env.Go("worker", func(p *sim.Proc) {
		p.Sleep(5 * sim.Microsecond)
		ready.Trigger("result")
	})
	env.Go("waiter", func(p *sim.Proc) {
		v := p.Wait(ready)
		fmt.Printf("got %v at %v\n", v, p.Now())
	})
	env.Run()
	// Output: got result at 5000ns
}

// A bounded queue provides backpressure between producer and consumer.
func ExampleQueue() {
	env := sim.NewEnv()
	q := sim.NewQueue[int](env, 2)
	env.Go("producer", func(p *sim.Proc) {
		for i := 1; i <= 3; i++ {
			q.Put(p, i)
		}
		fmt.Printf("producer done at %v\n", p.Now())
	})
	env.Go("consumer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * sim.Microsecond)
			q.Get(p)
		}
	})
	env.Run()
	// Output: producer done at 10.00us
}

// A Resource models contended serial hardware.
func ExampleResource() {
	env := sim.NewEnv()
	cpu := sim.NewResource(env, 1)
	for i := 0; i < 2; i++ {
		i := i
		env.Go("job", func(p *sim.Proc) {
			cpu.Use(p, 3*sim.Microsecond)
			fmt.Printf("job %d finished at %v\n", i, p.Now())
		})
	}
	env.Run()
	// Output:
	// job 0 finished at 3000ns
	// job 1 finished at 6000ns
}
