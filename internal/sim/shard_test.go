package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestPartitionBasics checks the shard-view plumbing: view 0 is the root,
// views share the world, and Sharded/ShardWorkers report correctly.
func TestPartitionBasics(t *testing.T) {
	env := NewEnv()
	env.SetShardWorkers(4)
	views := env.Partition(3)
	if views[0] != env {
		t.Fatal("view 0 must be the receiver")
	}
	if !env.Sharded() {
		t.Fatal("root not sharded after Partition")
	}
	for i, v := range views {
		if !v.Sharded() {
			t.Fatalf("view %d not sharded", i)
		}
		if v.ShardWorkers() != 4 {
			t.Fatalf("view %d workers = %d, want 4", i, v.ShardWorkers())
		}
	}
	if env.Lookahead() != 0 {
		t.Fatalf("lookahead before registration = %v, want 0", env.Lookahead())
	}
	env.RegisterLookahead(5 * Microsecond)
	env.RegisterLookahead(3 * Microsecond)
	env.RegisterLookahead(9 * Microsecond)
	if env.Lookahead() != 3*Microsecond {
		t.Fatalf("lookahead = %v, want the minimum 3us", env.Lookahead())
	}
}

func TestPartitionTwicePanics(t *testing.T) {
	env := NewEnv()
	env.Partition(2)
	defer func() {
		if recover() == nil {
			t.Fatal("second Partition did not panic")
		}
	}()
	env.Partition(2)
}

// shardedPingPong builds a 3-shard world where every shard bounces an
// event to the next shard with the given lookahead delay, and returns each
// shard's delivery log. The logs are kept per shard — each is written only
// by the shard executing the delivery, so the collection is race-free under
// parallel workers, and per-shard execution order (plus the deterministic
// cross-shard merge feeding it) is exactly what the protocol guarantees;
// the interleaving *between* shards inside one window is scheduling noise.
func shardedPingPong(workers int, rounds int) []string {
	env := NewEnv()
	env.SetShardWorkers(workers)
	views := env.Partition(3)
	env.RegisterLookahead(10 * Microsecond)
	order := make([][]string, len(views))
	var send func(from int, round int) func(any)
	send = func(from, round int) func(any) {
		return func(any) {
			order[from] = append(order[from], fmt.Sprintf("r%d:s%d@%v", round, from, views[from].Now()))
			if round < rounds {
				next := (from + 1) % len(views)
				views[from].AtArgOn(views[next], 10*Microsecond, send(next, round+1), nil)
			}
		}
	}
	// Seed one event per shard locally: three concurrent cascades chasing
	// each other around the ring.
	for i, v := range views {
		i, v := i, v
		v.At(Microsecond, func() {
			next := (i + 1) % len(views)
			v.AtArgOn(views[next], 10*Microsecond, send(next, 0), nil)
		})
	}
	env.Run()
	var flat []string
	for i, o := range order {
		flat = append(flat, fmt.Sprintf("shard%d{%s}", i, strings.Join(o, ",")))
	}
	return flat
}

// TestCrossShardDeterminism runs the same cross-shard event cascades
// sequentially and with parallel workers; every shard's executed order
// (and clocks) must be identical.
func TestCrossShardDeterminism(t *testing.T) {
	seq := shardedPingPong(1, 40)
	if len(strings.Join(seq, "")) < 100 {
		t.Fatal("no deliveries executed")
	}
	par := shardedPingPong(4, 40)
	if strings.Join(seq, ",") != strings.Join(par, ",") {
		t.Fatalf("delivery order diverges:\nseq: %v\npar: %v", seq, par)
	}
}

// TestLookaheadViolationPanics checks that a cross-shard deposit below the
// registered bound is rejected loudly rather than corrupting the schedule.
func TestLookaheadViolationPanics(t *testing.T) {
	env := NewEnv()
	views := env.Partition(2)
	env.RegisterLookahead(10 * Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("sub-lookahead AtArgOn did not panic")
		}
	}()
	views[0].AtArgOn(views[1], Microsecond, func(any) {}, nil)
}

// TestRegisterNonPositiveLookaheadPanics guards the protocol's soundness
// precondition.
func TestRegisterNonPositiveLookaheadPanics(t *testing.T) {
	env := NewEnv()
	env.Partition(2)
	defer func() {
		if recover() == nil {
			t.Fatal("zero lookahead did not panic")
		}
	}()
	env.RegisterLookahead(0)
}

// TestAtArgOnSameShard is the degenerate case: target == source must behave
// exactly like AtArg, with no lookahead requirement.
func TestAtArgOnSameShard(t *testing.T) {
	env := NewEnv()
	env.Partition(2)
	env.RegisterLookahead(10 * Microsecond)
	ran := false
	env.AtArgOn(env, Microsecond, func(any) { ran = true }, nil)
	env.Run()
	if !ran {
		t.Fatal("same-shard AtArgOn event never ran")
	}
}

// TestShardPanicDeterminism arranges panics on two shards in the same
// window and checks the earliest (time, shard) one surfaces regardless of
// worker count.
func TestShardPanicDeterminism(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			env := NewEnv()
			env.SetShardWorkers(workers)
			views := env.Partition(2)
			env.RegisterLookahead(100 * Microsecond)
			// Keep both shards inside one window: both panic times are under
			// first-event + lookahead.
			views[1].At(2*Microsecond, func() { panic("late loser") })
			views[0].At(Microsecond, func() { panic("early winner") })
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("workers=%d: no panic surfaced", workers)
					return
				}
				if fmt.Sprint(r) != "early winner" {
					t.Errorf("workers=%d: surfaced %q, want the earliest panic", workers, r)
				}
			}()
			env.Run()
		}()
	}
}

// TestWindowStats checks the scheduler's progress counters: windows tick,
// per-shard executed counts land on the right shard, and a shard with no
// work in a window records a stall.
func TestWindowStats(t *testing.T) {
	env := NewEnv()
	env.SetShardWorkers(2)
	views := env.Partition(2)
	env.RegisterLookahead(10 * Microsecond)
	// Shard 0 works every window; shard 1 only gets one cross-shard event.
	for i := 0; i < 5; i++ {
		d := Time(i) * 20 * Microsecond
		views[0].At(d+Microsecond, func() {})
	}
	views[0].At(Microsecond, func() {
		views[0].AtArgOn(views[1], 10*Microsecond, func(any) {}, nil)
	})
	env.Run()
	windows, shards := env.WindowStats()
	if windows <= 0 {
		t.Fatalf("windows = %d, want > 0", windows)
	}
	if len(shards) != 2 {
		t.Fatalf("got %d shard stats, want 2", len(shards))
	}
	if shards[0].Executed < 5 {
		t.Errorf("shard 0 executed %d, want >= 5", shards[0].Executed)
	}
	if shards[1].Executed != 1 {
		t.Errorf("shard 1 executed %d, want 1", shards[1].Executed)
	}
	if shards[1].Stalls == 0 {
		t.Error("shard 1 never stalled despite having work in only one window")
	}
	if _, s := NewEnv().WindowStats(); s != nil {
		t.Error("unpartitioned WindowStats must return nil shard stats")
	}
}

// TestSingleShardWorldMatchesClassic runs the same workload on a plain Env
// and on a Partition(1) world; clocks and executed counts must agree (the
// single-shard world is the classic path behind the window loop).
func TestSingleShardWorldMatchesClassic(t *testing.T) {
	build := func(env *Env) {
		for i := 1; i <= 10; i++ {
			d := Time(i) * Microsecond
			env.At(d, func() {})
		}
	}
	classic := NewEnv()
	build(classic)
	classicEnd := classic.Run()

	env := NewEnv()
	env.Partition(1)
	build(env)
	// A 1-shard world has no cross-shard edges, so no lookahead: it must
	// still drain (the protocol only needs a bound when events are pending
	// across windows — with one shard the first window covers everything).
	env.RegisterLookahead(Microsecond)
	end := env.Run()
	if end != classicEnd {
		t.Fatalf("1-shard world ended at %v, classic at %v", end, classicEnd)
	}
	if env.Executed() != classic.Executed() {
		t.Fatalf("1-shard world executed %d, classic %d", env.Executed(), classic.Executed())
	}
}
