package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// sampleLog records each sampler firing as "t=<time>,c=<events so far>".
type sampleLog struct {
	rows []string
}

func (l *sampleLog) hook(count *int) func(at Time) {
	return func(at Time) {
		l.rows = append(l.rows, fmt.Sprintf("t=%d,c=%d", at, *count))
	}
}

// TestSamplerClassicFireTimes checks the single-heap contract: a sample at
// S sees every event with at <= S and none after, and quiet sample times
// still fire in order.
func TestSamplerClassicFireTimes(t *testing.T) {
	env := NewEnv()
	var log sampleLog
	var count int
	env.SetSampler(10, log.hook(&count))
	for _, at := range []Time{5, 10, 15, 47} { // 10 is exactly on a sample time
		env.At(at, func() { count++ })
	}
	env.Run()
	// t=10 must include the event at exactly 10; t=20..40 are quiet but
	// still fire before the event at 47 runs.
	want := []string{"t=10,c=2", "t=20,c=3", "t=30,c=3", "t=40,c=3"}
	if !reflect.DeepEqual(log.rows, want) {
		t.Errorf("samples = %v, want %v", log.rows, want)
	}
}

// TestSamplerDrainFiresTail checks that when the heap drains, pending
// sample times up to the final clock fire (and none past it).
func TestSamplerDrainFiresTail(t *testing.T) {
	env := NewEnv()
	var log sampleLog
	var count int
	env.SetSampler(10, log.hook(&count))
	env.At(30, func() { count++ })
	env.Run()
	want := []string{"t=10,c=0", "t=20,c=0", "t=30,c=1"}
	if !reflect.DeepEqual(log.rows, want) {
		t.Errorf("samples = %v, want %v", log.rows, want)
	}
}

// TestSamplerHorizonSplit checks that chopping one Run into many RunUntil
// windows does not change which samples fire or what they see.
func TestSamplerHorizonSplit(t *testing.T) {
	build := func() (*Env, *sampleLog) {
		env := NewEnv()
		var log sampleLog
		count := new(int)
		env.SetSampler(7, log.hook(count))
		for at := Time(1); at <= 100; at += 9 {
			env.At(at, func() { *count++ })
		}
		return env, &log
	}
	one, oneLog := build()
	one.Run()
	split, splitLog := build()
	for h := Time(13); split.Pending() > 0; h += 13 {
		split.RunUntil(h)
	}
	if !reflect.DeepEqual(splitLog.rows, oneLog.rows) {
		t.Errorf("split-horizon samples differ:\n one run: %v\n split:   %v", splitLog.rows, oneLog.rows)
	}
	if len(oneLog.rows) == 0 {
		t.Fatal("no samples fired")
	}
}

// TestSamplerStopSkipsTail checks that a Stop leaves the tail unsampled:
// samples strictly before the stopping event's time have fired, none after.
func TestSamplerStopSkipsTail(t *testing.T) {
	env := NewEnv()
	var log sampleLog
	var count int
	env.SetSampler(10, log.hook(&count))
	env.At(5, func() { count++ })
	env.At(25, func() { count++; env.Stop() })
	env.At(50, func() { count++ }) // never runs
	env.Run()
	want := []string{"t=10,c=1", "t=20,c=1"}
	if !reflect.DeepEqual(log.rows, want) {
		t.Errorf("samples = %v, want %v", log.rows, want)
	}
}

// TestSamplerRemoval checks that SetSampler with a zero interval or nil
// hook disarms sampling.
func TestSamplerRemoval(t *testing.T) {
	env := NewEnv()
	var log sampleLog
	var count int
	env.SetSampler(10, log.hook(&count))
	env.SetSampler(0, nil)
	env.At(30, func() { count++ })
	env.Run()
	if len(log.rows) != 0 {
		t.Errorf("disarmed sampler fired: %v", log.rows)
	}
}

// shardedSampleRun builds a 2-shard world exchanging cross-shard events and
// returns the sample log. With workers=0 the world is not partitioned at
// all (classic single-heap baseline).
func shardedSampleRun(t *testing.T, workers int) []string {
	t.Helper()
	env := NewEnv()
	var views []*Env
	if workers > 0 {
		env.SetShardWorkers(workers)
		views = env.Partition(2)
		env.RegisterLookahead(10 * Microsecond)
	} else {
		views = []*Env{env, env}
	}
	var log sampleLog
	count := new(int)
	env.SetSampler(5*Microsecond, log.hook(count))
	// Ping-pong between the two views at the lookahead delay, counting
	// deliveries; both versions execute the identical event set.
	var bounce func(to int, round int) func(any)
	bounce = func(to, round int) func(any) {
		return func(any) {
			*count++
			if round < 20 {
				next := 1 - to
				views[to].AtArgOn(views[next], 10*Microsecond, bounce(next, round+1), nil)
			}
		}
	}
	views[0].At(Microsecond, func() {
		views[0].AtArgOn(views[1], 10*Microsecond, bounce(1, 0), nil)
	})
	env.Run()
	return log.rows
}

// TestSamplerShardedMatchesClassic is the kernel-level determinism check:
// the sharded scheduler fires the same samples, at the same times, seeing
// the same event counts, as the classic single-heap run — at any worker
// count.
func TestSamplerShardedMatchesClassic(t *testing.T) {
	classic := shardedSampleRun(t, 0)
	if len(classic) == 0 {
		t.Fatal("classic run fired no samples")
	}
	for _, workers := range []int{1, 2, 4} {
		sharded := shardedSampleRun(t, workers)
		if !reflect.DeepEqual(sharded, classic) {
			t.Errorf("workers=%d samples differ:\n classic: %v\n sharded: %v", workers, classic, sharded)
		}
	}
}
