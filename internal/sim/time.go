// Package sim implements a deterministic discrete-event simulation (DES)
// kernel in the style of SimPy: an environment with a virtual clock and an
// event heap, plus cooperatively scheduled processes implemented as
// goroutines with strict one-at-a-time handoff. All higher layers of the
// ibwan repository (InfiniBand fabric, WAN extenders, TCP, MPI, NFS) are
// built on this kernel.
//
// Determinism: only one goroutine ever runs at a time, the event heap breaks
// ties by insertion sequence number, and no wall-clock or map-iteration
// ordering leaks into scheduling decisions. Two runs with the same inputs
// produce identical traces.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately a distinct type from time.Duration so that
// absolute times and durations are not confused at call sites.
type Time int64

// Common durations, expressed in Time units (nanoseconds).
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a standard library duration to simulation Time units.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Micros constructs a Time from a (possibly fractional) count of
// microseconds. It is the most common unit in the paper, which quotes all
// WAN delays in microseconds.
func Micros(us float64) Time { return Time(us * float64(Microsecond)) }

// Seconds reports t as a floating point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds reports t as a floating point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit, e.g. "12.5us" or "3.2ms".
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}
