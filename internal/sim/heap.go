package sim

// entryKind discriminates what a heap entry does when dispatched. Typed
// entries exist so the kernel's hottest operations — resuming a process,
// triggering an event, delivering a packet to a cached handler — schedule
// without allocating a closure per event.
type entryKind uint8

const (
	// kindFn invokes fn() — the general At path.
	kindFn entryKind = iota
	// kindFnArg invokes fnv(val) — AtArg and event callbacks; fnv is a
	// long-lived function value shared across many schedules.
	kindFnArg
	// kindResume hands control to process p, delivering val from its
	// pending Wait (skipped if the process finished or was killed in the
	// meantime).
	kindResume
	// kindTrigger fires event ev with val — the timer path behind Sleep.
	kindTrigger
)

// entry is one scheduled occurrence. Entries live by value inside the
// heap's backing slice: scheduling an event moves a struct, never boxes a
// pointer through an interface as container/heap would.
type entry struct {
	at   Time
	seq  int64 // tie-breaker: FIFO among equal times
	kind entryKind
	fn   func()
	fnv  func(any)
	p    *Proc
	ev   *Event
	val  any
}

// entryLess orders entries by time, then insertion sequence.
func entryLess(a, b *entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// entryHeap is a 4-ary min-heap of entries, specialized and inlined: no
// interface dispatch, no per-element allocation, and a branching factor
// that halves the tree depth versus a binary heap — sift-downs touch
// fewer cache lines, which is where a DES kernel's time goes once
// allocation is off the hot path.
type entryHeap struct {
	s []entry
}

func (h *entryHeap) len() int     { return len(h.s) }
func (h *entryHeap) empty() bool  { return len(h.s) == 0 }
func (h *entryHeap) peek() *entry { return &h.s[0] }

// push inserts ent, sifting it up to its position.
func (h *entryHeap) push(ent entry) {
	h.s = append(h.s, ent)
	s := h.s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !entryLess(&ent, &s[parent]) {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = ent
}

// pop removes and returns the minimum entry.
func (h *entryHeap) pop() entry {
	s := h.s
	top := s[0]
	n := len(s) - 1
	moved := s[n]
	s[n] = entry{} // drop references held by the vacated slot
	h.s = s[:n]
	if n > 0 {
		h.siftDown(moved)
	}
	return top
}

// siftDown places ent, displaced from the root, at its final position.
func (h *entryHeap) siftDown(ent entry) {
	s := h.s
	n := len(s)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryLess(&s[c], &s[min]) {
				min = c
			}
		}
		if !entryLess(&s[min], &ent) {
			break
		}
		s[i] = s[min]
		i = min
	}
	s[i] = ent
}
