package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Conservative parallel DES: one simulated world split into per-shard event
// heaps and clocks behind the ordinary Env API.
//
// Partition(n) turns an environment into shard 0 of an n-shard world and
// returns n views, one per shard. Each view is a full Env — its own heap,
// clock, sequence counter, processes and event freelist — so everything a
// layer builds on a view (QPs, procs, timers) stays on that view's timeline
// and is touched by exactly one shard worker at a time. The only sanctioned
// crossing point is AtArgOn, which deposits the event into the destination
// shard's mailbox instead of its heap.
//
// Correctness rests on the conservative lookahead bound L registered through
// RegisterLookahead: every cross-shard event scheduled while a shard's clock
// reads t must land at or after t+L (in this codebase L is the minimum WAN
// link propagation delay, and the only cross-shard edges are WAN links, so
// the bound holds by construction). The windowed run loop repeats:
//
//  1. merge every mailbox into its destination heap, sorted by
//     (time, source shard, source sequence) and stamped with fresh local
//     sequence numbers — the deterministic merge rule;
//  2. find N, the minimum next-event time across all shards; the window is
//     [N, N+L): no cross-shard event produced during the window can land
//     before N+L, so every shard may execute its local events with at < N+L
//     independently and in parallel;
//  3. barrier, then repeat until every heap is empty (or Stop).
//
// Because merge order, window boundaries and per-shard execution are all
// pure functions of the simulation state, the executed event sequence — and
// therefore all rendered output — is independent of the worker count.
type world struct {
	shards    []*Env
	workers   int
	lookahead Time
	stopped   atomic.Bool
	mail      []mailbox
	scratch   []xentry
	windows   int64 // scheduler windows run so far

	pmu    sync.Mutex
	panics []shardPanic
}

// mailbox collects events crossing into one destination shard during a
// window. Senders append under the mutex from their worker goroutines; the
// barrier drains it single-threaded before the next window.
type mailbox struct {
	mu      sync.Mutex
	entries []xentry
}

// xentry is one cross-shard event in flight: an AtArgOn deposit carrying
// its deterministic merge key (at, srcShard, srcSeq).
type xentry struct {
	at       Time
	srcShard int32
	srcSeq   int64
	fnv      func(any)
	val      any
}

// shardPanic records a panic raised while dispatching a shard's window, so
// the barrier can re-raise the earliest one deterministically.
type shardPanic struct {
	at    Time
	shard int32
	val   any
}

const maxTime = Time(1<<62 - 1)

// SetShardWorkers declares how many OS-level workers a later Partition may
// use to run shards concurrently (<= 1 leaves the world sequential even if
// partitioned). It must be called before Partition; the setting is advisory
// until then and harmless on environments that are never partitioned.
func (e *Env) SetShardWorkers(n int) { e.shardWorkers = n }

// ShardWorkers returns the worker count declared by SetShardWorkers.
func (e *Env) ShardWorkers() int { return e.shardWorkers }

// Sharded reports whether the environment belongs to a partitioned world.
func (e *Env) Sharded() bool { return e.world != nil }

// Partition splits the environment into an n-shard world and returns the
// shard views; view 0 is the receiver itself, views 1..n-1 are fresh
// environments sharing the receiver's telemetry and fault attachments. Work
// already scheduled on the receiver stays on shard 0. The world is inert
// until a cross-shard lookahead is registered (RegisterLookahead); Run then
// executes all shards under the conservative window protocol.
func (e *Env) Partition(n int) []*Env {
	if e.world != nil {
		panic("sim: Partition on an already partitioned environment")
	}
	if n < 1 {
		panic(fmt.Sprintf("sim: Partition into %d shards", n))
	}
	workers := e.shardWorkers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	w := &world{
		workers:   workers,
		lookahead: maxTime,
		mail:      make([]mailbox, n),
	}
	views := make([]*Env, n)
	views[0] = e
	e.world = w
	e.shard = 0
	for i := 1; i < n; i++ {
		v := NewEnv()
		v.world = w
		v.shard = int32(i)
		v.shardWorkers = e.shardWorkers
		v.tel = e.tel
		v.flt = e.flt
		views[i] = v
	}
	w.shards = views
	return views
}

// RegisterLookahead lowers the world's conservative lookahead bound to d:
// the caller promises that every cross-shard event is scheduled at least d
// after the sending shard's current time. WAN links register their one-way
// propagation delay here, so the bound is the minimum delay over all links.
// No-op on an unpartitioned environment; a non-positive bound would make
// the window protocol unsound and panics.
func (e *Env) RegisterLookahead(d Time) {
	w := e.world
	if w == nil {
		return
	}
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v registered on a partitioned world", d))
	}
	if d < w.lookahead {
		w.lookahead = d
	}
}

// Lookahead returns the registered conservative lookahead bound, or 0 when
// the environment is unpartitioned or no bound has been registered yet.
func (e *Env) Lookahead() Time {
	if w := e.world; w != nil && w.lookahead != maxTime {
		return w.lookahead
	}
	return 0
}

// AtArgOn schedules fn(arg) at the given delay from now on the target
// environment. With target == e (or on an unpartitioned world) it is
// exactly AtArg. Across shards of one world it deposits the event into the
// target's mailbox; the delay must honor the registered lookahead bound.
func (e *Env) AtArgOn(target *Env, delay Time, fn func(any), arg any) {
	if target == e {
		e.AtArg(delay, fn, arg)
		return
	}
	if delay < 0 {
		panic("sim: negative delay")
	}
	w := e.world
	if w == nil || target.world != w {
		panic("sim: AtArgOn across unrelated environments")
	}
	if delay < w.lookahead {
		panic(fmt.Sprintf("sim: cross-shard event at +%v violates the lookahead bound %v", delay, w.lookahead))
	}
	e.xseq++
	mb := &w.mail[target.shard]
	mb.mu.Lock()
	mb.entries = append(mb.entries, xentry{
		at: e.now + delay, srcShard: e.shard, srcSeq: e.xseq, fnv: fn, val: arg,
	})
	mb.mu.Unlock()
}

// runWorld is RunUntil for a partitioned world: the windowed barrier loop.
func (e *Env) runWorld(horizon Time) Time {
	w := e.world
	w.stopped.Store(false)
	for !w.stopped.Load() {
		w.deliverMail()
		next := maxTime
		for _, s := range w.shards {
			if !s.queue.empty() && s.queue.peek().at < next {
				next = s.queue.peek().at
			}
		}
		if next == maxTime {
			break
		}
		if next > horizon {
			for _, s := range w.shards {
				if s.now < horizon {
					s.now = horizon
				}
			}
			return horizon
		}
		if w.lookahead == maxTime {
			panic("sim: partitioned world has pending events but no registered lookahead")
		}
		limit := next + w.lookahead
		if limit > horizon {
			limit = horizon + 1 // entries at exactly the horizon still run
		}
		w.windows++
		w.runWindow(limit)
		w.raisePanics()
	}
	// Quiescent (or stopped): align every clock to the furthest shard so
	// later activity on any view starts from one well-defined time.
	maxNow := e.now
	for _, s := range w.shards {
		if s.now > maxNow {
			maxNow = s.now
		}
	}
	for _, s := range w.shards {
		if s.now < maxNow {
			s.now = maxNow
		}
	}
	return maxNow
}

// deliverMail merges every mailbox into its destination heap in
// deterministic (time, source shard, source sequence) order, stamping fresh
// destination sequence numbers.
func (w *world) deliverMail() {
	for di := range w.mail {
		mb := &w.mail[di]
		mb.mu.Lock()
		w.scratch = append(w.scratch[:0], mb.entries...)
		for i := range mb.entries {
			mb.entries[i] = xentry{}
		}
		mb.entries = mb.entries[:0]
		mb.mu.Unlock()
		ents := w.scratch
		if len(ents) == 0 {
			continue
		}
		sort.Slice(ents, func(i, j int) bool {
			if ents[i].at != ents[j].at {
				return ents[i].at < ents[j].at
			}
			if ents[i].srcShard != ents[j].srcShard {
				return ents[i].srcShard < ents[j].srcShard
			}
			return ents[i].srcSeq < ents[j].srcSeq
		})
		dst := w.shards[di]
		for _, x := range ents {
			if x.at < dst.now {
				panic(fmt.Sprintf("sim: cross-shard event at %v arrives in shard %d's past (now %v)", x.at, di, dst.now))
			}
			dst.push(entry{at: x.at, kind: kindFnArg, fnv: x.fnv, val: x.val})
		}
	}
}

// runWindow executes every shard's events with at < limit, in parallel on
// the world's workers.
func (w *world) runWindow(limit Time) {
	if w.workers <= 1 {
		for _, s := range w.shards {
			s.runShard(limit)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan *Env, len(w.shards))
	for i := 0; i < w.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range idx {
				s.runShard(limit)
			}
		}()
	}
	for _, s := range w.shards {
		idx <- s
	}
	close(idx)
	wg.Wait()
}

// runShard drains one shard's heap up to (but excluding) limit. A panic
// while dispatching — a process panic re-raised by handoff, or a model
// panicking directly in a callback — is recorded for the barrier instead of
// crashing the worker; the shard stops, the others finish their window
// normally, and raisePanics rethrows the earliest record so the surfaced
// failure is independent of worker scheduling.
func (s *Env) runShard(limit Time) {
	w := s.world
	before := s.executed
	defer func() {
		if s.executed == before {
			// The shard had nothing runnable this window: it stalled on the
			// barrier waiting for the rest of the world (see WindowStats).
			s.windowStalls++
		}
		if r := recover(); r != nil {
			w.pmu.Lock()
			w.panics = append(w.panics, shardPanic{at: s.now, shard: s.shard, val: r})
			w.pmu.Unlock()
		}
	}()
	for !s.queue.empty() && !w.stopped.Load() {
		if s.queue.peek().at >= limit {
			return
		}
		ent := s.queue.pop()
		s.dispatch(&ent)
	}
}

// ShardStats describes one shard's share of a partitioned world's work: the
// events it dispatched and the windows it spent stalled on the barrier with
// nothing runnable (high stall counts mean the site's workload is much
// lighter than its peers', or the lookahead window is too small to batch
// useful work).
type ShardStats struct {
	Shard    int
	Executed int64
	Stalls   int64
}

// WindowStats returns the number of conservative scheduler windows run so
// far and per-shard work counters, or (0, nil) on an unpartitioned
// environment. Call it between runs, not from concurrent shard code.
func (e *Env) WindowStats() (int64, []ShardStats) {
	w := e.world
	if w == nil {
		return 0, nil
	}
	out := make([]ShardStats, len(w.shards))
	for i, s := range w.shards {
		out[i] = ShardStats{Shard: i, Executed: s.executed, Stalls: s.windowStalls}
	}
	return w.windows, out
}

// raisePanics rethrows the earliest (time, shard) panic recorded during the
// last window, if any.
func (w *world) raisePanics() {
	w.pmu.Lock()
	recs := w.panics
	w.panics = nil
	w.pmu.Unlock()
	if len(recs) == 0 {
		return
	}
	min := recs[0]
	for _, r := range recs[1:] {
		if r.at < min.at || (r.at == min.at && r.shard < min.shard) {
			min = r
		}
	}
	panic(min.val)
}
