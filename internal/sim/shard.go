package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Conservative parallel DES: one simulated world split into per-shard event
// heaps and clocks behind the ordinary Env API.
//
// Partition(n) turns an environment into shard 0 of an n-shard world and
// returns n views, one per shard. Each view is a full Env — its own heap,
// clock, sequence counter, processes and event freelist — so everything a
// layer builds on a view (QPs, procs, timers) stays on that view's timeline
// and is touched by exactly one shard worker at a time. The only sanctioned
// crossing point is AtArgOn, which deposits the event into a per-(src,dst)
// mailbox lane instead of the destination heap.
//
// Correctness rests on per-channel conservative bounds (the CMB protocol's
// channel clocks, in the null-message-free synchronous variant). A directed
// channel src→dst with bound b — registered through RegisterLookaheadBetween,
// in this codebase by each WAN link with its one-way propagation delay —
// promises that every cross-shard event deposited while src's clock reads t
// lands at or after t+b. The windowed run loop repeats:
//
//  1. merge every mailbox lane into its destination heap in deterministic
//     (time, source shard, source sequence) order, stamping fresh local
//     sequence numbers — the merge rule, unchanged from the global-lookahead
//     scheduler;
//  2. compute each shard's safe horizon from the channel clocks:
//     limit[i] = min over incoming channels k→i of (est[k] + b[k→i]),
//     where est[k] is shard k's earliest conceivable execution time — the
//     shortest-path fixpoint of next[] over the channel bounds (see
//     planWindow), covering chains of deposits through intermediate
//     shards. Shard i may execute every local event with at < limit[i]:
//     nothing can ever arrive below its limit. A shard whose est is far in
//     the future does not constrain its downstream peers, which is the
//     payoff over the global-minimum rule: a short metro link only narrows
//     the windows of shards it can actually reach at that cadence;
//  3. barrier, then repeat until every heap is empty (or Stop).
//
// The shard holding the global minimum next-event time always has
// limit > next (every incoming bound is positive), so the loop cannot
// deadlock. Because merge order, per-shard horizons and per-shard execution
// are all pure functions of the simulation state, the executed event
// sequence — and therefore all rendered output — is independent of the
// worker count.
//
// A corollary clients rely on (ib's routing-epoch failover): a global state
// swap scheduled as one event per shard at the same virtual instant T is
// equivalent to a barrier-wide swap at T. Each shard executes its own heap
// in timestamp order, so every shard-local event below T sees the old state
// and every one at or above T the new, exactly as a stop-the-world swap
// would arrange — provided each shard's swap event touches only state read
// by that shard's events, and the swap never shrinks a registered channel
// bound (horizons computed from the old bounds stay conservative).
//
// Mechanically, a window costs no allocations and no locks on the hot path:
// shards are run by a persistent worker pool with a spin-then-park barrier
// (built once per run, not per window), a cross-shard deposit appends to a
// single-producer lane owned by the sending shard (no mutex — the lane is
// only written by that shard's worker during a window and only drained at
// the barrier), and delivery is a k-way merge of the per-source lanes, each
// already in nondecreasing (at, srcSeq) order.
type world struct {
	shards  []*Env
	workers int

	// lookahead is the minimum bound over all registered channels (what
	// Lookahead() reports); bounds[src*n+dst] is the per-channel bound, or
	// noBound where no channel has been registered. nchan counts registered
	// directed channels.
	lookahead Time
	bounds    []Time
	nchan     int

	lanes []lane // lanes[src*n+dst]: single-producer cross-shard deposits

	next   []Time  // per-window scratch: each shard's next-event time
	est    []Time  // per-window scratch: earliest conceivable execution time
	limits []Time  // per-window scratch: each shard's safe horizon
	active []int32 // per-window scratch: shards with runnable work

	stopped atomic.Bool

	windows int64 // scheduler windows run so far
	horizon Time  // cumulative safe-horizon advance of the critical shard

	// Marks for TakeWindowStats deltas.
	repWindows int64
	repHorizon Time
	repShards  []ShardStats

	pmu    sync.Mutex
	panics []shardPanic
}

// lane collects events crossing one directed (src,dst) shard pair during a
// window. It is written only by shard src's worker (deposits during src's
// window execution, or setup code before the run) and drained
// single-threaded at the barrier, so it needs no lock; the barrier's
// synchronization orders deposits before the drain. The buffer is reused
// across windows. Padded so neighboring lanes don't share a cache line
// under concurrent producers.
type lane struct {
	entries []xentry
	head    int  // drain cursor during the k-way merge
	last    Time // most recent append's at, for the sorted check
	sorted  bool // entries are in nondecreasing at order (the common case)
	_       [24]byte
}

// xentry is one cross-shard event in flight: an AtArgOn deposit carrying
// its deterministic merge key (at, srcShard, srcSeq).
type xentry struct {
	at       Time
	srcShard int32
	srcSeq   int64
	fnv      func(any)
	val      any
}

// shardPanic records a panic raised while dispatching a shard's window, so
// the barrier can re-raise the earliest one deterministically.
type shardPanic struct {
	at    Time
	shard int32
	val   any
}

const (
	maxTime = Time(1<<62 - 1)
	// noBound marks an unregistered channel; it also serves as "no
	// constraint" in the horizon computation (strictly above any real
	// event time or saturated sum).
	noBound = Time(math.MaxInt64)
)

// satAdd returns a+b saturating at noBound instead of wrapping: horizons
// near maxTime (the default Run horizon, or a huge registered bound) must
// clamp, not go negative and wedge the window loop.
func satAdd(a, b Time) Time {
	if s := a + b; s >= a {
		return s
	}
	return noBound
}

// SetShardWorkers declares how many OS-level workers a later Partition may
// use to run shards concurrently (<= 1 leaves the world sequential even if
// partitioned). It must be called before Partition; the setting is advisory
// until then and harmless on environments that are never partitioned.
func (e *Env) SetShardWorkers(n int) { e.shardWorkers = n }

// ShardWorkers returns the worker count declared by SetShardWorkers.
func (e *Env) ShardWorkers() int { return e.shardWorkers }

// Sharded reports whether the environment belongs to a partitioned world.
func (e *Env) Sharded() bool { return e.world != nil }

// Partition splits the environment into an n-shard world and returns the
// shard views; view 0 is the receiver itself, views 1..n-1 are fresh
// environments sharing the receiver's telemetry and fault attachments. Work
// already scheduled on the receiver stays on shard 0. The world is inert
// until cross-shard channels are registered (RegisterLookaheadBetween, or
// RegisterLookahead for a uniform bound); Run then executes all shards
// under the conservative window protocol.
func (e *Env) Partition(n int) []*Env {
	if e.world != nil {
		panic("sim: Partition on an already partitioned environment")
	}
	if n < 1 {
		panic(fmt.Sprintf("sim: Partition into %d shards", n))
	}
	workers := e.shardWorkers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	w := &world{
		workers:   workers,
		lookahead: maxTime,
		bounds:    make([]Time, n*n),
		lanes:     make([]lane, n*n),
		next:      make([]Time, n),
		est:       make([]Time, n),
		limits:    make([]Time, n),
		active:    make([]int32, 0, n),
		repShards: make([]ShardStats, n),
	}
	for i := range w.bounds {
		w.bounds[i] = noBound
	}
	for i := range w.lanes {
		w.lanes[i].sorted = true
	}
	views := make([]*Env, n)
	views[0] = e
	e.world = w
	e.shard = 0
	for i := 1; i < n; i++ {
		v := NewEnv()
		v.world = w
		v.shard = int32(i)
		v.shardWorkers = e.shardWorkers
		v.tel = e.tel
		v.flt = e.flt
		views[i] = v
	}
	w.shards = views
	return views
}

// setBound lowers (or creates) the directed channel bound src→dst.
func (w *world) setBound(src, dst int, d Time) {
	b := &w.bounds[src*len(w.shards)+dst]
	if *b == noBound {
		w.nchan++
		*b = d
	} else if d < *b {
		*b = d
	}
	if d < w.lookahead {
		w.lookahead = d
	}
}

// RegisterLookaheadBetween registers (or lowers) the conservative bound of
// the directed channel from the receiver's shard to the target's shard: the
// caller promises that every AtArgOn deposit on that channel is scheduled
// at least d after the sending shard's current time. WAN links register
// their one-way propagation delay here, one call per direction, so each
// shard's safe horizon is set by its own incoming links rather than the
// global minimum. No-op on an unpartitioned environment or with
// target == receiver; a non-positive bound would make the window protocol
// unsound and panics.
func (e *Env) RegisterLookaheadBetween(target *Env, d Time) {
	w := e.world
	if w == nil {
		return
	}
	if target == nil || target.world != w {
		panic("sim: RegisterLookaheadBetween across unrelated environments")
	}
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v registered on a partitioned world", d))
	}
	if target == e {
		return
	}
	w.setBound(int(e.shard), int(target.shard), d)
}

// RegisterLookahead registers d on every directed shard pair at once: a
// uniform world-wide bound, equivalent to the pre-channel-clock scheduler's
// global lookahead. Kernel tests and baseline comparisons use it; real
// topologies register per-link bounds via RegisterLookaheadBetween and get
// wider windows wherever their delays are heterogeneous. No-op on an
// unpartitioned environment; a non-positive bound panics.
func (e *Env) RegisterLookahead(d Time) {
	w := e.world
	if w == nil {
		return
	}
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v registered on a partitioned world", d))
	}
	n := len(w.shards)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s != t {
				w.setBound(s, t, d)
			}
		}
	}
	if d < w.lookahead {
		w.lookahead = d
	}
}

// Lookahead returns the minimum conservative bound over all registered
// channels, or 0 when the environment is unpartitioned or no channel has
// been registered yet.
func (e *Env) Lookahead() Time {
	if w := e.world; w != nil && w.lookahead != maxTime {
		return w.lookahead
	}
	return 0
}

// ChannelLookahead returns the registered bound of the directed channel
// from the receiver's shard to the target's shard, or 0 when the
// environments are unpartitioned, unrelated, co-sharded, or the channel is
// unregistered.
func (e *Env) ChannelLookahead(target *Env) Time {
	w := e.world
	if w == nil || target == nil || target.world != w || target.shard == e.shard {
		return 0
	}
	if b := w.bounds[int(e.shard)*len(w.shards)+int(target.shard)]; b != noBound {
		return b
	}
	return 0
}

// AtArgOn schedules fn(arg) at the given delay from now on the target
// environment. With target == e (or on an unpartitioned world) it is
// exactly AtArg. Across shards of one world it deposits the event into the
// (source,target) mailbox lane; the channel must be registered and the
// delay must honor its bound. The deposit takes no lock: the lane is owned
// by the calling shard until the window barrier.
func (e *Env) AtArgOn(target *Env, delay Time, fn func(any), arg any) {
	if target == e {
		e.AtArg(delay, fn, arg)
		return
	}
	if delay < 0 {
		panic("sim: negative delay")
	}
	w := e.world
	if w == nil || target.world != w {
		panic("sim: AtArgOn across unrelated environments")
	}
	b := w.bounds[int(e.shard)*len(w.shards)+int(target.shard)]
	if b == noBound {
		panic(fmt.Sprintf("sim: cross-shard event on unregistered channel shard %d -> %d (RegisterLookaheadBetween first)", e.shard, target.shard))
	}
	if delay < b {
		panic(fmt.Sprintf("sim: cross-shard event at +%v violates the channel lookahead bound %v (shard %d -> %d)", delay, b, e.shard, target.shard))
	}
	e.xseq++
	ln := &w.lanes[int(e.shard)*len(w.shards)+int(target.shard)]
	at := e.now + delay
	if at < ln.last && len(ln.entries) > 0 {
		ln.sorted = false // delay dropped mid-window (e.g. a link retune)
	}
	ln.last = at
	ln.entries = append(ln.entries, xentry{
		at: at, srcShard: e.shard, srcSeq: e.xseq, fnv: fn, val: arg,
	})
}

// runWorld is RunUntil for a partitioned world: the windowed barrier loop.
// Sampling state lives on shard 0 (the root view — the environment the
// world was partitioned from, where SetSampler is installed): at each
// barrier, every shard has settled and no event below the global next-event
// time remains, so pending samples strictly below it are consistent
// prefixes and fire here; window horizons are clamped to the next sample
// time (see below) so no shard ever runs past a pending sample.
func (e *Env) runWorld(horizon Time) Time {
	w := e.world
	root := w.shards[0]
	w.stopped.Store(false)
	var p *wpool
	if w.workers > 1 && len(w.shards) > 1 {
		p = newWPool(w)
		defer p.stop()
	}
	for !w.stopped.Load() {
		w.deliverMail()
		next := maxTime
		for i, s := range w.shards {
			t := maxTime
			if !s.queue.empty() {
				t = s.queue.peek().at
			}
			w.next[i] = t
			if t < next {
				next = t
			}
		}
		if next == maxTime {
			break
		}
		if root.sampleFn != nil && root.sampleNext < next {
			// All events <= the pending sample time have executed (the
			// previous window's horizon was clamped to it); events at the
			// new global minimum have not. Fire everything below it, capped
			// at the caller's horizon.
			through := next - 1
			if through > horizon {
				through = horizon
			}
			root.fireSamples(through)
		}
		if next > horizon {
			for _, s := range w.shards {
				if s.now < horizon {
					s.now = horizon
				}
			}
			return horizon
		}
		if w.nchan == 0 && len(w.shards) > 1 {
			panic("sim: partitioned world has pending events but no registered lookahead")
		}
		windowHorizon := horizon
		if root.sampleFn != nil && root.sampleNext < windowHorizon {
			// Clamp the window so no shard executes past the next sample
			// time (events at exactly that time still run — planWindow's
			// cap is horizon+1). sampleNext >= next here, so the window
			// still makes progress.
			windowHorizon = root.sampleNext
		}
		w.planWindow(next, windowHorizon)
		w.windows++
		if p == nil {
			for _, si := range w.active {
				w.shards[si].runShard(w.limits[si])
			}
		} else {
			p.window()
		}
		w.raisePanics()
	}
	// Quiescent (or stopped): align every clock to the furthest shard so
	// later activity on any view starts from one well-defined time.
	maxNow := e.now
	for _, s := range w.shards {
		if s.now > maxNow {
			maxNow = s.now
		}
	}
	for _, s := range w.shards {
		if s.now < maxNow {
			s.now = maxNow
		}
	}
	if !w.stopped.Load() {
		// Drained: fire samples through the final clock, exactly like the
		// classic loop. A Stop leaves the tail unsampled in both modes.
		root.fireSamples(maxNow)
	}
	return maxNow
}

// planWindow computes each shard's safe horizon from its incoming channel
// bounds and partitions the shards into this window's active set (next
// event inside the horizon) and stalls.
//
// The horizon must account for deposit chains, not just direct neighbors:
// a shard that is idle at the barrier can still be woken by a future
// cross-shard deposit and then send onward. So the computation is a
// shortest-path fixpoint — each shard's earliest conceivable execution
// time, seeded by its own heap and relaxed along every channel:
//
//	est[j] = min(next[j], min over channels k->j of est[k] + b[k->j])
//
// (Bellman-Ford; all bounds are positive so it converges in < n passes.)
// By induction over deposit chains, no shard k ever executes anything
// earlier than est[k] from this barrier on — its heap events are >= next[k]
// and any deposit reaching it rode a chain from some heap event through
// positive channel bounds. Then
//
//	limit[i] = min over channels k->i of est[k] + b[k->i]
//
// is a sound horizon for shard i across all future windows: every later
// arrival into i happens at or after it. The shard holding the global
// minimum (est floor) has limit > next because every bound is positive, so
// the window always makes progress. next is the global minimum next-event
// time; the horizon telemetry accumulates how far past it the critical
// shard may run — the wider that margin, the fewer barriers per unit of
// simulated time.
func (w *world) planWindow(next, horizon Time) {
	n := len(w.shards)
	cap := satAdd(horizon, 1) // entries at exactly the horizon still run
	est := w.est
	copy(est, w.next)
	for pass := 1; pass < n; pass++ {
		changed := false
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if k == j {
					continue
				}
				b := w.bounds[k*n+j]
				if b == noBound {
					continue // no channel k->j: k cannot send here
				}
				if t := satAdd(est[k], b); t < est[j] {
					est[j] = t
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	w.active = w.active[:0]
	counted := false
	for i := 0; i < n; i++ {
		lim := noBound
		for k := 0; k < n; k++ {
			if k == i {
				continue
			}
			b := w.bounds[k*n+i]
			if b == noBound {
				continue
			}
			if t := satAdd(est[k], b); t < lim {
				lim = t
			}
		}
		if lim > cap {
			lim = cap
		}
		w.limits[i] = lim
		if !counted && w.next[i] == next {
			// The critical shard: its horizon advance is the window's width.
			counted = true
			w.horizon += lim - next
		}
		if w.next[i] < lim {
			w.active = append(w.active, int32(i))
		} else {
			// Nothing runnable inside the horizon: the shard sits out this
			// window waiting for the rest of the world (see WindowStats).
			w.shards[i].windowStalls++
		}
	}
}

// deliverMail merges every destination's incoming lanes into its heap in
// deterministic (time, source shard, source sequence) order, stamping
// fresh destination sequence numbers. Each lane is appended in
// nondecreasing at order by a single producer (srcSeq strictly increasing),
// so delivery is a k-way merge across source lanes rather than a sort; a
// lane that went out of order (a link delay lowered mid-run) is stably
// re-sorted by at first, which preserves its srcSeq order. Buffers are
// retained for reuse; entries are zeroed so the freelists can reclaim
// their payloads.
func (w *world) deliverMail() {
	n := len(w.shards)
	for di := 0; di < n; di++ {
		dst := w.shards[di]
		pending := 0
		for j := 0; j < n; j++ {
			if j == di {
				continue
			}
			ln := &w.lanes[j*n+di]
			if len(ln.entries) == 0 {
				continue
			}
			pending += len(ln.entries)
			if !ln.sorted {
				ents := ln.entries
				sort.SliceStable(ents, func(a, b int) bool { return ents[a].at < ents[b].at })
				ln.sorted = true
			}
		}
		if pending == 0 {
			continue
		}
		for k := 0; k < pending; k++ {
			best := -1
			var bestAt Time
			for j := 0; j < n; j++ {
				if j == di {
					continue
				}
				ln := &w.lanes[j*n+di]
				if ln.head >= len(ln.entries) {
					continue
				}
				if at := ln.entries[ln.head].at; best < 0 || at < bestAt {
					best, bestAt = j, at
					// Ties break toward the lower source shard: j ascends.
				}
			}
			ln := &w.lanes[best*n+di]
			x := &ln.entries[ln.head]
			ln.head++
			if x.at < dst.now {
				panic(fmt.Sprintf("sim: cross-shard event at %v arrives in shard %d's past (now %v)", x.at, di, dst.now))
			}
			dst.push(entry{at: x.at, kind: kindFnArg, fnv: x.fnv, val: x.val})
		}
		for j := 0; j < n; j++ {
			if j == di {
				continue
			}
			ln := &w.lanes[j*n+di]
			if len(ln.entries) == 0 {
				continue
			}
			for i := range ln.entries {
				ln.entries[i] = xentry{}
			}
			ln.entries = ln.entries[:0]
			ln.head = 0
			ln.last = 0
			ln.sorted = true
		}
	}
}

// runShards executes this window's active shards with a static round-robin
// assignment: worker k takes active[k], active[k+stride], ... The
// assignment is a pure function of the active set, so the work each worker
// does (though not its interleaving) is deterministic.
func (w *world) runShards(k, stride int) {
	for i := k; i < len(w.active); i += stride {
		si := w.active[i]
		w.shards[si].runShard(w.limits[si])
	}
}

// runShard drains one shard's heap up to (but excluding) limit. A panic
// while dispatching — a process panic re-raised by handoff, or a model
// panicking directly in a callback — is recorded for the barrier instead of
// crashing the worker; the shard stops, the others finish their window
// normally, and raisePanics rethrows the earliest record so the surfaced
// failure is independent of worker scheduling.
func (s *Env) runShard(limit Time) {
	w := s.world
	defer func() {
		if r := recover(); r != nil {
			w.pmu.Lock()
			w.panics = append(w.panics, shardPanic{at: s.now, shard: s.shard, val: r})
			w.pmu.Unlock()
		}
	}()
	for !s.queue.empty() && !w.stopped.Load() {
		if s.queue.peek().at >= limit {
			return
		}
		ent := s.queue.pop()
		s.dispatch(&ent)
	}
}

// wpool is the persistent shard-worker pool: workers 1..n-1 are goroutines
// that live for one runWorld invocation, worker 0 is the coordinator (the
// caller of window) participating in place. Windows are released by
// bumping a generation counter and collected by counting arrivals down —
// a reusable two-phase barrier. Both phases spin briefly before parking on
// a condition variable, so back-to-back small windows stay in user space
// while long ones don't burn CPU.
type wpool struct {
	w       *world
	workers int
	start   atomic.Uint64 // window generation; bumped (under mu) to release
	arrived atomic.Int64  // workers yet to finish the current window
	quit    atomic.Bool

	mu    sync.Mutex
	cond  *sync.Cond // workers park here between windows
	dmu   sync.Mutex
	dcond *sync.Cond // the coordinator parks here awaiting arrivals
	wg    sync.WaitGroup
}

// barrierSpin bounds the user-space spinning (with yields) either side of
// the barrier before falling back to a condition variable. Gosched in the
// loop keeps the pool live even at GOMAXPROCS=1.
const barrierSpin = 128

func newWPool(w *world) *wpool {
	workers := w.workers
	if workers > len(w.shards) {
		workers = len(w.shards)
	}
	p := &wpool{w: w, workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.dcond = sync.NewCond(&p.dmu)
	p.wg.Add(workers - 1)
	for k := 1; k < workers; k++ {
		go p.worker(k)
	}
	return p
}

func (p *wpool) worker(k int) {
	defer p.wg.Done()
	var gen uint64
	for {
		gen = p.awaitStart(gen)
		if p.quit.Load() {
			return
		}
		p.w.runShards(k, p.workers)
		if p.arrived.Add(-1) == 0 {
			p.dmu.Lock()
			p.dcond.Signal()
			p.dmu.Unlock()
		}
	}
}

// awaitStart blocks until the generation moves past gen and returns the
// new generation: spin first, then park. The generation is re-read under
// mu around Wait, so a bump between the spin and the park cannot be lost.
func (p *wpool) awaitStart(gen uint64) uint64 {
	for i := 0; i < barrierSpin; i++ {
		if g := p.start.Load(); g != gen {
			return g
		}
		runtime.Gosched()
	}
	p.mu.Lock()
	for p.start.Load() == gen {
		p.cond.Wait()
	}
	g := p.start.Load()
	p.mu.Unlock()
	return g
}

// window runs one window across the pool: release every worker, run the
// coordinator's own share, then wait for the last arrival. The arrival
// counter is re-checked under dmu before parking, so the last worker's
// signal cannot be missed.
func (p *wpool) window() {
	p.arrived.Store(int64(p.workers))
	p.mu.Lock()
	p.start.Add(1)
	p.cond.Broadcast()
	p.mu.Unlock()
	p.w.runShards(0, p.workers)
	if p.arrived.Add(-1) == 0 {
		return
	}
	for i := 0; i < barrierSpin; i++ {
		if p.arrived.Load() == 0 {
			return
		}
		runtime.Gosched()
	}
	p.dmu.Lock()
	for p.arrived.Load() != 0 {
		p.dcond.Wait()
	}
	p.dmu.Unlock()
}

// stop releases the workers one last time with quit set and joins them.
func (p *wpool) stop() {
	p.quit.Store(true)
	p.mu.Lock()
	p.start.Add(1)
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// ShardStats describes one shard's share of a partitioned world's work: the
// events it dispatched and the windows it spent stalled on the barrier with
// nothing runnable (high stall counts mean the site's workload is much
// lighter than its peers', or its incoming channel bounds are too small to
// batch useful work).
type ShardStats struct {
	Shard    int
	Executed int64
	Stalls   int64
}

// WindowStats returns the cumulative number of conservative scheduler
// windows run so far and per-shard work counters, or (0, nil) on an
// unpartitioned environment. Call it between runs, not from concurrent
// shard code; for per-interval deltas use TakeWindowStats.
func (e *Env) WindowStats() (int64, []ShardStats) {
	w := e.world
	if w == nil {
		return 0, nil
	}
	out := make([]ShardStats, len(w.shards))
	for i, s := range w.shards {
		out[i] = ShardStats{Shard: i, Executed: s.executed, Stalls: s.windowStalls}
	}
	return w.windows, out
}

// HorizonAdvance returns the cumulative safe-horizon advance (in simulated
// time) granted to the critical shard across all windows so far: the sum
// over windows of (limit − globalNext) for the shard holding the minimum
// next-event time. Larger totals over the same simulated interval mean
// wider windows — fewer barriers per unit of progress.
func (e *Env) HorizonAdvance() Time {
	if w := e.world; w != nil {
		return w.horizon
	}
	return 0
}

// WindowDelta is one TakeWindowStats interval: scheduler windows run,
// cumulative horizon advance, and per-shard work since the previous Take.
type WindowDelta struct {
	Windows int64
	Horizon Time
	Shards  []ShardStats
}

// TakeWindowStats returns the window/horizon/per-shard counters accumulated
// since the previous TakeWindowStats call (or since Partition) and marks
// the new baseline, so periodic reporters see per-interval counts instead
// of re-counting the whole run. Returns a zero delta with nil Shards on an
// unpartitioned environment. Call it between runs, not from concurrent
// shard code.
func (e *Env) TakeWindowStats() WindowDelta {
	w := e.world
	if w == nil {
		return WindowDelta{}
	}
	d := WindowDelta{
		Windows: w.windows - w.repWindows,
		Horizon: w.horizon - w.repHorizon,
		Shards:  make([]ShardStats, len(w.shards)),
	}
	w.repWindows = w.windows
	w.repHorizon = w.horizon
	for i, s := range w.shards {
		d.Shards[i] = ShardStats{
			Shard:    i,
			Executed: s.executed - w.repShards[i].Executed,
			Stalls:   s.windowStalls - w.repShards[i].Stalls,
		}
		w.repShards[i] = ShardStats{Shard: i, Executed: s.executed, Stalls: s.windowStalls}
	}
	return d
}

// raisePanics rethrows the earliest (time, shard) panic recorded during the
// last window, if any.
func (w *world) raisePanics() {
	w.pmu.Lock()
	recs := w.panics
	w.panics = nil
	w.pmu.Unlock()
	if len(recs) == 0 {
		return
	}
	min := recs[0]
	for _, r := range recs[1:] {
		if r.at < min.at || (r.at == min.at && r.shard < min.shard) {
			min = r
		}
	}
	panic(min.val)
}
