package sim

import (
	"fmt"
	"testing"
)

// TestShutdownKillOrder pins the Shutdown contract: victims die in
// ascending creation order, and processes started by a victim's deferred
// cleanup are killed in a later round — after every process that existed
// when the round began. The collect-and-sort implementation must preserve
// exactly the order the old per-kill min-scan produced.
func TestShutdownKillOrder(t *testing.T) {
	e := NewEnv()
	var killed []string
	park := func(name string) {
		e.Go(name, func(p *Proc) {
			defer func() { killed = append(killed, name) }()
			p.Wait(e.NewEvent()) // never triggered
		})
	}
	// Start out of lexical order to prove ordering comes from creation
	// ids, not names or map iteration.
	for _, name := range []string{"c", "a", "d", "b"} {
		park(name)
	}
	// This victim's deferred cleanup starts another parked process,
	// forcing a second kill round. A process spawned during Shutdown is
	// killed before its body ever runs (no dispatching happens anymore),
	// so it can't record itself — the second round is observable only
	// through the live-process count draining to zero.
	e.Go("spawner", func(p *Proc) {
		defer func() {
			killed = append(killed, "spawner")
			park("late")
		}()
		p.Wait(e.NewEvent())
	})
	e.Run()
	if e.LiveProcs() != 5 {
		t.Fatalf("LiveProcs = %d, want 5", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("after Shutdown LiveProcs = %d, want 0 (second-round victim not killed)", e.LiveProcs())
	}
	want := []string{"c", "a", "d", "b", "spawner"}
	if fmt.Sprint(killed) != fmt.Sprint(want) {
		t.Errorf("kill order = %v, want %v", killed, want)
	}
}

// TestShutdownManyProcs exercises Shutdown on a large process population —
// the case the collect-and-sort rewrite took from quadratic to
// O(n log n). Correctness only; the timing difference shows up as this
// test hanging for minutes if the scan ever regresses.
func TestShutdownManyProcs(t *testing.T) {
	e := NewEnv()
	const n = 20000
	for i := 0; i < n; i++ {
		e.Go("", func(p *Proc) { p.Wait(e.NewEvent()) })
	}
	e.Run()
	if e.LiveProcs() != n {
		t.Fatalf("LiveProcs = %d, want %d", e.LiveProcs(), n)
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Errorf("after Shutdown LiveProcs = %d, want 0", e.LiveProcs())
	}
}
