package rpc

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/ipoib"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

func TestHeaderRoundTrip(t *testing.T) {
	b := marshalHeader(0xDEADBEEF12345678, 42, 100, 200000, 300)
	xid, proc, metaLen, bulkLen, readLen := unmarshalHeader(b)
	if xid != 0xDEADBEEF12345678 || proc != 42 || metaLen != 100 || bulkLen != 200000 || readLen != 300 {
		t.Errorf("round trip: %x %d %d %d %d", xid, proc, metaLen, bulkLen, readLen)
	}
	if len(b) != headerBytes {
		t.Errorf("header length = %d", len(b))
	}
}

func testbed(delay sim.Time) (*sim.Env, *cluster.Testbed) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	return env, tb
}

// echoHandler returns the request meta reversed and echoes write bulk as
// read bulk.
func echoHandler(p *sim.Proc, req *Request) *Reply {
	meta := make([]byte, len(req.Meta))
	for i, b := range req.Meta {
		meta[len(meta)-1-i] = b
	}
	rep := &Reply{Meta: meta}
	if req.WriteBulk != nil {
		rep.Bulk = req.WriteBulk
	} else if req.WriteLen > 0 {
		rep.BulkLen = req.WriteLen
	}
	return rep
}

func TestTCPTransportEcho(t *testing.T) {
	env, tb := testbed(sim.Micros(100))
	defer env.Shutdown()
	net := ipoib.NewNetwork()
	ss := tcpsim.NewStack(net.Attach(tb.B[0].HCA, ipoib.Connected, 0), tcpsim.Config{})
	cs := tcpsim.NewStack(net.Attach(tb.A[0].HCA, ipoib.Connected, 0), tcpsim.Config{})
	ServeTCP(ss, 9999, 4, echoHandler)
	payload := make([]byte, 100000)
	rand.New(rand.NewSource(2)).Read(payload)
	env.Go("client", func(p *sim.Proc) {
		cl, err := NewTCPClient(p, cs, ss.Addr(), 9999)
		if err != nil {
			t.Errorf("dial: %v", err)
			env.Stop()
			return
		}
		buf := make([]byte, len(payload))
		reply, n, err := cl.Call(p, &Request{
			Proc: 7, Meta: []byte("abc"), WriteBulk: payload, ReadBuf: buf,
		})
		if err != nil {
			t.Errorf("call: %v", err)
			env.Stop()
			return
		}
		if string(reply.Meta) != "cba" {
			t.Errorf("meta = %q", reply.Meta)
		}
		if n != len(payload) || !bytes.Equal(buf, payload) {
			t.Errorf("bulk echo mismatch: n=%d", n)
		}
		env.Stop()
	})
	env.Run()
}

func TestTCPConcurrentCallsXIDMatching(t *testing.T) {
	env, tb := testbed(sim.Micros(100))
	defer env.Shutdown()
	net := ipoib.NewNetwork()
	ss := tcpsim.NewStack(net.Attach(tb.B[0].HCA, ipoib.Datagram, 0), tcpsim.Config{})
	cs := tcpsim.NewStack(net.Attach(tb.A[0].HCA, ipoib.Datagram, 0), tcpsim.Config{})
	// Handler sleeps inversely to the first meta byte so replies come
	// back out of order relative to requests.
	ServeTCP(ss, 9999, 8, func(p *sim.Proc, req *Request) *Reply {
		p.Sleep(sim.Time(10-req.Meta[0]) * sim.Millisecond)
		return &Reply{Meta: req.Meta}
	})
	const calls = 5
	results := make([]byte, calls)
	env.Go("main", func(p *sim.Proc) {
		cl, err := NewTCPClient(p, cs, ss.Addr(), 9999)
		if err != nil {
			t.Errorf("dial: %v", err)
			env.Stop()
			return
		}
		done := env.NewEvent()
		left := calls
		for i := 0; i < calls; i++ {
			i := i
			env.Go("call", func(pc *sim.Proc) {
				reply, _, _ := cl.Call(pc, &Request{Proc: 1, Meta: []byte{byte(i)}})
				results[i] = reply.Meta[0]
				if left--; left == 0 {
					done.Trigger(nil)
				}
			})
		}
		p.Wait(done)
		env.Stop()
	})
	env.Run()
	for i := 0; i < calls; i++ {
		if results[i] != byte(i) {
			t.Errorf("call %d got reply %d (XID mismatch)", i, results[i])
		}
	}
}

func TestRDMATransportEcho(t *testing.T) {
	env, tb := testbed(sim.Micros(100))
	defer env.Shutdown()
	srv := ServeRDMA(tb.B[0], 4, echoHandler)
	cl := NewRDMAClient(tb.A[0], srv)
	payload := make([]byte, 50000)
	rand.New(rand.NewSource(3)).Read(payload)
	env.Go("client", func(p *sim.Proc) {
		buf := make([]byte, len(payload))
		reply, n, err := cl.Call(p, &Request{
			Proc: 9, Meta: []byte("xyz"), WriteBulk: payload, ReadBuf: buf,
		})
		if err != nil {
			t.Errorf("call: %v", err)
			env.Stop()
			return
		}
		if string(reply.Meta) != "zyx" {
			t.Errorf("meta = %q", reply.Meta)
		}
		if n != len(payload) || !bytes.Equal(buf, payload) {
			t.Errorf("RDMA bulk echo mismatch: n=%d", n)
		}
		env.Stop()
	})
	env.Run()
}

func TestRDMAFragmentation(t *testing.T) {
	// Bulk moves in 4 KB fragments: count the RDMA writes via the reply
	// wire behaviour — 10000 bytes must take ceil(10000/4096) = 3 writes.
	env, tb := testbed(0)
	defer env.Shutdown()
	srv := ServeRDMA(tb.B[0], 4, func(p *sim.Proc, req *Request) *Reply {
		return &Reply{Meta: []byte{1}, BulkLen: 10000}
	})
	cl := NewRDMAClient(tb.A[0], srv)
	env.Go("client", func(p *sim.Proc) {
		_, n, _ := cl.Call(p, &Request{Proc: 1, Meta: []byte{0}, ReadLen: 10000})
		if n != 10000 {
			t.Errorf("bulk n = %d", n)
		}
		env.Stop()
	})
	env.Run()
	if Fragment != 4096 {
		t.Fatalf("Fragment = %d, want 4096 per the paper", Fragment)
	}
}

func TestRDMAMultipleClients(t *testing.T) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 3, NodesB: 1, Delay: sim.Micros(10)})
	defer env.Shutdown()
	srv := ServeRDMA(tb.B[0], 8, echoHandler)
	done := env.NewEvent()
	left := 3
	oks := make([]bool, 3)
	for i := 0; i < 3; i++ {
		i := i
		cl := NewRDMAClient(tb.A[i], srv)
		env.Go("client", func(p *sim.Proc) {
			reply, _, _ := cl.Call(p, &Request{Proc: 1, Meta: []byte{byte(i), 99}})
			oks[i] = len(reply.Meta) == 2 && reply.Meta[1] == byte(i)
			if left--; left == 0 {
				done.Trigger(nil)
			}
		})
	}
	env.Go("wait", func(p *sim.Proc) { p.Wait(done); env.Stop() })
	env.Run()
	for i, ok := range oks {
		if !ok {
			t.Errorf("client %d reply misrouted", i)
		}
	}
}

func TestThreadPoolBoundsConcurrency(t *testing.T) {
	env, tb := testbed(0)
	defer env.Shutdown()
	inFlight, maxInFlight := 0, 0
	srv := ServeRDMA(tb.B[0], 2, func(p *sim.Proc, req *Request) *Reply {
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		p.Sleep(sim.Millisecond)
		inFlight--
		return &Reply{Meta: []byte{0}}
	})
	cl := NewRDMAClient(tb.A[0], srv)
	done := env.NewEvent()
	left := 6
	for i := 0; i < 6; i++ {
		env.Go("c", func(p *sim.Proc) {
			cl.Call(p, &Request{Proc: 1, Meta: []byte{1}})
			if left--; left == 0 {
				done.Trigger(nil)
			}
		})
	}
	env.Go("wait", func(p *sim.Proc) { p.Wait(done); env.Stop() })
	env.Run()
	if maxInFlight > 2 {
		t.Errorf("max in-flight handlers = %d, pool is 2", maxInFlight)
	}
}
