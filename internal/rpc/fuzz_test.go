package rpc

import "testing"

// FuzzHeaderRoundTrip checks the frame header codec over arbitrary field
// values.
func FuzzHeaderRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(2), 3, 4, 5)
	f.Add(uint64(0), uint32(0), 0, 0, 0)
	f.Fuzz(func(t *testing.T, xid uint64, proc uint32, metaLen, bulkLen, readLen int) {
		// Lengths travel as uint32 on the wire.
		m, b, r := metaLen&0x7fffffff, bulkLen&0x7fffffff, readLen&0x7fffffff
		hdr := marshalHeader(xid, proc, m, b, r)
		gx, gp, gm, gb, gr := unmarshalHeader(hdr)
		if gx != xid || gp != proc || gm != m || gb != b || gr != r {
			t.Fatalf("round trip: %v %v %v %v %v", gx, gp, gm, gb, gr)
		}
	})
}
