// Package rpc implements the ONC-RPC-style remote procedure layer NFS runs
// on, with the two transports the paper compares (§2.3, §3.6):
//
//   - TCP transport: requests and replies are framed onto a TCP/IPoIB
//     connection; bulk data travels inline through the socket, paying the
//     full stack processing and copy costs.
//   - RDMA transport: requests and replies are small verbs sends, while
//     bulk data moves by direct data placement — the server RDMA-writes
//     read data into client-advertised regions (and RDMA-reads write
//     data), fragmented into 4 KB chunks as in the NFS/RDMA design the
//     paper builds on ("the data is fragmented into 4K packets").
//
// Both transports support multiple outstanding calls (XID matching), which
// is how a multi-threaded IOzone client scales throughput with streams.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrTimeout reports that a call exhausted its retransmission budget (a
// soft mount's op timeout). The value is fixed so faulted experiment output
// stays deterministic.
var ErrTimeout = errors.New("rpc: call timed out")

// Policy bounds how long a client waits for replies. The zero value —
// no RPC-layer timers at all, relying on the transport's own recovery —
// is the default; fault-free runs schedule no extra events.
type Policy struct {
	// Timeout is the per-attempt reply timeout; 0 disables RPC-layer
	// timeouts entirely.
	Timeout sim.Time
	// Retrans is the number of retransmissions after the first timeout
	// before the call fails with ErrTimeout (soft-mount semantics).
	Retrans int
	// Hard retries timed-out calls forever (hard-mount semantics).
	// Transport failures — a reset TCP connection, an errored QP — still
	// fail calls immediately: retrying a dead transport cannot succeed.
	Hard bool
}

// Fragment is the RDMA direct-data-placement chunk size.
const Fragment = 4096

// headerBytes is the fixed RPC frame header: xid, proc, metaLen, bulkLen,
// readLen.
const headerBytes = 8 + 4 + 4 + 4 + 4

// Request is one RPC call.
type Request struct {
	Proc uint32
	Meta []byte // op-specific marshaled header (small, real bytes)
	// Client-to-server bulk (e.g. NFS WRITE data): real bytes, or a
	// synthetic length when WriteBulk is nil.
	WriteBulk []byte
	WriteLen  int
	// Server-to-client bulk (e.g. NFS READ data): landing buffer (real)
	// or synthetic capacity.
	ReadBuf []byte
	ReadLen int
}

func (r *Request) writeLen() int {
	if r.WriteBulk != nil {
		return len(r.WriteBulk)
	}
	return r.WriteLen
}

func (r *Request) readCap() int {
	if r.ReadBuf != nil {
		return len(r.ReadBuf)
	}
	return r.ReadLen
}

// Reply is the server's answer.
type Reply struct {
	Meta []byte
	// Server-to-client bulk: real bytes or synthetic length.
	Bulk    []byte
	BulkLen int
}

func (r *Reply) bulkLen() int {
	if r.Bulk != nil {
		return len(r.Bulk)
	}
	return r.BulkLen
}

// Handler serves one call in its own server process (an nfsd thread).
type Handler func(p *sim.Proc, req *Request) *Reply

// Client issues calls over some transport.
type Client interface {
	// Call performs the RPC, blocking the calling process until the reply
	// (and any bulk data) has arrived. It returns the reply metadata and
	// the number of bulk bytes placed into ReadBuf. Under fault injection
	// a call can fail instead: with ErrTimeout when the client's Policy
	// budget runs out, or with the transport's terminal error when the
	// connection underneath dies. The reply is nil exactly when the error
	// is non-nil.
	Call(p *sim.Proc, req *Request) (*Reply, int, error)
}

// marshalHeader/unmarshalHeader frame the fixed fields.
func marshalHeader(xid uint64, proc uint32, metaLen, bulkLen, readLen int) []byte {
	b := make([]byte, headerBytes)
	binary.LittleEndian.PutUint64(b[0:], xid)
	binary.LittleEndian.PutUint32(b[8:], proc)
	binary.LittleEndian.PutUint32(b[12:], uint32(metaLen))
	binary.LittleEndian.PutUint32(b[16:], uint32(bulkLen))
	binary.LittleEndian.PutUint32(b[20:], uint32(readLen))
	return b
}

func unmarshalHeader(b []byte) (xid uint64, proc uint32, metaLen, bulkLen, readLen int) {
	xid = binary.LittleEndian.Uint64(b[0:])
	proc = binary.LittleEndian.Uint32(b[8:])
	metaLen = int(binary.LittleEndian.Uint32(b[12:]))
	bulkLen = int(binary.LittleEndian.Uint32(b[16:]))
	readLen = int(binary.LittleEndian.Uint32(b[20:]))
	return
}

func check(cond bool, msg string) {
	if !cond {
		panic(fmt.Sprintf("rpc: %s", msg))
	}
}
