package rpc

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/ib"
	"repro/internal/sim"
)

// RDMA transport tuning.
const (
	// rdmaQPWindow is the send-queue depth of the NFS/RDMA connection —
	// deeper than raw perftest defaults, since the server keeps many 4 KB
	// fragments in flight.
	rdmaQPWindow = 32
	// FragmentIssueCPU is the server-side cost to prepare and post one
	// 4 KB direct-placement fragment (page-cache lookup, WQE build). It
	// is charged on a serialized issue context and sets the NFS/RDMA
	// server's ~1.2 GB/s ceiling observed as the paper's LAN peak.
	FragmentIssueCPU = 3300 * sim.Nanosecond
)

// rdmaWire is the wire header message used on the send/recv channel.
type rdmaWire struct {
	xid     uint64
	proc    uint32
	meta    []byte
	isReply bool
	bulkLen int // reply: bulk bytes placed before this reply was sent
	// Request: regions the client advertises for direct data placement.
	readMR  *ib.MR // server writes READ data here
	writeMR *ib.MR // server reads WRITE data from here
	readLen int
	wlen    int
}

// RDMAClient is the NFS/RDMA client transport: one RC connection to the
// server, small sends for headers, direct data placement for bulk.
type RDMAClient struct {
	env     *sim.Env
	node    *cluster.Node
	qp      *ib.QP
	policy  Policy
	nextXID uint64
	pending map[uint64]*rdmaCall
	// err, once set, is the transport's terminal failure: the RC
	// connection's retry budget ran out and the QP moved to the error
	// state, so every pending and future call fails with it.
	err error
}

type rdmaCall struct {
	xid   uint64
	done  *sim.Event
	req   *Request
	reply *Reply
	bulkN int
	err   error
}

// RDMAServer is the server side of the RDMA transport.
type RDMAServer struct {
	env     *sim.Env
	node    *cluster.Node
	handler Handler
	threads *sim.Resource
	// issueCtx serializes fragment preparation (the server data path).
	issueCtx *sim.Resource
	qps      []*ib.QP
	cq       *ib.CQ
}

// ServeRDMA starts an RPC-over-RDMA server on the node.
func ServeRDMA(node *cluster.Node, threads int, h Handler) *RDMAServer {
	env := node.HCA.Env()
	s := &RDMAServer{
		env:      env,
		node:     node,
		handler:  h,
		threads:  sim.NewResource(env, threads),
		issueCtx: sim.NewResource(env, 1),
		cq:       ib.NewCQ(env),
	}
	// Single CQ consumer: routes inbound calls to handler processes and
	// fragment completions to their waiting groups.
	env.Go("rpc-rdma-server", func(p *sim.Proc) {
		for {
			c := s.cq.Poll(p)
			if c.Status != ib.StatusOK {
				// Errored connection: a flushed receive carries no call,
				// but a failed fragment must still count down its group or
				// the handler waiting on it would hang forever.
				if g, ok := c.Ctx.(*fragGroup); ok {
					g.remaining--
					if g.remaining == 0 {
						g.done.Trigger(nil)
					}
				}
				continue
			}
			switch c.Op {
			case ib.OpRecv:
				s.repostByQPN(c.QPN)
				w := c.Meta.(*rdmaWire)
				localQPN := c.QPN
				s.env.Go("rpc-rdma-handler", func(ph *sim.Proc) {
					s.serve(ph, w, localQPN)
				})
			case ib.OpRDMAWrite, ib.OpRDMARead:
				if g, ok := c.Ctx.(*fragGroup); ok {
					g.remaining--
					if g.remaining == 0 {
						g.done.Trigger(nil)
					}
				}
			}
		}
	})
	return s
}

// fragGroup tracks a batch of outstanding direct-placement fragments.
type fragGroup struct {
	remaining int
	done      *sim.Event
}

func (s *RDMAServer) repostByQPN(qpn int) {
	for _, qp := range s.qps {
		if qp.QPN() == qpn {
			qp.PostRecv(ib.RecvWR{})
			return
		}
	}
}

// qpToClient returns the server-side QP the call arrived on; replies and
// direct data placement flow back over the same connection.
func (s *RDMAServer) qpToClient(localQPN int) *ib.QP {
	for _, qp := range s.qps {
		if qp.QPN() == localQPN {
			return qp
		}
	}
	panic("rpc: reply to unknown client QP")
}

// serve runs one call: fetch WRITE data by RDMA read, invoke the handler,
// place READ data by fragmented RDMA writes, send the reply.
func (s *RDMAServer) serve(p *sim.Proc, w *rdmaWire, localQPN int) {
	s.threads.Acquire(p)
	defer s.threads.Release()
	qp := s.qpToClient(localQPN)
	req := &Request{Proc: w.proc, Meta: w.meta, ReadLen: w.readLen}
	// Pull WRITE bulk from the client by RDMA read, fragment by fragment.
	if w.wlen > 0 {
		var buf []byte
		if w.writeMR != nil && w.writeMR.Buf != nil {
			buf = make([]byte, w.wlen)
		}
		g := &fragGroup{remaining: (w.wlen + Fragment - 1) / Fragment, done: s.env.NewEvent()}
		for off := 0; off < w.wlen; off += Fragment {
			n := min(Fragment, w.wlen-off)
			s.issueCtx.Use(p, FragmentIssueCPU)
			var dst []byte
			if buf != nil {
				dst = buf[off : off+n]
			}
			qp.PostSend(ib.SendWR{Op: ib.OpRDMARead, Len: n, LocalBuf: dst,
				RemoteMR: w.writeMR, RemoteOff: off, Ctx: g})
		}
		p.Wait(g.done)
		req.WriteBulk = buf
		if buf == nil {
			req.WriteLen = w.wlen
		}
	}
	reply := s.handler(p, req)
	// Place READ bulk into the client's region, 4 KB fragments.
	bulkN := reply.bulkLen()
	if bulkN > 0 {
		if w.readMR == nil {
			panic("rpc: reply bulk without client read region")
		}
		g := &fragGroup{remaining: (bulkN + Fragment - 1) / Fragment, done: s.env.NewEvent()}
		for off := 0; off < bulkN; off += Fragment {
			n := min(Fragment, bulkN-off)
			s.issueCtx.Use(p, FragmentIssueCPU)
			var src []byte
			if reply.Bulk != nil {
				src = reply.Bulk[off : off+n]
			}
			qp.PostSend(ib.SendWR{Op: ib.OpRDMAWrite, Data: src, Len: n,
				RemoteMR: w.readMR, RemoteOff: off, Ctx: g})
		}
		p.Wait(g.done)
	}
	qp.PostSend(ib.SendWR{Op: ib.OpSend, Len: CtrlWire(len(reply.Meta)),
		Meta: &rdmaWire{xid: w.xid, proc: w.proc, meta: reply.Meta, isReply: true, bulkLen: bulkN}})
}

// CtrlWire is the wire size of an RPC header message with the given
// metadata length.
func CtrlWire(metaLen int) int { return headerBytes + metaLen }

// NewRDMAClient connects an RPC-over-RDMA client on the node to the server.
func NewRDMAClient(node *cluster.Node, srv *RDMAServer) *RDMAClient {
	env := node.HCA.Env()
	c := &RDMAClient{env: env, node: node, pending: make(map[uint64]*rdmaCall)}
	cq := ib.NewCQ(env)
	local, remote := ib.CreateRCPair(node.HCA, srv.node.HCA, cq, srv.cq,
		ib.QPConfig{MaxInflight: rdmaQPWindow})
	c.qp = local
	srv.qps = append(srv.qps, remote)
	for i := 0; i < 128; i++ {
		local.PostRecv(ib.RecvWR{})
		remote.PostRecv(ib.RecvWR{})
	}
	env.Go("rpc-rdma-client", func(p *sim.Proc) {
		for {
			comp := cq.Poll(p)
			if comp.Status != ib.StatusOK {
				// The RC connection gave up (retry budget exhausted) and
				// flushed its queues: the transport is dead. Fail
				// everything pending; further error completions drain
				// through fail as no-ops.
				c.fail(comp.Status)
				continue
			}
			if comp.Op != ib.OpRecv {
				continue
			}
			c.qp.PostRecv(ib.RecvWR{})
			w := comp.Meta.(*rdmaWire)
			if !w.isReply {
				continue
			}
			call := c.pending[w.xid]
			if call == nil {
				continue // late reply for a timed-out call
			}
			delete(c.pending, w.xid)
			call.reply = &Reply{Meta: w.meta, BulkLen: w.bulkLen}
			call.bulkN = w.bulkLen
			if call.req.ReadBuf == nil && w.bulkLen > call.req.ReadLen {
				call.bulkN = call.req.ReadLen
			}
			call.done.Trigger(nil)
		}
	})
	return c
}

// SetPolicy installs the client's call timeout policy (an NFS mount's
// timeo/retrans options). The zero Policy — the default — arms no timers.
func (c *RDMAClient) SetPolicy(pol Policy) { c.policy = pol }

// fail marks the transport dead and fails every pending call, in XID order
// so faulted output is deterministic regardless of map iteration.
func (c *RDMAClient) fail(st ib.Status) {
	if c.err == nil {
		c.err = fmt.Errorf("rpc: rdma transport failure: %s", st)
	}
	xids := make([]uint64, 0, len(c.pending))
	for xid := range c.pending {
		xids = append(xids, xid)
	}
	sort.Slice(xids, func(i, j int) bool { return xids[i] < xids[j] })
	for _, xid := range xids {
		call := c.pending[xid]
		delete(c.pending, xid)
		call.err = c.err
		call.done.Trigger(nil)
	}
}

// armTimeout schedules the per-attempt reply timeout for a call: each
// expiry re-sends the header message (same XID), or fails the call with
// ErrTimeout once a soft policy's budget is spent.
func (c *RDMAClient) armTimeout(call *rdmaCall, w *rdmaWire, tries int) {
	c.env.At(c.policy.Timeout, func() {
		if call.done.Triggered() {
			return
		}
		if !c.policy.Hard && tries >= c.policy.Retrans {
			delete(c.pending, call.xid)
			call.err = ErrTimeout
			call.done.Trigger(nil)
			return
		}
		c.qp.PostSend(ib.SendWR{Op: ib.OpSend, Len: CtrlWire(len(call.req.Meta)), Meta: w})
		c.armTimeout(call, w, tries+1)
	})
}

// Call implements Client.
func (c *RDMAClient) Call(p *sim.Proc, req *Request) (*Reply, int, error) {
	if c.err != nil {
		return nil, 0, c.err
	}
	c.nextXID++
	call := &rdmaCall{xid: c.nextXID, done: c.env.NewEvent(), req: req}
	c.pending[c.nextXID] = call
	w := &rdmaWire{
		xid: c.nextXID, proc: req.Proc, meta: req.Meta,
		readLen: req.readCap(), wlen: req.writeLen(),
	}
	if req.readCap() > 0 {
		if req.ReadBuf != nil {
			w.readMR = c.node.HCA.RegisterMR(req.ReadBuf)
		} else {
			w.readMR = c.node.HCA.RegisterVirtualMR(req.ReadLen)
		}
	}
	if w.wlen > 0 {
		if req.WriteBulk != nil {
			w.writeMR = c.node.HCA.RegisterMR(req.WriteBulk)
		} else {
			w.writeMR = c.node.HCA.RegisterVirtualMR(req.WriteLen)
		}
	}
	c.qp.PostSend(ib.SendWR{Op: ib.OpSend, Len: CtrlWire(len(req.Meta)), Meta: w})
	if c.policy.Timeout > 0 {
		c.armTimeout(call, w, 0)
	}
	p.Wait(call.done)
	if call.err != nil {
		return nil, 0, call.err
	}
	return call.reply, call.bulkN, nil
}
