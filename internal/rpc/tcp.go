package rpc

import (
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// TCPClient multiplexes RPC calls over one TCP connection (as the Linux
// NFS client does per mount: all threads share the transport, which is why
// "streams" scale concurrency but share one TCP window).
type TCPClient struct {
	env     *sim.Env
	conn    *tcpsim.Conn
	nextXID uint64
	pending map[uint64]*tcpCall
	writeQ  *sim.Queue[*tcpCall]
}

type tcpCall struct {
	xid   uint64
	done  *sim.Event
	req   *Request
	reply *Reply
	bulkN int
}

// NewTCPClient connects to the RPC server at (addr, port) over the stack.
func NewTCPClient(p *sim.Proc, stack *tcpsim.Stack, addr ib.LID, port int) *TCPClient {
	conn := stack.Dial(p, addr, port)
	c := &TCPClient{
		env:     stack.Env(),
		conn:    conn,
		pending: make(map[uint64]*tcpCall),
		writeQ:  sim.NewQueue[*tcpCall](stack.Env(), 0),
	}
	// Writer: serializes request framing onto the shared connection.
	c.env.Go("rpc-tcp-writer", func(pw *sim.Proc) {
		for {
			call := c.writeQ.Get(pw)
			req := call.req
			hdr := marshalHeader(call.xid, req.Proc, len(req.Meta), req.writeLen(), req.readCap())
			c.conn.Write(pw, hdr)
			if len(req.Meta) > 0 {
				c.conn.Write(pw, req.Meta)
			}
			if req.WriteBulk != nil {
				c.conn.Write(pw, req.WriteBulk)
			} else if req.WriteLen > 0 {
				c.conn.WriteSynthetic(pw, req.WriteLen)
			}
		}
	})
	// Reader: demultiplexes replies by XID.
	c.env.Go("rpc-tcp-reader", func(pr *sim.Proc) {
		for {
			hdr := c.conn.ReadFull(pr, headerBytes)
			xid, _, metaLen, bulkLen, _ := unmarshalHeader(hdr)
			meta := c.conn.ReadFull(pr, metaLen)
			call := c.pending[xid]
			check(call != nil, "reply for unknown XID")
			delete(c.pending, xid)
			n := 0
			if bulkLen > 0 {
				bulk := c.conn.ReadFull(pr, bulkLen)
				if call.req.ReadBuf != nil {
					n = copy(call.req.ReadBuf, bulk)
				} else {
					n = bulkLen
				}
			}
			call.reply = &Reply{Meta: meta, BulkLen: bulkLen}
			call.bulkN = n
			call.done.Trigger(nil)
		}
	})
	return c
}

// Call implements Client. Multiple processes may call concurrently; the
// transport multiplexes by XID.
func (c *TCPClient) Call(p *sim.Proc, req *Request) (*Reply, int) {
	c.nextXID++
	call := &tcpCall{xid: c.nextXID, done: c.env.NewEvent(), req: req}
	c.pending[call.xid] = call
	c.writeQ.TryPut(call)
	p.Wait(call.done)
	return call.reply, call.bulkN
}

// TCPServer accepts RPC connections and dispatches each call to the
// handler in its own process (an nfsd thread), bounded by the thread pool.
// Replies are framed by a per-connection writer so concurrent handlers
// never interleave bytes on the stream.
type TCPServer struct {
	stack   *tcpsim.Stack
	handler Handler
	threads *sim.Resource
}

type tcpReply struct {
	xid   uint64
	proc  uint32
	reply *Reply
}

// ServeTCP starts an RPC server on the stack at the given port with the
// given handler thread-pool size.
func ServeTCP(stack *tcpsim.Stack, port int, threads int, h Handler) *TCPServer {
	s := &TCPServer{stack: stack, handler: h, threads: sim.NewResource(stack.Env(), threads)}
	ln := stack.Listen(port)
	stack.Env().Go("rpc-tcp-accept", func(p *sim.Proc) {
		for {
			conn := ln.Accept(p)
			s.serveConn(conn)
		}
	})
	return s
}

func (s *TCPServer) serveConn(conn *tcpsim.Conn) {
	env := s.stack.Env()
	replies := sim.NewQueue[*tcpReply](env, 0)
	// Reply writer: serializes reply frames.
	env.Go("rpc-tcp-replier", func(p *sim.Proc) {
		for {
			r := replies.Get(p)
			hdr := marshalHeader(r.xid, r.proc, len(r.reply.Meta), r.reply.bulkLen(), 0)
			conn.Write(p, hdr)
			if len(r.reply.Meta) > 0 {
				conn.Write(p, r.reply.Meta)
			}
			if r.reply.Bulk != nil {
				conn.Write(p, r.reply.Bulk)
			} else if r.reply.BulkLen > 0 {
				conn.WriteSynthetic(p, r.reply.BulkLen)
			}
		}
	})
	env.Go("rpc-tcp-serve", func(p *sim.Proc) {
		for {
			hdr := conn.ReadFull(p, headerBytes)
			xid, proc, metaLen, bulkLen, readLen := unmarshalHeader(hdr)
			meta := conn.ReadFull(p, metaLen)
			var bulk []byte
			if bulkLen > 0 {
				bulk = conn.ReadFull(p, bulkLen)
			}
			req := &Request{Proc: proc, Meta: meta, WriteBulk: bulk, ReadLen: readLen}
			env.Go("rpc-tcp-handler", func(ph *sim.Proc) {
				s.threads.Acquire(ph)
				defer s.threads.Release()
				reply := s.handler(ph, req)
				replies.TryPut(&tcpReply{xid: xid, proc: proc, reply: reply})
			})
		}
	})
}
