package rpc

import (
	"sort"

	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// TCPClient multiplexes RPC calls over one TCP connection (as the Linux
// NFS client does per mount: all threads share the transport, which is why
// "streams" scale concurrency but share one TCP window).
type TCPClient struct {
	env     *sim.Env
	conn    *tcpsim.Conn
	policy  Policy
	nextXID uint64
	pending map[uint64]*tcpCall
	writeQ  *sim.Queue[*tcpCall]
	// err, once set, is the transport's terminal failure: the connection
	// underneath reset, so every pending and future call fails with it.
	err error
}

type tcpCall struct {
	xid   uint64
	done  *sim.Event
	req   *Request
	reply *Reply
	bulkN int
	err   error
}

// NewTCPClient connects to the RPC server at (addr, port) over the stack.
// Under fault injection the dial itself can fail (handshake retry budget
// exhausted).
func NewTCPClient(p *sim.Proc, stack *tcpsim.Stack, addr ib.LID, port int) (*TCPClient, error) {
	conn, err := stack.Dial(p, addr, port)
	if err != nil {
		return nil, err
	}
	c := &TCPClient{
		env:     stack.Env(),
		conn:    conn,
		pending: make(map[uint64]*tcpCall),
		writeQ:  sim.NewQueue[*tcpCall](stack.Env(), 0),
	}
	// Writer: serializes request framing onto the shared connection. A
	// write error means the connection reset underneath us; the transport
	// is dead and the writer exits.
	c.env.Go("rpc-tcp-writer", func(pw *sim.Proc) {
		for {
			call := c.writeQ.Get(pw)
			req := call.req
			hdr := marshalHeader(call.xid, req.Proc, len(req.Meta), req.writeLen(), req.readCap())
			if err := c.conn.Write(pw, hdr); err != nil {
				c.fail(err)
				return
			}
			if len(req.Meta) > 0 {
				if err := c.conn.Write(pw, req.Meta); err != nil {
					c.fail(err)
					return
				}
			}
			var err error
			if req.WriteBulk != nil {
				err = c.conn.Write(pw, req.WriteBulk)
			} else if req.WriteLen > 0 {
				err = c.conn.WriteSynthetic(pw, req.WriteLen)
			}
			if err != nil {
				c.fail(err)
				return
			}
		}
	})
	// Reader: demultiplexes replies by XID. A reply whose XID is no longer
	// pending (the call already timed out and was retransmitted or failed)
	// is consumed and discarded, as the kernel RPC layer does.
	c.env.Go("rpc-tcp-reader", func(pr *sim.Proc) {
		for {
			hdr, err := c.conn.ReadFull(pr, headerBytes)
			if err != nil {
				c.fail(err)
				return
			}
			xid, _, metaLen, bulkLen, _ := unmarshalHeader(hdr)
			meta, err := c.conn.ReadFull(pr, metaLen)
			if err != nil {
				c.fail(err)
				return
			}
			var bulk []byte
			if bulkLen > 0 {
				if bulk, err = c.conn.ReadFull(pr, bulkLen); err != nil {
					c.fail(err)
					return
				}
			}
			call := c.pending[xid]
			if call == nil {
				continue // late reply for a timed-out call
			}
			delete(c.pending, xid)
			n := 0
			if bulkLen > 0 {
				if call.req.ReadBuf != nil {
					n = copy(call.req.ReadBuf, bulk)
				} else {
					n = bulkLen
				}
			}
			call.reply = &Reply{Meta: meta, BulkLen: bulkLen}
			call.bulkN = n
			call.done.Trigger(nil)
		}
	})
	return c, nil
}

// SetPolicy installs the client's call timeout policy (an NFS mount's
// timeo/retrans options). The zero Policy — the default — arms no timers.
func (c *TCPClient) SetPolicy(pol Policy) { c.policy = pol }

// fail marks the transport dead and fails every pending call, in XID order
// so faulted output is deterministic regardless of map iteration.
func (c *TCPClient) fail(err error) {
	if c.err == nil {
		c.err = err
	}
	xids := make([]uint64, 0, len(c.pending))
	for xid := range c.pending {
		xids = append(xids, xid)
	}
	sort.Slice(xids, func(i, j int) bool { return xids[i] < xids[j] })
	for _, xid := range xids {
		call := c.pending[xid]
		delete(c.pending, xid)
		call.err = c.err
		call.done.Trigger(nil)
	}
}

// armTimeout schedules the per-attempt reply timeout for a call. Each
// expiry either retransmits the request frame (same XID, like ONC RPC) or
// — once a soft policy's budget is spent — fails the call with ErrTimeout.
func (c *TCPClient) armTimeout(call *tcpCall, tries int) {
	c.env.At(c.policy.Timeout, func() {
		if call.done.Triggered() {
			return
		}
		if !c.policy.Hard && tries >= c.policy.Retrans {
			delete(c.pending, call.xid)
			call.err = ErrTimeout
			call.done.Trigger(nil)
			return
		}
		c.writeQ.TryPut(call)
		c.armTimeout(call, tries+1)
	})
}

// Call implements Client. Multiple processes may call concurrently; the
// transport multiplexes by XID.
func (c *TCPClient) Call(p *sim.Proc, req *Request) (*Reply, int, error) {
	if c.err != nil {
		return nil, 0, c.err
	}
	c.nextXID++
	call := &tcpCall{xid: c.nextXID, done: c.env.NewEvent(), req: req}
	c.pending[call.xid] = call
	c.writeQ.TryPut(call)
	if c.policy.Timeout > 0 {
		c.armTimeout(call, 0)
	}
	p.Wait(call.done)
	if call.err != nil {
		return nil, 0, call.err
	}
	return call.reply, call.bulkN, nil
}

// TCPServer accepts RPC connections and dispatches each call to the
// handler in its own process (an nfsd thread), bounded by the thread pool.
// Replies are framed by a per-connection writer so concurrent handlers
// never interleave bytes on the stream.
type TCPServer struct {
	stack   *tcpsim.Stack
	handler Handler
	threads *sim.Resource
}

type tcpReply struct {
	xid   uint64
	proc  uint32
	reply *Reply
}

// ServeTCP starts an RPC server on the stack at the given port with the
// given handler thread-pool size.
func ServeTCP(stack *tcpsim.Stack, port int, threads int, h Handler) *TCPServer {
	s := &TCPServer{stack: stack, handler: h, threads: sim.NewResource(stack.Env(), threads)}
	ln := stack.Listen(port)
	stack.Env().Go("rpc-tcp-accept", func(p *sim.Proc) {
		for {
			conn, err := ln.Accept(p)
			if err != nil {
				continue // stillborn connection; keep serving
			}
			s.serveConn(conn)
		}
	})
	return s
}

func (s *TCPServer) serveConn(conn *tcpsim.Conn) {
	env := s.stack.Env()
	replies := sim.NewQueue[*tcpReply](env, 0)
	// Reply writer: serializes reply frames. A dead connection ends the
	// writer; in-flight handler results are dropped, as a real server's
	// would be once the socket errors.
	env.Go("rpc-tcp-replier", func(p *sim.Proc) {
		for {
			r := replies.Get(p)
			hdr := marshalHeader(r.xid, r.proc, len(r.reply.Meta), r.reply.bulkLen(), 0)
			if err := conn.Write(p, hdr); err != nil {
				return
			}
			if len(r.reply.Meta) > 0 {
				if err := conn.Write(p, r.reply.Meta); err != nil {
					return
				}
			}
			var err error
			if r.reply.Bulk != nil {
				err = conn.Write(p, r.reply.Bulk)
			} else if r.reply.BulkLen > 0 {
				err = conn.WriteSynthetic(p, r.reply.BulkLen)
			}
			if err != nil {
				return
			}
		}
	})
	env.Go("rpc-tcp-serve", func(p *sim.Proc) {
		for {
			hdr, err := conn.ReadFull(p, headerBytes)
			if err != nil {
				return
			}
			xid, proc, metaLen, bulkLen, readLen := unmarshalHeader(hdr)
			meta, err := conn.ReadFull(p, metaLen)
			if err != nil {
				return
			}
			var bulk []byte
			if bulkLen > 0 {
				if bulk, err = conn.ReadFull(p, bulkLen); err != nil {
					return
				}
			}
			req := &Request{Proc: proc, Meta: meta, WriteBulk: bulk, ReadLen: readLen}
			env.Go("rpc-tcp-handler", func(ph *sim.Proc) {
				s.threads.Acquire(ph)
				defer s.threads.Release()
				reply := s.handler(ph, req)
				replies.TryPut(&tcpReply{xid: xid, proc: proc, reply: reply})
			})
		}
	})
}
