package mpi

import (
	"sort"

	"repro/internal/sim"
)

// This file implements WAN-aware (hierarchical) variants of barrier and
// allreduce — the paper's stated future work ("we plan to study collective
// communication operations in cluster-of-clusters scenarios in detail").
// The design principle is the one §3.4 demonstrates for broadcast: pay the
// WAN latency a constant number of times, independent of process count, by
// electing one leader per cluster.

// groups partitions the world's rank ids by cluster label, sorted.
func (r *Rank) groups() (mine, other []int) {
	myCluster := r.Cluster()
	for _, rk := range r.world.ranks {
		if rk.Cluster() == myCluster {
			mine = append(mine, rk.id)
		} else {
			other = append(other, rk.id)
		}
	}
	sort.Ints(mine)
	sort.Ints(other)
	return mine, other
}

// HierBarrier synchronizes all ranks crossing each WAN link of the site
// tree exactly twice (a gather toward the root site and a release back
// down), instead of the dissemination barrier's log2(n) rounds of
// potentially-crossing exchanges. With two sites this degenerates to the
// single leader handshake of the original design.
func (r *Rank) HierBarrier(p *sim.Proc) {
	if r.occupiedSites() > 2 {
		r.hierBarrierTree(p)
		return
	}
	r.collSeq++
	tagGather := r.collTag(0)
	tagWAN := r.collTag(1)
	tagRelease := r.collTag(2)
	mine, other := r.groups()
	if len(other) == 0 {
		r.Barrier(p)
		return
	}
	leader := mine[0]
	remoteLeader := other[0]
	if r.id == leader {
		// Gather arrivals from the local cluster.
		for range mine[1:] {
			r.Recv(p, AnySource, tagGather, nil, 0)
		}
		// Leader handshake across the WAN.
		r.Sendrecv(p, remoteLeader, tagWAN, nil, 0, remoteLeader, tagWAN, nil, 0)
		// Release the local cluster.
		r.bcastTree(p, leader, nil, 0, mine, tagRelease)
	} else {
		r.Send(p, leader, tagGather, nil, 0)
		r.bcastTree(p, leader, nil, 0, mine, tagRelease)
	}
}

// HierAllreduce sums float64 vectors with site-local reduction, leader
// exchanges along the site tree, and site-local broadcast: each WAN link
// of the tree is crossed once in each direction regardless of n. With two
// sites this degenerates to the original single leader exchange.
func (r *Rank) HierAllreduce(p *sim.Proc, vals []float64) []float64 {
	if r.occupiedSites() > 2 {
		return r.hierAllreduceTree(p, vals)
	}
	r.collSeq++
	tagReduce := r.collTag(0)
	tagWAN := r.collTag(1)
	tagBcast := r.collTag(2)
	mine, other := r.groups()
	if len(other) == 0 {
		return r.Allreduce(p, vals)
	}
	leader := mine[0]
	remoteLeader := other[0]
	// Local binomial reduce onto the leader (positions within the group).
	acc := r.localReduce(p, mine, vals, tagReduce)
	// Leaders exchange partial sums (one WAN round trip) and combine.
	var result []byte
	if r.id == leader {
		peerBuf := make([]byte, 8*len(vals))
		got, _ := r.Sendrecv(p, remoteLeader, tagWAN, encodeF64(acc), 0,
			remoteLeader, tagWAN, peerBuf, 0)
		peer := decodeF64(peerBuf[:got])
		for i := range acc {
			acc[i] += peer[i]
		}
		result = encodeF64(acc)
	} else {
		result = make([]byte, 8*len(vals))
	}
	// Local broadcast of the global result.
	out := r.bcastTree(p, leader, result, 8*len(vals), mine, tagBcast)
	return decodeF64(out)
}

// localReduce runs a binomial sum-reduction of vals onto ids[0] using
// positions within the group; it returns the accumulated vector on ids[0]
// and nil on every other rank.
func (r *Rank) localReduce(p *sim.Proc, ids []int, vals []float64, tag int) []float64 {
	me := indexOf(ids, r.id)
	n := len(ids)
	acc := make([]float64, len(vals))
	copy(acc, vals)
	for mask := 1; mask < n; mask <<= 1 {
		if me&mask != 0 {
			parent := ids[me&^mask]
			r.Send(p, parent, tag, encodeF64(acc), 0)
			return nil
		}
		if me+mask < n {
			child := ids[me+mask]
			buf := make([]byte, 8*len(vals))
			got, _ := r.Recv(p, child, tag, buf, 0)
			vec := decodeF64(buf[:got])
			for i := range acc {
				acc[i] += vec[i]
			}
		}
	}
	return acc
}

// hierBarrierTree is the >=3-site barrier: site-local gather onto each
// site leader, leader signals up the site tree, the root site's leader
// releases back down, and each site broadcasts the release locally. Every
// WAN link on the tree carries exactly one zero-byte message in each
// direction.
func (r *Rank) hierBarrierTree(p *sim.Proc) {
	r.collSeq++
	tagGather := r.collTag(0)
	tagUp := r.collTag(1)
	tagDown := r.collTag(2)
	tagRelease := r.collTag(3)
	rootSite := r.world.ranks[0].node.Site()
	st := r.siteTree(rootSite)
	mySite := r.node.Site()
	mine := st.groups[mySite]
	leader := st.leader(mySite)
	if r.id != leader {
		r.Send(p, leader, tagGather, nil, 0)
		r.bcastTree(p, leader, nil, 0, mine, tagRelease)
		return
	}
	// Gather arrivals from the local site, then from child sites.
	for range mine[1:] {
		r.Recv(p, AnySource, tagGather, nil, 0)
	}
	for _, c := range st.children(mySite) {
		r.Recv(p, st.leader(c), tagUp, nil, 0)
	}
	if mySite != rootSite {
		parent := st.leader(st.parent[mySite])
		r.Send(p, parent, tagUp, nil, 0)
		r.Recv(p, parent, tagDown, nil, 0)
	}
	for _, c := range st.children(mySite) {
		r.Send(p, st.leader(c), tagDown, nil, 0)
	}
	r.bcastTree(p, leader, nil, 0, mine, tagRelease)
}

// hierAllreduceTree is the >=3-site allreduce: site-local reduce onto each
// leader, partial sums combined up the site tree, the global vector pushed
// back down, then site-local broadcast. Each WAN link on the tree carries
// the vector exactly once in each direction.
func (r *Rank) hierAllreduceTree(p *sim.Proc, vals []float64) []float64 {
	r.collSeq++
	tagReduce := r.collTag(0)
	tagUp := r.collTag(1)
	tagDown := r.collTag(2)
	tagBcast := r.collTag(3)
	rootSite := r.world.ranks[0].node.Site()
	st := r.siteTree(rootSite)
	mySite := r.node.Site()
	mine := st.groups[mySite]
	leader := st.leader(mySite)
	acc := r.localReduce(p, mine, vals, tagReduce)
	var result []byte
	if r.id == leader {
		for _, c := range st.children(mySite) {
			buf := make([]byte, 8*len(vals))
			got, _ := r.Recv(p, st.leader(c), tagUp, buf, 0)
			vec := decodeF64(buf[:got])
			for i := range acc {
				acc[i] += vec[i]
			}
		}
		if mySite != rootSite {
			parent := st.leader(st.parent[mySite])
			r.Send(p, parent, tagUp, encodeF64(acc), 0)
			buf := make([]byte, 8*len(vals))
			got, _ := r.Recv(p, parent, tagDown, buf, 0)
			acc = decodeF64(buf[:got])
		}
		for _, c := range st.children(mySite) {
			r.Send(p, st.leader(c), tagDown, encodeF64(acc), 0)
		}
		result = encodeF64(acc)
	} else {
		result = make([]byte, 8*len(vals))
	}
	out := r.bcastTree(p, leader, result, 8*len(vals), mine, tagBcast)
	return decodeF64(out)
}

func indexOf(ids []int, id int) int {
	for i, v := range ids {
		if v == id {
			return i
		}
	}
	panic("mpi: rank not in its own cluster group")
}
