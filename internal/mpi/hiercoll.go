package mpi

import (
	"sort"

	"repro/internal/sim"
)

// This file implements WAN-aware (hierarchical) variants of barrier and
// allreduce — the paper's stated future work ("we plan to study collective
// communication operations in cluster-of-clusters scenarios in detail").
// The design principle is the one §3.4 demonstrates for broadcast: pay the
// WAN latency a constant number of times, independent of process count, by
// electing one leader per cluster.

// groups partitions the world's rank ids by cluster label, sorted.
func (r *Rank) groups() (mine, other []int) {
	myCluster := r.Cluster()
	for _, rk := range r.world.ranks {
		if rk.Cluster() == myCluster {
			mine = append(mine, rk.id)
		} else {
			other = append(other, rk.id)
		}
	}
	sort.Ints(mine)
	sort.Ints(other)
	return mine, other
}

// HierBarrier synchronizes all ranks crossing the WAN exactly twice (one
// leader handshake), instead of the dissemination barrier's log2(n) rounds
// of potentially-crossing exchanges.
func (r *Rank) HierBarrier(p *sim.Proc) {
	r.collSeq++
	tagGather := r.collTag(0)
	tagWAN := r.collTag(1)
	tagRelease := r.collTag(2)
	mine, other := r.groups()
	if len(other) == 0 {
		r.Barrier(p)
		return
	}
	leader := mine[0]
	remoteLeader := other[0]
	if r.id == leader {
		// Gather arrivals from the local cluster.
		for range mine[1:] {
			r.Recv(p, AnySource, tagGather, nil, 0)
		}
		// Leader handshake across the WAN.
		r.Sendrecv(p, remoteLeader, tagWAN, nil, 0, remoteLeader, tagWAN, nil, 0)
		// Release the local cluster.
		r.bcastTree(p, leader, nil, 0, mine, tagRelease)
	} else {
		r.Send(p, leader, tagGather, nil, 0)
		r.bcastTree(p, leader, nil, 0, mine, tagRelease)
	}
}

// HierAllreduce sums float64 vectors with cluster-local reduction, a single
// leader exchange over the WAN, and cluster-local broadcast: the WAN is
// crossed once in each direction regardless of n.
func (r *Rank) HierAllreduce(p *sim.Proc, vals []float64) []float64 {
	r.collSeq++
	tagReduce := r.collTag(0)
	tagWAN := r.collTag(1)
	tagBcast := r.collTag(2)
	mine, other := r.groups()
	if len(other) == 0 {
		return r.Allreduce(p, vals)
	}
	leader := mine[0]
	remoteLeader := other[0]
	// Local binomial reduce onto the leader (positions within the group).
	me := indexOf(mine, r.id)
	n := len(mine)
	acc := make([]float64, len(vals))
	copy(acc, vals)
	for mask := 1; mask < n; mask <<= 1 {
		if me&mask != 0 {
			parent := mine[me&^mask]
			r.Send(p, parent, tagReduce, encodeF64(acc), 0)
			acc = nil
			break
		}
		if me+mask < n {
			child := mine[me+mask]
			buf := make([]byte, 8*len(vals))
			got, _ := r.Recv(p, child, tagReduce, buf, 0)
			vec := decodeF64(buf[:got])
			for i := range acc {
				acc[i] += vec[i]
			}
		}
	}
	// Leaders exchange partial sums (one WAN round trip) and combine.
	var result []byte
	if r.id == leader {
		peerBuf := make([]byte, 8*len(vals))
		got, _ := r.Sendrecv(p, remoteLeader, tagWAN, encodeF64(acc), 0,
			remoteLeader, tagWAN, peerBuf, 0)
		peer := decodeF64(peerBuf[:got])
		for i := range acc {
			acc[i] += peer[i]
		}
		result = encodeF64(acc)
	} else {
		result = make([]byte, 8*len(vals))
	}
	// Local broadcast of the global result.
	out := r.bcastTree(p, leader, result, 8*len(vals), mine, tagBcast)
	return decodeF64(out)
}

func indexOf(ids []int, id int) int {
	for i, v := range ids {
		if v == id {
			return i
		}
	}
	panic("mpi: rank not in its own cluster group")
}
