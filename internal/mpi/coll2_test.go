package mpi

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/sim"
)

func TestGatherCollectsInRankOrder(t *testing.T) {
	for _, shape := range [][2]int{{2, 2}, {3, 2}, {4, 4}} {
		for _, root := range []int{0, shape[0]} { // root in A, root in B
			w, _ := spreadWorld(shape[0], shape[1], sim.Micros(10), Config{})
			n := shape[0] + shape[1]
			var got []byte
			w.Run(func(r *Rank, p *sim.Proc) {
				block := bytes.Repeat([]byte{byte(r.ID() + 1)}, 4)
				out := r.Gather(p, root, block, 0)
				if r.ID() == root {
					got = out
				} else if out != nil {
					t.Errorf("non-root got non-nil gather result")
				}
			})
			if len(got) != n*4 {
				t.Fatalf("shape %v root %d: gather len = %d", shape, root, len(got))
			}
			for i := 0; i < n; i++ {
				for j := 0; j < 4; j++ {
					if got[i*4+j] != byte(i+1) {
						t.Fatalf("shape %v root %d: block %d = %v", shape, root, i, got[i*4:(i+1)*4])
					}
				}
			}
			w.Shutdown()
		}
	}
}

func TestScatterDistributesInRankOrder(t *testing.T) {
	for _, shape := range [][2]int{{2, 2}, {3, 2}, {4, 4}} {
		for _, root := range []int{0, 1} {
			w, _ := spreadWorld(shape[0], shape[1], sim.Micros(10), Config{})
			n := shape[0] + shape[1]
			data := make([]byte, n*8)
			for i := range data {
				data[i] = byte(i/8 + 10)
			}
			ok := true
			w.Run(func(r *Rank, p *sim.Proc) {
				var in []byte
				if r.ID() == root {
					in = data
				}
				block := r.Scatter(p, root, in, 8)
				for _, b := range block {
					if b != byte(r.ID()+10) {
						ok = false
					}
				}
				if len(block) != 8 {
					ok = false
				}
			})
			if !ok {
				t.Errorf("shape %v root %d: scatter blocks wrong", shape, root)
			}
			w.Shutdown()
		}
	}
}

func TestGatherScatterInverse(t *testing.T) {
	w, _ := spreadWorld(2, 2, sim.Micros(100), Config{})
	defer w.Shutdown()
	orig := []byte("abcdefghijklmnop") // 4 blocks of 4
	ok := true
	w.Run(func(r *Rank, p *sim.Proc) {
		var in []byte
		if r.ID() == 0 {
			in = orig
		}
		block := r.Scatter(p, 0, in, 4)
		round := r.Gather(p, 0, block, 0)
		if r.ID() == 0 && !bytes.Equal(round, orig) {
			ok = false
		}
	})
	if !ok {
		t.Error("gather(scatter(x)) != x")
	}
}

func TestAllgatherRealData(t *testing.T) {
	for _, shape := range [][2]int{{2, 2}, {3, 2}} {
		w, _ := spreadWorld(shape[0], shape[1], sim.Micros(10), Config{})
		n := shape[0] + shape[1]
		ok := true
		w.Run(func(r *Rank, p *sim.Proc) {
			block := bytes.Repeat([]byte{byte('A' + r.ID())}, 5)
			out := r.Allgather(p, block, 0)
			if len(out) != n*5 {
				ok = false
				return
			}
			for i := 0; i < n; i++ {
				for j := 0; j < 5; j++ {
					if out[i*5+j] != byte('A'+i) {
						ok = false
					}
				}
			}
		})
		if !ok {
			t.Errorf("shape %v: allgather wrong", shape)
		}
		w.Shutdown()
	}
}

func TestReduceScatter(t *testing.T) {
	for _, shape := range [][2]int{{2, 2}, {3, 2}, {4, 4}} { // n = 4, 5, 8
		w, _ := spreadWorld(shape[0], shape[1], sim.Micros(10), Config{})
		n := shape[0] + shape[1]
		share := 3
		ok := true
		w.Run(func(r *Rank, p *sim.Proc) {
			vals := make([]float64, n*share)
			for j := range vals {
				vals[j] = float64(r.ID()*1000 + j)
			}
			out := r.ReduceScatter(p, vals)
			if len(out) != share {
				ok = false
				return
			}
			for j := range out {
				idx := r.ID()*share + j
				want := 0.0
				for i := 0; i < n; i++ {
					want += float64(i*1000 + idx)
				}
				if math.Abs(out[j]-want) > 1e-9 {
					ok = false
				}
			}
		})
		if !ok {
			t.Errorf("shape %v: ReduceScatter wrong", shape)
		}
		w.Shutdown()
	}
}
