package mpi

import (
	"repro/internal/sim"
)

// This file implements the OSU-microbenchmark (OMB) measurement loops the
// paper uses for all MPI-level results (§3.4): osu_latency, osu_bw,
// osu_bibw, the multi-pair message-rate test, and the modified broadcast
// benchmark with its explicit ack from the slowest process.

// BwWindow is the osu_bw/osu_bibw window size: the number of outstanding
// nonblocking operations per iteration.
const BwWindow = 64

// appTag is the tag the benchmarks use for application traffic.
const appTag = 1

// Latency runs a ping-pong between ranks 0 and 1 and returns the one-way
// latency (half the average round trip).
func Latency(w *World, size, iters int) sim.Time {
	var total sim.Time
	w.Run(func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			start := p.Now()
			for i := 0; i < iters; i++ {
				r.Send(p, 1, appTag, nil, size)
				r.Recv(p, 1, appTag, nil, size)
			}
			total = p.Now() - start
		case 1:
			for i := 0; i < iters; i++ {
				r.Recv(p, 0, appTag, nil, size)
				r.Send(p, 0, appTag, nil, size)
			}
		}
	})
	return total / sim.Time(2*iters)
}

// Bandwidth runs the osu_bw pattern (windowed nonblocking sends from rank 0
// to rank 1) and returns the unidirectional bandwidth in MillionBytes/s.
func Bandwidth(w *World, size, iters int) float64 {
	var elapsed sim.Time
	w.Run(func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			start := p.Now()
			for i := 0; i < iters; i++ {
				reqs := make([]*Request, BwWindow)
				for j := range reqs {
					reqs[j] = r.Isend(p, 1, appTag, nil, size)
				}
				WaitAll(p, reqs)
			}
			// Final handshake so the sender timeline covers delivery.
			r.Recv(p, 1, appTag+1, nil, 4)
			elapsed = p.Now() - start
		case 1:
			for i := 0; i < iters; i++ {
				reqs := make([]*Request, BwWindow)
				for j := range reqs {
					reqs[j] = r.Irecv(0, appTag, nil, size)
				}
				WaitAll(p, reqs)
			}
			r.Send(p, 0, appTag+1, nil, 4)
		}
	})
	total := float64(size) * float64(BwWindow) * float64(iters)
	return total / elapsed.Seconds() / 1e6
}

// BiBandwidth runs osu_bibw (both ranks send and receive a window per
// iteration) and returns the aggregate two-way bandwidth in MillionBytes/s.
func BiBandwidth(w *World, size, iters int) float64 {
	var elapsed sim.Time
	w.Run(func(r *Rank, p *sim.Proc) {
		peer := 1 - r.ID()
		if r.ID() > 1 {
			return
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			reqs := make([]*Request, 0, 2*BwWindow)
			for j := 0; j < BwWindow; j++ {
				reqs = append(reqs, r.Irecv(peer, appTag, nil, size))
			}
			for j := 0; j < BwWindow; j++ {
				reqs = append(reqs, r.Isend(p, peer, appTag, nil, size))
			}
			WaitAll(p, reqs)
		}
		if r.ID() == 0 {
			elapsed = p.Now() - start
		}
	})
	total := 2 * float64(size) * float64(BwWindow) * float64(iters)
	return total / elapsed.Seconds() / 1e6
}

// MessageRate runs the multi-pair aggregate message-rate test (paper
// Fig. 10): the world must hold 2*pairs ranks where rank i (sender, cluster
// A) pairs with rank pairs+i (receiver, cluster B). It returns the
// aggregate rate in million messages per second.
func MessageRate(w *World, pairs, size, iters int) float64 {
	if w.Size() < 2*pairs {
		panic("mpi: MessageRate needs 2*pairs ranks")
	}
	var last sim.Time
	w.Run(func(r *Rank, p *sim.Proc) {
		switch {
		case r.ID() < pairs:
			peer := r.ID() + pairs
			for i := 0; i < iters; i++ {
				reqs := make([]*Request, BwWindow)
				for j := range reqs {
					reqs[j] = r.Isend(p, peer, appTag, nil, size)
				}
				WaitAll(p, reqs)
			}
			r.Recv(p, peer, appTag+1, nil, 4)
			if t := p.Now(); t > last {
				last = t
			}
		case r.ID() < 2*pairs:
			peer := r.ID() - pairs
			for i := 0; i < iters; i++ {
				reqs := make([]*Request, BwWindow)
				for j := range reqs {
					reqs[j] = r.Irecv(peer, appTag, nil, size)
				}
				WaitAll(p, reqs)
			}
			r.Send(p, peer, appTag+1, nil, 4)
		}
	})
	msgs := float64(pairs) * float64(BwWindow) * float64(iters)
	return msgs / last.Seconds() / 1e6
}

// BcastLatency runs the paper's modified OSU broadcast benchmark: the root
// broadcasts, then waits for an explicit MPI-level ack from the process
// with the greatest ack time (chosen as the highest rank, which lives in
// the remote cluster under block placement) before the next iteration.
// hierarchical selects the WAN-aware broadcast. Returns the mean latency
// per broadcast.
func BcastLatency(w *World, size, iters int, hierarchical bool) sim.Time {
	n := w.Size()
	acker := n - 1
	var total sim.Time
	w.Run(func(r *Rank, p *sim.Proc) {
		bcast := func() {
			if hierarchical {
				r.HierBcast(p, 0, nil, size)
			} else {
				r.Bcast(p, 0, nil, size)
			}
		}
		switch r.ID() {
		case 0:
			start := p.Now()
			for i := 0; i < iters; i++ {
				bcast()
				r.Recv(p, acker, appTag+2, nil, 4)
			}
			total = p.Now() - start
		case acker:
			for i := 0; i < iters; i++ {
				bcast()
				r.Send(p, 0, appTag+2, nil, 4)
			}
		default:
			for i := 0; i < iters; i++ {
				bcast()
			}
		}
	})
	return total / sim.Time(iters)
}
