package mpi

import (
	"encoding/binary"
	"math"

	"repro/internal/sim"
)

// Collective tags live in a reserved space far above application tags. Each
// collective call consumes one sequence number per rank (collectives must
// be called in the same order on every rank, as in MPI); rounds within one
// collective get distinct tags.
const collTagBase = 1 << 24

func (r *Rank) collTag(round int) int {
	return collTagBase + r.collSeq*256 + round
}

// Barrier blocks until all ranks have entered it (dissemination algorithm,
// ceil(log2 n) rounds of zero-byte exchanges).
func (r *Rank) Barrier(p *sim.Proc) {
	n := len(r.world.ranks)
	r.collSeq++
	for k, round := 1, 0; k < n; k, round = k*2, round+1 {
		dst := (r.id + k) % n
		src := (r.id - k + n) % n
		r.Sendrecv(p, dst, r.collTag(round), nil, 0, src, r.collTag(round), nil, 0)
	}
}

// BcastLargeMin is the message size at which Bcast switches from the
// binomial tree to the scatter + ring-allgather algorithm, as MVAPICH2
// does. The ring stage is what makes the topology-unaware broadcast pay
// many WAN crossings for large messages (Fig. 11's "Original" curves).
const BcastLargeMin = 16 << 10

// Bcast broadcasts size bytes (or data, at the root) from root to all
// ranks, using the topology-unaware algorithms of the stock library: a
// binomial tree for small messages and scatter + ring allgather for large
// ones. On non-root ranks data (when non-nil) is the landing buffer, as in
// MPI_Bcast; the returned slice holds the payload (nil for synthetic
// traffic).
func (r *Rank) Bcast(p *sim.Proc, root int, data []byte, size int) []byte {
	if data != nil {
		size = len(data)
	}
	r.collSeq++
	defer endColl(r.beginColl("coll.bcast"))
	n := len(r.world.ranks)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	if size >= BcastLargeMin && n > 2 {
		if n&(n-1) == 0 {
			return r.bcastScatterRD(p, root, data, size, ids)
		}
		return r.bcastScatterRing(p, root, data, size, ids)
	}
	return r.bcastTree(p, root, data, size, ids, r.collTag(0))
}

// bcastScatterRD implements the power-of-two large-message broadcast:
// binomial scatter of size/n chunks followed by a recursive-doubling
// allgather (log2 n steps, doubling the held block each step) — the MPICH
// algorithm MVAPICH2 uses at these sizes. On a cluster-of-clusters under
// block placement, the scatter and the top allgather step each cross the
// WAN once, which is why the WAN-aware hierarchical broadcast (one
// crossing) wins moderately rather than overwhelmingly (paper Fig. 11).
func (r *Rank) bcastScatterRD(p *sim.Proc, root int, data []byte, size int, ids []int) []byte {
	n := len(ids)
	me, rootPos := -1, -1
	for i, id := range ids {
		if id == r.id {
			me = i
		}
		if id == root {
			rootPos = i
		}
	}
	vrank := (me - rootPos + n) % n
	chunkLo := func(v int) int { return size * v / n }
	slice := func(lo, hi int) []byte {
		if data == nil {
			return nil
		}
		return data[lo:hi]
	}
	// Binomial scatter down to single chunks.
	if vrank != 0 {
		mask := 1
		for vrank&mask == 0 {
			mask <<= 1
		}
		parent := (vrank - mask + rootPos) % n
		lo, hi := chunkLo(vrank), chunkLo(vrank+mask)
		req := r.Irecv(ids[parent], r.collTag(0), slice(lo, hi), hi-lo)
		req.Wait(p)
	}
	for mask := nextPow2(n) / 2; mask > 0; mask >>= 1 {
		if vrank&(2*mask-1) == 0 && vrank+mask < n {
			lo, hi := chunkLo(vrank+mask), chunkLo(vrank+2*mask)
			child := (vrank + mask + rootPos) % n
			r.Send(p, ids[child], r.collTag(0), slice(lo, hi), hi-lo)
		}
	}
	// Recursive-doubling allgather: at step with the given mask, exchange
	// the currently held block (mask chunks) with vrank^mask.
	for mask, round := 1, 1; mask < n; mask, round = mask*2, round+1 {
		base := vrank &^ (2*mask - 1)
		var sendLo, sendHi, recvLo, recvHi int
		if vrank&mask == 0 {
			sendLo, sendHi = chunkLo(base), chunkLo(base+mask)
			recvLo, recvHi = chunkLo(base+mask), chunkLo(base+2*mask)
		} else {
			sendLo, sendHi = chunkLo(base+mask), chunkLo(base+2*mask)
			recvLo, recvHi = chunkLo(base), chunkLo(base+mask)
		}
		partner := ids[(vrank^mask+rootPos)%n]
		r.Sendrecv(p, partner, r.collTag(round), slice(sendLo, sendHi), sendHi-sendLo,
			partner, r.collTag(round), slice(recvLo, recvHi), recvHi-recvLo)
	}
	return data
}

// bcastScatterRing implements the large-message broadcast: binomial scatter
// of size/n chunks followed by a ring allgather (n-1 steps). Every ring
// step moves a chunk across every boundary between adjacent ranks — on a
// cluster-of-clusters, two of those boundaries are the WAN link, so the
// payload crosses the WAN many times.
func (r *Rank) bcastScatterRing(p *sim.Proc, root int, data []byte, size int, ids []int) []byte {
	n := len(ids)
	me, rootPos := -1, -1
	for i, id := range ids {
		if id == r.id {
			me = i
		}
		if id == root {
			rootPos = i
		}
	}
	vrank := (me - rootPos + n) % n
	chunkLo := func(v int) int { return size * v / n }
	slice := func(lo, hi int) []byte {
		if data == nil {
			return nil
		}
		return data[lo:hi]
	}
	// Binomial scatter: each node holds chunk range [vrank, hi) and
	// forwards the upper half to vrank+mask.
	hi := n
	if vrank != 0 {
		mask := 1
		for vrank&mask == 0 {
			mask <<= 1
		}
		parent := (vrank - mask + rootPos) % n
		hi = vrank + mask
		if hi > n {
			hi = n
		}
		lo := chunkLo(vrank)
		hiB := chunkLo(hi)
		req := r.Irecv(ids[parent], r.collTag(0), slice(lo, hiB), hiB-lo)
		req.Wait(p)
	}
	for mask := nextPow2(n) / 2; mask > 0; mask >>= 1 {
		if vrank&(2*mask-1) == 0 && vrank+mask < n {
			childHi := vrank + 2*mask
			if childHi > hi {
				childHi = hi
			}
			if childHi > n {
				childHi = n
			}
			lo := chunkLo(vrank + mask)
			hiB := chunkLo(childHi)
			if hiB > lo {
				child := (vrank + mask + rootPos) % n
				r.Send(p, ids[child], r.collTag(0), slice(lo, hiB), hiB-lo)
			}
		}
	}
	// Ring allgather: step s passes chunk (vrank-s) to the right.
	right := ids[(me+1)%n]
	left := ids[(me-1+n)%n]
	for s := 0; s < n-1; s++ {
		sendChunk := ((vrank-s)%n + n) % n
		recvChunk := ((vrank-s-1)%n + n) % n
		sLo, sHi := chunkLo(sendChunk), chunkLo(sendChunk+1)
		rLo, rHi := chunkLo(recvChunk), chunkLo(recvChunk+1)
		r.Sendrecv(p, right, r.collTag(1+s), slice(sLo, sHi), sHi-sLo,
			left, r.collTag(1+s), slice(rLo, rHi), rHi-rLo)
	}
	return data
}

// bcastTree runs a binomial broadcast among the given rank ids (which must
// include r.id); root is an absolute rank id in ids.
func (r *Rank) bcastTree(p *sim.Proc, root int, data []byte, size int, ids []int, tag int) []byte {
	n := len(ids)
	if n <= 1 {
		return data
	}
	// Position of this rank and the root within the group.
	me, rootPos := -1, -1
	for i, id := range ids {
		if id == r.id {
			me = i
		}
		if id == root {
			rootPos = i
		}
	}
	if me < 0 || rootPos < 0 {
		panic("mpi: bcastTree called by rank outside group")
	}
	vrank := (me - rootPos + n) % n
	// Receive phase (non-root): the parent holds the highest set bit of
	// vrank. As in MPI_Bcast, data doubles as the landing buffer on
	// non-root ranks (nil keeps the traffic synthetic).
	if vrank != 0 {
		// The parent differs in the lowest set bit of vrank.
		mask := 1
		for vrank&mask == 0 {
			mask <<= 1
		}
		parent := (vrank - mask + rootPos) % n
		req := r.Irecv(ids[parent], tag, data, size)
		got, _ := req.Wait(p)
		size = got
		if data != nil {
			data = data[:got]
		}
	}
	// Send phase: forward to children, farthest subtree first.
	for mask := nextPow2(n) / 2; mask > 0; mask >>= 1 {
		if vrank&(2*mask-1) == 0 && vrank+mask < n {
			child := (vrank + mask + rootPos) % n
			r.Send(p, ids[child], tag, data, size)
		}
	}
	return data
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// HierBcast is the paper's WAN-aware broadcast (§3.4, "MPI Broadcast
// Performance"), generalized to N sites: the payload crosses each WAN link
// on the site tree exactly once — forwarded leader-to-leader down the
// breadth-first spanning tree of the site graph — and each site then
// broadcasts internally. On the paper's two-site testbed this is exactly
// the original algorithm (one crossing to the remote cluster's leader).
func (r *Rank) HierBcast(p *sim.Proc, root int, data []byte, size int) []byte {
	if data != nil {
		size = len(data)
	}
	r.collSeq++
	defer endColl(r.beginColl("coll.hierbcast"))
	tag := r.collTag(0)
	wanTag := r.collTag(1)
	rootSite := r.world.ranks[root].node.Site()
	st := r.siteTree(rootSite)
	mySite := r.node.Site()
	mine := st.groups[mySite]
	if len(st.order) == 1 {
		return r.bcastTree(p, root, data, size, mine, tag)
	}
	localRoot := st.leader(mySite)
	if mySite == rootSite {
		localRoot = root
	}
	if r.id == localRoot {
		if mySite != rootSite {
			// One crossing of the link toward the root: receive from the
			// parent site's local root.
			parentSite := st.parent[mySite]
			sender := st.leader(parentSite)
			if parentSite == rootSite {
				sender = root
			}
			req := r.Irecv(sender, wanTag, data, size)
			got, _ := req.Wait(p)
			size = got
			if data != nil {
				data = data[:got]
			}
		}
		// Forward once over each child link, then fan out locally.
		for _, child := range st.children(mySite) {
			r.Send(p, st.leader(child), wanTag, data, size)
		}
	}
	return r.bcastTree(p, localRoot, data, size, mine, tag)
}

// Reduce sums float64 vectors onto root over a binomial tree and returns
// the reduced vector at root (nil elsewhere).
func (r *Rank) Reduce(p *sim.Proc, root int, vals []float64) []float64 {
	r.collSeq++
	tag := r.collTag(0)
	n := len(r.world.ranks)
	vrank := (r.id - root + n) % n
	acc := make([]float64, len(vals))
	copy(acc, vals)
	// Receive from children (vrank + mask), then send to parent.
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % n
			r.Send(p, parent, tag, encodeF64(acc), 0)
			return nil
		}
		if vrank+mask < n {
			child := (vrank + mask + root) % n
			buf := make([]byte, 8*len(vals))
			got, _ := r.Recv(p, child, tag, buf, 0)
			vec := decodeF64(buf[:got])
			for i := range acc {
				acc[i] += vec[i]
			}
		}
	}
	return acc
}

// Allreduce sums float64 vectors across all ranks (reduce to rank 0, then
// broadcast) and returns the result on every rank.
func (r *Rank) Allreduce(p *sim.Proc, vals []float64) []float64 {
	res := r.Reduce(p, 0, vals)
	var buf []byte
	if r.id == 0 {
		buf = encodeF64(res)
	} else {
		buf = make([]byte, 8*len(vals))
	}
	out := r.Bcast(p, 0, buf, 0)
	if r.id == 0 {
		return res
	}
	_ = out
	return decodeF64(buf)
}

// AlltoallSynthetic exchanges sizePer synthetic bytes with every other rank.
// All sends and receives are posted up front and progressed concurrently
// (the large-message alltoall strategy), so the aggregate exchange is
// bandwidth-bound and pays the WAN latency once rather than once per peer —
// the property that makes NAS IS and FT tolerate WAN delays (paper §3.5).
func (r *Rank) AlltoallSynthetic(p *sim.Proc, sizePer int) {
	r.collSeq++
	n := len(r.world.ranks)
	reqs := make([]*Request, 0, 2*(n-1))
	for i := 1; i < n; i++ {
		src := (r.id - i + n) % n
		reqs = append(reqs, r.Irecv(src, r.collTag(0), nil, sizePer))
	}
	for i := 1; i < n; i++ {
		dst := (r.id + i) % n
		reqs = append(reqs, r.Isend(p, dst, r.collTag(0), nil, sizePer))
	}
	WaitAll(p, reqs)
}

// AllgatherSynthetic circulates size synthetic bytes around a ring so every
// rank ends holding every rank's block.
func (r *Rank) AllgatherSynthetic(p *sim.Proc, size int) {
	r.collSeq++
	n := len(r.world.ranks)
	right := (r.id + 1) % n
	left := (r.id - 1 + n) % n
	for i := 0; i < n-1; i++ {
		r.Sendrecv(p, right, r.collTag(i), nil, size, left, r.collTag(i), nil, size)
	}
}

func encodeF64(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

func decodeF64(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}
