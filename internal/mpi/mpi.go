// Package mpi implements an MPI-like message passing library over the
// simulated InfiniBand verbs layer, modeled on MVAPICH2 (the library the
// paper evaluates). It provides:
//
//   - Point-to-point messaging with the two-protocol design whose WAN
//     behaviour the paper studies: an eager protocol (one-way, buffered,
//     copy at both ends) for small messages and a rendezvous protocol
//     (RTS/CTS handshake + zero-copy RDMA write) for large ones, switched
//     at a tunable threshold (paper §3.4, Figs. 8-9).
//   - Collectives, including a flat binomial broadcast and the paper's
//     WAN-aware hierarchical broadcast that crosses the WAN link exactly
//     once (Fig. 11).
//   - OSU-microbenchmark-style measurement loops (latency, bandwidth,
//     bidirectional bandwidth, multi-pair message rate, broadcast).
//
// Ranks run as simulation processes; each rank owns a completion queue and
// a progress engine, with reliable-connected QPs created lazily per peer.
package mpi

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Tag matching wildcards.
const (
	AnySource = -1
	AnyTag    = -1
)

// CtrlBytes is the wire size of MPI protocol headers (eager header, RTS,
// CTS, FIN control messages).
const CtrlBytes = 48

// Shared-memory path constants for ranks co-located on a node.
const (
	ShmLatency      = 400 * sim.Nanosecond
	ShmPerByteNanos = 0.25
)

// Config tunes the library; zero values select MVAPICH2-like defaults.
type Config struct {
	// EagerThreshold is the largest message sent eagerly; larger messages
	// use rendezvous. Default 8 KB ("by default above 8KB for MVAPICH2").
	EagerThreshold int
	// QPWindow is the per-QP bound on in-flight messages (ib
	// MaxInflight). Default ib.DefaultMaxInflight.
	QPWindow int
	// CopyPerByteNanos is the eager-protocol copy cost per byte charged
	// at each end (bounce-buffer memcpy). Default 0.4 ns/B (~2.5 GB/s).
	CopyPerByteNanos float64
	// RecvPool is the number of preposted receives per QP.
	RecvPool int
	// RndvTimeout, when positive, arms a watchdog on every rendezvous
	// send: if the CTS has not arrived when it fires, the stall is
	// counted and — if the connection toward the peer has moved to the
	// error state — the job aborts with a deterministic communication
	// failure. Zero (the default) arms no timers, so fault-free runs
	// schedule no extra events.
	RndvTimeout sim.Time
}

// DefaultEagerThreshold is the MVAPICH2 default rendezvous switch point.
const DefaultEagerThreshold = 8 << 10

func (c *Config) fill() {
	if c.EagerThreshold == 0 {
		c.EagerThreshold = DefaultEagerThreshold
	}
	if c.QPWindow == 0 {
		c.QPWindow = ib.DefaultMaxInflight
	}
	if c.CopyPerByteNanos == 0 {
		c.CopyPerByteNanos = 0.4
	}
	if c.RecvPool == 0 {
		// In-flight messages per QP are bounded by QPWindow (excess sends
		// are RNR-buffered), so a modest pool suffices even for large
		// worlds with thousands of QPs.
		c.RecvPool = 32
	}
}

// World is an MPI communicator spanning a set of ranks placed on cluster
// nodes.
type World struct {
	env       *sim.Env
	cfg       Config
	ranks     []*Rank
	profile   census
	winStates map[int]*winState
	// obs is non-nil only when telemetry is attached to the environment.
	obs *mpiObs
}

// mpiObs caches the library's telemetry handles: protocol-phase spans and
// the rendezvous/eager counters and latency histograms the paper's §3.4
// analysis needs.
type mpiObs struct {
	rec         *telemetry.Recorder
	eagerMsgs   *telemetry.Counter
	rndvMsgs    *telemetry.Counter
	msgBytes    *telemetry.Histogram
	handshake   *telemetry.Histogram      // RTS -> CTS round trip, ns
	handshakeHi *telemetry.HiResHistogram // same site, percentile resolution
	rndvStalls  *telemetry.Counter        // rendezvous watchdog expiries without a CTS
}

// MessageProfile is the world's send-side message-size census — the
// profiling the paper performs in §3.5 to explain NAS delay tolerance
// ("IS and FT involve a high percentage of large messages while CG has a
// high percentage of small and medium messages").
type MessageProfile struct {
	Msgs       int64
	Bytes      int64
	TinyMsgs   int64 // < 1 KB (latency-bound control and reductions)
	LargeBytes int64 // volume in messages >= 32 KB
	MaxMessage int
}

// census is the world's internal message counter set. Ranks on a
// partitioned world record sends concurrently from different shards, so
// every field is atomic; Profile assembles the public snapshot.
type census struct {
	msgs       atomic.Int64
	bytes      atomic.Int64
	tinyMsgs   atomic.Int64
	largeBytes atomic.Int64
	maxMsg     atomic.Int64
}

func (c *census) record(size int) {
	c.msgs.Add(1)
	c.bytes.Add(int64(size))
	if size < 1<<10 {
		c.tinyMsgs.Add(1)
	}
	if size >= 32<<10 {
		c.largeBytes.Add(int64(size))
	}
	for {
		cur := c.maxMsg.Load()
		if int64(size) <= cur || c.maxMsg.CompareAndSwap(cur, int64(size)) {
			return
		}
	}
}

// LargeVolumeFraction is the fraction of traffic volume carried in
// messages of at least 32 KB.
func (mp MessageProfile) LargeVolumeFraction() float64 {
	if mp.Bytes == 0 {
		return 0
	}
	return float64(mp.LargeBytes) / float64(mp.Bytes)
}

// TinyCountFraction is the fraction of messages under 1 KB.
func (mp MessageProfile) TinyCountFraction() float64 {
	if mp.Msgs == 0 {
		return 0
	}
	return float64(mp.TinyMsgs) / float64(mp.Msgs)
}

// Profile returns the accumulated message census.
func (w *World) Profile() MessageProfile {
	return MessageProfile{
		Msgs:       w.profile.msgs.Load(),
		Bytes:      w.profile.bytes.Load(),
		TinyMsgs:   w.profile.tinyMsgs.Load(),
		LargeBytes: w.profile.largeBytes.Load(),
		MaxMessage: int(w.profile.maxMsg.Load()),
	}
}

// NewWorld creates a world with one rank per entry of placement (rank i
// runs on placement[i]). Multiple ranks may share a node; they communicate
// through the shared-memory path.
func NewWorld(env *sim.Env, placement []*cluster.Node, cfg Config) *World {
	cfg.fill()
	w := &World{env: env, cfg: cfg, winStates: map[int]*winState{}}
	if tel := telemetry.FromEnv(env); tel != nil && (tel.Metrics != nil || tel.Spans != nil) {
		m := tel.Metrics
		w.obs = &mpiObs{
			rec:         tel.Spans,
			eagerMsgs:   m.Counter("mpi.eager.msgs"),
			rndvMsgs:    m.Counter("mpi.rndv.msgs"),
			msgBytes:    m.Histogram("mpi.msg.bytes"),
			handshake:   m.Histogram("mpi.rndv.handshake.ns"),
			handshakeHi: m.HiRes("mpi.rndv.handshake.ns"),
			rndvStalls:  m.Counter("mpi.rndv.stalls"),
		}
	}
	for i, node := range placement {
		// The rank's CQ — and everything else it schedules — lives on its
		// node's home environment, which on a partitioned world is the
		// node's site shard.
		r := &Rank{
			world: w,
			id:    i,
			node:  node,
			cq:    ib.NewCQ(node.HCA.Env()),
			qps:   make(map[int]*ib.QP),
			rndv:  make(map[int64]*Request),
			byQPN: make(map[int]*ib.QP),
		}
		w.ranks = append(w.ranks, r)
	}
	if env.Sharded() {
		// On a partitioned world QPs toward remote-shard peers must exist
		// before the shards start running concurrently: lazy creation would
		// mutate both ranks' maps from whichever shard sends first. Same-site
		// pairs stay lazy — creation there is a same-shard operation.
		for i, ri := range w.ranks {
			for _, rj := range w.ranks[i+1:] {
				if ri.node.HCA.Env() != rj.node.HCA.Env() {
					ri.qpTo(rj)
				}
			}
		}
	}
	for _, r := range w.ranks {
		r.startProgress()
	}
	return w
}

// BlockPlacement expands a node list with ppn ranks per node, in node
// order — the paper's "block distribution mode of MPI processes".
func BlockPlacement(nodes []*cluster.Node, ppn int) []*cluster.Node {
	var out []*cluster.Node
	for _, n := range nodes {
		for i := 0; i < ppn; i++ {
			out = append(out, n)
		}
	}
	return out
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns the rank handle with the given id.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Env returns the simulation environment.
func (w *World) Env() *sim.Env { return w.env }

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Run spawns one process per rank executing fn (each on its node's home
// environment) and runs the simulation until every rank returns and all
// in-flight protocol activity drains; it then reports the virtual time at
// which the last rank finished. It panics if the simulation drains with
// ranks still blocked (a communication deadlock).
//
// Run drains to quiescence rather than stopping at the instant the last
// rank returns: on a partitioned world there is no global "stop now"
// (shards run ahead of each other within a window), and the shared
// counters below are the only cross-shard state, both atomic. The finish
// time is unaffected — it is latched when the last rank returns, exactly
// the value the old Stop-based path reported.
func (w *World) Run(fn func(r *Rank, p *sim.Proc)) sim.Time {
	var remaining atomic.Int64
	var finish atomic.Int64
	remaining.Store(int64(len(w.ranks)))
	for _, r := range w.ranks {
		r := r
		r.env().Go(fmt.Sprintf("rank-%d", r.id), func(p *sim.Proc) {
			fn(r, p)
			remaining.Add(-1)
			for {
				cur := finish.Load()
				if int64(p.Now()) <= cur || finish.CompareAndSwap(cur, int64(p.Now())) {
					break
				}
			}
		})
	}
	w.env.Run()
	if n := remaining.Load(); n != 0 {
		panic(fmt.Sprintf("mpi: deadlock — %d ranks still blocked when simulation drained", n))
	}
	return sim.Time(finish.Load())
}

// Shutdown unwinds rank progress engines (call when done with the world).
func (w *World) Shutdown() { w.env.Shutdown() }

// Rank is one MPI process.
type Rank struct {
	world *World
	id    int
	node  *cluster.Node
	cq    *ib.CQ
	qps   map[int]*ib.QP // peer rank -> QP

	// Matching engine state.
	postedRecvs []*Request // Irecv requests not yet matched
	unexpected  []*inbound // arrived messages with no matching recv

	// Pending rendezvous sends by request id.
	nextReq int64
	rndv    map[int64]*Request
	byQPN   map[int]*ib.QP // local QPN -> QP, for receive reposting

	// collSeq numbers collective calls; collectives must be invoked in
	// the same order on every rank (the MPI rule), which keeps tags
	// aligned.
	collSeq int
	// winSeq numbers collective window creations (same lockstep rule).
	winSeq int

	// Telemetry: the rank's trace track (lazily created) and the span of
	// the collective currently executing on this rank, which point-to-point
	// sends parent under.
	track    telemetry.TrackID
	trackSet bool
	collSpan telemetry.SpanRef
}

// obsTrack returns (lazily creating) the rank's trace track. Only called
// when span recording is enabled.
func (r *Rank) obsTrack() telemetry.TrackID {
	if !r.trackSet {
		r.track = r.world.obs.rec.Track(r.node.Name, fmt.Sprintf("mpi-rank-%d", r.id))
		r.trackSet = true
	}
	return r.track
}

// beginColl opens a collective-phase span on the rank and installs it as
// the parent for the collective's point-to-point traffic. It returns a
// closer (nil when observation is off); use with endColl:
//
//	defer endColl(r.beginColl("coll.bcast"))
func (r *Rank) beginColl(name string) func() {
	obs := r.world.obs
	if obs == nil || obs.rec == nil {
		return nil
	}
	prev := r.collSpan
	r.collSpan = obs.rec.StartAt(r.env().Now(), r.obsTrack(), name, prev)
	return func() {
		obs.rec.EndAt(r.env().Now(), r.collSpan)
		r.collSpan = prev
	}
}

func endColl(f func()) {
	if f != nil {
		f()
	}
}

// env returns the rank's home environment — its node's HCA environment,
// which on a partitioned world is the shard view for the node's site. All
// of a rank's timers, processes, and events run here; cross-shard work
// reaches a rank only through wire delivery on the verbs layer.
func (r *Rank) env() *sim.Env { return r.node.HCA.Env() }

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Node returns the node the rank runs on.
func (r *Rank) Node() *cluster.Node { return r.node }

// Size returns the world size.
func (r *Rank) Size() int { return len(r.world.ranks) }

// World returns the owning world.
func (r *Rank) World() *World { return r.world }

// Cluster returns the rank's cluster label ("A" or "B").
func (r *Rank) Cluster() string { return r.node.Cluster }

// qpTo returns (creating lazily) the RC QP toward the peer rank.
func (r *Rank) qpTo(peer *Rank) *ib.QP {
	if qp, ok := r.qps[peer.id]; ok {
		return qp
	}
	cfg := ib.QPConfig{MaxInflight: r.world.cfg.QPWindow}
	local, remote := ib.CreateRCPair(r.node.HCA, peer.node.HCA, r.cq, peer.cq, cfg)
	r.qps[peer.id] = local
	peer.qps[r.id] = remote
	for i := 0; i < r.world.cfg.RecvPool; i++ {
		local.PostRecv(ib.RecvWR{})
		remote.PostRecv(ib.RecvWR{})
	}
	r.byQPN[local.QPN()] = local
	peer.byQPN[remote.QPN()] = remote
	return local
}
