package mpi

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestHierBarrierSynchronizes(t *testing.T) {
	w, _ := spreadWorld(3, 3, sim.Micros(100), Config{})
	defer w.Shutdown()
	var minExit, maxEnter sim.Time
	minExit = 1 << 60
	w.Run(func(r *Rank, p *sim.Proc) {
		p.Sleep(sim.Time(r.ID()) * 30 * sim.Microsecond)
		if p.Now() > maxEnter {
			maxEnter = p.Now()
		}
		r.HierBarrier(p)
		if p.Now() < minExit {
			minExit = p.Now()
		}
	})
	if minExit < maxEnter {
		t.Errorf("hier barrier released (%v) before last entry (%v)", minExit, maxEnter)
	}
}

func TestHierAllreduceCorrect(t *testing.T) {
	for _, shape := range [][2]int{{2, 2}, {3, 4}, {4, 1}} {
		w, _ := spreadWorld(shape[0], shape[1], sim.Micros(100), Config{})
		n := shape[0] + shape[1]
		vecLen := 4
		want := make([]float64, vecLen)
		for i := 0; i < n; i++ {
			for j := 0; j < vecLen; j++ {
				want[j] += float64(i*100 + j)
			}
		}
		ok := true
		w.Run(func(r *Rank, p *sim.Proc) {
			vals := make([]float64, vecLen)
			for j := range vals {
				vals[j] = float64(r.ID()*100 + j)
			}
			got := r.HierAllreduce(p, vals)
			for j := range got {
				if math.Abs(got[j]-want[j]) > 1e-9 {
					ok = false
				}
			}
		})
		if !ok {
			t.Errorf("shape %v: HierAllreduce mismatch", shape)
		}
		w.Shutdown()
	}
}

func TestHierCollectivesCrossWANLess(t *testing.T) {
	// At 1 ms delay the hierarchical variants must beat the flat ones:
	// constant WAN crossings vs log(n) potentially-crossing rounds.
	measure := func(hier bool) sim.Time {
		w, _ := spreadWorld(8, 8, sim.Micros(1000), Config{})
		defer w.Shutdown()
		return w.Run(func(r *Rank, p *sim.Proc) {
			vals := []float64{float64(r.ID())}
			for i := 0; i < 3; i++ {
				if hier {
					r.HierBarrier(p)
					r.HierAllreduce(p, vals)
				} else {
					r.Barrier(p)
					r.Allreduce(p, vals)
				}
			}
		})
	}
	flat := measure(false)
	hier := measure(true)
	if hier >= flat {
		t.Errorf("hierarchical collectives (%v) not faster than flat (%v) at 1ms", hier, flat)
	}
}

func TestHierCollectivesSingleCluster(t *testing.T) {
	// Degenerate case: all ranks in one cluster falls back to the flat
	// algorithms.
	env := newEnvWorld(t)
	defer env.Shutdown()
	ok := true
	env.Run(func(r *Rank, p *sim.Proc) {
		r.HierBarrier(p)
		got := r.HierAllreduce(p, []float64{1})
		if got[0] != float64(r.Size()) {
			ok = false
		}
	})
	if !ok {
		t.Error("single-cluster hierarchical collectives wrong")
	}
}

// newEnvWorld builds a world entirely within cluster A.
func newEnvWorld(t *testing.T) *World {
	t.Helper()
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 4, NodesB: 1})
	return NewWorld(env, []*cluster.Node{tb.A[0], tb.A[1], tb.A[2], tb.A[3]}, Config{})
}
