package mpi

import "sort"

// siteTree is the per-collective view of the world's site structure: which
// ranks live at which site, and a spanning tree over the occupied sites
// rooted at the collective's root site. The hierarchical collectives walk
// this tree so that payloads cross each inter-site WAN link a constant
// number of times regardless of rank count — the generalization of the
// paper's two-cluster "cross the WAN once" rule (§3.4) to arbitrary site
// graphs.
type siteTree struct {
	groups map[string][]int  // site -> ascending rank ids
	order  []string          // occupied sites, root first (deterministic)
	parent map[string]string // occupied site -> its occupied parent site
}

// leader returns the site's leader rank (the lowest id at the site).
func (st *siteTree) leader(site string) int { return st.groups[site][0] }

// children returns the occupied sites whose tree parent is site, in order.
func (st *siteTree) children(site string) []string {
	var out []string
	for _, s := range st.order {
		if st.parent[s] == site {
			out = append(out, s)
		}
	}
	return out
}

// siteTree builds the tree for a collective rooted at rootSite (which must
// be occupied). When the ranks were placed on a topo.Network, the tree
// follows the physical site graph breadth-first from the root site —
// unoccupied transit sites collapse into their nearest occupied ancestor —
// so a payload forwarded leader-to-leader down the tree crosses each WAN
// link on the BFS paths exactly once. Ranks assembled outside the topology
// layer fall back to a star: every other site hangs directly off the root
// site (exactly the two-cluster behavior when there are two sites).
func (r *Rank) siteTree(rootSite string) siteTree {
	st := siteTree{groups: map[string][]int{}, parent: map[string]string{}}
	var occupied []string // first-appearance order by rank id: deterministic
	for _, rk := range r.world.ranks {
		s := rk.node.Site()
		if len(st.groups[s]) == 0 {
			occupied = append(occupied, s)
		}
		st.groups[s] = append(st.groups[s], rk.id)
	}
	for _, ids := range st.groups {
		sort.Ints(ids)
	}
	st.order = append(st.order, rootSite)
	placed := map[string]bool{rootSite: true}
	if nw := r.node.Net(); nw != nil {
		full, fparent := nw.BcastOrder(rootSite)
		for _, s := range full {
			if placed[s] || len(st.groups[s]) == 0 {
				continue
			}
			// Effective parent: the nearest occupied ancestor on the BFS
			// tree (transit-only sites have no ranks to forward through).
			p := fparent[s]
			for p != rootSite && len(st.groups[p]) == 0 {
				p = fparent[p]
			}
			st.parent[s] = p
			st.order = append(st.order, s)
			placed[s] = true
		}
	}
	for _, s := range occupied {
		if !placed[s] {
			st.parent[s] = rootSite
			st.order = append(st.order, s)
			placed[s] = true
		}
	}
	return st
}

// occupiedSites returns the number of distinct sites holding ranks.
func (r *Rank) occupiedSites() int {
	seen := map[string]bool{}
	for _, rk := range r.world.ranks {
		seen[rk.node.Site()] = true
	}
	return len(seen)
}
