package mpi

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// msgKind identifies MPI wire messages.
type msgKind int

const (
	eagerMsg msgKind = iota
	rtsMsg           // rendezvous request-to-send
	ctsMsg           // rendezvous clear-to-send
	finMsg           // rendezvous completion notification
)

// mpiMsg is the protocol header riding on verbs messages.
type mpiMsg struct {
	kind msgKind
	src  int // sender rank
	tag  int
	size int    // payload size of the MPI message
	data []byte // eager payload (nil for synthetic traffic)
	// Rendezvous fields.
	sendReq int64    // RTS: sender request id
	recvReq *Request // CTS/FIN: the receiver's request
	mr      *ib.MR   // CTS: registered landing region
}

// Request is a pending nonblocking operation.
type Request struct {
	rank   *Rank
	done   *sim.Event
	isSend bool
	peer   int // destination (send) / source or AnySource (recv)
	tag    int
	size   int    // send size / recv capacity
	data   []byte // send payload / recv landing buffer
	mr     *ib.MR // rendezvous receive region

	// rndvPeer is the receiver's request, learned from CTS (sender side).
	rndvPeer *Request

	// Results (valid after completion).
	recvSize int // actual bytes received
	recvFrom int // actual source rank

	// Telemetry: the protocol-phase span covering the operation and, for
	// rendezvous sends, the virtual time the RTS went out (handshake
	// latency = CTS arrival - rtsAt).
	span  telemetry.SpanRef
	rtsAt sim.Time
}

// Done reports whether the operation completed.
func (q *Request) Done() bool { return q.done.Triggered() }

// Wait blocks the calling process until the operation completes. For
// receives it returns the byte count and source rank.
func (q *Request) Wait(p *sim.Proc) (int, int) {
	p.Wait(q.done)
	return q.recvSize, q.recvFrom
}

func (q *Request) complete() {
	if q.done.Triggered() {
		return
	}
	if q.span.Valid() {
		if obs := q.rank.world.obs; obs != nil && obs.rec != nil {
			obs.rec.EndAt(q.rank.env().Now(), q.span)
		}
	}
	q.done.Trigger(nil)
}

// inbound is a message that arrived before a matching receive was posted.
type inbound struct {
	kind    msgKind
	src     int
	tag     int
	size    int
	data    []byte
	sendReq int64
	srcRank *Rank
}

func (m *inbound) matches(req *Request) bool {
	return (req.peer == AnySource || req.peer == m.src) &&
		(req.tag == AnyTag || req.tag == m.tag)
}

// copyTime is the eager bounce-buffer copy cost for n bytes.
func (w *World) copyTime(n int) sim.Time {
	return sim.Time(float64(n) * w.cfg.CopyPerByteNanos)
}

// startProgress launches the rank's progress engine: the process that polls
// the completion queue, reposts receives, runs the matching engine and
// drives the rendezvous protocol.
func (r *Rank) startProgress() {
	r.env().Go(fmt.Sprintf("mpi-prog-%d", r.id), func(p *sim.Proc) {
		for {
			c := r.cq.Poll(p)
			if c.Status != ib.StatusOK {
				// An errored completion means an RC connection exhausted
				// its retry budget: MPI has no recovery story (as in the
				// paper's era), so the job aborts. The panic carries a
				// deterministic message and surfaces as the experiment
				// point's error.
				panic(fmt.Sprintf("mpi: rank %d: %s completed with %s (communication failure)",
					r.id, c.Op, c.Status))
			}
			switch c.Op {
			case ib.OpRecv:
				if qp := r.byQPN[c.QPN]; qp != nil {
					qp.PostRecv(ib.RecvWR{})
				}
				r.handleMsg(p, c.Meta.(*mpiMsg))
			case ib.OpSend:
				if req, ok := c.Ctx.(*Request); ok {
					req.complete()
				}
			case ib.OpRDMAWrite:
				// Rendezvous data acknowledged (the FIN was already
				// posted right behind the write), or a one-sided Put:
				// either way the local buffer is reusable.
				c.Ctx.(*Request).complete()
			case ib.OpRDMARead:
				// One-sided Get landed.
				if req, ok := c.Ctx.(*Request); ok {
					req.complete()
				}
			}
		}
	})
}

// handleMsg processes an inbound protocol message in progress-engine
// context.
func (r *Rank) handleMsg(p *sim.Proc, m *mpiMsg) {
	switch m.kind {
	case eagerMsg:
		in := &inbound{kind: eagerMsg, src: m.src, tag: m.tag, size: m.size, data: m.data, srcRank: r.world.ranks[m.src]}
		if req := r.matchPosted(in); req != nil {
			// Receiver-side bounce-buffer copy.
			p.Sleep(r.world.copyTime(m.size))
			r.deliverEager(req, in)
		} else {
			r.unexpected = append(r.unexpected, in)
		}
	case rtsMsg:
		in := &inbound{kind: rtsMsg, src: m.src, tag: m.tag, size: m.size, sendReq: m.sendReq, srcRank: r.world.ranks[m.src]}
		if req := r.matchPosted(in); req != nil {
			r.sendCTS(req, in)
		} else {
			r.unexpected = append(r.unexpected, in)
		}
	case ctsMsg:
		req := r.rndv[m.sendReq]
		if req == nil {
			panic(fmt.Sprintf("mpi: CTS for unknown send request %d at rank %d", m.sendReq, r.id))
		}
		delete(r.rndv, m.sendReq)
		req.rndvPeer = m.recvReq
		if obs := r.world.obs; obs != nil {
			obs.handshake.Observe(int64(r.env().Now() - req.rtsAt))
			obs.handshakeHi.Observe(int64(r.env().Now() - req.rtsAt))
		}
		peer := r.world.ranks[req.peer]
		qp := r.qpTo(peer)
		qp.PostSend(ib.SendWR{
			Op: ib.OpRDMAWrite, Data: req.data, Len: req.size,
			RemoteMR: m.mr, Ctx: req, ParentSpan: req.span,
		})
		// Post the FIN immediately behind the write: the QP delivers in
		// order, so the receiver sees it only after the data has landed —
		// the standard RPUT design, which avoids paying an extra round
		// trip per rendezvous on high-delay links.
		r.ctrlSend(peer, &mpiMsg{kind: finMsg, src: r.id, recvReq: m.recvReq}, nil, req.span)
	case finMsg:
		req := m.recvReq
		req.complete()
	}
}

// matchPosted scans posted receives in order for the first match and
// removes it.
func (r *Rank) matchPosted(in *inbound) *Request {
	for i, req := range r.postedRecvs {
		if in.matches(req) {
			r.postedRecvs = append(r.postedRecvs[:i], r.postedRecvs[i+1:]...)
			return req
		}
	}
	return nil
}

// matchUnexpected scans the unexpected queue in arrival order for the first
// message matching req and removes it.
func (r *Rank) matchUnexpected(req *Request) *inbound {
	for i, in := range r.unexpected {
		if in.matches(req) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			return in
		}
	}
	return nil
}

// deliverEager lands an eager message into a matched receive request.
func (r *Rank) deliverEager(req *Request, in *inbound) {
	n := in.size
	if req.size < n {
		n = req.size // truncation: receiver buffer smaller than message
	}
	if req.data != nil && in.data != nil {
		copy(req.data, in.data[:min(n, len(in.data))])
	}
	req.recvSize = n
	req.recvFrom = in.src
	req.complete()
}

// sendCTS answers a matched RTS: register the landing region and grant the
// sender clearance to RDMA-write.
func (r *Rank) sendCTS(req *Request, in *inbound) {
	var mr *ib.MR
	if req.data != nil {
		if len(req.data) < in.size {
			panic(fmt.Sprintf("mpi: rendezvous truncation at rank %d: recv %d < msg %d",
				r.id, len(req.data), in.size))
		}
		mr = r.node.HCA.RegisterMR(req.data)
	} else {
		// Synthetic receive: a virtual landing region of the right size,
		// without allocating payload memory.
		mr = r.node.HCA.RegisterVirtualMR(in.size)
	}
	req.mr = mr
	req.recvSize = in.size
	req.recvFrom = in.src
	r.ctrlSend(in.srcRank, &mpiMsg{kind: ctsMsg, src: r.id, sendReq: in.sendReq, recvReq: req, mr: mr}, nil, telemetry.NoSpan)
}

// ctrlSend emits a small control message (RTS/CTS/FIN) to the peer; its
// verbs span (if any) nests under parent.
func (r *Rank) ctrlSend(peer *Rank, m *mpiMsg, ctx *Request, parent telemetry.SpanRef) {
	if peer.node == r.node {
		r.shmDeliver(peer, m, ctx)
		return
	}
	qp := r.qpTo(peer)
	var c any
	if ctx != nil {
		c = ctx
	}
	qp.PostSend(ib.SendWR{Op: ib.OpSend, Len: CtrlBytes, Meta: m, Ctx: c, ParentSpan: parent})
}

// shmDeliver carries a message between co-located ranks over the node's
// shared memory: a fixed latency plus a copy cost, no fabric involvement.
func (r *Rank) shmDeliver(peer *Rank, m *mpiMsg, ctx *Request) {
	env := r.env() // co-located ranks share a node, hence a shard
	d := ShmLatency + sim.Time(float64(m.size)*ShmPerByteNanos)
	env.At(d, func() {
		peer.handleShmMsg(m)
		if ctx != nil {
			ctx.complete()
		}
	})
}

// handleShmMsg is the callback-context twin of handleMsg for the shared
// memory path (copy costs are charged on the sender's timeline).
func (r *Rank) handleShmMsg(m *mpiMsg) {
	switch m.kind {
	case eagerMsg:
		in := &inbound{kind: eagerMsg, src: m.src, tag: m.tag, size: m.size, data: m.data, srcRank: r.world.ranks[m.src]}
		if req := r.matchPosted(in); req != nil {
			r.deliverEager(req, in)
		} else {
			r.unexpected = append(r.unexpected, in)
		}
	case rtsMsg:
		in := &inbound{kind: rtsMsg, src: m.src, tag: m.tag, size: m.size, sendReq: m.sendReq, srcRank: r.world.ranks[m.src]}
		if req := r.matchPosted(in); req != nil {
			r.shmCTS(req, in)
		} else {
			r.unexpected = append(r.unexpected, in)
		}
	case ctsMsg:
		// Shared-memory rendezvous: the "RDMA write" is a local copy.
		req := r.rndv[m.sendReq]
		delete(r.rndv, m.sendReq)
		if obs := r.world.obs; obs != nil {
			obs.handshake.Observe(int64(r.env().Now() - req.rtsAt))
			obs.handshakeHi.Observe(int64(r.env().Now() - req.rtsAt))
		}
		env := r.env()
		d := sim.Time(float64(req.size) * ShmPerByteNanos)
		recvReq := m.recvReq
		if recvReq.data != nil && req.data != nil {
			copy(recvReq.data, req.data)
		}
		env.At(d, func() {
			recvReq.complete()
			req.complete()
		})
	case finMsg:
		m.recvReq.complete()
	}
}

// shmCTS grants a shared-memory rendezvous.
func (r *Rank) shmCTS(req *Request, in *inbound) {
	req.recvSize = in.size
	req.recvFrom = in.src
	r.shmDeliver(in.srcRank, &mpiMsg{kind: ctsMsg, src: r.id, sendReq: in.sendReq, recvReq: req}, nil)
}
