package mpi_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// A two-rank program across the WAN: blocking send and receive.
func Example() {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(100)})
	w := mpi.NewWorld(env, []*cluster.Node{tb.A[0], tb.B[0]}, mpi.Config{})
	defer w.Shutdown()
	w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Send(p, 1, 7, []byte("hello"), 0)
		case 1:
			buf := make([]byte, 5)
			n, src := r.Recv(p, 0, 7, buf, 0)
			fmt.Printf("rank 1 got %q (%d bytes) from rank %d\n", buf, n, src)
		}
	})
	// Output: rank 1 got "hello" (5 bytes) from rank 0
}

// Allreduce sums a vector across all ranks.
func ExampleRank_Allreduce() {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 2, NodesB: 2})
	var nodes []*cluster.Node
	nodes = append(nodes, tb.A...)
	nodes = append(nodes, tb.B...)
	w := mpi.NewWorld(env, nodes, mpi.Config{})
	defer w.Shutdown()
	w.Run(func(r *mpi.Rank, p *sim.Proc) {
		sum := r.Allreduce(p, []float64{float64(r.ID())})
		if r.ID() == 0 {
			fmt.Printf("sum of ranks = %v\n", sum[0])
		}
	})
	// Output: sum of ranks = 6
}
