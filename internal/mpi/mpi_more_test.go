package mpi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestEagerThresholdBoundary(t *testing.T) {
	// A message exactly at the threshold goes eagerly; one byte more uses
	// rendezvous. Distinguish by the control traffic: rendezvous posts an
	// entry in the sender's rndv map until CTS.
	w := crossWorld(sim.Micros(10), Config{})
	defer w.Shutdown()
	thr := w.Config().EagerThreshold
	var sawRndv [2]bool
	w.Run(func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			q1 := r.Isend(p, 1, 1, nil, thr)
			sawRndv[0] = len(r.rndv) > 0
			q1.Wait(p)
			q2 := r.Isend(p, 1, 2, nil, thr+1)
			sawRndv[1] = len(r.rndv) > 0
			q2.Wait(p)
		case 1:
			r.Recv(p, 0, 1, nil, thr)
			r.Recv(p, 0, 2, nil, thr+1)
		}
	})
	if sawRndv[0] {
		t.Error("message at threshold used rendezvous")
	}
	if !sawRndv[1] {
		t.Error("message above threshold did not use rendezvous")
	}
}

func TestRendezvousTruncationPanics(t *testing.T) {
	w := crossWorld(0, Config{})
	defer func() {
		w.Shutdown()
		if recover() == nil {
			t.Fatal("rendezvous truncation did not panic")
		}
	}()
	w.Run(func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Send(p, 1, 1, nil, 100000)
		case 1:
			buf := make([]byte, 10) // far too small for a 100 KB message
			r.Recv(p, 0, 1, buf, 0)
		}
	})
}

func TestEagerTruncationKeepsPrefix(t *testing.T) {
	// Eager truncation (buffer smaller than message) delivers the prefix,
	// as MPI_ERR_TRUNCATE-tolerant implementations do for eager data.
	w := crossWorld(0, Config{})
	defer w.Shutdown()
	var n int
	buf := make([]byte, 3)
	w.Run(func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Send(p, 1, 1, []byte{1, 2, 3, 4, 5}, 0)
		case 1:
			n, _ = r.Recv(p, 0, 1, buf, 0)
		}
	})
	if n != 3 || buf[0] != 1 || buf[2] != 3 {
		t.Errorf("truncated recv n=%d buf=%v", n, buf)
	}
}

func TestSendrecvExchangeNoDeadlock(t *testing.T) {
	// Symmetric large-message exchange must not deadlock (nonblocking
	// receive under the hood).
	w, _ := spreadWorld(2, 2, sim.Micros(100), Config{})
	defer w.Shutdown()
	w.Run(func(r *Rank, p *sim.Proc) {
		partner := r.ID() ^ 1
		r.Sendrecv(p, partner, 5, nil, 500000, partner, 5, nil, 500000)
	})
}

func TestBlockPlacement(t *testing.T) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 2, NodesB: 2})
	pl := BlockPlacement(tb.Nodes(), 3)
	if len(pl) != 12 {
		t.Fatalf("placement len = %d", len(pl))
	}
	if pl[0] != pl[2] || pl[0] == pl[3] {
		t.Error("ppn grouping wrong")
	}
}

func TestProfileCensus(t *testing.T) {
	w := crossWorld(0, Config{})
	defer w.Shutdown()
	w.Run(func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Send(p, 1, 1, nil, 100)     // tiny
			r.Send(p, 1, 1, nil, 64<<10)  // large
			r.Send(p, 1, 1, nil, 128<<10) // large
		case 1:
			r.Recv(p, 0, 1, nil, 100)
			r.Recv(p, 0, 1, nil, 64<<10)
			r.Recv(p, 0, 1, nil, 128<<10)
		}
	})
	mp := w.Profile()
	if mp.Msgs != 3 || mp.TinyMsgs != 1 || mp.MaxMessage != 128<<10 {
		t.Errorf("profile = %+v", mp)
	}
	wantLarge := float64(192<<10) / float64(192<<10+100)
	if lf := mp.LargeVolumeFraction(); lf < wantLarge-0.01 || lf > wantLarge+0.01 {
		t.Errorf("large fraction = %v", lf)
	}
	if mp.TinyCountFraction() != 1.0/3 {
		t.Errorf("tiny fraction = %v", mp.TinyCountFraction())
	}
}

func TestMessageRateScalesWithPairs(t *testing.T) {
	// Paper Fig. 10: at high delay the aggregate message rate grows with
	// the number of pairs.
	rate := func(pairs int) float64 {
		env := sim.NewEnv()
		tb := cluster.New(env, cluster.Config{NodesA: pairs, NodesB: pairs, Delay: sim.Micros(1000)})
		var nodes []*cluster.Node
		nodes = append(nodes, tb.A...)
		nodes = append(nodes, tb.B...)
		w := NewWorld(env, nodes, Config{})
		defer w.Shutdown()
		return MessageRate(w, pairs, 1024, 2)
	}
	r4, r16 := rate(4), rate(16)
	if r16 < 3*r4 {
		t.Errorf("message rate scaling 4->16 pairs: %.3f -> %.3f, want ~4x", r4, r16)
	}
}

func TestIsendToInvalidRankPanics(t *testing.T) {
	w := crossWorld(0, Config{})
	defer func() {
		w.Shutdown()
		if recover() == nil {
			t.Fatal("Isend to invalid rank did not panic")
		}
	}()
	w.Run(func(r *Rank, p *sim.Proc) {
		if r.ID() == 0 {
			r.Isend(p, 99, 1, nil, 8)
		}
	})
}

func TestBarrierRepeats(t *testing.T) {
	w, _ := spreadWorld(2, 2, sim.Micros(10), Config{})
	defer w.Shutdown()
	counts := make([]int, 4)
	w.Run(func(r *Rank, p *sim.Proc) {
		for i := 0; i < 5; i++ {
			r.Barrier(p)
			counts[r.ID()]++
		}
	})
	for i, c := range counts {
		if c != 5 {
			t.Errorf("rank %d did %d barriers", i, c)
		}
	}
}

func TestHierBcastRootInB(t *testing.T) {
	// Root in cluster B: the leader logic must work in both directions.
	w, _ := spreadWorld(3, 3, sim.Micros(100), Config{})
	defer w.Shutdown()
	root := 4 // cluster B under block order (3 A-nodes first)
	payload := []byte("rooted in cluster B")
	ok := true
	w.Run(func(r *Rank, p *sim.Proc) {
		if r.ID() == root {
			r.HierBcast(p, root, payload, 0)
		} else {
			buf := make([]byte, len(payload))
			out := r.HierBcast(p, root, buf, 0)
			if string(out) != string(payload) {
				ok = false
			}
		}
	})
	if !ok {
		t.Error("HierBcast with root in cluster B corrupted payload")
	}
}

func TestLatencyHalfRoundTripAtZeroDelay(t *testing.T) {
	w := crossWorld(0, Config{})
	defer w.Shutdown()
	lat := Latency(w, 8, 50)
	// Verbs RC over the Longbow pair is ~6.9us; MPI adds header+matching.
	if lat < 6*sim.Microsecond || lat > 12*sim.Microsecond {
		t.Errorf("MPI 0-delay latency = %v", lat)
	}
}
