package mpi

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
)

// This file implements MPI-2 one-sided communication (RMA): window
// creation, Put, Get and Fence, mapped directly onto RDMA write/read —
// the programming model RDMA-capable interconnects were built for, and a
// natural extension of the paper's middleware set.

// Win is one rank's handle on a window: a remotely accessible memory
// region on every rank.
type Win struct {
	rank    *Rank
	size    int
	local   []byte
	regions []*ib.MR // indexed by rank
	pending []*Request
	id      int
}

// winState accumulates a collective window creation.
type winState struct {
	regions []*ib.MR
	joined  int
	ready   *sim.Event
}

// WinCreate collectively creates a window exposing buf (or a synthetic
// region of the given size when buf is nil) on every rank. Like
// MPI_Win_create it must be called by all ranks in the same order.
func (r *Rank) WinCreate(p *sim.Proc, buf []byte, size int) *Win {
	if buf != nil {
		size = len(buf)
	}
	w := r.world
	if w.env.Sharded() {
		// The window-creation rendezvous (winStates, the shared ready
		// event) is cross-rank shared state with no wire between the
		// parties — it cannot run concurrently across shards. No multi-site
		// experiment uses RMA; revisit with a leader-based exchange if one
		// ever does.
		panic("mpi: WinCreate is not supported on a sharded (partitioned) world")
	}
	r.winSeq++
	id := r.winSeq
	st := w.winStates[id]
	if st == nil {
		st = &winState{regions: make([]*ib.MR, len(w.ranks)), ready: w.env.NewEvent()}
		if w.winStates == nil {
			w.winStates = map[int]*winState{}
		}
		w.winStates[id] = st
	}
	var mr *ib.MR
	if buf != nil {
		mr = r.node.HCA.RegisterMR(buf)
	} else {
		mr = r.node.HCA.RegisterVirtualMR(size)
	}
	st.regions[r.id] = mr
	st.joined++
	if st.joined == len(w.ranks) {
		st.ready.Trigger(nil)
	} else {
		p.Wait(st.ready)
	}
	// The exchange of region handles costs a barrier's worth of traffic.
	r.Barrier(p)
	return &Win{rank: r, size: size, local: buf, regions: st.regions, id: id}
}

// Put starts a one-sided write of data (or size synthetic bytes) into the
// target rank's window at the given offset. Completion is deferred to the
// next Fence.
func (w *Win) Put(p *sim.Proc, target int, data []byte, size, targetOff int) {
	if data != nil {
		size = len(data)
	}
	r := w.rank
	if target == r.id {
		// Local put: a memcpy.
		if data != nil && w.local != nil {
			copy(w.local[targetOff:], data)
		}
		p.Sleep(sim.Time(float64(size) * ShmPerByteNanos))
		return
	}
	if targetOff+size > w.size {
		panic(fmt.Sprintf("mpi: Put beyond window bounds: off=%d size=%d win=%d", targetOff, size, w.size))
	}
	peer := r.world.ranks[target]
	req := &Request{rank: r, done: r.env().NewEvent(), isSend: true, peer: target, size: size}
	r.world.profile.record(size)
	qp := r.qpTo(peer)
	qp.PostSend(ib.SendWR{
		Op: ib.OpRDMAWrite, Data: data, Len: size,
		RemoteMR: w.regions[target], RemoteOff: targetOff, Ctx: req,
	})
	w.pending = append(w.pending, req)
}

// Get starts a one-sided read of size bytes (into buf when non-nil) from
// the target rank's window at the given offset. Completion is deferred to
// the next Fence.
func (w *Win) Get(p *sim.Proc, target int, buf []byte, size, targetOff int) {
	if buf != nil {
		size = len(buf)
	}
	r := w.rank
	if target == r.id {
		if buf != nil && w.local != nil {
			copy(buf, w.local[targetOff:targetOff+size])
		}
		p.Sleep(sim.Time(float64(size) * ShmPerByteNanos))
		return
	}
	if targetOff+size > w.size {
		panic("mpi: Get beyond window bounds")
	}
	peer := r.world.ranks[target]
	req := &Request{rank: r, done: r.env().NewEvent(), peer: target, size: size}
	r.world.profile.record(size)
	qp := r.qpTo(peer)
	qp.PostSend(ib.SendWR{
		Op: ib.OpRDMARead, Len: size, LocalBuf: buf,
		RemoteMR: w.regions[target], RemoteOff: targetOff, Ctx: req,
	})
	w.pending = append(w.pending, req)
}

// Fence completes all locally issued one-sided operations and synchronizes
// all ranks (MPI_Win_fence): after it returns, every rank's puts are
// visible in every window.
func (w *Win) Fence(p *sim.Proc) {
	WaitAll(p, w.pending)
	w.pending = nil
	w.rank.Barrier(p)
}
