package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// Gather collects each rank's data block at root (binomial tree, blocks
// concatenated in rank order). Non-root ranks pass their block and get nil;
// root gets the full concatenation. All blocks must have equal size.
func (r *Rank) Gather(p *sim.Proc, root int, block []byte, blockSize int) []byte {
	if block != nil {
		blockSize = len(block)
	}
	r.collSeq++
	tag := r.collTag(0)
	n := len(r.world.ranks)
	vrank := (r.id - root + n) % n
	// Each node accumulates the blocks of its binomial subtree, ordered
	// by vrank, then forwards the bundle to its parent.
	synthetic := block == nil
	var bundle []byte
	if !synthetic {
		bundle = append([]byte(nil), block...)
	}
	held := 1 // blocks currently held (own + received subtrees)
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % n
			r.Send(p, parent, tag, bundle, held*blockSize)
			if r.id == root {
				panic("mpi: unreachable")
			}
			return nil
		}
		if vrank+mask < n {
			child := (vrank + mask + root) % n
			sub := min(mask, n-(vrank+mask)) // child subtree size
			var buf []byte
			if !synthetic {
				buf = make([]byte, sub*blockSize)
			}
			got, _ := r.Recv(p, child, tag, buf, sub*blockSize)
			if got != sub*blockSize {
				panic(fmt.Sprintf("mpi: gather expected %d bytes, got %d", sub*blockSize, got))
			}
			if !synthetic {
				bundle = append(bundle, buf...)
			}
			held += sub
		}
	}
	// Root: bundle holds blocks in vrank order; rotate to rank order.
	if synthetic {
		return nil
	}
	out := make([]byte, n*blockSize)
	for v := 0; v < n; v++ {
		rank := (v + root) % n
		copy(out[rank*blockSize:], bundle[v*blockSize:(v+1)*blockSize])
	}
	return out
}

// Scatter distributes root's buffer (n equal blocks in rank order) so each
// rank receives its block (binomial tree). Non-root ranks pass nil data;
// every rank returns its own block (nil for synthetic traffic).
func (r *Rank) Scatter(p *sim.Proc, root int, data []byte, blockSize int) []byte {
	r.collSeq++
	tag := r.collTag(0)
	n := len(r.world.ranks)
	if data != nil {
		if len(data)%n != 0 {
			panic("mpi: Scatter buffer not divisible by world size")
		}
		blockSize = len(data) / n
	}
	vrank := (r.id - root + n) % n
	// Work in vrank order: a node holds the bundle of blocks
	// [vrank, vrank+held). Intermediate nodes always materialize the
	// bundle bytes (a synthetic root scatters zero-filled blocks).
	var bundle []byte
	if r.id == root {
		bundle = make([]byte, n*blockSize)
		if data != nil {
			for rank := 0; rank < n; rank++ {
				v := (rank - root + n) % n
				copy(bundle[v*blockSize:], data[rank*blockSize:(rank+1)*blockSize])
			}
		}
	} else {
		mask := 1
		for vrank&mask == 0 {
			mask <<= 1
		}
		parent := (vrank - mask + root) % n
		held := min(mask, n-vrank)
		bundle = make([]byte, held*blockSize)
		got, _ := r.Recv(p, parent, tag, bundle, 0)
		if got != held*blockSize {
			panic("mpi: scatter short bundle")
		}
	}
	for mask := nextPow2(n) / 2; mask > 0; mask >>= 1 {
		if vrank&(2*mask-1) == 0 && vrank+mask < n {
			child := (vrank + mask + root) % n
			sub := min(mask, n-(vrank+mask))
			lo := mask * blockSize
			r.Send(p, child, tag, bundle[lo:lo+sub*blockSize], 0)
			bundle = bundle[:lo]
		}
	}
	return bundle[:blockSize]
}

// Allgather circulates each rank's block around a ring until every rank
// holds the full concatenation (in rank order). All blocks must be the same
// size; nil blocks keep the traffic synthetic and return nil.
func (r *Rank) Allgather(p *sim.Proc, block []byte, blockSize int) []byte {
	if block != nil {
		blockSize = len(block)
	}
	r.collSeq++
	n := len(r.world.ranks)
	synthetic := block == nil
	var out []byte
	if !synthetic {
		out = make([]byte, n*blockSize)
		copy(out[r.id*blockSize:], block)
	}
	right := (r.id + 1) % n
	left := (r.id - 1 + n) % n
	// Step s forwards the block originally owned by (id - s).
	for s := 0; s < n-1; s++ {
		sendOwner := ((r.id-s)%n + n) % n
		recvOwner := ((r.id-s-1)%n + n) % n
		var sendBuf, recvBuf []byte
		if !synthetic {
			sendBuf = out[sendOwner*blockSize : (sendOwner+1)*blockSize]
			recvBuf = out[recvOwner*blockSize : (recvOwner+1)*blockSize]
		}
		r.Sendrecv(p, right, r.collTag(s), sendBuf, blockSize,
			left, r.collTag(s), recvBuf, blockSize)
	}
	return out
}

// ReduceScatter sums float64 vectors across all ranks and leaves each rank
// with its length/n share of the result (pairwise-exchange halving for
// power-of-two sizes; reduce+scatter otherwise).
func (r *Rank) ReduceScatter(p *sim.Proc, vals []float64) []float64 {
	n := len(r.world.ranks)
	if len(vals)%n != 0 {
		panic("mpi: ReduceScatter vector not divisible by world size")
	}
	share := len(vals) / n
	if n&(n-1) != 0 {
		// General case: full reduce at 0, then scatter.
		red := r.Reduce(p, 0, vals)
		var buf []byte
		if r.id == 0 {
			buf = encodeF64(red)
		}
		out := r.Scatter(p, 0, buf, 8*share)
		return decodeF64(out)
	}
	r.collSeq++
	// Recursive halving: at each step exchange the half of the working
	// vector the partner is responsible for, and add the received half.
	work := append([]float64(nil), vals...)
	lo, hi := 0, len(vals)
	for mask, round := n/2, 0; mask >= 1; mask, round = mask/2, round+1 {
		partner := r.id ^ mask
		mid := (lo + hi) / 2
		var sendLo, sendHi, keepLo, keepHi int
		if r.id&mask == 0 {
			sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
		} else {
			sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
		}
		buf := make([]byte, 8*(keepHi-keepLo))
		r.Sendrecv(p, partner, r.collTag(round), encodeF64(work[sendLo:sendHi]), 0,
			partner, r.collTag(round), buf, 0)
		vec := decodeF64(buf)
		for i := range vec {
			work[keepLo+i] += vec[i]
		}
		lo, hi = keepLo, keepHi
	}
	out := make([]float64, share)
	copy(out, work[lo:hi])
	return out
}
