package mpi

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// crossWorld builds a world with one rank on each side of the WAN.
func crossWorld(delay sim.Time, cfg Config) *World {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	return NewWorld(env, []*cluster.Node{tb.A[0], tb.B[0]}, cfg)
}

// spreadWorld builds a world with na ranks in cluster A and nb in cluster B
// (one rank per node).
func spreadWorld(na, nb int, delay sim.Time, cfg Config) (*World, *cluster.Testbed) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: na, NodesB: nb, Delay: delay})
	var nodes []*cluster.Node
	for i := 0; i < na; i++ {
		nodes = append(nodes, tb.A[i])
	}
	for i := 0; i < nb; i++ {
		nodes = append(nodes, tb.B[i])
	}
	return NewWorld(env, nodes, cfg), tb
}

func TestEagerSendRecvData(t *testing.T) {
	w := crossWorld(sim.Micros(10), Config{})
	defer w.Shutdown()
	msg := []byte("eager path message")
	var got []byte
	w.Run(func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Send(p, 1, 7, msg, 0)
		case 1:
			buf := make([]byte, 64)
			n, src := r.Recv(p, 0, 7, buf, 0)
			if src != 0 {
				t.Errorf("src = %d", src)
			}
			got = buf[:n]
		}
	})
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q, want %q", got, msg)
	}
}

func TestRendezvousSendRecvData(t *testing.T) {
	w := crossWorld(sim.Micros(10), Config{})
	defer w.Shutdown()
	msg := make([]byte, 100000) // well above the 8K threshold
	rng := rand.New(rand.NewSource(1))
	rng.Read(msg)
	buf := make([]byte, len(msg))
	w.Run(func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Send(p, 1, 7, msg, 0)
		case 1:
			n, _ := r.Recv(p, 0, 7, buf, 0)
			if n != len(msg) {
				t.Errorf("recv %d bytes, want %d", n, len(msg))
			}
		}
	})
	if !bytes.Equal(buf, msg) {
		t.Error("rendezvous payload corrupted")
	}
}

func TestTagMatching(t *testing.T) {
	w := crossWorld(0, Config{})
	defer w.Shutdown()
	var order []int
	w.Run(func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Send(p, 1, 5, []byte{5}, 0)
			r.Send(p, 1, 3, []byte{3}, 0)
		case 1:
			b1 := make([]byte, 1)
			r.Recv(p, 0, 3, b1, 0) // matches the tag-3 message even though tag-5 arrived first
			order = append(order, int(b1[0]))
			b2 := make([]byte, 1)
			r.Recv(p, 0, 5, b2, 0)
			order = append(order, int(b2[0]))
		}
	})
	if len(order) != 2 || order[0] != 3 || order[1] != 5 {
		t.Errorf("order = %v, want [3 5]", order)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w, _ := spreadWorld(2, 1, 0, Config{})
	defer w.Shutdown()
	srcs := map[int]bool{}
	w.Run(func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0, 1:
			r.Send(p, 2, 10+r.ID(), nil, 8)
		case 2:
			for i := 0; i < 2; i++ {
				_, src := r.Recv(p, AnySource, AnyTag, nil, 8)
				srcs[src] = true
			}
		}
	})
	if !srcs[0] || !srcs[1] {
		t.Errorf("sources seen = %v", srcs)
	}
}

func TestSameSourceOrdering(t *testing.T) {
	w := crossWorld(sim.Micros(100), Config{})
	defer w.Shutdown()
	const n = 30
	var got []int
	w.Run(func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			reqs := make([]*Request, n)
			for i := 0; i < n; i++ {
				// Mix of eager and rendezvous sizes with the same tag.
				sz := 16
				if i%3 == 0 {
					sz = 50000
				}
				b := make([]byte, sz)
				b[0] = byte(i)
				reqs[i] = r.Isend(p, 1, 9, b, 0)
			}
			WaitAll(p, reqs)
		case 1:
			for i := 0; i < n; i++ {
				buf := make([]byte, 50000)
				r.Recv(p, 0, 9, buf, 0)
				got = append(got, int(buf[0]))
			}
		}
	})
	for i, v := range got {
		if v != i {
			t.Fatalf("same-source messages reordered: %v", got)
		}
	}
}

func TestShmPath(t *testing.T) {
	// Two ranks on the same node: traffic must not touch the fabric, and
	// latency must be sub-microsecond-ish.
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1})
	w := NewWorld(env, []*cluster.Node{tb.A[0], tb.A[0]}, Config{})
	defer w.Shutdown()
	msg := make([]byte, 20000)
	msg[19999] = 42
	buf := make([]byte, 20000)
	finish := w.Run(func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Send(p, 1, 1, msg, 0)
		case 1:
			r.Recv(p, 0, 1, buf, 0)
		}
	})
	if buf[19999] != 42 {
		t.Error("shm payload corrupted")
	}
	if finish > 50*sim.Microsecond {
		t.Errorf("shm transfer took %v, too slow", finish)
	}
	if tx := tb.WAN.Link().Rate(); tx == 0 {
		t.Fatal("sanity")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w, _ := spreadWorld(3, 3, sim.Micros(100), Config{})
	defer w.Shutdown()
	var minExit, maxEnter sim.Time
	minExit = 1 << 60
	w.Run(func(r *Rank, p *sim.Proc) {
		// Stagger entries.
		p.Sleep(sim.Time(r.ID()) * 50 * sim.Microsecond)
		enter := p.Now()
		if enter > maxEnter {
			maxEnter = enter
		}
		r.Barrier(p)
		if p.Now() < minExit {
			minExit = p.Now()
		}
	})
	if minExit < maxEnter {
		t.Errorf("a rank left the barrier (%v) before the last entered (%v)", minExit, maxEnter)
	}
}

func TestBcastDeliversData(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		w, _ := spreadWorld((n+1)/2, n/2, sim.Micros(10), Config{})
		payload := []byte("broadcast payload content!")
		results := make([][]byte, n)
		w.Run(func(r *Rank, p *sim.Proc) {
			if r.ID() == 0 {
				r.Bcast(p, 0, payload, 0)
				results[0] = payload
			} else {
				buf := make([]byte, len(payload))
				out := r.Bcast(p, 0, buf, 0)
				results[r.ID()] = out
			}
		})
		for i, res := range results {
			if !bytes.Equal(res, payload) {
				t.Errorf("n=%d rank %d got %q", n, i, res)
			}
		}
		w.Shutdown()
	}
}

func TestLargeBcastScatterRingDeliversData(t *testing.T) {
	// Above BcastLargeMin the flat Bcast switches to scatter + ring
	// allgather; verify payload integrity for awkward (non-power-of-2)
	// world sizes.
	for _, n := range []int{3, 5, 8} {
		for _, root := range []int{0, n - 1} {
			w, _ := spreadWorld((n+1)/2, n/2, sim.Micros(10), Config{})
			payload := make([]byte, 200000)
			rand.New(rand.NewSource(int64(n*31 + root))).Read(payload)
			ok := true
			w.Run(func(r *Rank, p *sim.Proc) {
				if r.ID() == root {
					r.Bcast(p, root, payload, 0)
				} else {
					buf := make([]byte, len(payload))
					out := r.Bcast(p, root, buf, 0)
					if !bytes.Equal(out, payload) {
						ok = false
					}
				}
			})
			if !ok {
				t.Errorf("n=%d root=%d: scatter-ring bcast corrupted payload", n, root)
			}
			w.Shutdown()
		}
	}
}

func TestHierBcastDeliversData(t *testing.T) {
	for _, root := range []int{0, 2} {
		w, _ := spreadWorld(3, 4, sim.Micros(100), Config{})
		payload := make([]byte, 5000)
		rand.New(rand.NewSource(9)).Read(payload)
		ok := true
		w.Run(func(r *Rank, p *sim.Proc) {
			if r.ID() == root {
				r.HierBcast(p, root, payload, 0)
			} else {
				buf := make([]byte, len(payload))
				out := r.HierBcast(p, root, buf, 0)
				if !bytes.Equal(out, payload) {
					ok = false
				}
			}
		})
		if !ok {
			t.Errorf("root=%d: hierarchical bcast corrupted payload", root)
		}
		w.Shutdown()
	}
}

func TestHierBcastCrossesWANOnce(t *testing.T) {
	// Compare WAN bytes for flat vs hierarchical broadcast: the
	// hierarchical version must move the payload across the WAN exactly
	// once (paper §3.4 "minimizing the traffic on the WAN link").
	wanBytes := func(hier bool) int64 {
		w, tb := spreadWorld(4, 4, sim.Micros(100), Config{})
		defer w.Shutdown()
		before := tb.WAN.Link().Rate() // placeholder to keep tb used
		_ = before
		start := wanTx(tb)
		w.Run(func(r *Rank, p *sim.Proc) {
			if hier {
				r.HierBcast(p, 0, nil, 100000)
			} else {
				r.Bcast(p, 0, nil, 100000)
			}
		})
		return wanTx(tb) - start
	}
	flat := wanBytes(false)
	hier := wanBytes(true)
	if hier >= flat {
		t.Errorf("hierarchical WAN bytes (%d) not below flat (%d)", hier, flat)
	}
	// Flat binomial from rank 0 sends to ranks 4,5,6,7 across the WAN
	// under block placement? Actually ranks 4..7 receive from within the
	// tree; at least one crossing happens per remote subtree root. The
	// hierarchical one crosses once: ~100KB plus control traffic.
	if hier > 130000 {
		t.Errorf("hierarchical WAN bytes = %d, want ~1 payload crossing (~100KB)", hier)
	}
}

func wanTx(tb *cluster.Testbed) int64 {
	// Sum of bytes sent in both directions over the WAN link.
	return tb.WAN.Link().TxTotal()
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7} {
		w, _ := spreadWorld((n+1)/2, n/2, sim.Micros(10), Config{})
		vecLen := 5
		want := make([]float64, vecLen)
		for i := 0; i < n; i++ {
			for j := 0; j < vecLen; j++ {
				want[j] += float64(i*10 + j)
			}
		}
		var rootGot []float64
		allOK := true
		w.Run(func(r *Rank, p *sim.Proc) {
			vals := make([]float64, vecLen)
			for j := range vals {
				vals[j] = float64(r.ID()*10 + j)
			}
			res := r.Reduce(p, 0, vals)
			if r.ID() == 0 {
				rootGot = res
			}
			all := r.Allreduce(p, vals)
			for j := range all {
				if math.Abs(all[j]-want[j]) > 1e-9 {
					allOK = false
				}
			}
		})
		for j := range want {
			if math.Abs(rootGot[j]-want[j]) > 1e-9 {
				t.Errorf("n=%d Reduce[%d] = %v, want %v", n, j, rootGot[j], want[j])
			}
		}
		if !allOK {
			t.Errorf("n=%d Allreduce mismatch", n)
		}
		w.Shutdown()
	}
}

func TestAlltoallAndAllgatherComplete(t *testing.T) {
	w, _ := spreadWorld(2, 2, sim.Micros(10), Config{})
	defer w.Shutdown()
	done := 0
	w.Run(func(r *Rank, p *sim.Proc) {
		r.AlltoallSynthetic(p, 4096)
		r.AllgatherSynthetic(p, 4096)
		done++
	})
	if done != 4 {
		t.Errorf("done = %d", done)
	}
}

func TestDeadlockPanics(t *testing.T) {
	w := crossWorld(0, Config{})
	defer func() {
		w.Shutdown()
		if recover() == nil {
			t.Fatal("deadlocked world did not panic")
		}
	}()
	w.Run(func(r *Rank, p *sim.Proc) {
		if r.ID() == 0 {
			r.Recv(p, 1, 1, nil, 8) // no one ever sends
		}
	})
}

func TestLatencyReasonable(t *testing.T) {
	w := crossWorld(sim.Micros(100), Config{})
	defer w.Shutdown()
	lat := Latency(w, 8, 20)
	// One-way: ~100us WAN + ~7us devices + software.
	if lat < sim.Micros(100) || lat > sim.Micros(115) {
		t.Errorf("MPI small-message latency at 100us delay = %v", lat)
	}
}

func TestBandwidthPeakCalibration(t *testing.T) {
	// Paper Fig. 8(a): MPI peak ~969 MB/s for large messages.
	w := crossWorld(0, Config{})
	defer w.Shutdown()
	bw := Bandwidth(w, 1<<20, 4)
	if bw < 930 || bw > 1000 {
		t.Errorf("MPI peak bw = %.1f MB/s, want ~969", bw)
	}
}

func TestRendezvousDipAndThresholdTuning(t *testing.T) {
	// Paper Fig. 9: at 1 ms WAN delay, raising the rendezvous threshold
	// from 8K to 64K significantly improves medium-message bandwidth.
	orig := func() float64 {
		w := crossWorld(sim.Micros(1000), Config{})
		defer w.Shutdown()
		return Bandwidth(w, 16<<10, 4)
	}()
	tuned := func() float64 {
		w := crossWorld(sim.Micros(1000), Config{EagerThreshold: 64 << 10})
		defer w.Shutdown()
		return Bandwidth(w, 16<<10, 4)
	}()
	if tuned < orig*1.3 {
		t.Errorf("threshold tuning gain too small at 1ms: orig=%.1f tuned=%.1f MB/s", orig, tuned)
	}
}

func TestHierBcastFasterAtHighDelay(t *testing.T) {
	flat := func() sim.Time {
		w, _ := spreadWorld(4, 4, sim.Micros(1000), Config{})
		defer w.Shutdown()
		return BcastLatency(w, 128<<10, 3, false)
	}()
	hier := func() sim.Time {
		w, _ := spreadWorld(4, 4, sim.Micros(1000), Config{})
		defer w.Shutdown()
		return BcastLatency(w, 128<<10, 3, true)
	}()
	if hier >= flat {
		t.Errorf("hierarchical bcast (%v) not faster than flat (%v) at 1ms", hier, flat)
	}
}

// Property: random pairwise traffic between 4 ranks is delivered intact.
func TestPropRandomTraffic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, _ := spreadWorld(2, 2, sim.Micros(10), Config{})
		defer w.Shutdown()
		n := w.Size()
		// Predetermined schedule: each rank sends k messages to each peer.
		k := 1 + rng.Intn(3)
		payload := func(src, dst, i int) []byte {
			b := make([]byte, 1+((src*7+dst*3+i*11)%20000))
			for j := range b {
				b[j] = byte(src ^ dst ^ i ^ j)
			}
			return b
		}
		ok := true
		w.Run(func(r *Rank, p *sim.Proc) {
			var reqs []*Request
			for dst := 0; dst < n; dst++ {
				if dst == r.ID() {
					continue
				}
				for i := 0; i < k; i++ {
					reqs = append(reqs, r.Isend(p, dst, 100+i, payload(r.ID(), dst, i), 0))
				}
			}
			for src := 0; src < n; src++ {
				if src == r.ID() {
					continue
				}
				for i := 0; i < k; i++ {
					want := payload(src, r.ID(), i)
					buf := make([]byte, len(want))
					r.Recv(p, src, 100+i, buf, 0)
					if !bytes.Equal(buf, want) {
						ok = false
					}
				}
			}
			WaitAll(p, reqs)
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
