package mpi

import (
	"math"
	"testing"

	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
)

// presetWorld builds a world with one rank per node of the named preset.
func presetWorld(t *testing.T, preset string, nodesPerSite int, delay sim.Time) (*World, *topo.Network) {
	t.Helper()
	env := sim.NewEnv()
	spec, err := topo.Preset(preset, nodesPerSite, delay)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := topo.Build(env, spec)
	if err != nil {
		t.Fatal(err)
	}
	return NewWorld(env, nw.Nodes(), Config{}), nw
}

// TestHierBcastCrossesEachLinkOnce is the N-site generalization of
// TestHierBcastCrossesWANOnce: on a star the payload must cross every WAN
// link exactly once; on a ring it must cross each BFS-tree link once and
// the off-tree link not at all.
func TestHierBcastCrossesEachLinkOnce(t *testing.T) {
	const size = 100 << 10
	// Per-link bytes for one HierBcast from rank 0.
	linkBytes := func(preset string) map[string]int64 {
		w, nw := presetWorld(t, preset, 2, sim.Micros(100))
		defer w.Shutdown()
		before := make([]int64, len(nw.Links()))
		for i, l := range nw.Links() {
			before[i] = l.Pair.Link().TxTotal()
		}
		w.Run(func(r *Rank, p *sim.Proc) {
			r.HierBcast(p, 0, nil, size)
		})
		out := make(map[string]int64, len(nw.Links()))
		for i, l := range nw.Links() {
			out[l.Name()] = l.Pair.Link().TxTotal() - before[i]
		}
		return out
	}
	// One crossing of a 100 KB payload plus packet/ack overhead.
	const lo, hi = size, size + 30000
	for name, b := range linkBytes("star3") {
		if b < lo || b > hi {
			t.Errorf("star3 %s carried %d bytes, want one crossing in [%d, %d]", name, b, lo, hi)
		}
	}
	ring := linkBytes("ring4")
	// BFS from r0 visits r1 and r3 directly and r2 through r1; the r2-r3
	// link is off the tree and must stay silent.
	for _, name := range []string{"longbow[r0:r1]", "longbow[r1:r2]", "longbow[r3:r0]"} {
		if b := ring[name]; b < lo || b > hi {
			t.Errorf("ring4 %s carried %d bytes, want one crossing in [%d, %d]", name, b, lo, hi)
		}
	}
	if b := ring["longbow[r2:r3]"]; b != 0 {
		t.Errorf("ring4 off-tree link carried %d bytes, want 0", b)
	}
}

// TestHierBcastDeliversMultisite checks payload delivery on a ring: every
// rank — including those two WAN hops from the root — receives the root's
// bytes.
func TestHierBcastDeliversMultisite(t *testing.T) {
	w, _ := presetWorld(t, "ring4", 2, sim.Micros(10))
	defer w.Shutdown()
	msg := []byte("multi-hop payload")
	bad := false
	w.Run(func(r *Rank, p *sim.Proc) {
		var got []byte
		if r.ID() == 0 {
			got = r.HierBcast(p, 0, msg, 0)
		} else {
			got = r.HierBcast(p, 0, make([]byte, 64), 0)
		}
		if string(got) != string(msg) {
			bad = true
		}
	})
	if bad {
		t.Error("a rank received the wrong payload")
	}
}

// TestHierAllreduceMultisite checks numerical correctness of the site-tree
// allreduce on 3- and 4-site topologies.
func TestHierAllreduceMultisite(t *testing.T) {
	for _, preset := range []string{"star3", "ring4", "mesh4"} {
		w, _ := presetWorld(t, preset, 2, sim.Micros(100))
		n := w.Size()
		vecLen := 4
		want := make([]float64, vecLen)
		for i := 0; i < n; i++ {
			for j := 0; j < vecLen; j++ {
				want[j] += float64(i*100 + j)
			}
		}
		ok := true
		w.Run(func(r *Rank, p *sim.Proc) {
			vals := make([]float64, vecLen)
			for j := range vals {
				vals[j] = float64(r.ID()*100 + j)
			}
			got := r.HierAllreduce(p, vals)
			for j := range got {
				if math.Abs(got[j]-want[j]) > 1e-9 {
					ok = false
				}
			}
		})
		if !ok {
			t.Errorf("%s: HierAllreduce mismatch", preset)
		}
		w.Shutdown()
	}
}

// TestHierBarrierMultisite checks that the site-tree barrier releases no
// rank before the last one enters, across multi-hop topologies.
func TestHierBarrierMultisite(t *testing.T) {
	for _, preset := range []string{"star3", "ring4"} {
		w, _ := presetWorld(t, preset, 2, sim.Micros(100))
		var minExit, maxEnter sim.Time
		minExit = 1 << 60
		w.Run(func(r *Rank, p *sim.Proc) {
			p.Sleep(sim.Time(r.ID()) * 30 * sim.Microsecond)
			if p.Now() > maxEnter {
				maxEnter = p.Now()
			}
			r.HierBarrier(p)
			if p.Now() < minExit {
				minExit = p.Now()
			}
		})
		if minExit < maxEnter {
			t.Errorf("%s: barrier released (%v) before last entry (%v)", preset, minExit, maxEnter)
		}
		w.Shutdown()
	}
}

// TestSiteTreeFallbackStar checks the path for ranks assembled outside the
// topology layer: with no Network to consult, every non-root site hangs
// off the root site directly, and the collectives still work.
func TestSiteTreeFallbackStar(t *testing.T) {
	env := sim.NewEnv()
	defer env.Shutdown()
	f := ib.NewFabric(env)
	sw := f.AddSwitch("sw", ib.SwitchDelay)
	var nodes []*topo.Node
	for i, site := range []string{"x", "y", "z", "x", "y", "z"} {
		n := &topo.Node{Name: site, CPU: sim.NewResource(env, 2), Cluster: site}
		n.HCA = f.AddHCA(n.Name + string(rune('0'+i)))
		f.Connect(n.HCA, sw, ib.DDR, ib.DefaultCableDelay)
		nodes = append(nodes, n)
	}
	f.Finalize()
	w := NewWorld(env, nodes, Config{})
	defer w.Shutdown()
	want := 0
	for i := range nodes {
		want += i
	}
	ok := true
	w.Run(func(r *Rank, p *sim.Proc) {
		r.HierBarrier(p)
		got := r.HierAllreduce(p, []float64{float64(r.ID())})
		if got[0] != float64(want) {
			ok = false
		}
		r.HierBcast(p, 0, nil, 4<<10)
	})
	if !ok {
		t.Error("fallback-star HierAllreduce mismatch")
	}
	st := w.Rank(0).siteTree("x")
	if len(st.order) != 3 || st.order[0] != "x" {
		t.Errorf("fallback site order = %v, want x first of 3", st.order)
	}
	for _, s := range []string{"y", "z"} {
		if st.parent[s] != "x" {
			t.Errorf("fallback parent[%s] = %q, want x", s, st.parent[s])
		}
	}
}
