package mpi

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestRMAPutGetRoundTrip(t *testing.T) {
	w := crossWorld(sim.Micros(100), Config{})
	defer w.Shutdown()
	const winSize = 1 << 16
	regions := make([][]byte, 2)
	for i := range regions {
		regions[i] = make([]byte, winSize)
	}
	payload := []byte("one-sided across the WAN")
	var fetched []byte
	w.Run(func(r *Rank, p *sim.Proc) {
		win := r.WinCreate(p, regions[r.ID()], 0)
		if r.ID() == 0 {
			win.Put(p, 1, payload, 0, 1000)
		}
		win.Fence(p)
		if r.ID() == 1 {
			// The put must be visible locally after the fence.
			if !bytes.Equal(regions[1][1000:1000+len(payload)], payload) {
				t.Error("Put not visible in target window after Fence")
			}
			// Write something for rank 0 to Get.
			copy(regions[1][2000:], []byte("get-me"))
		}
		win.Fence(p)
		if r.ID() == 0 {
			buf := make([]byte, 6)
			win.Get(p, 1, buf, 0, 2000)
			win.Fence(p)
			fetched = buf
		} else {
			win.Fence(p)
		}
	})
	if string(fetched) != "get-me" {
		t.Errorf("Get = %q, want get-me", fetched)
	}
}

func TestRMALocalOps(t *testing.T) {
	w := crossWorld(0, Config{})
	defer w.Shutdown()
	w.Run(func(r *Rank, p *sim.Proc) {
		local := make([]byte, 1024)
		win := r.WinCreate(p, local, 0)
		win.Put(p, r.ID(), []byte{9, 9}, 0, 10)
		buf := make([]byte, 2)
		win.Get(p, r.ID(), buf, 0, 10)
		win.Fence(p)
		if buf[0] != 9 || buf[1] != 9 {
			t.Errorf("rank %d local put/get = %v", r.ID(), buf)
		}
	})
}

func TestRMAManyToOne(t *testing.T) {
	// All ranks put a disjoint slice into rank 0's window; after the
	// fence rank 0 sees every contribution.
	w, _ := spreadWorld(3, 3, sim.Micros(100), Config{})
	defer w.Shutdown()
	n := w.Size()
	region := make([]byte, n*8)
	ok := true
	w.Run(func(r *Rank, p *sim.Proc) {
		var win *Win
		if r.ID() == 0 {
			win = r.WinCreate(p, region, 0)
		} else {
			win = r.WinCreate(p, nil, len(region))
		}
		chunk := bytes.Repeat([]byte{byte(r.ID() + 1)}, 8)
		win.Put(p, 0, chunk, 0, r.ID()*8)
		win.Fence(p)
		if r.ID() == 0 {
			for i := 0; i < n; i++ {
				for j := 0; j < 8; j++ {
					if region[i*8+j] != byte(i+1) {
						ok = false
					}
				}
			}
		}
	})
	if !ok {
		t.Error("many-to-one puts incomplete after fence")
	}
}

func TestRMAPutBeyondWindowPanics(t *testing.T) {
	w := crossWorld(0, Config{})
	defer func() {
		w.Shutdown()
		if recover() == nil {
			t.Fatal("out-of-bounds Put did not panic")
		}
	}()
	w.Run(func(r *Rank, p *sim.Proc) {
		win := r.WinCreate(p, nil, 100)
		if r.ID() == 0 {
			win.Put(p, 1, nil, 200, 0)
		}
		win.Fence(p)
	})
}

func TestRMASyntheticBandwidthShape(t *testing.T) {
	// One-sided puts are pure RDMA writes: at 1 ms a window of large puts
	// outruns many small puts, the Fig. 5 window effect again.
	elapsed := func(putSize, count int) sim.Time {
		w := crossWorld(sim.Micros(1000), Config{})
		defer w.Shutdown()
		return w.Run(func(r *Rank, p *sim.Proc) {
			win := r.WinCreate(p, nil, 8<<20)
			if r.ID() == 0 {
				for i := 0; i < count; i++ {
					win.Put(p, 1, nil, putSize, 0)
				}
			}
			win.Fence(p)
		})
	}
	small := elapsed(8<<10, 128) // 1 MB in 8K puts
	large := elapsed(1<<20, 1)   // 1 MB in one put
	if large*2 > small {
		t.Errorf("large put (%v) not clearly faster than many small puts (%v) at 1ms", large, small)
	}
}
