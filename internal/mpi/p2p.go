package mpi

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
)

// Isend starts a nonblocking send of size bytes (or of data, when non-nil)
// to rank dst with the given tag. Messages at or below the eager threshold
// go eagerly (bounce-buffer copy, one-way); larger messages use the
// rendezvous protocol (RTS/CTS handshake, zero-copy RDMA write).
//
// The returned request completes when the send buffer is reusable: for
// eager sends, when the transport acknowledges the message; for rendezvous,
// when the RDMA write has been acknowledged.
func (r *Rank) Isend(p *sim.Proc, dst, tag int, data []byte, size int) *Request {
	if data != nil {
		size = len(data)
	}
	if dst < 0 || dst >= len(r.world.ranks) {
		panic(fmt.Sprintf("mpi: Isend to invalid rank %d", dst))
	}
	req := &Request{
		rank: r, done: r.env().NewEvent(), isSend: true,
		peer: dst, tag: tag, size: size, data: data,
	}
	r.world.profile.record(size)
	peer := r.world.ranks[dst]
	eager := size <= r.world.cfg.EagerThreshold
	if obs := r.world.obs; obs != nil {
		obs.msgBytes.Observe(int64(size))
		if eager {
			obs.eagerMsgs.Add(1)
		} else {
			obs.rndvMsgs.Add(1)
		}
		if obs.rec != nil {
			name := "mpi.eager"
			if !eager {
				name = "mpi.rndv"
			}
			req.span = obs.rec.StartAt(r.env().Now(), r.obsTrack(), name, r.collSpan)
		}
	}
	m := &mpiMsg{src: r.id, tag: tag, size: size}
	if eager {
		m.kind = eagerMsg
		m.data = data
		if peer.node == r.node {
			// Shared-memory path: single copy charged here.
			p.Sleep(sim.Time(float64(size) * ShmPerByteNanos))
			r.shmDeliver(peer, m, req)
			return req
		}
		// Sender-side bounce-buffer copy, then a single verbs send.
		p.Sleep(r.world.copyTime(size))
		qp := r.qpTo(peer)
		qp.PostSend(ib.SendWR{Op: ib.OpSend, Len: size + CtrlBytes, Meta: m, Ctx: req, ParentSpan: req.span})
		return req
	}
	// Rendezvous.
	r.nextReq++
	m.kind = rtsMsg
	m.sendReq = r.nextReq
	r.rndv[m.sendReq] = req
	req.rtsAt = r.env().Now()
	r.ctrlSend(peer, m, nil, req.span)
	if r.world.cfg.RndvTimeout > 0 && peer.node != r.node {
		r.armRndvWatchdog(m.sendReq, peer)
	}
	return req
}

// armRndvWatchdog schedules the rendezvous stall check for an outstanding
// RTS. Each expiry without a CTS counts a stall; the watchdog re-arms
// until the handshake completes — unless the connection toward the peer
// has errored, in which case waiting longer cannot help and the job aborts
// deterministically (the RTS or its CTS died with the connection).
func (r *Rank) armRndvWatchdog(sendReq int64, peer *Rank) {
	r.env().At(r.world.cfg.RndvTimeout, func() {
		if _, waiting := r.rndv[sendReq]; !waiting {
			return // CTS arrived
		}
		if obs := r.world.obs; obs != nil {
			obs.rndvStalls.Add(1)
		}
		if r.qpTo(peer).Errored() {
			panic(fmt.Sprintf("mpi: rank %d: rendezvous to rank %d timed out on errored connection (communication failure)",
				r.id, peer.id))
		}
		r.armRndvWatchdog(sendReq, peer)
	})
}

// Irecv posts a nonblocking receive matching (src, tag); src may be
// AnySource and tag may be AnyTag. When buf is non-nil the message payload
// lands there (its length is the capacity); otherwise size is the synthetic
// capacity.
func (r *Rank) Irecv(src, tag int, buf []byte, size int) *Request {
	if buf != nil {
		size = len(buf)
	}
	req := &Request{
		rank: r, done: r.env().NewEvent(),
		peer: src, tag: tag, size: size, data: buf,
	}
	if in := r.matchUnexpected(req); in != nil {
		switch in.kind {
		case eagerMsg:
			// The receive-side copy cost is charged on the progress
			// engine's timeline for remote messages; for an
			// already-arrived message the copy happens now, but without a
			// process handle we fold it into delivery directly (the cost
			// was dominated by the wait that already happened).
			r.deliverEager(req, in)
		case rtsMsg:
			if in.srcRank.node == r.node {
				r.shmCTS(req, in)
			} else {
				r.sendCTS(req, in)
			}
		}
		return req
	}
	r.postedRecvs = append(r.postedRecvs, req)
	return req
}

// Send is a blocking send.
func (r *Rank) Send(p *sim.Proc, dst, tag int, data []byte, size int) {
	req := r.Isend(p, dst, tag, data, size)
	req.Wait(p)
}

// Recv is a blocking receive; it returns the received byte count and the
// source rank.
func (r *Rank) Recv(p *sim.Proc, src, tag int, buf []byte, size int) (int, int) {
	req := r.Irecv(src, tag, buf, size)
	return req.Wait(p)
}

// Sendrecv performs a blocking combined send and receive, the workhorse of
// pairwise-exchange collectives.
func (r *Rank) Sendrecv(p *sim.Proc, dst, stag int, sdata []byte, ssize int,
	src, rtag int, rbuf []byte, rsize int) (int, int) {
	rreq := r.Irecv(src, rtag, rbuf, rsize)
	sreq := r.Isend(p, dst, stag, sdata, ssize)
	sreq.Wait(p)
	return rreq.Wait(p)
}

// WaitAll blocks until every request completes.
func WaitAll(p *sim.Proc, reqs []*Request) {
	for _, q := range reqs {
		q.Wait(p)
	}
}
