package cluster

import (
	"testing"

	"repro/internal/ib"
	"repro/internal/sim"
)

func TestDefaultTestbedShape(t *testing.T) {
	env := sim.NewEnv()
	tb := New(env, Config{})
	if len(tb.A) != 32 || len(tb.B) != 6 {
		t.Fatalf("cluster sizes = %d/%d, want 32/6", len(tb.A), len(tb.B))
	}
	for _, n := range tb.A {
		if n.Cluster != "A" {
			t.Errorf("node %s cluster = %q", n.Name, n.Cluster)
		}
	}
	if tb.WAN.Delay() != 0 {
		t.Errorf("default WAN delay = %v, want 0", tb.WAN.Delay())
	}
}

func TestCrossClusterTraffic(t *testing.T) {
	env := sim.NewEnv()
	tb := New(env, Config{NodesA: 2, NodesB: 2, Delay: sim.Micros(100)})
	na, nb := tb.CrossPair(0)
	qa, qb := ib.CreateRCPair(na.HCA, nb.HCA, nil, nil, ib.QPConfig{})
	delivered := false
	var at sim.Time
	env.Go("recv", func(p *sim.Proc) {
		qb.PostRecv(ib.RecvWR{})
		qb.CQ().Poll(p)
		delivered = true
		at = p.Now()
	})
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: 64})
	})
	env.Run()
	if !delivered {
		t.Fatal("cross-cluster message not delivered")
	}
	// Path: HCA -> switchA -> longbowA -> (100us WAN) -> longbowB ->
	// switchB -> HCA; must exceed the WAN delay plus device latencies.
	if at < sim.Micros(100)+5*sim.Microsecond {
		t.Errorf("arrival = %v, too fast for a 100us WAN hop", at)
	}
}

func TestIntraClusterTrafficAvoidsWAN(t *testing.T) {
	env := sim.NewEnv()
	tb := New(env, Config{NodesA: 2, NodesB: 1, Delay: sim.Micros(10000)})
	qa, qb := ib.CreateRCPair(tb.A[0].HCA, tb.A[1].HCA, nil, nil, ib.QPConfig{})
	var at sim.Time
	env.Go("recv", func(p *sim.Proc) {
		qb.PostRecv(ib.RecvWR{})
		qb.CQ().Poll(p)
		at = p.Now()
	})
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: 64})
	})
	env.Run()
	if at > sim.Micros(50) {
		t.Errorf("intra-cluster latency = %v; traffic appears to cross the 10ms WAN", at)
	}
}

func TestPaperDelays(t *testing.T) {
	d := PaperDelays()
	want := []sim.Time{0, sim.Micros(10), sim.Micros(100), sim.Micros(1000), sim.Micros(10000)}
	if len(d) != len(want) {
		t.Fatalf("PaperDelays = %v", d)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("PaperDelays[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestFatTreeTopology(t *testing.T) {
	env := sim.NewEnv()
	tb := New(env, Config{NodesA: 8, NodesB: 4, LeafRadix: 3})
	// ceil(8/3)=3 leaves in A, ceil(4/3)=2 in B.
	if len(tb.LeavesA) != 3 || len(tb.LeavesB) != 2 {
		t.Fatalf("leaves = %d/%d, want 3/2", len(tb.LeavesA), len(tb.LeavesB))
	}
	// Same-leaf latency is lower than cross-leaf (two extra switch hops
	// through the spine).
	lat := func(a, b *Node) sim.Time {
		e := sim.NewEnv()
		t2 := New(e, Config{NodesA: 8, NodesB: 4, LeafRadix: 3})
		qa, qb := ib.CreateRCPair(t2.A[a2i(a)].HCA, t2.A[a2i(b)].HCA, nil, nil, ib.QPConfig{})
		var at sim.Time
		e.Go("recv", func(p *sim.Proc) {
			qb.PostRecv(ib.RecvWR{})
			qb.CQ().Poll(p)
			at = p.Now()
		})
		e.Go("send", func(p *sim.Proc) {
			qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: 8})
		})
		e.Run()
		return at
	}
	sameLeaf := lat(tb.A[0], tb.A[1])  // both on leaf 0
	crossLeaf := lat(tb.A[0], tb.A[3]) // leaf 0 -> leaf 1
	if crossLeaf <= sameLeaf {
		t.Errorf("cross-leaf latency (%v) not above same-leaf (%v)", crossLeaf, sameLeaf)
	}
	// Cross-cluster traffic still works through leaves + spines + WAN.
	qa, qb := ib.CreateRCPair(tb.A[7].HCA, tb.B[3].HCA, nil, nil, ib.QPConfig{})
	ok := false
	env.Go("recv", func(p *sim.Proc) {
		qb.PostRecv(ib.RecvWR{})
		qb.CQ().Poll(p)
		ok = true
	})
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: 8})
	})
	env.Run()
	if !ok {
		t.Error("cross-cluster delivery failed on fat tree")
	}
}

// a2i maps a node back to its index by name suffix (test helper).
func a2i(n *Node) int {
	return int(n.Name[len(n.Name)-2]-'0')*10 + int(n.Name[len(n.Name)-1]-'0')
}

func TestNodesAccessor(t *testing.T) {
	env := sim.NewEnv()
	tb := New(env, Config{NodesA: 3, NodesB: 2})
	all := tb.Nodes()
	if len(all) != 5 {
		t.Fatalf("Nodes() len = %d, want 5", len(all))
	}
	if all[0].Cluster != "A" || all[4].Cluster != "B" {
		t.Error("Nodes() ordering wrong")
	}
}
