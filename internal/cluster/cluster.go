// Package cluster builds the paper's experimental testbed (Fig. 2): two
// InfiniBand clusters, each with its own switch, joined by a pair of
// Obsidian Longbow XR WAN extenders. Cluster A models 32 dual-processor
// Xeon nodes, Cluster B models quad dual-core Xeon nodes, both with DDR
// HCAs; the WAN hop runs at SDR.
//
// Since the topology layer landed, this package is a thin compatibility
// wrapper: New builds the degenerate two-site topo.Topology (sites "A" and
// "B", one link) and re-exposes it through the classic Testbed shape.
// Construction order — and therefore LID assignment, routing tie-breaks
// and every simulated result — is unchanged; the golden-output test pins
// that. New experiments should use internal/topo directly.
package cluster

import (
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/wan"

	"repro/internal/ib"
)

// Node is one compute node. It is the topology layer's node type; the
// Cluster field carries the site name ("A" or "B" here).
type Node = topo.Node

// Config sizes the testbed. Zero values select the paper's configuration.
type Config struct {
	NodesA int // default 32 (paper: 32 dual-CPU nodes)
	NodesB int // default 6 (paper: 6 quad dual-core nodes)
	CoresA int // default 2
	CoresB int // default 8
	// Delay is the initial one-way WAN delay.
	Delay sim.Time
	// LinkRate is the intra-cluster link rate (default DDR).
	LinkRate ib.Rate
	// LeafRadix, when nonzero, builds each cluster as a two-level fat
	// tree: nodes attach to leaf switches of this radix, and every leaf
	// uplinks to the cluster's spine switch (which also carries the WAN
	// uplink). Zero keeps the paper's single-switch cluster.
	LeafRadix int
}

func (c *Config) fill() {
	if c.NodesA == 0 {
		c.NodesA = 32
	}
	if c.NodesB == 0 {
		c.NodesB = 6
	}
	if c.CoresA == 0 {
		c.CoresA = 2
	}
	if c.CoresB == 0 {
		c.CoresB = 8
	}
}

// Topology returns the two-site topology spec the config describes.
func (c Config) Topology() topo.Topology {
	c.fill()
	return topo.Topology{
		Sites: []topo.Site{
			{Name: "A", Nodes: c.NodesA, Cores: c.CoresA, LeafRadix: c.LeafRadix},
			{Name: "B", Nodes: c.NodesB, Cores: c.CoresB, LeafRadix: c.LeafRadix},
		},
		Links:    []topo.Link{{A: "A", B: "B", Delay: c.Delay}},
		LinkRate: c.LinkRate,
	}
}

// Testbed is the assembled cluster-of-clusters.
type Testbed struct {
	Env     *sim.Env
	Fabric  *ib.Fabric
	Net     *topo.Network
	A, B    []*Node
	SwitchA *ib.Switch // cluster A spine
	SwitchB *ib.Switch // cluster B spine
	LeavesA []*ib.Switch
	LeavesB []*ib.Switch
	WAN     *wan.Pair
}

// New assembles the testbed on the given environment.
func New(env *sim.Env, cfg Config) *Testbed {
	nw, err := topo.Build(env, cfg.Topology())
	if err != nil {
		// Only reachable through a malformed Config (e.g. negative node
		// count); the zero Config is always valid.
		panic(err)
	}
	a, b := nw.Site("A"), nw.Site("B")
	return &Testbed{
		Env:     env,
		Fabric:  nw.Fabric,
		Net:     nw,
		A:       a.Nodes,
		B:       b.Nodes,
		SwitchA: a.Spine,
		SwitchB: b.Spine,
		LeavesA: a.Leaves,
		LeavesB: b.Leaves,
		WAN:     nw.Links()[0].Pair,
	}
}

// SetDelay reconfigures the WAN delay knob (valid between runs or at any
// quiescent point; in-flight packets keep the delay they departed with).
func (t *Testbed) SetDelay(d sim.Time) { t.WAN.SetDelay(d) }

// Nodes returns all nodes, cluster A first.
func (t *Testbed) Nodes() []*Node {
	out := make([]*Node, 0, len(t.A)+len(t.B))
	out = append(out, t.A...)
	out = append(out, t.B...)
	return out
}

// CrossPair returns the i-th node of each cluster, the standard WAN
// communication pair used throughout the paper's experiments.
func (t *Testbed) CrossPair(i int) (*Node, *Node) {
	return t.A[i%len(t.A)], t.B[i%len(t.B)]
}

// PaperDelays are the WAN delays the paper sweeps (Table 1 and all
// figures): 0 (LAN-like), 10 us, 100 us, 1 ms and 10 ms one-way.
func PaperDelays() []sim.Time {
	return []sim.Time{0, sim.Micros(10), sim.Micros(100), sim.Micros(1000), sim.Micros(10000)}
}
