// Package cluster builds the paper's experimental testbed (Fig. 2): two
// InfiniBand clusters, each with its own switch, joined by a pair of
// Obsidian Longbow XR WAN extenders. Cluster A models 32 dual-processor
// Xeon nodes, Cluster B models quad dual-core Xeon nodes, both with DDR
// HCAs; the WAN hop runs at SDR.
package cluster

import (
	"fmt"
	"strings"

	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/wan"
)

// Node is one compute node: an HCA plus a CPU resource used by software
// protocol stacks (TCP/IPoIB, NFS) to model host processing contention.
type Node struct {
	Name string
	HCA  *ib.HCA
	CPU  *sim.Resource
	// Cluster is "A" or "B".
	Cluster string
}

// Config sizes the testbed. Zero values select the paper's configuration.
type Config struct {
	NodesA int // default 32 (paper: 32 dual-CPU nodes)
	NodesB int // default 6 (paper: 6 quad dual-core nodes)
	CoresA int // default 2
	CoresB int // default 8
	// Delay is the initial one-way WAN delay.
	Delay sim.Time
	// LinkRate is the intra-cluster link rate (default DDR).
	LinkRate ib.Rate
	// LeafRadix, when nonzero, builds each cluster as a two-level fat
	// tree: nodes attach to leaf switches of this radix, and every leaf
	// uplinks to the cluster's spine switch (which also carries the WAN
	// uplink). Zero keeps the paper's single-switch cluster.
	LeafRadix int
}

func (c *Config) fill() {
	if c.NodesA == 0 {
		c.NodesA = 32
	}
	if c.NodesB == 0 {
		c.NodesB = 6
	}
	if c.CoresA == 0 {
		c.CoresA = 2
	}
	if c.CoresB == 0 {
		c.CoresB = 8
	}
	if c.LinkRate == 0 {
		c.LinkRate = ib.DDR
	}
}

// Testbed is the assembled cluster-of-clusters.
type Testbed struct {
	Env     *sim.Env
	Fabric  *ib.Fabric
	A, B    []*Node
	SwitchA *ib.Switch // cluster A spine
	SwitchB *ib.Switch // cluster B spine
	LeavesA []*ib.Switch
	LeavesB []*ib.Switch
	WAN     *wan.Pair
}

// New assembles the testbed on the given environment.
func New(env *sim.Env, cfg Config) *Testbed {
	cfg.fill()
	f := ib.NewFabric(env)
	tb := &Testbed{Env: env, Fabric: f}
	tb.SwitchA = f.AddSwitch("switch-A", ib.SwitchDelay)
	tb.SwitchB = f.AddSwitch("switch-B", ib.SwitchDelay)
	tb.WAN = wan.NewPair(f, "longbow", cfg.Delay)
	f.Connect(tb.SwitchA, tb.WAN.A.Device(), cfg.LinkRate, ib.DefaultCableDelay)
	f.Connect(tb.SwitchB, tb.WAN.B.Device(), cfg.LinkRate, ib.DefaultCableDelay)
	buildCluster := func(label string, count, cores int, spine *ib.Switch, leaves *[]*ib.Switch) []*Node {
		var nodes []*Node
		attach := func(n *Node, i int) {
			if cfg.LeafRadix <= 0 {
				f.Connect(n.HCA, spine, cfg.LinkRate, ib.DefaultCableDelay)
				return
			}
			leafIdx := i / cfg.LeafRadix
			for len(*leaves) <= leafIdx {
				leaf := f.AddSwitch(fmt.Sprintf("leaf-%s%d", label, len(*leaves)), ib.SwitchDelay)
				f.Connect(leaf, spine, cfg.LinkRate, ib.DefaultCableDelay)
				*leaves = append(*leaves, leaf)
			}
			f.Connect(n.HCA, (*leaves)[leafIdx], cfg.LinkRate, ib.DefaultCableDelay)
		}
		for i := 0; i < count; i++ {
			n := &Node{
				Name:    fmt.Sprintf("%s%02d", strings.ToLower(label), i),
				CPU:     sim.NewResource(env, cores),
				Cluster: label,
			}
			n.HCA = f.AddHCA(n.Name)
			attach(n, i)
			nodes = append(nodes, n)
		}
		return nodes
	}
	tb.A = buildCluster("A", cfg.NodesA, cfg.CoresA, tb.SwitchA, &tb.LeavesA)
	tb.B = buildCluster("B", cfg.NodesB, cfg.CoresB, tb.SwitchB, &tb.LeavesB)
	f.Finalize()
	return tb
}

// SetDelay reconfigures the WAN delay knob (valid between runs or at any
// quiescent point; in-flight packets keep the delay they departed with).
func (t *Testbed) SetDelay(d sim.Time) { t.WAN.SetDelay(d) }

// Nodes returns all nodes, cluster A first.
func (t *Testbed) Nodes() []*Node {
	out := make([]*Node, 0, len(t.A)+len(t.B))
	out = append(out, t.A...)
	out = append(out, t.B...)
	return out
}

// CrossPair returns the i-th node of each cluster, the standard WAN
// communication pair used throughout the paper's experiments.
func (t *Testbed) CrossPair(i int) (*Node, *Node) {
	return t.A[i%len(t.A)], t.B[i%len(t.B)]
}

// PaperDelays are the WAN delays the paper sweeps (Table 1 and all
// figures): 0 (LAN-like), 10 us, 100 us, 1 ms and 10 ms one-way.
func PaperDelays() []sim.Time {
	return []sim.Time{0, sim.Micros(10), sim.Micros(100), sim.Micros(1000), sim.Micros(10000)}
}
