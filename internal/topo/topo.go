// Package topo generalizes the paper's two-cluster testbed (Fig. 2) into a
// declarative N-site WAN topology: a Topology spec names sites (each an IB
// cluster with its own spine switch and optionally a two-level fat tree)
// and links (each a Longbow pair with its own delay, rate and optional
// fault plan), and Build compiles the spec onto one ib.Fabric. Routing
// across multi-hop site graphs (star, ring, mesh) falls out of the
// fabric's deterministic shortest-path subnet manager: every Longbow is a
// switch, so BFS by hop count with construction-order tie-breaking routes
// packets between non-adjacent sites through intermediate sites.
//
// The classic testbed is the degenerate two-site instance: cluster.New is
// a thin compatibility wrapper that builds Topology{Sites: {A, B}, Links:
// {A-B}} and reproduces the original device names, construction order and
// LID assignment byte-for-byte.
package topo

import (
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/wan"
)

// Site declares one cluster of the topology: a named group of nodes behind
// a spine switch.
type Site struct {
	// Name identifies the site; node Cluster labels and switch names
	// derive from it. Must be unique within the topology.
	Name string
	// Nodes is the number of compute nodes (must be >= 1).
	Nodes int
	// Cores is the per-node CPU core count (default 2).
	Cores int
	// LeafRadix, when nonzero, builds the site as a two-level fat tree:
	// nodes attach to leaf switches of this radix, every leaf uplinks to
	// the site spine. Zero keeps a single-switch site.
	LeafRadix int
}

// Link joins two sites through a Longbow WAN extender pair.
type Link struct {
	// A and B name the two sites the link joins.
	A, B string
	// Delay is the one-way WAN propagation delay (the emulated-distance
	// knob of the Longbow pair).
	Delay sim.Time
	// Rate is the long-haul data rate (default wan.WANRate, i.e. SDR).
	Rate ib.Rate
	// Fault, when non-nil, is a per-link fault plan armed on this link
	// only (its WAN levers: loss models, flaps, brownouts, rate steps,
	// permanent down). It takes precedence over a run-wide plan attached
	// to the environment, which arms every WAN link.
	Fault *fault.Plan
	// QueueBytes bounds the long-haul hop's per-direction egress queue.
	// Zero with ECN or Lossless set selects the link's bandwidth-delay
	// product (wan.BDPQueueBytes); zero with neither leaves the seed
	// model's unbounded FIFO. Queue admission is a pure function of
	// shard-local state, so bounded links stay shard-eligible.
	QueueBytes int
	// ECN enables congestion-experienced marking at half the queue bound
	// (see ib.QueueConfig).
	ECN bool
	// Lossless enables credit-based link-level flow control: packets
	// stall at a full queue instead of tail-dropping.
	Lossless bool
}

// Topology is the declarative spec of an N-site WAN deployment.
type Topology struct {
	Sites []Site
	Links []Link
	// LinkRate is the intra-site (and site-to-Longbow) link rate
	// (default ib.DDR).
	LinkRate ib.Rate
	// Shardable marks the spec as eligible for sharded parallel execution:
	// Build may partition the environment into one event shard per site
	// (sim.Env.Partition) when the run asks for shard workers and every
	// cross-site link can serve as a conservative channel bound between
	// its two site shards (per-direction lookahead). The
	// built-in presets set it; the classic two-site testbed (cluster.New)
	// leaves it false, so the paper's golden experiments never shard.
	Shardable bool
	// Failover, when non-nil, arms the fabric's self-healing routing layer
	// (ib.Fabric.EnableFailover) with this health configuration: every WAN
	// link is registered with the link-health monitor, scheduled outages
	// from the link's effective fault plan (per-link Fault, else a matching
	// run-wide plan) become debounced verdict edges, and each verdict edge
	// triggers a subnet re-sweep that routes around dead links. Nil keeps
	// the historical route-once behavior.
	Failover *ib.HealthConfig
}

// fill applies spec defaults without mutating the caller's slices.
func (t Topology) fill() Topology {
	if t.LinkRate == 0 {
		t.LinkRate = ib.DDR
	}
	sites := make([]Site, len(t.Sites))
	for i, s := range t.Sites {
		if s.Cores == 0 {
			s.Cores = 2
		}
		sites[i] = s
	}
	links := make([]Link, len(t.Links))
	for i, l := range t.Links {
		if l.Rate == 0 {
			l.Rate = wan.WANRate
		}
		links[i] = l
	}
	t.Sites, t.Links = sites, links
	return t
}

// Validate checks the spec: unique non-empty site names, positive node
// counts, links between distinct known sites with no duplicate pairs,
// non-negative delays, positive rates, valid per-link fault plans, and a
// connected site graph (every site reachable from the first).
func (t Topology) Validate() error {
	if len(t.Sites) == 0 {
		return fmt.Errorf("topo: no sites")
	}
	seen := make(map[string]bool, len(t.Sites))
	for i, s := range t.Sites {
		if s.Name == "" {
			return fmt.Errorf("topo: site %d has no name", i)
		}
		if seen[s.Name] {
			return fmt.Errorf("topo: duplicate site %q", s.Name)
		}
		seen[s.Name] = true
		if s.Nodes < 1 {
			return fmt.Errorf("topo: site %q has %d nodes, want >= 1", s.Name, s.Nodes)
		}
		if s.Cores < 1 {
			return fmt.Errorf("topo: site %q has %d cores, want >= 1", s.Name, s.Cores)
		}
		if s.LeafRadix < 0 {
			return fmt.Errorf("topo: site %q has negative leaf radix", s.Name)
		}
	}
	pairs := make(map[[2]string]bool, len(t.Links))
	for i, l := range t.Links {
		if !seen[l.A] || !seen[l.B] {
			return fmt.Errorf("topo: link %d joins unknown site (%q - %q)", i, l.A, l.B)
		}
		if l.A == l.B {
			return fmt.Errorf("topo: link %d joins site %q to itself", i, l.A)
		}
		key := [2]string{l.A, l.B}
		if l.B < l.A {
			key = [2]string{l.B, l.A}
		}
		if pairs[key] {
			return fmt.Errorf("topo: duplicate link %q - %q", l.A, l.B)
		}
		pairs[key] = true
		if l.Delay < 0 {
			return fmt.Errorf("topo: link %q - %q has negative delay %v", l.A, l.B, l.Delay)
		}
		if l.Rate <= 0 {
			return fmt.Errorf("topo: link %q - %q has non-positive rate", l.A, l.B)
		}
		if l.Fault != nil {
			if err := l.Fault.Validate(); err != nil {
				return fmt.Errorf("topo: link %q - %q fault plan: %w", l.A, l.B, err)
			}
		}
		if l.QueueBytes < 0 {
			return fmt.Errorf("topo: link %q - %q has negative queue bound %d", l.A, l.B, l.QueueBytes)
		}
	}
	if len(t.Sites) > 1 {
		// Connectivity: BFS over the site graph from the first site.
		adj := make(map[string][]string, len(t.Sites))
		for _, l := range t.Links {
			adj[l.A] = append(adj[l.A], l.B)
			adj[l.B] = append(adj[l.B], l.A)
		}
		reached := map[string]bool{t.Sites[0].Name: true}
		frontier := []string{t.Sites[0].Name}
		for len(frontier) > 0 {
			var next []string
			for _, s := range frontier {
				for _, nb := range adj[s] {
					if !reached[nb] {
						reached[nb] = true
						next = append(next, nb)
					}
				}
			}
			frontier = next
		}
		for _, s := range t.Sites {
			if !reached[s.Name] {
				return fmt.Errorf("topo: site %q unreachable from %q", s.Name, t.Sites[0].Name)
			}
		}
	}
	return nil
}

// WithDelay returns a copy of the topology with every link's delay set to d
// (the per-experiment delay sweep knob).
func (t Topology) WithDelay(d sim.Time) Topology {
	links := make([]Link, len(t.Links))
	copy(links, t.Links)
	for i := range links {
		links[i].Delay = d
	}
	t.Links = links
	return t
}

// WithQueue returns a copy of the topology with every link's congestion
// knobs set: a queue bound of bytes (0 selects the per-link BDP), ECN
// marking, and lossless credit flow control.
func (t Topology) WithQueue(bytes int, ecn, lossless bool) Topology {
	links := make([]Link, len(t.Links))
	copy(links, t.Links)
	for i := range links {
		links[i].QueueBytes = bytes
		links[i].ECN = ecn
		links[i].Lossless = lossless
	}
	t.Links = links
	return t
}

// WithNodes returns a copy of the topology with every site's node count set
// to n (Quick-mode world shrinking).
func (t Topology) WithNodes(n int) Topology {
	sites := make([]Site, len(t.Sites))
	copy(sites, t.Sites)
	for i := range sites {
		sites[i].Nodes = n
	}
	t.Sites = sites
	return t
}

// Node is one compute node: an HCA plus a CPU resource used by software
// protocol stacks (TCP/IPoIB, NFS) to model host processing contention.
type Node struct {
	Name string
	HCA  *ib.HCA
	CPU  *sim.Resource
	// Cluster is the name of the site the node belongs to. (The field name
	// survives from the two-site testbed, where the sites were "A" and "B";
	// every layer above keys on it as an opaque site id.)
	Cluster string
	// net is the owning network (nil for hand-assembled nodes).
	net *Network
}

// Site returns the name of the site the node belongs to.
func (n *Node) Site() string { return n.Cluster }

// Net returns the network the node was built into, or nil for nodes
// assembled outside the topology layer.
func (n *Node) Net() *Network { return n.net }

// SiteNet is one compiled site: its spec, nodes and switches.
type SiteNet struct {
	Spec   Site
	Nodes  []*Node
	Spine  *ib.Switch
	Leaves []*ib.Switch
}

// Name returns the site name.
func (s *SiteNet) Name() string { return s.Spec.Name }

// WANLink is one compiled inter-site link: the Longbow pair plus the names
// of the sites it joins (A faces Pair.A, B faces Pair.B).
type WANLink struct {
	A, B string
	Pair *wan.Pair
	name string
}

// Name returns the link's name (unique within the network; it prefixes the
// two Longbow device names, so per-link telemetry tracks inherit it).
func (l *WANLink) Name() string { return l.name }

// Joins reports whether the link directly joins sites a and b (in either
// order).
func (l *WANLink) Joins(a, b string) bool {
	return (l.A == a && l.B == b) || (l.A == b && l.B == a)
}

// Network is a compiled topology: the fabric, sites and WAN links.
type Network struct {
	Env    *sim.Env
	Fabric *ib.Fabric
	sites  []*SiteNet
	byName map[string]*SiteNet
	links  []*WANLink
	// adj lists each site's directly linked neighbor sites, in link
	// declaration order — the deterministic iteration order behind
	// BcastOrder.
	adj map[string][]string
}

// shardEligible reports whether Build may partition env into per-site
// shards for this spec: the spec opts in (Shardable), the run asked for
// shard workers, there is more than one site, the environment is not
// already a shard view, every WAN link has a positive delay (a zero-delay
// link cannot bound the lookahead), and every fault plan — per-link or
// run-wide — uses only shard-safe levers (WANDown/WANFlaps, pure functions
// of simulated time). Everything else falls back to the classic
// single-heap path, whose output is byte-for-byte unchanged; in
// particular, failover under a non-time-pure fault plan (where reactive
// health detection rather than a schedule drives re-sweeps) always runs
// classic.
func (t Topology) shardEligible(env *sim.Env) bool {
	if !t.Shardable || env.ShardWorkers() <= 1 || len(t.Sites) < 2 || env.Sharded() {
		return false
	}
	for _, lk := range t.Links {
		if lk.Delay <= 0 || !lk.Fault.ShardSafe() {
			return false
		}
	}
	return fault.PlanFromEnv(env).ShardSafe()
}

// Build compiles the topology onto a fresh fabric in env. Construction
// order is fixed — site spines in declaration order, then Longbow pairs in
// link order, then nodes site by site — so LID assignment, routing
// tie-breaks and therefore simulated results are a pure function of the
// spec. If the environment carries a run-wide fault plan it is armed on
// every WAN link its Link restriction matches (all of them when empty); a
// per-link Fault plan then overrides it on that link.
//
// When the spec and run qualify (see shardEligible), Build partitions env
// into one event shard per site and compiles each site's devices, node
// CPUs and — transitively — all software layered on them onto that site's
// shard view. WAN links become the cross-shard edges, each link's delay
// the conservative bound of its own directed channels, so Env.Run executes
// the sites in parallel — every shard's window sized by its own incoming
// links, not the world minimum — with output identical to the single-heap
// run.
func Build(env *sim.Env, t Topology) (*Network, error) {
	t = t.fill()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	f := ib.NewFabric(env)
	var views []*sim.Env // per-site shard views; nil on the classic path
	if t.shardEligible(env) {
		views = env.Partition(len(t.Sites))
	}
	siteEnv := func(i int) *sim.Env {
		if views == nil {
			return env
		}
		return views[i]
	}
	siteIdx := make(map[string]int, len(t.Sites))
	for i, s := range t.Sites {
		siteIdx[s.Name] = i
	}
	nw := &Network{
		Env:    env,
		Fabric: f,
		byName: make(map[string]*SiteNet, len(t.Sites)),
		adj:    make(map[string][]string, len(t.Sites)),
	}
	for i, spec := range t.Sites {
		f.UseEnv(siteEnv(i))
		sn := &SiteNet{Spec: spec, Spine: f.AddSwitch("switch-"+spec.Name, ib.SwitchDelay)}
		nw.sites = append(nw.sites, sn)
		nw.byName[spec.Name] = sn
	}
	f.UseEnv(env)
	for _, lk := range t.Links {
		// The single-link name stays the paper's "longbow", which keeps the
		// two-site device names (longbow-A, longbow-B) — and the golden
		// output — unchanged. Multi-link topologies qualify the name with
		// the site pair so Longbow device names (and the telemetry tracks
		// derived from them) identify their link.
		name := "longbow"
		if len(t.Links) > 1 {
			name = fmt.Sprintf("longbow[%s:%s]", lk.A, lk.B)
		}
		pair := wan.NewPairAcross(f, name, lk.A, lk.B, lk.Delay,
			siteEnv(siteIdx[lk.A]), siteEnv(siteIdx[lk.B]))
		if lk.Rate != wan.WANRate {
			if err := pair.Link().SetRate(lk.Rate); err != nil {
				return nil, fmt.Errorf("topo: link %s: %w", name, err)
			}
		}
		if lk.QueueBytes > 0 || lk.ECN || lk.Lossless {
			cfg := ib.QueueConfig{QueueBytes: lk.QueueBytes, ECN: lk.ECN, Lossless: lk.Lossless}
			if err := pair.EnableCongestion(cfg); err != nil {
				return nil, fmt.Errorf("topo: link %s: %w", name, err)
			}
		}
		f.Connect(nw.byName[lk.A].Spine, pair.A.Device(), t.LinkRate, ib.DefaultCableDelay)
		f.Connect(nw.byName[lk.B].Spine, pair.B.Device(), t.LinkRate, ib.DefaultCableDelay)
		if lk.Fault != nil {
			// Validated above; arming installs this link's own injector,
			// replacing the run-wide one NewPairBetween may have armed.
			lk.Fault.ArmWAN(env, pair.Link())
		}
		nw.links = append(nw.links, &WANLink{A: lk.A, B: lk.B, Pair: pair, name: name})
		nw.adj[lk.A] = append(nw.adj[lk.A], lk.B)
		nw.adj[lk.B] = append(nw.adj[lk.B], lk.A)
	}
	for si, sn := range nw.sites {
		f.UseEnv(siteEnv(si))
		prefix := strings.ToLower(sn.Spec.Name)
		for i := 0; i < sn.Spec.Nodes; i++ {
			n := &Node{
				Name:    fmt.Sprintf("%s%02d", prefix, i),
				CPU:     sim.NewResource(siteEnv(si), sn.Spec.Cores),
				Cluster: sn.Spec.Name,
				net:     nw,
			}
			n.HCA = f.AddHCA(n.Name)
			if sn.Spec.LeafRadix <= 0 {
				f.Connect(n.HCA, sn.Spine, t.LinkRate, ib.DefaultCableDelay)
			} else {
				leafIdx := i / sn.Spec.LeafRadix
				for len(sn.Leaves) <= leafIdx {
					leaf := f.AddSwitch(fmt.Sprintf("leaf-%s%d", sn.Spec.Name, len(sn.Leaves)), ib.SwitchDelay)
					f.Connect(leaf, sn.Spine, t.LinkRate, ib.DefaultCableDelay)
					sn.Leaves = append(sn.Leaves, leaf)
				}
				f.Connect(n.HCA, sn.Leaves[leafIdx], t.LinkRate, ib.DefaultCableDelay)
			}
			sn.Nodes = append(sn.Nodes, n)
		}
	}
	f.UseEnv(env)
	f.Finalize()
	rw := fault.PlanFromEnv(env)
	if rw != nil && rw.Link != "" {
		matched := false
		for _, lk := range t.Links {
			if rw.MatchesLink(lk.A, lk.B) {
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("topo: fault plan targets unknown link %q", rw.Link)
		}
	}
	if t.Failover != nil {
		// Register every WAN link with the health monitor. A link's outage
		// schedule comes from its effective plan: the per-link Fault if set,
		// else a run-wide plan whose Link restriction matches; links with no
		// plan register with no schedule (reactive detection only).
		for i, lk := range t.Links {
			plan := lk.Fault
			if plan == nil && rw.MatchesLink(lk.A, lk.B) {
				plan = rw
			}
			f.MonitorLink(nw.links[i].Pair.Link(), nw.links[i].Name(), plan.DownEdges())
		}
		if err := f.EnableFailover(*t.Failover); err != nil {
			return nil, err
		}
	}
	return nw, nil
}

// MustBuild is Build for specs known valid at compile time (presets,
// examples); it panics on error.
func MustBuild(env *sim.Env, t Topology) *Network {
	nw, err := Build(env, t)
	if err != nil {
		panic(err)
	}
	return nw
}

// Sites returns the compiled sites in declaration order.
func (nw *Network) Sites() []*SiteNet { return nw.sites }

// Site returns the compiled site with the given name (nil if unknown).
func (nw *Network) Site(name string) *SiteNet { return nw.byName[name] }

// Links returns the compiled WAN links in declaration order.
func (nw *Network) Links() []*WANLink { return nw.links }

// Link returns the link directly joining sites a and b, or nil.
func (nw *Network) Link(a, b string) *WANLink {
	for _, l := range nw.links {
		if l.Joins(a, b) {
			return l
		}
	}
	return nil
}

// Nodes returns every node, sites in declaration order.
func (nw *Network) Nodes() []*Node {
	var out []*Node
	for _, s := range nw.sites {
		out = append(out, s.Nodes...)
	}
	return out
}

// SetDelay reconfigures the one-way delay of every WAN link (the
// all-links sweep knob; per-link control is SetLinkDelay).
func (nw *Network) SetDelay(d sim.Time) {
	for _, l := range nw.links {
		l.Pair.SetDelay(d)
	}
}

// SetLinkDelay reconfigures the one-way delay of the link joining a and b.
func (nw *Network) SetLinkDelay(a, b string, d sim.Time) error {
	l := nw.Link(a, b)
	if l == nil {
		return fmt.Errorf("topo: no link %q - %q", a, b)
	}
	l.Pair.SetDelay(d)
	return nil
}

// BcastOrder returns the sites reachable from root in breadth-first order
// (root first; neighbors visited in link declaration order, so the order —
// and everything layered on it, like the hierarchical collectives' site
// trees — is a pure function of the spec) together with each site's BFS
// parent (absent for root).
func (nw *Network) BcastOrder(root string) (order []string, parent map[string]string) {
	parent = make(map[string]string, len(nw.sites))
	seen := map[string]bool{root: true}
	order = append(order, root)
	frontier := []string{root}
	for len(frontier) > 0 {
		var next []string
		for _, s := range frontier {
			for _, nb := range nw.adj[s] {
				if !seen[nb] {
					seen[nb] = true
					parent[nb] = s
					order = append(order, nb)
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	return order, parent
}
