package topo

import (
	"fmt"

	"repro/internal/sim"
)

// presetNames lists the built-in topology presets in display order.
var presetNames = []string{"paper", "star3", "star3-hetero", "ring4", "mesh4"}

// PresetNames returns the names Preset accepts, in display order.
func PresetNames() []string {
	out := make([]string, len(presetNames))
	copy(out, presetNames)
	return out
}

// Preset returns a named built-in topology. nodesPerSite sizes every site
// except the paper preset's fixed 32/6 split (pass 0 for defaults: the
// paper sizes, or 4 nodes per site elsewhere); delay is applied to every
// link.
//
//	paper          the two-site testbed of Fig. 2 (A: 32x2-core, B: 6x8-core)
//	star3          hub + two satellite sites, all traffic through the hub
//	star3-hetero   hub + three satellites with heterogeneous link delays:
//	               hub–s1 at the base delay (a metro hop), hub–s2 and
//	               hub–s3 at 10x (transcontinental hops)
//	ring4          four sites in a cycle, two disjoint paths between any pair
//	mesh4          four sites, a dedicated link between every pair
//
// star3 sites use LeafRadix 2, exercising the two-level fat tree under
// multi-site experiments. star3-hetero is the channel-clock scheduler's
// stress shape: under a global minimum lookahead the short metro link
// would force its 1x windows on the 10x links' shards; per-channel bounds
// let each shard's horizon follow its own incoming links.
func Preset(name string, nodesPerSite int, delay sim.Time) (Topology, error) {
	n := nodesPerSite
	switch name {
	case "paper":
		a, b := 32, 6
		if n > 0 {
			a, b = n, n
		}
		return Topology{
			Sites: []Site{
				{Name: "A", Nodes: a, Cores: 2},
				{Name: "B", Nodes: b, Cores: 8},
			},
			Links:     []Link{{A: "A", B: "B", Delay: delay}},
			Shardable: true,
		}, nil
	case "star3":
		if n <= 0 {
			n = 4
		}
		return Topology{
			Sites: []Site{
				{Name: "hub", Nodes: n, LeafRadix: 2},
				{Name: "s1", Nodes: n, LeafRadix: 2},
				{Name: "s2", Nodes: n, LeafRadix: 2},
			},
			Links: []Link{
				{A: "hub", B: "s1", Delay: delay},
				{A: "hub", B: "s2", Delay: delay},
			},
			Shardable: true,
		}, nil
	case "star3-hetero":
		if n <= 0 {
			n = 4
		}
		return Topology{
			Sites: []Site{
				{Name: "hub", Nodes: n, LeafRadix: 2},
				{Name: "s1", Nodes: n, LeafRadix: 2},
				{Name: "s2", Nodes: n, LeafRadix: 2},
				{Name: "s3", Nodes: n, LeafRadix: 2},
			},
			Links: []Link{
				{A: "hub", B: "s1", Delay: delay},
				{A: "hub", B: "s2", Delay: 10 * delay},
				{A: "hub", B: "s3", Delay: 10 * delay},
			},
			Shardable: true,
		}, nil
	case "ring4":
		if n <= 0 {
			n = 4
		}
		return Topology{
			Sites: []Site{
				{Name: "r0", Nodes: n},
				{Name: "r1", Nodes: n},
				{Name: "r2", Nodes: n},
				{Name: "r3", Nodes: n},
			},
			Links: []Link{
				{A: "r0", B: "r1", Delay: delay},
				{A: "r1", B: "r2", Delay: delay},
				{A: "r2", B: "r3", Delay: delay},
				{A: "r3", B: "r0", Delay: delay},
			},
			Shardable: true,
		}, nil
	case "mesh4":
		if n <= 0 {
			n = 4
		}
		return Topology{
			Sites: []Site{
				{Name: "m0", Nodes: n},
				{Name: "m1", Nodes: n},
				{Name: "m2", Nodes: n},
				{Name: "m3", Nodes: n},
			},
			Links: []Link{
				{A: "m0", B: "m1", Delay: delay},
				{A: "m0", B: "m2", Delay: delay},
				{A: "m0", B: "m3", Delay: delay},
				{A: "m1", B: "m2", Delay: delay},
				{A: "m1", B: "m3", Delay: delay},
				{A: "m2", B: "m3", Delay: delay},
			},
			Shardable: true,
		}, nil
	default:
		return Topology{}, fmt.Errorf("topo: unknown preset %q (have %v)", name, presetNames)
	}
}
