package topo

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/ib"
	"repro/internal/perftest"
	"repro/internal/sim"
)

func twoSites() Topology {
	return Topology{
		Sites: []Site{{Name: "A", Nodes: 1}, {Name: "B", Nodes: 1}},
		Links: []Link{{A: "A", B: "B"}},
	}
}

func TestValidateRejectsMalformedSpecs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Topology)
		want string
	}{
		{"no sites", func(tp *Topology) { tp.Sites = nil }, "no sites"},
		{"empty name", func(tp *Topology) { tp.Sites[0].Name = "" }, "no name"},
		{"dup site", func(tp *Topology) { tp.Sites[1].Name = "A" }, "duplicate site"},
		{"zero nodes", func(tp *Topology) { tp.Sites[0].Nodes = 0 }, "nodes"},
		{"negative radix", func(tp *Topology) { tp.Sites[0].LeafRadix = -1 }, "leaf radix"},
		{"unknown site", func(tp *Topology) { tp.Links[0].B = "C" }, "unknown site"},
		{"self link", func(tp *Topology) { tp.Links[0].B = "A" }, "to itself"},
		{"dup link", func(tp *Topology) {
			tp.Links = append(tp.Links, Link{A: "B", B: "A"})
		}, "duplicate link"},
		{"negative delay", func(tp *Topology) { tp.Links[0].Delay = -1 }, "negative delay"},
		{"disconnected", func(tp *Topology) {
			tp.Sites = append(tp.Sites, Site{Name: "C", Nodes: 1})
		}, "unreachable"},
		{"bad fault plan", func(tp *Topology) {
			tp.Links[0].Fault = &fault.Plan{WANLoss: 2}
		}, "fault plan"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tp := twoSites()
			c.mut(&tp)
			err := tp.fill().Validate()
			if err == nil {
				t.Fatalf("Validate accepted a spec with %s", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
	if err := twoSites().fill().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestBuildShape(t *testing.T) {
	env := sim.NewEnv()
	defer env.Shutdown()
	nw, err := Build(env, Topology{
		Sites: []Site{
			{Name: "hub", Nodes: 4, LeafRadix: 2},
			{Name: "s1", Nodes: 2},
			{Name: "s2", Nodes: 3, Cores: 8},
		},
		Links: []Link{
			{A: "hub", B: "s1", Delay: sim.Micros(100)},
			{A: "hub", B: "s2", Delay: sim.Micros(200)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(nw.Sites()); got != 3 {
		t.Fatalf("sites = %d, want 3", got)
	}
	if got := len(nw.Links()); got != 2 {
		t.Fatalf("links = %d, want 2", got)
	}
	if got := len(nw.Nodes()); got != 9 {
		t.Fatalf("nodes = %d, want 9", got)
	}
	hub := nw.Site("hub")
	if len(hub.Leaves) != 2 {
		t.Errorf("hub leaves = %d, want 2 (4 nodes at radix 2)", len(hub.Leaves))
	}
	if name := hub.Nodes[0].Name; name != "hub00" {
		t.Errorf("first hub node named %q, want hub00", name)
	}
	if site := hub.Nodes[0].Site(); site != "hub" {
		t.Errorf("node site = %q, want hub", site)
	}
	if hub.Nodes[0].Net() != nw {
		t.Error("node does not point back at its network")
	}
	// Multi-link topologies qualify Longbow names with the site pair.
	if name := nw.Links()[0].Name(); name != "longbow[hub:s1]" {
		t.Errorf("link 0 named %q, want longbow[hub:s1]", name)
	}
	if l := nw.Link("s1", "hub"); l != nw.Links()[0] {
		t.Error("Link lookup is not order-insensitive")
	}
	if l := nw.Link("s1", "s2"); l != nil {
		t.Error("Link invented a nonexistent s1-s2 link")
	}
	if d := nw.Links()[1].Pair.Delay(); d != sim.Micros(200) {
		t.Errorf("link 1 delay = %v, want 200us", d)
	}
	if err := nw.SetLinkDelay("hub", "s2", sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if d := nw.Links()[1].Pair.Delay(); d != sim.Millisecond {
		t.Errorf("per-link SetLinkDelay not applied: %v", d)
	}
	if err := nw.SetLinkDelay("s1", "s2", 0); err == nil {
		t.Error("SetLinkDelay accepted a nonexistent link")
	}
}

func TestSingleLinkKeepsPaperNames(t *testing.T) {
	env := sim.NewEnv()
	defer env.Shutdown()
	nw, err := Build(env, twoSites())
	if err != nil {
		t.Fatal(err)
	}
	// The degenerate two-site case must keep the classic device names —
	// the golden-output byte identity of the compatibility path rides on
	// this.
	if name := nw.Links()[0].Name(); name != "longbow" {
		t.Errorf("single link named %q, want longbow", name)
	}
	if n := nw.Links()[0].Pair.A.Name(); n != "longbow-A" {
		t.Errorf("Longbow end named %q, want longbow-A", n)
	}
}

func TestPresetsBuild(t *testing.T) {
	for _, name := range PresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := Preset(name, 2, sim.Micros(10))
			if err != nil {
				t.Fatal(err)
			}
			env := sim.NewEnv()
			defer env.Shutdown()
			nw, err := Build(env, spec)
			if err != nil {
				t.Fatal(err)
			}
			// Every preset must route end to end between any site pair.
			a := nw.Sites()[0].Nodes[0].HCA
			b := nw.Sites()[len(nw.Sites())-1].Nodes[0].HCA
			lat := perftest.PingRC(env, a, b, 8, 4, ib.QPConfig{})
			if lat <= 0 {
				t.Errorf("ping latency = %v", lat)
			}
		})
	}
	if _, err := Preset("nope", 0, 0); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestBcastOrderRing(t *testing.T) {
	env := sim.NewEnv()
	defer env.Shutdown()
	spec, err := Preset("ring4", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Build(env, spec)
	if err != nil {
		t.Fatal(err)
	}
	order, parent := nw.BcastOrder("r0")
	want := []string{"r0", "r1", "r3", "r2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("BcastOrder(r0) = %v, want %v", order, want)
	}
	wantParent := map[string]string{"r1": "r0", "r3": "r0", "r2": "r1"}
	for s, p := range wantParent {
		if parent[s] != p {
			t.Errorf("parent[%s] = %q, want %q", s, parent[s], p)
		}
	}
}

// TestMultiHopRouting pins that packets between non-adjacent ring sites
// route through an intermediate site: the one-way r0-r2 path pays two WAN
// link delays, the r0-r1 path one.
func TestMultiHopRouting(t *testing.T) {
	d := sim.Millisecond
	lat := func(from, to string) sim.Time {
		env := sim.NewEnv()
		defer env.Shutdown()
		spec, err := Preset("ring4", 1, d)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := Build(env, spec)
		if err != nil {
			t.Fatal(err)
		}
		return perftest.PingRC(env, nw.Site(from).Nodes[0].HCA, nw.Site(to).Nodes[0].HCA, 8, 4, ib.QPConfig{})
	}
	oneHop := lat("r0", "r1")
	twoHop := lat("r0", "r2")
	extra := twoHop - oneHop
	// One extra WAN hop on the one-way path: ~d more.
	if extra < d-sim.Micros(100) || extra > d+sim.Micros(100) {
		t.Errorf("two-hop latency %v vs one-hop %v: extra %v, want ~%v", twoHop, oneHop, extra, d)
	}
}

// TestPerLinkFault pins per-link fault isolation: a WANDown plan on one
// star link kills traffic crossing it while the sibling link keeps
// working.
func TestPerLinkFault(t *testing.T) {
	env := sim.NewEnv()
	defer env.Shutdown()
	spec, err := Preset("star3", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec.Links[0].Fault = &fault.Plan{WANDown: true} // hub-s1 dead
	nw, err := Build(env, spec)
	if err != nil {
		t.Fatal(err)
	}
	hub := nw.Site("hub").Nodes[0].HCA
	qcfg := ib.QPConfig{RetryLimit: 4, RetryTimeout: sim.Millisecond}
	// The healthy link still carries traffic.
	if lat := perftest.PingRC(env, hub, nw.Site("s2").Nodes[0].HCA, 8, 2, qcfg); lat <= 0 {
		t.Errorf("healthy link latency = %v", lat)
	}
	// The dead link fails with retry exhaustion (PingRC panics on
	// completion errors).
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ping across the dead link succeeded")
			}
		}()
		perftest.PingRC(env, hub, nw.Site("s1").Nodes[0].HCA, 8, 2, qcfg)
	}()
}

// TestWithDelayWithNodes pins the copy-on-write sweep helpers.
func TestWithDelayWithNodes(t *testing.T) {
	base, err := Preset("ring4", 4, sim.Micros(10))
	if err != nil {
		t.Fatal(err)
	}
	mod := base.WithDelay(sim.Millisecond).WithNodes(2)
	for i, l := range mod.Links {
		if l.Delay != sim.Millisecond {
			t.Errorf("link %d delay = %v", i, l.Delay)
		}
	}
	for i, s := range mod.Sites {
		if s.Nodes != 2 {
			t.Errorf("site %d nodes = %d", i, s.Nodes)
		}
	}
	// The originals must be untouched.
	if base.Links[0].Delay != sim.Micros(10) || base.Sites[0].Nodes != 4 {
		t.Error("WithDelay/WithNodes mutated the receiver")
	}
}
