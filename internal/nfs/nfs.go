// Package nfs implements the NFS server and client the paper benchmarks
// (§2.3, §3.6): a single-server, multi-threaded-client file service whose
// RPCs run over either the RDMA transport (NFS/RDMA direct data placement)
// or TCP over IPoIB (NFS/IPoIB), plus an IOzone-style throughput benchmark.
//
// The transport difference the paper measures is modeled explicitly: the
// TCP path touches every byte on the server (socket copies, ~2 ns/B on the
// node CPU) while the RDMA path only references page-cache pages
// (~0.15 ns/B), reflecting "the absence of additional copy overheads and
// lower CPU utilization in the NFS/RDMA design".
package nfs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// NFS procedure numbers (v3-flavoured subset).
const (
	ProcNull uint32 = iota
	ProcGetattr
	ProcLookup
	ProcRead
	ProcWrite
	ProcCreate
)

// Status codes.
const (
	OK uint32 = iota
	ErrNoEnt
	ErrExist
	ErrIO
)

// Server data-touch costs per byte, charged on the server's serialized
// data context (see Server.ioCtx).
const (
	TCPTouchNanos  = 2.0  // socket copy + checksum path
	RDMATouchNanos = 0.15 // page-cache reference only
	// PerOpCPU is the fixed per-RPC server cost (dispatch, fh lookup,
	// attribute handling).
	PerOpCPU = 15 * sim.Microsecond
)

// DefaultThreads is the nfsd thread-pool size.
const DefaultThreads = 32

// File is an in-memory file. Data nil means a synthetic file of Size bytes
// (reads return zeros and writes are accounted but not stored), used by
// the large benchmark files.
type File struct {
	Name string
	FH   uint64
	Data []byte
	Size int64
}

// Server is the NFS server instance bound to a node.
type Server struct {
	node       *cluster.Node
	files      map[string]*File
	byFH       map[uint64]*File
	nextFH     uint64
	touchNanos float64
	ops        int64
	// ioCtx serializes the server's data-touch path (the single
	// copy/checksum context of a 2008-era NFS server). On the TCP
	// transport this is the dominant cost the paper's NFS/RDMA design
	// eliminates; on the RDMA transport the per-byte touch is a page
	// reference and the context is effectively idle.
	ioCtx *sim.Resource
}

// NewServer creates an NFS server on the node; touchNanos is the per-byte
// server data-touch cost for the transport it will serve (TCPTouchNanos or
// RDMATouchNanos).
func NewServer(node *cluster.Node, touchNanos float64) *Server {
	return &Server{
		node:       node,
		files:      make(map[string]*File),
		byFH:       make(map[uint64]*File),
		touchNanos: touchNanos,
		ioCtx:      sim.NewResource(node.HCA.Env(), 1),
	}
}

// Node returns the server's node.
func (s *Server) Node() *cluster.Node { return s.node }

// Ops returns the number of RPCs served.
func (s *Server) Ops() int64 { return s.ops }

// AddFile installs a file with real contents.
func (s *Server) AddFile(name string, data []byte) *File {
	return s.install(&File{Name: name, Data: data, Size: int64(len(data))})
}

// AddSyntheticFile installs a file with a size but no stored bytes.
func (s *Server) AddSyntheticFile(name string, size int64) *File {
	return s.install(&File{Name: name, Size: size})
}

func (s *Server) install(f *File) *File {
	if _, dup := s.files[f.Name]; dup {
		panic(fmt.Sprintf("nfs: file %q exists", f.Name))
	}
	s.nextFH++
	f.FH = s.nextFH
	s.files[f.Name] = f
	s.byFH[f.FH] = f
	return f
}

// Handler returns the rpc.Handler serving this file system.
func (s *Server) Handler() rpc.Handler {
	return func(p *sim.Proc, req *rpc.Request) *rpc.Reply {
		s.ops++
		s.node.CPU.Use(p, PerOpCPU)
		switch req.Proc {
		case ProcNull:
			return &rpc.Reply{Meta: statusMeta(OK)}
		case ProcGetattr:
			return s.getattr(req)
		case ProcLookup:
			return s.lookup(req)
		case ProcRead:
			return s.read(p, req)
		case ProcWrite:
			return s.write(p, req)
		case ProcCreate:
			return s.create(req)
		default:
			return &rpc.Reply{Meta: statusMeta(ErrIO)}
		}
	}
}

func (s *Server) getattr(req *rpc.Request) *rpc.Reply {
	fh := binary.LittleEndian.Uint64(req.Meta)
	f := s.byFH[fh]
	if f == nil {
		return &rpc.Reply{Meta: statusMeta(ErrNoEnt)}
	}
	meta := make([]byte, 4+8)
	binary.LittleEndian.PutUint32(meta, OK)
	binary.LittleEndian.PutUint64(meta[4:], uint64(f.Size))
	return &rpc.Reply{Meta: meta}
}

func (s *Server) lookup(req *rpc.Request) *rpc.Reply {
	name := string(req.Meta)
	f := s.files[name]
	if f == nil {
		return &rpc.Reply{Meta: statusMeta(ErrNoEnt)}
	}
	meta := make([]byte, 4+8+8)
	binary.LittleEndian.PutUint32(meta, OK)
	binary.LittleEndian.PutUint64(meta[4:], f.FH)
	binary.LittleEndian.PutUint64(meta[12:], uint64(f.Size))
	return &rpc.Reply{Meta: meta}
}

func (s *Server) create(req *rpc.Request) *rpc.Reply {
	name := string(req.Meta[8:])
	size := int64(binary.LittleEndian.Uint64(req.Meta))
	if _, dup := s.files[name]; dup {
		return &rpc.Reply{Meta: statusMeta(ErrExist)}
	}
	var f *File
	if size < 0 {
		f = s.install(&File{Name: name, Data: []byte{}})
	} else {
		f = s.install(&File{Name: name, Size: size})
	}
	meta := make([]byte, 4+8)
	binary.LittleEndian.PutUint32(meta, OK)
	binary.LittleEndian.PutUint64(meta[4:], f.FH)
	return &rpc.Reply{Meta: meta}
}

func (s *Server) read(p *sim.Proc, req *rpc.Request) *rpc.Reply {
	fh := binary.LittleEndian.Uint64(req.Meta)
	off := int64(binary.LittleEndian.Uint64(req.Meta[8:]))
	count := int(binary.LittleEndian.Uint32(req.Meta[16:]))
	f := s.byFH[fh]
	if f == nil {
		return &rpc.Reply{Meta: statusMeta(ErrNoEnt)}
	}
	if off >= f.Size {
		return &rpc.Reply{Meta: statusMeta(OK)}
	}
	if int64(count) > f.Size-off {
		count = int(f.Size - off)
	}
	// Server-side data touch (copies on the TCP path, page references on
	// the RDMA path), serialized on the server's data context.
	s.ioCtx.Use(p, sim.Time(float64(count)*s.touchNanos))
	if f.Data != nil {
		return &rpc.Reply{Meta: statusMeta(OK), Bulk: f.Data[off : off+int64(count)]}
	}
	return &rpc.Reply{Meta: statusMeta(OK), BulkLen: count}
}

func (s *Server) write(p *sim.Proc, req *rpc.Request) *rpc.Reply {
	fh := binary.LittleEndian.Uint64(req.Meta)
	off := int64(binary.LittleEndian.Uint64(req.Meta[8:]))
	f := s.byFH[fh]
	if f == nil {
		return &rpc.Reply{Meta: statusMeta(ErrNoEnt)}
	}
	n := len(req.WriteBulk)
	if req.WriteBulk == nil {
		n = req.WriteLen
	}
	s.ioCtx.Use(p, sim.Time(float64(n)*s.touchNanos))
	if f.Data != nil && req.WriteBulk != nil {
		need := off + int64(n)
		for int64(len(f.Data)) < need {
			f.Data = append(f.Data, 0)
		}
		copy(f.Data[off:], req.WriteBulk)
		if need > f.Size {
			f.Size = need
		}
	} else if off+int64(n) > f.Size {
		f.Size = off + int64(n)
	}
	meta := make([]byte, 4+4)
	binary.LittleEndian.PutUint32(meta, OK)
	binary.LittleEndian.PutUint32(meta[4:], uint32(n))
	return &rpc.Reply{Meta: meta}
}

func statusMeta(st uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, st)
	return b
}
