package nfs

import (
	"fmt"

	"repro/internal/sim"
)

// IOzoneConfig describes an IOzone-style run (paper §3.6: a 512 MB file
// with a 256 KB record size, single server, multi-threaded client).
type IOzoneConfig struct {
	FileSize   int64 // default 512 MB
	RecordSize int   // default 256 KB
	Threads    int   // default 1
	Write      bool  // measure writes instead of reads
}

func (c *IOzoneConfig) fill() {
	if c.FileSize == 0 {
		c.FileSize = 512 << 20
	}
	if c.RecordSize == 0 {
		c.RecordSize = 256 << 10
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
}

// IOzone runs the benchmark on an already-mounted client against the named
// synthetic file and returns throughput in MillionBytes/s. Each thread
// works a contiguous stripe of the file, record by record, as IOzone's
// multi-threaded mode does. The simulation runs inside this call.
//
// When the client knows its home environment (NewClientOn), the workload
// threads run there — on a partitioned world that is the client node's
// shard, where the mount's RPC completion events live.
func IOzone(env *sim.Env, c *Client, file string, cfg IOzoneConfig) float64 {
	cfg.fill()
	if c.env != nil {
		env = c.env
	}
	var fh uint64
	var elapsed sim.Time
	env.Go("iozone-main", func(p *sim.Proc) {
		var err error
		fh, _, err = c.Lookup(p, file)
		if err != nil {
			panic(fmt.Sprintf("nfs: iozone lookup: %v", err))
		}
		stripe := cfg.FileSize / int64(cfg.Threads)
		start := p.Now()
		left := cfg.Threads
		done := env.NewEvent()
		for i := 0; i < cfg.Threads; i++ {
			lo := int64(i) * stripe
			hi := lo + stripe
			if i == cfg.Threads-1 {
				hi = cfg.FileSize
			}
			env.Go(fmt.Sprintf("iozone-%d", i), func(pt *sim.Proc) {
				for off := lo; off < hi; off += int64(cfg.RecordSize) {
					count := cfg.RecordSize
					if int64(count) > hi-off {
						count = int(hi - off)
					}
					var err error
					if cfg.Write {
						_, err = c.Write(pt, fh, off, nil, count)
					} else {
						_, err = c.Read(pt, fh, off, count, nil)
					}
					if err != nil {
						panic(fmt.Sprintf("nfs: iozone io: %v", err))
					}
				}
				if left--; left == 0 {
					done.Trigger(nil)
				}
			})
		}
		p.Wait(done)
		elapsed = p.Now() - start
		env.Stop()
	})
	env.Run()
	if elapsed <= 0 {
		// The run ended without the workload advancing virtual time (a
		// deadlocked or instantly-failed transport): surface it instead of
		// reporting an infinite throughput.
		panic("nfs: iozone made no progress")
	}
	return float64(cfg.FileSize) / elapsed.Seconds() / 1e6
}
