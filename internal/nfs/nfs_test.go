package nfs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/ipoib"
	"repro/internal/sim"
)

func testbed(delay sim.Time) (*sim.Env, *cluster.Testbed) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	return env, tb
}

// run executes fn in a fresh process and runs the sim to completion.
func run(env *sim.Env, fn func(p *sim.Proc)) {
	env.Go("test", func(p *sim.Proc) {
		fn(p)
		env.Stop()
	})
	env.Run()
}

func TestLookupGetattrRDMA(t *testing.T) {
	env, tb := testbed(sim.Micros(100))
	defer env.Shutdown()
	srv, cl := MountRDMA(tb.B[0], tb.A[0])
	srv.AddSyntheticFile("big", 1<<30)
	run(env, func(p *sim.Proc) {
		fh, size, err := cl.Lookup(p, "big")
		if err != nil || size != 1<<30 {
			t.Errorf("Lookup = fh %d size %d err %v", fh, size, err)
		}
		sz, err := cl.Getattr(p, fh)
		if err != nil || sz != 1<<30 {
			t.Errorf("Getattr = %d, %v", sz, err)
		}
		if _, _, err := cl.Lookup(p, "missing"); err != ErrNotFound {
			t.Errorf("Lookup(missing) err = %v", err)
		}
	})
}

func TestReadWriteDataRDMA(t *testing.T) {
	env, tb := testbed(sim.Micros(100))
	defer env.Shutdown()
	srv, cl := MountRDMA(tb.B[0], tb.A[0])
	content := make([]byte, 20000)
	rand.New(rand.NewSource(5)).Read(content)
	srv.AddFile("data", append([]byte(nil), content...))
	run(env, func(p *sim.Proc) {
		fh, _, _ := cl.Lookup(p, "data")
		buf := make([]byte, 8192)
		n, err := cl.Read(p, fh, 4096, 8192, buf)
		if err != nil || n != 8192 {
			t.Fatalf("Read = %d, %v", n, err)
		}
		if !bytes.Equal(buf, content[4096:4096+8192]) {
			t.Error("RDMA read data mismatch")
		}
		// Overwrite a region and read it back.
		patch := []byte("PATCHED-REGION-0123456789")
		if _, err := cl.Write(p, fh, 100, patch, 0); err != nil {
			t.Fatalf("Write: %v", err)
		}
		rb := make([]byte, len(patch))
		cl.Read(p, fh, 100, len(patch), rb)
		if !bytes.Equal(rb, patch) {
			t.Errorf("read-back = %q, want %q", rb, patch)
		}
	})
}

func TestReadWriteDataTCP(t *testing.T) {
	for _, mode := range []ipoib.Mode{ipoib.Datagram, ipoib.Connected} {
		env, tb := testbed(sim.Micros(10))
		srv, cl, _ := MountTCP(env, tb.B[0], tb.A[0], mode)
		content := make([]byte, 30000)
		rand.New(rand.NewSource(6)).Read(content)
		srv.AddFile("data", append([]byte(nil), content...))
		run(env, func(p *sim.Proc) {
			fh, size, err := cl.Lookup(p, "data")
			if err != nil || size != 30000 {
				t.Fatalf("mode %v: Lookup = %d, %v", mode, size, err)
			}
			buf := make([]byte, 30000)
			n, err := cl.Read(p, fh, 0, 30000, buf)
			if err != nil || n != 30000 {
				t.Fatalf("mode %v: Read = %d, %v", mode, n, err)
			}
			if !bytes.Equal(buf, content) {
				t.Errorf("mode %v: TCP read mismatch", mode)
			}
			patch := []byte("tcp write path check")
			cl.Write(p, fh, 12345, patch, 0)
			rb := make([]byte, len(patch))
			cl.Read(p, fh, 12345, len(patch), rb)
			if !bytes.Equal(rb, patch) {
				t.Errorf("mode %v: write/read-back mismatch", mode)
			}
		})
		env.Shutdown()
	}
}

func TestCreate(t *testing.T) {
	env, tb := testbed(0)
	defer env.Shutdown()
	srv, cl := MountRDMA(tb.B[0], tb.A[0])
	_ = srv
	run(env, func(p *sim.Proc) {
		fh, err := cl.Create(p, "new", 4096)
		if err != nil || fh == 0 {
			t.Fatalf("Create = %d, %v", fh, err)
		}
		if _, err := cl.Create(p, "new", 4096); err != ErrExists {
			t.Errorf("duplicate Create err = %v", err)
		}
		sz, _ := cl.Getattr(p, fh)
		if sz != 4096 {
			t.Errorf("size = %d", sz)
		}
	})
}

func TestConcurrentThreadsShareMount(t *testing.T) {
	env, tb := testbed(sim.Micros(100))
	defer env.Shutdown()
	srv, cl := MountRDMA(tb.B[0], tb.A[0])
	srv.AddSyntheticFile("f", 10<<20)
	bw := IOzone(env, cl, "f", IOzoneConfig{FileSize: 10 << 20, RecordSize: 256 << 10, Threads: 4})
	if bw <= 0 {
		t.Fatalf("IOzone bw = %v", bw)
	}
	if srv.Ops() < 40 {
		t.Errorf("server ops = %d, expected ~41 (40 reads + lookup)", srv.Ops())
	}
}

func TestIOzoneThreadScalingRDMA(t *testing.T) {
	// Paper Fig. 13(a): throughput rises with client threads.
	measure := func(threads int) float64 {
		env, tb := testbed(sim.Micros(100))
		defer env.Shutdown()
		srv, cl := MountRDMA(tb.B[0], tb.A[0])
		srv.AddSyntheticFile("f", 64<<20)
		return IOzone(env, cl, "f", IOzoneConfig{FileSize: 64 << 20, Threads: threads})
	}
	one := measure(1)
	eight := measure(8)
	if eight < one*1.5 {
		t.Errorf("thread scaling: 1 thread %.1f, 8 threads %.1f MB/s", one, eight)
	}
}

func TestRDMABeatsTCPAtModerateDelay(t *testing.T) {
	// Paper Fig. 13(b), 100 us delay: NFS/RDMA > NFS/IPoIB-RC > NFS/IPoIB-UD.
	rdma := func() float64 {
		env, tb := testbed(sim.Micros(100))
		defer env.Shutdown()
		srv, cl := MountRDMA(tb.B[0], tb.A[0])
		srv.AddSyntheticFile("f", 64<<20)
		return IOzone(env, cl, "f", IOzoneConfig{FileSize: 64 << 20, Threads: 8})
	}()
	tcpRC := func() float64 {
		env, tb := testbed(sim.Micros(100))
		defer env.Shutdown()
		srv, cl, _ := MountTCP(env, tb.B[0], tb.A[0], ipoib.Connected)
		srv.AddSyntheticFile("f", 64<<20)
		return IOzone(env, cl, "f", IOzoneConfig{FileSize: 64 << 20, Threads: 8})
	}()
	tcpUD := func() float64 {
		env, tb := testbed(sim.Micros(100))
		defer env.Shutdown()
		srv, cl, _ := MountTCP(env, tb.B[0], tb.A[0], ipoib.Datagram)
		srv.AddSyntheticFile("f", 64<<20)
		return IOzone(env, cl, "f", IOzoneConfig{FileSize: 64 << 20, Threads: 8})
	}()
	if !(rdma > tcpRC && tcpRC > tcpUD) {
		t.Errorf("at 100us want RDMA > IPoIB-RC > IPoIB-UD, got %.1f / %.1f / %.1f", rdma, tcpRC, tcpUD)
	}
}

func TestIPoIBRCBestAtHighDelay(t *testing.T) {
	// Paper Fig. 13(c), 1000 us delay: NFS/IPoIB-RC beats NFS/RDMA (the
	// 4K-fragment RDMA path is window-crushed).
	rdma := func() float64 {
		env, tb := testbed(sim.Micros(1000))
		defer env.Shutdown()
		srv, cl := MountRDMA(tb.B[0], tb.A[0])
		srv.AddSyntheticFile("f", 32<<20)
		return IOzone(env, cl, "f", IOzoneConfig{FileSize: 32 << 20, Threads: 8})
	}()
	tcpRC := func() float64 {
		env, tb := testbed(sim.Micros(1000))
		defer env.Shutdown()
		srv, cl, _ := MountTCP(env, tb.B[0], tb.A[0], ipoib.Connected)
		srv.AddSyntheticFile("f", 32<<20)
		return IOzone(env, cl, "f", IOzoneConfig{FileSize: 32 << 20, Threads: 8})
	}()
	if tcpRC <= rdma {
		t.Errorf("at 1ms want IPoIB-RC (%.1f) > RDMA (%.1f)", tcpRC, rdma)
	}
}

func TestWANDegradesRDMAPeak(t *testing.T) {
	// Paper Fig. 13(a): introducing the WAN routers (SDR hop) cuts the
	// LAN (DDR) peak substantially.
	lan := func() float64 {
		env := sim.NewEnv()
		tb := cluster.New(env, cluster.Config{NodesA: 2, NodesB: 1})
		defer env.Shutdown()
		// Same-cluster mount: DDR path, no Longbows.
		srv, cl := MountRDMA(tb.A[1], tb.A[0])
		srv.AddSyntheticFile("f", 64<<20)
		return IOzone(env, cl, "f", IOzoneConfig{FileSize: 64 << 20, Threads: 8})
	}()
	wan := func() float64 {
		env, tb := testbed(0)
		defer env.Shutdown()
		srv, cl := MountRDMA(tb.B[0], tb.A[0])
		srv.AddSyntheticFile("f", 64<<20)
		return IOzone(env, cl, "f", IOzoneConfig{FileSize: 64 << 20, Threads: 8})
	}()
	if wan >= lan*0.85 {
		t.Errorf("WAN peak %.1f not clearly below LAN peak %.1f", wan, lan)
	}
	if lan < 1000 || lan > 1400 {
		t.Errorf("LAN peak = %.1f MB/s, want ~1200 (server-ceiling calibration)", lan)
	}
}

// Property: random read offsets/sizes return exactly the file's bytes, over
// the RDMA transport.
func TestPropRandomReadsRDMA(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env, tb := testbed(sim.Micros(10))
		defer env.Shutdown()
		srv, cl := MountRDMA(tb.B[0], tb.A[0])
		content := make([]byte, 1+rng.Intn(100000))
		rng.Read(content)
		srv.AddFile("f", append([]byte(nil), content...))
		ok := true
		run(env, func(p *sim.Proc) {
			fh, _, _ := cl.Lookup(p, "f")
			for i := 0; i < 5; i++ {
				off := rng.Intn(len(content))
				count := 1 + rng.Intn(len(content)-off)
				buf := make([]byte, count)
				n, err := cl.Read(p, fh, int64(off), count, buf)
				if err != nil || n != count || !bytes.Equal(buf[:n], content[off:off+count]) {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
