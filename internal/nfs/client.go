package nfs

import (
	"encoding/binary"
	"errors"

	"repro/internal/rpc"
	"repro/internal/sim"
)

// Client is an NFS client bound to an RPC transport (a mount). Multiple
// simulation processes (IOzone threads) may issue operations concurrently.
type Client struct {
	t rpc.Client
}

// NewClient wraps a connected RPC transport as an NFS mount.
func NewClient(t rpc.Client) *Client { return &Client{t: t} }

// Errors returned by client operations.
var (
	ErrNotFound = errors.New("nfs: no such file")
	ErrExists   = errors.New("nfs: file exists")
	ErrServer   = errors.New("nfs: server error")
)

func statusErr(st uint32) error {
	switch st {
	case OK:
		return nil
	case ErrNoEnt:
		return ErrNotFound
	case ErrExist:
		return ErrExists
	default:
		return ErrServer
	}
}

// Null performs a no-op RPC (useful for RTT probing).
func (c *Client) Null(p *sim.Proc) error {
	reply, _ := c.t.Call(p, &rpc.Request{Proc: ProcNull, Meta: statusMeta(0)[:0]})
	_ = reply
	return nil
}

// Lookup resolves a name to a file handle and size.
func (c *Client) Lookup(p *sim.Proc, name string) (uint64, int64, error) {
	reply, _ := c.t.Call(p, &rpc.Request{Proc: ProcLookup, Meta: []byte(name)})
	st := binary.LittleEndian.Uint32(reply.Meta)
	if err := statusErr(st); err != nil {
		return 0, 0, err
	}
	fh := binary.LittleEndian.Uint64(reply.Meta[4:])
	size := int64(binary.LittleEndian.Uint64(reply.Meta[12:]))
	return fh, size, nil
}

// Getattr returns the file size.
func (c *Client) Getattr(p *sim.Proc, fh uint64) (int64, error) {
	meta := make([]byte, 8)
	binary.LittleEndian.PutUint64(meta, fh)
	reply, _ := c.t.Call(p, &rpc.Request{Proc: ProcGetattr, Meta: meta})
	st := binary.LittleEndian.Uint32(reply.Meta)
	if err := statusErr(st); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(reply.Meta[4:])), nil
}

// Create makes a new file: size >= 0 creates a synthetic file of that size;
// size < 0 creates an empty real file for data writes.
func (c *Client) Create(p *sim.Proc, name string, size int64) (uint64, error) {
	meta := make([]byte, 8+len(name))
	binary.LittleEndian.PutUint64(meta, uint64(size))
	copy(meta[8:], name)
	reply, _ := c.t.Call(p, &rpc.Request{Proc: ProcCreate, Meta: meta})
	st := binary.LittleEndian.Uint32(reply.Meta)
	if err := statusErr(st); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(reply.Meta[4:]), nil
}

func readMeta(fh uint64, off int64, count int) []byte {
	meta := make([]byte, 8+8+4)
	binary.LittleEndian.PutUint64(meta, fh)
	binary.LittleEndian.PutUint64(meta[8:], uint64(off))
	binary.LittleEndian.PutUint32(meta[16:], uint32(count))
	return meta
}

// Read reads count bytes at off. When buf is non-nil the data lands there
// (real transfer); otherwise the transfer is synthetic. Returns bytes read.
func (c *Client) Read(p *sim.Proc, fh uint64, off int64, count int, buf []byte) (int, error) {
	req := &rpc.Request{Proc: ProcRead, Meta: readMeta(fh, off, count)}
	if buf != nil {
		req.ReadBuf = buf[:count]
	} else {
		req.ReadLen = count
	}
	reply, n := c.t.Call(p, req)
	st := binary.LittleEndian.Uint32(reply.Meta)
	if err := statusErr(st); err != nil {
		return 0, err
	}
	return n, nil
}

// Write writes data (or n synthetic bytes when data is nil) at off.
func (c *Client) Write(p *sim.Proc, fh uint64, off int64, data []byte, n int) (int, error) {
	meta := make([]byte, 8+8)
	binary.LittleEndian.PutUint64(meta, fh)
	binary.LittleEndian.PutUint64(meta[8:], uint64(off))
	req := &rpc.Request{Proc: ProcWrite, Meta: meta}
	if data != nil {
		req.WriteBulk = data
	} else {
		req.WriteLen = n
	}
	reply, _ := c.t.Call(p, req)
	st := binary.LittleEndian.Uint32(reply.Meta)
	if err := statusErr(st); err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint32(reply.Meta[4:])), nil
}
