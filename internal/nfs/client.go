package nfs

import (
	"encoding/binary"
	"errors"

	"repro/internal/cluster"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Client is an NFS client bound to an RPC transport (a mount). Multiple
// simulation processes (IOzone threads) may issue operations concurrently.
type Client struct {
	t rpc.Client
	// env is the client node's home environment (nil when the client was
	// wrapped with NewClient, without a node). On a partitioned world the
	// workload processes driving this mount must run here: the RPC
	// transport's completion events live on the client node's shard.
	env *sim.Env
	obs *clientObs // non-nil only when telemetry is attached
}

// clientObs caches the mount's telemetry handles: one span track per client
// node plus the RPC call counter and latency histogram.
type clientObs struct {
	env   *sim.Env
	rec   *telemetry.Recorder
	track telemetry.TrackID
	calls *telemetry.Counter
	lat   *telemetry.Histogram
	latHi *telemetry.HiResHistogram
}

// NewClient wraps a connected RPC transport as an NFS mount.
func NewClient(t rpc.Client) *Client { return &Client{t: t} }

// NewClientOn is NewClient plus observability: when telemetry is attached
// to the node's environment, RPCs are recorded as "nfs.<op>" spans on the
// client node's track and into the call latency histogram.
func NewClientOn(node *cluster.Node, t rpc.Client) *Client {
	env := node.HCA.Env()
	c := &Client{t: t, env: env}
	if tel := telemetry.FromEnv(env); tel != nil && (tel.Metrics != nil || tel.Spans != nil) {
		c.obs = &clientObs{
			env:   env,
			rec:   tel.Spans,
			calls: tel.Metrics.Counter("nfs.rpc.calls"),
			lat:   tel.Metrics.Histogram("nfs.rpc.latency.ns"),
			latHi: tel.Metrics.HiRes("nfs.rpc.latency.ns"),
		}
		if tel.Spans != nil {
			c.obs.track = tel.Spans.Track(node.Name, "nfs")
		}
	}
	return c
}

// call runs one RPC through the transport, spanning and timing it when
// observation is on. The transport error is checked before the reply is
// touched: a failed call has no reply metadata.
func (c *Client) call(p *sim.Proc, name string, req *rpc.Request) (*rpc.Reply, int, error) {
	obs := c.obs
	if obs == nil {
		return c.t.Call(p, req)
	}
	start := obs.env.Now()
	var ref telemetry.SpanRef
	if obs.rec != nil {
		ref = obs.rec.StartAt(start, obs.track, name, telemetry.NoSpan)
	}
	reply, n, err := c.t.Call(p, req)
	now := obs.env.Now()
	obs.calls.Add(1)
	obs.lat.Observe(int64(now - start))
	obs.latHi.Observe(int64(now - start))
	if obs.rec != nil {
		obs.rec.EndAt(now, ref)
	}
	return reply, n, err
}

// Errors returned by client operations.
var (
	ErrNotFound = errors.New("nfs: no such file")
	ErrExists   = errors.New("nfs: file exists")
	ErrServer   = errors.New("nfs: server error")
)

func statusErr(st uint32) error {
	switch st {
	case OK:
		return nil
	case ErrNoEnt:
		return ErrNotFound
	case ErrExist:
		return ErrExists
	default:
		return ErrServer
	}
}

// Null performs a no-op RPC (useful for RTT probing).
func (c *Client) Null(p *sim.Proc) error {
	_, _, err := c.call(p, "nfs.null", &rpc.Request{Proc: ProcNull, Meta: statusMeta(0)[:0]})
	return err
}

// Lookup resolves a name to a file handle and size.
func (c *Client) Lookup(p *sim.Proc, name string) (uint64, int64, error) {
	reply, _, err := c.call(p, "nfs.lookup", &rpc.Request{Proc: ProcLookup, Meta: []byte(name)})
	if err != nil {
		return 0, 0, err
	}
	st := binary.LittleEndian.Uint32(reply.Meta)
	if err := statusErr(st); err != nil {
		return 0, 0, err
	}
	fh := binary.LittleEndian.Uint64(reply.Meta[4:])
	size := int64(binary.LittleEndian.Uint64(reply.Meta[12:]))
	return fh, size, nil
}

// Getattr returns the file size.
func (c *Client) Getattr(p *sim.Proc, fh uint64) (int64, error) {
	meta := make([]byte, 8)
	binary.LittleEndian.PutUint64(meta, fh)
	reply, _, err := c.call(p, "nfs.getattr", &rpc.Request{Proc: ProcGetattr, Meta: meta})
	if err != nil {
		return 0, err
	}
	st := binary.LittleEndian.Uint32(reply.Meta)
	if err := statusErr(st); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(reply.Meta[4:])), nil
}

// Create makes a new file: size >= 0 creates a synthetic file of that size;
// size < 0 creates an empty real file for data writes.
func (c *Client) Create(p *sim.Proc, name string, size int64) (uint64, error) {
	meta := make([]byte, 8+len(name))
	binary.LittleEndian.PutUint64(meta, uint64(size))
	copy(meta[8:], name)
	reply, _, err := c.call(p, "nfs.create", &rpc.Request{Proc: ProcCreate, Meta: meta})
	if err != nil {
		return 0, err
	}
	st := binary.LittleEndian.Uint32(reply.Meta)
	if err := statusErr(st); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(reply.Meta[4:]), nil
}

func readMeta(fh uint64, off int64, count int) []byte {
	meta := make([]byte, 8+8+4)
	binary.LittleEndian.PutUint64(meta, fh)
	binary.LittleEndian.PutUint64(meta[8:], uint64(off))
	binary.LittleEndian.PutUint32(meta[16:], uint32(count))
	return meta
}

// Read reads count bytes at off. When buf is non-nil the data lands there
// (real transfer); otherwise the transfer is synthetic. Returns bytes read.
func (c *Client) Read(p *sim.Proc, fh uint64, off int64, count int, buf []byte) (int, error) {
	req := &rpc.Request{Proc: ProcRead, Meta: readMeta(fh, off, count)}
	if buf != nil {
		req.ReadBuf = buf[:count]
	} else {
		req.ReadLen = count
	}
	reply, n, err := c.call(p, "nfs.read", req)
	if err != nil {
		return 0, err
	}
	st := binary.LittleEndian.Uint32(reply.Meta)
	if err := statusErr(st); err != nil {
		return 0, err
	}
	return n, nil
}

// Write writes data (or n synthetic bytes when data is nil) at off.
func (c *Client) Write(p *sim.Proc, fh uint64, off int64, data []byte, n int) (int, error) {
	meta := make([]byte, 8+8)
	binary.LittleEndian.PutUint64(meta, fh)
	binary.LittleEndian.PutUint64(meta[8:], uint64(off))
	req := &rpc.Request{Proc: ProcWrite, Meta: meta}
	if data != nil {
		req.WriteBulk = data
	} else {
		req.WriteLen = n
	}
	reply, _, err := c.call(p, "nfs.write", req)
	if err != nil {
		return 0, err
	}
	st := binary.LittleEndian.Uint32(reply.Meta)
	if err := statusErr(st); err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint32(reply.Meta[4:])), nil
}
