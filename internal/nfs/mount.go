package nfs

import (
	"repro/internal/cluster"
	"repro/internal/ipoib"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// nfsPort is the TCP port the NFS/TCP service listens on.
const nfsPort = 2049

// MountRDMA stands up an NFS/RDMA server on serverNode and returns it with
// a client mounted from clientNode.
func MountRDMA(serverNode, clientNode *cluster.Node) (*Server, *Client) {
	srv := NewServer(serverNode, RDMATouchNanos)
	rsrv := rpc.ServeRDMA(serverNode, DefaultThreads, srv.Handler())
	cl := NewClientOn(clientNode, rpc.NewRDMAClient(clientNode, rsrv))
	return srv, cl
}

// MountTCP stands up an NFS server over TCP/IPoIB in the given IPoIB mode
// and returns it with a client mounted from clientNode. The mount is
// performed inside a short simulation run (TCP handshake).
func MountTCP(env *sim.Env, serverNode, clientNode *cluster.Node, mode ipoib.Mode) (*Server, *Client) {
	net := ipoib.NewNetwork()
	sdev := net.Attach(serverNode.HCA, mode, 0)
	cdev := net.Attach(clientNode.HCA, mode, 0)
	sstack := tcpsim.NewStack(sdev, tcpsim.Config{})
	cstack := tcpsim.NewStack(cdev, tcpsim.Config{})
	srv := NewServer(serverNode, TCPTouchNanos)
	rpc.ServeTCP(sstack, nfsPort, DefaultThreads, srv.Handler())
	var cl *Client
	env.Go("nfs-mount", func(p *sim.Proc) {
		cl = NewClientOn(clientNode, rpc.NewTCPClient(p, cstack, sstack.Addr(), nfsPort))
		env.Stop()
	})
	env.Run()
	return srv, cl
}
