package nfs

import (
	"repro/internal/cluster"
	"repro/internal/ipoib"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// nfsPort is the TCP port the NFS/TCP service listens on.
const nfsPort = 2049

// Default soft-mount timing (the timeo/retrans mount options).
const (
	// DefaultTimeout is the per-attempt RPC reply timeout of a mount that
	// opted into RPC-layer timers.
	DefaultTimeout = 200 * sim.Millisecond
	// DefaultRetrans is a soft mount's retransmission budget before an op
	// fails with rpc.ErrTimeout.
	DefaultRetrans = 3
)

// MountOptions are the fault-tolerance mount options (hard/soft, timeo,
// retrans). The zero value is a plain hard mount with no RPC-layer timers —
// exactly the pre-fault behavior, so fault-free runs schedule no extra
// events. Note that even a hard mount's ops fail fast when the transport
// underneath dies (a reset TCP connection, an errored QP): hardness only
// governs reply timeouts, which cannot be outwaited on a dead transport.
type MountOptions struct {
	// Soft makes ops fail with rpc.ErrTimeout after Retrans unanswered
	// retransmissions instead of retrying forever.
	Soft bool
	// Timeout is the per-attempt reply timeout (0 with Soft selects
	// DefaultTimeout; 0 without Soft arms no timers).
	Timeout sim.Time
	// Retrans is the soft-mount retransmission budget (0 with Soft selects
	// DefaultRetrans).
	Retrans int
}

// policy translates mount options into the RPC client's call policy.
func (o MountOptions) policy() rpc.Policy {
	pol := rpc.Policy{Timeout: o.Timeout, Retrans: o.Retrans, Hard: !o.Soft}
	if o.Soft {
		if pol.Timeout == 0 {
			pol.Timeout = DefaultTimeout
		}
		if pol.Retrans == 0 {
			pol.Retrans = DefaultRetrans
		}
	}
	return pol
}

func pick(opts []MountOptions) MountOptions {
	if len(opts) > 0 {
		return opts[0]
	}
	return MountOptions{}
}

// MountRDMA stands up an NFS/RDMA server on serverNode and returns it with
// a client mounted from clientNode.
func MountRDMA(serverNode, clientNode *cluster.Node, opts ...MountOptions) (*Server, *Client) {
	srv := NewServer(serverNode, RDMATouchNanos)
	rsrv := rpc.ServeRDMA(serverNode, DefaultThreads, srv.Handler())
	rc := rpc.NewRDMAClient(clientNode, rsrv)
	rc.SetPolicy(pick(opts).policy())
	cl := NewClientOn(clientNode, rc)
	return srv, cl
}

// MountTCP stands up an NFS server over TCP/IPoIB in the given IPoIB mode
// and returns it with a client mounted from clientNode. The mount is
// performed inside a short simulation run (TCP handshake); under fault
// injection it can fail with the dial's error.
func MountTCP(env *sim.Env, serverNode, clientNode *cluster.Node, mode ipoib.Mode, opts ...MountOptions) (*Server, *Client, error) {
	net := ipoib.NewNetwork()
	sdev := net.Attach(serverNode.HCA, mode, 0)
	cdev := net.Attach(clientNode.HCA, mode, 0)
	sstack := tcpsim.NewStack(sdev, tcpsim.Config{})
	cstack := tcpsim.NewStack(cdev, tcpsim.Config{})
	srv := NewServer(serverNode, TCPTouchNanos)
	rpc.ServeTCP(sstack, nfsPort, DefaultThreads, srv.Handler())
	var cl *Client
	var mountErr error
	env.Go("nfs-mount", func(p *sim.Proc) {
		tc, err := rpc.NewTCPClient(p, cstack, sstack.Addr(), nfsPort)
		if err != nil {
			mountErr = err
		} else {
			tc.SetPolicy(pick(opts).policy())
			cl = NewClientOn(clientNode, tc)
		}
		env.Stop()
	})
	env.Run()
	if mountErr != nil {
		return nil, nil, mountErr
	}
	return srv, cl, nil
}
