package nas

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// world builds the paper's Fig. 12 setup scaled down: n/2 ranks per
// cluster, one per node.
func world(n int, delay sim.Time) *mpi.World {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: n / 2, NodesB: n / 2, Delay: delay})
	var nodes []*cluster.Node
	nodes = append(nodes, tb.A...)
	nodes = append(nodes, tb.B...)
	return mpi.NewWorld(env, nodes, mpi.Config{})
}

func TestKernelsComplete(t *testing.T) {
	for _, k := range Kernels() {
		w := world(8, sim.Micros(10))
		elapsed := RunClass(w, k, "W")
		if elapsed <= 0 {
			t.Errorf("%s elapsed = %v", k, elapsed)
		}
		w.Shutdown()
	}
}

func TestUnknownKernelPanics(t *testing.T) {
	w := world(4, 0)
	defer func() {
		w.Shutdown()
		if recover() == nil {
			t.Fatal("unknown kernel did not panic")
		}
	}()
	RunClass(w, "BT", "W")
}

func TestMessageProfiles(t *testing.T) {
	// The paper's §3.5 profiling: IS and FT traffic is dominated by large
	// messages; CG has many small messages and nothing near 1 MB.
	profiles := map[string]mpi.MessageProfile{}
	for _, k := range Kernels() {
		w := world(16, 0)
		RunClass(w, k, "A")
		profiles[k] = w.Profile()
		w.Shutdown()
	}
	if f := profiles[IS].LargeVolumeFraction(); f < 0.95 {
		t.Errorf("IS large-volume fraction = %.3f, want ~1.0", f)
	}
	if f := profiles[FT].LargeVolumeFraction(); f < 0.80 {
		t.Errorf("FT large-volume fraction = %.3f, want >= 0.83-ish", f)
	}
	if m := profiles[CG].MaxMessage; m >= 1<<20 {
		t.Errorf("CG max message = %d, want < 1M (paper: all CG messages < 1M)", m)
	}
	if f := profiles[CG].TinyCountFraction(); f < 0.3 {
		t.Errorf("CG tiny-count fraction = %.3f, want substantial", f)
	}
	if profiles[CG].TinyCountFraction() < profiles[IS].TinyCountFraction() {
		t.Error("CG should have a higher tiny-message fraction than IS")
	}
}

func TestDelayToleranceShape(t *testing.T) {
	// Paper Fig. 12: IS and FT tolerate delays up to 10 ms (2000 km) with
	// little slowdown; CG degrades markedly.
	slowdown := func(k string, delay sim.Time) float64 {
		w0 := world(16, 0)
		base := RunClass(w0, k, "A")
		w0.Shutdown()
		w1 := world(16, delay)
		far := RunClass(w1, k, "A")
		w1.Shutdown()
		return float64(far) / float64(base)
	}
	isS := slowdown(IS, sim.Micros(10000))
	ftS := slowdown(FT, sim.Micros(10000))
	cgS := slowdown(CG, sim.Micros(10000))
	if isS > 1.6 {
		t.Errorf("IS slowdown at 10ms = %.2fx, want tolerant (<1.6x)", isS)
	}
	if ftS > 1.6 {
		t.Errorf("FT slowdown at 10ms = %.2fx, want tolerant (<1.6x)", ftS)
	}
	if cgS < 2.0 {
		t.Errorf("CG slowdown at 10ms = %.2fx, want marked degradation (>2x)", cgS)
	}
	if cgS < isS || cgS < ftS {
		t.Errorf("CG (%.2fx) should degrade more than IS (%.2fx) and FT (%.2fx)", cgS, isS, ftS)
	}
}

func TestPerPairBytes(t *testing.T) {
	if PerPairBytes(IS, 64) != 1<<25*4/64/64 {
		t.Errorf("IS per-pair = %d", PerPairBytes(IS, 64))
	}
	if PerPairBytes(FT, 64) != 512*256*256*16/64/64 {
		t.Errorf("FT per-pair = %d", PerPairBytes(FT, 64))
	}
	if PerPairBytes(CG, 64) != 0 {
		t.Error("CG has no all-to-all")
	}
}

func TestGridHelpers(t *testing.T) {
	if gridRows(64) != 8 || gridRows(16) != 4 || gridRows(2) != 1 {
		t.Errorf("gridRows: %d %d %d", gridRows(64), gridRows(16), gridRows(2))
	}
	// Transpose partner must be an involution.
	rows, cols := 4, 4
	for id := 0; id < 16; id++ {
		tp := transposePartner(id, rows, cols)
		if transposePartner(tp, rows, cols) != id {
			t.Errorf("transposePartner not involutive at %d", id)
		}
	}
}

func TestMGAndLUComplete(t *testing.T) {
	for _, k := range []string{MG, LU} {
		w := world(8, sim.Micros(10))
		elapsed := RunClass(w, k, "W")
		if elapsed <= 0 {
			t.Errorf("%s elapsed = %v", k, elapsed)
		}
		w.Shutdown()
	}
}

func TestLUMostLatencySensitive(t *testing.T) {
	// LU's wavefront of tiny blocking messages should degrade more than
	// any other kernel at high delay; MG should sit between FT and CG.
	slowdown := func(k string) float64 {
		w0 := world(16, 0)
		base := RunClass(w0, k, "W")
		w0.Shutdown()
		w1 := world(16, sim.Micros(10000))
		far := RunClass(w1, k, "W")
		w1.Shutdown()
		return float64(far) / float64(base)
	}
	lu := slowdown(LU)
	mg := slowdown(MG)
	ft := slowdown(FT)
	if lu < 3 {
		t.Errorf("LU slowdown at 10ms = %.2fx, want severe (>3x)", lu)
	}
	if lu < mg {
		t.Errorf("LU (%.2fx) should degrade at least as much as MG (%.2fx)", lu, mg)
	}
	if mg < ft {
		t.Errorf("MG (%.2fx) should degrade at least as much as FT (%.2fx)", mg, ft)
	}
}

func TestAllKernelsList(t *testing.T) {
	if len(AllKernels()) != 5 || AllKernels()[3] != MG || AllKernels()[4] != LU {
		t.Errorf("AllKernels = %v", AllKernels())
	}
}
