// Package nas implements communication skeletons of the NAS Parallel
// Benchmarks the paper runs over the WAN (§3.5, Fig. 12): IS, FT and CG,
// class B, on 64 processes split evenly across the two clusters.
//
// Each kernel reproduces the benchmark's communication structure and
// message-size distribution — which the paper identifies as the factor
// that decides WAN tolerance:
//
//   - IS (integer sort): per iteration, a bucket-count allreduce followed
//     by an all-to-all key redistribution; effectively 100% of the traffic
//     volume is large messages.
//   - FT (3-D FFT): per iteration a full array transpose (all-to-all of
//     large blocks); ~83% large messages (the rest are setup exchanges and
//     checksum reductions).
//   - CG (conjugate gradient): per iteration several medium point-to-point
//     row/column exchanges and multiple tiny dot-product allreduces — all
//     messages under 1 MB, many latency-bound collectives.
//
// Two further kernels extend Fig. 12's sensitivity spectrum: MG (multigrid
// V-cycles, whose coarse levels are latency-bound) and LU (pipelined
// wavefront sweeps of tiny blocking messages, the most delay-hostile
// pattern in the suite).
//
// Compute phases are charged as virtual time calibrated to class-B problem
// sizes, so the compute:communication ratio (and hence the delay
// sensitivity) matches the paper's qualitative behaviour.
package nas

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Kernel names.
const (
	IS = "IS"
	FT = "FT"
	CG = "CG"
	MG = "MG"
	LU = "LU"
)

// Kernels lists the benchmarks the paper discusses explicitly (IS, FT, CG).
func Kernels() []string { return []string{IS, FT, CG} }

// AllKernels additionally includes MG (multigrid V-cycles: medium halo
// exchanges) and LU (pipelined wavefront sweeps: many tiny messages), which
// Figure 12's "NAS benchmarks" sweep covers.
func AllKernels() []string { return []string{IS, FT, CG, MG, LU} }

// params holds NAS problem-class parameters.
type params struct {
	// IS: keys of 4 bytes, ranking iterations.
	isKeys  int64
	isIters int
	// FT: grid bytes (16-byte complex values), iterations.
	ftBytes int64
	ftIters int
	// CG: matrix order, nonzeros, iterations.
	cgN     int64
	cgNnz   int64
	cgIters int
	// MG: grid points per side, V-cycle iterations.
	mgDim   int64
	mgIters int
	// LU: grid points per side, SSOR iterations.
	luDim   int64
	luIters int
}

// classes maps NAS class letters to problem sizes. Class B is the paper's
// configuration; class W is a small instance for quick runs and tests.
var classes = map[string]params{
	"B": {
		isKeys: 1 << 25, isIters: 10,
		ftBytes: 512 * 256 * 256 * 16, ftIters: 20,
		cgN: 75000, cgNnz: 13_000_000, cgIters: 75,
		mgDim: 256, mgIters: 20,
		luDim: 102, luIters: 250,
	},
	"A": {
		isKeys: 1 << 23, isIters: 10,
		ftBytes: 256 * 256 * 128 * 16, ftIters: 6,
		cgN: 14000, cgNnz: 1_850_000, cgIters: 15,
		mgDim: 256, mgIters: 4,
		luDim: 64, luIters: 50,
	},
	"W": {
		isKeys: 1 << 20, isIters: 10,
		ftBytes: 128 * 128 * 32 * 16, ftIters: 6,
		cgN: 7000, cgNnz: 1_200_000, cgIters: 15,
		mgDim: 128, mgIters: 4,
		luDim: 33, luIters: 30,
	},
}

// Per-element compute costs (virtual nanoseconds), calibrated so the
// class-B compute:communication ratio matches mid-2000s Xeons (IS ranking
// is memory-bound at ~100+ ns per key touched; FT spends ~5 log N flops
// per point).
const (
	isRankNanosPerKey  = 400.0
	ftNanosPerByte     = 80.0
	cgNanosPerNonzero  = 150.0
	cgNanosPerVectorEl = 10.0
	mgNanosPerPoint    = 40.0
	luNanosPerPoint    = 30.0
)

// Run executes the class-B kernel skeleton on the world (the paper's
// configuration) and returns the elapsed virtual execution time.
func Run(w *mpi.World, kernel string) sim.Time {
	return RunClass(w, kernel, "B")
}

// RunClass executes the kernel skeleton at the given problem class ("B" or
// "W") and returns the elapsed virtual execution time.
func RunClass(w *mpi.World, kernel, class string) sim.Time {
	b, ok := classes[class]
	if !ok {
		panic(fmt.Sprintf("nas: unknown class %q (have B, A, W)", class))
	}
	switch kernel {
	case IS:
		return runIS(w, b)
	case FT:
		return runFT(w, b)
	case CG:
		return runCG(w, b)
	case MG:
		return runMG(w, b)
	case LU:
		return runLU(w, b)
	}
	panic(fmt.Sprintf("nas: unknown kernel %q", kernel))
}

// runIS: each iteration ranks local keys, allreduces bucket counts, then
// redistributes all keys with an all-to-all.
func runIS(w *mpi.World, b params) sim.Time {
	n := w.Size()
	keysPer := b.isKeys / int64(n)
	perPair := int(b.isKeys * 4 / int64(n) / int64(n))
	bucketCounts := make([]float64, 64) // 512 B reduction payload
	return w.Run(func(r *mpi.Rank, p *sim.Proc) {
		for it := 0; it < b.isIters; it++ {
			p.Sleep(sim.Time(float64(keysPer) * isRankNanosPerKey))
			r.Allreduce(p, bucketCounts)
			r.AlltoallSynthetic(p, perPair)
		}
		r.Barrier(p)
	})
}

// runFT: each iteration computes local 1-D FFTs and transposes the global
// array with an all-to-all.
func runFT(w *mpi.World, b params) sim.Time {
	n := w.Size()
	bytesPer := b.ftBytes / int64(n)
	perPair := int(bytesPer / int64(n))
	checksum := make([]float64, 2)
	return w.Run(func(r *mpi.Rank, p *sim.Proc) {
		for it := 0; it < b.ftIters; it++ {
			p.Sleep(sim.Time(float64(bytesPer) * ftNanosPerByte))
			r.AlltoallSynthetic(p, perPair)
			r.Allreduce(p, checksum)
		}
		r.Barrier(p)
	})
}

// runCG: a 2-D processor grid; each iteration does a sparse matvec with
// row-neighbour exchanges, then two dot-product allreduces — the
// latency-bound pattern that makes CG degrade on high-delay WANs.
func runCG(w *mpi.World, b params) sim.Time {
	n := w.Size()
	rows := gridRows(n)
	cols := n / rows
	segBytes := int(b.cgN / int64(rows) * 8) // vector segment exchanged
	nnzPer := b.cgNnz / int64(n)
	vecPer := b.cgN / int64(rows)
	dot := make([]float64, 1)
	return w.Run(func(r *mpi.Rank, p *sim.Proc) {
		myRow := r.ID() / cols
		myCol := r.ID() % cols
		for it := 0; it < b.cgIters; it++ {
			// Local sparse matvec.
			p.Sleep(sim.Time(float64(nnzPer)*cgNanosPerNonzero + float64(vecPer)*cgNanosPerVectorEl))
			// Row-group reduce-exchange of partial results: butterfly
			// over the row (log2(cols) medium messages).
			for mask := 1; mask < cols; mask <<= 1 {
				partner := myRow*cols + (myCol ^ mask)
				if partner < n {
					r.Sendrecv(p, partner, 2000+it*8+mask, nil, segBytes,
						partner, 2000+it*8+mask, nil, segBytes)
				}
			}
			// Transpose exchange with the diagonal partner.
			tp := transposePartner(r.ID(), rows, cols)
			if tp != r.ID() {
				r.Sendrecv(p, tp, 3000+it, nil, segBytes, tp, 3000+it, nil, segBytes)
			}
			// Two tiny dot-product reductions (rho, alpha).
			r.Allreduce(p, dot)
			r.Allreduce(p, dot)
		}
		r.Barrier(p)
	})
}

// gridRows picks the largest power-of-two row count <= sqrt(n).
func gridRows(n int) int {
	r := 1
	for r*r <= n {
		r <<= 1
	}
	r >>= 1
	if r < 1 {
		return 1
	}
	return r
}

// transposePartner mirrors a rank across the processor-grid diagonal.
func transposePartner(id, rows, cols int) int {
	row := id / cols
	col := id % cols
	if col >= rows || row >= cols {
		return id
	}
	return col*cols + row
}

// PerPairBytes returns the class-B all-to-all block size a kernel
// exchanges per process pair at the given world size (0 for CG, which has
// no all-to-all).
func PerPairBytes(kernel string, n int) int {
	b := classes["B"]
	switch kernel {
	case IS:
		return int(b.isKeys * 4 / int64(n) / int64(n))
	case FT:
		return int(b.ftBytes / int64(n) / int64(n))
	case CG:
		return 0
	}
	panic("nas: unknown kernel")
}
