package nas

import (
	"repro/internal/mpi"
	"repro/internal/sim"
)

// runMG: multigrid V-cycles on a 3-D grid partitioned across a processor
// grid. Each level performs face (halo) exchanges with up to three
// neighbours; faces shrink by 4x per coarser level, so the traffic is a
// mix of medium and small messages, and the coarse levels are
// latency-bound — MG sits between FT (bandwidth-friendly) and LU
// (latency-hostile) in WAN sensitivity.
func runMG(w *mpi.World, b params) sim.Time {
	n := w.Size()
	rows := gridRows(n)
	cols := n / rows
	// Finest-level face bytes per neighbour: (dim/rows) x (dim/cols)
	// points x 8 B.
	levels := 0
	for d := b.mgDim; d >= 4; d /= 2 {
		levels++
	}
	pointsPer := b.mgDim * b.mgDim * b.mgDim / int64(n)
	return w.Run(func(r *mpi.Rank, p *sim.Proc) {
		myRow := r.ID() / cols
		myCol := r.ID() % cols
		tag := 50000
		for it := 0; it < b.mgIters; it++ {
			// Down-sweep and up-sweep of the V-cycle.
			for pass := 0; pass < 2; pass++ {
				dim := b.mgDim
				for lvl := 0; lvl < levels; lvl++ {
					// Smoothing compute at this level.
					pts := dim * dim * dim / int64(n)
					if pts < 1 {
						pts = 1
					}
					p.Sleep(sim.Time(float64(pts) * mgNanosPerPoint))
					// Halo exchange with the 2-D grid neighbours.
					face := int(dim / int64(rows) * dim / int64(cols) * 8)
					if face < 8 {
						face = 8
					}
					for _, d := range [][2]int{{0, 1}, {1, 0}} {
						nr, nc := myRow+d[0], myCol+d[1]
						pr, pc := myRow-d[0], myCol-d[1]
						if nr < rows && nc < cols {
							partner := nr*cols + nc
							r.Sendrecv(p, partner, tag, nil, face, partner, tag, nil, face)
						}
						if pr >= 0 && pc >= 0 {
							partner := pr*cols + pc
							r.Sendrecv(p, partner, tag, nil, face, partner, tag, nil, face)
						}
						tag++
					}
					dim /= 2
				}
			}
			// Residual norm: one small allreduce per cycle.
			r.Allreduce(p, []float64{float64(it)})
		}
		r.Barrier(p)
		_ = pointsPer
	})
}

// runLU: SSOR wavefront sweeps. The lower- and upper-triangular solves
// propagate a dependency front across the processor grid: each rank waits
// for small boundary messages from its north/west neighbours, computes,
// and forwards south/east. Hundreds of iterations of tiny blocking
// messages make LU the most latency-sensitive NAS kernel — on a WAN the
// pipeline stalls for a full one-way delay at every grid hop.
func runLU(w *mpi.World, b params) sim.Time {
	n := w.Size()
	rows := gridRows(n)
	cols := n / rows
	pointsPer := b.luDim * b.luDim * b.luDim / int64(n)
	// Boundary message: a pencil of 5 doubles per grid point along one
	// face edge of the local block.
	faceMsg := int(b.luDim / int64(rows) * 5 * 8)
	if faceMsg < 40 {
		faceMsg = 40
	}
	return w.Run(func(r *mpi.Rank, p *sim.Proc) {
		myRow := r.ID() / cols
		myCol := r.ID() % cols
		north := (myRow-1)*cols + myCol
		south := (myRow+1)*cols + myCol
		west := myRow*cols + myCol - 1
		east := myRow*cols + myCol + 1
		for it := 0; it < b.luIters; it++ {
			tag := 60000 + it*4
			// Lower-triangular sweep: front moves from (0,0) to
			// (rows-1, cols-1).
			if myRow > 0 {
				r.Recv(p, north, tag, nil, faceMsg)
			}
			if myCol > 0 {
				r.Recv(p, west, tag, nil, faceMsg)
			}
			p.Sleep(sim.Time(float64(pointsPer) * luNanosPerPoint / 2))
			if myRow < rows-1 {
				r.Send(p, south, tag, nil, faceMsg)
			}
			if myCol < cols-1 {
				r.Send(p, east, tag, nil, faceMsg)
			}
			// Upper-triangular sweep: front moves back.
			if myRow < rows-1 {
				r.Recv(p, south, tag+1, nil, faceMsg)
			}
			if myCol < cols-1 {
				r.Recv(p, east, tag+1, nil, faceMsg)
			}
			p.Sleep(sim.Time(float64(pointsPer) * luNanosPerPoint / 2))
			if myRow > 0 {
				r.Send(p, north, tag+1, nil, faceMsg)
			}
			if myCol > 0 {
				r.Send(p, west, tag+1, nil, faceMsg)
			}
		}
		r.Barrier(p)
	})
}
