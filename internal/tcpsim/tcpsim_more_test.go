package tcpsim

import (
	"testing"

	"repro/internal/ipoib"
	"repro/internal/sim"
)

func TestSlowStartReachesWindow(t *testing.T) {
	env, sa, sb := pairStacks(ipoib.Datagram, 0, sim.Micros(500), Config{Window: 256 << 10})
	defer env.Shutdown()
	ln := sb.Listen(5000)
	var conn *Conn
	env.Go("srv", func(p *sim.Proc) { ln.Accept(p) })
	env.Go("cli", func(p *sim.Proc) {
		conn, _ = sa.Dial(p, sb.Addr(), 5000)
		for i := 0; i < 100; i++ {
			conn.WriteSynthetic(p, 1<<20)
		}
	})
	env.RunUntil(200 * sim.Millisecond)
	if conn.cwnd != 256<<10 {
		t.Errorf("cwnd = %d after long flow, want window cap %d", conn.cwnd, 256<<10)
	}
}

func TestSegmentPackingAtMSS(t *testing.T) {
	// A long stream must be carried in MSS-sized segments (no
	// silly-window fragmentation), even when written in odd chunks.
	env, sa, sb := pairStacks(ipoib.Connected, 0, 0, Config{})
	defer env.Shutdown()
	ln := sb.Listen(5000)
	env.Go("srv", func(p *sim.Proc) { ln.Accept(p) })
	env.Go("cli", func(p *sim.Proc) {
		c, _ := sa.Dial(p, sb.Addr(), 5000)
		for i := 0; i < 1000; i++ {
			c.WriteSynthetic(p, 7777) // awkward chunk size
		}
	})
	env.RunUntil(40 * sim.Millisecond)
	st := sa.Stats()
	if st.TxSegments == 0 {
		t.Fatal("no segments sent")
	}
	// Sub-MSS segments are legitimate when the send queue drains (we
	// model TCP_NODELAY), but the bulk of a saturated stream must be
	// carried in large packed segments, not write-sized fragments.
	avg := float64(st.TxBytes) / float64(st.TxSegments)
	if avg < float64(sa.MSS())*0.5 {
		t.Errorf("average segment = %.0f bytes (MSS %d): silly-window fragmentation", avg, sa.MSS())
	}
	if avg < 2*7777 {
		t.Errorf("average segment = %.0f, not packing across %d-byte writes", avg, 7777)
	}
}

func TestDeliveredCounter(t *testing.T) {
	env, sa, sb := pairStacks(ipoib.Datagram, 0, 0, Config{})
	defer env.Shutdown()
	ln := sb.Listen(5000)
	var srvConn *Conn
	env.Go("srv", func(p *sim.Proc) {
		srvConn, _ = ln.Accept(p)
	})
	env.Go("cli", func(p *sim.Proc) {
		c, _ := sa.Dial(p, sb.Addr(), 5000)
		c.WriteSynthetic(p, 123456)
	})
	env.Run()
	if srvConn.Delivered() != 123456 {
		t.Errorf("Delivered = %d, want 123456", srvConn.Delivered())
	}
}

func TestInterleavedRealAndSyntheticSpans(t *testing.T) {
	// Real bytes and synthetic filler in one stream: real bytes must
	// survive byte-exact, synthetic reads back as zeros.
	env, sa, sb := pairStacks(ipoib.Datagram, 0, 0, Config{})
	defer env.Shutdown()
	ln := sb.Listen(5000)
	var got []byte
	env.Go("srv", func(p *sim.Proc) {
		c, _ := ln.Accept(p)
		got, _ = c.ReadFull(p, 5+1000+5)
		env.Stop()
	})
	env.Go("cli", func(p *sim.Proc) {
		c, _ := sa.Dial(p, sb.Addr(), 5000)
		c.Write(p, []byte("HELLO"))
		c.WriteSynthetic(p, 1000)
		c.Write(p, []byte("WORLD"))
	})
	env.Run()
	if string(got[:5]) != "HELLO" || string(got[1005:]) != "WORLD" {
		t.Errorf("markers lost: %q ... %q", got[:5], got[1005:])
	}
	for i := 5; i < 1005; i++ {
		if got[i] != 0 {
			t.Fatalf("synthetic byte %d = %d, want 0", i, got[i])
		}
	}
}

func TestWindowCapsInflight(t *testing.T) {
	env, sa, sb := pairStacks(ipoib.Datagram, 0, sim.Micros(5000), Config{Window: 128 << 10})
	defer env.Shutdown()
	ln := sb.Listen(5000)
	var conn *Conn
	env.Go("srv", func(p *sim.Proc) { ln.Accept(p) })
	env.Go("cli", func(p *sim.Proc) {
		conn, _ = sa.Dial(p, sb.Addr(), 5000)
		for i := 0; i < 50; i++ {
			conn.WriteSynthetic(p, 1<<20)
		}
	})
	env.RunUntil(100 * sim.Millisecond)
	inflight := int(conn.sndNxt - conn.sndUna)
	if inflight > 128<<10 {
		t.Errorf("in-flight = %d bytes, window is %d", inflight, 128<<10)
	}
	// At 5ms one-way the window must be the binding constraint: nearly
	// the whole window should be outstanding mid-flow.
	if inflight < 100<<10 {
		t.Errorf("in-flight = %d, expected window nearly full", inflight)
	}
}
