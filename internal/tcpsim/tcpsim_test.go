package tcpsim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/ipoib"
	"repro/internal/sim"
)

// pairStacks builds two nodes across the WAN with TCP stacks in the given
// IPoIB mode.
func pairStacks(mode ipoib.Mode, mtu int, delay sim.Time, cfg Config) (*sim.Env, *Stack, *Stack) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	n := ipoib.NewNetwork()
	da := n.Attach(tb.A[0].HCA, mode, mtu)
	db := n.Attach(tb.B[0].HCA, mode, mtu)
	return env, NewStack(da, cfg), NewStack(db, cfg)
}

func TestHandshakeAndEcho(t *testing.T) {
	env, sa, sb := pairStacks(ipoib.Datagram, 0, sim.Micros(10), Config{})
	ln := sb.Listen(5000)
	msg := []byte("ping over the WAN")
	var echoed []byte
	env.Go("server", func(p *sim.Proc) {
		c, _ := ln.Accept(p)
		data, _ := c.ReadFull(p, len(msg))
		c.Write(p, data)
	})
	env.Go("client", func(p *sim.Proc) {
		c, _ := sa.Dial(p, sb.Addr(), 5000)
		c.Write(p, msg)
		echoed, _ = c.ReadFull(p, len(msg))
		env.Stop()
	})
	env.Run()
	env.Shutdown()
	if !bytes.Equal(echoed, msg) {
		t.Errorf("echo = %q, want %q", echoed, msg)
	}
}

func TestLargeTransferIntegrity(t *testing.T) {
	env, sa, sb := pairStacks(ipoib.Connected, 0, sim.Micros(100), Config{})
	ln := sb.Listen(5000)
	data := make([]byte, 1<<20)
	rng := rand.New(rand.NewSource(7))
	rng.Read(data)
	var got []byte
	env.Go("server", func(p *sim.Proc) {
		c, _ := ln.Accept(p)
		got, _ = c.ReadFull(p, len(data))
		env.Stop()
	})
	env.Go("client", func(p *sim.Proc) {
		c, _ := sa.Dial(p, sb.Addr(), 5000)
		for off := 0; off < len(data); off += 100000 {
			end := off + 100000
			if end > len(data) {
				end = len(data)
			}
			c.Write(p, data[off:end])
		}
	})
	env.Run()
	env.Shutdown()
	if !bytes.Equal(got, data) {
		t.Error("large transfer corrupted")
	}
}

// throughput runs a one-way flow for the given duration and returns the
// steady-state rate over the second half, in MillionBytes/s.
func throughput(env *sim.Env, sa, sb *Stack, streams int, dur sim.Time) float64 {
	conns := make([]*Conn, 0, streams)
	for i := 0; i < streams; i++ {
		port := 6000 + i
		ln := sb.Listen(port)
		env.Go("srv", func(p *sim.Proc) { ln.Accept(p) })
		env.Go("cli", func(p *sim.Proc) {
			c, _ := sa.Dial(p, sb.Addr(), port)
			conns = append(conns, c)
			for {
				c.WriteSynthetic(p, 1<<20)
			}
		})
	}
	env.RunUntil(dur / 2)
	var mid int64
	served := make([]*Conn, len(conns))
	copy(served, conns)
	for _, c := range served {
		mid += deliveredAt(sb, c)
	}
	env.RunUntil(dur)
	var end int64
	for _, c := range served {
		end += deliveredAt(sb, c)
	}
	env.Shutdown()
	return float64(end-mid) / (dur / 2).Seconds() / 1e6
}

// deliveredAt finds the server-side endpoint of the client conn c on stack s
// and returns its delivered byte count.
func deliveredAt(s *Stack, c *Conn) int64 {
	k := connKey{remote: c.stack.Addr(), remotePort: c.localPort, localPort: c.remotePort}
	srv := s.conns[k]
	if srv == nil {
		return 0
	}
	return srv.delivered
}

func TestUDSingleStreamPeakCalibration(t *testing.T) {
	// Paper Fig. 6(a): IPoIB-UD peak (stack-processing-bound) well below
	// verbs UD; calibrated near 450 MB/s.
	env, sa, sb := pairStacks(ipoib.Datagram, 0, 0, Config{})
	bw := throughput(env, sa, sb, 1, 40*sim.Millisecond)
	if bw < 380 || bw > 520 {
		t.Errorf("IPoIB-UD single-stream peak = %.1f MB/s, want ~450", bw)
	}
}

func TestRCSingleStreamPeakCalibration(t *testing.T) {
	// Paper Fig. 7(a): IPoIB-RC with 64 KB MTU peaks ~890 MB/s.
	env, sa, sb := pairStacks(ipoib.Connected, 0, 0, Config{})
	bw := throughput(env, sa, sb, 1, 40*sim.Millisecond)
	if bw < 800 || bw > 950 {
		t.Errorf("IPoIB-RC 64K-MTU peak = %.1f MB/s, want ~890", bw)
	}
}

func TestSmallWindowCollapsesAtDelay(t *testing.T) {
	// Paper Fig. 6(a): a 64 KB window collapses once the
	// bandwidth-delay product exceeds it.
	env, sa, sb := pairStacks(ipoib.Datagram, 0, sim.Micros(1000), Config{Window: 64 << 10})
	bw := throughput(env, sa, sb, 1, 200*sim.Millisecond)
	// 64KB / ~2.05ms RTT ~= 32 MB/s.
	if bw > 60 {
		t.Errorf("64K window at 1ms delay = %.1f MB/s, want window-limited (~32)", bw)
	}
}

func TestParallelStreamsRecoverHighDelayBandwidth(t *testing.T) {
	// Paper Fig. 6(b): parallel streams sustain the IPoIB-UD peak at 1 ms
	// delay where a single stream is window-limited.
	single := func() float64 {
		env, sa, sb := pairStacks(ipoib.Datagram, 0, sim.Micros(1000), Config{})
		return throughput(env, sa, sb, 1, 300*sim.Millisecond)
	}()
	multi := func() float64 {
		env, sa, sb := pairStacks(ipoib.Datagram, 0, sim.Micros(1000), Config{})
		return throughput(env, sa, sb, 6, 300*sim.Millisecond)
	}()
	if single > 430 {
		t.Errorf("single stream at 1ms = %.1f MB/s; expected window-limited below peak", single)
	}
	if multi < 400 {
		t.Errorf("6 streams at 1ms = %.1f MB/s; expected near peak (~450)", multi)
	}
	if multi < single*1.1 {
		t.Errorf("parallel streams gain too small at 1ms: single=%.1f multi=%.1f", single, multi)
	}
	// At 10 ms the single stream is deeply window-limited and the gain is
	// dramatic.
	single10 := func() float64 {
		env, sa, sb := pairStacks(ipoib.Datagram, 0, sim.Micros(10000), Config{})
		return throughput(env, sa, sb, 1, 900*sim.Millisecond)
	}()
	multi10 := func() float64 {
		env, sa, sb := pairStacks(ipoib.Datagram, 0, sim.Micros(10000), Config{})
		return throughput(env, sa, sb, 8, 900*sim.Millisecond)
	}()
	if multi10 < single10*3 {
		t.Errorf("parallel streams gain too small at 10ms: single=%.1f multi=%.1f", single10, multi10)
	}
}

func TestRCModeDropsSharplyAtExtremeDelay(t *testing.T) {
	// Paper Fig. 7(a): IPoIB-RC bandwidth drops sharply past 100 us delay
	// (RC window and TCP window both throttle).
	peak := func() float64 {
		env, sa, sb := pairStacks(ipoib.Connected, 0, sim.Micros(100), Config{})
		return throughput(env, sa, sb, 1, 60*sim.Millisecond)
	}()
	far := func() float64 {
		env, sa, sb := pairStacks(ipoib.Connected, 0, sim.Micros(10000), Config{})
		return throughput(env, sa, sb, 1, 600*sim.Millisecond)
	}()
	if peak < 700 {
		t.Errorf("IPoIB-RC at 100us = %.1f MB/s, want near peak", peak)
	}
	if far > peak/4 {
		t.Errorf("IPoIB-RC at 10ms = %.1f MB/s vs peak %.1f; want sharp drop", far, peak)
	}
}

func TestRetransmissionRecoversDrop(t *testing.T) {
	env, sa, sb := pairStacks(ipoib.Datagram, 0, sim.Micros(10), Config{})
	// Install a one-shot drop on the WAN link: rebuild is awkward, so use
	// a fresh testbed with DropFn instead.
	env2 := sim.NewEnv()
	tb := cluster.New(env2, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(10)})
	n := ipoib.NewNetwork()
	da := n.Attach(tb.A[0].HCA, ipoib.Datagram, 0)
	db := n.Attach(tb.B[0].HCA, ipoib.Datagram, 0)
	sa2, sb2 := NewStack(da, Config{}), NewStack(db, Config{})
	dropped := false
	tb.WAN.Link().DropFn = func(_ sim.Time, wire int) bool {
		if !dropped && wire > 1000 { // drop one full data segment
			dropped = true
			return true
		}
		return false
	}
	payload := make([]byte, 256<<10)
	rng := rand.New(rand.NewSource(3))
	rng.Read(payload)
	ln := sb2.Listen(5000)
	var got []byte
	var cli *Conn
	env2.Go("server", func(p *sim.Proc) {
		c, _ := ln.Accept(p)
		got, _ = c.ReadFull(p, len(payload))
		env2.Stop()
	})
	env2.Go("client", func(p *sim.Proc) {
		c, _ := sa2.Dial(p, sb2.Addr(), 5000)
		cli = c
		c.Write(p, payload)
	})
	env2.Run()
	// Fast retransmit repairs the hole within a round trip, so the counter
	// is read after the run rather than polled on a wall-clock cadence.
	rtx := cli.Retransmits()
	env2.Shutdown()
	env.Shutdown()
	_ = sa
	_ = sb
	if !dropped {
		t.Fatal("drop injection never fired")
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted after retransmission")
	}
	if rtx == 0 {
		t.Error("no retransmission recorded")
	}
}

func TestManyConnectionsDistinctPorts(t *testing.T) {
	env, sa, sb := pairStacks(ipoib.Datagram, 0, 0, Config{})
	const n = 8
	lns := make([]*Listener, n)
	for i := 0; i < n; i++ {
		lns[i] = sb.Listen(7000 + i)
	}
	results := make([]byte, n)
	for i := 0; i < n; i++ {
		i := i
		env.Go("srv", func(p *sim.Proc) {
			c, _ := lns[i].Accept(p)
			b, _ := c.ReadFull(p, 1)
			results[i] = b[0]
		})
		env.Go("cli", func(p *sim.Proc) {
			c, _ := sa.Dial(p, sb.Addr(), 7000+i)
			c.Write(p, []byte{byte(i + 1)})
		})
	}
	env.Run()
	env.Shutdown()
	for i := 0; i < n; i++ {
		if results[i] != byte(i+1) {
			t.Errorf("conn %d got %d, want %d", i, results[i], i+1)
		}
	}
}

func TestDuplicateListenPanics(t *testing.T) {
	env, _, sb := pairStacks(ipoib.Datagram, 0, 0, Config{})
	sb.Listen(9000)
	defer func() {
		env.Shutdown()
		if recover() == nil {
			t.Fatal("duplicate Listen did not panic")
		}
	}()
	sb.Listen(9000)
}

// Property: any sequence of write chunk sizes arrives intact and in order.
func TestPropStreamIntegrity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env, sa, sb := pairStacks(ipoib.Datagram, 0, sim.Micros(10), Config{})
		nchunks := 1 + rng.Intn(8)
		var all []byte
		chunks := make([][]byte, nchunks)
		for i := range chunks {
			chunks[i] = make([]byte, 1+rng.Intn(20000))
			rng.Read(chunks[i])
			all = append(all, chunks[i]...)
		}
		ln := sb.Listen(5000)
		var got []byte
		env.Go("server", func(p *sim.Proc) {
			c, _ := ln.Accept(p)
			got, _ = c.ReadFull(p, len(all))
			env.Stop()
		})
		env.Go("client", func(p *sim.Proc) {
			c, _ := sa.Dial(p, sb.Addr(), 5000)
			for _, ch := range chunks {
				c.Write(p, ch)
			}
		})
		env.Run()
		env.Shutdown()
		return bytes.Equal(got, all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSegCPUMonotonic(t *testing.T) {
	if segCPU(0) <= 0 {
		t.Error("segCPU(0) not positive")
	}
	if segCPU(2000) <= segCPU(100) {
		t.Error("segCPU not increasing with payload")
	}
}
