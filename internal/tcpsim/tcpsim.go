// Package tcpsim models the TCP/IP stack running over IPoIB interfaces. It
// reproduces the two mechanisms that govern the paper's IPoIB results
// (§3.3):
//
//   - Host stack processing: every segment costs per-packet and per-byte
//     CPU time in serialized transmit and receive contexts (one softirq
//     context per interface, as in a 2008-era kernel). This caps IPoIB-UD
//     (2 KB MTU) near 450 MB/s and IPoIB-RC (64 KB MTU) near 890 MB/s,
//     well under verbs rates — matching the paper's observation that "the
//     peak bandwidth that IPoIB UD achieves is significantly lower than
//     the peak verbs-level UD bandwidth due to the TCP stack processing
//     overhead".
//   - Window-based flow control: at most min(cwnd, advertised window)
//     bytes may be unacknowledged, so single-stream throughput collapses
//     once the WAN bandwidth-delay product exceeds the window — and
//     parallel streams, each with its own window, recover the loss
//     (paper Figs. 6 and 7).
package tcpsim

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/ib"
	"repro/internal/ipoib"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Connection-level failures surfaced by the recovery machinery. The error
// values (and strings) are fixed so faulted experiment output stays
// deterministic.
var (
	// ErrReset reports that a connection gave up: MaxRetransmits
	// consecutive unproductive retransmission timeouts.
	ErrReset = errors.New("tcpsim: connection reset: retransmission limit exceeded")
	// ErrConnectTimeout reports that the three-way handshake never
	// completed within the retry budget.
	ErrConnectTimeout = errors.New("tcpsim: connect timed out")
)

// Protocol constants.
const (
	// HeaderBytes is the TCP+IP header size per segment.
	HeaderBytes = 40
	// DefaultWindow models the stack's auto-tuned window (the paper's
	// "default" curve): large enough to cover moderate-delay links, too
	// small for the largest WAN separations.
	DefaultWindow = 768 << 10
	// InitialCwnd is the initial congestion window in segments.
	InitialCwnd = 4
)

// Host processing costs, calibrated so IPoIB-UD peaks ~450 MB/s and
// IPoIB-RC (64 KB MTU) ~890 MB/s as in the paper's figures.
const (
	// PerPacketCPU is the fixed cost of pushing one segment through the
	// stack (interrupt, demux, protocol processing).
	PerPacketCPU = 2270 * sim.Nanosecond
	// PerByteCPUNanos is the copy/checksum cost per byte, in nanoseconds.
	PerByteCPUNanos = 1.09
)

// segCPU is the stack processing time for a segment with the given payload.
func segCPU(payload int) sim.Time {
	return PerPacketCPU + sim.Time(float64(payload+HeaderBytes)*PerByteCPUNanos)
}

// DefaultRTO is the default base retransmission timeout. The fabric is
// FIFO and lossless, so timers only fire under fault injection; a generous
// base keeps the fault-free model simple.
const DefaultRTO = 50 * sim.Millisecond

// DefaultMaxRetransmits is the default bound on consecutive unproductive
// retransmission timeouts (and handshake retries) before the connection
// resets, mirroring a 2008-era Linux tcp_retries2.
const DefaultMaxRetransmits = 8

// maxRTOShift caps the exponential RTO backoff at base << 6 (64x).
const maxRTOShift = 6

// Config tunes a stack.
type Config struct {
	// Window is the advertised receive window and congestion window
	// ceiling in bytes (0 = DefaultWindow).
	Window int
	// RTO is the base retransmission timeout (0 = DefaultRTO). Successive
	// unproductive timeouts back off exponentially from this base, capped
	// at 64x.
	RTO sim.Time
	// MaxRetransmits bounds consecutive unproductive retransmission
	// timeouts — and, symmetrically, handshake (SYN/SYNACK) retries —
	// before the connection resets with ErrReset/ErrConnectTimeout.
	// 0 selects DefaultMaxRetransmits; a negative value retries forever.
	MaxRetransmits int
	// ECN enables RFC 3168-style congestion signalling: segments arriving
	// with a congestion-experienced mark (set by a bounded link queue) make
	// the receiver echo ECE on its acks until the sender confirms with CWR,
	// and an ECE-marked ack halves the sender's congestion window once per
	// round trip. Off, marks are ignored (a non-ECT flow) and behavior is
	// byte-identical to the pre-congestion stack.
	ECN bool
}

type connKey struct {
	remote                ib.LID
	remotePort, localPort int
}

// Stack is the TCP/IP instance bound to one IPoIB interface.
type Stack struct {
	env       *sim.Env
	dev       *ipoib.NetDev
	cfg       Config
	listeners map[int]*Listener
	conns     map[connKey]*Conn
	nextPort  int
	txq       *sim.Queue[*segment]
	rxq       *sim.Queue[*segment]
	stats     StackStats
	// segFree recycles segment objects. Like the fabric's packet pool it
	// is a plain slice touched only from the stack's environment, so reuse
	// is deterministic. A segment may be created on one stack and freed on
	// the peer's (control segments are consumed at the receiver); each
	// stack simply pools whatever it frees.
	segFree []*segment
	// sharded marks a stack living on a shard view of a partitioned world.
	// Mirroring the fabric's policy, sharded stacks never pool segments: a
	// segment's last toucher can be either endpoint's shard, so recycling
	// would race; fresh allocations fall back to the garbage collector.
	sharded bool
	// obs holds possibly-nil telemetry handles; record methods on nil
	// handles are no-ops, so the disabled path costs a nil check per site.
	obs stackObs
	// dropFn, when non-nil, is consulted per outbound segment after
	// transmit-side processing; returning true loses the segment (fault
	// injection at the TCP layer).
	dropFn func(wireBytes int) bool
	// chaos arms the recovery timers that exist only for fault tolerance
	// (handshake retransmission). It is set when the environment carries
	// an enabled fault plan, or via SetDropFn: fault-free runs schedule
	// not a single extra event, keeping their output byte-identical.
	chaos bool
}

// stackObs caches the stack's telemetry metric handles.
type stackObs struct {
	txSegs, rxSegs   *telemetry.Counter
	txBytes, rxBytes *telemetry.Counter
	retransmits      *telemetry.Counter
	resets           *telemetry.Counter   // connections torn down by the recovery machinery
	segDrops         *telemetry.Counter   // fault-injected segment losses
	segProcNS        *telemetry.Histogram // per-segment stack processing cost
	ecnCE            *telemetry.Counter   // segments received with the CE mark
	ecnCuts          *telemetry.Counter   // cwnd reductions triggered by ECE echoes
	fastRetransmits  *telemetry.Counter   // dup-ack triggered retransmissions
}

// newSegment returns a zeroed segment (its spans backing array is kept).
// On a sharded world segments are always fresh: the pool belongs to no
// single shard.
func (s *Stack) newSegment() *segment {
	if s.sharded {
		return &segment{}
	}
	if n := len(s.segFree); n > 0 {
		seg := s.segFree[n-1]
		s.segFree = s.segFree[:n-1]
		return seg
	}
	return &segment{}
}

// transmit hands a segment to the transmit context, counting the flight.
// The matching release happens after the peer's receive context processed
// the segment (or never, if fault injection drops it — then the segment
// falls back to the garbage collector).
func (s *Stack) transmit(seg *segment) {
	atomic.AddInt32(&seg.refs, 1)
	s.txq.TryPut(seg)
}

// unrefSegment ends one flight of seg.
func (s *Stack) unrefSegment(seg *segment) {
	if atomic.AddInt32(&seg.refs, -1) < 0 {
		panic("tcpsim: segment reference count underflow")
	}
	s.maybeFreeSegment(seg)
}

// maybeFreeSegment recycles seg once no flight is in progress and the
// sender no longer holds it for retransmission. Sharded stacks never
// recycle (see the sharded field); the segment is left to the garbage
// collector, which also keeps the inUnacked read shard-local.
func (s *Stack) maybeFreeSegment(seg *segment) {
	if s.sharded {
		return
	}
	if atomic.LoadInt32(&seg.refs) == 0 && !seg.inUnacked {
		spans := seg.spans
		for i := range spans {
			spans[i] = span{}
		}
		*seg = segment{}
		seg.spans = spans[:0]
		s.segFree = append(s.segFree, seg)
	}
}

// StackStats counts stack activity, for utilization analysis.
type StackStats struct {
	TxSegments, RxSegments int64
	TxBytes, RxBytes       int64
	TxBusy, RxBusy         sim.Time // cumulative processing time
	SegDrops               int64    // segments lost to fault injection
	Resets                 int64    // connections reset by the recovery machinery
}

// NewStack binds a TCP stack to an IPoIB interface and starts its transmit
// and receive contexts.
func NewStack(dev *ipoib.NetDev, cfg Config) *Stack {
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.RTO == 0 {
		cfg.RTO = DefaultRTO
	}
	if cfg.MaxRetransmits == 0 {
		cfg.MaxRetransmits = DefaultMaxRetransmits
	}
	s := &Stack{
		env:       dev.Env(),
		dev:       dev,
		sharded:   dev.Env().Sharded(),
		cfg:       cfg,
		listeners: make(map[int]*Listener),
		conns:     make(map[connKey]*Conn),
		nextPort:  40000,
		txq:       sim.NewQueue[*segment](dev.Env(), 0),
		rxq:       sim.NewQueue[*segment](dev.Env(), 0),
	}
	if tel := telemetry.FromEnv(s.env); tel != nil && tel.Metrics != nil {
		m := tel.Metrics
		s.obs = stackObs{
			txSegs:      m.Counter("tcp.tx.segments"),
			rxSegs:      m.Counter("tcp.rx.segments"),
			txBytes:     m.Counter("tcp.tx.bytes"),
			rxBytes:     m.Counter("tcp.rx.bytes"),
			retransmits: m.Counter("tcp.retransmits"),
			resets:      m.Counter("tcp.conn.resets"),
			segDrops:    m.Counter("tcp.seg.drops"),
			segProcNS:   m.Histogram("tcp.segment.proc.ns"),
			ecnCE:       m.Counter("tcp.ecn.ce.segments"),
			ecnCuts:     m.Counter("tcp.ecn.cwnd.cuts"),
			fastRetransmits: m.Counter("tcp.fast.retransmits"),
		}
	}
	// A fault plan on the environment arms the stack's chaos machinery:
	// the TCP-layer segment-loss injector (if the plan asks for one) and
	// the handshake recovery timers (a WAN-level fault can strand a
	// handshake even when the plan injects no TCP loss itself).
	if pl := fault.PlanFromEnv(s.env); pl != nil && pl.Enabled() {
		s.chaos = true
		if in := pl.ArmTCP(s.env); in != nil {
			s.dropFn = func(wire int) bool { return in.DropWire(s.env.Now(), wire) }
		}
	}
	dev.SetHandler(func(src ib.LID, payload any, length int, ecn bool) {
		seg, ok := payload.(*segment)
		if !ok {
			return // not TCP traffic
		}
		if ecn && s.cfg.ECN {
			// The bounded link queue marked the carrying transfer; stamp
			// the CE codepoint for the receive path to echo as ECE.
			seg.ce = true
		}
		s.rxq.TryPut(seg)
	})
	name := fmt.Sprintf("tcp-%d", dev.LID())
	// Transmit context: serialized per-segment send processing.
	s.env.Go(name+"-tx", func(p *sim.Proc) {
		for {
			seg := s.txq.Get(p)
			c := segCPU(seg.length)
			s.stats.TxSegments++
			s.stats.TxBytes += int64(seg.length)
			s.stats.TxBusy += c
			s.obs.txSegs.Add(1)
			s.obs.txBytes.Add(int64(seg.length))
			s.obs.segProcNS.Observe(int64(c))
			p.Sleep(c)
			if s.dropFn != nil && s.dropFn(seg.length+HeaderBytes) {
				// TCP-layer fault injection: the segment is lost after
				// transmit processing. End its flight; data segments stay
				// in the sender's retransmission queue.
				s.stats.SegDrops++
				s.obs.segDrops.Add(1)
				s.unrefSegment(seg)
				continue
			}
			s.dev.Send(seg.dst, seg, seg.length+HeaderBytes)
		}
	})
	// Receive context (softirq): serialized per-segment receive
	// processing for every flow on the interface.
	s.env.Go(name+"-rx", func(p *sim.Proc) {
		for {
			seg := s.rxq.Get(p)
			c := segCPU(seg.length)
			s.stats.RxSegments++
			s.stats.RxBytes += int64(seg.length)
			s.stats.RxBusy += c
			s.obs.rxSegs.Add(1)
			s.obs.rxBytes.Add(int64(seg.length))
			p.Sleep(c)
			s.dispatch(seg)
			s.unrefSegment(seg)
		}
	})
	return s
}

// Stats returns a snapshot of the stack counters.
func (s *Stack) Stats() StackStats { return s.stats }

// SetDropFn installs (or, with nil, removes) a per-segment fault-injection
// hook: fn is consulted for every outbound segment after transmit-side
// processing, and returning true loses it. Installing a hook also arms the
// stack's handshake recovery timers.
func (s *Stack) SetDropFn(fn func(wireBytes int) bool) {
	s.dropFn = fn
	if fn != nil {
		s.chaos = true
	}
}

// Env returns the simulation environment.
func (s *Stack) Env() *sim.Env { return s.env }

// Addr returns the stack's network address (the interface LID).
func (s *Stack) Addr() ib.LID { return s.dev.LID() }

// MSS returns the maximum segment payload for this interface.
func (s *Stack) MSS() int { return s.dev.MTU() - HeaderBytes }

// Window returns the configured window in bytes.
func (s *Stack) Window() int { return s.cfg.Window }

// Listen opens a listening socket on the port.
func (s *Stack) Listen(port int) *Listener {
	if _, dup := s.listeners[port]; dup {
		panic(fmt.Sprintf("tcpsim: port %d already listening", port))
	}
	l := &Listener{stack: s, port: port, backlog: sim.NewQueue[*Conn](s.env, 0)}
	s.listeners[port] = l
	return l
}

// Dial opens a connection to the remote stack and blocks until the
// three-way handshake completes. Under fault injection the SYN is
// retransmitted with exponential backoff; when the retry budget runs out
// the dial fails with ErrConnectTimeout.
func (s *Stack) Dial(p *sim.Proc, remote ib.LID, port int) (*Conn, error) {
	s.nextPort++
	c := newConn(s, remote, port, s.nextPort)
	s.conns[c.key()] = c
	c.sendCtl(synFlag)
	if s.chaos {
		c.armHandshake(synFlag)
	}
	p.Wait(c.established)
	if c.err != nil {
		return nil, c.err
	}
	return c, nil
}

// dispatch routes an inbound segment to its connection or listener.
func (s *Stack) dispatch(seg *segment) {
	key := connKey{remote: seg.srcAddr, remotePort: seg.srcPort, localPort: seg.dstPort}
	if c, ok := s.conns[key]; ok {
		c.handle(seg)
		return
	}
	if seg.flags&synFlag != 0 && seg.flags&ackFlag == 0 {
		if l, ok := s.listeners[seg.dstPort]; ok {
			c := newConn(s, seg.srcAddr, seg.srcPort, seg.dstPort)
			c.passive = true
			c.swnd = seg.wnd
			s.conns[key] = c
			c.sendCtl(synFlag | ackFlag)
			if s.chaos {
				c.armHandshake(synFlag | ackFlag)
			}
			l.backlog.TryPut(c)
			return
		}
	}
	// No socket: drop silently (no RST modeling needed).
}

// Listener accepts inbound connections.
type Listener struct {
	stack   *Stack
	port    int
	backlog *sim.Queue[*Conn]
}

// Accept blocks until a connection arrives and returns it once established.
// Under fault injection an accepted connection whose handshake never
// completes fails with ErrConnectTimeout.
func (l *Listener) Accept(p *sim.Proc) (*Conn, error) {
	c := l.backlog.Get(p)
	p.Wait(c.established)
	if c.err != nil {
		return nil, c.err
	}
	return c, nil
}
