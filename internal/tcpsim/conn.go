package tcpsim

import (
	"repro/internal/ib"
	"repro/internal/sim"
)

// Segment flags.
const (
	synFlag = 1 << iota
	ackFlag
	finFlag
)

// segment is one TCP segment. Headers ride as struct fields; the simulated
// wire length is length+HeaderBytes. The same segment object travels from
// the sending connection through both stacks' processing contexts to the
// receiving connection (there is no wire serialization), and go-back-N can
// put it in flight several times — so recycling is governed by a flight
// reference count plus retransmission-queue membership, not by any single
// owner.
type segment struct {
	srcAddr, dst     ib.LID
	srcPort, dstPort int
	flags            int
	seq, ack         int64
	wnd              int    // advertised window (SYN/SYNACK and acks)
	length           int    // payload bytes
	spans            []span // payload runs (real or synthetic), in order

	// refs counts in-progress flights: transmissions handed to a transmit
	// context whose receive-side processing has not finished yet. A flight
	// lost to fault injection never completes, leaving the segment to the
	// garbage collector — safe, just unpooled.
	refs int
	// inUnacked marks membership in the sender's retransmission queue.
	inUnacked bool
}

// span is a run of stream bytes, possibly synthetic.
type span struct {
	data   []byte
	length int
}

// Conn is one TCP connection endpoint.
type Conn struct {
	stack                 *Stack
	remote                ib.LID
	remotePort, localPort int

	established *sim.Event

	// Sender state.
	sndUna, sndNxt int64
	cwnd           int
	swnd           int // peer's advertised window
	sendQ          sim.Ring[span]
	sendQBytes     int
	unacked        sim.Ring[*segment] // retransmission queue (go-back-N)
	writeWaiters   sim.Ring[*sim.Event]
	rtoGen         int
	// rtoStreak counts consecutive unproductive RTO expiries; it shifts
	// the exponential backoff and, against MaxRetransmits, decides when
	// the connection gives up. Any ack progress resets it.
	rtoStreak int
	// hsTries counts handshake (SYN/SYNACK) retransmissions.
	hsTries int
	// passive marks the server-side endpoint of a handshake (created by a
	// listener); a duplicate SYN makes it resend its SYNACK.
	passive bool
	// err, once set, is the connection's terminal failure (ErrReset,
	// ErrConnectTimeout): all pending and future I/O fails with it.
	err error

	// Receiver state.
	rcvNxt      int64
	recvBuf     sim.Ring[span]
	recvBytes   int
	readWaiters sim.Ring[*sim.Event]

	// Counters.
	delivered   int64 // in-order payload bytes accepted (receive side)
	retransmits int64
}

func newConn(s *Stack, remote ib.LID, remotePort, localPort int) *Conn {
	return &Conn{
		stack:       s,
		remote:      remote,
		remotePort:  remotePort,
		localPort:   localPort,
		established: s.env.NewEvent(),
		cwnd:        InitialCwnd * s.MSS(),
		swnd:        s.cfg.Window, // refined by SYN/SYNACK exchange
	}
}

func (c *Conn) key() connKey {
	return connKey{remote: c.remote, remotePort: c.remotePort, localPort: c.localPort}
}

// Stack returns the owning stack.
func (c *Conn) Stack() *Stack { return c.stack }

// Delivered returns the count of in-order payload bytes this endpoint has
// accepted from the peer (whether or not Read has consumed them). It is the
// throughput counter used by the benchmarks.
func (c *Conn) Delivered() int64 { return c.delivered }

// Retransmits returns the number of go-back-N recoveries.
func (c *Conn) Retransmits() int64 { return c.retransmits }

// Err returns the connection's terminal failure, or nil while it is
// healthy.
func (c *Conn) Err() error { return c.err }

// reset tears the connection down with the given terminal error: the
// retransmission machinery stops, buffered send data is discarded, and
// every blocked reader, writer and dialer wakes to observe c.err. Receive
// data already in order stays readable (Read drains it before reporting
// the error). Idempotent.
func (c *Conn) reset(err error) {
	if c.err != nil {
		return
	}
	c.err = err
	c.rtoGen++ // cancel in-flight RTO timers
	c.stack.stats.Resets++
	c.stack.obs.resets.Add(1)
	for c.unacked.Len() > 0 {
		seg := c.unacked.Pop()
		seg.inUnacked = false
		c.stack.maybeFreeSegment(seg)
	}
	for c.sendQ.Len() > 0 {
		c.sendQ.Pop()
	}
	c.sendQBytes = 0
	if !c.established.Triggered() {
		c.established.Trigger(nil) // wake Dial/Accept to see the error
	}
	for c.writeWaiters.Len() > 0 {
		c.writeWaiters.Pop().Trigger(nil)
	}
	for c.readWaiters.Len() > 0 {
		c.readWaiters.Pop().Trigger(nil)
	}
}

// window is the current effective send window.
func (c *Conn) window() int {
	w := c.cwnd
	if c.swnd < w {
		w = c.swnd
	}
	return w
}

// sendBufCap bounds application writes ahead of the window.
func (c *Conn) sendBufCap() int { return 2 * c.stack.cfg.Window }

// Write queues real payload bytes on the stream, blocking while the send
// buffer is full. It fails with the connection's terminal error once the
// recovery machinery has given up.
func (c *Conn) Write(p *sim.Proc, data []byte) error {
	if len(data) == 0 {
		return c.err
	}
	d := make([]byte, len(data))
	copy(d, data)
	return c.write(p, span{data: d, length: len(d)})
}

// WriteSynthetic queues n synthetic payload bytes (zeroes at the receiver),
// for traffic generation without byte-copy costs in the host simulator.
func (c *Conn) WriteSynthetic(p *sim.Proc, n int) error {
	if n <= 0 {
		return c.err
	}
	return c.write(p, span{length: n})
}

func (c *Conn) write(p *sim.Proc, sp span) error {
	if c.err != nil {
		return c.err
	}
	for c.sendQBytes >= c.sendBufCap() {
		ev := c.stack.env.AcquireEvent()
		c.writeWaiters.Push(ev)
		p.Wait(ev)
		c.stack.env.ReleaseEvent(ev)
		if c.err != nil {
			return c.err
		}
	}
	c.sendQ.Push(sp)
	c.sendQBytes += sp.length
	c.pump()
	return nil
}

// Read blocks until stream bytes are available and returns up to max of
// them (synthetic spans materialize as zero bytes). Buffered in-order data
// is drained before a terminal connection error is reported.
func (c *Conn) Read(p *sim.Proc, max int) ([]byte, error) {
	for c.recvBytes == 0 {
		if c.err != nil {
			return nil, c.err
		}
		ev := c.stack.env.AcquireEvent()
		c.readWaiters.Push(ev)
		p.Wait(ev)
		c.stack.env.ReleaseEvent(ev)
	}
	n := c.recvBytes
	if n > max {
		n = max
	}
	out := make([]byte, 0, n)
	for len(out) < n {
		sp := c.recvBuf.Front()
		take := n - len(out)
		if take > sp.length {
			take = sp.length
		}
		if sp.data != nil {
			out = append(out, sp.data[:take]...)
			sp.data = sp.data[take:]
		} else {
			out = append(out, make([]byte, take)...)
		}
		sp.length -= take
		if sp.length == 0 {
			c.recvBuf.Pop()
		}
	}
	c.recvBytes -= n
	return out, nil
}

// ReadFull blocks until exactly n bytes are available and returns them, or
// the connection's terminal error if it dies first.
func (c *Conn) ReadFull(p *sim.Proc, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for len(out) < n {
		chunk, err := c.Read(p, n-len(out))
		if err != nil {
			return out, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// pump segments queued stream bytes into the transmit context while the
// window has room. Segments are packed to the MSS across application write
// boundaries, and a sub-MSS segment is only emitted when it drains the send
// queue or nothing is in flight — the standard defense against silly-window
// fragmentation (without it, per-segment costs at odd sizes dominate).
func (c *Conn) pump() {
	if !c.established.Triggered() {
		return
	}
	mss := c.stack.MSS()
	for c.sendQBytes > 0 {
		inflight := int(c.sndNxt - c.sndUna)
		room := c.window() - inflight
		if room <= 0 {
			break
		}
		n := min(mss, c.sendQBytes, room)
		if n < mss && n < c.sendQBytes && inflight > 0 {
			// Partial segment while more data and acks are pending:
			// wait for the window to open rather than fragment.
			break
		}
		seg := c.newSegment(ackFlag)
		seg.length = n
		// Pack n bytes from the head spans.
		left := n
		for left > 0 {
			sp := c.sendQ.Front()
			take := min(left, sp.length)
			if sp.data != nil {
				seg.spans = append(seg.spans, span{data: sp.data[:take], length: take})
				sp.data = sp.data[take:]
			} else {
				seg.spans = append(seg.spans, span{length: take})
			}
			sp.length -= take
			left -= take
			if sp.length == 0 {
				c.sendQ.Pop()
			}
		}
		c.sendQBytes -= n
		c.sndNxt += int64(n)
		seg.inUnacked = true
		c.unacked.Push(seg)
		c.stack.transmit(seg)
		if c.unacked.Len() == 1 {
			c.armRTO()
		}
	}
	// Wake writers if buffer space opened up.
	for c.writeWaiters.Len() > 0 && c.sendQBytes < c.sendBufCap() {
		c.writeWaiters.Pop().Trigger(nil)
	}
}

// newSegment takes a segment from the stack's pool and stamps this
// connection's headers on it.
func (c *Conn) newSegment(flags int) *segment {
	seg := c.stack.newSegment()
	seg.srcAddr, seg.dst = c.stack.Addr(), c.remote
	seg.srcPort, seg.dstPort = c.localPort, c.remotePort
	seg.flags = flags
	seg.seq, seg.ack = c.sndNxt, c.rcvNxt
	seg.wnd = c.stack.cfg.Window
	return seg
}

// sendCtl emits a control segment (SYN, SYN|ACK, pure ACK).
func (c *Conn) sendCtl(flags int) {
	c.stack.transmit(c.newSegment(flags))
}

// handle processes an inbound segment (already charged receive CPU).
func (c *Conn) handle(seg *segment) {
	switch {
	case seg.flags&synFlag != 0 && seg.flags&ackFlag != 0:
		// Client side: SYNACK.
		c.swnd = seg.wnd
		c.sendCtl(ackFlag)
		if !c.established.Triggered() {
			c.established.Trigger(nil)
		}
		c.pump()
		return
	case seg.flags&synFlag != 0:
		// Duplicate SYN: our SYNACK (or the peer's first ACK) was lost.
		// The passive side answers again; dispatch created the conn.
		if c.passive && !c.established.Triggered() {
			c.sendCtl(synFlag | ackFlag)
		}
		return
	}
	if !c.established.Triggered() {
		// Server side: first ACK completes the handshake.
		c.swnd = seg.wnd
		c.established.Trigger(nil)
	}
	if seg.length > 0 {
		c.handleData(seg)
	}
	c.handleAck(seg.ack)
}

func (c *Conn) handleData(seg *segment) {
	switch {
	case seg.seq == c.rcvNxt:
		c.rcvNxt += int64(seg.length)
		c.delivered += int64(seg.length)
		// Span values are copied out of the segment, so recycling the
		// segment never touches buffered stream data.
		for _, sp := range seg.spans {
			c.recvBuf.Push(sp)
		}
		c.recvBytes += seg.length
		for c.readWaiters.Len() > 0 {
			c.readWaiters.Pop().Trigger(nil)
		}
	case seg.seq < c.rcvNxt:
		// Duplicate from a retransmission: ack again below.
	default:
		// Gap (a predecessor was dropped): go-back-N discards.
	}
	c.sendCtl(ackFlag)
}

func (c *Conn) handleAck(ackNum int64) {
	if ackNum <= c.sndUna {
		return
	}
	acked := int(ackNum - c.sndUna)
	c.sndUna = ackNum
	for c.unacked.Len() > 0 {
		head := *c.unacked.Front()
		if head.seq+int64(head.length) > ackNum {
			break
		}
		c.unacked.Pop()
		head.inUnacked = false
		c.stack.maybeFreeSegment(head)
	}
	// Slow start toward the window ceiling (the fabric is lossless, so no
	// congestion events occur and cwnd rises monotonically).
	if c.cwnd < c.stack.cfg.Window {
		c.cwnd += acked
		if c.cwnd > c.stack.cfg.Window {
			c.cwnd = c.stack.cfg.Window
		}
	}
	c.rtoGen++
	c.rtoStreak = 0 // forward progress: recovery is working
	if c.unacked.Len() > 0 {
		c.armRTO()
	}
	c.pump()
}

// armRTO arms the retransmission timer. The fabric is FIFO and lossless,
// so it only fires under fault injection. Each unproductive expiry doubles
// the timeout (capped at RTO<<maxRTOShift) and counts against the stack's
// MaxRetransmits budget; exhausting it resets the connection, so a
// permanently dead WAN terminates with ErrReset instead of retransmitting
// forever.
func (c *Conn) armRTO() {
	gen := c.rtoGen
	shift := c.rtoStreak
	if shift > maxRTOShift {
		shift = maxRTOShift
	}
	c.stack.env.At(c.stack.cfg.RTO<<shift, func() {
		if gen != c.rtoGen || c.unacked.Len() == 0 {
			return
		}
		if mx := c.stack.cfg.MaxRetransmits; mx >= 0 && c.rtoStreak >= mx {
			c.reset(ErrReset)
			return
		}
		c.rtoStreak++
		// Go-back-N: resend everything outstanding.
		c.retransmits++
		c.stack.obs.retransmits.Add(1)
		c.rtoGen++
		for i := 0; i < c.unacked.Len(); i++ {
			c.stack.transmit(*c.unacked.At(i))
		}
		c.armRTO()
	})
}

// armHandshake retransmits the connection-establishing control segment
// (SYN on the active side, SYN|ACK on the passive side) until the
// handshake completes, with the same backoff and budget as data RTOs.
// Exhaustion resets the connection with ErrConnectTimeout. Only armed on
// chaos-enabled stacks: fault-free runs schedule no handshake timers.
func (c *Conn) armHandshake(flags int) {
	tries := c.hsTries
	shift := tries
	if shift > maxRTOShift {
		shift = maxRTOShift
	}
	c.stack.env.At(c.stack.cfg.RTO<<shift, func() {
		if c.established.Triggered() || c.err != nil || tries != c.hsTries {
			return
		}
		if mx := c.stack.cfg.MaxRetransmits; mx >= 0 && c.hsTries >= mx {
			c.reset(ErrConnectTimeout)
			return
		}
		c.hsTries++
		c.retransmits++
		c.stack.obs.retransmits.Add(1)
		c.sendCtl(flags)
		c.armHandshake(flags)
	})
}
