package tcpsim

import (
	"repro/internal/ib"
	"repro/internal/sim"
)

// Segment flags.
const (
	synFlag = 1 << iota
	ackFlag
	finFlag
	// eceFlag echoes a congestion-experienced mark back to the sender
	// (RFC 3168 ECN-Echo); the receiver keeps setting it until the sender
	// confirms with cwrFlag.
	eceFlag
	// cwrFlag confirms the sender reduced its congestion window.
	cwrFlag
)

// segment is one TCP segment. Headers ride as struct fields; the simulated
// wire length is length+HeaderBytes. The same segment object travels from
// the sending connection through both stacks' processing contexts to the
// receiving connection (there is no wire serialization), and go-back-N can
// put it in flight several times — so recycling is governed by a flight
// reference count plus retransmission-queue membership, not by any single
// owner.
type segment struct {
	srcAddr, dst     ib.LID
	srcPort, dstPort int
	flags            int
	seq, ack         int64
	wnd              int    // advertised window (SYN/SYNACK and acks)
	length           int    // payload bytes
	spans            []span // payload runs (real or synthetic), in order
	// ce is the IP-layer congestion-experienced codepoint, stamped by the
	// receiving stack when the carrying IB transfer was marked by a bounded
	// link queue. Receiver-owned, like the delivery bookkeeping.
	ce bool

	// refs counts in-progress flights: transmissions handed to a transmit
	// context whose receive-side processing has not finished yet. A flight
	// lost to fault injection never completes, leaving the segment to the
	// garbage collector — safe, just unpooled. It is atomic because on a
	// sharded world a go-back-N retransmission (sender shard, refs up) can
	// overlap the original flight's receive processing (peer shard, refs
	// down) inside one conservative window. A plain int32 driven through
	// sync/atomic functions (not atomic.Int32) keeps the pooled zeroing
	// assignment in maybeFreeSegment copyable.
	refs int32
	// inUnacked marks membership in the sender's retransmission queue.
	inUnacked bool
}

// span is a run of stream bytes, possibly synthetic.
type span struct {
	data   []byte
	length int
}

// oooSeg is one out-of-order segment parked in the receiver's reassembly
// queue: its sequence range and its payload spans, copied out so the
// segment object itself can be recycled.
type oooSeg struct {
	seq    int64
	length int
	spans  []span
}

// Conn is one TCP connection endpoint.
type Conn struct {
	stack                 *Stack
	remote                ib.LID
	remotePort, localPort int

	established *sim.Event

	// Sender state.
	sndUna, sndNxt int64
	cwnd           int
	swnd           int // peer's advertised window
	// ssthresh separates exponential slow start from additive congestion
	// avoidance. It starts at the window ceiling, so a flow that never sees
	// congestion grows exactly like the seed model's monotonic slow start.
	ssthresh int
	// dupAcks counts consecutive duplicate acks; three trigger fast
	// retransmit.
	dupAcks int
	// recover is the highest sequence outstanding at the last window cut;
	// acks below it belong to the same congestion event and must not cut
	// again (one multiplicative decrease per round trip).
	recover int64
	// lossRecovery is true from a fast retransmit until the cumulative ack
	// passes recover: partial acks inside the round refill the halved flight
	// but neither grow the window nor retransmit again.
	lossRecovery bool
	// sendCWR schedules a congestion-window-reduced confirmation on the
	// next data segment, answering the receiver's ECE echo.
	sendCWR bool
	sendQ          sim.Ring[span]
	sendQBytes     int
	unacked        sim.Ring[*segment] // retransmission queue (go-back-N)
	writeWaiters   sim.Ring[*sim.Event]
	rtoGen         int
	// rtoStreak counts consecutive unproductive RTO expiries; it shifts
	// the exponential backoff and, against MaxRetransmits, decides when
	// the connection gives up. Any ack progress resets it.
	rtoStreak int
	// hsTries counts handshake (SYN/SYNACK) retransmissions.
	hsTries int
	// passive marks the server-side endpoint of a handshake (created by a
	// listener); a duplicate SYN makes it resend its SYNACK.
	passive bool
	// err, once set, is the connection's terminal failure (ErrReset,
	// ErrConnectTimeout): all pending and future I/O fails with it.
	err error

	// Receiver state.
	rcvNxt      int64
	recvBuf     sim.Ring[span]
	recvBytes   int
	readWaiters sim.Ring[*sim.Event]
	// ooo is the reassembly queue: segments that arrived beyond a hole,
	// sorted by sequence, waiting for a retransmission to fill the gap.
	// With it, one lost segment costs one retransmission instead of a
	// whole go-back-N window. Empty on every in-order path, so clean runs
	// never touch it.
	ooo []oooSeg
	// echoECE keeps ECE set on outgoing segments from the first
	// congestion-experienced arrival until the peer confirms with CWR.
	echoECE bool

	// Counters.
	delivered   int64 // in-order payload bytes accepted (receive side)
	retransmits int64
}

func newConn(s *Stack, remote ib.LID, remotePort, localPort int) *Conn {
	return &Conn{
		stack:       s,
		remote:      remote,
		remotePort:  remotePort,
		localPort:   localPort,
		established: s.env.NewEvent(),
		cwnd:        InitialCwnd * s.MSS(),
		swnd:        s.cfg.Window, // refined by SYN/SYNACK exchange
		ssthresh:    s.cfg.Window,
	}
}

func (c *Conn) key() connKey {
	return connKey{remote: c.remote, remotePort: c.remotePort, localPort: c.localPort}
}

// Stack returns the owning stack.
func (c *Conn) Stack() *Stack { return c.stack }

// Delivered returns the count of in-order payload bytes this endpoint has
// accepted from the peer (whether or not Read has consumed them). It is the
// throughput counter used by the benchmarks.
func (c *Conn) Delivered() int64 { return c.delivered }

// Retransmits returns the number of go-back-N recoveries.
func (c *Conn) Retransmits() int64 { return c.retransmits }

// Err returns the connection's terminal failure, or nil while it is
// healthy.
func (c *Conn) Err() error { return c.err }

// reset tears the connection down with the given terminal error: the
// retransmission machinery stops, buffered send data is discarded, and
// every blocked reader, writer and dialer wakes to observe c.err. Receive
// data already in order stays readable (Read drains it before reporting
// the error). Idempotent.
func (c *Conn) reset(err error) {
	if c.err != nil {
		return
	}
	c.err = err
	c.rtoGen++ // cancel in-flight RTO timers
	c.stack.stats.Resets++
	c.stack.obs.resets.Add(1)
	for c.unacked.Len() > 0 {
		seg := c.unacked.Pop()
		seg.inUnacked = false
		c.stack.maybeFreeSegment(seg)
	}
	for c.sendQ.Len() > 0 {
		c.sendQ.Pop()
	}
	c.sendQBytes = 0
	if !c.established.Triggered() {
		c.established.Trigger(nil) // wake Dial/Accept to see the error
	}
	for c.writeWaiters.Len() > 0 {
		c.writeWaiters.Pop().Trigger(nil)
	}
	for c.readWaiters.Len() > 0 {
		c.readWaiters.Pop().Trigger(nil)
	}
}

// window is the current effective send window.
func (c *Conn) window() int {
	w := c.cwnd
	if c.swnd < w {
		w = c.swnd
	}
	return w
}

// sendBufCap bounds application writes ahead of the window.
func (c *Conn) sendBufCap() int { return 2 * c.stack.cfg.Window }

// Write queues real payload bytes on the stream, blocking while the send
// buffer is full. It fails with the connection's terminal error once the
// recovery machinery has given up.
func (c *Conn) Write(p *sim.Proc, data []byte) error {
	if len(data) == 0 {
		return c.err
	}
	d := make([]byte, len(data))
	copy(d, data)
	return c.write(p, span{data: d, length: len(d)})
}

// WriteSynthetic queues n synthetic payload bytes (zeroes at the receiver),
// for traffic generation without byte-copy costs in the host simulator.
func (c *Conn) WriteSynthetic(p *sim.Proc, n int) error {
	if n <= 0 {
		return c.err
	}
	return c.write(p, span{length: n})
}

func (c *Conn) write(p *sim.Proc, sp span) error {
	if c.err != nil {
		return c.err
	}
	for c.sendQBytes >= c.sendBufCap() {
		ev := c.stack.env.AcquireEvent()
		c.writeWaiters.Push(ev)
		p.Wait(ev)
		c.stack.env.ReleaseEvent(ev)
		if c.err != nil {
			return c.err
		}
	}
	c.sendQ.Push(sp)
	c.sendQBytes += sp.length
	c.pump()
	return nil
}

// Read blocks until stream bytes are available and returns up to max of
// them (synthetic spans materialize as zero bytes). Buffered in-order data
// is drained before a terminal connection error is reported.
func (c *Conn) Read(p *sim.Proc, max int) ([]byte, error) {
	for c.recvBytes == 0 {
		if c.err != nil {
			return nil, c.err
		}
		ev := c.stack.env.AcquireEvent()
		c.readWaiters.Push(ev)
		p.Wait(ev)
		c.stack.env.ReleaseEvent(ev)
	}
	n := c.recvBytes
	if n > max {
		n = max
	}
	out := make([]byte, 0, n)
	for len(out) < n {
		sp := c.recvBuf.Front()
		take := n - len(out)
		if take > sp.length {
			take = sp.length
		}
		if sp.data != nil {
			out = append(out, sp.data[:take]...)
			sp.data = sp.data[take:]
		} else {
			out = append(out, make([]byte, take)...)
		}
		sp.length -= take
		if sp.length == 0 {
			c.recvBuf.Pop()
		}
	}
	c.recvBytes -= n
	return out, nil
}

// ReadFull blocks until exactly n bytes are available and returns them, or
// the connection's terminal error if it dies first.
func (c *Conn) ReadFull(p *sim.Proc, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for len(out) < n {
		chunk, err := c.Read(p, n-len(out))
		if err != nil {
			return out, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// pump segments queued stream bytes into the transmit context while the
// window has room. Segments are packed to the MSS across application write
// boundaries, and a sub-MSS segment is only emitted when it drains the send
// queue or nothing is in flight — the standard defense against silly-window
// fragmentation (without it, per-segment costs at odd sizes dominate).
func (c *Conn) pump() {
	if !c.established.Triggered() {
		return
	}
	mss := c.stack.MSS()
	for c.sendQBytes > 0 {
		inflight := int(c.sndNxt - c.sndUna)
		room := c.window() - inflight
		if room <= 0 {
			break
		}
		n := min(mss, c.sendQBytes, room)
		if n < mss && n < c.sendQBytes && inflight > 0 {
			// Partial segment while more data and acks are pending:
			// wait for the window to open rather than fragment.
			break
		}
		seg := c.newSegment(ackFlag)
		if c.sendCWR {
			// Confirm the ECE-triggered window cut on the next data
			// segment, so the receiver stops echoing.
			seg.flags |= cwrFlag
			c.sendCWR = false
		}
		seg.length = n
		// Pack n bytes from the head spans.
		left := n
		for left > 0 {
			sp := c.sendQ.Front()
			take := min(left, sp.length)
			if sp.data != nil {
				seg.spans = append(seg.spans, span{data: sp.data[:take], length: take})
				sp.data = sp.data[take:]
			} else {
				seg.spans = append(seg.spans, span{length: take})
			}
			sp.length -= take
			left -= take
			if sp.length == 0 {
				c.sendQ.Pop()
			}
		}
		c.sendQBytes -= n
		c.sndNxt += int64(n)
		seg.inUnacked = true
		c.unacked.Push(seg)
		c.stack.transmit(seg)
		if c.unacked.Len() == 1 {
			c.armRTO()
		}
	}
	// Wake writers if buffer space opened up.
	for c.writeWaiters.Len() > 0 && c.sendQBytes < c.sendBufCap() {
		c.writeWaiters.Pop().Trigger(nil)
	}
}

// newSegment takes a segment from the stack's pool and stamps this
// connection's headers on it.
func (c *Conn) newSegment(flags int) *segment {
	seg := c.stack.newSegment()
	seg.srcAddr, seg.dst = c.stack.Addr(), c.remote
	seg.srcPort, seg.dstPort = c.localPort, c.remotePort
	seg.flags = flags
	if c.echoECE {
		seg.flags |= eceFlag
	}
	seg.seq, seg.ack = c.sndNxt, c.rcvNxt
	seg.wnd = c.stack.cfg.Window
	return seg
}

// sendCtl emits a control segment (SYN, SYN|ACK, pure ACK).
func (c *Conn) sendCtl(flags int) {
	c.stack.transmit(c.newSegment(flags))
}

// handle processes an inbound segment (already charged receive CPU).
func (c *Conn) handle(seg *segment) {
	switch {
	case seg.flags&synFlag != 0 && seg.flags&ackFlag != 0:
		// Client side: SYNACK.
		c.swnd = seg.wnd
		c.sendCtl(ackFlag)
		if !c.established.Triggered() {
			c.established.Trigger(nil)
		}
		c.pump()
		return
	case seg.flags&synFlag != 0:
		// Duplicate SYN: our SYNACK (or the peer's first ACK) was lost.
		// The passive side answers again; dispatch created the conn.
		if c.passive && !c.established.Triggered() {
			c.sendCtl(synFlag | ackFlag)
		}
		return
	}
	if !c.established.Triggered() {
		// Server side: first ACK completes the handshake.
		c.swnd = seg.wnd
		c.established.Trigger(nil)
	}
	if seg.flags&cwrFlag != 0 {
		// The sender confirmed a window cut; stop echoing ECE.
		c.echoECE = false
	}
	if seg.ce {
		// Congestion-experienced: echo ECE on everything we send (starting
		// with the ack below) until the sender confirms with CWR.
		c.stack.obs.ecnCE.Add(1)
		c.echoECE = true
	}
	if seg.length > 0 {
		c.handleData(seg)
	}
	c.handleAck(seg)
}

func (c *Conn) handleData(seg *segment) {
	switch {
	case seg.seq == c.rcvNxt:
		c.deliverSpans(seg.spans, seg.length)
		// A retransmission that fills the hole releases everything parked
		// behind it in one burst, as in a real reassembly queue.
		for len(c.ooo) > 0 && c.ooo[0].seq <= c.rcvNxt {
			o := c.ooo[0]
			c.ooo = c.ooo[1:]
			if o.seq == c.rcvNxt {
				c.deliverSpans(o.spans, o.length)
			}
		}
	case seg.seq < c.rcvNxt:
		// Duplicate from a retransmission: ack again below.
	default:
		// Gap (a predecessor was dropped): park the segment in the
		// reassembly queue and let the ack below report the hole as a
		// duplicate. Sender framing is stable across retransmissions, so
		// entries either match exactly (drop the duplicate) or tile.
		c.insertOOO(seg)
	}
	c.sendCtl(ackFlag)
}

// deliverSpans accepts in-order payload. Span values are copied out of the
// segment, so recycling the segment never touches buffered stream data.
func (c *Conn) deliverSpans(spans []span, length int) {
	c.rcvNxt += int64(length)
	c.delivered += int64(length)
	for _, sp := range spans {
		c.recvBuf.Push(sp)
	}
	c.recvBytes += length
	for c.readWaiters.Len() > 0 {
		c.readWaiters.Pop().Trigger(nil)
	}
}

// insertOOO parks an out-of-order segment in the reassembly queue, keeping
// it sorted by sequence and dropping exact duplicates.
func (c *Conn) insertOOO(seg *segment) {
	i := len(c.ooo)
	for i > 0 && c.ooo[i-1].seq >= seg.seq {
		if c.ooo[i-1].seq == seg.seq {
			return
		}
		i--
	}
	spans := make([]span, len(seg.spans))
	copy(spans, seg.spans)
	c.ooo = append(c.ooo, oooSeg{})
	copy(c.ooo[i+1:], c.ooo[i:])
	c.ooo[i] = oooSeg{seq: seg.seq, length: seg.length, spans: spans}
}

func (c *Conn) handleAck(seg *segment) {
	ackNum := seg.ack
	if seg.flags&eceFlag != 0 {
		c.ecnCut(ackNum)
	}
	if ackNum <= c.sndUna {
		// A pure duplicate ack means the receiver is still asking for
		// sndUna after later data arrived — under go-back-N framing that
		// only follows a loss. Three in a row trigger fast retransmit.
		if ackNum == c.sndUna && seg.length == 0 && seg.flags&synFlag == 0 && c.unacked.Len() > 0 {
			c.dupAcks++
			if c.dupAcks == 3 && c.sndUna >= c.recover {
				c.fastRetransmit()
			}
		}
		return
	}
	c.dupAcks = 0
	acked := int(ackNum - c.sndUna)
	c.sndUna = ackNum
	for c.unacked.Len() > 0 {
		head := *c.unacked.Front()
		if head.seq+int64(head.length) > ackNum {
			break
		}
		c.unacked.Pop()
		head.inUnacked = false
		c.stack.maybeFreeSegment(head)
	}
	if c.sndUna >= c.recover {
		c.lossRecovery = false
	}
	// Congestion-window growth: exponential slow start below ssthresh,
	// additive increase above it. A flow that never sees a congestion event
	// keeps ssthresh at the window ceiling, so this is exactly the seed
	// model's monotonic rise toward cfg.Window. Partial acks inside a
	// loss-recovery round (sndUna still short of recover) advance the window
	// edge — pump below refills the halved flight — but do not grow it, and
	// never retransmit: the fast retransmit already resent every hole.
	if !c.lossRecovery {
		if c.cwnd < c.ssthresh {
			c.cwnd += acked
			if c.cwnd > c.ssthresh {
				c.cwnd = c.ssthresh
			}
		} else if c.cwnd < c.stack.cfg.Window {
			inc := c.stack.MSS() * acked / c.cwnd
			if inc < 1 {
				inc = 1
			}
			c.cwnd += inc
			if c.cwnd > c.stack.cfg.Window {
				c.cwnd = c.stack.cfg.Window
			}
		}
	}
	c.rtoGen++
	c.rtoStreak = 0 // forward progress: recovery is working
	if c.unacked.Len() > 0 {
		c.armRTO()
	}
	c.pump()
}

// ecnCut reacts to an ECE echo: one multiplicative decrease per round trip
// (RFC 3168), confirmed back to the receiver with CWR on the next data
// segment. Nothing was lost, so nothing is retransmitted.
func (c *Conn) ecnCut(ackNum int64) {
	if ackNum < c.recover {
		return // this round trip's cut already happened
	}
	c.cutCwnd()
	c.sendCWR = true
	c.stack.obs.ecnCuts.Add(1)
}

// cutCwnd is the multiplicative decrease: ssthresh and cwnd drop to half
// the current flight, floored at two segments, and a new recovery round
// opens at sndNxt.
func (c *Conn) cutCwnd() {
	half := int(c.sndNxt-c.sndUna) / 2
	if m := 2 * c.stack.MSS(); half < m {
		half = m
	}
	if half > c.stack.cfg.Window {
		half = c.stack.cfg.Window
	}
	c.ssthresh = half
	c.cwnd = half
	c.recover = c.sndNxt
}

// fastRetransmit answers the third duplicate ack: halve the window and
// resend everything outstanding without waiting for the RTO. Tail drop at a
// full queue loses segments in bursts, so go-back-N repairs every hole in
// one round trip; the receiver's reassembly queue discards the duplicates,
// and partial acks during the recovery round never retransmit again — one
// resend-all per congestion event.
func (c *Conn) fastRetransmit() {
	c.cutCwnd()
	c.lossRecovery = true
	c.retransmits++
	c.stack.obs.retransmits.Add(1)
	c.stack.obs.fastRetransmits.Add(1)
	c.rtoGen++
	for i := 0; i < c.unacked.Len(); i++ {
		c.stack.transmit(*c.unacked.At(i))
	}
	c.armRTO()
}

// armRTO arms the retransmission timer. The fabric is FIFO and lossless,
// so it only fires under fault injection. Each unproductive expiry doubles
// the timeout (capped at RTO<<maxRTOShift) and counts against the stack's
// MaxRetransmits budget; exhausting it resets the connection, so a
// permanently dead WAN terminates with ErrReset instead of retransmitting
// forever.
func (c *Conn) armRTO() {
	gen := c.rtoGen
	shift := c.rtoStreak
	if shift > maxRTOShift {
		shift = maxRTOShift
	}
	c.stack.env.At(c.stack.cfg.RTO<<shift, func() {
		if gen != c.rtoGen || c.unacked.Len() == 0 {
			return
		}
		if mx := c.stack.cfg.MaxRetransmits; mx >= 0 && c.rtoStreak >= mx {
			c.reset(ErrReset)
			return
		}
		c.rtoStreak++
		// Timeout loss response: halve ssthresh and restart from one
		// segment of flight (classic slow-start restart).
		c.cutCwnd()
		c.cwnd = c.stack.MSS()
		// Go-back-N: resend everything outstanding.
		c.retransmits++
		c.stack.obs.retransmits.Add(1)
		c.rtoGen++
		for i := 0; i < c.unacked.Len(); i++ {
			c.stack.transmit(*c.unacked.At(i))
		}
		c.armRTO()
	})
}

// armHandshake retransmits the connection-establishing control segment
// (SYN on the active side, SYN|ACK on the passive side) until the
// handshake completes, with the same backoff and budget as data RTOs.
// Exhaustion resets the connection with ErrConnectTimeout. Only armed on
// chaos-enabled stacks: fault-free runs schedule no handshake timers.
func (c *Conn) armHandshake(flags int) {
	tries := c.hsTries
	shift := tries
	if shift > maxRTOShift {
		shift = maxRTOShift
	}
	c.stack.env.At(c.stack.cfg.RTO<<shift, func() {
		if c.established.Triggered() || c.err != nil || tries != c.hsTries {
			return
		}
		if mx := c.stack.cfg.MaxRetransmits; mx >= 0 && c.hsTries >= mx {
			c.reset(ErrConnectTimeout)
			return
		}
		c.hsTries++
		c.retransmits++
		c.stack.obs.retransmits.Add(1)
		c.sendCtl(flags)
		c.armHandshake(flags)
	})
}
