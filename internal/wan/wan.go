// Package wan models the Obsidian Longbow XR InfiniBand range extenders
// used in the paper. A Longbow pair appears to the subnet as two two-ported
// switches bridging the clusters (paper Fig. 2): traffic crosses the WAN
// hop at SDR rate, each device adds a forwarding latency, and a
// web-configurable delay knob emulates wire length at 5 us/km.
package wan

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ib"
	"repro/internal/sim"
)

// ForwardingDelay is the per-Longbow store-and-forward latency. The paper
// measures the pair adding ~5 us over back-to-back nodes (Fig. 3).
const ForwardingDelay = 2500 * sim.Nanosecond

// MicrosPerKM is the wire propagation delay per kilometer (paper Table 1:
// "a latency addition of about 5 us per km of distance is observed").
const MicrosPerKM = 5.0

// WANRate is the data rate the Longbows sustain across the WAN link: SDR,
// 8 Gbit/s ("the Longbows can essentially support IB traffic at SDR rates").
const WANRate = ib.SDR

// DelayForDistance returns the one-way WAN delay emulating a wire of the
// given length in kilometers (paper Table 1). A negative distance is an
// error (it used to panic; a bad parameter should degrade the one
// measurement point that used it, not crash the whole run).
func DelayForDistance(km float64) (sim.Time, error) {
	if km < 0 {
		return 0, fmt.Errorf("wan: negative distance %v km", km)
	}
	return sim.Micros(km * MicrosPerKM), nil
}

// DistanceForDelay inverts DelayForDistance. A negative delay is an error,
// mirroring the validation on the forward direction (a negative emulated
// wire length is meaningless).
//
// On sharded worlds the returned delay doubles as the link's conservative
// channel bound: a WAN link's propagation delay is a lower bound on the
// latency of any cross-shard event it carries, which is exactly the
// per-channel lookahead the parallel scheduler needs (see
// sim.Env.RegisterLookaheadBetween and NewPairAcross).
func DistanceForDelay(d sim.Time) (float64, error) {
	if d < 0 {
		return 0, fmt.Errorf("wan: negative delay %v (a WAN delay must be a non-negative lower bound on cross-shard event latency)", d)
	}
	return d.Microseconds() / MicrosPerKM, nil
}

// Longbow is one WAN extender device. On the fabric it behaves as a switch
// with a larger forwarding latency.
type Longbow struct {
	sw   *ib.Switch
	name string
}

// Device returns the fabric device to connect links to.
func (l *Longbow) Device() *ib.Switch { return l.sw }

// Name returns the device name.
func (l *Longbow) Name() string { return l.name }

// Pair is two Longbows joined by the long-haul link. It exposes the delay
// knob the paper drives through the routers' web interface.
type Pair struct {
	A, B *Longbow
	link *ib.Link
	// envA/envB are the ends' home environments. They differ only when the
	// pair was created with NewPairAcross on a partitioned world, in which
	// case the link's delay is registered as the conservative bound of the
	// directed channel between the two shards (one per direction) and the
	// delay knob refuses values below it.
	envA, envB *sim.Env
}

// NewPair creates two Longbows on the fabric and joins them with an SDR WAN
// link with the given one-way delay. The caller connects each Longbow's
// cluster-side to a cluster switch or HCA.
func NewPair(f *ib.Fabric, name string, delay sim.Time) *Pair {
	return NewPairBetween(f, name, "A", "B", delay)
}

// NewPairBetween is NewPair with explicit end labels: the Longbow facing
// end endA is named name-endA, the other name-endB. Multi-link topologies
// use it to give every Longbow — and the telemetry tracks keyed on device
// names — a name identifying its link and side; NewPair's classic "A"/"B"
// labels are the two-site special case.
func NewPairBetween(f *ib.Fabric, name, endA, endB string, delay sim.Time) *Pair {
	return NewPairAcross(f, name, endA, endB, delay, f.Env(), f.Env())
}

// NewPairAcross is NewPairBetween with each Longbow placed on its own
// environment: the endA device on envA, the endB device on envB. On an
// unpartitioned world (or with envA == envB) it behaves exactly like
// NewPairBetween. On a partitioned world it is the topology compiler's
// cross-shard edge: the two ends live on their sites' shard views, packet
// delivery crosses through the kernel's mailbox path, and the link's
// propagation delay is registered as the conservative bound of the directed
// channel between the two shards, one registration per direction — the
// delay is a lower bound on how far in the future any event this link sends
// into the peer shard can land, which is the promise the windowed parallel
// scheduler runs on. Because the bound is per channel, a long link's
// windows are sized by its own delay even when a much shorter link exists
// elsewhere in the topology.
func NewPairAcross(f *ib.Fabric, name, endA, endB string, delay sim.Time, envA, envB *sim.Env) *Pair {
	f.UseEnv(envA)
	a := &Longbow{name: name + "-" + endA, sw: f.AddSwitch(name+"-"+endA, ForwardingDelay)}
	f.UseEnv(envB)
	b := &Longbow{name: name + "-" + endB, sw: f.AddSwitch(name+"-"+endB, ForwardingDelay)}
	f.UseEnv(f.Env())
	link := f.Connect(a.sw, b.sw, WANRate, delay)
	// The long-haul hop is where utilization and queueing telemetry lives.
	link.MarkWAN()
	if envA != envB {
		// This link is a cross-shard edge: its delay bounds the directed
		// channel in each direction. (RegisterLookaheadBetween rejects a
		// non-positive bound — the compiler only partitions worlds whose
		// WAN links all have positive delay.)
		envA.RegisterLookaheadBetween(envB, delay)
		envB.RegisterLookaheadBetween(envA, delay)
	}
	// If the environment carries a fault plan naming this link (or naming
	// no link at all — the historical "every WAN link" behavior), arm the
	// plan's WAN levers (loss models, flaps, brownouts, rate throttling).
	// With no plan attached this is a no-op, so fault-free runs are
	// untouched. On a partitioned world only ShardSafe plans ever reach
	// this point (the compiler refuses to shard otherwise), and those arm
	// no scheduled closures, so anchoring the injector on envA is safe.
	if plan := fault.PlanFromEnv(envA); plan.MatchesLink(endA, endB) {
		plan.ArmWAN(envA, link)
	}
	return &Pair{A: a, B: b, link: link, envA: envA, envB: envB}
}

// SetDelay sets the one-way WAN delay (the emulated-distance knob). On a
// partitioned world the delay is also the link's lookahead promise — a
// lower bound on cross-shard event latency — so lowering it below the
// world's registered bound would let an event land in the peer shard's
// past; such a change panics instead of silently corrupting the schedule.
func (p *Pair) SetDelay(d sim.Time) {
	if la := p.lookahead(); la > 0 && d < la {
		panic(fmt.Sprintf("wan: delay %v below the registered lookahead bound %v (a WAN delay is a lower bound on cross-shard event latency and cannot shrink below the bound on a partitioned world)", d, la))
	}
	p.link.SetDelay(d)
}

// lookahead returns the registered bound of this pair's own cross-shard
// channel (the smaller direction, though both are registered with the same
// link delay) when the pair bridges two shards, else 0. The guard is per
// channel: a link may be retuned freely down to its own registered bound
// without reference to shorter links elsewhere in the world.
func (p *Pair) lookahead() sim.Time {
	if p.envA != nil && p.envA != p.envB && p.envA.Sharded() {
		la := p.envA.ChannelLookahead(p.envB)
		if ba := p.envB.ChannelLookahead(p.envA); ba > 0 && (la == 0 || ba < la) {
			la = ba
		}
		return la
	}
	return 0
}

// SetDistanceKM sets the delay from an emulated wire length. It routes
// through SetDelay so the partitioned-world lookahead guard applies: on a
// sharded world, shrinking the emulated distance below the registered
// channel bound panics instead of silently corrupting the schedule.
func (p *Pair) SetDistanceKM(km float64) error {
	d, err := DelayForDistance(km)
	if err != nil {
		return err
	}
	p.SetDelay(d)
	return nil
}

// Delay returns the configured one-way WAN delay.
func (p *Pair) Delay() sim.Time { return p.link.Delay() }

// DistanceKM returns the emulated wire length for the configured delay.
func (p *Pair) DistanceKM() float64 {
	// The link's delay is non-negative by construction, so the inverse
	// cannot fail here.
	km, _ := DistanceForDelay(p.link.Delay())
	return km
}

// Link exposes the WAN link for fault injection in tests.
func (p *Pair) Link() *ib.Link { return p.link }

// MinQueueBytes floors BDP-sized queue bounds: a metro link with near-zero
// delay still needs room for a few MTU-sized packets ahead of the
// serializer.
const MinQueueBytes = 64 << 10

// BDPQueueBytes returns the bandwidth-delay product of a link direction —
// rate times round trip — floored at MinQueueBytes. It is the classic
// single-flow buffer sizing rule: a queue this deep can keep the wire busy
// across a full window's worth of acks without standing overflow.
func BDPQueueBytes(rate ib.Rate, delay sim.Time) int {
	bdp := int(float64(rate) * (2 * delay).Seconds())
	if bdp < MinQueueBytes {
		bdp = MinQueueBytes
	}
	return bdp
}

// EnableCongestion bounds the pair's long-haul hop with cfg. A zero
// QueueBytes defaults to the link's bandwidth-delay product (BDPQueueBytes
// at the current rate and delay). Unconfigured pairs keep the seed model's
// unbounded FIFO, so existing experiments are byte-identical.
func (p *Pair) EnableCongestion(cfg ib.QueueConfig) error {
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = BDPQueueBytes(p.link.Rate(), p.link.Delay())
	}
	return p.link.ConfigureQueue(cfg)
}

// String describes the pair.
func (p *Pair) String() string {
	return fmt.Sprintf("LongbowPair(delay=%v, %.0f km)", p.Delay(), p.DistanceKM())
}

// DelayStep is one entry of a dynamic delay schedule.
type DelayStep struct {
	At    sim.Time // absolute virtual time the new delay takes effect
	Delay sim.Time // one-way delay from then on
}

// ScheduleDelays arms a time-varying delay on the WAN link — the paper
// notes that "WAN separations often vary and can be dynamic in nature".
// Packets in flight keep the delay they departed with; later packets see
// the new value. Steps must be sorted by time and not in the simulated
// past; a bad schedule returns an error with nothing armed (it used to
// panic), so the harness can degrade a single measurement point.
//
// On a partitioned world the link's delay is its lookahead promise (a
// lower bound on cross-shard event latency), so a step below the world's
// registered bound is rejected up front: the parallel scheduler has
// already sized its windows assuming no cross-WAN event arrives sooner.
func (p *Pair) ScheduleDelays(env *sim.Env, steps []DelayStep) error {
	now := env.Now()
	la := p.lookahead()
	var last sim.Time = -1
	for i, s := range steps {
		if s.At < now {
			return fmt.Errorf("wan: delay step %d at %v is in the past (now %v)", i, s.At, now)
		}
		if s.At < last {
			return fmt.Errorf("wan: delay step %d at %v out of order (previous %v)", i, s.At, last)
		}
		if s.Delay < 0 {
			return fmt.Errorf("wan: delay step %d has negative delay %v", i, s.Delay)
		}
		if la > 0 && s.Delay < la {
			return fmt.Errorf("wan: delay step %d sets %v, below the registered lookahead bound %v (the WAN delay is a lower bound on cross-shard event latency and cannot shrink below the bound on a partitioned world)", i, s.Delay, la)
		}
		last = s.At
	}
	for _, s := range steps {
		d := s.Delay
		env.At(s.At-now, func() { p.SetDelay(d) })
	}
	return nil
}
