package wan

import (
	"testing"

	"repro/internal/ib"
	"repro/internal/sim"
)

func TestDelayDistanceMapping(t *testing.T) {
	// Paper Table 1.
	cases := []struct {
		km   float64
		want sim.Time
	}{
		{10, sim.Micros(50)},
		{20, sim.Micros(100)},
		{200, sim.Micros(1000)},
		{2000, sim.Micros(10000)},
		{20000, sim.Micros(100000)},
	}
	for _, c := range cases {
		got, err := DelayForDistance(c.km)
		if err != nil {
			t.Fatalf("DelayForDistance(%v): %v", c.km, err)
		}
		if got != c.want {
			t.Errorf("DelayForDistance(%v) = %v, want %v", c.km, got, c.want)
		}
		got2, err := DistanceForDelay(c.want)
		if err != nil {
			t.Fatalf("DistanceForDelay(%v): %v", c.want, err)
		}
		if got2 != c.km {
			t.Errorf("DistanceForDelay(%v) = %v, want %v", c.want, got2, c.km)
		}
	}
}

func TestNegativeDistanceErrors(t *testing.T) {
	if _, err := DelayForDistance(-1); err == nil {
		t.Fatal("negative distance did not return an error")
	}
	// The inverse must validate too: a negative delay has no emulated
	// wire length.
	if _, err := DistanceForDelay(-sim.Micros(1)); err == nil {
		t.Fatal("DistanceForDelay(-1us) did not return an error")
	}
	env := sim.NewEnv()
	f := ib.NewFabric(env)
	p := NewPair(f, "lb", sim.Micros(10))
	if err := p.SetDistanceKM(-5); err == nil {
		t.Fatal("SetDistanceKM(-5) did not return an error")
	}
	if p.Delay() != sim.Micros(10) {
		t.Errorf("failed SetDistanceKM changed delay to %v", p.Delay())
	}
}

// TestSetDistanceKMShardedLookaheadGuard pins the SetDistanceKM bugfix: it
// used to call link.SetDelay directly, bypassing Pair.SetDelay's
// partitioned-world guard, so a distance shrink could break the lookahead
// promise the parallel scheduler runs on. Routed through SetDelay, the
// shrink must panic; growing the emulated wire stays legal.
func TestSetDistanceKMShardedLookaheadGuard(t *testing.T) {
	env := sim.NewEnv()
	env.SetShardWorkers(2)
	views := env.Partition(2)
	f := ib.NewFabric(env)
	p := NewPairAcross(f, "lb", "A", "B", sim.Millisecond, views[0], views[1])
	if err := p.SetDistanceKM(400); err != nil { // 2ms: above the bound
		t.Fatalf("SetDistanceKM(400): %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetDistanceKM below the registered lookahead bound did not panic on a partitioned world")
		}
	}()
	p.SetDistanceKM(10) // 50us: below the registered 1ms bound
}

func TestPairDelayKnob(t *testing.T) {
	env := sim.NewEnv()
	f := ib.NewFabric(env)
	p := NewPair(f, "lb", 0)
	if p.Delay() != 0 {
		t.Fatalf("initial delay = %v", p.Delay())
	}
	if err := p.SetDistanceKM(200); err != nil {
		t.Fatalf("SetDistanceKM(200): %v", err)
	}
	if p.Delay() != sim.Micros(1000) {
		t.Errorf("delay after SetDistanceKM(200) = %v, want 1ms", p.Delay())
	}
	if p.DistanceKM() != 200 {
		t.Errorf("DistanceKM = %v, want 200", p.DistanceKM())
	}
	p.SetDelay(sim.Micros(42))
	if p.Delay() != sim.Micros(42) {
		t.Errorf("delay = %v, want 42us", p.Delay())
	}
}

func TestScheduleDelays(t *testing.T) {
	env := sim.NewEnv()
	f := ib.NewFabric(env)
	p := NewPair(f, "lb", sim.Micros(10))
	if err := p.ScheduleDelays(env, []DelayStep{
		{At: sim.Micros(100), Delay: sim.Micros(500)},
		{At: sim.Micros(200), Delay: sim.Micros(50)},
	}); err != nil {
		t.Fatalf("ScheduleDelays: %v", err)
	}
	env.RunUntil(sim.Micros(150))
	if p.Delay() != sim.Micros(500) {
		t.Errorf("delay at t=150us = %v, want 500us", p.Delay())
	}
	env.Run()
	if p.Delay() != sim.Micros(50) {
		t.Errorf("final delay = %v, want 50us", p.Delay())
	}
}

func TestScheduleDelaysOutOfOrderErrors(t *testing.T) {
	env := sim.NewEnv()
	f := ib.NewFabric(env)
	p := NewPair(f, "lb", 0)
	err := p.ScheduleDelays(env, []DelayStep{
		{At: sim.Micros(200), Delay: 0},
		{At: sim.Micros(100), Delay: 0},
	})
	if err == nil {
		t.Fatal("out-of-order steps did not return an error")
	}
	// Validation happens before arming: a rejected schedule must leave
	// nothing behind on the event heap.
	if env.Pending() != 0 {
		t.Errorf("rejected schedule armed %d events", env.Pending())
	}
}

func TestWANDelayAppliesToTraffic(t *testing.T) {
	env := sim.NewEnv()
	f := ib.NewFabric(env)
	a, b := f.AddHCA("a"), f.AddHCA("b")
	p := NewPair(f, "lb", sim.Micros(500))
	f.Connect(a, p.A.Device(), ib.DDR, ib.DefaultCableDelay)
	f.Connect(p.B.Device(), b, ib.DDR, ib.DefaultCableDelay)
	f.Finalize()
	qa, qb := ib.CreateRCPair(a, b, nil, nil, ib.QPConfig{})
	var arrival sim.Time
	env.Go("recv", func(pr *sim.Proc) {
		qb.PostRecv(ib.RecvWR{})
		qb.CQ().Poll(pr)
		arrival = pr.Now()
	})
	env.Go("send", func(pr *sim.Proc) {
		qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: 8})
	})
	env.Run()
	if arrival < sim.Micros(500) || arrival > sim.Micros(520) {
		t.Errorf("one-way arrival = %v, want ~500us + overheads", arrival)
	}
}
