// Package stats provides the small result-handling toolkit the benchmark
// harness uses: labeled series, tables rendered in the paper's style
// (MillionBytes/s, microseconds), and CSV output.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one labeled curve: y-values indexed by x-values (e.g. bandwidth
// by message size, one series per WAN delay).
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Alloc appends a placeholder point for x and returns its slot index, to
// be filled later with Set. The parallel experiment harness reserves every
// slot up front — fixing series order once, deterministically — and lets
// workers commit measured values as they finish. Alloc itself must be
// called from a single goroutine, before any Set.
func (s *Series) Alloc(x float64) int {
	s.X = append(s.X, x)
	s.Y = append(s.Y, 0)
	return len(s.X) - 1
}

// Set writes the y value for a slot returned by Alloc. Distinct slots may
// be Set concurrently from different goroutines without locking: each call
// writes a disjoint element of a slice whose growth stopped when
// allocation finished.
func (s *Series) Set(slot int, y float64) {
	s.Y[slot] = y
}

// At returns the y value for the given x, and whether it exists.
func (s *Series) At(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Max returns the largest y value (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for _, y := range s.Y {
		if y > m {
			m = y
		}
	}
	return m
}

// Table is a collection of series sharing an x-axis, with display metadata.
type Table struct {
	Title  string // e.g. "Figure 5(a): Verbs-level RC Bandwidth"
	XLabel string // e.g. "Message Size (Bytes)"
	YLabel string // e.g. "Bandwidth (MillionBytes/s)"
	Series []*Series
}

// NewTable creates an empty table.
func NewTable(title, xlabel, ylabel string) *Table {
	return &Table{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, registers and returns a new labeled series.
func (t *Table) AddSeries(label string) *Series {
	s := &Series{Label: label}
	t.Series = append(t.Series, s)
	return s
}

// xValues returns the sorted union of all series' x values.
func (t *Table) xValues() []float64 {
	set := map[float64]bool{}
	for _, s := range t.Series {
		for _, x := range s.X {
			set[x] = true
		}
	}
	xs := make([]float64, 0, len(set))
	for x := range set {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs
}

// FormatX renders an x value; sizes print as 1K/64K/1M when whole.
func FormatX(x float64) string {
	return FormatSize(x)
}

// FormatSize prints byte counts in the paper's axis style.
func FormatSize(x float64) string {
	switch {
	case x >= 1<<20 && x == float64(int64(x)) && int64(x)%(1<<20) == 0:
		return fmt.Sprintf("%dM", int64(x)>>20)
	case x >= 1<<10 && x == float64(int64(x)) && int64(x)%(1<<10) == 0:
		return fmt.Sprintf("%dK", int64(x)>>10)
	default:
		if x == float64(int64(x)) {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%g", x)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintf(w, "%s vs %s\n", t.YLabel, t.XLabel)
	xs := t.xValues()
	headers := make([]string, 0, len(t.Series)+1)
	headers = append(headers, t.XLabel)
	for _, s := range t.Series {
		headers = append(headers, s.Label)
	}
	rows := [][]string{headers}
	for _, x := range xs {
		row := []string{FormatX(x)}
		for _, s := range t.Series {
			if y, ok := s.At(x); ok {
				row = append(row, fmtCell(y, "%.2f"))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV.
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	cols := []string{csvEscape(t.XLabel)}
	for _, s := range t.Series {
		cols = append(cols, csvEscape(s.Label))
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, x := range t.xValues() {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range t.Series {
			if y, ok := s.At(x); ok {
				row = append(row, fmtCell(y, "%g"))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// fmtCell renders one measured value. NaN marks a failed measurement
// point (the harness commits NaN for points that errored under fault
// injection) and renders as ERR so failures are visible in tables and CSV
// alike.
func fmtCell(y float64, verb string) string {
	if math.IsNaN(y) {
		return "ERR"
	}
	return fmt.Sprintf(verb, y)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// writeAligned prints rows with columns padded to equal width.
func writeAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// Sizes returns powers of two from lo to hi inclusive.
func Sizes(lo, hi int) []int {
	var out []int
	for s := lo; s <= hi; s *= 2 {
		out = append(out, s)
	}
	return out
}
