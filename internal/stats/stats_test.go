package stats

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestSeriesAddAt(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	if y, ok := s.At(2); !ok || y != 20 {
		t.Errorf("At(2) = %v, %v", y, ok)
	}
	if _, ok := s.At(3); ok {
		t.Error("At(3) should be absent")
	}
	if s.Max() != 20 {
		t.Errorf("Max = %v", s.Max())
	}
}

func TestFormatSize(t *testing.T) {
	cases := map[float64]string{
		1:         "1",
		512:       "512",
		1024:      "1K",
		65536:     "64K",
		1 << 20:   "1M",
		4 << 20:   "4M",
		1500:      "1500",
		2.5:       "2.5",
		100000:    "100000",
		1024 * 10: "10K",
	}
	for in, want := range cases {
		if got := FormatSize(in); got != want {
			t.Errorf("FormatSize(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Test Table", "Size", "BW")
	a := tab.AddSeries("alpha")
	a.Add(1024, 100)
	a.Add(2048, 200)
	b := tab.AddSeries("beta")
	b.Add(1024, 50)
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Test Table", "alpha", "beta", "1K", "2K", "100.00", "50.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Missing cell rendered as '-'.
	if !strings.Contains(out, "-") {
		t.Errorf("missing cell not dashed:\n%s", out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := NewTable("T", "x", "y")
	s := tab.AddSeries("with,comma")
	s.Add(1, 2)
	var sb strings.Builder
	tab.RenderCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("CSV escaping failed:\n%s", out)
	}
	if !strings.Contains(out, "1,2") {
		t.Errorf("CSV row missing:\n%s", out)
	}
}

func TestSizes(t *testing.T) {
	got := Sizes(2, 16)
	want := []int{2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("Sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes = %v", got)
		}
	}
}

// Property: x values render and the table lists them sorted.
func TestPropXValuesSorted(t *testing.T) {
	f := func(xs []uint16) bool {
		tab := NewTable("p", "x", "y")
		s := tab.AddSeries("s")
		for _, x := range xs {
			if _, ok := s.At(float64(x)); !ok {
				s.Add(float64(x), 1)
			}
		}
		vals := tab.xValues()
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 50, 100}, 100)
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("sparkline %q", s)
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Errorf("sparkline extremes wrong: %q", s)
	}
	if Sparkline(nil, 0) != "" {
		t.Error("empty sparkline")
	}
}

func TestRenderChart(t *testing.T) {
	tab := NewTable("Chart", "Size", "BW")
	s := tab.AddSeries("alpha")
	s.Add(1, 10)
	s.Add(2, 100)
	var sb strings.Builder
	tab.RenderChart(&sb)
	out := sb.String()
	for _, want := range []string{"Chart", "alpha", "min 10", "max 100", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestAllocSetMatchesAdd(t *testing.T) {
	added := &Series{Label: "a"}
	for i, y := range []float64{3, 1, 4, 1, 5} {
		added.Add(float64(i), y)
	}
	slotted := &Series{Label: "a"}
	var slots []int
	for i := range added.X {
		slots = append(slots, slotted.Alloc(float64(i)))
	}
	// Fill out of order, as parallel workers would.
	for _, i := range []int{4, 0, 2, 1, 3} {
		slotted.Set(slots[i], added.Y[i])
	}
	if !reflect.DeepEqual(added, slotted) {
		t.Errorf("Alloc/Set series %+v != Add series %+v", slotted, added)
	}
}

func TestConcurrentSetDisjointSlots(t *testing.T) {
	// The parallel harness contract: once allocation stops, distinct
	// slots may be committed from concurrent goroutines (run under
	// -race to make this test load-bearing).
	tab := NewTable("T", "x", "y")
	s1, s2 := tab.AddSeries("a"), tab.AddSeries("b")
	const n = 64
	for i := 0; i < n; i++ {
		s1.Alloc(float64(i))
		s2.Alloc(float64(i))
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s1.Set(i, float64(i))
			s2.Set(i, float64(2*i))
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if s1.Y[i] != float64(i) || s2.Y[i] != float64(2*i) {
			t.Fatalf("slot %d lost a concurrent write", i)
		}
	}
}
