package stats

import (
	"fmt"
	"io"
	"strings"
)

// sparkRunes are the eight block heights of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders ys as a block-character strip scaled to [0, max].
// NaN cells (failed measurement points under fault injection) clamp to
// the lowest block via the index guards below.
func Sparkline(ys []float64, max float64) string {
	if max <= 0 {
		max = 1
	}
	var b strings.Builder
	for _, y := range ys {
		idx := int(y / max * float64(len(sparkRunes)))
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		if idx < 0 {
			idx = 0
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// RenderChart writes the table as one sparkline per series, scaled to the
// table-wide maximum, with the numeric extremes annotated. It reads well in
// a terminal where a full plot would not fit.
func (t *Table) RenderChart(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintf(w, "%s over %s", t.YLabel, t.XLabel)
	xs := t.xValues()
	if len(xs) > 0 {
		fmt.Fprintf(w, " [%s .. %s]", FormatX(xs[0]), FormatX(xs[len(xs)-1]))
	}
	fmt.Fprintln(w)
	max := 0.0
	labelW := 0
	for _, s := range t.Series {
		if m := s.Max(); m > max {
			max = m
		}
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
	}
	for _, s := range t.Series {
		// Align the series on the shared x grid.
		ys := make([]float64, len(xs))
		for i, x := range xs {
			if y, ok := s.At(x); ok {
				ys[i] = y
			}
		}
		lo, hi := minMax(s.Y)
		fmt.Fprintf(w, "  %-*s %s  min %.4g  max %.4g\n", labelW, s.Label, Sparkline(ys, max), lo, hi)
	}
	fmt.Fprintln(w)
}

func minMax(ys []float64) (lo, hi float64) {
	if len(ys) == 0 {
		return 0, 0
	}
	lo, hi = ys[0], ys[0]
	for _, y := range ys[1:] {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	return
}
