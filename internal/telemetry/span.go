package telemetry

import (
	"repro/internal/sim"
)

// Hierarchical stage spans keyed on sim.Time.
//
// A span is one stage of work on a track (a verbs operation on an HCA, an
// MPI protocol phase on a rank, an NFS RPC on a mount, a packet crossing the
// WAN link). Spans nest: a child carries its parent's id and depth, which
// the Perfetto exporter emits as slice args so the hierarchy is visible.
//
// The recorder is single-writer by design: it belongs to one simulation
// timeline. The experiment runner drops to one worker when span recording is
// enabled (metrics stay concurrent; they are atomics). Completed spans and
// instants live in bounded rings — when a run overflows the capacity the
// oldest records are evicted and counted, never reallocated without bound.

// TrackID identifies a (process, thread) pair in the exported trace.
type TrackID int32

// SpanRef is a handle on a started span. The zero value (and NoSpan) is the
// null reference: starting a child under it yields a root span, ending it is
// a no-op. Refs are guarded by the span id, so a ref kept past its span's
// end (or past recorder recycling of the slot) degrades to null instead of
// corrupting another span.
type SpanRef struct {
	idx   int32
	depth int32
	id    int64
}

// NoSpan is the null span reference.
var NoSpan = SpanRef{}

// Valid reports whether the ref points at a started span.
func (s SpanRef) Valid() bool { return s.id != 0 }

// Span is one completed (or still-open at export time) stage.
type Span struct {
	ID     int64
	Parent int64 // 0 = root
	Track  TrackID
	Name   string
	Start  sim.Time // trace time (epoch offset applied)
	End    sim.Time
	Depth  int32
}

// Instant is a zero-duration event on a track (wire-level packet events).
type Instant struct {
	Time   sim.Time // trace time (epoch offset applied)
	Track  TrackID
	Name   string
	Msg    int64  // transfer id (0 if not applicable)
	Wire   int    // wire bytes (0 if not applicable)
	Reason string // drop reason etc. ("" if not applicable)
}

type openSpan struct {
	id     int64
	parent int64
	track  TrackID
	name   string
	start  sim.Time
	depth  int32
	live   bool
}

type trackKey struct {
	process, name string
}

// Recorder collects spans and instants for one simulation timeline.
type Recorder struct {
	offset   sim.Time // epoch shift: maps env-relative time to trace time
	maxDepth int32    // spans deeper than this are suppressed; 0 = unlimited
	cap      int      // bound on completed spans and on instants (each)

	open    []openSpan
	freeIdx []int32
	nextID  int64

	done     sim.Ring[Span]
	instants sim.Ring[Instant]
	dropped  int64 // completed spans evicted from the ring
	maxTime  sim.Time

	trackIDs map[trackKey]TrackID
	tracks   []trackKey
}

// DefaultRecorderCap bounds completed spans (and, separately, instants)
// retained for export. At ~80 B per span this is tens of MB at most.
const DefaultRecorderCap = 1 << 19

// NewRecorder creates a span recorder. cap bounds retained completed spans
// and instants (<= 0 selects DefaultRecorderCap); maxDepth suppresses spans
// nested deeper than the limit (0 = unlimited).
func NewRecorder(cap, maxDepth int) *Recorder {
	if cap <= 0 {
		cap = DefaultRecorderCap
	}
	return &Recorder{
		cap:      cap,
		maxDepth: int32(maxDepth),
		trackIDs: make(map[trackKey]TrackID),
	}
}

// Track returns the id for the (process, name) track, creating it on first
// use. Tracks are never evicted; callers cache the id. Nil-safe (returns 0).
func (r *Recorder) Track(process, name string) TrackID {
	if r == nil {
		return 0
	}
	key := trackKey{process, name}
	if id, ok := r.trackIDs[key]; ok {
		return id
	}
	id := TrackID(len(r.tracks))
	r.tracks = append(r.tracks, key)
	r.trackIDs[key] = id
	return id
}

// Advance shifts the epoch offset forward by d. The experiment runner calls
// it between measurement points: every point's environment starts at t=0,
// and the accumulated offset stacks the per-point timelines one after
// another on the global trace.
func (r *Recorder) Advance(d sim.Time) {
	if r == nil || d <= 0 {
		return
	}
	r.offset += d
}

// Offset returns the current epoch offset.
func (r *Recorder) Offset() sim.Time {
	if r == nil {
		return 0
	}
	return r.offset
}

func (r *Recorder) note(t sim.Time) {
	if t > r.maxTime {
		r.maxTime = t
	}
}

// StartAt opens a span at env-relative time t on the track, nested under
// parent (NoSpan for a root). It returns the handle to pass to EndAt. On a
// nil recorder, or when the span would exceed the depth limit, it returns
// NoSpan and records nothing.
func (r *Recorder) StartAt(t sim.Time, track TrackID, name string, parent SpanRef) SpanRef {
	if r == nil {
		return NoSpan
	}
	depth := int32(1)
	var parentID int64
	if parent.id != 0 {
		depth = parent.depth + 1
		parentID = parent.id
		// A ref outliving its span (slot recycled) degrades to a root link:
		// the id check below is what EndAt relies on; here only the numeric
		// parent id is recorded, which stays correct even if the parent
		// already completed.
	}
	if r.maxDepth > 0 && depth > r.maxDepth {
		return NoSpan
	}
	r.nextID++
	id := r.nextID
	var idx int32
	if n := len(r.freeIdx); n > 0 {
		idx = r.freeIdx[n-1]
		r.freeIdx = r.freeIdx[:n-1]
	} else {
		r.open = append(r.open, openSpan{})
		idx = int32(len(r.open) - 1)
	}
	at := r.offset + t
	r.open[idx] = openSpan{id: id, parent: parentID, track: track, name: name, start: at, depth: depth, live: true}
	r.note(at)
	return SpanRef{idx: idx, depth: depth, id: id}
}

// EndAt closes the span at env-relative time t. A null, stale or already
// ended ref is ignored.
func (r *Recorder) EndAt(t sim.Time, ref SpanRef) {
	if r == nil || ref.id == 0 || int(ref.idx) >= len(r.open) {
		return
	}
	o := &r.open[ref.idx]
	if !o.live || o.id != ref.id {
		return
	}
	at := r.offset + t
	r.push(Span{ID: o.id, Parent: o.parent, Track: o.track, Name: o.name,
		Start: o.start, End: at, Depth: o.depth})
	r.note(at)
	o.live = false
	r.freeIdx = append(r.freeIdx, ref.idx)
}

// RecordAt records an already-completed span in one call (start and end are
// env-relative). Used for stages whose duration is computed at a single
// point in simulated time, like a packet's occupancy of the WAN egress.
func (r *Recorder) RecordAt(start, end sim.Time, track TrackID, name string, parent SpanRef) {
	if r == nil {
		return
	}
	depth := int32(1)
	var parentID int64
	if parent.id != 0 {
		depth = parent.depth + 1
		parentID = parent.id
	}
	if r.maxDepth > 0 && depth > r.maxDepth {
		return
	}
	r.nextID++
	r.push(Span{ID: r.nextID, Parent: parentID, Track: track, Name: name,
		Start: r.offset + start, End: r.offset + end, Depth: depth})
	r.note(r.offset + end)
}

func (r *Recorder) push(s Span) {
	if r.done.Len() >= r.cap {
		r.done.Pop()
		r.dropped++
	}
	r.done.Push(s)
}

// AddInstant records a zero-duration event; in.Time is env-relative.
func (r *Recorder) AddInstant(in Instant) {
	if r == nil {
		return
	}
	in.Time += r.offset
	if r.instants.Len() >= r.cap {
		r.instants.Pop()
		r.dropped++
	}
	r.instants.Push(in)
	r.note(in.Time)
}

// SpanCount returns the number of retained completed spans.
func (r *Recorder) SpanCount() int {
	if r == nil {
		return 0
	}
	return r.done.Len()
}

// InstantCount returns the number of retained instants.
func (r *Recorder) InstantCount() int {
	if r == nil {
		return 0
	}
	return r.instants.Len()
}

// Dropped returns how many records were evicted to honor the capacity.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Spans returns the retained spans: completed ones in completion order,
// then any still-open spans closed at the latest observed trace time (work
// cut off when a measurement window ended). The slice is freshly allocated.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, r.done.Len()+len(r.open))
	for i := 0; i < r.done.Len(); i++ {
		out = append(out, *r.done.At(i))
	}
	for i := range r.open {
		o := &r.open[i]
		if !o.live {
			continue
		}
		end := r.maxTime
		if end < o.start {
			end = o.start
		}
		out = append(out, Span{ID: o.id, Parent: o.parent, Track: o.track,
			Name: o.name, Start: o.start, End: end, Depth: o.depth})
	}
	return out
}

// Instants returns the retained instants in record order.
func (r *Recorder) Instants() []Instant {
	if r == nil {
		return nil
	}
	out := make([]Instant, 0, r.instants.Len())
	for i := 0; i < r.instants.Len(); i++ {
		out = append(out, *r.instants.At(i))
	}
	return out
}

// Tracks returns the registered tracks indexed by TrackID as
// (process, name) pairs.
func (r *Recorder) Tracks() [][2]string {
	if r == nil {
		return nil
	}
	out := make([][2]string, len(r.tracks))
	for i, k := range r.tracks {
		out[i] = [2]string{k.process, k.name}
	}
	return out
}
