package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

// tickSampler drives a sampler through a scripted run: register metrics,
// mutate, tick, mutate, tick.
func tickSampler(t *testing.T) *Sampler {
	t.Helper()
	r := NewRegistry()
	c := r.Counter("pkts")
	h := r.HiRes("lat.ns")
	s := NewSampler(r, sim.Millisecond)

	c.Add(10)
	h.Observe(100)
	h.Observe(200)
	s.Tick(1 * sim.Millisecond)

	c.Add(5)
	s.Tick(2 * sim.Millisecond) // hires has no new observations this interval

	c.Add(85)
	h.Observe(1000)
	s.Tick(3 * sim.Millisecond)
	return s
}

func TestSamplerDeltas(t *testing.T) {
	series := tickSampler(t).Series()
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	lat, pkts := series[0], series[1]
	if lat.Name != "lat.ns" || lat.Kind != KindHiRes || pkts.Name != "pkts" || pkts.Kind != KindCounter {
		t.Fatalf("series order/kind: %+v", series)
	}
	wantDeltas := []int64{10, 5, 85}
	if len(pkts.Samples) != 3 {
		t.Fatalf("counter rows = %d, want 3", len(pkts.Samples))
	}
	for i, smp := range pkts.Samples {
		if smp.V != wantDeltas[i] || smp.T != sim.Time(i+1)*sim.Millisecond {
			t.Errorf("counter row %d = %+v, want delta %d at %dms", i, smp, wantDeltas[i], i+1)
		}
	}
	if len(lat.Quantiles) != 3 {
		t.Fatalf("hires rows = %d, want 3", len(lat.Quantiles))
	}
	if q := lat.Quantiles[0]; q.Count != 2 || q.Sum != 300 {
		t.Errorf("hires row 0 = %+v, want count 2 sum 300", q)
	}
	if q := lat.Quantiles[1]; q.Count != 0 || q.P99 != 0 {
		t.Errorf("hires row 1 = %+v, want an explicit zero row", q)
	}
	// Interval 3's single observation: every quantile collapses onto it.
	if q := lat.Quantiles[2]; q.Count != 1 || q.P50 < 960 || q.P50 > 1088 {
		t.Errorf("hires row 2 = %+v", q)
	}
}

func TestSamplerLateRegistration(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, sim.Millisecond)
	r.Counter("early").Add(1)
	s.Tick(1 * sim.Millisecond)
	// A metric registered mid-run starts sampling from its first tick.
	r.Counter("late").Add(7)
	s.Tick(2 * sim.Millisecond)
	series := s.Series()
	if len(series) != 2 || series[0].Name != "early" || series[1].Name != "late" {
		t.Fatalf("series: %+v", series)
	}
	if len(series[0].Samples) != 2 || len(series[1].Samples) != 1 {
		t.Fatalf("row counts = %d/%d, want 2/1", len(series[0].Samples), len(series[1].Samples))
	}
	if series[1].Samples[0].V != 7 || series[1].Samples[0].T != 2*sim.Millisecond {
		t.Errorf("late row = %+v", series[1].Samples[0])
	}
}

func TestPointTimelineAbsorbAndDerive(t *testing.T) {
	pt := PointTimeline{Experiment: "e", Point: "p", Every: sim.Millisecond}
	pt.Absorb([]Series{{Name: "wan.link.busy.ns", Kind: KindCounter,
		Samples: []Sample{{T: sim.Millisecond, V: 250_000}}}}, 0)
	// Second environment's series shift past the first's end.
	pt.Absorb([]Series{{Name: "wan.link.busy.ns", Kind: KindCounter,
		Samples: []Sample{{T: sim.Millisecond, V: 500_000}}}}, 10*sim.Millisecond)
	pt.Finish()
	if len(pt.Series) != 2 {
		t.Fatalf("series = %d, want busy + derived utilization", len(pt.Series))
	}
	busy, util := pt.Series[0], pt.Series[1]
	if busy.Name != "wan.link.busy.ns" || util.Name != "wan.link.utilization.permille" || util.Kind != KindDerived {
		t.Fatalf("series: %q/%q", busy.Name, util.Name)
	}
	if busy.Samples[1].T != 11*sim.Millisecond {
		t.Errorf("absorbed offset: row 1 at %v, want 11ms", busy.Samples[1].T)
	}
	if util.Samples[0].V != 250 || util.Samples[1].V != 500 {
		t.Errorf("derived permille = %d/%d, want 250/500", util.Samples[0].V, util.Samples[1].V)
	}
	if pt.SampleCount() != 4 {
		t.Errorf("SampleCount = %d, want 4", pt.SampleCount())
	}
}

func timelineFixture() []PointTimeline {
	pt := PointTimeline{
		Experiment: "fig0", Point: "fig0/10us",
		Every: sim.Millisecond, TraceOffset: 2 * sim.Millisecond,
		Series: []Series{
			{Name: "wan.link.busy.ns", Kind: KindCounter, Samples: []Sample{
				{T: sim.Millisecond, V: 400_000}, {T: 2 * sim.Millisecond, V: 0},
			}},
			{Name: "lat.ns", Kind: KindHiRes, Quantiles: []QuantileSample{
				{T: sim.Millisecond, Count: 3, Sum: 600, P50: 150, P90: 280, P99: 310, P999: 312},
				{T: 2 * sim.Millisecond, Count: 0},
			}},
		},
	}
	pt.Finish()
	return []PointTimeline{pt}
}

func TestWriteTimelineJSONAndCSV(t *testing.T) {
	pts := timelineFixture()
	var js bytes.Buffer
	if err := WriteTimelineJSON(&js, sim.Millisecond, pts); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema        string `json:"schema"`
		SampleEveryNS int64  `json:"sample_every_ns"`
		Points        []struct {
			Experiment string `json:"experiment"`
			Series     []struct {
				Name    string           `json:"name"`
				Kind    string           `json:"kind"`
				Samples []map[string]any `json:"samples"`
			} `json:"series"`
		} `json:"points"`
	}
	if err := json.Unmarshal(js.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != TimelineSchema || rep.SampleEveryNS != 1_000_000 || len(rep.Points) != 1 {
		t.Fatalf("schema=%q every=%d points=%d", rep.Schema, rep.SampleEveryNS, len(rep.Points))
	}
	srs := rep.Points[0].Series
	if len(srs) != 3 { // lat.ns, busy, derived utilization — sorted by name
		t.Fatalf("series = %d, want 3", len(srs))
	}
	if srs[0].Name != "lat.ns" || srs[0].Samples[0]["p99"].(float64) != 310 {
		t.Errorf("hires row: %+v", srs[0].Samples[0])
	}
	if srs[1].Name != "wan.link.busy.ns" || srs[1].Samples[0]["rate_per_s"].(float64) != 400_000_000 {
		t.Errorf("counter row: %+v", srs[1].Samples[0])
	}
	if srs[2].Name != "wan.link.utilization.permille" || srs[2].Samples[0]["delta"].(float64) != 400 {
		t.Errorf("derived row: %+v", srs[2].Samples[0])
	}

	var csvBuf bytes.Buffer
	if err := WriteTimelineCSV(&csvBuf, sim.Millisecond, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 7 { // header + 2 hires + 2 counter + 2 derived
		t.Fatalf("CSV lines = %d, want 7:\n%s", len(lines), csvBuf.String())
	}
	if !strings.HasPrefix(lines[0], "experiment,point,series,kind,t_ns,") {
		t.Errorf("CSV header = %q", lines[0])
	}
	if want := "fig0,fig0/10us,lat.ns,hires,1000000,,,3,600,150,280,310,312"; lines[1] != want {
		t.Errorf("CSV hires row = %q, want %q", lines[1], want)
	}
}

// TestWritePerfettoCountersGolden pins the counter-track encoding: the
// dedicated "timeline" process sorted above the span processes, C events
// after all metadata, hires series fanned into p50/p99/p999 sub-series,
// and sample times shifted by the point's TraceOffset.
func TestWritePerfettoCountersGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfettoTimeline(&buf, goldenRecorder(), timelineFixture()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_counters_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Perfetto counter export differs from %s (run with -update if intentional)\ngot:\n%s", golden, buf.String())
	}
}

func TestWritePerfettoCountersStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfettoTimeline(&buf, goldenRecorder(), timelineFixture()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    float64
			PID   int
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var counters, data int
	tlPID, sortPID := -1, -1
	for _, e := range f.TraceEvents {
		switch e.Phase {
		case "M":
			if data > 0 {
				t.Error("metadata event after data events")
			}
			if e.Name == "process_name" && e.Args["name"] == "timeline" {
				tlPID = e.PID
			}
			if e.Name == "process_sort_index" {
				sortPID = e.PID
				if e.Args["sort_index"].(float64) != -1 {
					t.Errorf("sort_index = %v, want -1", e.Args["sort_index"])
				}
			}
		case "C":
			data++
			counters++
			if e.PID != tlPID {
				t.Errorf("counter %q on pid %d, want timeline pid %d", e.Name, e.PID, tlPID)
			}
			// TraceOffset (2ms) shifts the first sample (1ms) to 3ms = 3000us.
			if e.TS < 3000 {
				t.Errorf("counter %q at ts %v, want >= 3000 (offset applied)", e.Name, e.TS)
			}
		default:
			data++
		}
	}
	if tlPID < 0 || sortPID != tlPID {
		t.Fatalf("timeline process meta: pid=%d sort-index pid=%d", tlPID, sortPID)
	}
	// 3 series x 2 rows; the hires series' rows carry p50/p99/p999 in one
	// event each, counters a single value.
	if counters != 6 {
		t.Errorf("counter events = %d, want 6", counters)
	}
}

func TestMergeInto(t *testing.T) {
	src, dst := NewRegistry(), NewRegistry()
	src.Counter("a").Add(3)
	src.Counter("zero") // registered but never incremented: presence still merges
	src.Histogram("h").Observe(10)
	src.HiRes("hr").Observe(20)
	dst.Counter("a").Add(1)
	src.MergeInto(dst)
	if got := dst.Counter("a").Value(); got != 4 {
		t.Errorf("merged counter = %d, want 4", got)
	}
	if dst.Counter("zero").Value() != 0 {
		t.Error("zero counter should exist in dst after merge")
	}
	if dst.Histogram("h").Count() != 1 || dst.HiRes("hr").Count() != 1 {
		t.Error("histograms did not merge")
	}
	// Self-merge and nil-merge are no-ops, not double counts.
	dst.MergeInto(dst)
	src.MergeInto(nil)
	if got := dst.Counter("a").Value(); got != 4 {
		t.Errorf("self-merge changed counter to %d", got)
	}
}
