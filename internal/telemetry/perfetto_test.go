package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// goldenRecorder builds a tiny two-process trace exercising every exporter
// feature: process/track metadata, nested spans, a cross-epoch span, and
// instants with and without args.
func goldenRecorder() *Recorder {
	r := NewRecorder(0, 0)
	verbs := r.Track("nodeA-0", "verbs")
	wire := r.Track("nodeA-0", "wire")
	wan := r.Track("wan-A", "wan-queue")
	mpi := r.Track("nodeA-0", "mpi-rank-0")

	coll := r.StartAt(0, mpi, "coll.bcast", NoSpan)
	snd := r.StartAt(1000, mpi, "mpi.rndv", coll)
	v := r.StartAt(1500, verbs, "verbs.send", snd)
	r.AddInstant(Instant{Time: 2000, Track: wire, Name: "tx data", Msg: 1, Wire: 2048})
	r.RecordAt(2100, 4100, wan, "wan.xmit", v)
	r.AddInstant(Instant{Time: 4100, Track: wire, Name: "rx data", Msg: 1, Wire: 2048})
	r.EndAt(5000, v)
	r.EndAt(5200, snd)
	r.EndAt(6000, coll)
	r.AddInstant(Instant{Time: 6500, Track: wire, Name: "drop data", Msg: 2, Wire: 256, Reason: "fault"})
	r.Advance(10000)
	// Second measurement point, stacked after the first; its span is left
	// open so the exporter closes it at the latest observed time.
	r.StartAt(0, mpi, "mpi.eager", NoSpan)
	r.AddInstant(Instant{Time: 400, Track: wire, Name: "tx data"})
	return r
}

func TestWritePerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, goldenRecorder()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Perfetto export differs from %s (run with -update if intentional)\ngot:\n%s", golden, buf.String())
	}
}

// TestWritePerfettoStructure validates exporter invariants independent of
// the golden bytes: valid JSON, metadata before slices, ids resolvable.
func TestWritePerfettoStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, goldenRecorder()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    float64
			Dur   float64
			PID   int
			TID   int
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	ids := map[float64]string{}
	var spans, instants, meta int
	for _, e := range f.TraceEvents {
		switch e.Phase {
		case "M":
			meta++
			if spans+instants > 0 {
				t.Error("metadata event after data events")
			}
		case "X":
			spans++
			id, _ := e.Args["id"].(float64)
			ids[id] = e.Name
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", e.Phase)
		}
	}
	// 2 processes + 4 tracks of metadata; 5 spans (4 completed + 1
	// auto-closed); 4 instants.
	if meta != 6 || spans != 5 || instants != 4 {
		t.Errorf("meta/spans/instants = %d/%d/%d, want 6/5/4", meta, spans, instants)
	}
	for _, e := range f.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		if p, ok := e.Args["parent"].(float64); ok && p != 0 {
			if _, known := ids[p]; !known {
				t.Errorf("span %q has unresolvable parent %v", e.Name, p)
			}
		}
	}
}

func TestMetricsDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(42)
	r.Gauge("b.gauge").Set(-3)
	h := r.Histogram("c.hist")
	h.Observe(1)
	h.Observe(900)
	var js bytes.Buffer
	if err := WriteMetricsJSON(&js, r); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema  string `json:"schema"`
		Metrics []struct {
			Name, Kind string
			Value      int64
			Count      int64
			Buckets    []struct{ Lo, Hi, Count int64 }
		} `json:"metrics"`
	}
	if err := json.Unmarshal(js.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "ibwan-metrics/v1" || len(rep.Metrics) != 3 {
		t.Fatalf("schema=%q metrics=%d", rep.Schema, len(rep.Metrics))
	}
	if rep.Metrics[0].Name != "a.count" || rep.Metrics[0].Value != 42 {
		t.Errorf("first metric = %+v", rep.Metrics[0])
	}
	if got := rep.Metrics[2]; got.Kind != "histogram" || got.Count != 2 || len(got.Buckets) != 2 {
		t.Errorf("histogram snapshot = %+v", got)
	}
	var txt bytes.Buffer
	if err := WriteMetricsText(&txt, r); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{"counter", "a.count", "42", "gauge", "-3", "histogram", "count=2", "[512,1024):1"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}
