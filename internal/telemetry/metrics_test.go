package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{math.MaxInt64, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's bounds must round-trip: a value at the inclusive lower
	// bound and at one below the exclusive upper bound lands in the bucket.
	for i := 1; i < HistBuckets-1; i++ {
		lo, hi := BucketLo(i), BucketHi(i)
		if lo != 1<<(i-1) {
			t.Fatalf("BucketLo(%d) = %d, want %d", i, lo, int64(1)<<(i-1))
		}
		if got := bucketOf(lo); got != i {
			t.Errorf("bucketOf(BucketLo(%d)=%d) = %d, want %d", i, lo, got, i)
		}
		if got := bucketOf(hi - 1); got != i {
			t.Errorf("bucketOf(BucketHi(%d)-1=%d) = %d, want %d", i, hi-1, got, i)
		}
	}
	if BucketLo(0) != math.MinInt64 || BucketHi(0) != 1 {
		t.Errorf("bucket 0 bounds = [%d,%d), want [MinInt64,1)", BucketLo(0), BucketHi(0))
	}
	if BucketHi(HistBuckets-1) != math.MaxInt64 {
		t.Errorf("top bucket hi = %d, want MaxInt64", BucketHi(HistBuckets-1))
	}
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram()
	for _, v := range []int64{1, 3, 3, 100, -7} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 100 {
		t.Errorf("sum = %d, want 100", h.Sum())
	}
	if h.Min() != -7 || h.Max() != 100 {
		t.Errorf("min/max = %d/%d, want -7/100", h.Min(), h.Max())
	}
	if got := h.Bucket(bucketOf(3)); got != 2 {
		t.Errorf("bucket(3) count = %d, want 2", got)
	}
	if got := h.Bucket(0); got != 1 {
		t.Errorf("bucket 0 count = %d, want 1 (the -7)", got)
	}
	if h.Mean() != 20 {
		t.Errorf("mean = %v, want 20", h.Mean())
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := newHistogram()
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram min/max/mean = %d/%d/%v, want zeros", h.Min(), h.Max(), h.Mean())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Nil registry hands out nil handles; every record method must no-op.
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Add(3)
	c.Inc()
	g.Set(7)
	h.Observe(9)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Min() != 0 {
		t.Error("nil handles reported non-zero state")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	var rec *Recorder
	ref := rec.StartAt(0, rec.Track("p", "t"), "x", NoSpan)
	if ref.Valid() {
		t.Error("nil recorder returned a valid span ref")
	}
	rec.EndAt(1, ref)
	rec.Advance(5)
	if rec.Spans() != nil || rec.Instants() != nil || rec.SpanCount() != 0 {
		t.Error("nil recorder reported state")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter not idempotent")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Error("Histogram not idempotent")
	}
	// Same name, different kinds coexist.
	r.Counter("dup").Add(1)
	r.Gauge("dup").Set(2)
	r.Histogram("dup").Observe(3)
	snap := r.Snapshot()
	if len(snap) != 5 { // x counter, x hist, dup counter+gauge+hist
		t.Fatalf("snapshot has %d entries, want 5", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		a, b := snap[i-1], snap[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Kind >= b.Kind) {
			t.Errorf("snapshot not sorted: %s/%s before %s/%s", a.Name, a.Kind, b.Name, b.Kind)
		}
	}
}

// TestConcurrentRecording hammers shared handles from many goroutines, as
// concurrently measured experiment points do, and checks exact totals.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Get-or-create races with other workers by design.
			c := r.Counter("shared.count")
			h := r.Histogram("shared.hist")
			for i := 0; i < per; i++ {
				c.Add(1)
				h.Observe(int64(i%1000 + 1))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.count").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	h := r.Histogram("shared.hist")
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d, want 1/1000", h.Min(), h.Max())
	}
	var bucketSum int64
	for i := 0; i < HistBuckets; i++ {
		bucketSum += h.Bucket(i)
	}
	if bucketSum != workers*per {
		t.Errorf("bucket total = %d, want %d", bucketSum, workers*per)
	}
}
