package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// High-resolution log-linear histograms: log2 major buckets split into
// linear sub-buckets (the HDR-histogram layout). Where the coarse Histogram
// answers "what order of magnitude", these answer "what percentile" —
// quantile estimates are off by at most one sub-bucket width, a bounded
// relative error of about 1/2^SubBits — at the cost of more (but still
// fixed, still allocation-free) bucket storage. Layers register one next to
// a coarse histogram when a metric is an SLO instrument, not just a shape
// diagnostic.

// SubBits is the number of linear sub-bucket bits per log2 major bucket: 16
// sub-buckets, so quantile interpolation error is bounded by 1/16 (~6%) of
// the estimated value.
const SubBits = 4

const subCount = 1 << SubBits

// HiResBuckets is the fixed bucket count of a HiResHistogram. Bucket 0
// catches values <= 0; buckets 1..15 hold the exactly-representable values
// 1..15; bucket 16*(g)+s (g >= 1) holds [2^(g-1)*(16+s), 2^(g-1)*(16+s+1)).
// The top group (values with 63 significant bits) ends at index 959.
const HiResBuckets = (64 - SubBits) * subCount

// hiResBucketOf maps a value to its bucket index.
func hiResBucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	if v < subCount {
		return int(v)
	}
	n := bits.Len64(uint64(v))
	sub := int(v>>(uint(n)-1-SubBits)) & (subCount - 1)
	return (n-SubBits)*subCount + sub
}

// HiResBucketLo returns the inclusive lower bound of bucket i.
func HiResBucketLo(i int) int64 {
	if i <= 0 {
		return math.MinInt64
	}
	if i < subCount {
		return int64(i)
	}
	g := i >> SubBits
	sub := int64(i & (subCount - 1))
	return (int64(subCount) + sub) << uint(g-1)
}

// HiResBucketHi returns the exclusive upper bound of bucket i.
func HiResBucketHi(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= HiResBuckets-1 {
		return math.MaxInt64
	}
	return HiResBucketLo(i + 1)
}

// HiResHistogram is a fixed-layout log-linear histogram with count and sum.
// Recording is one bucket computation plus three atomic adds — no CAS
// min/max loop, since the extreme values are recoverable from the populated
// buckets — so the record path stays allocation-free and cheap enough for
// per-packet sites.
type HiResHistogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HiResBuckets]atomic.Int64
}

// Observe records one value. No-op on a nil receiver; allocation-free.
func (h *HiResHistogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[hiResBucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *HiResHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *HiResHistogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the count in bucket i.
func (h *HiResHistogram) Bucket(i int) int64 {
	if h == nil || i < 0 || i >= HiResBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// CopyBuckets loads every bucket into dst (which must have HiResBuckets
// capacity) and returns (count, sum). The sampler uses it to take interval
// deltas without allocating per tick.
func (h *HiResHistogram) CopyBuckets(dst []int64) (count, sum int64) {
	if h == nil {
		for i := range dst {
			dst[i] = 0
		}
		return 0, 0
	}
	for i := range h.buckets {
		dst[i] = h.buckets[i].Load()
	}
	return h.count.Load(), h.sum.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) of all observations so
// far: the cumulative bucket walk lands in one bucket, and the estimate
// interpolates linearly within it, so the error is bounded by that bucket's
// width. Returns 0 when empty.
func (h *HiResHistogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var scratch [HiResBuckets]int64
	count, _ := h.CopyBuckets(scratch[:])
	return QuantileFromBuckets(scratch[:], count, q)
}

// merge adds src's buckets, count and sum into h.
func (h *HiResHistogram) merge(src *HiResHistogram) {
	if h == nil || src == nil {
		return
	}
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
}

// QuantileFromBuckets estimates the q-quantile of a HiResHistogram bucket
// vector holding count observations (the sampler hands it per-interval
// bucket deltas). Interpolation is linear within the landing bucket; the
// <=0 bucket estimates as 0.
func QuantileFromBuckets(buckets []int64, count int64, q float64) float64 {
	if count <= 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(count)))
	if target < 1 {
		target = 1
	}
	if target > count {
		target = count
	}
	var cum int64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		cum += c
		if cum < target {
			continue
		}
		if i == 0 {
			return 0
		}
		lo, hi := HiResBucketLo(i), HiResBucketHi(i)
		pos := target - (cum - c) // 1..c within this bucket
		frac := float64(pos) / float64(c)
		return float64(lo) + frac*float64(hi-lo)
	}
	return 0
}
