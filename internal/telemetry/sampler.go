package telemetry

import (
	"sort"

	"repro/internal/sim"
)

// Sampler snapshots a Registry's deltas at a fixed sim-time cadence into
// append-only per-metric series. It is driven by the simulation kernel's
// sampling hook (sim.Env.SetSampler), which guarantees the sample at time S
// reflects exactly the events scheduled at or before S — on the classic
// single-heap scheduler by firing between event dispatches, on the sharded
// scheduler by clamping window horizons to the next sample time and firing
// at the barrier. Because the hook never schedules heap events, sampling
// perturbs nothing: event sequence numbers, executed counts and rendered
// output are identical with sampling on or off.
//
// Counters are recorded as per-interval deltas (rates fall out at export
// time); hires histograms as per-interval quantile rows computed from
// bucket deltas against the previous tick. Gauges are not sampled — they
// are last-write-wins and the registry no longer carries any on the
// deterministic paths. Zero-delta intervals are kept, so every series has
// one row per tick and timelines from different runs align by construction.
type Sampler struct {
	reg   *Registry
	every sim.Time

	counters []*samplerCounter
	hires    []*samplerHiRes
	byName   map[string]int // index into counters/hires by kind-prefixed name
}

type samplerCounter struct {
	name    string
	c       *Counter
	prev    int64
	samples []Sample
}

type samplerHiRes struct {
	name    string
	h       *HiResHistogram
	prev    []int64 // previous tick's cumulative buckets
	cur     []int64 // scratch: this tick's cumulative buckets
	prevCnt int64
	prevSum int64
	samples []QuantileSample
}

// NewSampler creates a sampler over reg ticking every `every` of sim time.
func NewSampler(reg *Registry, every sim.Time) *Sampler {
	return &Sampler{reg: reg, every: every, byName: make(map[string]int)}
}

// Every returns the sampling interval.
func (s *Sampler) Every() sim.Time { return s.every }

// refresh syncs the sampler's metric lists with the registry, picking up
// metrics registered since the last tick. New metrics start sampling from
// the tick they appear on (their earlier intervals have no rows); since
// metric registration is part of deterministic simulation setup, the
// resulting series shapes are still identical across worker counts.
func (s *Sampler) refresh() {
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	if len(s.counters) == len(s.reg.counters) && len(s.hires) == len(s.reg.hires) {
		return
	}
	for name, c := range s.reg.counters {
		if _, ok := s.byName["c:"+name]; !ok {
			s.byName["c:"+name] = len(s.counters)
			s.counters = append(s.counters, &samplerCounter{name: name, c: c})
		}
	}
	for name, h := range s.reg.hires {
		if _, ok := s.byName["h:"+name]; !ok {
			s.byName["h:"+name] = len(s.hires)
			s.hires = append(s.hires, &samplerHiRes{
				name: name, h: h,
				prev: make([]int64, HiResBuckets),
				cur:  make([]int64, HiResBuckets),
			})
		}
	}
	sort.Slice(s.counters, func(i, j int) bool { return s.counters[i].name < s.counters[j].name })
	sort.Slice(s.hires, func(i, j int) bool { return s.hires[i].name < s.hires[j].name })
	for i, c := range s.counters {
		s.byName["c:"+c.name] = i
	}
	for i, h := range s.hires {
		s.byName["h:"+h.name] = i
	}
}

// Tick takes one sample at sim time at. It is called from the scheduler's
// sampling hook — between event dispatches, with all registry writers
// settled — so plain reads of the atomic handles see a consistent prefix of
// the run.
func (s *Sampler) Tick(at sim.Time) {
	s.refresh()
	for _, c := range s.counters {
		v := c.c.Value()
		c.samples = append(c.samples, Sample{T: at, V: v - c.prev})
		c.prev = v
	}
	for _, h := range s.hires {
		count, sum := h.h.CopyBuckets(h.cur)
		dc, ds := count-h.prevCnt, sum-h.prevSum
		for i := range h.cur {
			h.cur[i] -= h.prev[i]
		}
		h.samples = append(h.samples, QuantileSample{
			T: at, Count: dc, Sum: ds,
			P50:  QuantileFromBuckets(h.cur, dc, 0.50),
			P90:  QuantileFromBuckets(h.cur, dc, 0.90),
			P99:  QuantileFromBuckets(h.cur, dc, 0.99),
			P999: QuantileFromBuckets(h.cur, dc, 0.999),
		})
		for i := range h.cur {
			h.prev[i] += h.cur[i]
		}
		h.prevCnt, h.prevSum = count, sum
	}
}

// Series returns the accumulated series, sorted by (name, kind). The
// returned slices share the sampler's backing arrays; take them after the
// run, not between ticks.
func (s *Sampler) Series() []Series {
	out := make([]Series, 0, len(s.counters)+len(s.hires))
	for _, c := range s.counters {
		out = append(out, Series{Name: c.name, Kind: KindCounter, Samples: c.samples})
	}
	for _, h := range s.hires {
		out = append(out, Series{Name: h.name, Kind: KindHiRes, Quantiles: h.samples})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
