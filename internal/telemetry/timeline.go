package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"repro/internal/sim"
)

// Timelines: the deterministic time-series store filled by Samplers, one
// PointTimeline per measurement point, and its exporters — a versioned
// JSON/CSV schema ("ibwan-timeline/v1") and Perfetto counter tracks (see
// perfetto.go). A timeline is a pure function of the simulation, so its
// serialized bytes are identical at any -par / -shards combination
// (regression-enforced in internal/core).

// TimelineSchema is the versioned identifier of the JSON timeline dump.
const TimelineSchema = "ibwan-timeline/v1"

// Series kinds.
const (
	KindCounter = "counter" // Samples: per-interval counter deltas
	KindHiRes   = "hires"   // Quantiles: per-interval quantile rows
	KindDerived = "derived" // Samples: values computed at export time
)

// Sample is one counter or derived-series row: the per-interval delta (or
// derived value) at sim time T.
type Sample struct {
	T sim.Time
	V int64
}

// QuantileSample is one hires-histogram row: per-interval observation count
// and sum plus interpolated quantile estimates at sim time T.
type QuantileSample struct {
	T     sim.Time
	Count int64
	Sum   int64
	P50   float64
	P90   float64
	P99   float64
	P999  float64
}

// Series is one named metric's timeline within a point.
type Series struct {
	Name      string
	Kind      string
	Samples   []Sample         // counter / derived kinds
	Quantiles []QuantileSample // hires kind
}

// PointTimeline is the sampled timeline of one measurement point. A point
// that builds several environments (warmup + measured run) stacks their
// series end to end, each environment's samples shifted by the virtual time
// its predecessors consumed — mirroring how the span recorder stacks point
// epochs.
type PointTimeline struct {
	Experiment string
	Point      string
	Every      sim.Time
	// TraceOffset is the span recorder's epoch offset at the moment the
	// point started (0 without span recording); the Perfetto exporter adds
	// it so counter tracks line up under the point's spans.
	TraceOffset sim.Time
	Series      []Series
}

// Absorb merges src series into the timeline, shifting every sample time by
// offset. Series with the same (name, kind) append — offsets are monotonic
// across a point's environments, so times stay nondecreasing.
func (pt *PointTimeline) Absorb(src []Series, offset sim.Time) {
	for _, s := range src {
		dst := pt.series(s.Name, s.Kind)
		for _, smp := range s.Samples {
			smp.T += offset
			dst.Samples = append(dst.Samples, smp)
		}
		for _, q := range s.Quantiles {
			q.T += offset
			dst.Quantiles = append(dst.Quantiles, q)
		}
	}
}

// series finds or appends the (name, kind) series.
func (pt *PointTimeline) series(name, kind string) *Series {
	for i := range pt.Series {
		if pt.Series[i].Name == name && pt.Series[i].Kind == kind {
			return &pt.Series[i]
		}
	}
	pt.Series = append(pt.Series, Series{Name: name, Kind: kind})
	return &pt.Series[len(pt.Series)-1]
}

// Finish derives export-time series and sorts the set by (name, kind). The
// one derived series today is WAN link utilization: the deterministic
// wan.link.busy.ns counter (cumulative serialization time across WAN ports)
// divided by the sampling interval, in permille. On topologies with several
// WAN links the value aggregates all ports and can exceed 1000.
func (pt *PointTimeline) Finish() {
	if pt.Every > 0 {
		for i := range pt.Series {
			s := &pt.Series[i]
			if s.Name != "wan.link.busy.ns" || s.Kind != KindCounter {
				continue
			}
			d := Series{Name: "wan.link.utilization.permille", Kind: KindDerived}
			d.Samples = make([]Sample, len(s.Samples))
			for j, smp := range s.Samples {
				d.Samples[j] = Sample{T: smp.T, V: smp.V * 1000 / int64(pt.Every)}
			}
			pt.Series = append(pt.Series, d)
			break
		}
	}
	sort.Slice(pt.Series, func(i, j int) bool {
		if pt.Series[i].Name != pt.Series[j].Name {
			return pt.Series[i].Name < pt.Series[j].Name
		}
		return pt.Series[i].Kind < pt.Series[j].Kind
	})
}

// SampleCount returns the total number of rows across the point's series.
func (pt *PointTimeline) SampleCount() int {
	n := 0
	for i := range pt.Series {
		n += len(pt.Series[i].Samples) + len(pt.Series[i].Quantiles)
	}
	return n
}

// JSON schema types. Counter/derived rows and hires rows have different
// shapes, so series carry their rows as the appropriate concrete struct —
// struct field order keeps the encoding deterministic.

type timelineJSON struct {
	Schema        string              `json:"schema"`
	SampleEveryNS int64               `json:"sample_every_ns"`
	Points        []pointTimelineJSON `json:"points"`
}

type pointTimelineJSON struct {
	Experiment string       `json:"experiment"`
	Point      string       `json:"point"`
	Series     []seriesJSON `json:"series"`
}

type seriesJSON struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Samples []any  `json:"samples"`
}

type counterSampleJSON struct {
	TNS      int64   `json:"t_ns"`
	Delta    int64   `json:"delta"`
	RatePerS float64 `json:"rate_per_s"`
}

type quantileSampleJSON struct {
	TNS   int64   `json:"t_ns"`
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// WriteTimelineJSON dumps the point timelines as "ibwan-timeline/v1" JSON.
// Counter and derived rows carry {t_ns, delta, rate_per_s}; hires rows
// {t_ns, count, sum, p50, p90, p99, p999}.
func WriteTimelineJSON(w io.Writer, every sim.Time, pts []PointTimeline) error {
	rep := timelineJSON{Schema: TimelineSchema, SampleEveryNS: int64(every), Points: make([]pointTimelineJSON, 0, len(pts))}
	for i := range pts {
		pt := &pts[i]
		jp := pointTimelineJSON{Experiment: pt.Experiment, Point: pt.Point, Series: make([]seriesJSON, 0, len(pt.Series))}
		ev := pt.Every
		if ev <= 0 {
			ev = every
		}
		for j := range pt.Series {
			s := &pt.Series[j]
			js := seriesJSON{Name: s.Name, Kind: s.Kind, Samples: make([]any, 0, len(s.Samples)+len(s.Quantiles))}
			for _, smp := range s.Samples {
				row := counterSampleJSON{TNS: int64(smp.T), Delta: smp.V}
				if ev > 0 {
					row.RatePerS = float64(smp.V) / ev.Seconds()
				}
				js.Samples = append(js.Samples, row)
			}
			for _, q := range s.Quantiles {
				js.Samples = append(js.Samples, quantileSampleJSON{
					TNS: int64(q.T), Count: q.Count, Sum: q.Sum,
					P50: q.P50, P90: q.P90, P99: q.P99, P999: q.P999,
				})
			}
			jp.Series = append(jp.Series, js)
		}
		rep.Points = append(rep.Points, jp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteTimelineCSV dumps the point timelines as one flat CSV: one row per
// sample, kind-specific columns left empty where they do not apply.
func WriteTimelineCSV(w io.Writer, every sim.Time, pts []PointTimeline) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"experiment", "point", "series", "kind", "t_ns",
		"value", "rate_per_s", "count", "sum", "p50", "p90", "p99", "p999",
	}); err != nil {
		return err
	}
	ffloat := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fint := func(v int64) string { return strconv.FormatInt(v, 10) }
	for i := range pts {
		pt := &pts[i]
		ev := pt.Every
		if ev <= 0 {
			ev = every
		}
		for j := range pt.Series {
			s := &pt.Series[j]
			for _, smp := range s.Samples {
				rate := ""
				if ev > 0 {
					rate = ffloat(float64(smp.V) / ev.Seconds())
				}
				if err := cw.Write([]string{
					pt.Experiment, pt.Point, s.Name, s.Kind, fint(int64(smp.T)),
					fint(smp.V), rate, "", "", "", "", "", "",
				}); err != nil {
					return err
				}
			}
			for _, q := range s.Quantiles {
				if err := cw.Write([]string{
					pt.Experiment, pt.Point, s.Name, s.Kind, fint(int64(q.T)),
					"", "", fint(q.Count), fint(q.Sum),
					ffloat(q.P50), ffloat(q.P90), ffloat(q.P99), ffloat(q.P999),
				}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
