package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event JSON export, loadable in Perfetto (ui.perfetto.dev)
// and chrome://tracing. Tracks map to (pid, tid) pairs named by metadata
// events; spans become "X" complete events with id/parent/depth args so the
// cross-track hierarchy survives the export; wire-level instants become "i"
// thread-scoped instant events.

type traceEventArgs struct {
	Name   string  `json:"name,omitempty"`
	ID     int64   `json:"id,omitempty"`
	Parent int64   `json:"parent,omitempty"`
	Depth  int32   `json:"depth,omitempty"`
	Msg    int64   `json:"msg,omitempty"`
	Wire   int     `json:"wire,omitempty"`
	Reason string  `json:"reason,omitempty"`
	SortIx float64 `json:"sort_index,omitempty"`
}

type traceEvent struct {
	Name  string          `json:"name"`
	Phase string          `json:"ph"`
	TS    float64         `json:"ts"`            // microseconds
	Dur   float64         `json:"dur,omitempty"` // microseconds
	PID   int             `json:"pid"`
	TID   int             `json:"tid"`
	Scope string          `json:"s,omitempty"` // instant scope
	Args  *traceEventArgs `json:"args,omitempty"`
}

// counterEvent is a Chrome trace-event "C" counter sample. Counter tracks
// are per-process (no tid); the args map's keys become sub-series of the
// rendered graph, and encoding/json emits map keys sorted, so the output
// stays deterministic.
type counterEvent struct {
	Name  string             `json:"name"`
	Phase string             `json:"ph"`
	TS    float64            `json:"ts"` // microseconds
	PID   int                `json:"pid"`
	Args  map[string]float64 `json:"args"`
}

type traceFile struct {
	TraceEvents     []any  `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// micros converts sim time (ns) to trace-event microseconds.
func micros(ns int64) float64 { return float64(ns) / 1000.0 }

// WritePerfetto serializes the recorder's spans and instants as Chrome
// trace-event JSON. Output is deterministic: tracks are grouped into
// processes in first-registration order, spans are sorted by (start, id)
// and instants by (time, record order).
func WritePerfetto(w io.Writer, r *Recorder) error {
	return WritePerfettoTimeline(w, r, nil)
}

// WritePerfettoTimeline is WritePerfetto plus sampled timelines rendered as
// counter tracks: every series becomes a "C"-event graph in a dedicated
// "timeline" process pinned above the span rows (process_sort_index -1).
// Counter and derived series graph their per-interval value; hires series
// graph p50/p99/p999 as stacked sub-series. Sample times are shifted by
// each point's TraceOffset, so counters line up under that point's spans on
// the recorder's stacked epoch timeline. With pts nil the output is exactly
// WritePerfetto's.
func WritePerfettoTimeline(w io.Writer, r *Recorder, pts []PointTimeline) error {
	tracks := r.Tracks()
	// Assign one pid per distinct process name, in first-appearance order,
	// and one tid per track within its process.
	pidOf := make(map[string]int)
	var procs []string
	tidOf := make([]int, len(tracks))
	trackPID := make([]int, len(tracks))
	nextTID := make(map[string]int)
	for i, tk := range tracks {
		proc := tk[0]
		pid, ok := pidOf[proc]
		if !ok {
			pid = len(procs) + 1
			pidOf[proc] = pid
			procs = append(procs, proc)
		}
		nextTID[proc]++
		trackPID[i] = pid
		tidOf[i] = nextTID[proc]
	}

	spans := r.Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
	instants := r.Instants()
	sort.SliceStable(instants, func(i, j int) bool {
		return instants[i].Time < instants[j].Time
	})

	events := make([]any, 0, 2*len(tracks)+len(spans)+len(instants))
	for i, proc := range procs {
		events = append(events, traceEvent{
			Name: "process_name", Phase: "M", PID: i + 1,
			Args: &traceEventArgs{Name: proc},
		})
	}
	tlPID := 0
	if hasSamples(pts) {
		// The timeline process hosts every counter track; sort_index -1
		// pins it above the (default-sorted) span processes.
		tlPID = len(procs) + 1
		events = append(events, traceEvent{
			Name: "process_name", Phase: "M", PID: tlPID,
			Args: &traceEventArgs{Name: "timeline"},
		})
		events = append(events, traceEvent{
			Name: "process_sort_index", Phase: "M", PID: tlPID,
			Args: &traceEventArgs{SortIx: -1},
		})
	}
	for i, tk := range tracks {
		events = append(events, traceEvent{
			Name: "thread_name", Phase: "M", PID: trackPID[i], TID: tidOf[i],
			Args: &traceEventArgs{Name: tk[1]},
		})
	}
	for _, s := range spans {
		tid, pid := 0, 0
		if int(s.Track) < len(tracks) {
			tid, pid = tidOf[s.Track], trackPID[s.Track]
		}
		events = append(events, traceEvent{
			Name: s.Name, Phase: "X",
			TS: micros(int64(s.Start)), Dur: micros(int64(s.End - s.Start)),
			PID: pid, TID: tid,
			Args: &traceEventArgs{ID: s.ID, Parent: s.Parent, Depth: s.Depth},
		})
	}
	for _, in := range instants {
		tid, pid := 0, 0
		if int(in.Track) < len(tracks) {
			tid, pid = tidOf[in.Track], trackPID[in.Track]
		}
		ev := traceEvent{
			Name: in.Name, Phase: "i", TS: micros(int64(in.Time)),
			PID: pid, TID: tid, Scope: "t",
		}
		if in.Msg != 0 || in.Wire != 0 || in.Reason != "" {
			ev.Args = &traceEventArgs{Msg: in.Msg, Wire: in.Wire, Reason: in.Reason}
		}
		events = append(events, ev)
	}
	if tlPID != 0 {
		for pi := range pts {
			pt := &pts[pi]
			off := int64(pt.TraceOffset)
			for si := range pt.Series {
				s := &pt.Series[si]
				for _, smp := range s.Samples {
					events = append(events, counterEvent{
						Name: s.Name, Phase: "C", TS: micros(int64(smp.T) + off), PID: tlPID,
						Args: map[string]float64{"value": float64(smp.V)},
					})
				}
				for _, q := range s.Quantiles {
					events = append(events, counterEvent{
						Name: s.Name, Phase: "C", TS: micros(int64(q.T) + off), PID: tlPID,
						Args: map[string]float64{"p50": q.P50, "p99": q.P99, "p999": q.P999},
					})
				}
			}
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// hasSamples reports whether any point timeline carries at least one row —
// an all-empty timeline set adds no counter process to the trace.
func hasSamples(pts []PointTimeline) bool {
	for i := range pts {
		if pts[i].SampleCount() > 0 {
			return true
		}
	}
	return false
}
