package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHiResBucketRoundTrip(t *testing.T) {
	vals := []int64{math.MinInt64, -5, 0, 1, 2, 15, 16, 17, 31, 32, 100,
		1023, 1024, 1025, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		vals = append(vals, int64(1)<<uint(rng.Intn(62))+rng.Int63n(1<<40))
	}
	for _, v := range vals {
		i := hiResBucketOf(v)
		if i < 0 || i >= HiResBuckets {
			t.Fatalf("bucket index %d out of range for value %d", i, v)
		}
		lo, hi := HiResBucketLo(i), HiResBucketHi(i)
		// The top bucket's bound clamps at MaxInt64, which makes it the one
		// inclusive upper bound (2^63 is not representable).
		if v < lo || (v >= hi && !(v == math.MaxInt64 && hi == math.MaxInt64)) {
			t.Errorf("value %d landed in bucket %d = [%d,%d)", v, i, lo, hi)
		}
	}
	// Bucket bounds tile the axis: each bucket's hi is the next one's lo.
	for i := 0; i < HiResBuckets-1; i++ {
		if HiResBucketHi(i) != HiResBucketLo(i+1) {
			t.Fatalf("gap between buckets %d and %d: hi=%d next lo=%d",
				i, i+1, HiResBucketHi(i), HiResBucketLo(i+1))
		}
	}
}

// TestHiResQuantileAccuracy checks the headline guarantee: a quantile
// estimate is within one sub-bucket width of the exact order statistic.
func TestHiResQuantileAccuracy(t *testing.T) {
	dists := map[string]func(r *rand.Rand) int64{
		"uniform":     func(r *rand.Rand) int64 { return r.Int63n(1_000_000) },
		"exponential": func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 50_000) },
		"bimodal": func(r *rand.Rand) int64 {
			if r.Intn(10) == 0 {
				return 5_000_000 + r.Int63n(100_000) // the slow tail
			}
			return 1_000 + r.Int63n(500)
		},
	}
	for name, draw := range dists {
		rng := rand.New(rand.NewSource(42))
		h := &HiResHistogram{}
		vals := make([]int64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := draw(rng)
			vals = append(vals, v)
			h.Observe(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
			rank := int(math.Ceil(q*float64(len(vals)))) - 1
			exact := vals[rank]
			est := h.Quantile(q)
			b := hiResBucketOf(exact)
			width := float64(HiResBucketHi(b) - HiResBucketLo(b))
			if math.Abs(est-float64(exact)) > width {
				t.Errorf("%s p%g: estimate %.0f vs exact %d (bucket width %.0f)",
					name, q*100, est, exact, width)
			}
		}
	}
}

func TestHiResQuantileEdgeCases(t *testing.T) {
	var nilH *HiResHistogram
	nilH.Observe(5) // must not panic
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram should read as empty")
	}
	h := &HiResHistogram{}
	if h.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	h.Observe(-7)
	h.Observe(0)
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("all-nonpositive quantile = %v, want 0", got)
	}
	if h.Count() != 2 || h.Sum() != -7 {
		t.Errorf("count/sum = %d/%d", h.Count(), h.Sum())
	}
}

func TestHiResMerge(t *testing.T) {
	a, b := &HiResHistogram{}, &HiResHistogram{}
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
		b.Observe(i * 1000)
	}
	a.merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	wantSum := int64(5050 + 5050*1000)
	if a.Sum() != wantSum {
		t.Errorf("merged sum = %d, want %d", a.Sum(), wantSum)
	}
	if a.Bucket(hiResBucketOf(5)) == 0 || a.Bucket(hiResBucketOf(5000)) == 0 {
		t.Error("merged histogram lost one side's buckets")
	}
}

func TestRegistryHiRes(t *testing.T) {
	r := NewRegistry()
	h := r.HiRes("x.latency")
	if h == nil || r.HiRes("x.latency") != h {
		t.Fatal("HiRes should return one stable handle per name")
	}
	// A coarse histogram may share the name: different kinds, both kept.
	if r.Histogram("x.latency") == nil {
		t.Fatal("coarse histogram under the same name")
	}
	h.Observe(100)
	h.Observe(200)
	var found bool
	for _, m := range r.Snapshot() {
		if m.Kind == "hires" && m.Name == "x.latency" {
			found = true
			if m.Count != 2 || m.Sum != 300 || m.P50 == 0 {
				t.Errorf("hires snapshot = %+v", m)
			}
		}
	}
	if !found {
		t.Error("Snapshot missing the hires entry")
	}
}
