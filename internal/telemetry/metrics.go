package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics registry: counters, gauges and fixed-bucket log-scale histograms.
//
// Handles are fetched once at setup time (mutex-protected get-or-create) and
// recorded against on the hot path with lock-free atomics, so the record
// path never allocates and is safe from any number of runner workers
// committing points concurrently. Every record method is a no-op on a nil
// receiver: a layer holds possibly-nil handles and records unconditionally,
// which keeps the disabled path to a single nil check per site.

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins instantaneous reading. Unlike counters and
// histograms, the final value of a gauge written from concurrently measured
// points depends on completion order; deterministic comparisons should use
// counters and histograms.
type Gauge struct {
	v atomic.Int64
}

// Set stores the reading. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last reading (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the fixed bucket count of every histogram. Bucket 0 holds
// observations <= 0; bucket i (i >= 1) holds observations in [2^(i-1), 2^i).
// 64 power-of-two buckets span the full int64 range, so nanosecond latencies
// from single-digit to hours land without configuration.
const HistBuckets = 64

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// BucketLo returns the inclusive lower bound of bucket i (0 for bucket 0).
func BucketLo(i int) int64 {
	if i <= 0 {
		return math.MinInt64
	}
	return 1 << (i - 1)
}

// BucketHi returns the exclusive upper bound of bucket i.
func BucketHi(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1 << i
}

// Histogram is a fixed-bucket log2 histogram with count/sum/min/max.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // initialized to MaxInt64
	max     atomic.Int64 // initialized to MinInt64
	buckets [HistBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. No-op on a nil receiver; allocation-free.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 {
	if h == nil || i < 0 || i >= HistBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Registry is a named collection of metrics. Getter methods are
// get-or-create and may be called from any goroutine; they are meant for
// setup time, not the record path. A nil Registry hands out nil handles,
// whose record methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	hires    map[string]*HiResHistogram
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		hires:    make(map[string]*HiResHistogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// HiRes returns the high-resolution histogram registered under name,
// creating it on first use. A hires histogram may share its name with a
// coarse Histogram (the two are separate kinds); layers typically register
// both and record into both at SLO-relevant sites.
func (r *Registry) HiRes(name string) *HiResHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hires[name]
	if !ok {
		h = &HiResHistogram{}
		r.hires[name] = h
	}
	return h
}

// MergeInto adds every counter, histogram and hires histogram of r into
// dst, creating names that dst lacks. All contributions are commutative
// (counter adds, bucket adds), so merging several registries into one in
// any order yields the same totals — this is how per-point sampling
// registries fold back into a run-wide registry without making the result
// depend on point completion order. Gauges are last-write-wins and are
// deliberately not merged. No-op when either registry is nil.
func (r *Registry) MergeInto(dst *Registry) {
	if r == nil || dst == nil || r == dst {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		if v := c.Value(); v != 0 {
			dst.Counter(name).Add(v)
		} else {
			dst.Counter(name) // presence documents the armed site
		}
	}
	for name, h := range r.hists {
		dst.Histogram(name).merge(h)
	}
	for name, h := range r.hires {
		dst.HiRes(name).merge(h)
	}
}

// merge adds src's buckets and aggregates into h.
func (h *Histogram) merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	if n := src.count.Load(); n != 0 {
		h.count.Add(n)
		h.sum.Add(src.sum.Load())
		for v := src.min.Load(); ; {
			cur := h.min.Load()
			if v >= cur || h.min.CompareAndSwap(cur, v) {
				break
			}
		}
		for v := src.max.Load(); ; {
			cur := h.max.Load()
			if v <= cur || h.max.CompareAndSwap(cur, v) {
				break
			}
		}
	}
}

// BucketCount is one populated histogram bucket in a snapshot.
type BucketCount struct {
	Lo    int64 `json:"lo"` // inclusive (MinInt64 for the <=0 bucket)
	Hi    int64 `json:"hi"` // exclusive
	Count int64 `json:"count"`
}

// MetricSnapshot is one metric's state at snapshot time.
type MetricSnapshot struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // counter, gauge, histogram, hires
	// Counter/gauge value.
	Value int64 `json:"value,omitempty"`
	// Histogram aggregates.
	Count   int64         `json:"count,omitempty"`
	Sum     int64         `json:"sum,omitempty"`
	Min     int64         `json:"min,omitempty"`
	Max     int64         `json:"max,omitempty"`
	Mean    float64       `json:"mean,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
	// Hires quantile estimates (hires kind only).
	P50  float64 `json:"p50,omitempty"`
	P90  float64 `json:"p90,omitempty"`
	P99  float64 `json:"p99,omitempty"`
	P999 float64 `json:"p999,omitempty"`
}

// Snapshot returns every registered metric, sorted by (name, kind) so dumps
// are deterministic. Empty histograms and zero counters are included: a
// metric's presence documents that its instrumentation point was armed.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.hires))
	for name, c := range r.counters {
		out = append(out, MetricSnapshot{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, MetricSnapshot{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		snap := MetricSnapshot{
			Name: name, Kind: "histogram",
			Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(), Mean: h.Mean(),
		}
		for i := 0; i < HistBuckets; i++ {
			if n := h.Bucket(i); n > 0 {
				snap.Buckets = append(snap.Buckets, BucketCount{Lo: BucketLo(i), Hi: BucketHi(i), Count: n})
			}
		}
		out = append(out, snap)
	}
	var scratch [HiResBuckets]int64
	for name, h := range r.hires {
		count, sum := h.CopyBuckets(scratch[:])
		snap := MetricSnapshot{
			Name: name, Kind: "hires",
			Count: count, Sum: sum,
			P50:  QuantileFromBuckets(scratch[:], count, 0.50),
			P90:  QuantileFromBuckets(scratch[:], count, 0.90),
			P99:  QuantileFromBuckets(scratch[:], count, 0.99),
			P999: QuantileFromBuckets(scratch[:], count, 0.999),
		}
		if count > 0 {
			snap.Mean = float64(sum) / float64(count)
		}
		for i := 0; i < HiResBuckets; i++ {
			if n := scratch[i]; n > 0 {
				snap.Buckets = append(snap.Buckets, BucketCount{Lo: HiResBucketLo(i), Hi: HiResBucketHi(i), Count: n})
			}
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
