// Package telemetry is the simulator's cross-layer observability subsystem:
// a metrics registry (counters, gauges, log-scale histograms — allocation
// free on the record path), a hierarchical stage-span recorder keyed on
// sim.Time, and exporters (Chrome trace-event JSON for Perfetto, plain-text
// and JSON metrics dumps).
//
// A Telemetry handle is attached to a sim.Env through the environment's
// opaque telemetry slot; every layer (verbs fabric, WAN extenders, TCP
// stack, MPI library, NFS client) looks it up at setup time with FromEnv
// and caches the metric and track handles it needs. When nothing is
// attached the layers keep nil handles, whose record methods are no-ops —
// the disabled path costs one nil check and zero allocations.
package telemetry

import "repro/internal/sim"

// Telemetry bundles the observability sinks for one recording session.
// Either field may be nil: Metrics enables the registry, Spans enables
// stage-span and wire-instant recording (which also forces the experiment
// runner to a single worker, as the recorder is single-writer).
type Telemetry struct {
	Metrics *Registry
	Spans   *Recorder
}

// Attach installs t on the environment. Layers created on env afterwards
// will find it via FromEnv.
func Attach(env *sim.Env, t *Telemetry) {
	if t == nil {
		return
	}
	env.SetTelemetry(t)
}

// FromEnv returns the Telemetry attached to env, or nil.
func FromEnv(env *sim.Env) *Telemetry {
	if env == nil {
		return nil
	}
	t, _ := env.Telemetry().(*Telemetry)
	return t
}
