package telemetry

import (
	"testing"

	"repro/internal/sim"
)

func TestSpanNesting(t *testing.T) {
	r := NewRecorder(0, 0)
	tk := r.Track("node", "verbs")
	root := r.StartAt(10, tk, "outer", NoSpan)
	child := r.StartAt(20, tk, "inner", root)
	if !root.Valid() || !child.Valid() {
		t.Fatal("refs should be valid")
	}
	r.EndAt(30, child)
	r.EndAt(40, root)
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Completion order: inner first.
	in, out := spans[0], spans[1]
	if in.Name != "inner" || out.Name != "outer" {
		t.Fatalf("order = %s,%s, want inner,outer", in.Name, out.Name)
	}
	if in.Parent != out.ID {
		t.Errorf("inner.Parent = %d, want %d", in.Parent, out.ID)
	}
	if in.Depth != 2 || out.Depth != 1 {
		t.Errorf("depths = %d,%d, want 2,1", in.Depth, out.Depth)
	}
	if in.Start != 20 || in.End != 30 || out.Start != 10 || out.End != 40 {
		t.Errorf("times wrong: inner [%d,%d], outer [%d,%d]", in.Start, in.End, out.Start, out.End)
	}
}

func TestSpanDepthLimit(t *testing.T) {
	r := NewRecorder(0, 2)
	tk := r.Track("n", "t")
	a := r.StartAt(0, tk, "a", NoSpan)
	b := r.StartAt(1, tk, "b", a)
	c := r.StartAt(2, tk, "c", b) // depth 3: suppressed
	if !b.Valid() {
		t.Fatal("depth 2 should record")
	}
	if c.Valid() {
		t.Fatal("depth 3 should be suppressed")
	}
	// A child of a suppressed span degrades to a root span, not a crash.
	d := r.StartAt(3, tk, "d", c)
	if !d.Valid() || d.depth != 1 {
		t.Errorf("child of suppressed span: valid=%v depth=%d, want valid root", d.Valid(), d.depth)
	}
	r.EndAt(4, d)
	r.EndAt(5, b)
	r.EndAt(6, a)
	if n := r.SpanCount(); n != 3 {
		t.Errorf("span count = %d, want 3", n)
	}
}

func TestSpanStaleRef(t *testing.T) {
	r := NewRecorder(0, 0)
	tk := r.Track("n", "t")
	a := r.StartAt(0, tk, "a", NoSpan)
	r.EndAt(1, a)
	r.EndAt(2, a) // double end: ignored
	if n := r.SpanCount(); n != 1 {
		t.Fatalf("double EndAt recorded twice: %d spans", n)
	}
	// The slot is recycled; the stale ref must not close the new occupant.
	b := r.StartAt(3, tk, "b", NoSpan)
	r.EndAt(4, a)
	if n := r.SpanCount(); n != 1 {
		t.Fatalf("stale ref closed a live span: %d spans", n)
	}
	// Parenting under a stale ref still links to the (ended) span's id.
	c := r.StartAt(5, tk, "c", a)
	r.EndAt(6, c)
	r.EndAt(7, b)
	spans := r.Spans()
	if spans[1].Name != "c" || spans[1].Parent != spans[0].ID {
		t.Errorf("stale-parent span: name=%s parent=%d, want c parented on a(%d)",
			spans[1].Name, spans[1].Parent, spans[0].ID)
	}
}

func TestSpanEviction(t *testing.T) {
	r := NewRecorder(4, 0)
	tk := r.Track("n", "t")
	for i := 0; i < 10; i++ {
		r.RecordAt(sim.Time(i), sim.Time(i+1), tk, "s", NoSpan)
	}
	if n := r.SpanCount(); n != 4 {
		t.Errorf("retained %d spans, want cap 4", n)
	}
	if d := r.Dropped(); d != 6 {
		t.Errorf("dropped = %d, want 6", d)
	}
	spans := r.Spans()
	if spans[0].Start != 6 {
		t.Errorf("oldest retained span starts at %d, want 6 (oldest evicted first)", spans[0].Start)
	}
}

func TestSpanEpochAdvance(t *testing.T) {
	r := NewRecorder(0, 0)
	tk := r.Track("harness", "points")
	// Point 1: env-relative [0, 100].
	a := r.StartAt(0, tk, "p1", NoSpan)
	r.EndAt(100, a)
	r.Advance(150)
	// Point 2 also starts its env at t=0; it must stack after point 1.
	b := r.StartAt(0, tk, "p2", NoSpan)
	r.EndAt(50, b)
	spans := r.Spans()
	if spans[1].Start != 150 || spans[1].End != 200 {
		t.Errorf("second epoch span = [%d,%d], want [150,200]", spans[1].Start, spans[1].End)
	}
	if r.Offset() != 150 {
		t.Errorf("offset = %d, want 150", r.Offset())
	}
}

func TestOpenSpansClosedAtExport(t *testing.T) {
	r := NewRecorder(0, 0)
	tk := r.Track("n", "t")
	open := r.StartAt(5, tk, "open", NoSpan)
	_ = open
	r.RecordAt(10, 90, tk, "done", NoSpan)
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (completed + still-open)", len(spans))
	}
	// The still-open span is appended after completed ones, closed at the
	// latest observed time.
	if spans[1].Name != "open" || spans[1].End != 90 {
		t.Errorf("open span = %s [%d,%d], want open [5,90]", spans[1].Name, spans[1].Start, spans[1].End)
	}
}

func TestInstants(t *testing.T) {
	r := NewRecorder(2, 0)
	tk := r.Track("dev", "wire")
	r.AddInstant(Instant{Time: 1, Track: tk, Name: "tx data", Msg: 7, Wire: 2048})
	r.Advance(100)
	r.AddInstant(Instant{Time: 1, Track: tk, Name: "rx data", Msg: 7, Wire: 2048})
	ins := r.Instants()
	if len(ins) != 2 {
		t.Fatalf("got %d instants, want 2", len(ins))
	}
	if ins[1].Time != 101 {
		t.Errorf("epoch-shifted instant at %d, want 101", ins[1].Time)
	}
	// Capacity applies to instants too.
	r.AddInstant(Instant{Time: 2, Track: tk, Name: "drop", Reason: "fault"})
	if n := r.InstantCount(); n != 2 {
		t.Errorf("instant count = %d, want cap 2", n)
	}
	if r.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", r.Dropped())
	}
}

func TestTracks(t *testing.T) {
	r := NewRecorder(0, 0)
	a := r.Track("node-a", "verbs")
	b := r.Track("node-a", "wire")
	if a == b {
		t.Error("distinct tracks share an id")
	}
	if again := r.Track("node-a", "verbs"); again != a {
		t.Error("Track not idempotent")
	}
	tks := r.Tracks()
	if len(tks) != 2 || tks[a] != [2]string{"node-a", "verbs"} {
		t.Errorf("tracks = %v", tks)
	}
}
