package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Metrics dump exporters: a human-readable text table and a stable JSON
// schema. Both render the same Snapshot, sorted by metric name, so output
// is deterministic for a deterministic run.

// metricsReport is the JSON dump schema.
type metricsReport struct {
	Schema  string           `json:"schema"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// WriteMetricsJSON dumps the registry as JSON ("ibwan-metrics/v1").
func WriteMetricsJSON(w io.Writer, r *Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(metricsReport{Schema: "ibwan-metrics/v1", Metrics: r.Snapshot()})
}

// bound renders a bucket boundary, eliding the int64 sentinels.
func bound(v int64) string {
	switch v {
	case math.MinInt64:
		return "-inf"
	case math.MaxInt64:
		return "inf"
	}
	return fmt.Sprintf("%d", v)
}

// WriteMetricsText dumps the registry as aligned plain text. Histograms
// list only populated buckets, one "[lo,hi):count" cell per bucket.
func WriteMetricsText(w io.Writer, r *Registry) error {
	snaps := r.Snapshot()
	width := 0
	for _, s := range snaps {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range snaps {
		switch s.Kind {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%-9s %-*s %d\n", s.Kind, width, s.Name, s.Value); err != nil {
				return err
			}
		case "histogram":
			if _, err := fmt.Fprintf(w, "%-9s %-*s count=%d sum=%d min=%d max=%d mean=%.1f",
				s.Kind, width, s.Name, s.Count, s.Sum, s.Min, s.Max, s.Mean); err != nil {
				return err
			}
			for _, b := range s.Buckets {
				if _, err := fmt.Fprintf(w, "  [%s,%s):%d", bound(b.Lo), bound(b.Hi), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		case "hires":
			// The log-linear histograms are percentile instruments: the
			// quantile row is the payload, the (many) buckets stay in the
			// JSON dump only.
			if _, err := fmt.Fprintf(w, "%-9s %-*s count=%d sum=%d mean=%.1f p50=%.0f p90=%.0f p99=%.0f p999=%.0f\n",
				s.Kind, width, s.Name, s.Count, s.Sum, s.Mean, s.P50, s.P90, s.P99, s.P999); err != nil {
				return err
			}
		}
	}
	return nil
}
