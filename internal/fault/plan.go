package fault

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
)

// Sub-stream salts: one plan seed feeds independent streams per
// attachment point, so WAN and TCP fault decisions never interleave on a
// shared stream (which would make one layer's traffic perturb the other's
// loss pattern).
const (
	saltWAN uint64 = 0x57414e // "WAN"
	saltTCP uint64 = 0x544350 // "TCP"
)

// Plan is the declarative fault configuration for one simulation
// environment. The harness attaches a validated plan with AttachPlan
// before building the testbed; layers that own an attachment point (the
// wan package for the Longbow link, tcpsim for the socket stack) discover
// it with PlanFromEnv and arm their injectors. The zero value means "no
// faults" and arms nothing, so fault-free runs stay byte-identical to a
// build without this package.
type Plan struct {
	// Seed feeds every injector derived from this plan (via MixSeed).
	// Same plan + same seed -> identical fault decisions, regardless of
	// runner parallelism.
	Seed uint64

	// Link restricts a run-wide plan's WAN levers to the named link on
	// multi-link topologies, in "siteA-siteB" form (either order; the CLI's
	// `-fault link=NAME:...` prefix sets it). Empty arms every WAN link,
	// the historical behavior. Per-link plans (topo.Link.Fault) already
	// target one link and ignore this field.
	Link string

	// WANDown takes the WAN link down permanently from the start.
	WANDown bool
	// WANLoss is an independent per-packet (Bernoulli) loss probability
	// on the WAN link.
	WANLoss float64
	// WANBurst, when non-nil, adds a Gilbert–Elliott burst-loss channel
	// on the WAN link.
	WANBurst *BurstParams
	// WANCorrupt is the per-packet bit-corruption probability on the WAN
	// link (corrupted packets are dropped at the receiver's CRC but
	// counted separately).
	WANCorrupt float64
	// WANFlaps schedules link down/up edges on the WAN link.
	WANFlaps []FlapStep
	// WANBrownouts schedules loss-level changes on the WAN link.
	WANBrownouts []LossStep
	// WANRates schedules rate throttling on the WAN link.
	WANRates []RateStep

	// TCPLoss is an independent per-segment loss probability inside the
	// simulated TCP stack (IPoIB/SDP path).
	TCPLoss float64
}

func probErr(name string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("fault: %s probability %v outside [0, 1]", name, p)
	}
	return nil
}

// Validate checks every lever of the plan: probabilities in [0, 1],
// schedules sorted with non-negative times, rates positive. A plan that
// validates at time zero arms without error.
func (p *Plan) Validate() error {
	if err := probErr("WANLoss", p.WANLoss); err != nil {
		return err
	}
	if err := probErr("WANCorrupt", p.WANCorrupt); err != nil {
		return err
	}
	if err := probErr("TCPLoss", p.TCPLoss); err != nil {
		return err
	}
	if b := p.WANBurst; b != nil {
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"WANBurst.PGoodToBad", b.PGoodToBad},
			{"WANBurst.PBadToGood", b.PBadToGood},
			{"WANBurst.PLossGood", b.PLossGood},
			{"WANBurst.PLossBad", b.PLossBad},
		} {
			if err := probErr(f.name, f.v); err != nil {
				return err
			}
		}
	}
	prev := sim.Time(-1)
	for i, s := range p.WANFlaps {
		if s.At < 0 {
			return fmt.Errorf("fault: flap step %d at negative time %v", i, s.At)
		}
		if s.At < prev {
			return fmt.Errorf("fault: flap step %d at %v out of order (previous %v)", i, s.At, prev)
		}
		prev = s.At
	}
	prev = sim.Time(-1)
	for i, s := range p.WANBrownouts {
		if s.At < 0 {
			return fmt.Errorf("fault: brownout step %d at negative time %v", i, s.At)
		}
		if s.At < prev {
			return fmt.Errorf("fault: brownout step %d at %v out of order (previous %v)", i, s.At, prev)
		}
		if err := probErr(fmt.Sprintf("brownout step %d", i), s.Loss); err != nil {
			return err
		}
		prev = s.At
	}
	prev = sim.Time(-1)
	for i, s := range p.WANRates {
		if s.At < 0 {
			return fmt.Errorf("fault: rate step %d at negative time %v", i, s.At)
		}
		if s.At < prev {
			return fmt.Errorf("fault: rate step %d at %v out of order (previous %v)", i, s.At, prev)
		}
		if s.Rate <= 0 {
			return fmt.Errorf("fault: rate step %d rate %v must be positive", i, s.Rate)
		}
		prev = s.At
	}
	return nil
}

// wanEnabled reports whether any WAN-link lever is armed.
func (p *Plan) wanEnabled() bool {
	return p.WANDown || p.WANLoss > 0 || p.WANBurst != nil || p.WANCorrupt > 0 ||
		len(p.WANFlaps) > 0 || len(p.WANBrownouts) > 0 || len(p.WANRates) > 0
}

// Enabled reports whether the plan arms any fault at all.
func (p *Plan) Enabled() bool { return p.wanEnabled() || p.TCPLoss > 0 }

// MatchesLink reports whether the plan's WAN levers apply to the link
// between endpoints a and b. A plan with no Link restriction matches every
// link; a nil plan matches none.
func (p *Plan) MatchesLink(a, b string) bool {
	if p == nil {
		return false
	}
	return p.Link == "" || p.Link == a+"-"+b || p.Link == b+"-"+a
}

// DownEdges exports the plan's scheduled WAN outage timeline as raw
// health transitions for the fabric's link-health monitor
// (ib.Fabric.MonitorLink): a permanent WANDown is an edge at time zero,
// and each flap step contributes its edge. Levers that draw randomness
// (loss, burst, corruption) have no schedule and are detected reactively.
func (p *Plan) DownEdges() []ib.HealthTransition {
	if p == nil {
		return nil
	}
	var out []ib.HealthTransition
	if p.WANDown {
		out = append(out, ib.HealthTransition{At: 0, Down: true})
	}
	for _, s := range p.WANFlaps {
		out = append(out, ib.HealthTransition{At: s.At, Down: s.Down})
	}
	return out
}

// ShardSafe reports whether the plan may be armed on a partitioned
// (sharded) world. Only the WANDown and WANFlaps levers qualify: both are
// pure functions of simulated time (see Injector.downAt) and draw no
// randomness, so the two directions of a WAN link can consult the shared
// injector from different shards without racing or perturbing the RNG
// stream. Every other lever either draws per-packet randomness (loss,
// burst, corruption) or mutates injector/link state through scheduled
// closures (brownouts, rate throttling, TCP loss), all of which require
// the single-heap event order; topo.Build refuses to partition when such a
// plan is attached.
func (p *Plan) ShardSafe() bool {
	return p == nil || !(p.WANLoss > 0 || p.WANBurst != nil || p.WANCorrupt > 0 ||
		len(p.WANBrownouts) > 0 || len(p.WANRates) > 0 || p.TCPLoss > 0)
}

// AttachPlan validates p and installs it on the environment's fault slot.
// It must run before the testbed is built (wan.NewPair and tcpsim.NewStack
// read the slot at construction time).
func AttachPlan(env *sim.Env, p *Plan) error {
	if p == nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	env.SetFault(p)
	return nil
}

// PlanFromEnv returns the plan attached to env, or nil if none (or if the
// slot holds something else).
func PlanFromEnv(env *sim.Env) *Plan {
	p, _ := env.Fault().(*Plan)
	return p
}

// ArmWAN builds the WAN-link injector for a validated plan and attaches
// it to link, arming the scheduled flap/brownout/rate steps. It returns
// nil — and touches nothing — when no WAN lever is set. Schedule steps at
// or before the current simulated time are applied immediately in order
// (the plan was validated against time zero; arming later than a step's
// time just means that state is already in effect).
func (p *Plan) ArmWAN(env *sim.Env, link *ib.Link) *Injector {
	if p == nil || !p.wanEnabled() {
		return nil
	}
	in := NewInjector(env, MixSeed(p.Seed, saltWAN))
	if p.WANDown {
		in.down = true
	}
	if p.WANLoss > 0 {
		in.Use(Bernoulli{P: p.WANLoss})
	}
	if p.WANBurst != nil {
		in.Use(NewGilbertElliott(*p.WANBurst))
	}
	in.corruptP = p.WANCorrupt
	// The flap schedule is stored, not armed as timers: the injector
	// resolves the down/up state from it at packet time (downAt), so steps
	// in the past are naturally in effect and sharded worlds read it
	// without synchronization.
	in.flaps = p.WANFlaps
	now := env.Now()
	for _, s := range p.WANBrownouts {
		if s.At <= now {
			in.loss = s.Loss
			continue
		}
		level := s.Loss
		env.At(s.At-now, func() { in.loss = level })
	}
	for _, s := range p.WANRates {
		if s.At <= now {
			if err := link.SetRate(s.Rate); err != nil {
				panic(err) // unreachable: plan validated
			}
			continue
		}
		rate := s.Rate
		env.At(s.At-now, func() {
			if err := link.SetRate(rate); err != nil {
				panic(err) // unreachable: plan validated
			}
		})
	}
	in.AttachLink(link)
	return in
}

// ArmTCP builds the TCP-stack injector for a validated plan, or returns
// nil when the plan injects no TCP faults. The stack installs the
// injector's DropWire as its segment hook.
func (p *Plan) ArmTCP(env *sim.Env) *Injector {
	if p == nil || p.TCPLoss <= 0 {
		return nil
	}
	in := NewInjector(env, MixSeed(p.Seed, saltTCP))
	in.Use(Bernoulli{P: p.TCPLoss})
	return in
}
