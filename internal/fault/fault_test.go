package fault

import (
	"testing"

	"repro/internal/sim"
)

// TestRNGDeterminism pins the splitmix64 stream: same seed, same values,
// forever. Changing these constants silently would invalidate every
// recorded faulted experiment.
func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
	// First draw of the seed-0 stream, as splitmix64 defines it.
	if got := NewRNG(0).Uint64(); got != 0xe220a8397b1dcdaf {
		t.Errorf("splitmix64(0) first draw = %#x, want 0xe220a8397b1dcdaf", got)
	}
}

// TestMixSeedIndependence checks that salted sub-streams differ from each
// other and from the base stream.
func TestMixSeedIndependence(t *testing.T) {
	if MixSeed(1, saltWAN) == MixSeed(1, saltTCP) {
		t.Error("WAN and TCP sub-seeds collide for the same base seed")
	}
	if MixSeed(1, saltWAN) == MixSeed(2, saltWAN) {
		t.Error("different base seeds give the same WAN sub-seed")
	}
}

// TestInjectorDeterminism replays the same decision sequence twice and
// requires identical outcomes — the property the cross-parallelism
// byte-identity of the loss-* experiments rests on.
func TestInjectorDeterminism(t *testing.T) {
	run := func() []bool {
		env := sim.NewEnv()
		in := NewInjector(env, 99)
		in.Use(Bernoulli{P: 0.1})
		in.Use(NewGilbertElliott(BurstParams{
			PGoodToBad: 0.05, PBadToGood: 0.3, PLossBad: 0.9,
		}))
		if err := in.SetCorruption(0.01); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 5000)
		for i := range out {
			out[i] = in.DropWire(0, 2048)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop decision %d differs between identical runs", i)
		}
	}
}

// TestBernoulliRate sanity-checks the long-run drop frequency.
func TestBernoulliRate(t *testing.T) {
	env := sim.NewEnv()
	in := NewInjector(env, 7)
	in.Use(Bernoulli{P: 0.2})
	const n = 100000
	drops := 0
	for i := 0; i < n; i++ {
		if in.DropWire(0, 1500) {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.18 || got > 0.22 {
		t.Errorf("Bernoulli(0.2) dropped %.3f of packets", got)
	}
	if int64(drops) != in.Drops() {
		t.Errorf("Drops() = %d, observed %d", in.Drops(), drops)
	}
}

// TestGilbertElliottBursts checks the model actually clusters losses: with
// a near-lossless good state and a lossy bad state, the mean run length of
// consecutive drops must exceed what independent loss at the same average
// rate would produce (~1/(1-p) ≈ 1).
func TestGilbertElliottBursts(t *testing.T) {
	rng := NewRNG(3)
	g := NewGilbertElliott(BurstParams{
		PGoodToBad: 0.01, PBadToGood: 0.2, PLossGood: 0, PLossBad: 1,
	})
	const n = 200000
	drops, runs, inRun := 0, 0, false
	for i := 0; i < n; i++ {
		if g.Drop(rng, 1500) {
			drops++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if drops == 0 || runs == 0 {
		t.Fatalf("no loss produced (drops=%d runs=%d)", drops, runs)
	}
	meanRun := float64(drops) / float64(runs)
	// Mean bad-state dwell is 1/PBadToGood = 5 packets, all lost.
	if meanRun < 2 {
		t.Errorf("mean loss-burst length %.2f; losses are not bursty", meanRun)
	}
}

// TestDownDominates checks a down link drops everything regardless of
// models, and that flipping it back up restores the models' verdicts.
func TestDownDominates(t *testing.T) {
	env := sim.NewEnv()
	in := NewInjector(env, 1)
	in.SetDown(true)
	for i := 0; i < 100; i++ {
		if !in.DropWire(0, 64) {
			t.Fatal("packet survived a down link")
		}
	}
	in.SetDown(false)
	dropped := false
	for i := 0; i < 100; i++ {
		if in.DropWire(0, 64) {
			dropped = true
		}
	}
	if dropped {
		t.Error("model-free injector dropped a packet while up")
	}
}

// TestScheduleValidation exercises every rejection path: past steps,
// out-of-order steps, out-of-range probabilities, non-positive rates. A
// rejected schedule must arm nothing.
func TestScheduleValidation(t *testing.T) {
	env := sim.NewEnv()
	in := NewInjector(env, 1)
	if err := in.ScheduleFlaps([]FlapStep{{At: 2 * sim.Second, Down: true}, {At: sim.Second}}); err == nil {
		t.Error("out-of-order flap schedule accepted")
	}
	if err := in.ScheduleLoss([]LossStep{{At: sim.Second, Loss: 1.5}}); err == nil {
		t.Error("loss level 1.5 accepted")
	}
	if err := in.ScheduleLoss([]LossStep{{At: -sim.Second, Loss: 0.5}}); err == nil {
		t.Error("negative-time loss step accepted")
	}
	if err := in.ScheduleRates(nil, []RateStep{{At: sim.Second, Rate: 0}}); err == nil {
		t.Error("zero rate accepted")
	}
	// Nothing armed: the environment must drain with zero events.
	env.Run()
	if n := env.Executed(); n != 0 {
		t.Errorf("rejected schedules armed %d events", n)
	}
	env.Shutdown()
}

// TestScheduledFlapTakesEffect arms a down/up pair and probes the state
// around the edges.
func TestScheduledFlapTakesEffect(t *testing.T) {
	env := sim.NewEnv()
	in := NewInjector(env, 1)
	err := in.ScheduleFlaps([]FlapStep{
		{At: sim.Millisecond, Down: true},
		{At: 3 * sim.Millisecond, Down: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	var during, after bool
	env.At(2*sim.Millisecond, func() { during = in.Down() })
	env.At(4*sim.Millisecond, func() { after = in.Down() })
	env.Run()
	env.Shutdown()
	if !during {
		t.Error("link not down between the scheduled edges")
	}
	if after {
		t.Error("link still down after the up edge")
	}
}

// TestPlanValidate covers the plan-level validation surface.
func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{WANLoss: -0.1},
		{WANLoss: 1.1},
		{WANCorrupt: 2},
		{TCPLoss: -1},
		{WANBurst: &BurstParams{PGoodToBad: 1.5}},
		{WANFlaps: []FlapStep{{At: -1}}},
		{WANFlaps: []FlapStep{{At: 2}, {At: 1}}},
		{WANBrownouts: []LossStep{{At: 1, Loss: 7}}},
		{WANRates: []RateStep{{At: 1, Rate: -3}}},
	}
	for i, p := range bad {
		p := p
		if err := p.Validate(); err == nil {
			t.Errorf("invalid plan %d accepted", i)
		}
	}
	good := Plan{
		Seed: 9, WANLoss: 0.01, WANCorrupt: 0.001, TCPLoss: 0.02,
		WANBurst:     &BurstParams{PGoodToBad: 0.01, PBadToGood: 0.2, PLossBad: 0.8},
		WANFlaps:     []FlapStep{{At: 1, Down: true}, {At: 2}},
		WANBrownouts: []LossStep{{At: 1, Loss: 0.5}, {At: 2, Loss: 0}},
		WANRates:     []RateStep{{At: 3, Rate: 1}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if !good.Enabled() {
		t.Error("armed plan reports Enabled() == false")
	}
	if (&Plan{}).Enabled() {
		t.Error("zero plan reports Enabled() == true")
	}
}

// TestAttachPlanRejectsInvalid checks AttachPlan refuses a bad plan and
// leaves the environment clean.
func TestAttachPlanRejectsInvalid(t *testing.T) {
	env := sim.NewEnv()
	if err := AttachPlan(env, &Plan{WANLoss: 2}); err == nil {
		t.Fatal("invalid plan attached")
	}
	if PlanFromEnv(env) != nil {
		t.Error("rejected plan still discoverable from env")
	}
	env.Shutdown()
}
