package fault

import (
	"encoding/binary"
	"testing"

	"repro/internal/ib"
	"repro/internal/sim"
)

// decodeSteps turns fuzz bytes into candidate schedules: 9 bytes per step
// (8 of time, 1 of kind/level). Times are folded into ±10 virtual seconds
// so negative, zero, unsorted and duplicate times all occur.
func decodeSteps(data []byte) (flaps []FlapStep, loss []LossStep, rates []RateStep) {
	for i := 0; i+9 <= len(data); i += 9 {
		at := sim.Time(int64(binary.LittleEndian.Uint64(data[i:])) % int64(10*sim.Second))
		k := data[i+8]
		switch k % 3 {
		case 0:
			flaps = append(flaps, FlapStep{At: at, Down: k&4 != 0})
		case 1:
			loss = append(loss, LossStep{At: at, Loss: float64(int8(k)) / 100})
		case 2:
			rates = append(rates, RateStep{At: at, Rate: ib.Rate(int8(k))})
		}
	}
	return
}

// FuzzSchedule feeds arbitrary schedules and probabilities through plan
// validation and, when accepted, arms and runs them to completion. The
// invariants: Validate and AttachPlan agree; an accepted plan arms without
// panicking, never schedules an event in the simulated past, and the
// environment always drains (no deadlock, no runaway timer chain).
func FuzzSchedule(f *testing.F) {
	f.Add(uint64(1), 0.01, 0.001, []byte{})
	// A valid two-edge flap.
	valid := make([]byte, 18)
	binary.LittleEndian.PutUint64(valid[0:], uint64(sim.Millisecond))
	valid[8] = 4 | 0 // kind 0 (flap), down
	binary.LittleEndian.PutUint64(valid[9:], uint64(2*sim.Millisecond))
	valid[17] = 0 // kind 0 (flap), up
	f.Add(uint64(7), 0.0, 0.0, valid)
	// An out-of-order pair (must be rejected).
	bad := make([]byte, 18)
	binary.LittleEndian.PutUint64(bad[0:], uint64(2*sim.Millisecond))
	bad[8] = 0
	binary.LittleEndian.PutUint64(bad[9:], uint64(sim.Millisecond))
	bad[17] = 0
	f.Add(uint64(7), 0.5, 1.5, bad)

	f.Fuzz(func(t *testing.T, seed uint64, wanLoss, tcpLoss float64, data []byte) {
		flaps, loss, rates := decodeSteps(data)
		p := &Plan{
			Seed: seed, WANLoss: wanLoss, TCPLoss: tcpLoss,
			WANFlaps: flaps, WANBrownouts: loss, WANRates: rates,
		}
		verr := p.Validate()
		env := sim.NewEnv()
		defer env.Shutdown()
		aerr := AttachPlan(env, p)
		if (verr == nil) != (aerr == nil) {
			t.Fatalf("Validate err=%v but AttachPlan err=%v", verr, aerr)
		}
		if verr != nil {
			if PlanFromEnv(env) != nil {
				t.Fatal("rejected plan left attached to env")
			}
			return
		}
		// Accepted: arm it on a real link and push packets through while
		// the schedules play out. Any "event in the past" or invalid rate
		// would panic inside; a timer chain that never drains would hang
		// the fuzz worker and be reported as a failure.
		fab := ib.NewFabric(env)
		a, b := fab.AddHCA("a"), fab.AddHCA("b")
		link := fab.Connect(a, b, ib.DDR, ib.DefaultCableDelay)
		fab.Finalize()
		in := p.ArmWAN(env, link)
		if in == nil && p.wanEnabled() {
			t.Fatal("valid WAN plan armed no injector")
		}
		for i := 0; i < 50; i++ {
			d := sim.Time(i) * 200 * sim.Millisecond
			env.At(d, func() {
				if link.DropFn != nil {
					link.DropFn(env.Now(), 1500)
				}
			})
		}
		env.Run()
		if env.Now() < 0 {
			t.Fatalf("simulation ended at negative time %v", env.Now())
		}
	})
}
