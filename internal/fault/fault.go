// Package fault is the deterministic fault-injection engine for the
// simulated stack. It turns the raw ib.Link.DropFn hook (and the analogous
// tcpsim segment hook) into composable, seeded fault models:
//
//   - Bernoulli: independent per-packet loss with probability P.
//   - GilbertElliott: bursty two-state loss (good/bad channel).
//   - corruption: per-packet bit corruption; a corrupted packet fails its
//     CRC at the receiver and is discarded, so its observable effect is a
//     drop, but it is counted separately.
//   - scheduled link flaps (Down/Up steps), loss brownouts, and WAN rate
//     throttling, validated up front like wan.ScheduleDelays.
//
// Determinism: every Injector owns a private splitmix64 stream seeded from
// the fault Plan, and every random decision is drawn in simulation-event
// order from that stream. Nothing depends on host time, map iteration or
// goroutine scheduling, so a faulted experiment is byte-identical across
// repeated runs and across parallel-runner worker counts (each measurement
// point owns its own Env, hence its own Injector and stream).
package fault

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/ib"
	"repro/internal/sim"
)

// RNG is a splitmix64 pseudo-random stream. It is deliberately not
// math/rand: the algorithm is fixed forever (replayable across Go versions)
// and the zero-allocation state is one word.
type RNG struct{ state uint64 }

// NewRNG returns a stream seeded with seed. Distinct seeds give
// uncorrelated streams (splitmix64 is the recommended seeder for exactly
// this purpose).
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// MixSeed derives a sub-stream seed from a base seed and a salt, so one
// plan seed can deterministically feed independent injectors (WAN link,
// TCP stack) without sharing a stream.
func MixSeed(seed, salt uint64) uint64 {
	r := RNG{state: seed ^ (salt * 0x9e3779b97f4a7c15)}
	return r.Uint64()
}

// Model decides the fate of one packet. Drop is called once per packet in
// transmission order; implementations may keep state (burst models) but
// must draw randomness only from the supplied stream.
type Model interface {
	Drop(rng *RNG, wireBytes int) bool
}

// Bernoulli drops each packet independently with probability P.
type Bernoulli struct{ P float64 }

// Drop implements Model.
func (b Bernoulli) Drop(rng *RNG, _ int) bool {
	return b.P > 0 && rng.Float64() < b.P
}

// BurstParams configures a Gilbert–Elliott channel: per-packet transition
// probabilities between the good and bad states, and the loss probability
// inside each state. Typical WAN burst loss uses PLossGood ~ 0 and
// PLossBad near 1, with PGoodToBad small and PBadToGood setting the mean
// burst length (1/PBadToGood packets).
type BurstParams struct {
	PGoodToBad float64
	PBadToGood float64
	PLossGood  float64
	PLossBad   float64
}

// GilbertElliott is the stateful burst-loss model built from BurstParams.
// It starts in the good state.
type GilbertElliott struct {
	BurstParams
	bad bool
}

// NewGilbertElliott returns a burst model in the good state.
func NewGilbertElliott(p BurstParams) *GilbertElliott {
	return &GilbertElliott{BurstParams: p}
}

// Drop implements Model. Each packet first resolves the state transition,
// then draws the loss for the resulting state — two draws per packet,
// always, so the stream position is independent of the outcome.
func (g *GilbertElliott) Drop(rng *RNG, _ int) bool {
	if g.bad {
		if rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else {
		if rng.Float64() < g.PGoodToBad {
			g.bad = true
		}
	}
	p := g.PLossGood
	if g.bad {
		p = g.PLossBad
	}
	return p > 0 && rng.Float64() < p
}

// FlapStep is one edge of a scheduled link flap: at time At the link goes
// down (Down=true) or comes back up.
type FlapStep struct {
	At   sim.Time
	Down bool
}

// LossStep sets the scheduled brownout loss level at time At. Loss is a
// probability in [0, 1]; 0 ends the brownout.
type LossStep struct {
	At   sim.Time
	Loss float64
}

// RateStep throttles a link to Rate at time At (WAN rate throttling, e.g.
// a congested provider circuit).
type RateStep struct {
	At   sim.Time
	Rate ib.Rate
}

// Injector is the per-environment fault state for one attachment point
// (one link, or one TCP stack). All decisions flow through DropWire in
// simulation-event order.
type Injector struct {
	env    *sim.Env
	rng    *RNG
	models []Model
	// corruptP is the bit-corruption probability, applied after the loss
	// models so clean packets can still be corrupted.
	corruptP float64
	// down is the base down/up state (the WANDown lever, SetDown). flaps,
	// when non-empty, override it from the first step's time onward: the
	// link state is then a pure function of simulated time (see downAt),
	// never a mutation, which is what lets both directions of a WAN link —
	// dispatched on different shards of a partitioned world — consult the
	// injector concurrently. loss is the brownout lever and still mutates
	// through scheduled closures, which is why brownout plans are not
	// ShardSafe.
	down  bool
	flaps []FlapStep
	loss  float64

	drops    atomic.Int64 // packets dropped (loss models, brownouts, down link)
	corrupts atomic.Int64 // packets corrupted (discarded at the receiver's CRC)
}

// NewInjector creates an injector drawing from its own seeded stream.
func NewInjector(env *sim.Env, seed uint64) *Injector {
	return &Injector{env: env, rng: NewRNG(seed)}
}

// Use appends a loss model; models are consulted in the order added.
func (in *Injector) Use(m Model) { in.models = append(in.models, m) }

// SetCorruption sets the per-packet bit-corruption probability.
func (in *Injector) SetCorruption(p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("fault: corruption probability %v outside [0, 1]", p)
	}
	in.corruptP = p
	return nil
}

// SetDown forces the base down/up state directly (tests and the WANDown
// plan lever; scheduled flaps use ScheduleFlaps). With a flap schedule
// armed, the base state only applies before the first step.
func (in *Injector) SetDown(down bool) { in.down = down }

// Down reports whether the attachment point is down at the current
// simulated time.
func (in *Injector) Down() bool { return in.downAt(in.env.Now()) }

// downAt reports the link's down/up state at time now: the Down value of
// the last flap step with At <= now, or the base state before the first
// step. The boundary matches the old timer encoding (a step's closure armed
// at construction carried an earlier sequence number than any packet event
// created afterwards, so a packet sent at exactly the step time already saw
// the new state).
func (in *Injector) downAt(now sim.Time) bool {
	i := sort.Search(len(in.flaps), func(i int) bool { return in.flaps[i].At > now })
	if i == 0 {
		return in.down
	}
	return in.flaps[i-1].Down
}

// Drops returns the number of packets dropped so far.
func (in *Injector) Drops() int64 { return in.drops.Load() }

// Corrupts returns the number of packets corrupted so far.
func (in *Injector) Corrupts() int64 { return in.corrupts.Load() }

// DropWire decides the fate of one packet of wireBytes on the wire at
// simulated time now. It is the func installed into ib.Link.DropFn (the
// tcpsim segment hook wraps it with the stack's clock). The down/flap
// check draws no randomness and reads only time-pure state, and the drop
// counters are atomic, so down/flap-only injectors (Plan.ShardSafe) are
// safe to consult from both shards sharing a WAN link; every other lever
// advances the private RNG stream and must stay single-shard.
func (in *Injector) DropWire(now sim.Time, wireBytes int) bool {
	if in.downAt(now) {
		in.drops.Add(1)
		return true
	}
	if in.loss > 0 && in.rng.Float64() < in.loss {
		in.drops.Add(1)
		return true
	}
	for _, m := range in.models {
		if m.Drop(in.rng, wireBytes) {
			in.drops.Add(1)
			return true
		}
	}
	if in.corruptP > 0 && in.rng.Float64() < in.corruptP {
		in.corrupts.Add(1)
		return true
	}
	return false
}

// AttachLink installs the injector as the link's fault hook. Both
// directions of the link share this injector (and its stream).
func (in *Injector) AttachLink(l *ib.Link) { l.DropFn = in.DropWire }

// ScheduleFlaps validates the whole flap schedule and then arms it by
// appending to the injector's stored schedule (the state is computed from
// the schedule at packet time, not mutated by timers). Steps must be
// sorted by time, not in the simulated past, and not before any step
// already armed; on any violation nothing is armed and the error describes
// the offending step.
func (in *Injector) ScheduleFlaps(steps []FlapStep) error {
	now := in.env.Now()
	prev := sim.Time(-1)
	if n := len(in.flaps); n > 0 {
		prev = in.flaps[n-1].At
	}
	for i, s := range steps {
		if s.At < now {
			return fmt.Errorf("fault: flap step %d at %v is in the past (now %v)", i, s.At, now)
		}
		if s.At < prev {
			return fmt.Errorf("fault: flap step %d at %v out of order (previous %v)", i, s.At, prev)
		}
		prev = s.At
	}
	in.flaps = append(in.flaps, steps...)
	return nil
}

// ScheduleLoss validates and arms a brownout schedule: at each step the
// scheduled loss level changes to Loss.
func (in *Injector) ScheduleLoss(steps []LossStep) error {
	now := in.env.Now()
	prev := sim.Time(-1)
	for i, s := range steps {
		if s.At < now {
			return fmt.Errorf("fault: loss step %d at %v is in the past (now %v)", i, s.At, now)
		}
		if s.At < prev {
			return fmt.Errorf("fault: loss step %d at %v out of order (previous %v)", i, s.At, prev)
		}
		if s.Loss < 0 || s.Loss > 1 {
			return fmt.Errorf("fault: loss step %d level %v outside [0, 1]", i, s.Loss)
		}
		prev = s.At
	}
	for _, s := range steps {
		level := s.Loss
		in.env.At(s.At-now, func() { in.loss = level })
	}
	return nil
}

// ScheduleRates validates and arms a rate-throttling schedule on l.
func (in *Injector) ScheduleRates(l *ib.Link, steps []RateStep) error {
	now := in.env.Now()
	prev := sim.Time(-1)
	for i, s := range steps {
		if s.At < now {
			return fmt.Errorf("fault: rate step %d at %v is in the past (now %v)", i, s.At, now)
		}
		if s.At < prev {
			return fmt.Errorf("fault: rate step %d at %v out of order (previous %v)", i, s.At, prev)
		}
		if s.Rate <= 0 {
			return fmt.Errorf("fault: rate step %d rate %v must be positive", i, s.Rate)
		}
		prev = s.At
	}
	for _, s := range steps {
		rate := s.Rate
		in.env.At(s.At-now, func() {
			if err := l.SetRate(rate); err != nil {
				panic(err) // unreachable: rate validated above
			}
		})
	}
	return nil
}
