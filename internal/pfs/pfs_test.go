package pfs

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// testbed builds a client in cluster A and oss object servers in cluster B.
func testbed(oss int, delay sim.Time) (*sim.Env, *cluster.Node, []*cluster.Node) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: oss, Delay: delay})
	return env, tb.A[0], tb.B
}

func TestStripeMapping(t *testing.T) {
	env, client, servers := testbed(4, 0)
	_ = env
	_ = client
	fs := New(servers, 1<<20)
	cases := []struct {
		off    int64
		oss    int
		ossOff int64
		left   int64
	}{
		{0, 0, 0, 1 << 20},
		{1 << 20, 1, 0, 1 << 20},
		{4 << 20, 0, 1 << 20, 1 << 20},
		{(4 << 20) + 100, 0, (1 << 20) + 100, (1 << 20) - 100},
		{5<<20 + 7, 1, 1<<20 + 7, 1<<20 - 7},
	}
	for _, c := range cases {
		oss, ossOff, left := fs.stripeOf(c.off)
		if oss != c.oss || ossOff != c.ossOff || left != c.left {
			t.Errorf("stripeOf(%d) = (%d,%d,%d), want (%d,%d,%d)",
				c.off, oss, ossOff, left, c.oss, c.ossOff, c.left)
		}
	}
}

func TestReadWholeFile(t *testing.T) {
	env, client, servers := testbed(3, sim.Micros(100))
	fs := New(servers, 256<<10)
	fs.AddSyntheticFile("f", 10<<20)
	cl := fs.Mount(client)
	var got int
	env.Go("t", func(p *sim.Proc) {
		n, err := cl.Read(p, "f", 0, 10<<20)
		if err != nil {
			t.Errorf("Read: %v", err)
		}
		got = n
		env.Stop()
	})
	env.Run()
	env.Shutdown()
	if got != 10<<20 {
		t.Errorf("read %d bytes, want %d", got, 10<<20)
	}
	// All three servers must have participated.
	for i, srv := range fs.Servers() {
		if srv.Ops() == 0 {
			t.Errorf("server %d served no RPCs", i)
		}
	}
}

func TestReadBeyondEOF(t *testing.T) {
	env, client, servers := testbed(2, 0)
	fs := New(servers, 1<<20)
	fs.AddSyntheticFile("f", 3<<20)
	cl := fs.Mount(client)
	env.Go("t", func(p *sim.Proc) {
		n, err := cl.Read(p, "f", 2<<20, 5<<20)
		if err != nil || n != 1<<20 {
			t.Errorf("short read = %d, %v; want %d", n, err, 1<<20)
		}
		if _, err := cl.Read(p, "missing", 0, 10); err == nil {
			t.Error("read of missing file succeeded")
		}
		env.Stop()
	})
	env.Run()
	env.Shutdown()
}

func TestWriteAccounting(t *testing.T) {
	env, client, servers := testbed(2, sim.Micros(10))
	fs := New(servers, 1<<20)
	fs.AddSyntheticFile("f", 8<<20)
	cl := fs.Mount(client)
	env.Go("t", func(p *sim.Proc) {
		n, err := cl.Write(p, "f", 512<<10, 3<<20)
		if err != nil || n != 3<<20 {
			t.Errorf("Write = %d, %v", n, err)
		}
		env.Stop()
	})
	env.Run()
	env.Shutdown()
}

func TestStripingRecoversWANBandwidth(t *testing.T) {
	// The future-work claim: at 1 ms delay a single RDMA mount is
	// window-limited; striping over 4 object servers multiplies the
	// in-flight data and recovers aggregate bandwidth.
	measure := func(oss int) float64 {
		env, client, servers := testbed(oss, sim.Micros(1000))
		defer env.Shutdown()
		fs := New(servers, DefaultStripeSize)
		fs.AddSyntheticFile("f", 64<<20)
		cl := fs.Mount(client)
		return Throughput(env, cl, "f", 8, 1<<20)
	}
	one := measure(1)
	four := measure(4)
	if four < 2.5*one {
		t.Errorf("striping gain at 1ms: 1 OSS %.1f -> 4 OSS %.1f MB/s, want ~4x", one, four)
	}
}
