// Package pfs implements a striped parallel file system over the
// RPC-over-RDMA transport — the paper's stated future work ("we further
// plan to study the benefits of IB range extension capabilities in other
// contexts including parallel file-systems"), in the spirit of the Lustre
// deployments its related work evaluates over IB WAN.
//
// A file is striped round-robin across object storage servers (OSSes).
// Client reads and writes fan out to all servers holding affected stripes
// and proceed in parallel, so the aggregate transfer is bounded by the sum
// of the per-connection limits rather than a single RC window — which is
// exactly what a WAN link with a large bandwidth-delay product needs.
package pfs

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/nfs"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// DefaultStripeSize is the striping unit (1 MB, the Lustre default).
const DefaultStripeSize = 1 << 20

// FileSystem is the parallel file system: metadata plus the OSS set.
type FileSystem struct {
	stripeSize int64
	servers    []*nfs.Server
	files      map[string][]uint64 // per-OSS object handles, by file name
	sizes      map[string]int64
}

// New creates a file system striped across one object server per given
// node with the given stripe size (0 selects DefaultStripeSize). The
// object servers speak the same NFS-style protocol over RPC/RDMA.
func New(ossNodes []*cluster.Node, stripeSize int64) *FileSystem {
	if len(ossNodes) == 0 {
		panic("pfs: need at least one object server")
	}
	if stripeSize == 0 {
		stripeSize = DefaultStripeSize
	}
	fs := &FileSystem{
		stripeSize: stripeSize,
		files:      make(map[string][]uint64),
		sizes:      make(map[string]int64),
	}
	for _, n := range ossNodes {
		fs.servers = append(fs.servers, nfs.NewServer(n, nfs.RDMATouchNanos))
	}
	return fs
}

// StripeCount returns the number of object servers.
func (fs *FileSystem) StripeCount() int { return len(fs.servers) }

// Servers exposes the underlying object servers (for stats in tests).
func (fs *FileSystem) Servers() []*nfs.Server { return fs.servers }

// AddSyntheticFile creates a synthetic file of the given size, striped
// across all servers.
func (fs *FileSystem) AddSyntheticFile(name string, size int64) {
	if _, dup := fs.files[name]; dup {
		panic(fmt.Sprintf("pfs: file %q exists", name))
	}
	n := int64(len(fs.servers))
	stripes := (size + fs.stripeSize - 1) / fs.stripeSize
	perOSS := make([]int64, n)
	for s := int64(0); s < stripes; s++ {
		length := fs.stripeSize
		if (s+1)*fs.stripeSize > size {
			length = size - s*fs.stripeSize
		}
		perOSS[s%n] += length
	}
	handles := make([]uint64, n)
	for i, srv := range fs.servers {
		f := srv.AddSyntheticFile(name, perOSS[i])
		handles[i] = f.FH
	}
	fs.files[name] = handles
	fs.sizes[name] = size
}

// Client is a parallel-FS mount: one RPC/RDMA connection per object server.
type Client struct {
	fs      *FileSystem
	clients []*nfs.Client
}

// Mount connects a client node to every object server.
func (fs *FileSystem) Mount(clientNode *cluster.Node) *Client {
	c := &Client{fs: fs}
	for _, srv := range fs.servers {
		rs := rpc.ServeRDMA(srv.Node(), nfs.DefaultThreads, srv.Handler())
		c.clients = append(c.clients, nfs.NewClientOn(clientNode, rpc.NewRDMAClient(clientNode, rs)))
	}
	return c
}

// stripeOf maps a file offset to (server index, per-OSS object offset).
func (fs *FileSystem) stripeOf(off int64) (oss int, ossOff int64, left int64) {
	n := int64(len(fs.servers))
	stripe := off / fs.stripeSize
	within := off % fs.stripeSize
	oss = int(stripe % n)
	// Object offset: complete own-stripes before this one, plus position
	// within the current stripe.
	ossOff = stripe/n*fs.stripeSize + within
	left = fs.stripeSize - within
	return
}

// Read reads count synthetic bytes at off, fanning the stripe segments out
// to their servers in parallel, and returns the byte count.
func (c *Client) Read(p *sim.Proc, name string, off int64, count int) (int, error) {
	return c.transfer(p, name, off, count, false)
}

// Write writes count synthetic bytes at off across the stripes.
func (c *Client) Write(p *sim.Proc, name string, off int64, count int) (int, error) {
	return c.transfer(p, name, off, count, true)
}

type segment struct {
	oss    int
	ossOff int64
	length int
}

func (c *Client) transfer(p *sim.Proc, name string, off int64, count int, write bool) (int, error) {
	handles, ok := c.fs.files[name]
	if !ok {
		return 0, nfs.ErrNotFound
	}
	if size := c.fs.sizes[name]; off+int64(count) > size {
		count = int(size - off)
	}
	if count <= 0 {
		return 0, nil
	}
	// Split the range into per-stripe segments.
	var segs []segment
	for remaining := count; remaining > 0; {
		oss, ossOff, left := c.fs.stripeOf(off)
		n := remaining
		if int64(n) > left {
			n = int(left)
		}
		segs = append(segs, segment{oss: oss, ossOff: ossOff, length: n})
		off += int64(n)
		remaining -= n
	}
	// Fan out: one worker per segment, all in flight concurrently.
	env := p.Env()
	done := env.NewEvent()
	left := len(segs)
	total := 0
	var firstErr error
	for _, sg := range segs {
		sg := sg
		env.Go("pfs-io", func(pw *sim.Proc) {
			var n int
			var err error
			if write {
				n, err = c.clients[sg.oss].Write(pw, handles[sg.oss], sg.ossOff, nil, sg.length)
			} else {
				n, err = c.clients[sg.oss].Read(pw, handles[sg.oss], sg.ossOff, sg.length, nil)
			}
			total += n
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if left--; left == 0 {
				done.Trigger(nil)
			}
		})
	}
	p.Wait(done)
	return total, firstErr
}

// Throughput measures sequential read throughput of the whole named file
// with the given number of client threads (MillionBytes/s), IOzone-style.
func Throughput(env *sim.Env, c *Client, name string, threads, recordSize int) float64 {
	size := c.fs.sizes[name]
	if recordSize == 0 {
		recordSize = 1 << 20
	}
	var elapsed sim.Time
	env.Go("pfs-bench", func(p *sim.Proc) {
		start := p.Now()
		done := env.NewEvent()
		left := threads
		records := int((size + int64(recordSize) - 1) / int64(recordSize))
		for i := 0; i < threads; i++ {
			i := i
			env.Go("pfs-thread", func(pt *sim.Proc) {
				// Record-interleaved assignment (thread i takes records
				// i, i+threads, ...): consecutive records land on
				// different object servers, so concurrent threads spread
				// across the stripe set instead of marching on one
				// server in lockstep.
				for rec := i; rec < records; rec += threads {
					off := int64(rec) * int64(recordSize)
					n := recordSize
					if off+int64(n) > size {
						n = int(size - off)
					}
					if _, err := c.Read(pt, name, off, n); err != nil {
						panic(err)
					}
				}
				if left--; left == 0 {
					done.Trigger(nil)
				}
			})
		}
		p.Wait(done)
		elapsed = p.Now() - start
		env.Stop()
	})
	env.Run()
	return float64(size) / elapsed.Seconds() / 1e6
}
