package ib_test

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// deadLinkWorld builds two HCAs joined by a single link whose injector is
// permanently down, with an RC pair across it.
func deadLinkWorld(t *testing.T, cfg ib.QPConfig) (*sim.Env, *ib.QP, *ib.QP) {
	t.Helper()
	env := sim.NewEnv()
	f := ib.NewFabric(env)
	a, b := f.AddHCA("a"), f.AddHCA("b")
	link := f.Connect(a, b, ib.DDR, ib.DefaultCableDelay)
	f.Finalize()
	in := fault.NewInjector(env, 1)
	in.SetDown(true)
	in.AttachLink(link)
	qa, qb := ib.CreateRCPair(a, b, nil, nil, cfg)
	return env, qa, qb
}

// TestRCDeadLinkRetryExceeded is the regression test for the infinite
// retransmission bug: before the retry budget existed, a permanently dead
// link made the RC retransmit timer re-arm forever and the simulation
// never drained. Now the send must complete with RETRY_EXCEEDED after
// RetryLimit retransmissions, and the event count must stay bounded.
func TestRCDeadLinkRetryExceeded(t *testing.T) {
	env, qa, _ := deadLinkWorld(t, ib.QPConfig{RetryLimit: 3, RetryTimeout: sim.Millisecond})
	var got ib.Completion
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: 4096})
		got = qa.CQ().Poll(p)
		env.Stop()
	})
	env.Run()
	env.Shutdown()
	if got.Status != ib.StatusRetryExceeded {
		t.Fatalf("completion status = %v, want RETRY_EXCEEDED", got.Status)
	}
	if !qa.Errored() {
		t.Error("QP not in error state after retry exhaustion")
	}
	// 3 retries of one message cannot take more than a handful of timer
	// and packet events; an unbounded count means the timer re-armed past
	// the budget.
	if n := env.Executed(); n > 200 {
		t.Errorf("executed %d events for 3 retries; retransmission did not stop", n)
	}
}

// TestRCDeadLinkFlushesInflight checks that the work queued behind the
// doomed message drains with FLUSHED rather than hanging or retrying.
func TestRCDeadLinkFlushesInflight(t *testing.T) {
	env, qa, _ := deadLinkWorld(t, ib.QPConfig{RetryLimit: 2, RetryTimeout: sim.Millisecond})
	const posts = 4
	var statuses []ib.Status
	env.Go("send", func(p *sim.Proc) {
		for i := 0; i < posts; i++ {
			qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: 1024})
		}
		for i := 0; i < posts; i++ {
			statuses = append(statuses, qa.CQ().Poll(p).Status)
		}
		env.Stop()
	})
	env.Run()
	env.Shutdown()
	if len(statuses) != posts {
		t.Fatalf("got %d completions, want %d", len(statuses), posts)
	}
	if statuses[0] != ib.StatusRetryExceeded {
		t.Errorf("first completion %v, want RETRY_EXCEEDED", statuses[0])
	}
	for i, st := range statuses[1:] {
		if st != ib.StatusFlushed {
			t.Errorf("completion %d = %v, want FLUSHED", i+1, st)
		}
	}
}

// TestDropAccountingAgreement pushes lossy traffic across one link and
// checks that the three independent drop ledgers agree exactly:
// Link.Drops(), the ib.link.drops telemetry counter, and the tracer's
// count of "drop" events.
func TestDropAccountingAgreement(t *testing.T) {
	env := sim.NewEnv()
	reg := telemetry.NewRegistry()
	telemetry.Attach(env, &telemetry.Telemetry{Metrics: reg})
	f := ib.NewFabric(env)
	var ct ib.CountingTracer
	f.SetTracer(ct.Hook())
	a, b := f.AddHCA("a"), f.AddHCA("b")
	link := f.Connect(a, b, ib.DDR, ib.DefaultCableDelay)
	f.Finalize()

	in := fault.NewInjector(env, 42)
	in.Use(fault.Bernoulli{P: 0.05})
	in.AttachLink(link)

	qa, qb := ib.CreateRCPair(a, b, nil, nil, ib.QPConfig{RetryLimit: 50, RetryTimeout: sim.Millisecond})
	const msgs = 200
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			qb.PostRecv(ib.RecvWR{})
		}
		for i := 0; i < msgs; i++ {
			qb.CQ().Poll(p)
		}
	})
	env.Go("send", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: 2048})
		}
		for i := 0; i < msgs; i++ {
			qa.CQ().Poll(p)
		}
		env.Stop()
	})
	env.Run()
	env.Shutdown()

	drops := link.Drops()
	if drops == 0 {
		t.Fatal("no drops at 5% loss over 200 messages; injector not armed?")
	}
	if got := reg.Counter("ib.link.drops").Value(); got != drops {
		t.Errorf("telemetry ib.link.drops = %d, Link.Drops() = %d", got, drops)
	}
	if ct.Drops != drops {
		t.Errorf("tracer drop events = %d, Link.Drops() = %d", ct.Drops, drops)
	}
	if in.Drops() != drops {
		t.Errorf("injector Drops() = %d, Link.Drops() = %d", in.Drops(), drops)
	}
}

// TestThreeLedgerDropAccounting drives all three loss mechanisms in one
// run — injected Bernoulli drops on the narrow hop, bounded-queue overflow
// on the same hop (DDR arrivals against an SDR drain), and
// unreachable-route drops once the only path is swept away — and checks
// that the three ledgers are disjoint and sum exactly to the tracer's
// total count of dropped packets.
func TestThreeLedgerDropAccounting(t *testing.T) {
	env := sim.NewEnv()
	reg := telemetry.NewRegistry()
	telemetry.Attach(env, &telemetry.Telemetry{Metrics: reg})
	f := ib.NewFabric(env)
	var ct ib.CountingTracer
	f.SetTracer(ct.Hook())
	a, b := f.AddHCA("a"), f.AddHCA("b")
	s1 := f.AddSwitch("s1", ib.SwitchDelay)
	s2 := f.AddSwitch("s2", ib.SwitchDelay)
	f.Connect(a, s1, ib.DDR, ib.DefaultCableDelay)
	mid := f.Connect(s1, s2, ib.SDR, 50*sim.Microsecond)
	f.Connect(s2, b, ib.DDR, ib.DefaultCableDelay)
	f.Finalize()
	if err := mid.ConfigureQueue(ib.QueueConfig{QueueBytes: 16 << 10}); err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(env, 42)
	in.Use(fault.Bernoulli{P: 0.05})
	in.AttachLink(mid)
	// The only path dies at 20ms, after the burst has drained; reactive
	// detection is off so the verdict comes from the schedule alone.
	f.MonitorLink(mid, "s1-s2", []ib.HealthTransition{{At: 20 * sim.Millisecond, Down: true}})
	if err := f.EnableFailover(ib.HealthConfig{DebounceDown: 250 * sim.Microsecond, TimeoutThreshold: -1}); err != nil {
		t.Fatal(err)
	}
	// A wide-open send window: 64 in-flight 2 KB messages against a 16 KB
	// bound on the narrow hop guarantees tail drops alongside the
	// Bernoulli losses.
	qa, qb := ib.CreateRCPair(a, b, nil, nil, ib.QPConfig{
		RetryLimit: 100, RetryTimeout: 200 * sim.Microsecond, MaxInflight: 64,
	})
	const msgs = 100
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			qb.PostRecv(ib.RecvWR{})
		}
		for i := 0; i < msgs; i++ {
			qb.CQ().Poll(p)
		}
	})
	var tail ib.Status
	env.Go("send", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: 2048})
		}
		for i := 0; i < msgs; i++ {
			qa.CQ().Poll(p)
		}
		// Past the sweep the path is gone: this send must fail through the
		// unreachable ledger, not hang.
		p.Sleep(25 * sim.Millisecond)
		qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: 2048})
		tail = qa.CQ().Poll(p).Status
		env.Stop()
	})
	env.Run()
	env.Shutdown()

	inj, ovf, unr := mid.Drops(), mid.OverflowDrops(), f.UnreachableDrops()
	if inj == 0 || ovf == 0 || unr == 0 {
		t.Fatalf("want every ledger driven: injected=%d overflow=%d unreachable=%d", inj, ovf, unr)
	}
	if tail == ib.StatusOK {
		t.Error("post-sweep send completed OK; want an error status via the unreachable drop")
	}
	if total := inj + ovf + unr; total != ct.Drops {
		t.Errorf("ledgers sum to %d (injected=%d overflow=%d unreachable=%d), tracer counted %d drops",
			total, inj, ovf, unr, ct.Drops)
	}
	if got := reg.Counter("ib.link.drops").Value(); got != inj {
		t.Errorf("telemetry ib.link.drops = %d, want %d", got, inj)
	}
	if got := reg.Counter("wan.link.overflow.drops").Value(); got != ovf {
		t.Errorf("telemetry wan.link.overflow.drops = %d, want %d", got, ovf)
	}
	if got := reg.Counter("ib.route.unreachable.drops").Value(); got != unr {
		t.Errorf("telemetry ib.route.unreachable.drops = %d, want %d", got, unr)
	}
}
