package ib

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/sim"
)

// This file is the fabric's self-healing layer: per-WAN-link health
// monitoring and subnet re-sweeps (new routing epochs) that route around
// links the monitor declares dead.
//
// Health is driven entirely in simulated time, from two signal sources:
//
//   - Scheduled edges. The fault layer's WANDown/WANFlaps levers are a
//     time-pure outage schedule; the monitor debounces that schedule into a
//     verdict timeline at EnableFailover time and arms one routing-epoch
//     swap per verdict edge. Because every swap is an ordinary simulation
//     event armed before traffic starts, classic and sharded runs see the
//     identical epoch at the identical virtual time.
//
//   - Reactive detection (classic single-heap path only). Consecutive RC
//     retransmission timeouts attributed to a monitored link — by walking
//     the current route of the timed-out QP — mark the link dead once they
//     reach HealthConfig.TimeoutThreshold. This covers faults with no
//     schedule (e.g. total Bernoulli loss); such fault plans are never
//     shard-safe, so the sharded scheduler never needs this path, and for
//     links that do carry a schedule the schedule stays authoritative.
//
// Re-sweeps never add links or change delays — a reroute only lengthens
// paths — so every per-channel lookahead bound registered at build time
// remains a valid lower bound across epochs. EnableFailover asserts this
// for each monitored cross-shard link; topologies whose fault plans are
// not time-pure are kept on the classic path by the topology compiler
// (topo.shardEligible) rather than monitored optimistically.

// HealthTransition is one raw edge of a link's scheduled outage timeline,
// in absolute simulated time. Links start up; edges toggle the raw state.
type HealthTransition struct {
	At   sim.Time
	Down bool
}

// HealthConfig tunes the fabric's link-health monitor.
type HealthConfig struct {
	// DebounceDown (DebounceUp) is how long the raw signal must hold down
	// (up) before the verdict flips; flaps shorter than the debounce are
	// suppressed entirely. Zero selects the default; negative is an error.
	DebounceDown sim.Time
	DebounceUp   sim.Time
	// TimeoutThreshold is the number of consecutive RC retransmission
	// timeouts attributed to a monitored link before reactive detection
	// declares it down. Zero selects DefaultTimeoutThreshold; negative
	// disables reactive detection. Reactive detection is automatically
	// disabled on sharded fabrics (see package comment above).
	TimeoutThreshold int
}

// Default health-monitor parameters.
const (
	DefaultDebounceDown     = 250 * sim.Microsecond
	DefaultDebounceUp       = 1 * sim.Millisecond
	DefaultTimeoutThreshold = 3
)

// verdictEdge is one debounced health transition. rawAt is the raw edge
// that started the debounce window; at - rawAt is the detection latency
// recorded in the failover-time histogram.
type verdictEdge struct {
	at    sim.Time
	down  bool
	rawAt sim.Time
}

// monitoredLink is the health state of one WAN link.
type monitoredLink struct {
	link *Link
	name string
	raw  []HealthTransition
	// edges is the debounced verdict timeline (computed at EnableFailover,
	// sorted by time, strictly increasing). Reactive detection appends to
	// it; scheduled timelines are immutable once armed.
	edges     []verdictEdge
	scheduled bool // true when the raw timeline is non-empty: schedule is authoritative

	// Reactive streak (classic path only — never touched on sharded runs).
	timeouts int
	streakAt sim.Time // time of the first timeout in the current streak
	down     bool     // reactive verdict latch
}

// downAt reports the link's verdict at time t: the state of the last
// verdict edge at or before t (links start up).
func (ml *monitoredLink) downAt(t sim.Time) bool {
	i := sort.Search(len(ml.edges), func(i int) bool { return ml.edges[i].at > t })
	if i == 0 {
		return false
	}
	return ml.edges[i-1].down
}

// edgeAt returns the verdict edge firing exactly at t, if any.
func (ml *monitoredLink) edgeAt(t sim.Time) *verdictEdge {
	i := sort.Search(len(ml.edges), func(i int) bool { return ml.edges[i].at >= t })
	if i < len(ml.edges) && ml.edges[i].at == t {
		return &ml.edges[i]
	}
	return nil
}

// healthState hangs off the fabric once MonitorLink has been called.
type healthState struct {
	cfg      HealthConfig
	enabled  bool
	reactive bool
	links    []*monitoredLink
	byLink   map[*Link]*monitoredLink
	// suspects counts links with a nonzero reactive timeout streak, so the
	// per-ack noteSuccess hook is one integer test in the common case.
	suspects    int
	transitions atomic.Int64
}

// MonitorLink registers a WAN link with the health monitor. schedule is
// the link's raw outage timeline in absolute simulated time (typically
// fault.Plan.DownEdges); a nil schedule registers the link for reactive
// detection only. Call before EnableFailover.
func (f *Fabric) MonitorLink(l *Link, name string, schedule []HealthTransition) {
	if f.health == nil {
		f.health = &healthState{byLink: make(map[*Link]*monitoredLink)}
	}
	ml := &monitoredLink{link: l, name: name, raw: schedule}
	f.health.links = append(f.health.links, ml)
	f.health.byLink[l] = ml
}

// EnableFailover arms the health monitor: it debounces every monitored
// link's outage schedule into a verdict timeline and schedules one routing
// re-sweep (a new epoch) per verdict edge. On sharded fabrics each shard
// re-sweeps its own devices in an event at the same virtual time, so the
// table swap is equivalent to a swap at a window barrier and classic and
// sharded runs stay byte-identical; reactive detection is disabled there.
// Call after the topology is final (Finalize) and before traffic starts.
func (f *Fabric) EnableFailover(cfg HealthConfig) error {
	h := f.health
	if h == nil || len(h.links) == 0 {
		return nil
	}
	if cfg.DebounceDown < 0 || cfg.DebounceUp < 0 {
		return fmt.Errorf("ib: negative health debounce %v/%v", cfg.DebounceDown, cfg.DebounceUp)
	}
	if cfg.DebounceDown == 0 {
		cfg.DebounceDown = DefaultDebounceDown
	}
	if cfg.DebounceUp == 0 {
		cfg.DebounceUp = DefaultDebounceUp
	}
	if cfg.TimeoutThreshold == 0 {
		cfg.TimeoutThreshold = DefaultTimeoutThreshold
	}
	h.cfg = cfg
	h.enabled = true
	h.reactive = cfg.TimeoutThreshold > 0 && !f.sharded

	edgeTimes := make(map[sim.Time]bool)
	for _, ml := range h.links {
		ml.edges = debounceEdges(ml.raw, cfg.DebounceDown, cfg.DebounceUp)
		ml.scheduled = len(ml.edges) > 0
		for _, e := range ml.edges {
			edgeTimes[e.at] = true
		}
		// A reroute keeps every link's registered propagation-delay bound:
		// re-sweeps only remove links from consideration, never shorten one.
		// Assert the invariant the sharded window protocol rides on.
		if ea, eb := ml.link.a.env, ml.link.b.env; ea != eb {
			if la := ea.ChannelLookahead(eb); ml.link.prop < la {
				return fmt.Errorf("ib: monitored link %s delay %v below channel lookahead %v", ml.name, ml.link.prop, la)
			}
			if lb := eb.ChannelLookahead(ea); ml.link.prop < lb {
				return fmt.Errorf("ib: monitored link %s delay %v below channel lookahead %v", ml.name, ml.link.prop, lb)
			}
		}
	}
	if len(edgeTimes) == 0 {
		return nil
	}
	times := make([]sim.Time, 0, len(edgeTimes))
	for t := range edgeTimes {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	// Group devices by home environment (a group per shard view; exactly
	// one group on classic fabrics). Each group's re-sweep runs as an event
	// on its own environment, so no shard ever writes another shard's
	// routing tables. The fabric root environment is always shard 0, so the
	// group that also bumps the epoch counters (lead) exists on every run.
	var envs []*sim.Env
	byEnv := make(map[*sim.Env][]Device)
	for _, d := range f.devices {
		e := d.environment()
		if _, ok := byEnv[e]; !ok {
			envs = append(envs, e)
		}
		byEnv[e] = append(byEnv[e], d)
	}
	for _, at := range times {
		at := at
		lead := false
		for _, e := range envs {
			devs := byEnv[e]
			isLead := e == f.env
			lead = lead || isLead
			e.At(at-e.Now(), func() { f.applyEpoch(devs, at, isLead) })
		}
		if !lead {
			f.env.At(at-f.env.Now(), func() { f.applyEpoch(nil, at, true) })
		}
	}
	return nil
}

// debounceEdges converts a raw outage timeline into the debounced verdict
// timeline. A raw edge to state s fires a verdict edge at rawAt+debounce(s)
// unless the raw signal flips again first (the flap is suppressed) or the
// verdict already holds s. The result is strictly increasing in time.
func debounceEdges(raw []HealthTransition, debounceDown, debounceUp sim.Time) []verdictEdge {
	// Collapse the raw timeline into alternating state runs, keeping the
	// first edge of each run; leading "up" edges restate the initial state.
	var runs []HealthTransition
	for _, e := range raw {
		if len(runs) == 0 {
			if !e.Down {
				continue
			}
		} else if runs[len(runs)-1].Down == e.Down {
			continue
		}
		runs = append(runs, e)
	}
	var out []verdictEdge
	cur := false
	for i, e := range runs {
		d := debounceUp
		if e.Down {
			d = debounceDown
		}
		fire := e.At + d
		if i+1 < len(runs) && runs[i+1].At < fire {
			continue // flipped back before the debounce expired
		}
		if e.Down != cur {
			out = append(out, verdictEdge{at: fire, down: e.Down, rawAt: e.At})
			cur = e.Down
		}
	}
	return out
}

// applyEpoch is the routing-epoch swap event: recompute the routing tables
// of devs excluding links whose verdict at time at is down. Exactly one
// event per edge time runs with lead set; it owns the epoch counters and
// the failover-time histogram. On sharded runs the lead event executes on
// shard 0 concurrently with the other shards' sweeps; it touches only its
// own devices' tables, immutable verdict timelines, and atomics.
func (f *Fabric) applyEpoch(devs []Device, at sim.Time, lead bool) {
	h := f.health
	f.resweep(devs, func(l *Link) bool {
		ml := h.byLink[l]
		return ml != nil && ml.downAt(at)
	})
	if !lead {
		return
	}
	f.routeEpoch.Add(1)
	obs := f.obs
	if obs != nil {
		obs.routeEpochs.Add(1)
	}
	for _, ml := range h.links {
		e := ml.edgeAt(at)
		if e == nil {
			continue
		}
		h.transitions.Add(1)
		if obs != nil {
			obs.healthTransitions.Add(1)
			if e.down {
				obs.failoverNs.Observe(int64(at - e.rawAt))
			}
		}
	}
}

// noteTimeout feeds one RC retransmission timeout into reactive detection:
// every monitored link on the QP's current route accumulates a consecutive-
// timeout streak, and a streak reaching the threshold declares the link
// dead and triggers an immediate re-sweep. Attempts launched under an
// older routing epoch are ignored — their loss happened on a route that no
// longer exists and says nothing about the replacement path. Links with a
// scheduled timeline are skipped — the schedule is authoritative — and a
// reactively-dead link stays dead (the monitor never probes a path it has
// stopped routing over).
func (h *healthState) noteTimeout(q *QP, t *transfer) {
	if !h.reactive {
		return
	}
	f := q.hca.fab
	if t.epoch != f.routeEpoch.Load() {
		return
	}
	if t.delivered {
		// The data reached the responder; the missing ack is in-order
		// head-of-line blocking behind an older undelivered message, not
		// evidence against the path the attempt took. (Reactive detection
		// only runs on unsharded fabrics, so reading responder-side state
		// here is race-free.)
		return
	}
	now := q.env().Now()
	f.walkRoute(q, func(ml *monitoredLink) {
		if ml.scheduled || ml.down {
			return
		}
		if ml.timeouts == 0 {
			ml.streakAt = now
			h.suspects++
		}
		ml.timeouts++
		if ml.timeouts >= h.cfg.TimeoutThreshold {
			h.reactiveDown(f, ml, now)
		}
	})
}

// noteSuccess resets the reactive streak of every monitored link on the
// acked QP's current route. The suspects gate keeps the per-ack cost of a
// healthy fabric at two integer tests.
func (h *healthState) noteSuccess(q *QP) {
	if !h.reactive || h.suspects == 0 {
		return
	}
	q.hca.fab.walkRoute(q, func(ml *monitoredLink) {
		if ml.timeouts > 0 {
			ml.timeouts = 0
			h.suspects--
		}
	})
}

// reactiveDown latches a reactive link death: append a synthetic verdict
// edge, re-sweep every device (the classic fabric is a single event heap,
// so this swap is atomic with respect to traffic), and account the epoch.
func (h *healthState) reactiveDown(f *Fabric, ml *monitoredLink, now sim.Time) {
	ml.down = true
	ml.timeouts = 0
	h.suspects--
	ml.edges = append(ml.edges, verdictEdge{at: now, down: true, rawAt: ml.streakAt})
	f.resweep(f.devices, func(l *Link) bool {
		m := h.byLink[l]
		return m != nil && (m.down || m.downAt(now))
	})
	f.routeEpoch.Add(1)
	h.transitions.Add(1)
	if obs := f.obs; obs != nil {
		obs.routeEpochs.Add(1)
		obs.healthTransitions.Add(1)
		obs.failoverNs.Observe(int64(now - ml.streakAt))
	}
}

// walkRoute visits every monitored link on q's current route to its peer,
// following the per-hop routing tables exactly as a packet would.
func (f *Fabric) walkRoute(q *QP, fn func(*monitoredLink)) {
	dst := q.remote.hca.lid
	dev := Device(q.hca)
	for hops := 0; hops <= len(f.devices); hops++ {
		if dev.LID() == dst {
			return
		}
		p := dev.routeTo(dst)
		if p == nil || p.peer == nil {
			return
		}
		if ml := f.health.byLink[p.link]; ml != nil {
			fn(ml)
		}
		dev = p.peer.dev
	}
}

// RouteEpochs returns the number of routing re-sweeps performed after the
// initial Finalize (0 on a fabric that never failed over).
func (f *Fabric) RouteEpochs() int64 { return f.routeEpoch.Load() }

// HealthTransitions returns the number of debounced link-health verdict
// transitions the monitor has applied.
func (f *Fabric) HealthTransitions() int64 {
	if f.health == nil {
		return 0
	}
	return f.health.transitions.Load()
}

// UnreachableDrops returns the number of packets dropped at a switch whose
// current routing epoch has no route to the destination (a transition
// window or a true partition).
func (f *Fabric) UnreachableDrops() int64 { return f.unreachable.Load() }

// dropUnreachable is the no-route sink: count the drop, error the origin
// QP (when it is local to this shard's environment — always, on classic
// runs) so its pending work flushes promptly instead of burning the whole
// retry budget, and free the packet. A transition window or a true
// partition degrades to explicit completions, never a crash or a hang.
func (f *Fabric) dropUnreachable(s *Switch, pkt *packet) {
	f.unreachable.Add(1)
	if obs := f.obs; obs != nil {
		obs.routeUnreachable.Add(1)
	}
	f.traceReason("drop", s, pkt, "unreachable")
	t := pkt.msg
	var origin *QP
	if t != nil && !t.acked {
		origin = t.origin
	}
	if origin != nil && origin.hca.env == s.env {
		origin.routeUnreachable(t)
	}
	f.freePacket(pkt)
}
