package ib

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestCountingTracer(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	var ct CountingTracer
	a.Fabric().SetTracer(ct.Hook())
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
	env.Go("recv", func(p *sim.Proc) {
		qb.PostRecv(RecvWR{})
		qb.CQ().Poll(p)
	})
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpSend, Len: 5000})
		qa.CQ().Poll(p)
	})
	env.Run()
	// 3 data packets + 1 ack, each tx'd once and rx'd once; no drops.
	if ct.Tx != 4 || ct.Rx != 4 || ct.Drops != 0 {
		t.Errorf("tracer counts tx=%d rx=%d drops=%d, want 4/4/0", ct.Tx, ct.Rx, ct.Drops)
	}
	wantWire := int64(5000 + 3*HeaderRC + AckBytes)
	if ct.WireBytes != wantWire {
		t.Errorf("wire bytes = %d, want %d", ct.WireBytes, wantWire)
	}
}

func TestTracerSeesDrops(t *testing.T) {
	env, _, a, b, l := backToBack(t)
	var ct CountingTracer
	a.Fabric().SetTracer(ct.Hook())
	n := 0
	l.DropFn = func(sim.Time, int) bool { n++; return n == 1 }
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{RetryTimeout: 50 * sim.Microsecond})
	env.Go("recv", func(p *sim.Proc) {
		qb.PostRecv(RecvWR{})
		qb.CQ().Poll(p)
	})
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpSend, Len: 64})
		qa.CQ().Poll(p)
	})
	env.Run()
	if ct.Drops != 1 {
		t.Errorf("drops = %d, want 1", ct.Drops)
	}
}

func TestJSONLTracer(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	var buf bytes.Buffer
	a.Fabric().SetTracer(JSONLTracer(&buf))
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
	env.Go("recv", func(p *sim.Proc) {
		qb.PostRecv(RecvWR{})
		qb.CQ().Poll(p)
	})
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpSend, Len: 100})
		qa.CQ().Poll(p)
	})
	env.Run()
	sc := bufio.NewScanner(&buf)
	lines := 0
	kinds := map[string]int{}
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		kinds[ev.Kind]++
		lines++
		if ev.Pkt == "unknown" {
			t.Errorf("unknown packet kind in trace")
		}
	}
	if lines != 4 { // data tx+rx, ack tx+rx
		t.Errorf("trace lines = %d, want 4", lines)
	}
	if kinds["tx"] != 2 || kinds["rx"] != 2 {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestTracerOffByDefault(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	_ = a
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
	env.Go("recv", func(p *sim.Proc) {
		qb.PostRecv(RecvWR{})
		qb.CQ().Poll(p)
	})
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpSend, Len: 64})
		qa.CQ().Poll(p)
	})
	env.Run() // must simply not panic with no tracer installed
}

func TestPktKindStrings(t *testing.T) {
	for k, want := range map[pktKind]string{
		pktData: "data", pktAck: "ack", pktReadReq: "readreq", pktReadResp: "readresp",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", int(k), got)
		}
	}
	if !strings.Contains(pktKind(99).String(), "unknown") {
		t.Error("unknown kind")
	}
}
