// Package ib implements a packet-level discrete-event model of an
// InfiniBand fabric: host channel adapters (HCAs), switches, links, queue
// pairs with Reliable Connected (RC) and Unreliable Datagram (UD)
// transports, and a verbs-style API (send/recv, RDMA read/write, completion
// queues).
//
// The model reproduces the protocol mechanisms that govern the behaviour
// measured in the paper "Performance of HPC Middleware over InfiniBand WAN"
// (Narravula et al., OSU 2008):
//
//   - RC guarantees reliable in-order delivery with ACKs and bounds the
//     number of in-flight (unacknowledged) messages per QP, so its
//     throughput for small and medium messages collapses as the
//     bandwidth-delay product of a WAN link grows (paper Fig. 5).
//   - UD is open-loop: single-MTU datagrams with no acknowledgements, so
//     its throughput is independent of WAN delay (paper Fig. 4).
//   - RDMA operations complete without consuming receive work requests,
//     giving slightly lower small-message latency than channel semantics
//     (paper Fig. 3) and zero-copy transfers for upper layers (MPI
//     rendezvous, NFS/RDMA).
//
// Wire-level constants are calibrated against the paper's testbed: 2 KB
// MTU, DDR (16 Gbit/s data) intra-cluster links and an SDR (8 Gbit/s data)
// WAN hop through the Obsidian Longbow pair.
package ib

import "repro/internal/sim"

// LID is an InfiniBand local identifier, assigned by the fabric (acting as
// subnet manager) to every end port and switch.
type LID int

// Rate is a link data rate in bytes per second (after 8b/10b coding).
type Rate float64

// Standard InfiniBand link data rates (4x widths).
const (
	SDR Rate = 1e9 // 8 Gbit/s data -> 1000 MillionBytes/s
	DDR Rate = 2e9 // 16 Gbit/s data
	QDR Rate = 4e9 // 32 Gbit/s data
)

// Fabric-wide constants calibrated to the paper's testbed (see DESIGN.md).
const (
	// MTU is the InfiniBand path MTU in bytes. The paper's clusters use
	// 2 KB; UD messages are limited to a single MTU.
	MTU = 2048

	// HeaderRC is the per-packet wire overhead for RC packets
	// (LRH + BTH + CRCs). With a full 2048 B payload this puts the peak
	// RC goodput at ~985 MillionBytes/s on an SDR WAN hop, matching the
	// paper's ~980.
	HeaderRC = 26

	// HeaderUD is the per-packet wire overhead for UD packets
	// (LRH + BTH + DETH + GRH + CRCs). Peak UD goodput on SDR is then
	// ~968 MillionBytes/s, matching the paper's 967.
	HeaderUD = 68

	// AckBytes is the wire size of an RC acknowledgement packet.
	AckBytes = 30

	// ReadReqBytes is the wire size of an RDMA read request packet.
	ReadReqBytes = 42
)

// Default timing constants. These model host/HCA software and hardware
// overheads and are chosen so that the paper's Figure 3 latencies hold:
// back-to-back DDR RC send/recv ~1.3 us, and the Longbow pair adding ~5 us.
const (
	// SendOverhead is the sender-side cost of posting and launching one
	// work request (software post + doorbell + WQE fetch).
	SendOverhead = 600 * sim.Nanosecond

	// RecvOverheadSR is the receiver-side cost of consuming a receive WQE
	// and generating a completion for channel semantics (send/recv).
	RecvOverheadSR = 550 * sim.Nanosecond

	// RecvOverheadRDMA is the receiver-side cost of landing an RDMA
	// write; cheaper than channel semantics because no receive WQE is
	// consumed and no remote completion is raised.
	RecvOverheadRDMA = 200 * sim.Nanosecond

	// PacketProc is the per-packet HCA processing latency. It is a
	// pipeline stage, not a throughput limit: packets stream through at
	// wire rate.
	PacketProc = 100 * sim.Nanosecond

	// SwitchDelay is the forwarding latency of a regular IB switch.
	SwitchDelay = 200 * sim.Nanosecond

	// DefaultCableDelay is the propagation delay of a machine-room cable
	// (a few meters of copper).
	DefaultCableDelay = 25 * sim.Nanosecond
)

// Opcode identifies the operation of a work request or completion.
type Opcode int

const (
	OpSend Opcode = iota
	OpRecv
	OpRDMAWrite
	OpRDMARead
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRecv:
		return "RECV"
	case OpRDMAWrite:
		return "RDMA_WRITE"
	case OpRDMARead:
		return "RDMA_READ"
	}
	return "UNKNOWN"
}

// Status is the completion status of a work request.
type Status int

const (
	StatusOK Status = iota
	StatusDropped
	// StatusRetryExceeded completes an RC work request whose transport
	// retry budget (QPConfig.RetryLimit) ran out — the IB equivalent of
	// IBV_WC_RETRY_EXC_ERR. The QP transitions to the error state.
	StatusRetryExceeded
	// StatusFlushed completes work requests drained from a QP that is in
	// the error state (IBV_WC_WR_FLUSH_ERR): queued and in-flight requests
	// behind the failed one, and any request posted afterwards.
	StatusFlushed
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusDropped:
		return "DROPPED"
	case StatusRetryExceeded:
		return "RETRY_EXCEEDED"
	case StatusFlushed:
		return "FLUSHED"
	}
	return "UNKNOWN"
}
