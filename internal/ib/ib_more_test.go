package ib

import (
	"testing"

	"repro/internal/sim"
)

func TestZeroLengthSend(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
	var got bool
	env.Go("recv", func(p *sim.Proc) {
		qb.PostRecv(RecvWR{})
		c := qb.CQ().Poll(p)
		got = c.Bytes == 0 && c.Op == OpRecv
	})
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpSend, Len: 0})
		qa.CQ().Poll(p)
	})
	env.Run()
	if !got {
		t.Error("zero-length send not delivered")
	}
}

func TestWindowOneSerializes(t *testing.T) {
	// With MaxInflight 1, message i+1 may not leave before i is acked:
	// bandwidth equals size/(RTT + serialization).
	env, qa, qb := wanPair(t, sim.Micros(100), 1)
	bw := measureBW(env, qa, qb, 8<<10, 32)
	// 8K per ~210us RTT ~= 39 MB/s.
	if bw > 60 {
		t.Errorf("window-1 bw = %.1f MB/s, want RTT-bound (~39)", bw)
	}
}

func TestSharedCQMultipleQPs(t *testing.T) {
	env := sim.NewEnv()
	f := NewFabric(env)
	a, b := f.AddHCA("a"), f.AddHCA("b")
	f.Connect(a, b, DDR, DefaultCableDelay)
	f.Finalize()
	cq := NewCQ(env)
	q1a, q1b := CreateRCPair(a, b, nil, cq, QPConfig{})
	q2a, q2b := CreateRCPair(a, b, nil, cq, QPConfig{})
	seen := map[int]int{}
	env.Go("recv", func(p *sim.Proc) {
		q1b.PostRecv(RecvWR{})
		q2b.PostRecv(RecvWR{})
		for i := 0; i < 2; i++ {
			c := cq.Poll(p)
			seen[c.QPN]++
		}
	})
	env.Go("send", func(p *sim.Proc) {
		q1a.PostSend(SendWR{Op: OpSend, Len: 10})
		q2a.PostSend(SendWR{Op: OpSend, Len: 10})
		q1a.CQ().Poll(p)
		q2a.CQ().Poll(p)
	})
	env.Run()
	if seen[q1b.QPN()] != 1 || seen[q2b.QPN()] != 1 {
		t.Errorf("shared CQ routing: %v", seen)
	}
}

func TestPortTxBytesAccounting(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
	env.Go("recv", func(p *sim.Proc) {
		qb.PostRecv(RecvWR{})
		qb.CQ().Poll(p)
	})
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpSend, Len: 5000})
		qa.CQ().Poll(p)
	})
	env.Run()
	// 5000 payload = 3 packets: 2048+2048+904 payload + 3 * HeaderRC.
	want := int64(5000 + 3*HeaderRC)
	if got := a.FabricPort().TxBytes(); got != want {
		t.Errorf("sender TxBytes = %d, want %d", got, want)
	}
	// Receiver sent exactly one ack.
	if got := b.FabricPort().TxBytes(); got != AckBytes {
		t.Errorf("receiver TxBytes = %d, want %d (one ack)", got, AckBytes)
	}
}

func TestCQTryPoll(t *testing.T) {
	env := sim.NewEnv()
	cq := NewCQ(env)
	if _, ok := cq.TryPoll(); ok {
		t.Fatal("TryPoll on empty CQ")
	}
	cq.post(Completion{Op: OpSend})
	if c, ok := cq.TryPoll(); !ok || c.Op != OpSend {
		t.Fatalf("TryPoll = %+v, %v", c, ok)
	}
	if cq.Len() != 0 {
		t.Errorf("Len = %d", cq.Len())
	}
}

func TestThreeSwitchPath(t *testing.T) {
	// Linear chain a - s1 - s2 - s3 - b: routing must traverse, latency
	// must include three switch delays.
	env := sim.NewEnv()
	f := NewFabric(env)
	a, b := f.AddHCA("a"), f.AddHCA("b")
	s1 := f.AddSwitch("s1", SwitchDelay)
	s2 := f.AddSwitch("s2", SwitchDelay)
	s3 := f.AddSwitch("s3", SwitchDelay)
	f.Connect(a, s1, DDR, DefaultCableDelay)
	f.Connect(s1, s2, DDR, DefaultCableDelay)
	f.Connect(s2, s3, DDR, DefaultCableDelay)
	f.Connect(s3, b, DDR, DefaultCableDelay)
	f.Finalize()
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
	lat := pingPong(env, qa, qb, 8, 20)
	// Back-to-back is ~1.3us; three switches add ~0.6us each way.
	if lat < 1800*sim.Nanosecond || lat > 2600*sim.Nanosecond {
		t.Errorf("3-switch latency = %v, want ~1.9-2.1us", lat)
	}
}

func TestConnectRCRequiresRC(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	_ = env
	cq := NewCQ(env)
	qa := a.CreateQP(cq, QPConfig{Transport: UD})
	qb := b.CreateQP(cq, QPConfig{Transport: RC})
	defer func() {
		if recover() == nil {
			t.Fatal("ConnectRC with UD QP did not panic")
		}
	}()
	ConnectRC(qa, qb)
}

func TestUnconnectedRCSendPanics(t *testing.T) {
	env, _, a, _, _ := backToBack(t)
	_ = env
	cq := NewCQ(env)
	qa := a.CreateQP(cq, QPConfig{Transport: RC})
	defer func() {
		if recover() == nil {
			t.Fatal("send on unconnected RC QP did not panic")
		}
	}()
	qa.PostSend(SendWR{Op: OpSend, Len: 1})
}

func TestVirtualMR(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	qa, _ := CreateRCPair(a, b, nil, nil, QPConfig{})
	mr := b.RegisterVirtualMR(1 << 20)
	if mr.Len() != 1<<20 {
		t.Fatalf("virtual MR Len = %d", mr.Len())
	}
	done := false
	env.Go("w", func(p *sim.Proc) {
		// Synthetic write into a virtual region: full wire simulation, no
		// memory traffic.
		qa.PostSend(SendWR{Op: OpRDMAWrite, Len: 1 << 20, RemoteMR: mr})
		c := qa.CQ().Poll(p)
		done = c.Status == StatusOK && c.Bytes == 1<<20
	})
	env.Run()
	if !done {
		t.Error("virtual-region RDMA write failed")
	}
}

func TestBidirStreamsIndependent(t *testing.T) {
	// Full duplex: simultaneous opposite streams each achieve near the
	// unidirectional rate.
	env, _, a, b, _ := backToBack(t)
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
	const count, size = 64, 256 << 10
	var tA, tB sim.Time
	run := func(tx, rx *QP, done *sim.Time) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			for i := 0; i < count; i++ {
				rx.PostRecv(RecvWR{})
			}
			for i := 0; i < count; i++ {
				tx.PostSend(SendWR{Op: OpSend, Len: size})
			}
			sends, recvs := 0, 0
			for sends < count || recvs < count {
				c := tx.CQ().Poll(p)
				if c.Op == OpSend {
					sends++
				} else {
					recvs++
				}
			}
			*done = p.Now()
		}
	}
	env.Go("a", run(qa, qa, &tA))
	env.Go("b", run(qb, qb, &tB))
	env.Run()
	total := float64(count*size) / tA.Seconds() / 1e6
	// DDR data rate is 2000 MB/s; each direction should get most of it.
	if total < 1700 {
		t.Errorf("per-direction bidir bw = %.1f MB/s, want near 1970", total)
	}
	_ = tB
}

func TestInOrderDeliveryUnderLoss(t *testing.T) {
	// Drop a packet of message 1 so its retransmission arrives after
	// messages 2..N have crossed: the receiver must still deliver 1..N in
	// order (the RC guarantee upper layers depend on — e.g. the MPI
	// rendezvous FIN posted behind an RDMA write).
	env, _, a, b, l := backToBack(t)
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{RetryTimeout: 200 * sim.Microsecond})
	n := 0
	l.DropFn = func(_ sim.Time, wire int) bool {
		n++
		return n == 2 // second wire packet: inside message 1
	}
	const msgs = 6
	var order []int
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			qb.PostRecv(RecvWR{Ctx: i})
		}
		for i := 0; i < msgs; i++ {
			c := qb.CQ().Poll(p)
			order = append(order, c.Ctx.(int))
		}
	})
	env.Go("send", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			qa.PostSend(SendWR{Op: OpSend, Len: 3 * MTU}) // multi-packet
		}
		for i := 0; i < msgs; i++ {
			qa.CQ().Poll(p)
		}
	})
	env.Run()
	if len(order) != msgs {
		t.Fatalf("delivered %d, want %d", len(order), msgs)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("out-of-order delivery under loss: %v", order)
		}
	}
	if qa.Stats().Retransmits == 0 {
		t.Fatal("no retransmission; test vacuous")
	}
}

func TestWireLatencyScalesWithDistance(t *testing.T) {
	// 1 us of delay per configured microsecond, exactly.
	lat := func(us float64) sim.Time {
		env, qa, qb := wanPair(t, sim.Micros(us), 0)
		return pingPong(env, qa, qb, 8, 10)
	}
	l0 := lat(0)
	l500 := lat(500)
	diff := l500 - l0
	if diff < sim.Micros(499) || diff > sim.Micros(501) {
		t.Errorf("500us delay adds %v to one-way latency, want 500us", diff)
	}
}
