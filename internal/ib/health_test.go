package ib

import (
	"testing"

	"repro/internal/sim"
)

// diamond builds a—s1—s2—b with an alternate s1—s3—s2 path, returning the
// direct (shorter, BFS-preferred) s1—s2 link.
func diamond(t *testing.T) (*sim.Env, *Fabric, *HCA, *HCA, *Switch, *Link) {
	t.Helper()
	env := sim.NewEnv()
	f := NewFabric(env)
	a := f.AddHCA("a")
	b := f.AddHCA("b")
	s1 := f.AddSwitch("s1", SwitchDelay)
	s2 := f.AddSwitch("s2", SwitchDelay)
	s3 := f.AddSwitch("s3", SwitchDelay)
	f.Connect(a, s1, DDR, DefaultCableDelay)
	l12 := f.Connect(s1, s2, SDR, 50*sim.Microsecond)
	f.Connect(s1, s3, SDR, 50*sim.Microsecond)
	f.Connect(s3, s2, SDR, 50*sim.Microsecond)
	f.Connect(s2, b, DDR, DefaultCableDelay)
	f.Finalize()
	return env, f, a, b, s1, l12
}

func TestDebounceEdges(t *testing.T) {
	ms := sim.Millisecond
	us := sim.Microsecond
	raw := []HealthTransition{
		{At: 1 * ms, Down: true},   // flap: back up before the debounce expires
		{At: 1*ms + 100*us, Down: false},
		{At: 2 * ms, Down: true},  // real outage
		{At: 5 * ms, Down: false}, // real recovery
		{At: 7 * ms, Down: false}, // restates the current state: no edge
	}
	edges := debounceEdges(raw, 250*us, 1*ms)
	want := []verdictEdge{
		{at: 2*ms + 250*us, down: true, rawAt: 2 * ms},
		{at: 6 * ms, down: false, rawAt: 5 * ms},
	}
	if len(edges) != len(want) {
		t.Fatalf("debounceEdges = %+v, want %+v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge %d = %+v, want %+v", i, edges[i], want[i])
		}
	}
	if len(debounceEdges(nil, 250*us, 1*ms)) != 0 {
		t.Error("nil raw timeline produced edges")
	}
	// A leading up-edge restates the initial state and must not emit.
	if got := debounceEdges([]HealthTransition{{At: 1 * ms, Down: false}}, 250*us, 1*ms); len(got) != 0 {
		t.Errorf("leading up edge emitted %+v", got)
	}
}

func TestEnableFailoverRejectsNegativeDebounce(t *testing.T) {
	_, f, _, _, _, l12 := diamond(t)
	f.MonitorLink(l12, "s1-s2", nil)
	if err := f.EnableFailover(HealthConfig{DebounceDown: -1}); err == nil {
		t.Fatal("negative debounce accepted")
	}
}

// TestScheduledFailoverReroutes kills the monitored direct link on a
// schedule and checks the routing tables swap to the alternate path at the
// debounced verdict time, traffic sent after the swap completes, and the
// epoch counters account exactly one transition.
func TestScheduledFailoverReroutes(t *testing.T) {
	env, f, a, b, s1, l12 := diamond(t)
	f.MonitorLink(l12, "s1-s2", []HealthTransition{{At: sim.Millisecond, Down: true}})
	if err := f.EnableFailover(HealthConfig{DebounceDown: 250 * sim.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if p := s1.routeTo(b.LID()); p == nil || p.link != l12 {
		t.Fatal("initial route does not use the direct link")
	}
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
	var before, after bool
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			qb.PostRecv(RecvWR{})
			qb.CQ().Poll(p)
		}
	})
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpSend, Len: 4096})
		if c := qa.CQ().Poll(p); c.Status != StatusOK {
			t.Errorf("pre-kill send completed with %v", c.Status)
		}
		before = true
		p.Sleep(2*sim.Millisecond - p.Now())
		qa.PostSend(SendWR{Op: OpSend, Len: 4096})
		if c := qa.CQ().Poll(p); c.Status != StatusOK {
			t.Errorf("post-kill send completed with %v", c.Status)
		}
		after = true
	})
	env.Run()
	if !before || !after {
		t.Fatalf("sends incomplete: before=%v after=%v", before, after)
	}
	if p := s1.routeTo(b.LID()); p == nil || p.link == l12 {
		t.Error("route still uses the dead link after the verdict")
	}
	if got := f.RouteEpochs(); got != 1 {
		t.Errorf("RouteEpochs = %d, want 1", got)
	}
	if got := f.HealthTransitions(); got != 1 {
		t.Errorf("HealthTransitions = %d, want 1", got)
	}
	if got := f.UnreachableDrops(); got != 0 {
		t.Errorf("UnreachableDrops = %d, want 0 (alternate path exists)", got)
	}
}

// TestUnreachableDropErrorsQP removes the only path mid-run: the send after
// the verdict must degrade to an explicit StatusRetryExceeded completion
// (via the switch's counted unreachable drop), never a hang or a panic.
func TestUnreachableDropErrorsQP(t *testing.T) {
	env := sim.NewEnv()
	f := NewFabric(env)
	a := f.AddHCA("a")
	b := f.AddHCA("b")
	s1 := f.AddSwitch("s1", SwitchDelay)
	s2 := f.AddSwitch("s2", SwitchDelay)
	f.Connect(a, s1, DDR, DefaultCableDelay)
	l12 := f.Connect(s1, s2, SDR, 50*sim.Microsecond)
	f.Connect(s2, b, DDR, DefaultCableDelay)
	f.Finalize()
	f.MonitorLink(l12, "s1-s2", []HealthTransition{{At: sim.Millisecond, Down: true}})
	if err := f.EnableFailover(HealthConfig{DebounceDown: 250 * sim.Microsecond}); err != nil {
		t.Fatal(err)
	}
	qa, _ := CreateRCPair(a, b, nil, nil, QPConfig{RetryTimeout: 100 * sim.Microsecond, RetryLimit: 30})
	var status Status
	env.Go("send", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond)
		qa.PostSend(SendWR{Op: OpSend, Len: 4096})
		status = qa.CQ().Poll(p).Status
	})
	env.Run()
	if status != StatusRetryExceeded {
		t.Fatalf("partitioned send completed with %v, want %v", status, StatusRetryExceeded)
	}
	if got := f.UnreachableDrops(); got < 1 {
		t.Errorf("UnreachableDrops = %d, want >= 1", got)
	}
}

// TestReactiveDetection runs total loss on a monitored link with no outage
// schedule: consecutive retry timeouts must reach the threshold, declare
// the link dead, re-sweep, and (with no alternate path) fail the QP fast
// through the unreachable drop instead of burning the whole exponential
// backoff ladder.
func TestReactiveDetection(t *testing.T) {
	env := sim.NewEnv()
	f := NewFabric(env)
	a := f.AddHCA("a")
	b := f.AddHCA("b")
	s1 := f.AddSwitch("s1", SwitchDelay)
	f.Connect(a, s1, DDR, DefaultCableDelay)
	l1b := f.Connect(s1, b, SDR, 50*sim.Microsecond)
	f.Finalize()
	f.MonitorLink(l1b, "s1-b", nil)
	if err := f.EnableFailover(HealthConfig{TimeoutThreshold: 3}); err != nil {
		t.Fatal(err)
	}
	l1b.DropFn = func(sim.Time, int) bool { return true } // total loss
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{RetryTimeout: 100 * sim.Microsecond, RetryLimit: 30})
	qb.PostRecv(RecvWR{})
	var status Status
	var done sim.Time
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpSend, Len: 4096})
		status = qa.CQ().Poll(p).Status
		done = p.Now()
	})
	env.Run()
	if status != StatusRetryExceeded {
		t.Fatalf("send over dead link completed with %v, want %v", status, StatusRetryExceeded)
	}
	if got := f.HealthTransitions(); got != 1 {
		t.Errorf("HealthTransitions = %d, want 1 (reactive death)", got)
	}
	if got := f.RouteEpochs(); got != 1 {
		t.Errorf("RouteEpochs = %d, want 1", got)
	}
	if got := f.UnreachableDrops(); got < 1 {
		t.Errorf("UnreachableDrops = %d, want >= 1", got)
	}
	// Threshold 3 at 100 us retry (exponential backoff) dies within ~1 ms;
	// the 30-retry ladder alone would stall for seconds.
	if done > 10*sim.Millisecond {
		t.Errorf("reactive detection took %v, want well under the retry ladder", done)
	}
}
