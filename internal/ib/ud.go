package ib

import "fmt"

// MaxUDPayload is the largest UD message: a single MTU.
const MaxUDPayload = MTU

// udPostSend transmits a datagram. UD is open-loop: the send completes as
// soon as the datagram has left the HCA, and no acknowledgement ever flows
// back — which is why UD throughput is independent of WAN delay (paper
// Fig. 4).
func (q *QP) udPostSend(wr SendWR) {
	if wr.Op != OpSend {
		panic("ib: UD supports only send/recv semantics")
	}
	size := wr.payloadLen()
	if size > MaxUDPayload {
		panic(fmt.Sprintf("ib: UD message %d exceeds MTU %d", size, MaxUDPayload))
	}
	if wr.DestLID == 0 {
		panic("ib: UD send requires DestLID/DestQPN")
	}
	q.hca.fab.ensureRouted()
	fab := q.hca.fab
	t := fab.newTransfer()
	t.wr = wr
	t.size = size
	t.origin = q
	t.udData = wr.Data
	if obs := fab.obs; obs != nil && obs.rec != nil {
		t.span = obs.rec.StartAt(q.env().Now(), obs.verbsTrack(q.hca), "verbs.ud.send", wr.ParentSpan)
	}
	fab.ref(t)
	q.env().AtArg(SendOverhead, q.udSendArg, t)
}

// udSend puts the datagram on the wire (the SendOverhead stage).
func (q *QP) udSend(t *transfer) {
	fab := q.hca.fab
	port := q.hca.routeTo(t.wr.DestLID)
	if port == nil {
		panic(fmt.Sprintf("ib: no route from %s to LID %d", q.hca.name, t.wr.DestLID))
	}
	pkt := fab.newPacket()
	*pkt = packet{
		src: q.hca.lid, dst: t.wr.DestLID,
		srcQP: q.qpn, dstQP: t.wr.DestQPN,
		kind: pktData, wire: HeaderUD + t.size, payload: t.size,
		msg: t, last: true, ud: true,
	}
	fab.ref(t)
	port.send(pkt)
	q.stats.MsgsSent++
	q.stats.BytesSent += int64(t.size)
	q.endVerbsSpan(t) // UD completes at wire departure (open loop)
	q.cq.post(Completion{Op: OpSend, Status: StatusOK, Bytes: t.size, Ctx: t.wr.Ctx, QPN: q.qpn})
	t.senderDone.Store(true)
	fab.unref(t)
}

// udReceive delivers a datagram into a posted receive, or drops it.
func (q *QP) udReceive(pkt *packet) {
	t := pkt.msg
	if q.recvQ.Len() == 0 {
		q.stats.RecvDrops++
		if obs := q.hca.fab.obs; obs != nil {
			obs.udRecvDrops.Add(1)
		}
		q.hca.fab.traceReason("drop", q.hca, pkt, "no-recv")
		// Nothing on this end will ever touch the transfer again; the
		// packet's reference (released by the caller) recycles it.
		t.recvDone.Store(true)
		return
	}
	rwr := q.recvQ.Pop()
	if rwr.Buf != nil && t.udData != nil {
		copy(rwr.Buf, t.udData)
	}
	if pkt.ecn {
		// Datagrams are single-packet; the mark transfers directly.
		t.ecn = true
	}
	q.stats.MsgsRecv++
	q.stats.BytesRecv += int64(t.size)
	t.rwr = rwr
	q.hca.fab.ref(t)
	q.env().AtArg(RecvOverheadSR, q.recvCompArg, t)
}
