package ib

import "fmt"

// MaxUDPayload is the largest UD message: a single MTU.
const MaxUDPayload = MTU

// udPostSend transmits a datagram. UD is open-loop: the send completes as
// soon as the datagram has left the HCA, and no acknowledgement ever flows
// back — which is why UD throughput is independent of WAN delay (paper
// Fig. 4).
func (q *QP) udPostSend(wr SendWR) {
	if wr.Op != OpSend {
		panic("ib: UD supports only send/recv semantics")
	}
	size := wr.payloadLen()
	if size > MaxUDPayload {
		panic(fmt.Sprintf("ib: UD message %d exceeds MTU %d", size, MaxUDPayload))
	}
	if wr.DestLID == 0 {
		panic("ib: UD send requires DestLID/DestQPN")
	}
	q.hca.fab.ensureRouted()
	q.hca.fab.nextMsg++
	t := &transfer{id: q.hca.fab.nextMsg, wr: wr, size: size, origin: q, udData: wr.Data}
	env := q.env()
	env.At(SendOverhead, func() {
		port := q.hca.routeTo(wr.DestLID)
		if port == nil {
			panic(fmt.Sprintf("ib: no route from %s to LID %d", q.hca.name, wr.DestLID))
		}
		port.send(&packet{
			src: q.hca.lid, dst: wr.DestLID,
			srcQP: q.qpn, dstQP: wr.DestQPN,
			kind: pktData, wire: HeaderUD + size, payload: size,
			msg: t, last: true,
		})
		q.stats.MsgsSent++
		q.stats.BytesSent += int64(size)
		q.cq.post(Completion{Op: OpSend, Status: StatusOK, Bytes: size, Ctx: wr.Ctx, QPN: q.qpn})
	})
}

// udReceive delivers a datagram into a posted receive, or drops it.
func (q *QP) udReceive(pkt *packet) {
	t := pkt.msg
	if len(q.recvQ) == 0 {
		q.stats.RecvDrops++
		return
	}
	rwr := q.recvQ[0]
	q.recvQ = q.recvQ[1:]
	if rwr.Buf != nil && t.udData != nil {
		copy(rwr.Buf, t.udData)
	}
	q.stats.MsgsRecv++
	q.stats.BytesRecv += int64(t.size)
	q.env().At(RecvOverheadSR, func() {
		q.cq.post(Completion{Op: OpRecv, Status: StatusOK, Bytes: t.size, Ctx: rwr.Ctx, QPN: q.qpn, SrcQPN: t.origin.qpn, SrcLID: t.origin.hca.lid, Meta: t.wr.Meta})
	})
}
