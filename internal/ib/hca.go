package ib

import (
	"fmt"

	"repro/internal/sim"
)

// HCA is a host channel adapter: a single-ported end node owning queue
// pairs and registered memory regions.
type HCA struct {
	fab   *Fabric
	env   *sim.Env // home environment (the shard view on sharded fabrics)
	name  string
	lid   LID
	port  *Port
	route *Port // single port: route to everything
	qps   map[int]*QP
	mrs   map[int]*MR
}

// Name returns the HCA name.
func (h *HCA) Name() string { return h.name }

// LID returns the HCA's local identifier.
func (h *HCA) LID() LID { return h.lid }

// Fabric returns the owning fabric.
func (h *HCA) Fabric() *Fabric { return h.fab }

// Env returns the simulation environment the HCA lives on: its site's
// shard view on sharded topologies, the fabric environment otherwise.
// Layers hosting software on a node (MPI ranks, NFS clients and servers)
// schedule through this, which is what keeps all of a node's work on its
// own shard.
func (h *HCA) Env() *sim.Env { return h.env }

func (h *HCA) ports() []*Port {
	if h.port == nil {
		return nil
	}
	return []*Port{h.port}
}

func (h *HCA) attach(p *Port) {
	if h.port != nil {
		panic(fmt.Sprintf("ib: HCA %s already has a port", h.name))
	}
	h.port = p
	h.route = p
}

func (h *HCA) setLID(l LID)            { h.lid = l }
func (h *HCA) routeTo(dst LID) *Port   { return h.route }
func (h *HCA) setRoute(d LID, p *Port) { h.route = p }

// resetRoutes is a no-op: an HCA has a single port, so its only possible
// route survives every epoch (path choice happens at the switches).
func (h *HCA) resetRoutes() {}
func (h *HCA) fabric() *Fabric         { return h.fab }
func (h *HCA) environment() *sim.Env   { return h.env }

// Port returns the HCA's single port (nil before Connect).
func (h *HCA) FabricPort() *Port { return h.port }

func (h *HCA) receive(pkt *packet, on *Port) {
	h.fab.trace("rx", h, pkt)
	qp := h.qps[pkt.dstQP]
	if qp == nil {
		panic(fmt.Sprintf("ib: HCA %s: packet for unknown QP %d", h.name, pkt.dstQP))
	}
	// Per-packet HCA processing is a pipeline latency stage. The QP's
	// cached handler consumes the packet and recycles it.
	h.env.AtArg(PacketProc, qp.recvArg, pkt)
}

// RegisterMR registers buf as an RDMA-accessible memory region and returns
// the region handle (which doubles as the rkey a peer must present).
func (h *HCA) RegisterMR(buf []byte) *MR {
	mr := &MR{id: int(h.fab.nextMRID.Add(1)), hca: h, Buf: buf}
	h.mrs[mr.id] = mr
	return mr
}

// RegisterVirtualMR registers a region with a size but no backing memory:
// RDMA operations against it are fully simulated on the wire but carry no
// payload bytes. Perf-only traffic uses virtual regions to avoid allocating
// and copying gigabytes of synthetic payload.
func (h *HCA) RegisterVirtualMR(n int) *MR {
	mr := &MR{id: int(h.fab.nextMRID.Add(1)), hca: h, virtualLen: n}
	h.mrs[mr.id] = mr
	return mr
}

// MR is a registered memory region on an HCA.
type MR struct {
	id         int
	hca        *HCA
	Buf        []byte
	virtualLen int // size of a virtual (unbacked) region
}

// RKey returns the remote key identifying the region.
func (m *MR) RKey() int { return m.id }

// Len returns the region size in bytes.
func (m *MR) Len() int {
	if m.Buf == nil {
		return m.virtualLen
	}
	return len(m.Buf)
}
