package ib

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// backToBack builds two HCAs joined by one DDR cable.
func backToBack(t testing.TB) (*sim.Env, *Fabric, *HCA, *HCA, *Link) {
	t.Helper()
	env := sim.NewEnv()
	f := NewFabric(env)
	a := f.AddHCA("a")
	b := f.AddHCA("b")
	l := f.Connect(a, b, DDR, DefaultCableDelay)
	f.Finalize()
	return env, f, a, b, l
}

// pingPong measures the half round-trip latency of size-byte RC send/recv.
func pingPong(env *sim.Env, qa, qb *QP, size, iters int) sim.Time {
	var total sim.Time
	env.Go("server", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			qb.PostRecv(RecvWR{})
			qb.CQ().Poll(p)
			qb.PostSend(SendWR{Op: OpSend, Len: size})
			qb.CQ().Poll(p) // send completion
		}
	})
	env.Go("client", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < iters; i++ {
			qa.PostRecv(RecvWR{})
			qa.PostSend(SendWR{Op: OpSend, Len: size})
			// Wait for both send completion and pong arrival.
			got := 0
			for got < 2 {
				qa.CQ().Poll(p)
				got++
			}
		}
		total = p.Now() - start
	})
	env.Run()
	return total / sim.Time(2*iters)
}

func TestRCSendRecvDeliversData(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
	msg := []byte("hello infiniband wan")
	buf := make([]byte, len(msg))
	var comp Completion
	env.Go("recv", func(p *sim.Proc) {
		qb.PostRecv(RecvWR{Buf: buf, Ctx: "rctx"})
		comp = qb.CQ().Poll(p)
	})
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpSend, Data: msg, Ctx: "sctx"})
		qa.CQ().Poll(p)
	})
	env.Run()
	if !bytes.Equal(buf, msg) {
		t.Errorf("received %q, want %q", buf, msg)
	}
	if comp.Op != OpRecv || comp.Bytes != len(msg) || comp.Ctx != "rctx" {
		t.Errorf("recv completion = %+v", comp)
	}
}

func TestBackToBackLatencyCalibration(t *testing.T) {
	// Paper Fig. 3: back-to-back DDR RC send/recv small-message latency is
	// ~1.2-1.5 us.
	env, _, a, b, _ := backToBack(t)
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
	lat := pingPong(env, qa, qb, 8, 100)
	if lat < sim.Microsecond || lat > 2*sim.Microsecond {
		t.Errorf("back-to-back RC latency = %v, want ~1.2-1.5us", lat)
	}
}

func TestRCInOrderDelivery(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
	const n = 50
	var order []int
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			qb.PostRecv(RecvWR{Ctx: i})
		}
		for i := 0; i < n; i++ {
			c := qb.CQ().Poll(p)
			order = append(order, c.Ctx.(int))
		}
	})
	env.Go("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			// Mixed sizes to stress multi-packet interleaving.
			qa.PostSend(SendWR{Op: OpSend, Len: 1 + (i%5)*3000})
		}
		for i := 0; i < n; i++ {
			qa.CQ().Poll(p)
		}
	})
	env.Run()
	if len(order) != n {
		t.Fatalf("delivered %d messages, want %d", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("out-of-order delivery: %v", order)
		}
	}
}

func TestRCRNRBuffering(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
	data := []byte("early bird")
	buf := make([]byte, len(data))
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpSend, Data: data})
		qa.CQ().Poll(p)
	})
	env.Go("lateRecv", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond)
		qb.PostRecv(RecvWR{Buf: buf})
		qb.CQ().Poll(p)
	})
	env.Run()
	if !bytes.Equal(buf, data) {
		t.Errorf("late recv got %q, want %q", buf, data)
	}
	if qb.Stats().RNRBuffered != 1 {
		t.Errorf("RNRBuffered = %d, want 1", qb.Stats().RNRBuffered)
	}
}

func TestRDMAWriteLandsInRemoteMR(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	qa, _ := CreateRCPair(a, b, nil, nil, QPConfig{})
	region := make([]byte, 1<<16)
	mr := b.RegisterMR(region)
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	env.Go("writer", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpRDMAWrite, Data: payload, RemoteMR: mr, RemoteOff: 1234})
		c := qa.CQ().Poll(p)
		if c.Op != OpRDMAWrite || c.Status != StatusOK {
			t.Errorf("write completion = %+v", c)
		}
	})
	env.Run()
	if !bytes.Equal(region[1234:1234+5000], payload) {
		t.Error("RDMA write payload mismatch in remote MR")
	}
	for _, i := range []int{0, 1233, 6234, 6235} {
		if i < 1234 || i >= 6234 {
			if region[i] != 0 {
				t.Errorf("RDMA write touched byte %d outside target range", i)
			}
		}
	}
}

func TestRDMAReadFetchesRemoteMR(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	qa, _ := CreateRCPair(a, b, nil, nil, QPConfig{})
	region := make([]byte, 1<<16)
	for i := range region {
		region[i] = byte(i * 13)
	}
	mr := b.RegisterMR(region)
	dst := make([]byte, 9000)
	env.Go("reader", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpRDMARead, Len: 9000, LocalBuf: dst, RemoteMR: mr, RemoteOff: 500})
		c := qa.CQ().Poll(p)
		if c.Op != OpRDMARead || c.Bytes != 9000 {
			t.Errorf("read completion = %+v", c)
		}
	})
	env.Run()
	if !bytes.Equal(dst, region[500:9500]) {
		t.Error("RDMA read data mismatch")
	}
}

func TestRDMAWriteBeyondMRPanics(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	qa, _ := CreateRCPair(a, b, nil, nil, QPConfig{})
	mr := b.RegisterMR(make([]byte, 100))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds RDMA write did not panic")
		}
	}()
	_ = env
	qa.PostSend(SendWR{Op: OpRDMAWrite, Len: 200, RemoteMR: mr})
}

func TestRCWindowLimitsInflight(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{MaxInflight: 2})
	const n = 10
	for i := 0; i < n; i++ {
		qb.PostRecv(RecvWR{})
	}
	maxInflight := 0
	env.Go("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			qa.PostSend(SendWR{Op: OpSend, Len: 4096})
		}
		for i := 0; i < n; i++ {
			qa.CQ().Poll(p)
			if len(qa.inflight) > maxInflight {
				maxInflight = len(qa.inflight)
			}
		}
	})
	env.Run()
	if maxInflight > 2 {
		t.Errorf("inflight reached %d, window is 2", maxInflight)
	}
	if qa.Stats().MsgsSent != n {
		t.Errorf("MsgsSent = %d, want %d", qa.Stats().MsgsSent, n)
	}
}

// measureBW runs a one-directional RC stream of count messages of the given
// size and returns MillionBytes/sec as the paper reports it.
func measureBW(env *sim.Env, qa, qb *QP, size, count int) float64 {
	done := env.NewEvent()
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			qb.PostRecv(RecvWR{})
		}
		for i := 0; i < count; i++ {
			qb.CQ().Poll(p)
		}
		done.Trigger(nil)
	})
	var elapsed sim.Time
	env.Go("send", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < count; i++ {
			qa.PostSend(SendWR{Op: OpSend, Len: size})
		}
		for i := 0; i < count; i++ {
			qa.CQ().Poll(p)
		}
		p.Wait(done)
		elapsed = p.Now() - start
	})
	env.Run()
	return float64(size) * float64(count) / elapsed.Seconds() / 1e6
}

func wanPair(t testing.TB, delay sim.Time, window int) (*sim.Env, *QP, *QP) {
	t.Helper()
	env := sim.NewEnv()
	f := NewFabric(env)
	a := f.AddHCA("a")
	b := f.AddHCA("b")
	lba := f.AddSwitch("longbowA", 2500*sim.Nanosecond)
	lbb := f.AddSwitch("longbowB", 2500*sim.Nanosecond)
	f.Connect(a, lba, DDR, DefaultCableDelay)
	f.Connect(lba, lbb, SDR, delay)
	f.Connect(lbb, b, DDR, DefaultCableDelay)
	f.Finalize()
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{MaxInflight: window})
	return env, qa, qb
}

func TestRCPeakBandwidthCalibration(t *testing.T) {
	// Paper Fig. 5: RC peak ~980 MillionBytes/s over the SDR WAN hop for
	// large messages at zero delay.
	env, qa, qb := wanPair(t, 0, 0)
	bw := measureBW(env, qa, qb, 1<<20, 32)
	if bw < 940 || bw > 1000 {
		t.Errorf("RC peak bw = %.1f MB/s, want ~980", bw)
	}
}

func TestRCBandwidthCollapsesWithDelay(t *testing.T) {
	// Paper Fig. 5: with a 1000 us delay, 64 KB messages collapse while
	// 1 MB+ messages sustain near wire rate.
	env1, qa1, qb1 := wanPair(t, sim.Micros(1000), 0)
	bw64k := measureBW(env1, qa1, qb1, 64<<10, 64)
	env2, qa2, qb2 := wanPair(t, sim.Micros(1000), 0)
	bw4m := measureBW(env2, qa2, qb2, 4<<20, 16)
	if bw64k > 400 {
		t.Errorf("64K bw at 1ms delay = %.1f MB/s, want collapsed (<400)", bw64k)
	}
	if bw4m < 900 {
		t.Errorf("4M bw at 1ms delay = %.1f MB/s, want near wire rate (>900)", bw4m)
	}
	if bw4m < 3*bw64k {
		t.Errorf("large/medium ratio at 1ms delay = %.1f/%.1f, want >3x", bw4m, bw64k)
	}
}

func TestUDBandwidthDelayIndependent(t *testing.T) {
	// Paper Fig. 4: UD streaming bandwidth is independent of WAN delay.
	measure := func(delay sim.Time) float64 {
		env := sim.NewEnv()
		f := NewFabric(env)
		a := f.AddHCA("a")
		b := f.AddHCA("b")
		lba := f.AddSwitch("lbA", 2500*sim.Nanosecond)
		lbb := f.AddSwitch("lbB", 2500*sim.Nanosecond)
		f.Connect(a, lba, DDR, DefaultCableDelay)
		f.Connect(lba, lbb, SDR, delay)
		f.Connect(lbb, b, DDR, DefaultCableDelay)
		f.Finalize()
		cqa, cqb := NewCQ(env), NewCQ(env)
		qa := a.CreateQP(cqa, QPConfig{Transport: UD})
		qb := b.CreateQP(cqb, QPConfig{Transport: UD})
		const count = 2000
		var elapsed sim.Time
		env.Go("recv", func(p *sim.Proc) {
			for i := 0; i < count; i++ {
				qb.PostRecv(RecvWR{})
			}
			var first sim.Time
			for i := 0; i < count; i++ {
				cqb.Poll(p)
				if i == 0 {
					first = p.Now()
				}
			}
			// Steady-state rate between first and last arrival, so the
			// one-time pipeline fill (the WAN delay itself) is excluded.
			elapsed = p.Now() - first
		})
		env.Go("send", func(p *sim.Proc) {
			for i := 0; i < count; i++ {
				qa.PostSend(SendWR{Op: OpSend, Len: MaxUDPayload, DestLID: b.LID(), DestQPN: qb.QPN()})
			}
		})
		env.Run()
		return float64(MaxUDPayload) * (count - 1) / elapsed.Seconds() / 1e6
	}
	bw0 := measure(0)
	bw10ms := measure(sim.Micros(10000))
	if bw0 < 930 || bw0 > 1010 {
		t.Errorf("UD peak bw = %.1f MB/s, want ~967", bw0)
	}
	if bw10ms < bw0*0.98 {
		t.Errorf("UD bw at 10ms delay = %.1f, at 0 = %.1f; want near-equal", bw10ms, bw0)
	}
}

func TestUDDropsWithoutRecv(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	cqa, cqb := NewCQ(env), NewCQ(env)
	qa := a.CreateQP(cqa, QPConfig{Transport: UD})
	qb := b.CreateQP(cqb, QPConfig{Transport: UD})
	qa.PostSend(SendWR{Op: OpSend, Len: 100, DestLID: b.LID(), DestQPN: qb.QPN()})
	env.Run()
	if qb.Stats().RecvDrops != 1 {
		t.Errorf("RecvDrops = %d, want 1", qb.Stats().RecvDrops)
	}
}

func TestUDOversizePanics(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	_ = env
	cq := NewCQ(env)
	qa := a.CreateQP(cq, QPConfig{Transport: UD})
	defer func() {
		if recover() == nil {
			t.Fatal("oversize UD send did not panic")
		}
	}()
	qa.PostSend(SendWR{Op: OpSend, Len: MaxUDPayload + 1, DestLID: b.LID()})
}

func TestRCRetransmissionRecoversFromLoss(t *testing.T) {
	env, _, a, b, l := backToBack(t)
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{RetryTimeout: 100 * sim.Microsecond})
	// Drop the 3rd wire packet once.
	n := 0
	l.DropFn = func(_ sim.Time, wire int) bool {
		n++
		return n == 3
	}
	data := make([]byte, 3*MTU) // 3 data packets
	for i := range data {
		data[i] = byte(i)
	}
	buf := make([]byte, len(data))
	var got bool
	env.Go("recv", func(p *sim.Proc) {
		qb.PostRecv(RecvWR{Buf: buf})
		qb.CQ().Poll(p)
		got = true
	})
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpSend, Data: data})
		qa.CQ().Poll(p)
	})
	env.Run()
	if !got {
		t.Fatal("message never delivered despite retransmission")
	}
	if !bytes.Equal(buf, data) {
		t.Error("retransmitted payload corrupted")
	}
	if qa.Stats().Retransmits == 0 {
		t.Error("no retransmission recorded")
	}
	if l.Drops() != 1 {
		t.Errorf("link drops = %d, want 1", l.Drops())
	}
}

func TestRCRetransmissionLostAck(t *testing.T) {
	env, _, a, b, l := backToBack(t)
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{RetryTimeout: 100 * sim.Microsecond})
	// Drop exactly the first ack (acks are AckBytes on the wire).
	dropped := false
	l.DropFn = func(_ sim.Time, wire int) bool {
		if wire == AckBytes && !dropped {
			dropped = true
			return true
		}
		return false
	}
	recvd := 0
	env.Go("recv", func(p *sim.Proc) {
		qb.PostRecv(RecvWR{})
		qb.CQ().Poll(p)
		recvd++
	})
	env.Go("send", func(p *sim.Proc) {
		qa.PostSend(SendWR{Op: OpSend, Len: 64})
		qa.CQ().Poll(p)
	})
	env.Run()
	if recvd != 1 {
		t.Errorf("message delivered %d times, want exactly once", recvd)
	}
	if !dropped {
		t.Error("ack was never dropped; test ineffective")
	}
}

func TestSwitchRouting(t *testing.T) {
	// a - sw1 - sw2 - b ; c hangs off sw1.
	env := sim.NewEnv()
	f := NewFabric(env)
	a, b, c := f.AddHCA("a"), f.AddHCA("b"), f.AddHCA("c")
	sw1 := f.AddSwitch("sw1", SwitchDelay)
	sw2 := f.AddSwitch("sw2", SwitchDelay)
	f.Connect(a, sw1, DDR, DefaultCableDelay)
	f.Connect(c, sw1, DDR, DefaultCableDelay)
	f.Connect(sw1, sw2, DDR, DefaultCableDelay)
	f.Connect(sw2, b, DDR, DefaultCableDelay)
	f.Finalize()
	qab, qba := CreateRCPair(a, b, nil, nil, QPConfig{})
	qac, qca := CreateRCPair(a, c, nil, nil, QPConfig{})
	okB, okC := false, false
	env.Go("b", func(p *sim.Proc) {
		qba.PostRecv(RecvWR{})
		qba.CQ().Poll(p)
		okB = true
	})
	env.Go("c", func(p *sim.Proc) {
		qca.PostRecv(RecvWR{})
		qca.CQ().Poll(p)
		okC = true
	})
	env.Go("a", func(p *sim.Proc) {
		qab.PostSend(SendWR{Op: OpSend, Len: 10})
		qac.PostSend(SendWR{Op: OpSend, Len: 10})
		qab.CQ().Poll(p)
		qac.CQ().Poll(p)
	})
	env.Run()
	if !okB || !okC {
		t.Errorf("routing failed: b=%v c=%v", okB, okC)
	}
}

func TestLongbowPairAddsAboutFiveMicroseconds(t *testing.T) {
	// Paper Fig. 3: the Longbow pair adds ~5 us to small-message latency.
	lat := func(withWAN bool) sim.Time {
		env := sim.NewEnv()
		f := NewFabric(env)
		a, b := f.AddHCA("a"), f.AddHCA("b")
		if withWAN {
			lba := f.AddSwitch("lbA", 2500*sim.Nanosecond)
			lbb := f.AddSwitch("lbB", 2500*sim.Nanosecond)
			f.Connect(a, lba, DDR, DefaultCableDelay)
			f.Connect(lba, lbb, SDR, 0)
			f.Connect(lbb, b, DDR, DefaultCableDelay)
		} else {
			f.Connect(a, b, DDR, DefaultCableDelay)
		}
		f.Finalize()
		qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
		return pingPong(env, qa, qb, 8, 50)
	}
	base := lat(false)
	wan := lat(true)
	added := wan - base
	if added < 4*sim.Microsecond || added > 7*sim.Microsecond {
		t.Errorf("Longbow pair adds %v, want ~5us (base %v, wan %v)", added, base, wan)
	}
}

// Property: RC delivers any random message sequence exactly once, in order,
// bytes intact.
func TestPropRCReliableInOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env, _, a, b, _ := backToBack(t)
		qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{MaxInflight: 1 + rng.Intn(8)})
		n := 1 + rng.Intn(20)
		msgs := make([][]byte, n)
		for i := range msgs {
			msgs[i] = make([]byte, 1+rng.Intn(10000))
			rng.Read(msgs[i])
		}
		bufs := make([][]byte, n)
		ok := true
		env.Go("recv", func(p *sim.Proc) {
			for i := range msgs {
				bufs[i] = make([]byte, len(msgs[i]))
				qb.PostRecv(RecvWR{Buf: bufs[i], Ctx: i})
			}
			for range msgs {
				c := qb.CQ().Poll(p)
				i := c.Ctx.(int)
				if c.Bytes != len(msgs[i]) {
					ok = false
				}
			}
		})
		env.Go("send", func(p *sim.Proc) {
			for i := range msgs {
				qa.PostSend(SendWR{Op: OpSend, Data: msgs[i]})
			}
			for range msgs {
				qa.CQ().Poll(p)
			}
		})
		env.Run()
		for i := range msgs {
			if !bytes.Equal(bufs[i], msgs[i]) {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: RDMA writes at random offsets land exactly where aimed.
func TestPropRDMAWriteOffsets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env, _, a, b, _ := backToBack(t)
		qa, _ := CreateRCPair(a, b, nil, nil, QPConfig{})
		region := make([]byte, 1<<16)
		want := make([]byte, 1<<16)
		mr := b.RegisterMR(region)
		n := 1 + rng.Intn(10)
		type w struct {
			off  int
			data []byte
		}
		writes := make([]w, n)
		for i := range writes {
			l := 1 + rng.Intn(8000)
			off := rng.Intn(len(region) - l)
			d := make([]byte, l)
			rng.Read(d)
			writes[i] = w{off, d}
		}
		env.Go("writer", func(p *sim.Proc) {
			for _, wr := range writes {
				qa.PostSend(SendWR{Op: OpRDMAWrite, Data: wr.data, RemoteMR: mr, RemoteOff: wr.off})
				qa.CQ().Poll(p) // serialize so overlapping writes apply in order
				copy(want[wr.off:], wr.data)
			}
		})
		env.Run()
		return bytes.Equal(region, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	env, _, a, b, _ := backToBack(t)
	qa, qb := CreateRCPair(a, b, nil, nil, QPConfig{})
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			qb.PostRecv(RecvWR{})
		}
		for i := 0; i < 3; i++ {
			qb.CQ().Poll(p)
		}
	})
	env.Go("send", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			qa.PostSend(SendWR{Op: OpSend, Len: 1000})
		}
		for i := 0; i < 3; i++ {
			qa.CQ().Poll(p)
		}
	})
	env.Run()
	if s := qa.Stats(); s.MsgsSent != 3 || s.BytesSent != 3000 {
		t.Errorf("sender stats = %+v", s)
	}
	if s := qb.Stats(); s.MsgsRecv != 3 || s.BytesRecv != 3000 || s.Acks != 3 {
		t.Errorf("receiver stats = %+v", s)
	}
}
