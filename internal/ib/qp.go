package ib

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Transport selects the QP service type.
type Transport int

const (
	// RC is Reliable Connected: in-order, acknowledged delivery of
	// messages up to 2 GB, supporting both channel and memory (RDMA)
	// semantics. In-flight unacknowledged messages are bounded by
	// QPConfig.MaxInflight — the window whose interaction with WAN delay
	// the paper studies.
	RC Transport = iota
	// UD is Unreliable Datagram: connectionless single-MTU messages with
	// no acknowledgements and no RDMA support.
	UD
)

func (t Transport) String() string {
	if t == RC {
		return "RC"
	}
	return "UD"
}

// QPConfig carries queue pair tuning knobs.
type QPConfig struct {
	Transport Transport
	// MaxInflight bounds the number of in-flight (unacknowledged)
	// messages on an RC QP; 0 selects DefaultMaxInflight. The paper
	// explains RC's WAN bandwidth collapse for small/medium messages by
	// exactly this bound ("limits the number of messages that can be in
	// flight to a maximum supported window size", §3.2.2).
	MaxInflight int
	// RetryTimeout is the base RC retransmission timeout; 0 selects
	// DefaultRetryTimeout. Retransmission only occurs under fault
	// injection (lossy Link.DropFn), as in real IB cables bit errors are
	// rare. Successive retries of the same message back off
	// exponentially from this base (doubling per attempt, capped at 64x).
	RetryTimeout sim.Time
	// RetryLimit bounds the number of retransmissions of one message
	// before the QP gives up: the failed work request completes with
	// StatusRetryExceeded and the QP transitions to the error state,
	// flushing everything behind it (StatusFlushed). 0 selects
	// DefaultRetryLimit; a negative value retries forever (the
	// pre-fault-layer behavior, useful only in tests).
	RetryLimit int
}

// DefaultMaxInflight is the default RC send window in messages, calibrated
// so that the paper's Figure 5 knees reproduce (64 KB messages collapse at
// 1000 us one-way delay while >=1 MB messages sustain wire rate).
const DefaultMaxInflight = 8

// DefaultRetryTimeout is the default RC retransmission timeout.
const DefaultRetryTimeout = 500 * sim.Millisecond

// DefaultRetryLimit is the default RC retry budget, matching the 3-bit
// retry counter (max 7) real HCAs program into the QP.
const DefaultRetryLimit = 7

// maxBackoffShift caps the exponential retry backoff at base << 6 (64x).
const maxBackoffShift = 6

// SendWR is a send-side work request.
type SendWR struct {
	Op   Opcode
	Data []byte // payload (nil for synthetic perf traffic)
	Len  int    // payload length when Data is nil; ignored otherwise
	// RDMA target (write: destination; read: source).
	RemoteMR  *MR
	RemoteOff int
	// LocalBuf receives data for RDMA read.
	LocalBuf []byte
	// UD addressing (ignored for RC).
	DestLID LID
	DestQPN int
	Ctx     any
	// Meta is an opaque tag delivered to the receiver alongside the
	// message (Completion.Meta). Upper-layer protocol models (IPoIB/TCP,
	// RPC) use it to carry typed headers without byte marshaling; it has
	// no wire footprint beyond Len/Data.
	Meta any
	// NotifyRemote, for RDMA writes, raises a completion on the remote CQ
	// when the data lands, without consuming a receive WQE — modeling
	// RDMA-write-with-immediate or the memory-polling used by
	// ib_write_lat-style benchmarks.
	NotifyRemote bool
	// ParentSpan nests the operation's verbs-layer telemetry span under an
	// upper-layer protocol span (MPI phase, NFS RPC). The zero value is a
	// root span; the field is ignored when observation is off.
	ParentSpan telemetry.SpanRef
}

func (wr *SendWR) payloadLen() int {
	if wr.Data != nil {
		return len(wr.Data)
	}
	return wr.Len
}

// RecvWR is a receive-side work request.
type RecvWR struct {
	Buf []byte // filled with message payload when non-nil
	Ctx any
}

// Completion is a CQ entry.
type Completion struct {
	Op     Opcode
	Status Status
	Bytes  int
	Ctx    any
	QPN    int
	SrcQPN int // for receives: originating QP
	SrcLID LID // for receives: originating HCA
	// Meta is the sender's SendWR.Meta tag (receive completions only).
	Meta any
	// ECN reports that at least one packet of the inbound transfer carried
	// the congestion-experienced mark from a bounded link queue (receive
	// completions only). Upper layers (IPoIB -> tcpsim, SDP) use it as
	// their congestion signal.
	ECN bool
}

// CQ is a completion queue processes can block on. Entries and parked
// pollers live in ring buffers, and poll events are recycled through the
// environment's freelist, so steady-state completion traffic allocates
// nothing.
type CQ struct {
	env     *sim.Env
	items   sim.Ring[Completion]
	waiters sim.Ring[*sim.Event]
}

// NewCQ creates a completion queue.
func NewCQ(env *sim.Env) *CQ { return &CQ{env: env} }

func (c *CQ) post(comp Completion) {
	c.items.Push(comp)
	if c.waiters.Len() > 0 {
		c.waiters.Pop().Trigger(nil)
	}
}

// Poll blocks the calling process until a completion is available and
// returns it.
func (c *CQ) Poll(p *sim.Proc) Completion {
	for c.items.Len() == 0 {
		ev := c.env.AcquireEvent()
		c.waiters.Push(ev)
		p.Wait(ev)
		c.env.ReleaseEvent(ev)
	}
	return c.items.Pop()
}

// TryPoll returns a completion if one is pending.
func (c *CQ) TryPoll() (Completion, bool) {
	if c.items.Len() == 0 {
		return Completion{}, false
	}
	return c.items.Pop(), true
}

// Len returns the number of pending completions.
func (c *CQ) Len() int { return c.items.Len() }

// Stats counts per-QP protocol events.
type Stats struct {
	MsgsSent     int64
	BytesSent    int64
	MsgsRecv     int64
	BytesRecv    int64
	Acks         int64
	RNRBuffered  int64 // sends that arrived before a recv was posted
	RecvDrops    int64 // UD datagrams dropped for lack of a recv
	Retransmits  int64
	ReadRequests int64
	// RetryExhausted counts work requests completed with
	// StatusRetryExceeded (retry budget ran out).
	RetryExhausted int64
	// Flushed counts work requests completed with StatusFlushed after the
	// QP entered the error state.
	Flushed int64
}

// QP is a queue pair.
type QP struct {
	hca *HCA
	qpn int
	cfg QPConfig
	cq  *CQ

	// RC connection state.
	remote *QP
	// errored is the QP error state: set when a message exhausts its
	// retry budget. An errored QP completes every queued, in-flight and
	// subsequently posted work request with StatusFlushed and ignores
	// arriving packets, exactly like a real QP in IBV_QPS_ERR.
	errored bool

	// Sender state.
	sendQ    sim.Ring[*transfer]
	inflight map[int64]*transfer
	seqTx    int64 // next message sequence to assign (this direction)

	// Receiver state.
	recvQ   sim.Ring[RecvWR]
	pending sim.Ring[*transfer] // completed inbound sends waiting for a recv WQE
	seqRx   int64               // next message sequence to deliver
	reorder map[int64]*transfer

	// Cached func(any) handlers, created once per QP so the protocol's
	// pipeline stages (packet processing, send/recv overheads, ack
	// emission) schedule through sim.Env.AtArg without allocating a
	// closure per message or per packet.
	recvArg      func(any) // consume + recycle an arriving packet
	launchArg    func(any) // transmit a transfer after SendOverhead
	ackArg       func(any) // emit an ack after RecvOverheadSR
	writeDoneArg func(any) // RDMA write responder completion
	readDoneArg  func(any) // RDMA read requester completion
	readServeArg func(any) // RDMA read responder data streaming
	recvCompArg  func(any) // recv WQE completion posting
	udSendArg    func(any) // UD datagram transmission

	stats Stats
}

// CreateQP creates a queue pair on the HCA bound to the given completion
// queue. RC QPs must be connected with ConnectRC before use.
func (h *HCA) CreateQP(cq *CQ, cfg QPConfig) *QP {
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.RetryTimeout == 0 {
		cfg.RetryTimeout = DefaultRetryTimeout
	}
	if cfg.RetryLimit == 0 {
		cfg.RetryLimit = DefaultRetryLimit
	}
	qp := &QP{hca: h, qpn: int(h.fab.nextQPN.Add(1)), cfg: cfg, cq: cq,
		inflight: make(map[int64]*transfer), reorder: make(map[int64]*transfer)}
	qp.recvArg = func(v any) {
		pkt := v.(*packet)
		qp.receive(pkt)
		h.fab.freePacket(pkt)
	}
	qp.launchArg = func(v any) { qp.launchBody(v.(*transfer)) }
	qp.ackArg = func(v any) { qp.ackSend(v.(*transfer)) }
	qp.writeDoneArg = func(v any) { qp.writeDone(v.(*transfer)) }
	qp.readDoneArg = func(v any) { qp.readDone(v.(*transfer)) }
	qp.readServeArg = func(v any) { qp.readServe(v.(*transfer)) }
	qp.recvCompArg = func(v any) { qp.recvComp(v.(*transfer)) }
	qp.udSendArg = func(v any) { qp.udSend(v.(*transfer)) }
	h.qps[qp.qpn] = qp
	return qp
}

// ConnectRC connects two RC QPs (one on each HCA) as a reliable connection.
func ConnectRC(a, b *QP) {
	if a.cfg.Transport != RC || b.cfg.Transport != RC {
		panic("ib: ConnectRC requires RC QPs")
	}
	a.remote, b.remote = b, a
	a.hca.fab.ensureRouted()
}

// CreateRCPair is a convenience: create and connect an RC QP pair between
// two HCAs, each bound to its own new CQ when cqa/cqb are nil.
func CreateRCPair(a, b *HCA, cqa, cqb *CQ, cfg QPConfig) (*QP, *QP) {
	cfg.Transport = RC
	if cqa == nil {
		cqa = NewCQ(a.Env())
	}
	if cqb == nil {
		cqb = NewCQ(b.Env())
	}
	qa := a.CreateQP(cqa, cfg)
	qb := b.CreateQP(cqb, cfg)
	ConnectRC(qa, qb)
	return qa, qb
}

// QPN returns the queue pair number.
func (q *QP) QPN() int { return q.qpn }

// HCA returns the owning HCA.
func (q *QP) HCA() *HCA { return q.hca }

// CQ returns the completion queue.
func (q *QP) CQ() *CQ { return q.cq }

// Stats returns a snapshot of the QP's counters.
func (q *QP) Stats() Stats { return q.stats }

// Errored reports whether the QP is in the error state (a message
// exhausted its retry budget). An errored QP never recovers; upper layers
// observe the transition through StatusRetryExceeded/StatusFlushed
// completions and must tear down or fail over.
func (q *QP) Errored() bool { return q.errored }

// Config returns the QP configuration.
func (q *QP) Config() QPConfig { return q.cfg }

// PostRecv posts a receive work request.
func (q *QP) PostRecv(wr RecvWR) {
	q.recvQ.Push(wr)
	// Satisfy any buffered (RNR'd) sends in arrival order.
	for q.pending.Len() > 0 && q.recvQ.Len() > 0 {
		q.deliverSend(q.pending.Pop())
	}
}

// PostSend posts a send-side work request. The completion (on the QP's CQ)
// is raised when the operation finishes: for RC, when acknowledged (send,
// RDMA write) or when data lands (RDMA read); for UD, when the datagram has
// left the HCA.
func (q *QP) PostSend(wr SendWR) {
	switch q.cfg.Transport {
	case RC:
		q.rcPostSend(wr)
	case UD:
		q.udPostSend(wr)
	default:
		panic("ib: unknown transport")
	}
}

func (q *QP) receive(pkt *packet) {
	switch q.cfg.Transport {
	case RC:
		q.rcReceive(pkt)
	case UD:
		q.udReceive(pkt)
	}
}

// env returns the QP's scheduling environment: the owning HCA's home
// environment, i.e. the site shard view on a sharded fabric. All of a QP's
// protocol timers and pipeline stages run on this environment; the only
// cross-shard step is the wire delivery itself (Port.send → AtArgOn).
func (q *QP) env() *sim.Env { return q.hca.env }

func (q *QP) assertConnected() {
	if q.remote == nil {
		panic(fmt.Sprintf("ib: QP %d (%s) is not connected", q.qpn, q.hca.name))
	}
}
