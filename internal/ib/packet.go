package ib

type pktKind int

const (
	pktData pktKind = iota
	pktAck
	pktReadReq
	pktReadResp
)

// packet is a wire packet. Payload bytes are not carried per packet; the
// sender-side transfer context (msg) holds the data, which the responder
// materializes when the last packet of the transfer lands. This is valid
// because RC paths are FIFO and delivery is in order.
type packet struct {
	src, dst     LID
	srcQP, dstQP int
	kind         pktKind
	wire         int // total bytes on the wire (header + payload share)
	payload      int // payload bytes carried by this packet
	msg          *transfer
	seq          int // packet index within the transfer
	last         bool
}

// transfer is the sender-side context of one message / RDMA operation in
// flight on a QP.
type transfer struct {
	id     int64
	wr     SendWR
	size   int // payload length
	origin *QP // QP that initiated the transfer
	// qpSeq orders messages within one direction of a QP; the responder
	// delivers strictly in this order, which preserves RC's in-order
	// guarantee even when a retransmitted message arrives after its
	// successors.
	qpSeq   int64
	acked   bool
	retried int
	// inbound reassembly progress (responder side)
	got       int
	delivered bool
	// readData is the responder-side snapshot streamed back for RDMA read.
	readData []byte
	// data carried by a UD datagram (single packet).
	udData []byte
}
