package ib

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

type pktKind int

const (
	pktData pktKind = iota
	pktAck
	pktReadReq
	pktReadResp
)

// packet is a wire packet. Payload bytes are not carried per packet; the
// sender-side transfer context (msg) holds the data, which the responder
// materializes when the last packet of the transfer lands. This is valid
// because RC paths are FIFO and delivery is in order.
type packet struct {
	src, dst     LID
	srcQP, dstQP int
	kind         pktKind
	wire         int // total bytes on the wire (header + payload share)
	payload      int // payload bytes carried by this packet
	msg          *transfer
	seq          int // packet index within the transfer
	last         bool
	ud           bool // UD datagram (reported as pkt "ud" in traces)
	retx         bool // put on the wire by a retransmission
	// ecn is the congestion-experienced codepoint: set by a bounded link
	// queue at admission past its ECN threshold, accumulated onto the
	// receiving transfer, and surfaced to upper layers via Completion.ECN.
	ecn bool
}

// transfer is the sender-side context of one message / RDMA operation in
// flight on a QP.
type transfer struct {
	id     int64
	wr     SendWR
	size   int // payload length
	origin *QP // QP that initiated the transfer
	// qpSeq orders messages within one direction of a QP; the responder
	// delivers strictly in this order, which preserves RC's in-order
	// guarantee even when a retransmitted message arrives after its
	// successors.
	qpSeq   int64
	acked   bool
	retried int
	// epoch is the fabric routing epoch the latest transmission attempt
	// launched under. Reactive health detection only attributes a retry
	// timeout to the links of the current route when the attempt actually
	// ran on it — a timeout of an attempt that predates a re-sweep says
	// nothing about the replacement path (see healthState.noteTimeout).
	epoch int64
	// inbound reassembly progress (responder side)
	got       int
	delivered bool
	// ecn accumulates congestion-experienced marks from the transfer's
	// packets (responder-owned, like got) and rides into Completion.ECN.
	ecn bool
	// readData is the responder-side snapshot streamed back for RDMA read.
	readData []byte
	// data carried by a UD datagram (single packet).
	udData []byte
	// rwr is the receive WQE consumed by this transfer (send/recv
	// semantics), stashed here between delivery and the completion posting
	// so the receive-overhead stage can run through a cached arg-handler
	// instead of a per-message closure.
	rwr RecvWR

	// Freelist accounting (see Fabric.newTransfer). refs counts live
	// references from outside the QP state machines: wire packets carrying
	// this transfer plus scheduled protocol actions (overhead timers, ack
	// emissions) that captured it. senderDone/recvDone flag that the
	// initiating and responding endpoints have each finished with the
	// transfer. The transfer is recycled when all three say so. The three
	// are atomics because on a sharded world the two endpoints of a
	// WAN-crossing transfer run on different shards; everything else in the
	// struct is either endpoint-owned or handed across inside a packet,
	// whose mailbox crossing establishes the ordering.
	refs       atomic.Int32
	senderDone atomic.Bool
	recvDone   atomic.Bool

	// span is the verbs-layer telemetry span covering the operation from
	// post to completion (null when observation is off). WAN queue spans
	// parent under it, and upper layers parent it under their protocol
	// spans via SendWR.ParentSpan.
	span telemetry.SpanRef
}

// reset zeroes the transfer for freelist reuse. Field-by-field rather than
// a struct assignment: the atomics must not be copied.
func (t *transfer) reset() {
	t.id = 0
	t.wr = SendWR{}
	t.size = 0
	t.origin = nil
	t.qpSeq = 0
	t.acked = false
	t.retried = 0
	t.epoch = 0
	t.got = 0
	t.delivered = false
	t.ecn = false
	t.readData = nil
	t.udData = nil
	t.rwr = RecvWR{}
	t.refs.Store(0)
	t.senderDone.Store(false)
	t.recvDone.Store(false)
	t.span = telemetry.SpanRef{}
}
