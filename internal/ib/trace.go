package ib

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// TraceEvent describes one wire-level event on the fabric. Events are
// emitted at packet departure (tx), packet arrival at its destination
// device (rx), fault-injected or receiver-side drops, and RC retry-timeout
// expiries (rto).
type TraceEvent struct {
	Time  sim.Time `json:"t"`
	Kind  string   `json:"kind"` // tx, rx, drop, rto, err
	Src   LID      `json:"src"`
	Dst   LID      `json:"dst"`
	SrcQP int      `json:"srcqp"`
	DstQP int      `json:"dstqp"`
	Pkt   string   `json:"pkt"` // data, ack, readreq, readresp, ud
	Wire  int      `json:"wire"`
	Seq   int      `json:"seq"`
	// Msg is the fabric-unique transfer id the packet belongs to.
	Msg  int64 `json:"msg"`
	Last bool  `json:"last"`
	// Dev is the device observing the event (tx: sending device; rx:
	// receiving device).
	Dev string `json:"dev"`
	// Retx marks packets put on the wire by a retransmission.
	Retx bool `json:"retx,omitempty"`
	// Reason qualifies drop events ("fault": injected on the wire,
	// "no-recv": UD datagram with no posted receive, "overflow": tail-drop
	// at a full bounded link queue, "unreachable": no route), rto events
	// ("timeout") and err events ("retry-exceeded").
	Reason string `json:"reason,omitempty"`
}

// Tracer consumes trace events; it must not mutate simulation state.
type Tracer func(ev TraceEvent)

// SetTracer installs (or, with nil, removes) a fabric-wide tracer.
func (f *Fabric) SetTracer(t Tracer) { f.tracer = t }

func (k pktKind) String() string {
	switch k {
	case pktData:
		return "data"
	case pktAck:
		return "ack"
	case pktReadReq:
		return "readreq"
	case pktReadResp:
		return "readresp"
	}
	return "unknown"
}

func (f *Fabric) trace(kind string, dev Device, pkt *packet) {
	f.traceReason(kind, dev, pkt, "")
}

// traceReason emits a packet event with a qualifying reason (drops). Events
// flow to the installed Tracer and, when span recording is enabled, into
// the telemetry recorder's instant stream.
func (f *Fabric) traceReason(kind string, dev Device, pkt *packet, reason string) {
	folding := f.obs != nil && f.obs.rec != nil
	if f.tracer == nil && !folding {
		return
	}
	pk := pkt.kind.String()
	if pkt.ud {
		pk = "ud"
	}
	ev := TraceEvent{
		Time: f.env.Now(), Kind: kind,
		Src: pkt.src, Dst: pkt.dst, SrcQP: pkt.srcQP, DstQP: pkt.dstQP,
		Pkt: pk, Wire: pkt.wire, Seq: pkt.seq, Msg: pkt.msg.id, Last: pkt.last,
		Dev: dev.Name(), Retx: pkt.retx, Reason: reason,
	}
	if f.tracer != nil {
		f.tracer(ev)
	}
	if folding {
		f.obs.instant(dev, ev)
	}
}

// pktName is the wire packet kind a retransmission of the op would resend.
func (o Opcode) pktName() string {
	if o == OpRDMARead {
		return "readreq"
	}
	return "data"
}

// traceRTO emits a retry-timeout event. There is no packet at timer expiry,
// so the event is synthesized from the QP's connection state.
func (q *QP) traceRTO(t *transfer) {
	f := q.hca.fab
	folding := f.obs != nil && f.obs.rec != nil
	if f.tracer == nil && !folding {
		return
	}
	ev := TraceEvent{
		Time: f.env.Now(), Kind: "rto",
		Src: q.hca.lid, Dst: q.remote.hca.lid, SrcQP: q.qpn, DstQP: q.remote.qpn,
		Pkt: t.wr.Op.pktName(), Wire: 0, Msg: t.id, Last: true,
		Dev: q.hca.name, Reason: "timeout",
	}
	if f.tracer != nil {
		f.tracer(ev)
	}
	if folding {
		f.obs.instant(q.hca, ev)
	}
}

// traceGiveUp emits the retry-budget-exhausted event for the transfer that
// pushed the QP into the error state. Like traceRTO it is synthesized —
// there is no packet at budget exhaustion.
func (q *QP) traceGiveUp(t *transfer) {
	f := q.hca.fab
	folding := f.obs != nil && f.obs.rec != nil
	if f.tracer == nil && !folding {
		return
	}
	ev := TraceEvent{
		Time: f.env.Now(), Kind: "err",
		Src: q.hca.lid, Dst: q.remote.hca.lid, SrcQP: q.qpn, DstQP: q.remote.qpn,
		Pkt: t.wr.Op.pktName(), Wire: 0, Msg: t.id, Last: true,
		Dev: q.hca.name, Reason: "retry-exceeded",
	}
	if f.tracer != nil {
		f.tracer(ev)
	}
	if folding {
		f.obs.instant(q.hca, ev)
	}
}

// JSONLTracer returns a Tracer that writes one JSON object per line to w.
func JSONLTracer(w io.Writer) Tracer {
	enc := json.NewEncoder(w)
	return func(ev TraceEvent) {
		if err := enc.Encode(ev); err != nil {
			panic(fmt.Sprintf("ib: trace write: %v", err))
		}
	}
}

// CountingTracer tallies events by kind, for tests and quick accounting.
type CountingTracer struct {
	Tx, Rx, Drops int64
	WireBytes     int64
}

// Hook returns the Tracer function feeding the counters.
func (c *CountingTracer) Hook() Tracer {
	return func(ev TraceEvent) {
		switch ev.Kind {
		case "tx":
			c.Tx++
			c.WireBytes += int64(ev.Wire)
		case "rx":
			c.Rx++
		case "drop":
			c.Drops++
		}
	}
}
