package ib

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// TraceEvent describes one wire-level event on the fabric. Events are
// emitted at packet departure (tx), packet arrival at its destination
// device (rx), and fault-injected drops.
type TraceEvent struct {
	Time  sim.Time `json:"t"`
	Kind  string   `json:"kind"` // tx, rx, drop
	Src   LID      `json:"src"`
	Dst   LID      `json:"dst"`
	SrcQP int      `json:"srcqp"`
	DstQP int      `json:"dstqp"`
	Pkt   string   `json:"pkt"` // data, ack, readreq, readresp
	Wire  int      `json:"wire"`
	Seq   int      `json:"seq"`
	// Msg is the fabric-unique transfer id the packet belongs to.
	Msg  int64 `json:"msg"`
	Last bool  `json:"last"`
	// Dev is the device observing the event (tx: sending device; rx:
	// receiving device).
	Dev string `json:"dev"`
}

// Tracer consumes trace events; it must not mutate simulation state.
type Tracer func(ev TraceEvent)

// SetTracer installs (or, with nil, removes) a fabric-wide tracer.
func (f *Fabric) SetTracer(t Tracer) { f.tracer = t }

func (k pktKind) String() string {
	switch k {
	case pktData:
		return "data"
	case pktAck:
		return "ack"
	case pktReadReq:
		return "readreq"
	case pktReadResp:
		return "readresp"
	}
	return "unknown"
}

func (f *Fabric) trace(kind string, dev Device, pkt *packet) {
	if f.tracer == nil {
		return
	}
	f.tracer(TraceEvent{
		Time: f.env.Now(), Kind: kind,
		Src: pkt.src, Dst: pkt.dst, SrcQP: pkt.srcQP, DstQP: pkt.dstQP,
		Pkt: pkt.kind.String(), Wire: pkt.wire, Seq: pkt.seq, Msg: pkt.msg.id, Last: pkt.last,
		Dev: dev.Name(),
	})
}

// JSONLTracer returns a Tracer that writes one JSON object per line to w.
func JSONLTracer(w io.Writer) Tracer {
	enc := json.NewEncoder(w)
	return func(ev TraceEvent) {
		if err := enc.Encode(ev); err != nil {
			panic(fmt.Sprintf("ib: trace write: %v", err))
		}
	}
}

// CountingTracer tallies events by kind, for tests and quick accounting.
type CountingTracer struct {
	Tx, Rx, Drops int64
	WireBytes     int64
}

// Hook returns the Tracer function feeding the counters.
func (c *CountingTracer) Hook() Tracer {
	return func(ev TraceEvent) {
		switch ev.Kind {
		case "tx":
			c.Tx++
			c.WireBytes += int64(ev.Wire)
		case "rx":
			c.Rx++
		case "drop":
			c.Drops++
		}
	}
}
