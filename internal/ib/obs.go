package ib

import (
	"repro/internal/telemetry"
)

// fabObs caches the fabric's telemetry handles. It exists (non-nil) only
// when a telemetry session is attached to the fabric's environment, so the
// entire instrumented hot path is gated behind a single `f.obs != nil`
// pointer check — the disabled path costs nothing and allocates nothing.
// Metric handles may individually be nil (metrics disabled, spans enabled);
// their record methods are nil-safe no-ops.
type fabObs struct {
	rec *telemetry.Recorder

	wanTxBytes     *telemetry.Counter
	wanTxPkts      *telemetry.Counter
	wanBusy        *telemetry.Counter        // cumulative serialization (busy) time, ns
	wanQueueWait   *telemetry.Histogram      // egress queueing ahead of serialization, ns
	wanQueueWaitHi *telemetry.HiResHistogram // same site, percentile resolution
	wanUtilHist    *telemetry.Histogram      // per-packet busy-time share of elapsed time, permille
	rcWindow       *telemetry.Histogram      // in-flight window occupancy at launch
	rcWindowHi     *telemetry.HiResHistogram // same site, percentile resolution
	rcSendQ        *telemetry.Histogram      // send-queue depth behind the window
	rcRetransmits  *telemetry.Counter
	rcGiveUps      *telemetry.Counter // retry budgets exhausted
	qpErrors       *telemetry.Counter // QP error-state transitions
	udRecvDrops    *telemetry.Counter
	linkDrops      *telemetry.Counter

	// Bounded link queues (congestion model).
	wanQueueDepth    *telemetry.HiResHistogram // queue depth at admission, bytes
	wanECNMarks      *telemetry.Counter        // packets CE-marked at admission
	wanOverflowDrops *telemetry.Counter        // tail-drops at a full queue (emergent loss)
	wanCreditStalls  *telemetry.Counter        // packets held by lossless credit flow control

	// Self-healing routing layer (health.go).
	routeEpochs       *telemetry.Counter        // subnet re-sweeps after Finalize
	routeUnreachable  *telemetry.Counter        // packets dropped for lack of a route
	healthTransitions *telemetry.Counter        // debounced link verdict flips
	failoverNs        *telemetry.HiResHistogram // raw edge -> verdict latency, ns

	// Track caches: devices and ports are few and long-lived, so per-event
	// track resolution is a map hit.
	verbsTracks map[*HCA]telemetry.TrackID
	wireTracks  map[Device]telemetry.TrackID
	wanTracks   map[*Port]telemetry.TrackID
	// instNames interns "kind pkt" instant labels so the enabled wire path
	// does not concatenate per event.
	instNames map[[2]string]string
}

func newFabObs(tel *telemetry.Telemetry) *fabObs {
	m := tel.Metrics
	o := &fabObs{
		rec:        tel.Spans,
		wanTxBytes: m.Counter("wan.link.tx.bytes"),
		wanTxPkts:  m.Counter("wan.link.tx.pkts"),
		// Utilization is derived, not stored: the busy-time counter is
		// deterministic under concurrent points (a gauge here would be
		// last-write-wins) and the sampler/exporters divide per-interval
		// busy deltas by wall (sim) time.
		wanBusy:        m.Counter("wan.link.busy.ns"),
		wanQueueWait:   m.Histogram("wan.link.queue.wait.ns"),
		wanQueueWaitHi: m.HiRes("wan.link.queue.wait.ns"),
		wanUtilHist:    m.Histogram("wan.link.utilization.permille"),
		rcWindow:       m.Histogram("ib.rc.window.occupancy"),
		rcWindowHi:     m.HiRes("ib.rc.window.occupancy"),
		rcSendQ:        m.Histogram("ib.rc.sendq.depth"),
		rcRetransmits:  m.Counter("ib.rc.retransmits"),
		rcGiveUps:      m.Counter("ib.rc.retry.exhausted"),
		qpErrors:       m.Counter("ib.qp.errors"),
		udRecvDrops:    m.Counter("ib.ud.recv.drops"),
		linkDrops:      m.Counter("ib.link.drops"),

		wanQueueDepth:    m.HiRes("wan.link.queue.depth"),
		wanECNMarks:      m.Counter("wan.link.ecn.marks"),
		wanOverflowDrops: m.Counter("wan.link.overflow.drops"),
		wanCreditStalls:  m.Counter("wan.link.credit.stalls"),

		routeEpochs:       m.Counter("ib.route.epochs"),
		routeUnreachable:  m.Counter("ib.route.unreachable.drops"),
		healthTransitions: m.Counter("wan.link.health.transitions"),
		failoverNs:        m.HiRes("ib.route.failover.ns"),
	}
	if o.rec != nil {
		o.verbsTracks = make(map[*HCA]telemetry.TrackID)
		o.wireTracks = make(map[Device]telemetry.TrackID)
		o.wanTracks = make(map[*Port]telemetry.TrackID)
		o.instNames = make(map[[2]string]string)
	}
	return o
}

// verbsTrack is the per-HCA track carrying verbs operation spans.
func (o *fabObs) verbsTrack(h *HCA) telemetry.TrackID {
	id, ok := o.verbsTracks[h]
	if !ok {
		id = o.rec.Track(h.name, "verbs")
		o.verbsTracks[h] = id
	}
	return id
}

// wireTrack is the per-device track carrying wire-level instant events.
func (o *fabObs) wireTrack(dev Device) telemetry.TrackID {
	id, ok := o.wireTracks[dev]
	if !ok {
		id = o.rec.Track(dev.Name(), "wire")
		o.wireTracks[dev] = id
	}
	return id
}

// wanTrack is the per-WAN-port track carrying wan.xmit queue spans.
func (o *fabObs) wanTrack(p *Port) telemetry.TrackID {
	id, ok := o.wanTracks[p]
	if !ok {
		id = o.rec.Track(p.dev.Name(), "wan-queue")
		o.wanTracks[p] = id
	}
	return id
}

// instant folds one wire trace event into the span recorder's instant
// stream, so a Perfetto trace shows packet activity alongside the spans.
func (o *fabObs) instant(dev Device, ev TraceEvent) {
	key := [2]string{ev.Kind, ev.Pkt}
	name, ok := o.instNames[key]
	if !ok {
		name = ev.Kind + " " + ev.Pkt
		o.instNames[key] = name
	}
	o.rec.AddInstant(telemetry.Instant{
		Time: ev.Time, Track: o.wireTrack(dev), Name: name,
		Msg: ev.Msg, Wire: ev.Wire, Reason: ev.Reason,
	})
}

// verbsSpanName labels the verbs-layer span for an RC operation.
func verbsSpanName(op Opcode) string {
	switch op {
	case OpSend:
		return "verbs.send"
	case OpRDMAWrite:
		return "verbs.write"
	case OpRDMARead:
		return "verbs.read"
	}
	return "verbs.op"
}
