package ib

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Device is anything attached to the fabric: an HCA end node or a switch.
type Device interface {
	Name() string
	LID() LID
	ports() []*Port
	attach(p *Port)
	setLID(l LID)
	// receive is invoked when a packet arrives on one of the device's
	// ports (after link propagation, before device processing delay).
	receive(pkt *packet, on *Port)
	// routeTo returns the egress port toward the destination LID.
	routeTo(dst LID) *Port
	setRoute(dst LID, p *Port)
	// resetRoutes clears the routing table ahead of a re-sweep, so entries
	// toward now-unreachable destinations do not survive a routing epoch.
	resetRoutes()
	fabric() *Fabric
	// environment returns the device's home environment: the shard view it
	// was created under (see Fabric.UseEnv), or the fabric environment on
	// unsharded fabrics.
	environment() *sim.Env
}

// Fabric is an InfiniBand subnet: devices, links, LID assignment and
// routing. It plays the role of the subnet manager.
type Fabric struct {
	env *sim.Env
	// cur is the environment new devices are created on (UseEnv); it
	// defaults to env and only ever differs on sharded topologies, where
	// each site's devices live on that site's shard view.
	cur *sim.Env
	// sharded is set once UseEnv installs a view of a partitioned world:
	// from then on the id counters may be bumped from concurrent shards
	// (they are atomics) and the packet/transfer freelists are bypassed —
	// LIFO reuse across shards would race, and leaking to the GC is safe.
	sharded  bool
	devices  []Device
	byLID    map[LID]Device
	nextLID  LID
	nextQPN  atomic.Int64
	nextMsg  atomic.Int64
	nextMRID atomic.Int64
	routed   bool
	tracer   Tracer
	// health is non-nil once MonitorLink has registered a WAN link with the
	// self-healing layer (see health.go); routeEpoch counts re-sweeps and
	// unreachable counts packets dropped for lack of a route. Both are
	// atomics: on sharded fabrics they are bumped from shard events.
	health      *healthState
	routeEpoch  atomic.Int64
	unreachable atomic.Int64
	// obs is non-nil only when a telemetry session is attached to the
	// environment; every instrumented hot-path site is gated on this one
	// pointer, keeping the disabled path allocation-free.
	obs *fabObs

	// Freelists for wire packets and transfer contexts. They are plain
	// slices, not sync.Pools: a fabric belongs to exactly one simulation
	// environment and is only touched from that environment's scheduler,
	// so unsynchronized LIFO reuse is safe and — crucially — deterministic
	// (reuse order depends only on simulated traffic, never on GC timing
	// or OS scheduling).
	pktFree  []*packet
	xferFree []*transfer
}

// newPacket returns a packet from the freelist (or a fresh one). The caller
// overwrites every field; packets come back zeroed from freePacket. On a
// sharded fabric packets are always fresh: the freelist belongs to no
// single shard.
func (f *Fabric) newPacket() *packet {
	if f.sharded {
		return &packet{}
	}
	if n := len(f.pktFree); n > 0 {
		pkt := f.pktFree[n-1]
		f.pktFree = f.pktFree[:n-1]
		return pkt
	}
	return &packet{}
}

// freePacket recycles a packet at its terminal sink — after the destination
// QP consumed it, or when fault injection dropped it on the wire — and
// releases the packet's reference on its transfer.
func (f *Fabric) freePacket(pkt *packet) {
	t := pkt.msg
	*pkt = packet{}
	if !f.sharded {
		f.pktFree = append(f.pktFree, pkt)
	}
	if t != nil {
		f.unref(t)
	}
}

// newTransfer returns a zeroed transfer context carrying a fresh message id.
// Ids stay monotonic across recycling, so id-keyed state (QP inflight maps,
// retry timers) can never confuse two uses of the same memory.
func (f *Fabric) newTransfer() *transfer {
	id := f.nextMsg.Add(1)
	var t *transfer
	if n := len(f.xferFree); !f.sharded && n > 0 {
		t = f.xferFree[n-1]
		f.xferFree = f.xferFree[:n-1]
	} else {
		t = &transfer{}
	}
	t.id = id
	return t
}

// ref records a live reference to t: a packet on the wire carrying it, or a
// scheduled protocol action (overhead stage, ack emission) that captured it.
func (f *Fabric) ref(t *transfer) { t.refs.Add(1) }

// unref releases one reference and recycles t if it was the last and both
// endpoints are done. Transfers that never reach that state (e.g. a UD
// datagram lost on the wire, or work cut short by Env.Shutdown) simply fall
// back to the garbage collector — leaking to the GC is safe, recycling too
// early is not.
func (f *Fabric) unref(t *transfer) {
	if t.refs.Add(-1) < 0 {
		panic("ib: transfer reference count underflow")
	}
	f.maybeFree(t)
}

// maybeFree recycles t once nothing can touch it again: no wire packet or
// scheduled action references it, the initiator has completed it
// (senderDone) and the responder has finished with it (recvDone). Sharded
// fabrics never recycle (a transfer's last toucher can be either endpoint's
// shard); the transfer is left to the garbage collector.
func (f *Fabric) maybeFree(t *transfer) {
	if f.sharded {
		return
	}
	if t.refs.Load() == 0 && t.senderDone.Load() && t.recvDone.Load() {
		t.reset()
		f.xferFree = append(f.xferFree, t)
	}
}

// NewFabric creates an empty fabric on the given simulation environment.
// If the environment carries a telemetry attachment (telemetry.Attach), the
// fabric arms its instrumentation; otherwise observation costs nothing.
func NewFabric(env *sim.Env) *Fabric {
	f := &Fabric{env: env, cur: env, byLID: make(map[LID]Device), nextLID: 1}
	f.nextQPN.Store(1)
	if tel := telemetry.FromEnv(env); tel != nil && (tel.Metrics != nil || tel.Spans != nil) {
		f.obs = newFabObs(tel)
	}
	return f
}

// Env returns the simulation environment of the fabric.
func (f *Fabric) Env() *sim.Env { return f.env }

// UseEnv selects the environment subsequently created devices live on. On a
// sharded topology the compiler points it at each site's shard view before
// building that site, so every device's timers, handlers and queues stay on
// one shard; passing a view of a partitioned world also switches the fabric
// into sharded mode (atomic ids, no cross-shard freelist reuse). Devices
// already created are unaffected.
func (f *Fabric) UseEnv(env *sim.Env) {
	f.cur = env
	if env.Sharded() {
		f.sharded = true
	}
}

func (f *Fabric) addDevice(d Device) {
	d.setLID(f.nextLID)
	f.byLID[f.nextLID] = d
	f.nextLID++
	f.devices = append(f.devices, d)
	f.routed = false
}

// AddHCA creates a host channel adapter end node (on the UseEnv
// environment).
func (f *Fabric) AddHCA(name string) *HCA {
	h := &HCA{fab: f, env: f.cur, name: name, qps: make(map[int]*QP), mrs: make(map[int]*MR)}
	f.addDevice(h)
	return h
}

// AddSwitch creates a switch with the given forwarding latency (use
// ib.SwitchDelay for a normal cluster switch) on the UseEnv environment.
func (f *Fabric) AddSwitch(name string, forwardDelay sim.Time) *Switch {
	s := &Switch{fab: f, env: f.cur, name: name, fwd: forwardDelay, routes: make(map[LID]*Port)}
	f.addDevice(s)
	return s
}

// Connect joins two devices with a full-duplex link of the given data rate
// and one-way propagation delay, returning the link so callers (e.g. the
// WAN layer) can later adjust the delay. Each endpoint port lives on its
// device's environment; when the two differ (a WAN link between shards)
// delivery crosses through the kernel's mailbox path, and the propagation
// delay must honor the world's registered lookahead bound.
func (f *Fabric) Connect(a, b Device, rate Rate, prop sim.Time) *Link {
	l := &Link{env: f.env, rate: rate, prop: prop}
	pa := newPort(a.environment(), a, l)
	pb := newPort(b.environment(), b, l)
	pa.peer, pb.peer = pb, pa
	l.a, l.b = pa, pb
	a.attach(pa)
	b.attach(pb)
	f.routed = false
	return l
}

// Finalize computes routing tables (shortest path by hop count, BFS) for
// every device toward every LID. It must be called after topology changes
// and before traffic flows; CreateRC/CreateUD call it implicitly.
func (f *Fabric) Finalize() {
	f.resweep(f.devices, nil)
	f.routed = true
}

// resweep recomputes the routing tables of devs from scratch. A non-nil
// excluded predicate removes links from consideration (the health monitor
// excludes dead links, making each call a new routing epoch). The sweep
// reads only the immutable port/link graph and writes only the tables of
// the devices it was given, so on a sharded fabric each shard re-sweeps
// its own devices concurrently without synchronization.
func (f *Fabric) resweep(devs []Device, excluded func(*Link) bool) {
	for _, src := range devs {
		src.resetRoutes()
		// BFS from src over the device graph recording first hop.
		type hop struct {
			dev   Device
			first *Port
		}
		visited := map[Device]bool{src: true}
		var frontier []hop
		for _, p := range src.ports() {
			if p.peer == nil || (excluded != nil && excluded(p.link)) {
				continue
			}
			nb := p.peer.dev
			if !visited[nb] {
				visited[nb] = true
				src.setRoute(nb.LID(), p)
				frontier = append(frontier, hop{nb, p})
			}
		}
		for len(frontier) > 0 {
			var next []hop
			for _, h := range frontier {
				for _, p := range h.dev.ports() {
					if p.peer == nil || (excluded != nil && excluded(p.link)) {
						continue
					}
					nb := p.peer.dev
					if !visited[nb] {
						visited[nb] = true
						src.setRoute(nb.LID(), h.first)
						next = append(next, hop{nb, h.first})
					}
				}
			}
			frontier = next
		}
	}
}

func (f *Fabric) ensureRouted() {
	if !f.routed {
		f.Finalize()
	}
}

// DeviceByLID returns the device owning the LID (nil if unassigned).
func (f *Fabric) DeviceByLID(l LID) Device { return f.byLID[l] }

// Link is a full-duplex point-to-point cable between two ports. Each
// direction serializes packets at the link rate and delivers them after the
// propagation delay.
type Link struct {
	env  *sim.Env
	rate Rate
	prop sim.Time
	a, b *Port
	// DropFn, when non-nil, is consulted for every packet; returning true
	// drops the packet on the wire (fault injection). now is the sending
	// port's current virtual time — on sharded worlds the two ends of a WAN
	// link live on different shards, so the decision must be a function of
	// the passed time, not of state mutated by scheduled closures.
	DropFn func(now sim.Time, wireBytes int) bool
	// drops counts packets removed by DropFn (atomic: a WAN link's two
	// ports may transmit from different shards).
	drops atomic.Int64
	// wan marks the link as the long-haul WAN hop (see MarkWAN); the
	// telemetry layer records utilization and queue spans only there.
	wan bool
	// qcfg, when non-nil, bounds each direction's egress queue (see
	// ConfigureQueue). Nil keeps the seed model: an infinite FIFO where the
	// only delay is serialization behind busyUntil.
	qcfg *QueueConfig
	// ovfDrops counts packets tail-dropped at a full bounded queue. It is a
	// ledger disjoint from drops (injected faults) and from the fabric's
	// unreachable-route counter: emergent loss, not configured loss.
	ovfDrops atomic.Int64
	// ecnMarks counts packets CE-marked at admission (queue depth at or
	// beyond the ECN threshold).
	ecnMarks atomic.Int64
	// stalls counts packets held back by lossless credit flow control
	// instead of being dropped.
	stalls atomic.Int64
}

// QueueConfig bounds a link's per-direction egress queue. The zero value is
// invalid — links without an explicit configuration stay unbounded so the
// seed model (and the golden experiment output) is untouched.
type QueueConfig struct {
	// QueueBytes caps the bytes admitted but not yet fully serialized in
	// one direction. A packet that would exceed the cap is tail-dropped
	// (or stalled, when Lossless). A packet larger than the whole cap is
	// still admitted when the queue is empty, so oversized messages cannot
	// wedge a flow.
	QueueBytes int
	// ECN enables CE marking: packets admitted while the queue holds at
	// least ECNThreshold bytes carry a congestion-experienced codepoint to
	// the receiving endpoint instead of being dropped.
	ECN bool
	// ECNThreshold is the marking threshold in bytes. Zero with ECN set
	// selects QueueBytes/2 — a step mark deep enough that a single
	// window-limited flow's slow-start burst passes unmarked, while a
	// standing overload crosses it. The step function keeps marking a pure
	// function of queue state, so sharded runs need no per-port randomness
	// to stay byte-identical.
	ECNThreshold int
	// Lossless models IB credit-based link-level flow control: a packet
	// that finds the queue full waits for credits (queue drain) instead of
	// dropping, preserving the verbs layers' no-loss assumption on
	// configured fabrics.
	Lossless bool
}

// ConfigureQueue bounds both directions of the link with cfg. Call it after
// Connect and before traffic; the per-port queue state lives on each port's
// own environment, so on sharded worlds each direction's accounting stays
// shard-local and the determinism matrix holds at any worker count.
func (l *Link) ConfigureQueue(cfg QueueConfig) error {
	if cfg.QueueBytes <= 0 {
		return fmt.Errorf("ib: queue bytes must be positive, got %d", cfg.QueueBytes)
	}
	if cfg.ECNThreshold < 0 || cfg.ECNThreshold > cfg.QueueBytes {
		return fmt.Errorf("ib: ECN threshold %d outside queue bound %d", cfg.ECNThreshold, cfg.QueueBytes)
	}
	if cfg.ECN && cfg.ECNThreshold == 0 {
		cfg.ECNThreshold = cfg.QueueBytes / 2
		if cfg.ECNThreshold == 0 {
			cfg.ECNThreshold = 1
		}
	}
	l.qcfg = &cfg
	l.a.cong = newPortQueue(l.a)
	l.b.cong = newPortQueue(l.b)
	return nil
}

// Queue returns the link's queue configuration, or nil when unbounded.
func (l *Link) Queue() *QueueConfig { return l.qcfg }

// OverflowDrops returns the number of packets tail-dropped at a full
// bounded queue (disjoint from the injected-fault ledger, see Drops).
func (l *Link) OverflowDrops() int64 { return l.ovfDrops.Load() }

// ECNMarks returns the number of packets CE-marked at admission.
func (l *Link) ECNMarks() int64 { return l.ecnMarks.Load() }

// CreditStalls returns the number of packets held back by lossless credit
// flow control.
func (l *Link) CreditStalls() int64 { return l.stalls.Load() }

// MarkWAN labels the link as the WAN hop for telemetry purposes: its ports
// record utilization, queueing delay and wan.xmit spans when observation is
// enabled. The wan package marks the Longbow long-haul link.
func (l *Link) MarkWAN() { l.wan = true }

// SetDelay changes the one-way propagation delay (the Obsidian Longbow
// delay knob).
func (l *Link) SetDelay(d sim.Time) {
	if d < 0 {
		panic("ib: negative link delay")
	}
	l.prop = d
}

// Delay returns the one-way propagation delay.
func (l *Link) Delay() sim.Time { return l.prop }

// SetRate changes the link data rate. The fault layer uses it for WAN rate
// throttling (a degraded provider circuit); packets already serializing
// keep their departure times, later packets serialize at the new rate.
func (l *Link) SetRate(r Rate) error {
	if r <= 0 {
		return fmt.Errorf("ib: link rate must be positive, got %v", r)
	}
	l.rate = r
	return nil
}

// Rate returns the link data rate.
func (l *Link) Rate() Rate { return l.rate }

// Drops returns the number of packets dropped by fault injection.
func (l *Link) Drops() int64 { return l.drops.Load() }

// TxTotal returns the total wire bytes carried in both directions.
func (l *Link) TxTotal() int64 { return l.a.txBytes + l.b.txBytes }

// Port is one link endpoint on a device. Transmission is modeled with a
// busy-until horizon: each packet occupies the egress for wireBytes/rate and
// arrives at the peer one propagation delay after its serialization ends.
type Port struct {
	env       *sim.Env
	dev       Device
	link      *Link
	peer      *Port
	busyUntil sim.Time
	busyTime  sim.Time // cumulative serialization time (telemetry only)
	txBytes   int64
	txPkts    int64
	// deliverArg and sendArg are this port's packet handlers as long-lived
	// func(any) values, so per-packet scheduling (link propagation, switch
	// forwarding) rides the kernel's closure-free AtArg path.
	deliverArg func(any)
	sendArg    func(any)
	// cong holds the bounded-queue state for this direction when the link
	// has a QueueConfig; nil means the unbounded seed path.
	cong *portQueue
}

// portQueue is one direction's bounded egress queue. All state is touched
// only from the owning port's environment — on a sharded world that is the
// sender's shard, so admission, marking and drain are shard-local.
type portQueue struct {
	// depth is the bytes admitted and not yet fully serialized.
	depth int
	// sizes records admitted wire sizes in departure order. Drain events
	// read sizes rather than the packet itself: by the time a drain fires
	// at the departure instant, a zero-delay peer may already have consumed
	// (and freed) the packet.
	sizes sim.Ring[int]
	// waitq holds packets stalled on lossless credits, in arrival order.
	waitq sim.Ring[*packet]
	// drainArg is the long-lived drain handler for closure-free AtArg.
	drainArg func(any)
}

func newPortQueue(p *Port) *portQueue {
	q := &portQueue{}
	q.drainArg = func(any) { p.drain() }
	return q
}

func newPort(env *sim.Env, dev Device, link *Link) *Port {
	p := &Port{env: env, dev: dev, link: link}
	p.deliverArg = func(v any) { p.dev.receive(v.(*packet), p) }
	p.sendArg = func(v any) { p.send(v.(*packet)) }
	return p
}

// send serializes pkt onto the link toward the peer port. Links without a
// QueueConfig take the unbounded transmit path unchanged from the seed
// model; bounded links pass through admission control first.
func (p *Port) send(pkt *packet) {
	if p.cong != nil {
		p.sendBounded(pkt)
		return
	}
	p.transmit(pkt)
}

// sendBounded applies the bounded-queue admission decision: tail-drop (or a
// lossless credit stall) when the packet would overflow the queue, otherwise
// ECN marking and transmission.
func (p *Port) sendBounded(pkt *packet) {
	q := p.cong
	cfg := p.link.qcfg
	// A packet larger than the whole queue is admitted when the queue is
	// empty — otherwise it could never transmit at all.
	if q.depth > 0 && q.depth+pkt.wire > cfg.QueueBytes {
		fab := p.dev.fabric()
		if cfg.Lossless {
			// Credit-based link-level flow control: the next hop withholds
			// credits, so the packet waits for queue drain instead of
			// dropping. The verbs layers above never see loss.
			p.link.stalls.Add(1)
			if fab.obs != nil {
				fab.obs.wanCreditStalls.Add(1)
			}
			q.waitq.Push(pkt)
			return
		}
		p.link.ovfDrops.Add(1)
		if fab.obs != nil {
			fab.obs.wanOverflowDrops.Add(1)
		}
		fab.traceReason("drop", p.dev, pkt, "overflow")
		fab.freePacket(pkt)
		return
	}
	p.admit(pkt)
}

// admit books pkt into the bounded queue (marking it CE past the ECN
// threshold), transmits it, and schedules the drain that releases its bytes
// at the departure instant.
func (p *Port) admit(pkt *packet) {
	q := p.cong
	cfg := p.link.qcfg
	fab := p.dev.fabric()
	if cfg.ECN && q.depth >= cfg.ECNThreshold {
		pkt.ecn = true
		p.link.ecnMarks.Add(1)
		if fab.obs != nil {
			fab.obs.wanECNMarks.Add(1)
		}
	}
	q.depth += pkt.wire
	q.sizes.Push(pkt.wire)
	if fab.obs != nil {
		fab.obs.wanQueueDepth.Observe(int64(q.depth))
	}
	depart := p.transmit(pkt)
	p.env.AtArg(depart-p.env.Now(), q.drainArg, nil)
}

// drain releases one packet's bytes at its departure instant and re-admits
// any stalled packets that now fit. Drains are scheduled once per admission
// and fire in admission order (departure times are nondecreasing), so sizes
// pops pair up with the packets they booked even across mid-run rate
// changes.
func (p *Port) drain() {
	q := p.cong
	q.depth -= q.sizes.Pop()
	cfg := p.link.qcfg
	for q.waitq.Len() > 0 {
		head := *q.waitq.Front()
		if q.depth > 0 && q.depth+head.wire > cfg.QueueBytes {
			break
		}
		q.waitq.Pop()
		p.admit(head)
	}
}

// transmit is the serialization core shared by the bounded and unbounded
// paths: busy-until occupancy, telemetry, injected-fault drops, and
// propagation toward the peer. It returns the departure time (the instant
// the last bit leaves the port).
func (p *Port) transmit(pkt *packet) sim.Time {
	now := p.env.Now()
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	ser := sim.Time(float64(pkt.wire) / float64(p.link.rate) * 1e9)
	depart := start + ser
	p.busyUntil = depart
	p.txBytes += int64(pkt.wire)
	p.txPkts++
	fab := p.dev.fabric()
	if obs := fab.obs; obs != nil && p.link.wan {
		p.busyTime += ser
		obs.wanTxPkts.Add(1)
		obs.wanTxBytes.Add(int64(pkt.wire))
		obs.wanBusy.Add(int64(ser))
		obs.wanQueueWait.Observe(int64(start - now))
		obs.wanQueueWaitHi.Observe(int64(start - now))
		if depart > 0 {
			util := int64(1000 * float64(p.busyTime) / float64(depart))
			obs.wanUtilHist.Observe(util)
		}
		if obs.rec != nil {
			parent := telemetry.NoSpan
			if pkt.msg != nil {
				parent = pkt.msg.span
			}
			obs.rec.RecordAt(now, depart, obs.wanTrack(p), "wan.xmit", parent)
		}
	}
	fab.trace("tx", p.dev, pkt)
	if p.link.DropFn != nil && p.link.DropFn(now, pkt.wire) {
		p.link.drops.Add(1)
		if fab.obs != nil {
			fab.obs.linkDrops.Add(1)
		}
		fab.traceReason("drop", p.dev, pkt, "fault")
		fab.freePacket(pkt)
		return depart
	}
	arrive := depart + p.link.prop
	// The peer may live on another shard (the WAN hop of a sharded world);
	// AtArgOn degrades to plain AtArg when both ports share an environment.
	p.env.AtArgOn(p.peer.env, arrive-now, p.peer.deliverArg, pkt)
	return depart
}

// TxBytes returns the total wire bytes transmitted from this port.
func (p *Port) TxBytes() int64 { return p.txBytes }

// Switch is an IB switch (or, with a larger forwarding delay, an Obsidian
// Longbow WAN extender operating in switch mode).
type Switch struct {
	fab    *Fabric
	env    *sim.Env
	name   string
	lid    LID
	fwd    sim.Time
	plist  []*Port
	routes map[LID]*Port
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// LID returns the switch's local identifier.
func (s *Switch) LID() LID { return s.lid }

func (s *Switch) ports() []*Port          { return s.plist }
func (s *Switch) attach(p *Port)          { s.plist = append(s.plist, p) }
func (s *Switch) setLID(l LID)            { s.lid = l }
func (s *Switch) routeTo(dst LID) *Port   { return s.routes[dst] }
func (s *Switch) setRoute(d LID, p *Port) { s.routes[d] = p }
func (s *Switch) resetRoutes()            { s.routes = make(map[LID]*Port, len(s.routes)) }
func (s *Switch) fabric() *Fabric         { return s.fab }
func (s *Switch) environment() *sim.Env   { return s.env }

func (s *Switch) receive(pkt *packet, on *Port) {
	out := s.routes[pkt.dst]
	if out == nil {
		// No route in the current epoch: a failover transition window or a
		// true partition. Count the drop and error the owning QP instead of
		// crashing the process (see Fabric.dropUnreachable).
		s.fab.dropUnreachable(s, pkt)
		return
	}
	s.env.AtArg(s.fwd, out.sendArg, pkt)
}
