package ib_test

import (
	"testing"

	"repro/internal/ib"
	"repro/internal/sim"
)

// Repro: on a Lossless bounded link, a mid-transfer credit stall can let a
// later, smaller packet of the SAME transfer bypass the waitq and arrive
// first, breaking rcData's got accounting.
func TestLosslessIntraTransferReorder(t *testing.T) {
	env := sim.NewEnv()
	f := ib.NewFabric(env)
	a, b := f.AddHCA("a"), f.AddHCA("b")
	lk := f.Connect(a, b, ib.SDR, ib.DefaultCableDelay)
	f.Finalize()
	// Queue bound just over 2 MTU-sized packets: a multi-packet message
	// fills it, the next full packet stalls, and the small last packet
	// fits in the remaining headroom.
	if err := lk.ConfigureQueue(ib.QueueConfig{QueueBytes: 2*(ib.MTU+128) + 300, Lossless: true}); err != nil {
		t.Fatal(err)
	}
	qa, qb := ib.CreateRCPair(a, b, nil, nil, ib.QPConfig{
		RetryLimit: 3, RetryTimeout: 50 * sim.Millisecond, MaxInflight: 8,
	})
	const msgs = 4
	done := false
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			qb.PostRecv(ib.RecvWR{})
		}
		for i := 0; i < msgs; i++ {
			c := qb.CQ().Poll(p)
			if c.Status != ib.StatusOK {
				t.Errorf("recv %d: status %v", i, c.Status)
			}
		}
		done = true
		env.Stop()
	})
	env.Go("send", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			// size = 3*MTU + 100: packets MTU, MTU, MTU, 100 — last is tiny.
			qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: 3*ib.MTU + 100})
		}
		for i := 0; i < msgs; i++ {
			c := qa.CQ().Poll(p)
			if c.Status != ib.StatusOK {
				t.Errorf("send %d: status %v", i, c.Status)
			}
		}
	})
	env.Run()
	env.Shutdown()
	if stalls := lk.CreditStalls(); stalls == 0 {
		t.Skip("no stall occurred; repro geometry off")
	}
	if !done {
		t.Fatal("receiver never completed all messages on a lossless link")
	}
	if qa.Stats().Retries > 0 {
		t.Fatalf("lossless link forced %d retries (reordering broke got accounting)", qa.Stats().Retries)
	}
}
