package ib

import (
	"fmt"
	"sort"

	"repro/internal/telemetry"
)

// rcPostSend queues a work request on an RC QP and starts transmission if
// the window allows.
func (q *QP) rcPostSend(wr SendWR) {
	q.assertConnected()
	if q.errored {
		// QP in the error state: the request is flushed immediately
		// without touching the wire or the sequence space.
		q.stats.Flushed++
		q.cq.post(Completion{Op: wr.Op, Status: StatusFlushed, Bytes: wr.payloadLen(), Ctx: wr.Ctx, QPN: q.qpn})
		return
	}
	size := wr.payloadLen()
	switch wr.Op {
	case OpSend:
	case OpRDMAWrite:
		if wr.RemoteMR == nil {
			panic("ib: RDMA write without RemoteMR")
		}
		if wr.RemoteOff+size > wr.RemoteMR.Len() {
			panic(fmt.Sprintf("ib: RDMA write beyond MR bounds: off=%d len=%d mr=%d",
				wr.RemoteOff, size, wr.RemoteMR.Len()))
		}
	case OpRDMARead:
		if wr.RemoteMR == nil {
			panic("ib: RDMA read without RemoteMR")
		}
		if wr.LocalBuf != nil && len(wr.LocalBuf) < size {
			panic("ib: RDMA read local buffer too small")
		}
		if wr.RemoteOff+size > wr.RemoteMR.Len() {
			panic("ib: RDMA read beyond MR bounds")
		}
	default:
		panic("ib: bad opcode for PostSend")
	}
	t := q.hca.fab.newTransfer()
	t.wr = wr
	t.size = size
	t.origin = q
	t.qpSeq = -1
	if obs := q.hca.fab.obs; obs != nil {
		if obs.rec != nil {
			t.span = obs.rec.StartAt(q.env().Now(), obs.verbsTrack(q.hca), verbsSpanName(wr.Op), wr.ParentSpan)
		}
		obs.rcSendQ.Observe(int64(q.sendQ.Len()))
	}
	if wr.Op != OpRDMARead {
		// Sends and RDMA writes deliver at the responder in posted order.
		// Read requests are served out of the sequence stream (their
		// responses flow the other way), so they take no slot.
		t.qpSeq = q.seqTx
		q.seqTx++
	}
	q.sendQ.Push(t)
	q.kick()
}

// kick launches queued transfers while the in-flight window has room.
func (q *QP) kick() {
	if q.errored {
		return
	}
	obs := q.hca.fab.obs
	for len(q.inflight) < q.cfg.MaxInflight && q.sendQ.Len() > 0 {
		t := q.sendQ.Pop()
		q.inflight[t.id] = t
		if obs != nil {
			obs.rcWindow.Observe(int64(len(q.inflight)))
			obs.rcWindowHi.Observe(int64(len(q.inflight)))
		}
		q.launch(t)
	}
}

// launch schedules transmission of a transfer after the send-side overhead.
// For RDMA read, a single request packet is sent and the responder streams
// the data back.
func (q *QP) launch(t *transfer) {
	q.hca.fab.ref(t)
	q.env().AtArg(SendOverhead, q.launchArg, t)
}

// launchBody transmits all packets of a transfer (the SendOverhead stage).
func (q *QP) launchBody(t *transfer) {
	fab := q.hca.fab
	if fab.health != nil {
		// Stamp the attempt with the routing epoch it launches under, so a
		// later retry timeout is only attributed to the links of a route
		// the attempt actually took (see healthState.noteTimeout).
		t.epoch = fab.routeEpoch.Load()
	}
	port := q.hca.routeTo(q.remote.hca.lid)
	if t.wr.Op == OpRDMARead {
		q.stats.ReadRequests++
		pkt := fab.newPacket()
		*pkt = packet{
			src: q.hca.lid, dst: q.remote.hca.lid,
			srcQP: q.qpn, dstQP: q.remote.qpn,
			kind: pktReadReq, wire: ReadReqBytes, msg: t, last: true,
			retx: t.retried > 0,
		}
		fab.ref(t)
		port.send(pkt)
	} else {
		q.sendDataPackets(port, q.remote, t, pktData)
		q.stats.MsgsSent++
		q.stats.BytesSent += int64(t.size)
	}
	q.armRetry(t)
	fab.unref(t)
}

// sendDataPackets packetizes a transfer onto the wire toward dst.
func (q *QP) sendDataPackets(port *Port, dst *QP, t *transfer, kind pktKind) {
	fab := q.hca.fab
	n := (t.size + MTU - 1) / MTU
	if n == 0 {
		n = 1
	}
	remaining := t.size
	for i := 0; i < n; i++ {
		chunk := remaining
		if chunk > MTU {
			chunk = MTU
		}
		remaining -= chunk
		pkt := fab.newPacket()
		*pkt = packet{
			src: q.hca.lid, dst: dst.hca.lid,
			srcQP: q.qpn, dstQP: dst.qpn,
			kind: kind, wire: HeaderRC + chunk, payload: chunk,
			msg: t, seq: i, last: i == n-1,
			retx: t.retried > 0,
		}
		// Every caller holds its own reference on t for the duration of
		// this loop, so a fault-injected drop inside port.send (which
		// releases the packet's reference) can never recycle t mid-loop.
		fab.ref(t)
		port.send(pkt)
	}
}

// armRetry schedules a retransmission if the transfer is not acknowledged
// within the retry timeout. In a loss-free fabric this never fires. The
// timer captures the transfer id, not the transfer: ids are never reused,
// so a transfer acked and recycled during the (long) timeout is simply
// absent from the inflight map, and the timer holds nothing alive.
//
// Each retry doubles the timeout (capped at base << maxBackoffShift) and
// spends one unit of the QP's retry budget; when the budget runs out the
// transfer completes with StatusRetryExceeded and the QP errors instead
// of retransmitting forever (see retryExhausted).
func (q *QP) armRetry(t *transfer) {
	id := t.id
	shift := t.retried
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	q.env().At(q.cfg.RetryTimeout<<shift, func() {
		t, still := q.inflight[id]
		if !still || t.acked || q.errored {
			return
		}
		if q.cfg.RetryLimit >= 0 && t.retried >= q.cfg.RetryLimit {
			q.retryExhausted(t)
			return
		}
		t.retried++
		q.stats.Retransmits++
		if obs := q.hca.fab.obs; obs != nil {
			obs.rcRetransmits.Add(1)
		}
		q.traceRTO(t)
		// Feed reactive link-health detection before relaunching: if this
		// timeout pushes a monitored link on the path over its threshold,
		// the re-sweep below runs synchronously and the retransmission
		// resolves its route over the fresh tables.
		if h := q.hca.fab.health; h != nil {
			h.noteTimeout(q, t)
		}
		q.launch(t)
	})
}

// retryExhausted is the QP error transition: the transfer that ran out of
// retries completes with StatusRetryExceeded, then every other in-flight
// and queued work request flushes with StatusFlushed (in-flight first in
// posting order, then the send queue in order), exactly the completion
// stream a real HCA delivers when a QP enters the error state. The QP
// stays errored; later posts flush immediately in rcPostSend.
func (q *QP) retryExhausted(t *transfer) {
	q.errored = true
	q.stats.RetryExhausted++
	if obs := q.hca.fab.obs; obs != nil {
		obs.rcGiveUps.Add(1)
		obs.qpErrors.Add(1)
	}
	q.traceGiveUp(t)
	delete(q.inflight, t.id)
	t.acked = true // poison against late acks from earlier attempts
	q.endVerbsSpan(t)
	q.cq.post(Completion{Op: t.wr.Op, Status: StatusRetryExceeded, Bytes: t.size, Ctx: t.wr.Ctx, QPN: q.qpn})
	t.senderDone.Store(true)
	q.hca.fab.maybeFree(t)
	// Flush the rest of the in-flight window in posting (id) order — map
	// iteration order would be nondeterministic.
	ids := make([]int64, 0, len(q.inflight))
	for id := range q.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		q.flushTransfer(q.inflight[id])
	}
	for q.sendQ.Len() > 0 {
		q.flushTransfer(q.sendQ.Pop())
	}
}

// routeUnreachable errors the QP whose transfer hit a switch with no route
// in the current epoch (see Fabric.dropUnreachable). It reuses the
// retryExhausted transition, so the completion stream — StatusRetryExceeded
// for the doomed transfer, StatusFlushed for the rest in posting order — is
// identical whether a transfer dies by budget exhaustion or by explicit
// unreachability, and the rendered output of classic and sharded runs
// (where a cross-shard drop falls back to budget exhaustion) can only
// differ in timing the harness never prints.
func (q *QP) routeUnreachable(t *transfer) {
	if q.errored || q.cfg.Transport != RC {
		return
	}
	if _, still := q.inflight[t.id]; !still {
		return
	}
	q.retryExhausted(t)
}

// flushTransfer error-completes one work request of an errored QP.
func (q *QP) flushTransfer(t *transfer) {
	delete(q.inflight, t.id)
	t.acked = true
	q.stats.Flushed++
	q.endVerbsSpan(t)
	q.cq.post(Completion{Op: t.wr.Op, Status: StatusFlushed, Bytes: t.size, Ctx: t.wr.Ctx, QPN: q.qpn})
	t.senderDone.Store(true)
	q.hca.fab.maybeFree(t)
}

// rcReceive handles an arriving RC packet.
func (q *QP) rcReceive(pkt *packet) {
	if q.errored {
		// A QP in the error state silently discards arriving packets; in
		// particular a late ack for an attempt that did get through must
		// not complete a request already flushed in error. The caller
		// recycles the packet.
		return
	}
	switch pkt.kind {
	case pktData:
		q.rcData(pkt, false)
	case pktReadResp:
		q.rcData(pkt, true)
	case pktAck:
		q.rcAck(pkt)
	case pktReadReq:
		q.rcReadReq(pkt)
	}
}

// rcData reassembles inbound data packets; readResp marks RDMA read
// response data flowing back to the requester.
func (q *QP) rcData(pkt *packet, readResp bool) {
	t := pkt.msg
	if t.delivered {
		// Duplicate from a retransmission whose original completed but
		// whose ack was lost: re-acknowledge, do not redeliver.
		if pkt.last && !readResp {
			q.sendAck(t)
		}
		return
	}
	if pkt.ecn {
		t.ecn = true
	}
	if pkt.seq == 0 {
		t.got = pkt.payload
	} else {
		t.got += pkt.payload
	}
	if !pkt.last || t.got < t.size {
		return
	}
	// Transfer complete at this end.
	t.delivered = true
	if readResp {
		// Requester side of an RDMA read: land the data, complete the WR.
		// (Read responses are transport-internal and not part of the
		// forward message sequence.)
		if t.wr.LocalBuf != nil && t.readData != nil {
			copy(t.wr.LocalBuf, t.readData)
		}
		q.hca.fab.ref(t)
		q.env().AtArg(RecvOverheadRDMA, q.readDoneArg, t)
		return
	}
	// Deliver strictly in message-sequence order. A message that overtook
	// a retransmitted predecessor waits here, exactly as out-of-order
	// packets are discarded and resent in order on a real RC connection.
	if t.qpSeq != q.seqRx {
		q.reorder[t.qpSeq] = t
		return
	}
	q.deliverInOrder(t)
	for {
		next, ok := q.reorder[q.seqRx]
		if !ok {
			break
		}
		delete(q.reorder, q.seqRx)
		q.deliverInOrder(next)
	}
}

// readDone completes an RDMA read on the requester side (the
// RecvOverheadRDMA stage).
func (q *QP) readDone(t *transfer) {
	delete(q.inflight, t.id)
	t.acked = true
	q.endVerbsSpan(t)
	q.cq.post(Completion{Op: OpRDMARead, Status: StatusOK, Bytes: t.size, Ctx: t.wr.Ctx, QPN: q.qpn})
	t.senderDone.Store(true)
	q.kick()
	q.hca.fab.unref(t)
}

// endVerbsSpan closes the transfer's verbs-layer span at the current time.
func (q *QP) endVerbsSpan(t *transfer) {
	if obs := q.hca.fab.obs; obs != nil && obs.rec != nil {
		obs.rec.EndAt(q.env().Now(), t.span)
		t.span = telemetry.NoSpan
	}
}

// deliverInOrder applies a completed inbound transfer's effects.
func (q *QP) deliverInOrder(t *transfer) {
	q.seqRx++
	q.stats.MsgsRecv++
	q.stats.BytesRecv += int64(t.size)
	switch t.wr.Op {
	case OpSend:
		if q.recvQ.Len() == 0 {
			q.stats.RNRBuffered++
			q.pending.Push(t)
		} else {
			q.deliverSend(t)
		}
		q.sendAck(t)
	case OpRDMAWrite:
		if t.wr.Data != nil && t.wr.RemoteMR.Buf != nil {
			copy(t.wr.RemoteMR.Buf[t.wr.RemoteOff:], t.wr.Data)
		}
		q.hca.fab.ref(t)
		q.env().AtArg(RecvOverheadRDMA, q.writeDoneArg, t)
	}
}

// writeDone finishes an RDMA write on the responder side (the
// RecvOverheadRDMA stage): acknowledge and optionally notify.
func (q *QP) writeDone(t *transfer) {
	q.sendAckNow(t)
	if t.wr.NotifyRemote {
		q.cq.post(Completion{Op: OpRDMAWrite, Status: StatusOK, Bytes: t.size,
			QPN: q.qpn, SrcQPN: t.origin.qpn, SrcLID: t.origin.hca.lid, Meta: t.wr.Meta})
	}
	t.recvDone.Store(true)
	q.hca.fab.unref(t)
}

// deliverSend consumes a receive WQE for a completed inbound send.
func (q *QP) deliverSend(t *transfer) {
	rwr := q.recvQ.Pop()
	if rwr.Buf != nil && t.wr.Data != nil {
		copy(rwr.Buf, t.wr.Data)
	}
	t.rwr = rwr
	q.hca.fab.ref(t)
	q.env().AtArg(RecvOverheadSR, q.recvCompArg, t)
}

// recvComp posts the receive completion (the RecvOverheadSR stage).
func (q *QP) recvComp(t *transfer) {
	q.cq.post(Completion{Op: OpRecv, Status: StatusOK, Bytes: t.size, Ctx: t.rwr.Ctx, QPN: q.qpn, SrcQPN: t.origin.qpn, SrcLID: t.origin.hca.lid, Meta: t.wr.Meta, ECN: t.ecn})
	t.recvDone.Store(true)
	q.hca.fab.unref(t)
}

// sendAck acknowledges a completed inbound transfer after the
// channel-semantics receive overhead.
func (q *QP) sendAck(t *transfer) {
	q.hca.fab.ref(t)
	q.env().AtArg(RecvOverheadSR, q.ackArg, t)
}

// ackSend emits the ack (the RecvOverheadSR stage behind sendAck).
func (q *QP) ackSend(t *transfer) {
	q.sendAckNow(t)
	q.hca.fab.unref(t)
}

func (q *QP) sendAckNow(t *transfer) {
	q.stats.Acks++
	port := q.hca.routeTo(q.remote.hca.lid)
	fab := q.hca.fab
	pkt := fab.newPacket()
	*pkt = packet{
		src: q.hca.lid, dst: q.remote.hca.lid,
		srcQP: q.qpn, dstQP: q.remote.qpn,
		kind: pktAck, wire: AckBytes, msg: t, last: true,
	}
	fab.ref(t)
	port.send(pkt)
}

// rcAck completes the acknowledged transfer and slides the window.
func (q *QP) rcAck(pkt *packet) {
	t := pkt.msg
	if t.acked {
		return // duplicate ack after retransmission
	}
	t.acked = true
	delete(q.inflight, t.id)
	if h := q.hca.fab.health; h != nil {
		h.noteSuccess(q)
	}
	q.endVerbsSpan(t)
	q.cq.post(Completion{Op: t.wr.Op, Status: StatusOK, Bytes: t.size, Ctx: t.wr.Ctx, QPN: q.qpn})
	t.senderDone.Store(true)
	q.kick()
}

// rcReadReq serves an RDMA read: snapshot the region and stream it back as
// read-response data.
func (q *QP) rcReadReq(pkt *packet) {
	t := pkt.msg
	mr := t.wr.RemoteMR
	if mr.hca != q.hca {
		panic("ib: RDMA read targets MR on a different HCA")
	}
	if t.wr.LocalBuf != nil && mr.Buf != nil {
		t.readData = make([]byte, t.size)
		copy(t.readData, mr.Buf[t.wr.RemoteOff:t.wr.RemoteOff+t.size])
	}
	q.hca.fab.ref(t)
	q.env().AtArg(RecvOverheadRDMA, q.readServeArg, t)
}

// readServe streams RDMA read response data back to the requester (the
// responder's RecvOverheadRDMA stage).
func (q *QP) readServe(t *transfer) {
	port := q.hca.routeTo(q.remote.hca.lid)
	q.sendDataPackets(port, q.remote, t, pktReadResp)
	t.recvDone.Store(true)
	q.hca.fab.unref(t)
}
