package ib

import "fmt"

// rcPostSend queues a work request on an RC QP and starts transmission if
// the window allows.
func (q *QP) rcPostSend(wr SendWR) {
	q.assertConnected()
	size := wr.payloadLen()
	switch wr.Op {
	case OpSend:
	case OpRDMAWrite:
		if wr.RemoteMR == nil {
			panic("ib: RDMA write without RemoteMR")
		}
		if wr.RemoteOff+size > wr.RemoteMR.Len() {
			panic(fmt.Sprintf("ib: RDMA write beyond MR bounds: off=%d len=%d mr=%d",
				wr.RemoteOff, size, wr.RemoteMR.Len()))
		}
	case OpRDMARead:
		if wr.RemoteMR == nil {
			panic("ib: RDMA read without RemoteMR")
		}
		if wr.LocalBuf != nil && len(wr.LocalBuf) < size {
			panic("ib: RDMA read local buffer too small")
		}
		if wr.RemoteOff+size > wr.RemoteMR.Len() {
			panic("ib: RDMA read beyond MR bounds")
		}
	default:
		panic("ib: bad opcode for PostSend")
	}
	q.hca.fab.nextMsg++
	t := &transfer{id: q.hca.fab.nextMsg, wr: wr, size: size, origin: q, qpSeq: -1}
	if wr.Op != OpRDMARead {
		// Sends and RDMA writes deliver at the responder in posted order.
		// Read requests are served out of the sequence stream (their
		// responses flow the other way), so they take no slot.
		t.qpSeq = q.seqTx
		q.seqTx++
	}
	q.sendQ = append(q.sendQ, t)
	q.kick()
}

// kick launches queued transfers while the in-flight window has room.
func (q *QP) kick() {
	for len(q.inflight) < q.cfg.MaxInflight && len(q.sendQ) > 0 {
		t := q.sendQ[0]
		q.sendQ = q.sendQ[1:]
		q.inflight[t.id] = t
		q.launch(t, true)
	}
}

// launch transmits all packets of a transfer. For RDMA read, a single
// request packet is sent and the responder streams the data back.
func (q *QP) launch(t *transfer, first bool) {
	env := q.env()
	env.At(SendOverhead, func() {
		port := q.hca.routeTo(q.remote.hca.lid)
		if t.wr.Op == OpRDMARead {
			q.stats.ReadRequests++
			port.send(&packet{
				src: q.hca.lid, dst: q.remote.hca.lid,
				srcQP: q.qpn, dstQP: q.remote.qpn,
				kind: pktReadReq, wire: ReadReqBytes, msg: t, last: true,
			})
		} else {
			q.sendDataPackets(port, q.remote, t, pktData)
			q.stats.MsgsSent++
			q.stats.BytesSent += int64(t.size)
		}
		if first || t.retried > 0 {
			q.armRetry(t)
		}
	})
}

// sendDataPackets packetizes a transfer onto the wire toward dst.
func (q *QP) sendDataPackets(port *Port, dst *QP, t *transfer, kind pktKind) {
	n := (t.size + MTU - 1) / MTU
	if n == 0 {
		n = 1
	}
	remaining := t.size
	for i := 0; i < n; i++ {
		chunk := remaining
		if chunk > MTU {
			chunk = MTU
		}
		remaining -= chunk
		port.send(&packet{
			src: q.hca.lid, dst: dst.hca.lid,
			srcQP: q.qpn, dstQP: dst.qpn,
			kind: kind, wire: HeaderRC + chunk, payload: chunk,
			msg: t, seq: i, last: i == n-1,
		})
	}
}

// armRetry schedules a retransmission if the transfer is not acknowledged
// within the retry timeout. In a loss-free fabric this never fires.
func (q *QP) armRetry(t *transfer) {
	q.env().At(q.cfg.RetryTimeout, func() {
		if t.acked {
			return
		}
		if _, still := q.inflight[t.id]; !still {
			return
		}
		t.retried++
		q.stats.Retransmits++
		q.launch(t, false)
	})
}

// rcReceive handles an arriving RC packet.
func (q *QP) rcReceive(pkt *packet) {
	switch pkt.kind {
	case pktData:
		q.rcData(pkt, false)
	case pktReadResp:
		q.rcData(pkt, true)
	case pktAck:
		q.rcAck(pkt)
	case pktReadReq:
		q.rcReadReq(pkt)
	}
}

// rcData reassembles inbound data packets; readResp marks RDMA read
// response data flowing back to the requester.
func (q *QP) rcData(pkt *packet, readResp bool) {
	t := pkt.msg
	if t.delivered {
		// Duplicate from a retransmission whose original completed but
		// whose ack was lost: re-acknowledge, do not redeliver.
		if pkt.last && !readResp {
			q.sendAck(t)
		}
		return
	}
	if pkt.seq == 0 {
		t.got = pkt.payload
	} else {
		t.got += pkt.payload
	}
	if !pkt.last || t.got < t.size {
		return
	}
	// Transfer complete at this end.
	t.delivered = true
	if readResp {
		// Requester side of an RDMA read: land the data, complete the WR.
		// (Read responses are transport-internal and not part of the
		// forward message sequence.)
		if t.wr.LocalBuf != nil && t.readData != nil {
			copy(t.wr.LocalBuf, t.readData)
		}
		q.env().At(RecvOverheadRDMA, func() {
			delete(q.inflight, t.id)
			t.acked = true
			q.cq.post(Completion{Op: OpRDMARead, Status: StatusOK, Bytes: t.size, Ctx: t.wr.Ctx, QPN: q.qpn})
			q.kick()
		})
		return
	}
	// Deliver strictly in message-sequence order. A message that overtook
	// a retransmitted predecessor waits here, exactly as out-of-order
	// packets are discarded and resent in order on a real RC connection.
	if t.qpSeq != q.seqRx {
		q.reorder[t.qpSeq] = t
		return
	}
	q.deliverInOrder(t)
	for {
		next, ok := q.reorder[q.seqRx]
		if !ok {
			break
		}
		delete(q.reorder, q.seqRx)
		q.deliverInOrder(next)
	}
}

// deliverInOrder applies a completed inbound transfer's effects.
func (q *QP) deliverInOrder(t *transfer) {
	q.seqRx++
	q.stats.MsgsRecv++
	q.stats.BytesRecv += int64(t.size)
	switch t.wr.Op {
	case OpSend:
		if len(q.recvQ) == 0 {
			q.stats.RNRBuffered++
			q.pending = append(q.pending, t)
		} else {
			q.deliverSend(t)
		}
		q.sendAck(t)
	case OpRDMAWrite:
		if t.wr.Data != nil && t.wr.RemoteMR.Buf != nil {
			copy(t.wr.RemoteMR.Buf[t.wr.RemoteOff:], t.wr.Data)
		}
		q.env().At(RecvOverheadRDMA, func() {
			q.sendAckNow(t)
			if t.wr.NotifyRemote {
				q.cq.post(Completion{Op: OpRDMAWrite, Status: StatusOK, Bytes: t.size,
					QPN: q.qpn, SrcQPN: t.origin.qpn, SrcLID: t.origin.hca.lid, Meta: t.wr.Meta})
			}
		})
	}
}

// deliverSend consumes a receive WQE for a completed inbound send.
func (q *QP) deliverSend(t *transfer) {
	rwr := q.recvQ[0]
	q.recvQ = q.recvQ[1:]
	if rwr.Buf != nil && t.wr.Data != nil {
		copy(rwr.Buf, t.wr.Data)
	}
	q.env().At(RecvOverheadSR, func() {
		q.cq.post(Completion{Op: OpRecv, Status: StatusOK, Bytes: t.size, Ctx: rwr.Ctx, QPN: q.qpn, SrcQPN: t.origin.qpn, SrcLID: t.origin.hca.lid, Meta: t.wr.Meta})
	})
}

// sendAck acknowledges a completed inbound transfer after the
// channel-semantics receive overhead.
func (q *QP) sendAck(t *transfer) {
	q.env().At(RecvOverheadSR, func() { q.sendAckNow(t) })
}

func (q *QP) sendAckNow(t *transfer) {
	q.stats.Acks++
	port := q.hca.routeTo(q.remote.hca.lid)
	port.send(&packet{
		src: q.hca.lid, dst: q.remote.hca.lid,
		srcQP: q.qpn, dstQP: q.remote.qpn,
		kind: pktAck, wire: AckBytes, msg: t, last: true,
	})
}

// rcAck completes the acknowledged transfer and slides the window.
func (q *QP) rcAck(pkt *packet) {
	t := pkt.msg
	if t.acked {
		return // duplicate ack after retransmission
	}
	t.acked = true
	delete(q.inflight, t.id)
	q.cq.post(Completion{Op: t.wr.Op, Status: StatusOK, Bytes: t.size, Ctx: t.wr.Ctx, QPN: q.qpn})
	q.kick()
}

// rcReadReq serves an RDMA read: snapshot the region and stream it back as
// read-response data.
func (q *QP) rcReadReq(pkt *packet) {
	t := pkt.msg
	mr := t.wr.RemoteMR
	if mr.hca != q.hca {
		panic("ib: RDMA read targets MR on a different HCA")
	}
	if t.wr.LocalBuf != nil && mr.Buf != nil {
		t.readData = make([]byte, t.size)
		copy(t.readData, mr.Buf[t.wr.RemoteOff:t.wr.RemoteOff+t.size])
	}
	q.env().At(RecvOverheadRDMA, func() {
		port := q.hca.routeTo(q.remote.hca.lid)
		q.sendDataPackets(port, q.remote, t, pktReadResp)
	})
}
