// Package sdp models the Sockets Direct Protocol: stream-socket semantics
// carried natively on an InfiniBand reliable connection, bypassing the
// TCP/IP stack entirely. The paper's related work (Prescott & Taylor)
// characterizes the Obsidian Longbows with TTCP over SDP/IB and iSCSI over
// SDP/IB, "demonstrating that the Longbows are capable of high wire speed
// efficiency" — SDP is how sockets applications get verbs-level WAN
// throughput without the IPoIB host-processing ceiling.
//
// Two data paths are modeled, as in real SDP:
//
//   - bcopy: stream bytes are copied into bounce buffers and sent as RC
//     messages (cheap for small transfers, pays a per-byte copy at both
//     ends).
//   - zcopy: above a threshold the sender advertises the source region
//     (SrcAvail) and the receiver pulls it with RDMA read (zero copy, one
//     extra control round trip) — profitable exactly when transfers are
//     large.
package sdp

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/ib"
	"repro/internal/sim"
)

// Protocol constants.
const (
	// BcopyChunk is the bounce-buffer message size for the bcopy path.
	BcopyChunk = 32 << 10
	// DefaultZcopyThreshold is the transfer size at which the zcopy path
	// takes over (the sdp_zcopy_thresh default ballpark).
	DefaultZcopyThreshold = 64 << 10
	// CopyPerByteNanos is the bcopy memcpy cost per byte per side.
	CopyPerByteNanos = 0.4
	// CtrlBytes is the wire size of SDP control messages (SrcAvail,
	// RdmaRdCompl) and the per-message header share of data messages.
	CtrlBytes = 16
	// qpWindow is the RC send depth an SDP connection uses.
	qpWindow = 16
)

// message kinds on the wire.
type msgKind int

const (
	dataMsg msgKind = iota // bcopy payload
	srcAvailMsg
	rdmaDoneMsg
	connReqMsg
	connAckMsg
)

type wireMsg struct {
	kind msgKind
	data []byte // bcopy payload (nil = synthetic)
	size int
	mr   *ib.MR // SrcAvail: advertised source region
	dst  []byte // receiver-side landing buffer for the zcopy pull
	port int    // connReq
}

// Listener accepts SDP connections on a node.
type Listener struct {
	node    *cluster.Node
	port    int
	backlog *sim.Queue[*Conn]
}

// listeners maps (node, port) to listening sockets, standing in for the
// SDP port space. Node pointers are unique across simulations, so separate
// testbeds never collide; Close releases an entry. The map is the one piece
// of state shared between simulations, so it is mutex-guarded: the parallel
// experiment runner executes independent testbeds from multiple goroutines.
var (
	listenersMu sync.Mutex
	listeners   = map[listenerKey]*Listener{}
)

type listenerKey struct {
	node *cluster.Node
	port int
}

// Listen opens an SDP listening socket.
func Listen(node *cluster.Node, port int) *Listener {
	key := listenerKey{node, port}
	listenersMu.Lock()
	defer listenersMu.Unlock()
	if _, dup := listeners[key]; dup {
		panic(fmt.Sprintf("sdp: port %d already listening on %s", port, node.Name))
	}
	l := &Listener{node: node, port: port, backlog: sim.NewQueue[*Conn](node.HCA.Env(), 0)}
	listeners[key] = l
	return l
}

// Close releases the listening port.
func (l *Listener) Close() {
	listenersMu.Lock()
	defer listenersMu.Unlock()
	delete(listeners, listenerKey{l.node, l.port})
}

// Accept blocks until a connection arrives.
func (l *Listener) Accept(p *sim.Proc) *Conn {
	return l.backlog.Get(p)
}

// Conn is one end of an SDP stream.
type Conn struct {
	node  *cluster.Node
	qp    *ib.QP
	cq    *ib.CQ
	zthr  int
	sendQ *sim.Queue[*wireMsg] // serialized sender engine input

	// Receive side.
	recvBuf     []recvSpan
	recvBytes   int
	readWaiters []*sim.Event
	delivered   int64
	// ecnMarks counts inbound completions whose transfer carried a
	// congestion-experienced mark from a bounded link queue. SDP itself
	// rides RC (the fabric retransmits), so the mark is surfaced as a
	// congestion observable for callers that adapt stream counts or
	// zcopy thresholds rather than acted on here.
	ecnMarks int64

	// Zcopy bookkeeping.
	zpending map[*ib.MR]*sim.Event
}

type recvSpan struct {
	data []byte
	size int
}

// Dial connects to an SDP listener; the handshake costs one round trip.
func Dial(p *sim.Proc, node *cluster.Node, peer *cluster.Node, port int) *Conn {
	key := listenerKey{peer, port}
	listenersMu.Lock()
	l, ok := listeners[key]
	listenersMu.Unlock()
	if !ok {
		panic(fmt.Sprintf("sdp: nothing listening on %s:%d", peer.Name, port))
	}
	// Create the RC pair and both endpoints.
	ccq, scq := ib.NewCQ(node.HCA.Env()), ib.NewCQ(peer.HCA.Env())
	cqp, sqp := ib.CreateRCPair(node.HCA, peer.HCA, ccq, scq, ib.QPConfig{MaxInflight: qpWindow})
	client := newConn(node, cqp, ccq)
	server := newConn(peer, sqp, scq)
	// Handshake: REQ / ACK over the fresh connection.
	done := node.HCA.Env().NewEvent()
	client.zpending[nil] = done
	client.send(&wireMsg{kind: connReqMsg, size: CtrlBytes, port: port})
	l.backlog.TryPut(server)
	p.Wait(done)
	delete(client.zpending, nil)
	return client
}

func newConn(node *cluster.Node, qp *ib.QP, cq *ib.CQ) *Conn {
	c := &Conn{
		node:     node,
		qp:       qp,
		cq:       cq,
		zthr:     DefaultZcopyThreshold,
		sendQ:    sim.NewQueue[*wireMsg](node.HCA.Env(), 0),
		zpending: make(map[*ib.MR]*sim.Event),
	}
	for i := 0; i < 64; i++ {
		qp.PostRecv(ib.RecvWR{})
	}
	env := node.HCA.Env()
	// Sender engine: serializes bcopy copies and posts.
	env.Go("sdp-tx-"+node.Name, func(p *sim.Proc) {
		for {
			m := c.sendQ.Get(p)
			if m.kind == dataMsg {
				p.Sleep(sim.Time(float64(m.size) * CopyPerByteNanos))
			}
			c.postWire(m)
		}
	})
	// Receiver engine: protocol handling.
	env.Go("sdp-rx-"+node.Name, func(p *sim.Proc) {
		for {
			comp := c.cq.Poll(p)
			c.handle(p, comp)
		}
	})
	return c
}

// SetZcopyThreshold overrides the bcopy/zcopy switch point (0 disables
// zcopy entirely).
func (c *Conn) SetZcopyThreshold(n int) {
	if n == 0 {
		n = 1 << 62
	}
	c.zthr = n
}

// Delivered reports in-order payload bytes received.
func (c *Conn) Delivered() int64 { return c.delivered }

// ECNMarks returns the number of inbound messages that arrived
// congestion-marked by a bounded link queue.
func (c *Conn) ECNMarks() int64 { return c.ecnMarks }

func (c *Conn) send(m *wireMsg) { c.sendQ.TryPut(m) }

func (c *Conn) postWire(m *wireMsg) {
	wire := m.size + CtrlBytes
	c.qp.PostSend(ib.SendWR{Op: ib.OpSend, Len: wire, Meta: m})
}

// handle processes completions in receiver-engine context.
func (c *Conn) handle(p *sim.Proc, comp ib.Completion) {
	switch comp.Op {
	case ib.OpRecv:
		if comp.ECN {
			c.ecnMarks++
		}
		c.qp.PostRecv(ib.RecvWR{})
		m := comp.Meta.(*wireMsg)
		switch m.kind {
		case dataMsg:
			// Receive-side bcopy.
			p.Sleep(sim.Time(float64(m.size) * CopyPerByteNanos))
			c.deliver(m.data, m.size)
		case srcAvailMsg:
			// Zcopy: pull the advertised region with RDMA read, then
			// notify the sender. The transfer length is the advertised
			// region's size (the control message itself is tiny).
			n := m.mr.Len()
			if m.mr.Buf != nil {
				m.dst = make([]byte, n)
			}
			c.qp.PostSend(ib.SendWR{
				Op: ib.OpRDMARead, Len: n, LocalBuf: m.dst,
				RemoteMR: m.mr, Ctx: m,
			})
		case rdmaDoneMsg:
			// Sender side: the peer finished reading our region.
			if ev, ok := c.zpending[m.mr]; ok {
				delete(c.zpending, m.mr)
				ev.Trigger(nil)
			}
		case connReqMsg:
			c.send(&wireMsg{kind: connAckMsg, size: CtrlBytes})
		case connAckMsg:
			if ev, ok := c.zpending[nil]; ok {
				ev.Trigger(nil)
			}
		}
	case ib.OpRDMARead:
		// Zcopy pull finished: deliver and release the sender.
		m := comp.Ctx.(*wireMsg)
		c.deliver(m.dst, comp.Bytes)
		c.send(&wireMsg{kind: rdmaDoneMsg, size: CtrlBytes, mr: m.mr})
	}
}

func (c *Conn) deliver(data []byte, size int) {
	c.recvBuf = append(c.recvBuf, recvSpan{data: data, size: size})
	c.recvBytes += size
	c.delivered += int64(size)
	for len(c.readWaiters) > 0 {
		ev := c.readWaiters[0]
		c.readWaiters = c.readWaiters[1:]
		ev.Trigger(nil)
	}
}

// Write sends real bytes on the stream, blocking until the transfer's
// buffers are reusable (bcopy: after the copy; zcopy: after RdmaRdCompl).
func (c *Conn) Write(p *sim.Proc, data []byte) {
	c.write(p, data, len(data))
}

// WriteSynthetic sends n synthetic bytes.
func (c *Conn) WriteSynthetic(p *sim.Proc, n int) {
	c.write(p, nil, n)
}

func (c *Conn) write(p *sim.Proc, data []byte, n int) {
	if n <= 0 {
		return
	}
	if n >= c.zthr {
		// Zcopy: advertise the region, wait for the peer's pull.
		var mr *ib.MR
		if data != nil {
			mr = c.node.HCA.RegisterMR(data)
		} else {
			mr = c.node.HCA.RegisterVirtualMR(n)
		}
		done := c.node.HCA.Env().NewEvent()
		c.zpending[mr] = done
		c.send(&wireMsg{kind: srcAvailMsg, size: CtrlBytes, mr: mr})
		p.Wait(done)
		return
	}
	// Bcopy: chunk into bounce-buffer messages.
	for off := 0; off < n; off += BcopyChunk {
		ch := min(BcopyChunk, n-off)
		m := &wireMsg{kind: dataMsg, size: ch}
		if data != nil {
			m.data = data[off : off+ch]
		}
		c.send(m)
	}
}

// Read blocks until stream bytes are available and returns up to max
// (synthetic spans materialize as zeros).
func (c *Conn) Read(p *sim.Proc, max int) []byte {
	for c.recvBytes == 0 {
		ev := c.node.HCA.Env().NewEvent()
		c.readWaiters = append(c.readWaiters, ev)
		p.Wait(ev)
	}
	n := min(c.recvBytes, max)
	out := make([]byte, 0, n)
	for len(out) < n {
		sp := &c.recvBuf[0]
		take := min(n-len(out), sp.size)
		if sp.data != nil {
			out = append(out, sp.data[:take]...)
			sp.data = sp.data[take:]
		} else {
			out = append(out, make([]byte, take)...)
		}
		sp.size -= take
		if sp.size == 0 {
			c.recvBuf = c.recvBuf[1:]
		}
	}
	c.recvBytes -= n
	return out
}

// ReadFull blocks until exactly n bytes arrive.
func (c *Conn) ReadFull(p *sim.Proc, n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, c.Read(p, n-len(out))...)
	}
	return out
}
