package sdp

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func testbed(delay sim.Time) (*sim.Env, *cluster.Testbed) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	return env, tb
}

func TestEchoBcopy(t *testing.T) {
	env, tb := testbed(sim.Micros(100))
	defer env.Shutdown()
	ln := Listen(tb.B[0], 7000)
	defer ln.Close()
	msg := []byte("hello sdp over the WAN")
	var echoed []byte
	env.Go("srv", func(p *sim.Proc) {
		c := ln.Accept(p)
		c.Write(p, c.ReadFull(p, len(msg)))
	})
	env.Go("cli", func(p *sim.Proc) {
		c := Dial(p, tb.A[0], tb.B[0], 7000)
		c.Write(p, msg)
		echoed = c.ReadFull(p, len(msg))
		env.Stop()
	})
	env.Run()
	if !bytes.Equal(echoed, msg) {
		t.Errorf("echo = %q", echoed)
	}
}

func TestZcopyIntegrity(t *testing.T) {
	env, tb := testbed(sim.Micros(100))
	defer env.Shutdown()
	ln := Listen(tb.B[0], 7000)
	defer ln.Close()
	payload := make([]byte, 300000) // well above the zcopy threshold
	rand.New(rand.NewSource(4)).Read(payload)
	var got []byte
	env.Go("srv", func(p *sim.Proc) {
		c := ln.Accept(p)
		got = c.ReadFull(p, len(payload))
		env.Stop()
	})
	env.Go("cli", func(p *sim.Proc) {
		c := Dial(p, tb.A[0], tb.B[0], 7000)
		c.Write(p, payload)
	})
	env.Run()
	if !bytes.Equal(got, payload) {
		t.Error("zcopy payload corrupted")
	}
}

// throughput measures a one-way synthetic stream of writeChunk-sized
// application writes, in MillionBytes/s.
func throughput(env *sim.Env, tb *cluster.Testbed, total, writeChunk, zthr int) float64 {
	ln := Listen(tb.B[0], 7100)
	defer ln.Close()
	var srv *Conn
	env.Go("srv", func(p *sim.Proc) { srv = ln.Accept(p) })
	var elapsed sim.Time
	env.Go("cli", func(p *sim.Proc) {
		c := Dial(p, tb.A[0], tb.B[0], 7100)
		if zthr != 0 {
			c.SetZcopyThreshold(zthr)
		}
		start := p.Now()
		for sent := 0; sent < total; sent += writeChunk {
			c.WriteSynthetic(p, writeChunk)
		}
		// Drain: wait until everything has been delivered.
		for srv == nil || srv.Delivered() < int64(total) {
			p.Sleep(100 * sim.Microsecond)
		}
		elapsed = p.Now() - start
		env.Stop()
	})
	env.Run()
	return float64(total) / elapsed.Seconds() / 1e6
}

func TestSDPBeatsIPoIBCeiling(t *testing.T) {
	// The related-work claim: SDP achieves near-wire-speed over the
	// Longbows, far above IPoIB's host-processing ceiling (~445/888).
	env, tb := testbed(0)
	defer env.Shutdown()
	bw := throughput(env, tb, 64<<20, 1<<20, 0)
	if bw < 930 {
		t.Errorf("SDP zero-delay throughput = %.1f MB/s, want near wire (~960+)", bw)
	}
}

func TestZcopyVsBcopyAtHighDelay(t *testing.T) {
	// Writes block until the transfer's buffers are reusable, so each
	// zcopy write pays a fixed handshake (SrcAvail + read request +
	// RdmaRdCompl) and then streams the whole region — with large
	// application writes the handshake amortizes and zcopy approaches
	// wire rate, while bcopy stays pinned at window x chunk / RTT.
	zc := func() float64 {
		env, tb := testbed(sim.Micros(1000))
		defer env.Shutdown()
		return throughput(env, tb, 64<<20, 8<<20, 0) // default threshold: zcopy
	}()
	bc := func() float64 {
		env, tb := testbed(sim.Micros(1000))
		defer env.Shutdown()
		return throughput(env, tb, 64<<20, 8<<20, 1<<30) // force bcopy
	}()
	if zc < 2*bc {
		t.Errorf("zcopy (%.1f) not clearly above bcopy (%.1f) at 1ms", zc, bc)
	}
	if bc > 300 {
		t.Errorf("bcopy at 1ms = %.1f, expected window-limited (~256)", bc)
	}
}

func TestDialWithoutListenerPanics(t *testing.T) {
	env, tb := testbed(0)
	defer env.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("dial to closed port did not panic")
		}
	}()
	env.Go("cli", func(p *sim.Proc) {
		Dial(p, tb.A[0], tb.B[0], 9)
	})
	env.Run()
}

func TestInterleavedPaths(t *testing.T) {
	// Mixed small (bcopy) and large (zcopy) writes must arrive in order.
	env, tb := testbed(sim.Micros(10))
	defer env.Shutdown()
	ln := Listen(tb.B[0], 7000)
	defer ln.Close()
	var parts [][]byte
	parts = append(parts, []byte("small-1"))
	big := make([]byte, 200000)
	rand.New(rand.NewSource(5)).Read(big)
	parts = append(parts, big, []byte("small-2"))
	var total int
	for _, p := range parts {
		total += len(p)
	}
	var got []byte
	env.Go("srv", func(p *sim.Proc) {
		c := ln.Accept(p)
		got = c.ReadFull(p, total)
		env.Stop()
	})
	env.Go("cli", func(p *sim.Proc) {
		c := Dial(p, tb.A[0], tb.B[0], 7000)
		for _, part := range parts {
			c.Write(p, part)
		}
	})
	env.Run()
	want := bytes.Join(parts, nil)
	if !bytes.Equal(got, want) {
		t.Error("interleaved bcopy/zcopy stream corrupted")
	}
}
