package iscsi

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func testbed(delay sim.Time) (*sim.Env, *cluster.Testbed) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	return env, tb
}

func TestLoginAndSyntheticRead(t *testing.T) {
	env, tb := testbed(sim.Micros(100))
	defer env.Shutdown()
	NewTarget(tb.B[0], 3260, 1<<20) // 512 MB LUN
	env.Go("ini", func(p *sim.Proc) {
		ini := Login(p, tb.A[0], tb.B[0], 3260)
		data, n := ini.Read(p, 0, 8)
		if n != 8*BlockSize {
			t.Errorf("read n = %d", n)
		}
		for _, b := range data {
			if b != 0 {
				t.Error("synthetic LUN returned non-zero")
				break
			}
		}
		env.Stop()
	})
	env.Run()
}

func TestWriteReadBackRealLUN(t *testing.T) {
	env, tb := testbed(sim.Micros(100))
	defer env.Shutdown()
	lun := make([]byte, 1<<20)
	NewTargetWithData(tb.B[0], 3260, lun)
	payload := make([]byte, 16*BlockSize)
	rand.New(rand.NewSource(8)).Read(payload)
	env.Go("ini", func(p *sim.Proc) {
		ini := Login(p, tb.A[0], tb.B[0], 3260)
		if n := ini.Write(p, 100, 16, payload); n != len(payload) {
			t.Errorf("write n = %d", n)
		}
		data, n := ini.Read(p, 100, 16)
		if n != len(payload) || !bytes.Equal(data, payload) {
			t.Error("read-back mismatch")
		}
		env.Stop()
	})
	env.Run()
	if !bytes.Equal(lun[100*BlockSize:100*BlockSize+int64(len(payload))], payload) {
		t.Error("LUN backing store not updated")
	}
}

func TestOutOfRangeRead(t *testing.T) {
	env, tb := testbed(0)
	defer env.Shutdown()
	NewTarget(tb.B[0], 3260, 100)
	env.Go("ini", func(p *sim.Proc) {
		ini := Login(p, tb.A[0], tb.B[0], 3260)
		_, n := ini.Read(p, 99, 8) // crosses the end
		if n != 0 {
			t.Errorf("out-of-range read returned %d bytes", n)
		}
		env.Stop()
	})
	env.Run()
}

// sequentialRead measures read throughput at the given queue depth in
// MillionBytes/s (32 KB commands, bcopy regime).
func sequentialRead(env *sim.Env, tb *cluster.Testbed, total, qd int) float64 {
	const nblk = 64 // 32 KB
	var bw float64
	env.Go("ini", func(p *sim.Proc) {
		ini := Login(p, tb.A[0], tb.B[0], 3260)
		start := p.Now()
		cmds := total / (nblk * BlockSize)
		inflight := make([]*Command, 0, qd)
		lba := uint64(0)
		for issued := 0; issued < cmds || len(inflight) > 0; {
			for issued < cmds && len(inflight) < qd {
				inflight = append(inflight, ini.ReadAsync(p, lba, nblk))
				lba += nblk
				issued++
			}
			inflight[0].Await(p)
			inflight = inflight[1:]
		}
		bw = float64(total) / (p.Now() - start).Seconds() / 1e6
		env.Stop()
	})
	env.Run()
	return bw
}

func TestTaggedQueueingRecoversWANThroughput(t *testing.T) {
	// Related-work shape: queue-depth-1 block I/O is RTT-bound on a WAN;
	// tagged command queueing fills the pipe (same medicine as parallel
	// TCP streams and NFS client threads).
	qd1 := func() float64 {
		env, tb := testbed(sim.Micros(1000))
		defer env.Shutdown()
		NewTarget(tb.B[0], 3260, 1<<22)
		return sequentialRead(env, tb, 16<<20, 1)
	}()
	qd8 := func() float64 {
		env, tb := testbed(sim.Micros(1000))
		defer env.Shutdown()
		NewTarget(tb.B[0], 3260, 1<<22)
		return sequentialRead(env, tb, 16<<20, 8)
	}()
	if qd1 > 25 {
		t.Errorf("QD1 at 1ms = %.1f MB/s, want RTT-bound (~16)", qd1)
	}
	if qd8 < 4*qd1 {
		t.Errorf("QD8 (%.1f) not >= 4x QD1 (%.1f)", qd8, qd1)
	}
}

func TestConcurrentCommandsDistinctTags(t *testing.T) {
	env, tb := testbed(sim.Micros(10))
	defer env.Shutdown()
	lun := make([]byte, 1<<20)
	for i := range lun {
		lun[i] = byte(i / BlockSize)
	}
	NewTargetWithData(tb.B[0], 3260, lun)
	env.Go("ini", func(p *sim.Proc) {
		ini := Login(p, tb.A[0], tb.B[0], 3260)
		// Issue several overlapping reads; each must return its own LBA's
		// data despite interleaved responses.
		cmds := make([]*Command, 8)
		for i := range cmds {
			cmds[i] = ini.ReadAsync(p, uint64(i*10), 1)
		}
		for i, c := range cmds {
			n := c.Await(p)
			if n != BlockSize {
				t.Errorf("cmd %d n = %d", i, n)
			}
			want := byte(i * 10)
			if (*command)(c).rdata[0] != want {
				t.Errorf("cmd %d data = %d, want %d (tag mixup)", i, (*command)(c).rdata[0], want)
			}
		}
		env.Stop()
	})
	env.Run()
}
