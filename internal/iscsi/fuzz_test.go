package iscsi

import "testing"

// FuzzBHSRoundTrip checks the PDU header codec.
func FuzzBHSRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint32(7), uint64(100), uint32(8), uint32(4096))
	f.Fuzz(func(t *testing.T, op uint8, tag uint32, lba uint64, blocks, dlen uint32) {
		b := marshalBHS(op, tag, lba, blocks, dlen)
		if len(b) != bhsBytes {
			t.Fatalf("BHS length %d", len(b))
		}
		go2, gt, gl, gb, gd := unmarshalBHS(b)
		if go2 != op || gt != tag || gl != lba || gb != blocks || gd != dlen {
			t.Fatal("BHS round trip mismatch")
		}
	})
}
