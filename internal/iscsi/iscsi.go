// Package iscsi models an iSCSI initiator/target pair running over SDP —
// the second workload the paper's related work (Prescott & Taylor) drives
// across the Obsidian Longbows ("iSCSI over SDP/IB"). Block I/O over a WAN
// behaves like NFS's close cousin: per-command round trips bound a single
// queue-depth-1 stream, and command queueing (tagged commands in flight)
// recovers throughput the same way parallel streams do for TCP.
//
// The protocol is a faithful miniature: login, SCSI READ/WRITE commands
// with logical-block addressing, Data-In/Data-Out phases carried on the
// SDP byte stream, and tagged command queueing.
package iscsi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sdp"
	"repro/internal/sim"
)

// Protocol constants.
const (
	// BlockSize is the logical block size.
	BlockSize = 512
	// bhsBytes is the basic header segment size of an iSCSI PDU.
	bhsBytes = 48
	// opLogin, opLoginResp... PDU opcodes (subset).
	opLogin uint8 = iota
	opLoginResp
	opSCSIRead
	opSCSIWrite
	opDataIn
	opDataOut
	opResp
)

// pdu header layout: op(1) pad(3) tag(4) lba(8) blocks(4) dlen(4) = 24 used
// of the 48-byte BHS.
func marshalBHS(op uint8, tag uint32, lba uint64, blocks uint32, dlen uint32) []byte {
	b := make([]byte, bhsBytes)
	b[0] = op
	binary.LittleEndian.PutUint32(b[4:], tag)
	binary.LittleEndian.PutUint64(b[8:], lba)
	binary.LittleEndian.PutUint32(b[16:], blocks)
	binary.LittleEndian.PutUint32(b[20:], dlen)
	return b
}

func unmarshalBHS(b []byte) (op uint8, tag uint32, lba uint64, blocks uint32, dlen uint32) {
	return b[0], binary.LittleEndian.Uint32(b[4:]), binary.LittleEndian.Uint64(b[8:]),
		binary.LittleEndian.Uint32(b[16:]), binary.LittleEndian.Uint32(b[20:])
}

// Target is an iSCSI target exporting one LUN.
type Target struct {
	node *cluster.Node
	// lun is the backing store; nil data means a synthetic LUN of Blocks
	// blocks (reads return zeros, writes are accounted).
	data   []byte
	blocks int64
	// PerCmdCPU is the target-side fixed cost per SCSI command.
	PerCmdCPU sim.Time
	cmds      int64
}

// NewTarget exports a synthetic LUN with the given number of 512-byte
// blocks on the node, listening on the SDP port.
func NewTarget(node *cluster.Node, port int, blocks int64) *Target {
	t := &Target{node: node, blocks: blocks, PerCmdCPU: 10 * sim.Microsecond}
	ln := sdp.Listen(node, port)
	env := node.HCA.Env()
	env.Go("iscsi-target-accept", func(p *sim.Proc) {
		for {
			conn := ln.Accept(p)
			t.serve(conn)
		}
	})
	return t
}

// NewTargetWithData exports a LUN backed by real bytes.
func NewTargetWithData(node *cluster.Node, port int, data []byte) *Target {
	t := NewTarget(node, port, int64((len(data)+BlockSize-1)/BlockSize))
	t.data = data
	return t
}

// Commands reports how many SCSI commands the target has served.
func (t *Target) Commands() int64 { return t.cmds }

// serve handles one initiator session.
func (t *Target) serve(conn *sdp.Conn) {
	env := t.node.HCA.Env()
	env.Go("iscsi-target-session", func(p *sim.Proc) {
		for {
			hdr := conn.ReadFull(p, bhsBytes)
			op, tag, lba, blocks, dlen := unmarshalBHS(hdr)
			switch op {
			case opLogin:
				conn.Write(p, marshalBHS(opLoginResp, tag, 0, 0, 0))
			case opSCSIRead:
				t.cmds++
				t.node.CPU.Use(p, t.PerCmdCPU)
				n := int(blocks) * BlockSize
				if lba+uint64(blocks) > uint64(t.blocks) {
					n = 0
				}
				conn.Write(p, marshalBHS(opDataIn, tag, lba, blocks, uint32(n)))
				if n > 0 {
					if t.data != nil {
						off := int64(lba) * BlockSize
						conn.Write(p, t.data[off:off+int64(n)])
					} else {
						conn.WriteSynthetic(p, n)
					}
				}
			case opSCSIWrite:
				t.cmds++
				t.node.CPU.Use(p, t.PerCmdCPU)
				if dlen > 0 {
					payload := conn.ReadFull(p, int(dlen))
					if t.data != nil {
						off := int64(lba) * BlockSize
						copy(t.data[off:], payload)
					}
				}
				conn.Write(p, marshalBHS(opResp, tag, lba, blocks, 0))
			default:
				panic(fmt.Sprintf("iscsi: target got unexpected op %d", op))
			}
		}
	})
}

// Initiator is an iSCSI initiator session with tagged command queueing.
type Initiator struct {
	conn    *sdp.Conn
	nextTag uint32
	pending map[uint32]*command
	submit  *sim.Queue[*command]
}

type command struct {
	tag   uint32
	write bool
	lba   uint64
	nblk  uint32
	wdata []byte // nil = synthetic
	done  *sim.Event
	rdata []byte
	n     int
}

// Login opens a session to the target at (node, port) from the initiator
// node and completes the login phase.
func Login(p *sim.Proc, initiator *cluster.Node, target *cluster.Node, port int) *Initiator {
	conn := sdp.Dial(p, initiator, target, port)
	ini := &Initiator{
		conn:    conn,
		pending: make(map[uint32]*command),
		submit:  sim.NewQueue[*command](initiator.HCA.Env(), 0),
	}
	conn.Write(p, marshalBHS(opLogin, 0, 0, 0, 0))
	resp := conn.ReadFull(p, bhsBytes)
	if op, _, _, _, _ := unmarshalBHS(resp); op != opLoginResp {
		panic("iscsi: bad login response")
	}
	env := initiator.HCA.Env()
	// Submission engine: serializes PDU writes onto the stream.
	env.Go("iscsi-ini-tx", func(pw *sim.Proc) {
		for {
			cmd := ini.submit.Get(pw)
			if cmd.write {
				dlen := uint32(int(cmd.nblk) * BlockSize)
				ini.conn.Write(pw, marshalBHS(opSCSIWrite, cmd.tag, cmd.lba, cmd.nblk, dlen))
				if cmd.wdata != nil {
					ini.conn.Write(pw, cmd.wdata)
				} else {
					ini.conn.WriteSynthetic(pw, int(dlen))
				}
			} else {
				ini.conn.Write(pw, marshalBHS(opSCSIRead, cmd.tag, cmd.lba, cmd.nblk, 0))
			}
		}
	})
	// Response engine: demultiplexes by tag.
	env.Go("iscsi-ini-rx", func(pr *sim.Proc) {
		for {
			hdr := ini.conn.ReadFull(pr, bhsBytes)
			op, tag, _, _, dlen := unmarshalBHS(hdr)
			cmd := ini.pending[tag]
			if cmd == nil {
				panic("iscsi: response for unknown tag")
			}
			delete(ini.pending, tag)
			switch op {
			case opDataIn:
				if dlen > 0 {
					data := ini.conn.ReadFull(pr, int(dlen))
					cmd.rdata = data
				}
				cmd.n = int(dlen)
			case opResp:
				cmd.n = int(cmd.nblk) * BlockSize
			}
			cmd.done.Trigger(nil)
		}
	})
	return ini
}

// Read issues a READ of nblk blocks at lba and blocks until Data-In
// completes, returning the data (zeros for synthetic LUNs).
func (i *Initiator) Read(p *sim.Proc, lba uint64, nblk uint32) ([]byte, int) {
	cmd := i.issue(p, false, lba, nblk, nil)
	p.Wait(cmd.done)
	return cmd.rdata, cmd.n
}

// Write issues a WRITE of data (or nblk synthetic blocks when data is nil)
// and blocks until the target's response.
func (i *Initiator) Write(p *sim.Proc, lba uint64, nblk uint32, data []byte) int {
	cmd := i.issue(p, true, lba, nblk, data)
	p.Wait(cmd.done)
	return cmd.n
}

// ReadAsync issues a READ without waiting — tagged command queueing. Wait
// on the returned command with Await.
func (i *Initiator) ReadAsync(p *sim.Proc, lba uint64, nblk uint32) *Command {
	return (*Command)(i.issue(p, false, lba, nblk, nil))
}

// Command is an in-flight tagged command.
type Command command

// Await blocks until the command completes and returns its byte count.
func (c *Command) Await(p *sim.Proc) int {
	p.Wait(c.done)
	return c.n
}

func (i *Initiator) issue(p *sim.Proc, write bool, lba uint64, nblk uint32, data []byte) *command {
	i.nextTag++
	cmd := &command{
		tag: i.nextTag, write: write, lba: lba, nblk: nblk, wdata: data,
		done: p.Env().NewEvent(),
	}
	i.pending[cmd.tag] = cmd
	i.submit.TryPut(cmd)
	return cmd
}
