// Package core is the paper's contribution layer: the WAN-aware
// optimizations it proposes (§3.4, §5) and the experiment harness that
// regenerates every table and figure of the evaluation.
//
// Optimizations:
//
//   - WAN-adaptive rendezvous threshold (TuneForDelay, AutoTune): as the
//     link RTT grows, the rendezvous handshake's round trip dominates the
//     eager protocol's copy cost, so the eager/rendezvous switch point
//     should rise with delay ("we adjust the MPI rendezvous threshold
//     according to the WAN delay").
//   - Message coalescing (Coalescer): batching small messages into large
//     carriers fills the WAN pipe with fewer, larger messages.
//   - Parallel streams and hierarchical collectives live in
//     internal/tcpsim (multiple connections) and internal/mpi
//     (HierBcast); the harness here sweeps and compares them.
package core

import (
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// TuneForDelay returns an MPI configuration with the rendezvous threshold
// adapted to the one-way WAN delay, implementing the paper's protocol
// threshold tuning. The threshold is chosen so that a message pays the
// rendezvous handshake only when its serialization time exceeds the round
// trip: below that size, the extra copy of the eager path is cheaper than
// idling the pipe for an RTT.
func TuneForDelay(delay sim.Time) mpi.Config {
	cfg := mpi.Config{}
	rtt := 2 * delay
	// Bytes the SDR WAN link moves in one RTT (the bandwidth-delay
	// product); messages smaller than this are better sent eagerly.
	bdp := int(rtt.Seconds() * 1e9)
	th := mpi.DefaultEagerThreshold
	for th < bdp && th < MaxEagerThreshold {
		th *= 2
	}
	cfg.EagerThreshold = th
	return cfg
}

// MaxEagerThreshold caps the adaptive threshold: beyond this size the
// bounce-buffer copies and memory footprint outweigh handshake savings.
const MaxEagerThreshold = 1 << 20

// TunedThreshold is the 64 KB threshold the paper uses in Fig. 9 for the
// 1 ms-delay experiment.
const TunedThreshold = 64 << 10

// AutoTune measures the cross-cluster round trip with a small ping over a
// fresh 2-rank world and returns the threshold TuneForDelay would choose
// for the observed delay — the paper's suggested "adaptive tuning of MPI
// protocol" for links whose delay is dynamic or unknown.
func AutoTune(env *sim.Env, a, b *cluster.Node) mpi.Config {
	// The probe world shares the caller's environment; its progress
	// engines stay parked afterwards, which is harmless (they hold no
	// scheduled work).
	w := mpi.NewWorld(env, []*cluster.Node{a, b}, mpi.Config{})
	rtt := 2 * mpi.Latency(w, 8, 10)
	// Subtract the zero-distance floor (device and software latency) to
	// estimate the wire delay component.
	const floor = 8 * sim.Microsecond
	delay := (rtt - 2*floor) / 2
	if delay < 0 {
		delay = 0
	}
	return TuneForDelay(delay)
}
