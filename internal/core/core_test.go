package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestTuneForDelay(t *testing.T) {
	cases := []struct {
		delayUS float64
		wantMin int
		wantMax int
	}{
		{0, 8 << 10, 8 << 10},
		{10, 16 << 10, 32 << 10},
		{100, 128 << 10, 256 << 10},
		{1000, 1 << 20, 1 << 20},  // capped
		{10000, 1 << 20, 1 << 20}, // capped
	}
	for _, c := range cases {
		got := TuneForDelay(sim.Micros(c.delayUS)).EagerThreshold
		if got < c.wantMin || got > c.wantMax {
			t.Errorf("TuneForDelay(%vus) threshold = %d, want [%d, %d]",
				c.delayUS, got, c.wantMin, c.wantMax)
		}
	}
}

func TestTunedConfigBeatsDefaultAtHighDelay(t *testing.T) {
	// The headline Fig. 9 claim as an end-to-end check: at 1 ms delay,
	// the WAN-tuned config improves medium-message bandwidth.
	build := func(cfg mpi.Config) *mpi.World {
		env := sim.NewEnv()
		tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(1000)})
		return mpi.NewWorld(env, []*cluster.Node{tb.A[0], tb.B[0]}, cfg)
	}
	w1 := build(mpi.Config{})
	orig := mpi.Bandwidth(w1, 32<<10, 2)
	w1.Shutdown()
	w2 := build(TuneForDelay(sim.Micros(1000)))
	tuned := mpi.Bandwidth(w2, 32<<10, 2)
	w2.Shutdown()
	if tuned <= orig {
		t.Errorf("tuned bw %.1f not above original %.1f at 1ms delay", tuned, orig)
	}
}

func TestAutoTuneMatchesConfiguredDelay(t *testing.T) {
	for _, us := range []float64{0, 100, 1000} {
		env := sim.NewEnv()
		tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(us)})
		got := AutoTune(env, tb.A[0], tb.B[0]).EagerThreshold
		want := TuneForDelay(sim.Micros(us)).EagerThreshold
		env.Shutdown()
		if got != want {
			t.Errorf("AutoTune at %vus threshold = %d, want %d", us, got, want)
		}
	}
}

func TestAutoTuneTracksDynamicDelay(t *testing.T) {
	// The paper: "WAN links are often dynamic in nature. Hence,
	// mechanisms like adaptive tuning of MPI protocol ... are likely to
	// yield the best performance." Re-probing after the link changes
	// must yield the new delay's threshold.
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(10)})
	near := AutoTune(env, tb.A[0], tb.B[0]).EagerThreshold
	// The link "moves" to 2 000 km.
	tb.WAN.SetDelay(sim.Micros(10000))
	far := AutoTune(env, tb.A[0], tb.B[0]).EagerThreshold
	env.Shutdown()
	if near != TuneForDelay(sim.Micros(10)).EagerThreshold {
		t.Errorf("near threshold = %d", near)
	}
	if far != TuneForDelay(sim.Micros(10000)).EagerThreshold {
		t.Errorf("far threshold = %d", far)
	}
	if far <= near {
		t.Errorf("threshold did not grow with the link: %d -> %d", near, far)
	}
}

func TestCoalescerRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(100)})
	w := mpi.NewWorld(env, []*cluster.Node{tb.A[0], tb.B[0]}, mpi.Config{})
	defer w.Shutdown()
	msgs := [][]byte{
		[]byte("alpha"), []byte("beta"), {}, []byte("gamma-gamma-gamma"),
		bytes.Repeat([]byte{7}, 3000),
	}
	var got [][]byte
	w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			co := NewCoalescer(r, 1, 42, 0)
			for _, m := range msgs {
				co.Add(p, m)
			}
			co.Wait(p)
		case 1:
			rc := NewCoalescedReceiver(r, 0, 42, 0)
			for range msgs {
				got = append(got, rc.Next(p))
			}
		}
	})
	if len(got) != len(msgs) {
		t.Fatalf("received %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Errorf("message %d corrupted", i)
		}
	}
}

func TestCoalescerFlushesAtThreshold(t *testing.T) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1})
	w := mpi.NewWorld(env, []*cluster.Node{tb.A[0], tb.B[0]}, mpi.Config{})
	defer w.Shutdown()
	w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			co := NewCoalescer(r, 1, 9, 1024)
			for i := 0; i < 100; i++ {
				co.Add(p, make([]byte, 100)) // 104 B per record
			}
			co.Wait(p)
			// ceil(100*104/1024) = 11 carriers expected (within rounding).
			if co.CarriersSent() < 9 || co.CarriersSent() > 12 {
				t.Errorf("carriers = %d, want ~10", co.CarriersSent())
			}
		case 1:
			rc := NewCoalescedReceiver(r, 0, 9, 0)
			for i := 0; i < 100; i++ {
				if len(rc.Next(p)) != 100 {
					t.Error("wrong record size")
				}
			}
		}
	})
}

func TestCoalescingImprovesSmallMessageGoodput(t *testing.T) {
	// Ablation for the paper's "message coalescing" optimization: at 1 ms
	// delay, the same small-record stream moves much faster coalesced.
	const records = 2000
	const recSize = 128
	elapsed := func(coalesced bool) sim.Time {
		env := sim.NewEnv()
		tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(1000)})
		w := mpi.NewWorld(env, []*cluster.Node{tb.A[0], tb.B[0]}, mpi.Config{})
		defer w.Shutdown()
		return w.Run(func(r *mpi.Rank, p *sim.Proc) {
			switch r.ID() {
			case 0:
				if coalesced {
					co := NewCoalescer(r, 1, 5, 0)
					for i := 0; i < records; i++ {
						co.Add(p, make([]byte, recSize))
					}
					co.Wait(p)
				} else {
					var reqs []*mpi.Request
					for i := 0; i < records; i++ {
						reqs = append(reqs, r.Isend(p, 1, 5, make([]byte, recSize), 0))
					}
					mpi.WaitAll(p, reqs)
				}
			case 1:
				if coalesced {
					rc := NewCoalescedReceiver(r, 0, 5, 0)
					for i := 0; i < records; i++ {
						rc.Next(p)
					}
				} else {
					for i := 0; i < records; i++ {
						r.Recv(p, 0, 5, nil, recSize)
					}
				}
			}
		})
	}
	plain := elapsed(false)
	coal := elapsed(true)
	if coal*5 > plain {
		t.Errorf("coalescing gain too small: plain=%v coalesced=%v", plain, coal)
	}
}

func TestDecoalesceErrors(t *testing.T) {
	if _, err := Decoalesce([]byte{1, 2}); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Decoalesce([]byte{10, 0, 0, 0, 1, 2}); err == nil {
		t.Error("truncated payload accepted")
	}
	msgs, err := Decoalesce(nil)
	if err != nil || len(msgs) != 0 {
		t.Errorf("empty carrier: %v, %v", msgs, err)
	}
}

func TestTable1AndFig3Generate(t *testing.T) {
	tabs := Run("table1", Options{})
	if len(tabs) != 1 || len(tabs[0].Series) != 1 {
		t.Fatalf("table1 shape: %+v", tabs)
	}
	if y, ok := tabs[0].Series[0].At(2000); !ok || y != 10000 {
		t.Errorf("table1: 2000km -> %v us, want 10000", y)
	}
	f3 := Run("fig3", Options{})
	var buf bytes.Buffer
	f3[0].Render(&buf)
	if !strings.Contains(buf.String(), "RDMAWrite/RC") {
		t.Errorf("fig3 render missing series: %s", buf.String())
	}
}

func TestUnknownExperimentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown experiment did not panic")
		}
	}()
	Run("fig99", Options{})
}
