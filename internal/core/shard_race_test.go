package core

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// TestShardedRaceStress drives a mesh4 world with concurrent shard workers
// and live telemetry metrics — the configuration with the most cross-shard
// traffic (a dedicated WAN link between every site pair) and the most
// shared-registry pressure. Run under `go test -race` this is the data-race
// regression test for the sharded scheduler; without the race detector it
// is a cheap smoke test.
func TestShardedRaceStress(t *testing.T) {
	tel := &telemetry.Telemetry{Metrics: telemetry.NewRegistry()}
	for iter := 0; iter < 3; iter++ {
		env := sim.NewEnv()
		env.SetShardWorkers(4)
		telemetry.Attach(env, tel)
		spec, err := topo.Preset("mesh4", 2, sim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := topo.Build(env, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !env.Sharded() {
			t.Fatal("mesh4 world did not partition")
		}
		w := mpi.NewWorld(nw.Env, nw.Nodes(), mpi.Config{})
		w.Run(func(r *mpi.Rank, p *sim.Proc) {
			vec := make([]float64, 256)
			for i := 0; i < 2; i++ {
				r.HierAllreduce(p, vec)
				r.Allreduce(p, vec)
				r.Bcast(p, 0, nil, 64<<10)
				r.HierBcast(p, 0, nil, 64<<10)
				r.Barrier(p)
			}
		})
		prof := w.Profile()
		if prof.Msgs == 0 {
			t.Fatal("no messages recorded in the census")
		}
		windows, shards := env.WindowStats()
		if windows == 0 || len(shards) != 4 {
			t.Fatalf("window stats: %d windows, %d shards", windows, len(shards))
		}
		w.Shutdown()
	}
	// The telemetry registry took concurrent counter traffic from every
	// shard; a race here would have tripped the detector above.
	if tel.Metrics == nil {
		t.Fatal("registry vanished")
	}
}

// TestShardedRunnerRaceStress layers the point-parallel worker pool on top
// of sharded worlds with a shared metrics registry — the peak-concurrency
// configuration of the harness (Workers x ShardWorkers OS goroutines plus
// runner bookkeeping).
func TestShardedRunnerRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("runner race stress skipped in -short mode")
	}
	tel := &telemetry.Telemetry{Metrics: telemetry.NewRegistry()}
	opt := Options{Quick: true, Topo: "mesh4"}
	res := RunWith("multisite-allreduce", opt, RunnerOptions{
		Workers: 2, ShardWorkers: 2, Telemetry: tel,
	})
	if len(res.Errors) != 0 {
		t.Fatalf("points failed: %v", res.Errors)
	}
}
