package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/ib"
	"repro/internal/ipoib"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/nfs"
	"repro/internal/perftest"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcpsim"
	"repro/internal/wan"
)

// This file holds the experiment builders: one func per table/figure of the
// paper, each expanding its sweep into a Plan (see registry.go) — skeleton
// tables whose series and slots are reserved in sequential order, plus one
// self-contained Point per (workload × delay × message-size) cell. Every
// point builds a private simulation world through its Meter, so the runner
// (runner.go) may execute them on any number of workers without changing
// the rendered output.

// Options tunes experiment weight without changing shape.
type Options struct {
	// NASClass selects the NAS problem class for fig12 ("B" = paper;
	// "A"/"W" are faster). Default "B" ("W" under Quick).
	NASClass string
	// NFSFileMB is the IOzone file size in MB (paper: 512). Throughput is
	// steady-state, so smaller files give the same numbers faster.
	// Default 512.
	NFSFileMB int
	// TCPMillis is the per-point measurement window for the TCP
	// experiments in milliseconds of virtual time at zero delay; it is
	// scaled up with delay automatically. Default 60.
	TCPMillis int
	// Topo names the topo preset the multisite-* family runs on
	// ("paper", "star3", "ring4", "mesh4"). Default "star3".
	Topo string
	// Quick shrinks every sweep (fewer delays, sizes, streams, smaller
	// worlds) for smoke runs; shapes remain visible but are coarser.
	Quick bool
}

func (o *Options) fill() {
	if o.NASClass == "" {
		o.NASClass = "B"
		if o.Quick {
			o.NASClass = "W"
		}
	}
	if o.NFSFileMB == 0 {
		o.NFSFileMB = 512
		if o.Quick {
			o.NFSFileMB = 16
		}
	}
	if o.TCPMillis == 0 {
		o.TCPMillis = 60
		if o.Quick {
			o.TCPMillis = 10
		}
	}
	if o.Topo == "" {
		o.Topo = "star3"
	}
}

// delays returns the WAN delay sweep.
func (o Options) delays() []sim.Time {
	if o.Quick {
		return []sim.Time{0, sim.Micros(1000)}
	}
	return cluster.PaperDelays()
}

// sizes returns the message-size sweep between lo and hi.
func (o Options) sizes(lo, hi int) []int {
	all := stats.Sizes(lo, hi)
	if !o.Quick || len(all) <= 3 {
		return all
	}
	return []int{all[0], all[len(all)/2], all[len(all)-1]}
}

// delayLabel formats a delay series label in the paper's style.
func delayLabel(d sim.Time) string {
	if d == 0 {
		return "no-delay"
	}
	return fmt.Sprintf("%dus-delay", int64(d/sim.Microsecond))
}

// table1 reproduces the delay/distance mapping.
func table1(Options) *Plan {
	t := stats.NewTable("Table 1: Delay Overhead corresponding to Wire Length",
		"Distance (km)", "Delay (us)")
	s := t.AddSeries("delay")
	pl := &Plan{Tables: []*stats.Table{t}}
	for _, km := range []float64{10, 20, 200, 2000, 20000} {
		km := km
		pl.point(s, km, fmt.Sprintf("table1/%gkm", km), func(m *Meter) float64 {
			d, err := wan.DelayForDistance(km)
			m.Check(err)
			return d.Microseconds()
		})
	}
	return pl
}

// fig3 reproduces the verbs-level small-message latency comparison.
func fig3(Options) *Plan {
	t := stats.NewTable("Figure 3: Verbs-level Latency (8-byte messages)",
		"Configuration", "Latency (us)")
	const iters = 100
	rows := []struct {
		name string
		fn   func(m *Meter) float64
	}{
		// Through the Longbow pair at zero configured delay.
		{"SendRecv/UD", func(m *Meter) float64 {
			env, tb := m.pair(0)
			return perftest.SendLatency(env, tb.A[0].HCA, tb.B[0].HCA, ib.UD, 8, iters).Microseconds()
		}},
		{"SendRecv/RC", func(m *Meter) float64 {
			env, tb := m.pair(0)
			return perftest.SendLatency(env, tb.A[0].HCA, tb.B[0].HCA, ib.RC, 8, iters).Microseconds()
		}},
		{"RDMAWrite/RC", func(m *Meter) float64 {
			env, tb := m.pair(0)
			return perftest.WriteLatency(env, tb.A[0].HCA, tb.B[0].HCA, 8, iters).Microseconds()
		}},
		// Back-to-back DDR nodes, no Longbows.
		{"BackToBack-SR/RC", func(m *Meter) float64 {
			env := m.NewEnv()
			f := ib.NewFabric(env)
			a, b := f.AddHCA("a"), f.AddHCA("b")
			f.Connect(a, b, ib.DDR, ib.DefaultCableDelay)
			f.Finalize()
			return perftest.SendLatency(env, a, b, ib.RC, 8, iters).Microseconds()
		}},
	}
	pl := &Plan{Tables: []*stats.Table{t}}
	for i, row := range rows {
		i := i
		s := t.AddSeries(row.name)
		pl.point(s, float64(i), "fig3/"+row.name, row.fn)
	}
	return pl
}

// bwCount picks a message count that keeps per-point cost bounded while
// giving a stable estimate (large messages get at least 64 MB of traffic
// so the one-time pipe fill does not dominate at 10 ms delay).
func bwCount(size int) int {
	c := 64 << 20 / size
	if c < 16 {
		c = 16
	}
	if c > 2048 {
		c = 2048
	}
	return c
}

// fig4 reproduces verbs UD bandwidth and bidirectional bandwidth vs delay.
func fig4(opt Options) *Plan {
	opt.fill()
	bw := stats.NewTable("Figure 4(a): Verbs-level UD Bandwidth",
		"Message Size (Bytes)", "Bandwidth (MillionBytes/s)")
	bibw := stats.NewTable("Figure 4(b): Verbs-level UD Bidirectional Bandwidth",
		"Message Size (Bytes)", "Bidirectional Bandwidth (MillionBytes/s)")
	pl := &Plan{Tables: []*stats.Table{bw, bibw}}
	for _, d := range opt.delays() {
		d := d
		s1 := bw.AddSeries("UD-" + delayLabel(d))
		s2 := bibw.AddSeries("UD-" + delayLabel(d))
		for _, size := range opt.sizes(2, ib.MaxUDPayload) {
			size := size
			label := fmt.Sprintf("fig4/%s/%s", delayLabel(d), stats.FormatSize(float64(size)))
			pl.point(s1, float64(size), label+"/uni", func(m *Meter) float64 {
				env, tb := m.pair(d)
				return perftest.BandwidthUD(env, tb.A[0].HCA, tb.B[0].HCA, size, bwCount(size))
			})
			pl.point(s2, float64(size), label+"/bidir", func(m *Meter) float64 {
				env, tb := m.pair(d)
				return perftest.BiBandwidthUD(env, tb.A[0].HCA, tb.B[0].HCA, size, bwCount(size))
			})
		}
	}
	return pl
}

// fig5 reproduces verbs RC bandwidth and bidirectional bandwidth vs delay.
func fig5(opt Options) *Plan {
	opt.fill()
	bw := stats.NewTable("Figure 5(a): Verbs-level RC Bandwidth",
		"Message Size (Bytes)", "Bandwidth (MillionBytes/s)")
	bibw := stats.NewTable("Figure 5(b): Verbs-level RC Bidirectional Bandwidth",
		"Message Size (Bytes)", "Bidirectional Bandwidth (MillionBytes/s)")
	pl := &Plan{Tables: []*stats.Table{bw, bibw}}
	for _, d := range opt.delays() {
		d := d
		s1 := bw.AddSeries("RC-" + delayLabel(d))
		s2 := bibw.AddSeries("RC-" + delayLabel(d))
		for _, size := range opt.sizes(2, 4<<20) {
			size := size
			label := fmt.Sprintf("fig5/%s/%s", delayLabel(d), stats.FormatSize(float64(size)))
			pl.point(s1, float64(size), label+"/uni", func(m *Meter) float64 {
				env, tb := m.pair(d)
				return perftest.BandwidthRC(env, tb.A[0].HCA, tb.B[0].HCA, size, bwCount(size), 0)
			})
			pl.point(s2, float64(size), label+"/bidir", func(m *Meter) float64 {
				env, tb := m.pair(d)
				return perftest.BiBandwidthRC(env, tb.A[0].HCA, tb.B[0].HCA, size, bwCount(size), 0)
			})
		}
	}
	return pl
}

// tcpPoint measures aggregate TCP throughput for the given IPoIB mode, MTU,
// window, stream count and delay.
func tcpPoint(m *Meter, mode ipoib.Mode, mtu int, window int, streams int, d sim.Time, opt Options) float64 {
	env := m.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: d})
	net := ipoib.NewNetwork()
	da := net.Attach(tb.A[0].HCA, mode, mtu)
	db := net.Attach(tb.B[0].HCA, mode, mtu)
	sa := tcpsim.NewStack(da, tcpsim.Config{Window: window})
	sb := tcpsim.NewStack(db, tcpsim.Config{Window: window})
	// Measurement window scales with delay so slow starts and pipe fills
	// finish inside the first half.
	dur := sim.Time(opt.TCPMillis) * sim.Millisecond
	if d > 0 {
		dur += 60 * d
	}
	defer env.Shutdown()
	bw, err := tcpThroughput(env, sa, sb, streams, dur)
	m.Check(err)
	return bw
}

// tcpThroughput runs one-way flows for dur and returns the steady-state
// rate over the second half in MillionBytes/s. Under fault injection
// individual streams may die mid-run (their connections reset); the rate
// then reflects what the surviving streams delivered. Only when nothing at
// all was delivered does the first connection error surface instead.
func tcpThroughput(env *sim.Env, sa, sb *tcpsim.Stack, streams int, dur sim.Time) (float64, error) {
	var firstErr error
	note := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for i := 0; i < streams; i++ {
		port := 6000 + i
		ln := sb.Listen(port)
		env.Go("srv", func(p *sim.Proc) { ln.Accept(p) })
		env.Go("cli", func(p *sim.Proc) {
			c, err := sa.Dial(p, sb.Addr(), port)
			if err != nil {
				note(err)
				return
			}
			for {
				// The paper sends 2 MB application messages.
				if err := c.WriteSynthetic(p, 2<<20); err != nil {
					note(err)
					return
				}
			}
		})
	}
	env.RunUntil(dur / 2)
	mid := sb.Stats().RxBytes
	env.RunUntil(dur)
	end := sb.Stats().RxBytes
	if end == 0 {
		// Nothing crossed the wire inside the window. Run on until the
		// connect/retransmission machinery reaches its verdict, so a dead
		// WAN reports its error instead of a measurement of nothing. The
		// budget covers the full handshake backoff schedule.
		env.RunUntil(dur + 20*sim.Second)
		if firstErr != nil {
			return 0, firstErr
		}
	}
	return float64(end-mid) / (dur / 2).Seconds() / 1e6, nil
}

// fig6 reproduces IPoIB-UD throughput: (a) single stream with varying TCP
// windows, (b) parallel streams, both vs WAN delay.
func fig6(opt Options) *Plan {
	opt.fill()
	a := stats.NewTable("Figure 6(a): IPoIB-UD single-stream throughput vs delay",
		"Delay (usecs)", "Throughput (MillionBytes/s)")
	pl := &Plan{}
	windows := []struct {
		label string
		bytes int
	}{
		{"64k-window", 64 << 10},
		{"256k-window", 256 << 10},
		{"512k-window", 512 << 10},
		{"default-window", 0},
	}
	for _, w := range windows {
		w := w
		s := a.AddSeries(w.label)
		for _, d := range opt.delays() {
			d := d
			pl.point(s, d.Microseconds(), fmt.Sprintf("fig6a/%s/%s", w.label, delayLabel(d)),
				func(m *Meter) float64 {
					return tcpPoint(m, ipoib.Datagram, 0, w.bytes, 1, d, opt)
				})
		}
	}
	b := stats.NewTable("Figure 6(b): IPoIB-UD parallel-stream throughput vs delay",
		"Delay (usecs)", "Throughput (MillionBytes/s)")
	streams := []int{1, 2, 4, 6, 8}
	if opt.Quick {
		streams = []int{1, 4}
	}
	for _, n := range streams {
		n := n
		s := b.AddSeries(fmt.Sprintf("%d-streams", n))
		for _, d := range opt.delays() {
			d := d
			pl.point(s, d.Microseconds(), fmt.Sprintf("fig6b/%d-streams/%s", n, delayLabel(d)),
				func(m *Meter) float64 {
					return tcpPoint(m, ipoib.Datagram, 0, 0, n, d, opt)
				})
		}
	}
	pl.Tables = []*stats.Table{a, b}
	return pl
}

// fig7 reproduces IPoIB-RC throughput: (a) single stream with varying IP
// MTUs, (b) parallel streams, both vs WAN delay.
func fig7(opt Options) *Plan {
	opt.fill()
	a := stats.NewTable("Figure 7(a): IPoIB-RC single-stream throughput vs delay",
		"Delay (usecs)", "Throughput (MillionBytes/s)")
	pl := &Plan{}
	mtus := []int{2044, 16380, 65532}
	if opt.Quick {
		mtus = []int{2044, 65532}
	}
	for _, mtu := range mtus {
		mtu := mtu
		s := a.AddSeries(fmt.Sprintf("%dK-MTU", (mtu+4)>>10))
		for _, d := range opt.delays() {
			d := d
			pl.point(s, d.Microseconds(), fmt.Sprintf("fig7a/%dK-MTU/%s", (mtu+4)>>10, delayLabel(d)),
				func(m *Meter) float64 {
					return tcpPoint(m, ipoib.Connected, mtu, 0, 1, d, opt)
				})
		}
	}
	b := stats.NewTable("Figure 7(b): IPoIB-RC parallel-stream throughput vs delay",
		"Delay (usecs)", "Throughput (MillionBytes/s)")
	streams := []int{1, 2, 4, 6, 8}
	if opt.Quick {
		streams = []int{1, 4}
	}
	for _, n := range streams {
		n := n
		s := b.AddSeries(fmt.Sprintf("%d-streams", n))
		for _, d := range opt.delays() {
			d := d
			pl.point(s, d.Microseconds(), fmt.Sprintf("fig7b/%d-streams/%s", n, delayLabel(d)),
				func(m *Meter) float64 {
					return tcpPoint(m, ipoib.Connected, 0, 0, n, d, opt)
				})
		}
	}
	pl.Tables = []*stats.Table{a, b}
	return pl
}

// mpiWorld builds a fresh 2-rank cross-WAN world.
func mpiWorld(m *Meter, delay sim.Time, cfg mpi.Config) *mpi.World {
	env := m.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	return mpi.NewWorld(env, []*cluster.Node{tb.A[0], tb.B[0]}, cfg)
}

// mpiIters bounds per-point cost for the MPI bandwidth loops.
func mpiIters(size int) int {
	if size >= 1<<20 {
		return 1
	}
	if size >= 64<<10 {
		return 2
	}
	return 4
}

// fig8 reproduces MPI bandwidth and bidirectional bandwidth vs delay.
func fig8(opt Options) *Plan {
	opt.fill()
	bw := stats.NewTable("Figure 8(a): MPI Bandwidth (MVAPICH2-model)",
		"Message Size (Bytes)", "Bandwidth (MillionBytes/s)")
	bibw := stats.NewTable("Figure 8(b): MPI Bidirectional Bandwidth",
		"Message Size (Bytes)", "Bidirectional Bandwidth (MillionBytes/s)")
	pl := &Plan{Tables: []*stats.Table{bw, bibw}}
	for _, d := range opt.delays() {
		d := d
		s1 := bw.AddSeries("MVAPICH-" + delayLabel(d))
		s2 := bibw.AddSeries("MVAPICH-" + delayLabel(d))
		for _, size := range opt.sizes(1, 4<<20) {
			size := size
			label := fmt.Sprintf("fig8/%s/%s", delayLabel(d), stats.FormatSize(float64(size)))
			pl.point(s1, float64(size), label+"/uni", func(m *Meter) float64 {
				w := mpiWorld(m, d, mpi.Config{})
				defer w.Shutdown()
				return mpi.Bandwidth(w, size, mpiIters(size))
			})
			pl.point(s2, float64(size), label+"/bidir", func(m *Meter) float64 {
				w := mpiWorld(m, d, mpi.Config{})
				defer w.Shutdown()
				return mpi.BiBandwidth(w, size, mpiIters(size))
			})
		}
	}
	return pl
}

// fig9 reproduces the rendezvous-threshold tuning experiment at 1 ms delay.
func fig9(opt Options) *Plan {
	opt.fill()
	const delay = 1000 // microseconds
	bw := stats.NewTable("Figure 9(a): MPI Bandwidth with protocol thresholds, 1ms delay",
		"Message Size (Bytes)", "Bandwidth (MillionBytes/s)")
	bibw := stats.NewTable("Figure 9(b): MPI Bidirectional Bandwidth with protocol thresholds, 1ms delay",
		"Message Size (Bytes)", "Bidirectional Bandwidth (MillionBytes/s)")
	cfgs := []struct {
		label string
		cfg   mpi.Config
	}{
		{"thresh-8k (original)", mpi.Config{}},
		{"thresh-64k (tuned)", mpi.Config{EagerThreshold: TunedThreshold}},
	}
	pl := &Plan{Tables: []*stats.Table{bw, bibw}}
	for _, c := range cfgs {
		c := c
		s1 := bw.AddSeries(c.label)
		s2 := bibw.AddSeries(c.label)
		for _, size := range opt.sizes(1<<10, 64<<10) {
			size := size
			label := fmt.Sprintf("fig9/%s/%s", c.label, stats.FormatSize(float64(size)))
			pl.point(s1, float64(size), label+"/uni", func(m *Meter) float64 {
				w := mpiWorld(m, sim.Micros(delay), c.cfg)
				defer w.Shutdown()
				return mpi.Bandwidth(w, size, 4)
			})
			pl.point(s2, float64(size), label+"/bidir", func(m *Meter) float64 {
				w := mpiWorld(m, sim.Micros(delay), c.cfg)
				defer w.Shutdown()
				return mpi.BiBandwidth(w, size, 4)
			})
		}
	}
	return pl
}

// fig10 reproduces the multi-pair aggregate message rate at three delays.
func fig10(opt Options) *Plan {
	opt.fill()
	delays := []sim.Time{sim.Micros(10), sim.Micros(1000), sim.Micros(10000)}
	pairCounts := []int{4, 8, 16}
	if opt.Quick {
		delays = []sim.Time{sim.Micros(1000)}
		pairCounts = []int{2, 4}
	}
	pl := &Plan{}
	for _, d := range delays {
		d := d
		t := stats.NewTable(
			fmt.Sprintf("Figure 10: Multi-pair message rate, %s", delayLabel(d)),
			"Message Size (Bytes)", "Message Rate (Million Messages/s)")
		for _, pairs := range pairCounts {
			pairs := pairs
			s := t.AddSeries(fmt.Sprintf("%d pairs", pairs))
			for _, size := range opt.sizes(1, 32<<10) {
				size := size
				label := fmt.Sprintf("fig10/%s/%dpairs/%s", delayLabel(d), pairs, stats.FormatSize(float64(size)))
				pl.point(s, float64(size), label, func(m *Meter) float64 {
					env := m.NewEnv()
					tb := cluster.New(env, cluster.Config{NodesA: pairs, NodesB: pairs, Delay: d})
					var nodes []*cluster.Node
					nodes = append(nodes, tb.A...)
					nodes = append(nodes, tb.B...)
					w := mpi.NewWorld(env, nodes, mpi.Config{})
					defer w.Shutdown()
					return mpi.MessageRate(w, pairs, size, 2)
				})
			}
		}
		pl.Tables = append(pl.Tables, t)
	}
	return pl
}

// fig11 reproduces the broadcast comparison: the stock algorithm vs the
// WAN-aware hierarchical broadcast, 64+64 processes, three delays.
func fig11(opt Options) *Plan {
	opt.fill()
	delays := []sim.Time{sim.Micros(10), sim.Micros(100), sim.Micros(1000)}
	sizes := []int{4, 16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10}
	nodesPerCluster := 32
	if opt.Quick {
		delays = []sim.Time{sim.Micros(1000)}
		sizes = []int{64, 128 << 10}
		nodesPerCluster = 4
	}
	pl := &Plan{}
	for _, d := range delays {
		d := d
		t := stats.NewTable(
			fmt.Sprintf("Figure 11: MPI broadcast latency over IB WAN, %s", delayLabel(d)),
			"Message Size (Bytes)", "Latency (us)")
		orig := t.AddSeries("Original")
		mod := t.AddSeries("Modified")
		for _, size := range sizes {
			size := size
			for _, hier := range []bool{false, true} {
				hier := hier
				s, variant := orig, "orig"
				if hier {
					s, variant = mod, "hier"
				}
				label := fmt.Sprintf("fig11/%s/%s/%s", delayLabel(d), stats.FormatSize(float64(size)), variant)
				pl.point(s, float64(size), label, func(m *Meter) float64 {
					env := m.NewEnv()
					tb := cluster.New(env, cluster.Config{NodesA: nodesPerCluster, NodesB: nodesPerCluster, Delay: d})
					placement := mpi.BlockPlacement(tb.Nodes(), 2)
					w := mpi.NewWorld(env, placement, mpi.Config{})
					defer w.Shutdown()
					return mpi.BcastLatency(w, size, 3, hier).Microseconds()
				})
			}
		}
		pl.Tables = append(pl.Tables, t)
	}
	return pl
}

// fig12 reproduces the NAS benchmark delay sweep: 64 processes, 32 per
// cluster, execution time vs WAN delay. The slowdown table is derived from
// the measured one after all points land (Finish), exactly as the
// sequential loop computed it.
func fig12(opt Options) *Plan {
	opt.fill()
	t := stats.NewTable(
		fmt.Sprintf("Figure 12: NAS class %s execution time (64 procs, 32+32)", opt.NASClass),
		"Delay (usecs)", "Execution Time (s)")
	rel := stats.NewTable(
		fmt.Sprintf("Figure 12 (derived): NAS class %s slowdown vs zero delay", opt.NASClass),
		"Delay (usecs)", "Slowdown (x)")
	nasNodes := 32
	if opt.Quick {
		nasNodes = 8
	}
	kernels := nas.AllKernels()
	if opt.Quick {
		kernels = nas.Kernels()
	}
	pl := &Plan{Tables: []*stats.Table{t, rel}}
	for _, k := range kernels {
		k := k
		s := t.AddSeries(k)
		sr := rel.AddSeries(k)
		for _, d := range opt.delays() {
			d := d
			sr.Alloc(d.Microseconds())
			pl.point(s, d.Microseconds(), fmt.Sprintf("fig12/%s/%s", k, delayLabel(d)),
				func(m *Meter) float64 {
					env := m.NewEnv()
					tb := cluster.New(env, cluster.Config{NodesA: nasNodes, NodesB: nasNodes, Delay: d})
					var nodes []*cluster.Node
					nodes = append(nodes, tb.A...)
					nodes = append(nodes, tb.B...)
					w := mpi.NewWorld(env, nodes, mpi.Config{})
					defer w.Shutdown()
					return nas.RunClass(w, k, opt.NASClass).Seconds()
				})
		}
	}
	pl.Finish = func() {
		for ki := range t.Series {
			s, sr := t.Series[ki], rel.Series[ki]
			var base float64
			for i := range s.Y {
				if s.X[i] == 0 {
					base = s.Y[i]
				}
				sr.Set(i, s.Y[i]/base)
			}
		}
	}
	return pl
}

// fig13 reproduces the NFS read throughput experiments.
func fig13(opt Options) *Plan {
	opt.fill()
	fileMB := int64(opt.NFSFileMB)
	streams := []int{1, 2, 4, 8}
	if opt.Quick {
		streams = []int{1, 8}
	}
	iozone := func(srv *nfs.Server, cl *nfs.Client, env *sim.Env, threads int) float64 {
		srv.AddSyntheticFile("f", fileMB<<20)
		return nfs.IOzone(env, cl, "f", nfs.IOzoneConfig{
			FileSize: fileMB << 20, RecordSize: 256 << 10, Threads: threads,
		})
	}
	pl := &Plan{}
	// (a) NFS/RDMA: LAN vs WAN delays.
	a := stats.NewTable("Figure 13(a): NFS/RDMA read throughput",
		"Number of Streams", "Throughput (MillionBytes/s)")
	lan := a.AddSeries("LAN")
	for _, th := range streams {
		th := th
		pl.point(lan, float64(th), fmt.Sprintf("fig13a/LAN/%dstreams", th), func(m *Meter) float64 {
			env := m.NewEnv()
			tb := cluster.New(env, cluster.Config{NodesA: 2, NodesB: 1})
			srv, cl := nfs.MountRDMA(tb.A[1], tb.A[0])
			return iozone(srv, cl, env, th)
		})
	}
	wanDelays := []sim.Time{0, sim.Micros(10), sim.Micros(100), sim.Micros(1000)}
	if opt.Quick {
		wanDelays = []sim.Time{0, sim.Micros(1000)}
	}
	for _, d := range wanDelays {
		d := d
		s := a.AddSeries(fmt.Sprintf("%dusec", int64(d/sim.Microsecond)))
		for _, th := range streams {
			th := th
			pl.point(s, float64(th), fmt.Sprintf("fig13a/%s/%dstreams", delayLabel(d), th),
				func(m *Meter) float64 {
					env, tb := m.pair(d)
					srv, cl := nfs.MountRDMA(tb.B[0], tb.A[0])
					return iozone(srv, cl, env, th)
				})
		}
	}
	pl.Tables = append(pl.Tables, a)
	// (b), (c): transport comparison at 100 us and 1000 us.
	for _, d := range []sim.Time{sim.Micros(100), sim.Micros(1000)} {
		d := d
		t := stats.NewTable(
			fmt.Sprintf("Figure 13(%s): NFS read throughput, RDMA vs IPoIB, %s",
				map[sim.Time]string{sim.Micros(100): "b", sim.Micros(1000): "c"}[d], delayLabel(d)),
			"Number of Streams", "Throughput (MillionBytes/s)")
		rdma := t.AddSeries("RDMA")
		rc := t.AddSeries("IPoIB-RC")
		ud := t.AddSeries("IPoIB-UD")
		for _, th := range streams {
			th := th
			label := fmt.Sprintf("fig13/%s/%dstreams", delayLabel(d), th)
			pl.point(rdma, float64(th), label+"/rdma", func(m *Meter) float64 {
				env, tb := m.pair(d)
				srv, cl := nfs.MountRDMA(tb.B[0], tb.A[0])
				return iozone(srv, cl, env, th)
			})
			pl.point(rc, float64(th), label+"/ipoib-rc", func(m *Meter) float64 {
				env, tb := m.pair(d)
				srv, cl, err := nfs.MountTCP(env, tb.B[0], tb.A[0], ipoib.Connected)
				m.Check(err)
				return iozone(srv, cl, env, th)
			})
			pl.point(ud, float64(th), label+"/ipoib-ud", func(m *Meter) float64 {
				env, tb := m.pair(d)
				srv, cl, err := nfs.MountTCP(env, tb.B[0], tb.A[0], ipoib.Datagram)
				m.Check(err)
				return iozone(srv, cl, env, th)
			})
		}
		pl.Tables = append(pl.Tables, t)
	}
	return pl
}
