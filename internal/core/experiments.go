package core

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/ib"
	"repro/internal/ipoib"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/nfs"
	"repro/internal/perftest"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcpsim"
	"repro/internal/wan"
)

// Experiment identifiers, in the paper's order.
var ExperimentIDs = []string{
	"table1", "fig3", "fig4", "fig5", "fig6", "fig7",
	"fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
}

// Run generates the tables for one experiment id. The options control the
// heavyweight experiments; zero values select paper-fidelity settings.
func Run(id string, opt Options) []*stats.Table {
	switch id {
	case "table1":
		return Table1()
	case "fig3":
		return Fig3()
	case "fig4":
		return Fig4(opt)
	case "fig5":
		return Fig5(opt)
	case "fig6":
		return Fig6(opt)
	case "fig7":
		return Fig7(opt)
	case "fig8":
		return Fig8(opt)
	case "fig9":
		return Fig9(opt)
	case "fig10":
		return Fig10(opt)
	case "fig11":
		return Fig11(opt)
	case "fig12":
		return Fig12(opt)
	case "fig13":
		return Fig13(opt)
	}
	panic(fmt.Sprintf("core: unknown experiment %q", id))
}

// Options tunes experiment weight without changing shape.
type Options struct {
	// NASClass selects the NAS problem class for fig12 ("B" = paper;
	// "A"/"W" are faster). Default "B" ("W" under Quick).
	NASClass string
	// NFSFileMB is the IOzone file size in MB (paper: 512). Throughput is
	// steady-state, so smaller files give the same numbers faster.
	// Default 512.
	NFSFileMB int
	// TCPMillis is the per-point measurement window for the TCP
	// experiments in milliseconds of virtual time at zero delay; it is
	// scaled up with delay automatically. Default 60.
	TCPMillis int
	// Quick shrinks every sweep (fewer delays, sizes, streams, smaller
	// worlds) for smoke runs; shapes remain visible but are coarser.
	Quick bool
}

func (o *Options) fill() {
	if o.NASClass == "" {
		o.NASClass = "B"
		if o.Quick {
			o.NASClass = "W"
		}
	}
	if o.NFSFileMB == 0 {
		o.NFSFileMB = 512
		if o.Quick {
			o.NFSFileMB = 16
		}
	}
	if o.TCPMillis == 0 {
		o.TCPMillis = 60
		if o.Quick {
			o.TCPMillis = 10
		}
	}
}

// delays returns the WAN delay sweep.
func (o Options) delays() []sim.Time {
	if o.Quick {
		return []sim.Time{0, sim.Micros(1000)}
	}
	return cluster.PaperDelays()
}

// sizes returns the message-size sweep between lo and hi.
func (o Options) sizes(lo, hi int) []int {
	all := stats.Sizes(lo, hi)
	if !o.Quick || len(all) <= 3 {
		return all
	}
	return []int{all[0], all[len(all)/2], all[len(all)-1]}
}

// RunAll generates every experiment, rendering each table to w as it
// completes.
func RunAll(w io.Writer, opt Options) {
	for _, id := range ExperimentIDs {
		fmt.Fprintf(w, "=== %s ===\n", id)
		for _, t := range Run(id, opt) {
			t.Render(w)
		}
	}
}

// delayLabel formats a delay series label in the paper's style.
func delayLabel(d sim.Time) string {
	if d == 0 {
		return "no-delay"
	}
	return fmt.Sprintf("%dus-delay", int64(d/sim.Microsecond))
}

// hcaPair builds the standard one-node-per-cluster WAN testbed.
func hcaPair(delay sim.Time) (*sim.Env, *cluster.Testbed) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	return env, tb
}

// Table1 reproduces the delay/distance mapping.
func Table1() []*stats.Table {
	t := stats.NewTable("Table 1: Delay Overhead corresponding to Wire Length",
		"Distance (km)", "Delay (us)")
	s := t.AddSeries("delay")
	for _, km := range []float64{10, 20, 200, 2000, 20000} {
		s.Add(km, wan.DelayForDistance(km).Microseconds())
	}
	return []*stats.Table{t}
}

// Fig3 reproduces the verbs-level small-message latency comparison.
func Fig3() []*stats.Table {
	t := stats.NewTable("Figure 3: Verbs-level Latency (8-byte messages)",
		"Configuration", "Latency (us)")
	const iters = 100
	measure := func(f func(env *sim.Env, a, b *ib.HCA) sim.Time) float64 {
		env, tb := hcaPair(0)
		return f(env, tb.A[0].HCA, tb.B[0].HCA).Microseconds()
	}
	// Through the Longbow pair at zero configured delay.
	udLat := measure(func(env *sim.Env, a, b *ib.HCA) sim.Time {
		return perftest.SendLatency(env, a, b, ib.UD, 8, iters)
	})
	rcLat := measure(func(env *sim.Env, a, b *ib.HCA) sim.Time {
		return perftest.SendLatency(env, a, b, ib.RC, 8, iters)
	})
	wrLat := measure(func(env *sim.Env, a, b *ib.HCA) sim.Time {
		return perftest.WriteLatency(env, a, b, 8, iters)
	})
	// Back-to-back DDR nodes, no Longbows.
	env := sim.NewEnv()
	f := ib.NewFabric(env)
	a, b := f.AddHCA("a"), f.AddHCA("b")
	f.Connect(a, b, ib.DDR, ib.DefaultCableDelay)
	f.Finalize()
	b2b := perftest.SendLatency(env, a, b, ib.RC, 8, iters).Microseconds()
	for i, row := range []struct {
		name string
		val  float64
	}{
		{"SendRecv/UD", udLat},
		{"SendRecv/RC", rcLat},
		{"RDMAWrite/RC", wrLat},
		{"BackToBack-SR/RC", b2b},
	} {
		s := t.AddSeries(row.name)
		s.Add(float64(i), row.val)
	}
	return []*stats.Table{t}
}

// bwCount picks a message count that keeps per-point cost bounded while
// giving a stable estimate (large messages get at least 64 MB of traffic
// so the one-time pipe fill does not dominate at 10 ms delay).
func bwCount(size int) int {
	c := 64 << 20 / size
	if c < 16 {
		c = 16
	}
	if c > 2048 {
		c = 2048
	}
	return c
}

// Fig4 reproduces verbs UD bandwidth and bidirectional bandwidth vs delay.
func Fig4(opt Options) []*stats.Table {
	opt.fill()
	bw := stats.NewTable("Figure 4(a): Verbs-level UD Bandwidth",
		"Message Size (Bytes)", "Bandwidth (MillionBytes/s)")
	bibw := stats.NewTable("Figure 4(b): Verbs-level UD Bidirectional Bandwidth",
		"Message Size (Bytes)", "Bidirectional Bandwidth (MillionBytes/s)")
	for _, d := range opt.delays() {
		s1 := bw.AddSeries("UD-" + delayLabel(d))
		s2 := bibw.AddSeries("UD-" + delayLabel(d))
		for _, size := range opt.sizes(2, ib.MaxUDPayload) {
			env, tb := hcaPair(d)
			s1.Add(float64(size), perftest.BandwidthUD(env, tb.A[0].HCA, tb.B[0].HCA, size, bwCount(size)))
			env2, tb2 := hcaPair(d)
			s2.Add(float64(size), perftest.BiBandwidthUD(env2, tb2.A[0].HCA, tb2.B[0].HCA, size, bwCount(size)))
		}
	}
	return []*stats.Table{bw, bibw}
}

// Fig5 reproduces verbs RC bandwidth and bidirectional bandwidth vs delay.
func Fig5(opt Options) []*stats.Table {
	opt.fill()
	bw := stats.NewTable("Figure 5(a): Verbs-level RC Bandwidth",
		"Message Size (Bytes)", "Bandwidth (MillionBytes/s)")
	bibw := stats.NewTable("Figure 5(b): Verbs-level RC Bidirectional Bandwidth",
		"Message Size (Bytes)", "Bidirectional Bandwidth (MillionBytes/s)")
	for _, d := range opt.delays() {
		s1 := bw.AddSeries("RC-" + delayLabel(d))
		s2 := bibw.AddSeries("RC-" + delayLabel(d))
		for _, size := range opt.sizes(2, 4<<20) {
			env, tb := hcaPair(d)
			s1.Add(float64(size), perftest.BandwidthRC(env, tb.A[0].HCA, tb.B[0].HCA, size, bwCount(size), 0))
			env2, tb2 := hcaPair(d)
			s2.Add(float64(size), perftest.BiBandwidthRC(env2, tb2.A[0].HCA, tb2.B[0].HCA, size, bwCount(size), 0))
		}
	}
	return []*stats.Table{bw, bibw}
}

// tcpPoint measures aggregate TCP throughput for the given IPoIB mode, MTU,
// window, stream count and delay.
func tcpPoint(mode ipoib.Mode, mtu int, window int, streams int, d sim.Time, opt Options) float64 {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: d})
	net := ipoib.NewNetwork()
	da := net.Attach(tb.A[0].HCA, mode, mtu)
	db := net.Attach(tb.B[0].HCA, mode, mtu)
	sa := tcpsim.NewStack(da, tcpsim.Config{Window: window})
	sb := tcpsim.NewStack(db, tcpsim.Config{Window: window})
	// Measurement window scales with delay so slow starts and pipe fills
	// finish inside the first half.
	dur := sim.Time(opt.TCPMillis) * sim.Millisecond
	if d > 0 {
		dur += 60 * d
	}
	defer env.Shutdown()
	return tcpThroughput(env, sa, sb, streams, dur)
}

// tcpThroughput runs one-way flows for dur and returns the steady-state
// rate over the second half in MillionBytes/s.
func tcpThroughput(env *sim.Env, sa, sb *tcpsim.Stack, streams int, dur sim.Time) float64 {
	for i := 0; i < streams; i++ {
		port := 6000 + i
		ln := sb.Listen(port)
		env.Go("srv", func(p *sim.Proc) { ln.Accept(p) })
		env.Go("cli", func(p *sim.Proc) {
			c := sa.Dial(p, sb.Addr(), port)
			for {
				// The paper sends 2 MB application messages.
				c.WriteSynthetic(p, 2<<20)
			}
		})
	}
	env.RunUntil(dur / 2)
	mid := sb.Stats().RxBytes
	env.RunUntil(dur)
	end := sb.Stats().RxBytes
	return float64(end-mid) / (dur / 2).Seconds() / 1e6
}

// Fig6 reproduces IPoIB-UD throughput: (a) single stream with varying TCP
// windows, (b) parallel streams, both vs WAN delay.
func Fig6(opt Options) []*stats.Table {
	opt.fill()
	a := stats.NewTable("Figure 6(a): IPoIB-UD single-stream throughput vs delay",
		"Delay (usecs)", "Throughput (MillionBytes/s)")
	windows := []struct {
		label string
		bytes int
	}{
		{"64k-window", 64 << 10},
		{"256k-window", 256 << 10},
		{"512k-window", 512 << 10},
		{"default-window", 0},
	}
	for _, w := range windows {
		s := a.AddSeries(w.label)
		for _, d := range opt.delays() {
			s.Add(d.Microseconds(), tcpPoint(ipoib.Datagram, 0, w.bytes, 1, d, opt))
		}
	}
	b := stats.NewTable("Figure 6(b): IPoIB-UD parallel-stream throughput vs delay",
		"Delay (usecs)", "Throughput (MillionBytes/s)")
	streams := []int{1, 2, 4, 6, 8}
	if opt.Quick {
		streams = []int{1, 4}
	}
	for _, n := range streams {
		s := b.AddSeries(fmt.Sprintf("%d-streams", n))
		for _, d := range opt.delays() {
			s.Add(d.Microseconds(), tcpPoint(ipoib.Datagram, 0, 0, n, d, opt))
		}
	}
	return []*stats.Table{a, b}
}

// Fig7 reproduces IPoIB-RC throughput: (a) single stream with varying IP
// MTUs, (b) parallel streams, both vs WAN delay.
func Fig7(opt Options) []*stats.Table {
	opt.fill()
	a := stats.NewTable("Figure 7(a): IPoIB-RC single-stream throughput vs delay",
		"Delay (usecs)", "Throughput (MillionBytes/s)")
	mtus := []int{2044, 16380, 65532}
	if opt.Quick {
		mtus = []int{2044, 65532}
	}
	for _, mtu := range mtus {
		s := a.AddSeries(fmt.Sprintf("%dK-MTU", (mtu+4)>>10))
		for _, d := range opt.delays() {
			s.Add(d.Microseconds(), tcpPoint(ipoib.Connected, mtu, 0, 1, d, opt))
		}
	}
	b := stats.NewTable("Figure 7(b): IPoIB-RC parallel-stream throughput vs delay",
		"Delay (usecs)", "Throughput (MillionBytes/s)")
	streams2 := []int{1, 2, 4, 6, 8}
	if opt.Quick {
		streams2 = []int{1, 4}
	}
	for _, n := range streams2 {
		s := b.AddSeries(fmt.Sprintf("%d-streams", n))
		for _, d := range opt.delays() {
			s.Add(d.Microseconds(), tcpPoint(ipoib.Connected, 0, 0, n, d, opt))
		}
	}
	return []*stats.Table{a, b}
}

// mpiWorld builds a fresh 2-rank cross-WAN world.
func mpiWorld(delay sim.Time, cfg mpi.Config) *mpi.World {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	return mpi.NewWorld(env, []*cluster.Node{tb.A[0], tb.B[0]}, cfg)
}

// mpiIters bounds per-point cost for the MPI bandwidth loops.
func mpiIters(size int) int {
	if size >= 1<<20 {
		return 1
	}
	if size >= 64<<10 {
		return 2
	}
	return 4
}

// Fig8 reproduces MPI bandwidth and bidirectional bandwidth vs delay.
func Fig8(opt Options) []*stats.Table {
	opt.fill()
	bw := stats.NewTable("Figure 8(a): MPI Bandwidth (MVAPICH2-model)",
		"Message Size (Bytes)", "Bandwidth (MillionBytes/s)")
	bibw := stats.NewTable("Figure 8(b): MPI Bidirectional Bandwidth",
		"Message Size (Bytes)", "Bidirectional Bandwidth (MillionBytes/s)")
	for _, d := range opt.delays() {
		s1 := bw.AddSeries("MVAPICH-" + delayLabel(d))
		s2 := bibw.AddSeries("MVAPICH-" + delayLabel(d))
		for _, size := range opt.sizes(1, 4<<20) {
			w := mpiWorld(d, mpi.Config{})
			s1.Add(float64(size), mpi.Bandwidth(w, size, mpiIters(size)))
			w.Shutdown()
			w2 := mpiWorld(d, mpi.Config{})
			s2.Add(float64(size), mpi.BiBandwidth(w2, size, mpiIters(size)))
			w2.Shutdown()
		}
	}
	return []*stats.Table{bw, bibw}
}

// Fig9 reproduces the rendezvous-threshold tuning experiment at 1 ms delay.
func Fig9(opts ...Options) []*stats.Table {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	opt.fill()
	const delay = 1000 // microseconds
	bw := stats.NewTable("Figure 9(a): MPI Bandwidth with protocol thresholds, 1ms delay",
		"Message Size (Bytes)", "Bandwidth (MillionBytes/s)")
	bibw := stats.NewTable("Figure 9(b): MPI Bidirectional Bandwidth with protocol thresholds, 1ms delay",
		"Message Size (Bytes)", "Bidirectional Bandwidth (MillionBytes/s)")
	cfgs := []struct {
		label string
		cfg   mpi.Config
	}{
		{"thresh-8k (original)", mpi.Config{}},
		{"thresh-64k (tuned)", mpi.Config{EagerThreshold: TunedThreshold}},
	}
	for _, c := range cfgs {
		s1 := bw.AddSeries(c.label)
		s2 := bibw.AddSeries(c.label)
		for _, size := range opt.sizes(1<<10, 64<<10) {
			w := mpiWorld(sim.Micros(delay), c.cfg)
			s1.Add(float64(size), mpi.Bandwidth(w, size, 4))
			w.Shutdown()
			w2 := mpiWorld(sim.Micros(delay), c.cfg)
			s2.Add(float64(size), mpi.BiBandwidth(w2, size, 4))
			w2.Shutdown()
		}
	}
	return []*stats.Table{bw, bibw}
}

// Fig10 reproduces the multi-pair aggregate message rate at three delays.
func Fig10(opt Options) []*stats.Table {
	opt.fill()
	delays := []sim.Time{sim.Micros(10), sim.Micros(1000), sim.Micros(10000)}
	pairCounts := []int{4, 8, 16}
	if opt.Quick {
		delays = []sim.Time{sim.Micros(1000)}
		pairCounts = []int{2, 4}
	}
	var out []*stats.Table
	for _, d := range delays {
		t := stats.NewTable(
			fmt.Sprintf("Figure 10: Multi-pair message rate, %s", delayLabel(d)),
			"Message Size (Bytes)", "Message Rate (Million Messages/s)")
		for _, pairs := range pairCounts {
			s := t.AddSeries(fmt.Sprintf("%d pairs", pairs))
			for _, size := range opt.sizes(1, 32<<10) {
				env := sim.NewEnv()
				tb := cluster.New(env, cluster.Config{NodesA: pairs, NodesB: pairs, Delay: d})
				var nodes []*cluster.Node
				nodes = append(nodes, tb.A...)
				nodes = append(nodes, tb.B...)
				w := mpi.NewWorld(env, nodes, mpi.Config{})
				s.Add(float64(size), mpi.MessageRate(w, pairs, size, 2))
				w.Shutdown()
			}
		}
		out = append(out, t)
	}
	return out
}

// Fig11 reproduces the broadcast comparison: the stock algorithm vs the
// WAN-aware hierarchical broadcast, 64+64 processes, three delays.
func Fig11(opt Options) []*stats.Table {
	opt.fill()
	delays := []sim.Time{sim.Micros(10), sim.Micros(100), sim.Micros(1000)}
	sizes := []int{4, 16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10}
	nodesPerCluster := 32
	if opt.Quick {
		delays = []sim.Time{sim.Micros(1000)}
		sizes = []int{64, 128 << 10}
		nodesPerCluster = 4
	}
	var out []*stats.Table
	for _, d := range delays {
		t := stats.NewTable(
			fmt.Sprintf("Figure 11: MPI broadcast latency over IB WAN, %s", delayLabel(d)),
			"Message Size (Bytes)", "Latency (us)")
		orig := t.AddSeries("Original")
		mod := t.AddSeries("Modified")
		for _, size := range sizes {
			for _, hier := range []bool{false, true} {
				env := sim.NewEnv()
				tb := cluster.New(env, cluster.Config{NodesA: nodesPerCluster, NodesB: nodesPerCluster, Delay: d})
				placement := mpi.BlockPlacement(tb.Nodes(), 2)
				w := mpi.NewWorld(env, placement, mpi.Config{})
				lat := mpi.BcastLatency(w, size, 3, hier).Microseconds()
				if hier {
					mod.Add(float64(size), lat)
				} else {
					orig.Add(float64(size), lat)
				}
				w.Shutdown()
			}
		}
		out = append(out, t)
	}
	return out
}

// Fig12 reproduces the NAS benchmark delay sweep: 64 processes, 32 per
// cluster, execution time vs WAN delay.
func Fig12(opt Options) []*stats.Table {
	opt.fill()
	t := stats.NewTable(
		fmt.Sprintf("Figure 12: NAS class %s execution time (64 procs, 32+32)", opt.NASClass),
		"Delay (usecs)", "Execution Time (s)")
	rel := stats.NewTable(
		fmt.Sprintf("Figure 12 (derived): NAS class %s slowdown vs zero delay", opt.NASClass),
		"Delay (usecs)", "Slowdown (x)")
	nasNodes := 32
	if opt.Quick {
		nasNodes = 8
	}
	kernels := nas.AllKernels()
	if opt.Quick {
		kernels = nas.Kernels()
	}
	for _, k := range kernels {
		s := t.AddSeries(k)
		sr := rel.AddSeries(k)
		var base float64
		for _, d := range opt.delays() {
			env := sim.NewEnv()
			tb := cluster.New(env, cluster.Config{NodesA: nasNodes, NodesB: nasNodes, Delay: d})
			var nodes []*cluster.Node
			nodes = append(nodes, tb.A...)
			nodes = append(nodes, tb.B...)
			w := mpi.NewWorld(env, nodes, mpi.Config{})
			elapsed := nas.RunClass(w, k, opt.NASClass).Seconds()
			w.Shutdown()
			s.Add(d.Microseconds(), elapsed)
			if d == 0 {
				base = elapsed
			}
			sr.Add(d.Microseconds(), elapsed/base)
		}
	}
	return []*stats.Table{t, rel}
}

// Fig13 reproduces the NFS read throughput experiments.
func Fig13(opt Options) []*stats.Table {
	opt.fill()
	fileMB := int64(opt.NFSFileMB)
	streams := []int{1, 2, 4, 8}
	if opt.Quick {
		streams = []int{1, 8}
	}
	iozone := func(srv *nfs.Server, cl *nfs.Client, env *sim.Env, threads int) float64 {
		srv.AddSyntheticFile("f", fileMB<<20)
		return nfs.IOzone(env, cl, "f", nfs.IOzoneConfig{
			FileSize: fileMB << 20, RecordSize: 256 << 10, Threads: threads,
		})
	}
	// (a) NFS/RDMA: LAN vs WAN delays.
	a := stats.NewTable("Figure 13(a): NFS/RDMA read throughput",
		"Number of Streams", "Throughput (MillionBytes/s)")
	lan := a.AddSeries("LAN")
	for _, th := range streams {
		env := sim.NewEnv()
		tb := cluster.New(env, cluster.Config{NodesA: 2, NodesB: 1})
		srv, cl := nfs.MountRDMA(tb.A[1], tb.A[0])
		lan.Add(float64(th), iozone(srv, cl, env, th))
		env.Shutdown()
	}
	wanDelays := []sim.Time{0, sim.Micros(10), sim.Micros(100), sim.Micros(1000)}
	if opt.Quick {
		wanDelays = []sim.Time{0, sim.Micros(1000)}
	}
	for _, d := range wanDelays {
		s := a.AddSeries(fmt.Sprintf("%dusec", int64(d/sim.Microsecond)))
		for _, th := range streams {
			env, tb := hcaPair(d)
			srv, cl := nfs.MountRDMA(tb.B[0], tb.A[0])
			s.Add(float64(th), iozone(srv, cl, env, th))
			env.Shutdown()
		}
	}
	// (b), (c): transport comparison at 100 us and 1000 us.
	var out []*stats.Table
	out = append(out, a)
	for _, d := range []sim.Time{sim.Micros(100), sim.Micros(1000)} {
		t := stats.NewTable(
			fmt.Sprintf("Figure 13(%s): NFS read throughput, RDMA vs IPoIB, %s",
				map[sim.Time]string{sim.Micros(100): "b", sim.Micros(1000): "c"}[d], delayLabel(d)),
			"Number of Streams", "Throughput (MillionBytes/s)")
		rdma := t.AddSeries("RDMA")
		rc := t.AddSeries("IPoIB-RC")
		ud := t.AddSeries("IPoIB-UD")
		for _, th := range streams {
			env, tb := hcaPair(d)
			srv, cl := nfs.MountRDMA(tb.B[0], tb.A[0])
			rdma.Add(float64(th), iozone(srv, cl, env, th))
			env.Shutdown()

			env2, tb2 := hcaPair(d)
			srv2, cl2 := nfs.MountTCP(env2, tb2.B[0], tb2.A[0], ipoib.Connected)
			rc.Add(float64(th), iozone(srv2, cl2, env2, th))
			env2.Shutdown()

			env3, tb3 := hcaPair(d)
			srv3, cl3 := nfs.MountTCP(env3, tb3.B[0], tb3.A[0], ipoib.Datagram)
			ud.Add(float64(th), iozone(srv3, cl3, env3, th))
			env3.Shutdown()
		}
		out = append(out, t)
	}
	return out
}
