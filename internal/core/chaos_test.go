package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/fault"
)

// renderWithErrors renders an experiment the way RunAllWith does — tables
// plus the per-point error lines — for byte-comparison.
func renderWithErrors(res Result) string {
	var buf bytes.Buffer
	for _, t := range res.Tables {
		t.Render(&buf)
	}
	RenderErrors(&buf, res.Errors)
	return buf.String()
}

// TestDeadWANTerminates is the end-to-end recovery acceptance test: with
// the WAN permanently down, every experiment in the registry must
// terminate (no hang, no crash), and every WAN-dependent experiment must
// report explicit per-point errors rather than silent zeros or partial
// garbage.
func TestDeadWANTerminates(t *testing.T) {
	if testing.Short() {
		t.Skip("dead-WAN sweep skipped in -short mode")
	}
	opt := Options{Quick: true}
	plan := &fault.Plan{Seed: 1, WANDown: true}
	for _, id := range ExperimentIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			res := RunWith(id, opt, RunnerOptions{Workers: 4, Fault: plan})
			// table1 computes delay budgets without touching the WAN link,
			// and the loss-* family overrides the run-wide plan with its
			// own per-point plans (TestRunWideFaultOverride pins that);
			// everything else crosses the dead link and must surface
			// failures.
			if id == "table1" || strings.HasPrefix(id, "loss-") {
				if len(res.Errors) != 0 {
					t.Errorf("%s reported errors with WAN down: %v", id, res.Errors)
				}
				return
			}
			if len(res.Errors) == 0 {
				t.Fatalf("%s reported no point errors with WAN permanently down", id)
			}
			for _, e := range res.Errors {
				if e.Label == "" || e.Err == "" {
					t.Errorf("%s: empty error row %+v", id, e)
				}
			}
			// Every error row must have landed as a NaN cell (rendered ERR),
			// never as a fabricated number.
			nan := 0
			for _, tab := range res.Tables {
				for _, s := range tab.Series {
					for _, y := range s.Y {
						if math.IsNaN(y) {
							nan++
						}
					}
				}
			}
			if nan < len(res.Errors) {
				t.Errorf("%s: %d error rows but only %d NaN cells", id, len(res.Errors), nan)
			}
			if !strings.Contains(renderWithErrors(res), "ERR") {
				t.Errorf("%s: rendered output has no ERR cell despite %d errors", id, len(res.Errors))
			}
		})
	}
}

// TestDeadWANDeterministic checks that even failure output is reproducible:
// the same dead-WAN run, sequential vs parallel, renders byte-identically —
// error rows included.
func TestDeadWANDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("dead-WAN determinism check skipped in -short mode")
	}
	opt := Options{Quick: true}
	plan := &fault.Plan{Seed: 1, WANDown: true}
	for _, id := range []string{"fig5", "fig8", "loss-goodput"} {
		seq := renderWithErrors(RunWith(id, opt, RunnerOptions{Workers: 1, Fault: plan}))
		par := renderWithErrors(RunWith(id, opt, RunnerOptions{Workers: 8, Fault: plan}))
		if seq != par {
			t.Errorf("%s: dead-WAN output diverges across worker counts\n--- par=1 ---\n%s\n--- par=8 ---\n%s",
				id, seq, par)
		}
	}
}

// TestLossFamilyRepeatable runs each loss-* experiment twice at different
// worker counts and requires byte-identical output: the per-point seeded
// fault plans must make the injected randomness a pure function of the
// point identity.
func TestLossFamilyRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("loss-family determinism sweep skipped in -short mode")
	}
	opt := Options{Quick: true}
	for _, id := range ExperimentIDs {
		if !strings.HasPrefix(id, "loss-") {
			continue
		}
		id := id
		t.Run(id, func(t *testing.T) {
			first := renderWithErrors(RunWith(id, opt, RunnerOptions{Workers: 8}))
			second := renderWithErrors(RunWith(id, opt, RunnerOptions{Workers: 3}))
			if first != second {
				t.Errorf("repeated runs diverge\n--- run 1 (par=8) ---\n%s\n--- run 2 (par=3) ---\n%s",
					first, second)
			}
			if strings.Contains(first, "ERR") {
				t.Errorf("loss experiment has failing points at its configured rates:\n%s", first)
			}
		})
	}
}

// TestRunWideFaultOverride checks the precedence rule: a point that
// installs its own plan (the loss-* family) overrides the run-wide chaos
// plan, so loss-goodput under a run-wide dead-WAN plan still measures its
// configured loss rates rather than failing everywhere.
func TestRunWideFaultOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("fault override check skipped in -short mode")
	}
	opt := Options{Quick: true}
	clean := renderWithErrors(RunWith("loss-goodput", opt, RunnerOptions{Workers: 4}))
	chaos := renderWithErrors(RunWith("loss-goodput", opt,
		RunnerOptions{Workers: 4, Fault: &fault.Plan{Seed: 1, WANDown: true}}))
	if clean != chaos {
		t.Errorf("per-point plans did not override the run-wide plan\n--- clean ---\n%s\n--- chaos ---\n%s",
			clean, chaos)
	}
}
