package core

import (
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// metricsFingerprint snapshots the deterministic subset of a registry:
// counters and histograms. Gauges are last-write-wins and so depend on
// point completion order under concurrent workers.
func metricsFingerprint(r *telemetry.Registry) []telemetry.MetricSnapshot {
	var out []telemetry.MetricSnapshot
	for _, s := range r.Snapshot() {
		if s.Kind == "gauge" {
			continue
		}
		out = append(out, s)
	}
	return out
}

// TestTelemetryMetricsDeterministic runs the same experiment with 1 and 4
// workers and requires identical counter and histogram totals: metric
// recording must not perturb, nor be perturbed by, point scheduling.
func TestTelemetryMetricsDeterministic(t *testing.T) {
	run := func(workers int) []telemetry.MetricSnapshot {
		tel := &telemetry.Telemetry{Metrics: telemetry.NewRegistry()}
		RunWith("fig8", Options{Quick: true}, RunnerOptions{Workers: workers, Telemetry: tel})
		return metricsFingerprint(tel.Metrics)
	}
	seq := run(1)
	par := run(4)
	if len(seq) == 0 {
		t.Fatal("no metrics recorded")
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("metrics differ between 1 and 4 workers:\nseq: %+v\npar: %+v", seq, par)
	}
	// The layers the experiment exercises must have reported: eager and
	// rendezvous traffic and WAN link activity.
	names := map[string]bool{}
	for _, s := range seq {
		names[s.Name] = true
	}
	for _, want := range []string{"mpi.eager.msgs", "mpi.rndv.msgs", "mpi.rndv.handshake.ns", "wan.link.tx.pkts", "ib.rc.window.occupancy"} {
		if !names[want] {
			t.Errorf("metric %q missing from fig8 run", want)
		}
	}
}

// TestTelemetrySpansForceSequential checks that span recording drops the
// runner to one worker (the recorder is single-writer) and that the
// harness emits one top-level span per measurement point.
func TestTelemetrySpansForceSequential(t *testing.T) {
	tel := &telemetry.Telemetry{
		Metrics: telemetry.NewRegistry(),
		Spans:   telemetry.NewRecorder(0, 0),
	}
	res := RunWith("fig3", Options{Quick: true}, RunnerOptions{Workers: 4, Telemetry: tel})
	if res.Metrics.Workers != 1 {
		t.Errorf("workers = %d, want 1 (span recorder is single-writer)", res.Metrics.Workers)
	}
	points := 0
	for _, s := range tel.Spans.Spans() {
		if s.Depth == 1 && s.Parent == 0 && s.Track == tel.Spans.Track("harness", "points") {
			points++
		}
	}
	if points != res.Metrics.Points {
		t.Errorf("harness spans = %d, want one per point (%d)", points, res.Metrics.Points)
	}
}
