package core

import (
	"strings"
	"testing"
)

// TestFailoverDeterminismMatrix pins the failover family's byte-identity
// across the execution matrix: ring4 x failover-kill (a mid-run link kill
// with the self-healing layer armed) must render identically sequential,
// point-parallel, sharded, and both combined — and the base run must be
// all measurements, no ERR rows. The kill is a scheduled flap (a pure
// function of simulated time), so the sharded scheduler's swap-on-epoch
// re-sweep has to reproduce the classic path exactly.
func TestFailoverDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("failover determinism matrix skipped in -short mode")
	}
	opt := Options{Quick: true, Topo: "ring4"}
	base := renderTables(RunWith("failover-kill", opt, RunnerOptions{Workers: 1}))
	if strings.Contains(base, "ERR") {
		t.Fatalf("failover-kill on ring4 must land every measurement, got ERR rows:\n%s", base)
	}
	for _, ropt := range []RunnerOptions{
		{Workers: 1, ShardWorkers: 4},
		{Workers: 8},
		{Workers: 2, ShardWorkers: 2},
	} {
		got := renderTables(RunWith("failover-kill", opt, ropt))
		if got != base {
			t.Fatalf("output diverges at workers=%d shards=%d\n--- sequential ---\n%s\n--- got ---\n%s",
				ropt.Workers, ropt.ShardWorkers, base, got)
		}
	}
}

// TestFailoverPartitionTerminates is the graceful-degradation contract: on
// a star topology every satellite's only path runs through the hub, so
// killing a link leaves no alternate route. The run must still terminate
// — the affected points degrade to explicit ERR rows (bounded retries,
// then StatusRetryExceeded) instead of hanging, and the unaffected
// points still measure.
func TestFailoverPartitionTerminates(t *testing.T) {
	if testing.Short() {
		t.Skip("failover partition test skipped in -short mode")
	}
	opt := Options{Quick: true, Topo: "star3"}
	out := renderTables(RunWith("failover-kill", opt, RunnerOptions{Workers: 1}))
	if !strings.Contains(out, "ERR") {
		t.Fatalf("star3 has no redundant paths; killing a link must degrade to ERR rows, got:\n%s", out)
	}
	if !strings.Contains(out, "no-fault") {
		t.Fatalf("missing no-fault baseline series:\n%s", out)
	}
}
