package core

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick exercises every experiment generator end to end
// in Quick mode and sanity-checks the output tables.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	opt := Options{Quick: true}
	for _, id := range ExperimentIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			opt := opt
			if strings.HasPrefix(id, "failover-") {
				// The failover family's happy path needs a redundant preset:
				// on the default star there is no alternate route, so entire
				// kill series degrade to ERR rows by design (that contract
				// is pinned by TestFailoverPartitionTerminates).
				opt.Topo = "ring4"
			}
			tabs := Run(id, opt)
			if len(tabs) == 0 {
				t.Fatalf("%s produced no tables", id)
			}
			for _, tab := range tabs {
				if tab.Title == "" {
					t.Errorf("%s: table without title", id)
				}
				if len(tab.Series) == 0 {
					t.Errorf("%s: table %q has no series", id, tab.Title)
				}
				for _, s := range tab.Series {
					if len(s.Y) == 0 {
						t.Errorf("%s: series %q empty", id, s.Label)
					}
					for _, y := range s.Y {
						if y < 0 {
							t.Errorf("%s: series %q has negative value %v", id, s.Label, y)
						}
					}
					if s.Max() <= 0 && !strings.Contains(tab.Title, "Table 1") {
						t.Errorf("%s: series %q all-zero", id, s.Label)
					}
				}
			}
		})
	}
}

// TestQuickShapesHold spot-checks that the headline orderings survive even
// the coarse Quick sweeps.
func TestQuickShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks skipped in -short mode")
	}
	opt := Options{Quick: true}

	// Fig5: at 1 ms delay, the largest size must far exceed the middle
	// size (RC window collapse).
	fig5 := Run("fig5", opt)[0]
	var far *seriesRef
	for _, s := range fig5.Series {
		if strings.Contains(s.Label, "1000us") {
			far = &seriesRef{s.X, s.Y}
		}
	}
	if far == nil {
		t.Fatal("fig5 missing 1000us series")
	}
	if far.Y[len(far.Y)-1] < 3*far.Y[len(far.Y)/2] {
		t.Errorf("fig5 quick: large/medium at 1ms = %v / %v, want >3x",
			far.Y[len(far.Y)-1], far.Y[len(far.Y)/2])
	}

	// Fig13(c): IPoIB-RC above RDMA at 1 ms.
	tabs := Run("fig13", opt)
	c := tabs[len(tabs)-1]
	var rdma, rc float64
	for _, s := range c.Series {
		switch s.Label {
		case "RDMA":
			rdma = s.Max()
		case "IPoIB-RC":
			rc = s.Max()
		}
	}
	if rc <= rdma {
		t.Errorf("fig13(c) quick: IPoIB-RC %v not above RDMA %v at 1ms", rc, rdma)
	}
}

type seriesRef struct {
	X, Y []float64
}
