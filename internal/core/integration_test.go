package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/ipoib"
	"repro/internal/mpi"
	"repro/internal/nfs"
	"repro/internal/sim"
)

// TestMPIOverLossyWAN injects packet loss on the WAN link and checks that
// RC retransmission keeps MPI correct (if slower).
func TestMPIOverLossyWAN(t *testing.T) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(100)})
	// Drop every 97th wire packet crossing the WAN.
	n := 0
	tb.WAN.Link().DropFn = func(_ sim.Time, wire int) bool {
		n++
		return n%97 == 0
	}
	w := mpi.NewWorld(env, []*cluster.Node{tb.A[0], tb.B[0]}, mpi.Config{
		QPWindow: 8,
	})
	defer w.Shutdown()
	rng := rand.New(rand.NewSource(11))
	payloads := make([][]byte, 20)
	for i := range payloads {
		payloads[i] = make([]byte, 1+rng.Intn(30000))
		rng.Read(payloads[i])
	}
	ok := true
	w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			for i, pl := range payloads {
				r.Send(p, 1, 100+i, pl, 0)
			}
		case 1:
			for i, pl := range payloads {
				buf := make([]byte, len(pl))
				got, _ := r.Recv(p, 0, 100+i, buf, 0)
				if got != len(pl) || !bytes.Equal(buf, pl) {
					ok = false
				}
			}
		}
	})
	if !ok {
		t.Error("MPI payloads corrupted over lossy WAN")
	}
	if tb.WAN.Link().Drops() == 0 {
		t.Error("fault injection never fired; test vacuous")
	}
}

// TestNFSWriteThroughput exercises the write path the paper omitted for
// space ("NFS Write shows similar performance").
func TestNFSWriteThroughput(t *testing.T) {
	measure := func(build func(env *sim.Env, tb *cluster.Testbed) (*nfs.Server, *nfs.Client)) float64 {
		env := sim.NewEnv()
		tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(100)})
		defer env.Shutdown()
		srv, cl := build(env, tb)
		srv.AddSyntheticFile("f", 32<<20)
		return nfs.IOzone(env, cl, "f", nfs.IOzoneConfig{
			FileSize: 32 << 20, Threads: 8, Write: true,
		})
	}
	rdma := measure(func(env *sim.Env, tb *cluster.Testbed) (*nfs.Server, *nfs.Client) {
		return nfs.MountRDMA(tb.B[0], tb.A[0])
	})
	tcpRC := measure(func(env *sim.Env, tb *cluster.Testbed) (*nfs.Server, *nfs.Client) {
		srv, cl, err := nfs.MountTCP(env, tb.B[0], tb.A[0], ipoib.Connected)
		if err != nil {
			t.Fatalf("MountTCP: %v", err)
		}
		return srv, cl
	})
	if rdma <= 0 || tcpRC <= 0 {
		t.Fatalf("write throughput rdma=%.1f tcp=%.1f", rdma, tcpRC)
	}
	// As with reads at 100 us, the RDMA path (server pulls via RDMA read)
	// should beat the TCP path.
	if rdma < tcpRC {
		t.Errorf("NFS write at 100us: RDMA %.1f < TCP-RC %.1f; expected RDMA ahead", rdma, tcpRC)
	}
}

// TestSharedWANContention runs MPI traffic and an NFS stream over the same
// Longbow pair concurrently: both must make progress, stay correct, and
// together respect the SDR wire capacity.
func TestSharedWANContention(t *testing.T) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 2, NodesB: 2, Delay: sim.Micros(100)})
	// NFS between pair 0.
	srv, cl := nfs.MountRDMA(tb.B[0], tb.A[0])
	srv.AddSyntheticFile("f", 16<<20)
	// MPI between pair 1.
	w := mpi.NewWorld(env, []*cluster.Node{tb.A[1], tb.B[1]}, mpi.Config{})
	defer w.Shutdown()

	var nfsBW float64
	nfsDone := env.NewEvent()
	env.Go("nfs-driver", func(p *sim.Proc) {
		fh, _, err := cl.Lookup(p, "f")
		if err != nil {
			t.Errorf("lookup: %v", err)
			nfsDone.Trigger(nil)
			return
		}
		start := p.Now()
		const rec = 256 << 10
		for off := int64(0); off < 16<<20; off += rec {
			cl.Read(p, fh, off, rec, nil)
		}
		nfsBW = float64(16<<20) / (p.Now() - start).Seconds() / 1e6
		nfsDone.Trigger(nil)
	})
	var mpiBW float64
	w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			start := p.Now()
			const count, size = 64, 256 << 10
			var reqs []*mpi.Request
			for i := 0; i < count; i++ {
				reqs = append(reqs, r.Isend(p, 1, 1, nil, size))
			}
			mpi.WaitAll(p, reqs)
			r.Recv(p, 1, 2, nil, 4)
			mpiBW = float64(count*size) / (p.Now() - start).Seconds() / 1e6
		case 1:
			for i := 0; i < 64; i++ {
				r.Recv(p, 0, 1, nil, 256<<10)
			}
			r.Send(p, 0, 2, nil, 4)
		}
		if r.ID() == 0 {
			p.Wait(nfsDone)
		}
	})
	if nfsBW <= 0 || mpiBW <= 0 {
		t.Fatalf("progress: nfs=%.1f mpi=%.1f", nfsBW, mpiBW)
	}
	// Combined goodput cannot exceed the SDR WAN wire rate.
	if nfsBW+mpiBW > 1000 {
		t.Errorf("combined WAN goodput %.1f MB/s exceeds SDR wire", nfsBW+mpiBW)
	}
	// And each should have been slowed by the other (not starved).
	if nfsBW < 50 || mpiBW < 50 {
		t.Errorf("starvation under contention: nfs=%.1f mpi=%.1f", nfsBW, mpiBW)
	}
}

// TestDeterministicExperiment runs the same experiment twice and requires
// bit-identical results.
func TestDeterministicExperiment(t *testing.T) {
	run := func() []float64 {
		var out []float64
		for _, tab := range Run("fig9", Options{}) {
			for _, s := range tab.Series {
				out = append(out, s.Y...)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
