package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Coalescer batches small messages into large carrier messages before
// sending them over MPI — the paper's "transferring data using large
// messages (message coalescing)" optimization. On a high-delay RC link the
// in-flight message window, not bandwidth, limits small-message throughput;
// packing k messages into one carrier multiplies effective throughput by
// nearly k.
//
// The wire format is a sequence of [4-byte length][payload] records, so
// coalesced streams carry real data end to end.
type Coalescer struct {
	rank      *Rank
	dst       int
	tag       int
	carrier   []byte
	threshold int
	pending   []*mpi.Request
	sent      int64
}

// Rank aliases mpi.Rank for the public API of this package.
type Rank = mpi.Rank

// NewCoalescer creates a coalescer sending to rank dst with the given tag;
// carriers are flushed when they reach threshold bytes (0 selects 64 KB, a
// size that stays efficient at high delay per Fig. 5).
func NewCoalescer(r *Rank, dst, tag, threshold int) *Coalescer {
	if threshold == 0 {
		threshold = 64 << 10
	}
	return &Coalescer{rank: r, dst: dst, tag: tag, threshold: threshold}
}

// Add queues one small message, flushing the carrier if it is full.
func (c *Coalescer) Add(p *sim.Proc, msg []byte) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
	c.carrier = append(c.carrier, hdr[:]...)
	c.carrier = append(c.carrier, msg...)
	if len(c.carrier) >= c.threshold {
		c.Flush(p)
	}
}

// Flush sends the current carrier (if any) without waiting for completion.
func (c *Coalescer) Flush(p *sim.Proc) {
	if len(c.carrier) == 0 {
		return
	}
	buf := c.carrier
	c.carrier = nil
	c.pending = append(c.pending, c.rank.Isend(p, c.dst, c.tag, buf, 0))
	c.sent++
}

// Wait flushes and blocks until every carrier has completed.
func (c *Coalescer) Wait(p *sim.Proc) {
	c.Flush(p)
	mpi.WaitAll(p, c.pending)
	c.pending = nil
}

// CarriersSent reports how many carrier messages have been sent.
func (c *Coalescer) CarriersSent() int64 { return c.sent }

// Decoalesce splits a received carrier back into the original messages.
func Decoalesce(carrier []byte) ([][]byte, error) {
	var out [][]byte
	for off := 0; off < len(carrier); {
		if off+4 > len(carrier) {
			return nil, fmt.Errorf("core: truncated coalesce header at %d", off)
		}
		n := int(binary.LittleEndian.Uint32(carrier[off:]))
		off += 4
		if off+n > len(carrier) {
			return nil, fmt.Errorf("core: truncated coalesced message at %d (len %d)", off, n)
		}
		out = append(out, carrier[off:off+n])
		off += n
	}
	return out, nil
}

// CoalescedReceiver receives carriers from src and yields the original
// messages in order.
type CoalescedReceiver struct {
	rank    *Rank
	src     int
	tag     int
	maxSize int
	queue   [][]byte
}

// NewCoalescedReceiver creates the receive side of a coalesced stream.
// maxSize bounds a single carrier (0 selects 1 MB).
func NewCoalescedReceiver(r *Rank, src, tag, maxSize int) *CoalescedReceiver {
	if maxSize == 0 {
		maxSize = 1 << 20
	}
	return &CoalescedReceiver{rank: r, src: src, tag: tag, maxSize: maxSize}
}

// Next blocks until the next original message is available and returns it.
func (cr *CoalescedReceiver) Next(p *sim.Proc) []byte {
	for len(cr.queue) == 0 {
		buf := make([]byte, cr.maxSize)
		n, _ := cr.rank.Recv(p, cr.src, cr.tag, buf, 0)
		msgs, err := Decoalesce(buf[:n])
		if err != nil {
			panic(err)
		}
		cr.queue = append(cr.queue, msgs...)
	}
	msg := cr.queue[0]
	cr.queue = cr.queue[1:]
	return msg
}
