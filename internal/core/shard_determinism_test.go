package core

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
)

// multisiteIDs lists the experiments that build N-site topologies — the
// family that actually partitions into shards.
func multisiteIDs() []string {
	var ids []string
	for _, id := range ExperimentIDs {
		if strings.HasPrefix(id, "multisite-") {
			ids = append(ids, id)
		}
	}
	return ids
}

// TestShardedMatchesSequential is the determinism matrix for the sharded
// scheduler: for every multisite experiment and every topology preset, the
// rendered output must be byte-identical across -shards=1, -shards=N and
// the point-parallel -par=8 path, with and without a wan-flap fault plan.
// TestCongestShardedDeterminism extends the matrix to the congest family on
// the heterogeneous-delay preset: congest-streams is the one experiment
// whose queue marks, drops and stalls feed back into endpoint pacing, so it
// proves bounded queues, ECN echo and go-back-N recovery stay byte-identical
// when queue state lives on the transmitting port's shard.
func TestCongestShardedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded determinism matrix skipped in -short mode")
	}
	opt := Options{Quick: true, Topo: "star3-hetero"}
	const id = "congest-streams"
	base := renderTables(RunWith(id, opt, RunnerOptions{Workers: 1}))
	if strings.Contains(base, "ERR") {
		t.Fatalf("congest-streams produced error rows:\n%s", base)
	}
	for _, ropt := range []RunnerOptions{
		{Workers: 1, ShardWorkers: 4},
		{Workers: 8},
		{Workers: 2, ShardWorkers: 2},
	} {
		got := renderTables(RunWith(id, opt, ropt))
		if got != base {
			t.Fatalf("output diverges at workers=%d shards=%d\n--- sequential ---\n%s\n--- got ---\n%s",
				ropt.Workers, ropt.ShardWorkers, base, got)
		}
	}
}

func TestShardedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded determinism matrix skipped in -short mode")
	}
	flap := &fault.Plan{Seed: 7, WANFlaps: []fault.FlapStep{
		{At: 2 * sim.Millisecond, Down: true},
		{At: 6 * sim.Millisecond, Down: false},
	}}
	for _, preset := range topo.PresetNames() {
		opt := Options{Quick: true, Topo: preset}
		for _, id := range multisiteIDs() {
			for _, plan := range []*fault.Plan{nil, flap} {
				plan := plan
				name := preset + "/" + id
				if plan != nil {
					name += "/wan-flap"
				}
				t.Run(name, func(t *testing.T) {
					base := renderTables(RunWith(id, opt, RunnerOptions{Workers: 1, Fault: plan}))
					for _, ropt := range []RunnerOptions{
						{Workers: 1, ShardWorkers: 4},
						{Workers: 8},
						{Workers: 2, ShardWorkers: 2},
					} {
						ropt.Fault = plan
						got := renderTables(RunWith(id, opt, ropt))
						if got != base {
							t.Fatalf("output diverges at workers=%d shards=%d\n--- sequential ---\n%s\n--- got ---\n%s",
								ropt.Workers, ropt.ShardWorkers, base, got)
						}
					}
				})
			}
		}
	}
}
