package core

import (
	"bytes"
	"testing"
)

// FuzzDecoalesce exercises the carrier parser against arbitrary bytes: it
// must never panic, and valid carriers must round-trip.
func FuzzDecoalesce(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 42})
	f.Add([]byte{255, 255, 255, 255})
	f.Add(bytes.Repeat([]byte{0}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, err := Decoalesce(data)
		if err != nil {
			return
		}
		// Valid parse: re-encoding through a coalescer frame must
		// reproduce the input.
		var rebuilt []byte
		for _, m := range msgs {
			var hdr [4]byte
			hdr[0] = byte(len(m))
			hdr[1] = byte(len(m) >> 8)
			hdr[2] = byte(len(m) >> 16)
			hdr[3] = byte(len(m) >> 24)
			rebuilt = append(rebuilt, hdr[:]...)
			rebuilt = append(rebuilt, m...)
		}
		if !bytes.Equal(rebuilt, data) {
			t.Fatalf("round trip mismatch: %v -> %v", data, rebuilt)
		}
	})
}
