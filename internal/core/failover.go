package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ib"
	"repro/internal/ipoib"
	"repro/internal/mpi"
	"repro/internal/nfs"
	"repro/internal/perftest"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcpsim"
	"repro/internal/topo"
)

// The failover-* family measures the fabric's self-healing routing layer
// (ib.Fabric.EnableFailover) on redundant topologies: a WAN link is killed
// mid-run and — unlike multisite-loss, which demonstrates fault isolation
// as explicit ERR rows — traffic reroutes over the surviving paths and
// every point lands a measurement. The family is shard-safe (kills are
// scheduled flaps, pure functions of simulated time), so classic and
// sharded runs are byte-identical; TestFailoverDeterminismMatrix pins
// that.

const (
	// failoverDelay is the per-link one-way WAN delay the family runs at.
	// It is positive, so the presets remain eligible for sharded execution
	// (every link can bound its cross-shard channel).
	failoverDelay = 500 * sim.Microsecond
	// failoverKillAt is when the victim link goes down: late enough that
	// traffic is in full flight, early enough that most of the measurement
	// happens on the post-failover route.
	failoverKillAt = 2 * sim.Millisecond
)

// failoverNet builds the preset with the self-healing layer armed and,
// for kill >= 0, a scheduled permanent kill of link kill at
// failoverKillAt. A zero debounce selects the monitor defaults.
func failoverNet(m *Meter, opt Options, kill int, label string, debounce sim.Time) *topo.Network {
	spec, err := topo.Preset(opt.Topo, multisiteNodes(opt), failoverDelay)
	m.Check(err)
	spec.Failover = &ib.HealthConfig{DebounceDown: debounce, DebounceUp: debounce}
	if kill >= 0 {
		spec.Links[kill].Fault = &fault.Plan{
			Seed:     seedFor(label),
			WANFlaps: []fault.FlapStep{{At: failoverKillAt, Down: true}},
		}
	}
	nw, err := topo.Build(m.NewEnv(), spec)
	m.Check(err)
	return nw
}

// failoverKills enumerates the kill series: -1 (no fault) then every link.
func failoverKills(spec topo.Topology) []int {
	kills := make([]int, 0, len(spec.Links)+1)
	kills = append(kills, -1)
	for li := range spec.Links {
		kills = append(kills, li)
	}
	return kills
}

// failoverSeriesName labels a kill series.
func failoverSeriesName(spec topo.Topology, kill int) string {
	if kill < 0 {
		return "no-fault"
	}
	return fmt.Sprintf("kill %s:%s", spec.Links[kill].A, spec.Links[kill].B)
}

// failoverKill is the headline experiment: RC goodput and ping latency
// from the first site to every other site while one WAN link dies mid-run
// with failover enabled. On redundant presets (ring4, mesh4) every point
// is a measurement — destinations whose route crossed the dead link pay
// the detour and the recovery stall instead of erroring out.
func failoverKill(opt Options) *Plan {
	opt.fill()
	goodput := stats.NewTable(multisiteTitle(opt, "RC goodput, one WAN link killed mid-run, failover on"),
		"Destination Site Index", "Goodput (MillionBytes/s)")
	lat := stats.NewTable(multisiteTitle(opt, "RC latency, one WAN link killed mid-run, failover on"),
		"Destination Site Index", "Latency (us)")
	pl := &Plan{Tables: []*stats.Table{goodput, lat}}
	size := 64 << 10
	count := 256
	iters := 50
	if opt.Quick {
		count = 64
		iters = 20
	}
	spec, err := topo.Preset(opt.Topo, multisiteNodes(opt), failoverDelay)
	if err != nil {
		spec = topo.Topology{Sites: []topo.Site{{Name: "?"}, {Name: "??"}}}
	}
	for _, kill := range failoverKills(spec) {
		kill := kill
		name := failoverSeriesName(spec, kill)
		gs := goodput.AddSeries(name)
		ls := lat.AddSeries(name)
		for si := 1; si < len(spec.Sites); si++ {
			si, site := si, spec.Sites[si].Name
			gl := fmt.Sprintf("failover-kill/%s/%s/goodput/site-%s", opt.Topo, name, site)
			pl.point(gs, float64(si), gl, func(m *Meter) float64 {
				nw := failoverNet(m, opt, kill, gl, 0)
				src := nw.Sites()[0].Nodes[0].HCA
				dst := nw.Sites()[si].Nodes[0].HCA
				return perftest.StreamRC(nw.Env, src, dst, size, count, lossQPCfg())
			})
			ll := fmt.Sprintf("failover-kill/%s/%s/latency/site-%s", opt.Topo, name, site)
			pl.point(ls, float64(si), ll, func(m *Meter) float64 {
				nw := failoverNet(m, opt, kill, ll, 0)
				src := nw.Sites()[0].Nodes[0].HCA
				dst := nw.Sites()[si].Nodes[0].HCA
				return perftest.PingRC(nw.Env, src, dst, 4096, iters, lossQPCfg()).Microseconds()
			})
		}
	}
	return pl
}

// convergeRC drives back-to-back small RC messages through the kill and
// returns how long after the kill the first message *posted after the
// kill* completes — the end-to-end convergence time: the outage, the
// debounced health verdict, the re-sweep, and the retry that finally
// crosses the new route. Gating on the post time matters: a probe that
// was already in flight when the link died crossed the WAN beforehand and
// completes unaffected, measuring nothing. The probe retries on a 500 us
// timer — much shorter than the stream experiments' 5 ms — so the
// debounce window, not the retry backoff ladder, dominates what it
// measures.
func convergeRC(env *sim.Env, a, b *ib.HCA) sim.Time {
	cfg := ib.QPConfig{RetryLimit: 30, RetryTimeout: 500 * sim.Microsecond}
	qa, qb := ib.CreateRCPair(a, b, nil, nil, cfg)
	var recovered sim.Time
	completed := false
	// Each probe process lives on its endpoint's environment so the world
	// may shard: posts and polls stay shard-local.
	b.Env().Go("probe-recv", func(p *sim.Proc) {
		for i := 0; i < 1<<16; i++ {
			qb.PostRecv(ib.RecvWR{})
		}
	})
	a.Env().Go("probe-send", func(p *sim.Proc) {
		for {
			posted := p.Now()
			qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: 4096})
			c := qa.CQ().Poll(p)
			if c.Status != ib.StatusOK {
				panic(fmt.Sprintf("convergeRC: completion status %v", c.Status))
			}
			if posted >= failoverKillAt {
				recovered = p.Now()
				completed = true
				env.Stop()
				return
			}
		}
	})
	env.Run()
	env.Shutdown()
	if !completed {
		panic("convergeRC: probe never recovered")
	}
	return recovered - failoverKillAt
}

// failoverDebounce sweeps the health monitor's debounce window against a
// kill of the first WAN link: a short debounce converges fast, a long one
// stretches the outage (the retry that beats the re-sweep is dropped on
// the still-routed dead link and pays another backoff round). The no-fault
// series is the floor: the first probe completion after the kill instant
// on a healthy fabric.
func failoverDebounce(opt Options) *Plan {
	opt.fill()
	t := stats.NewTable(multisiteTitle(opt, "failover convergence vs debounce, first link killed"),
		"Debounce (usecs)", "Recovery After Kill (us)")
	pl := &Plan{Tables: []*stats.Table{t}}
	debounces := []sim.Time{
		100 * sim.Microsecond, 250 * sim.Microsecond, 500 * sim.Microsecond,
		sim.Millisecond, 2 * sim.Millisecond, 5 * sim.Millisecond,
	}
	if opt.Quick {
		debounces = []sim.Time{250 * sim.Microsecond, sim.Millisecond, 5 * sim.Millisecond}
	}
	for _, kill := range []int{-1, 0} {
		kill := kill
		name := "no-fault"
		if kill >= 0 {
			name = "kill first link"
		}
		s := t.AddSeries(name)
		for _, d := range debounces {
			d := d
			label := fmt.Sprintf("failover-debounce/%s/%s/%s", opt.Topo, name, delayLabel(d))
			pl.point(s, d.Microseconds(), label, func(m *Meter) float64 {
				nw := failoverNet(m, opt, kill, label, d)
				src := nw.Sites()[0].Nodes[0].HCA
				dst := nw.Sites()[1].Nodes[0].HCA
				return convergeRC(nw.Env, src, dst).Microseconds()
			})
		}
	}
	return pl
}

// failoverServices runs the paper's middleware stacks — MPI collectives,
// NFS/RDMA, and TCP over IPoIB — through a mid-run link kill with failover
// on: every service survives with a measurement (the recovery stall is
// priced into it), where the route-once fabric produced ERR rows. The
// no-fault series is the single baseline point at x = -1.
func failoverServices(opt Options) *Plan {
	opt.fill()
	mpiT := stats.NewTable(multisiteTitle(opt, "MPI hier broadcast latency (64KB) across a link kill"),
		"Killed Link Index", "Latency (us)")
	nfsT := stats.NewTable(multisiteTitle(opt, "NFS/RDMA read throughput across a link kill"),
		"Killed Link Index", "Throughput (MillionBytes/s)")
	tcpT := stats.NewTable(multisiteTitle(opt, "TCP (IPoIB-UD) goodput across a link kill"),
		"Killed Link Index", "Goodput (MillionBytes/s)")
	pl := &Plan{Tables: []*stats.Table{mpiT, nfsT, tcpT}}
	iters := 2
	const fileMB = int64(8)
	// A single outage with a 5 ms RTO recovers quickly; the window only
	// needs to dwarf the stall, not a full backoff ladder.
	if opt.TCPMillis < 40 {
		opt.TCPMillis = 40
	}
	spec, err := topo.Preset(opt.Topo, multisiteNodes(opt), failoverDelay)
	if err != nil {
		spec = topo.Topology{Sites: []topo.Site{{Name: "?"}, {Name: "??"}}}
	}
	for _, kill := range failoverKills(spec) {
		kill := kill
		name := failoverSeriesName(spec, kill)
		x := float64(kill)
		ms := mpiT.AddSeries(name)
		ml := fmt.Sprintf("failover-services/%s/%s/mpi", opt.Topo, name)
		pl.point(ms, x, ml, func(m *Meter) float64 {
			nw := failoverNet(m, opt, kill, ml, 0)
			w := mpi.NewWorld(nw.Env, nw.Nodes(), mpi.Config{})
			defer w.Shutdown()
			return mpi.BcastLatency(w, 64<<10, iters, true).Microseconds()
		})
		ns := nfsT.AddSeries(name)
		nl := fmt.Sprintf("failover-services/%s/%s/nfs", opt.Topo, name)
		pl.point(ns, x, nl, func(m *Meter) float64 {
			nw := failoverNet(m, opt, kill, nl, 0)
			srvNode := nw.Sites()[0].Nodes[0]
			clNode := nw.Sites()[len(nw.Sites())-1].Nodes[0]
			srv, cl := nfs.MountRDMA(srvNode, clNode)
			srv.AddSyntheticFile("f", fileMB<<20)
			return nfs.IOzone(nw.Env, cl, "f", nfs.IOzoneConfig{
				FileSize: fileMB << 20, RecordSize: 256 << 10, Threads: 2,
			})
		})
		ts := tcpT.AddSeries(name)
		tl := fmt.Sprintf("failover-services/%s/%s/tcp", opt.Topo, name)
		pl.point(ts, x, tl, func(m *Meter) float64 {
			nw := failoverNet(m, opt, kill, tl, 0)
			net := ipoib.NewNetwork()
			da := net.Attach(nw.Sites()[0].Nodes[0].HCA, ipoib.Datagram, 0)
			db := net.Attach(nw.Sites()[1].Nodes[0].HCA, ipoib.Datagram, 0)
			// Datagram mode rides UD, so loss recovery is TCP's: a short
			// RTO turns the outage into one retransmission stall.
			sa := tcpsim.NewStack(da, tcpsim.Config{RTO: 5 * sim.Millisecond})
			sb := tcpsim.NewStack(db, tcpsim.Config{RTO: 5 * sim.Millisecond})
			dur := sim.Time(opt.TCPMillis)*sim.Millisecond + 60*failoverDelay
			bw, err := tcpThroughput(nw.Env, sa, sb, 1, dur)
			m.Check(err)
			return bw
		})
	}
	return pl
}
