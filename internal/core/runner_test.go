package core

import (
	"strings"
	"testing"
)

// TestLookup covers the registry surface.
func TestLookup(t *testing.T) {
	if len(ExperimentIDs) != len(registry) {
		t.Fatalf("ExperimentIDs has %d entries, registry %d", len(ExperimentIDs), len(registry))
	}
	for _, id := range ExperimentIDs {
		spec, ok := Lookup(id)
		if !ok || spec.ID != id || spec.Build == nil {
			t.Errorf("Lookup(%q) = %+v, %v", id, spec, ok)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup accepted an unknown id")
	}
}

// TestRunnerMetricsAndCallbacks checks that the pool visits every point
// exactly once, serializes OnPoint, aggregates meters, and reports a live
// progress line.
func TestRunnerMetricsAndCallbacks(t *testing.T) {
	var seen []string
	var prog strings.Builder
	res := RunWith("fig3", Options{Quick: true}, RunnerOptions{
		Workers:  4,
		Progress: &prog,
		OnPoint: func(pm PointMetrics) {
			if pm.Experiment != "fig3" {
				t.Errorf("OnPoint experiment = %q", pm.Experiment)
			}
			if pm.Events <= 0 || pm.SimTime <= 0 {
				t.Errorf("point %q missing sim metrics: %+v", pm.Label, pm)
			}
			seen = append(seen, pm.Label)
		},
	})
	if len(seen) != 4 {
		t.Errorf("OnPoint called %d times, want 4", len(seen))
	}
	m := res.Metrics
	if m.ID != "fig3" || m.Points != 4 || m.Workers != 4 {
		t.Errorf("metrics header wrong: %+v", m)
	}
	if m.Events <= 0 || m.SimTime <= 0 || m.Wall <= 0 {
		t.Errorf("metrics not aggregated: %+v", m)
	}
	if !strings.Contains(prog.String(), "[fig3] 4 points in") {
		t.Errorf("progress summary missing: %q", prog.String())
	}
}

// TestRunnerWorkerClamp: worker counts beyond the point count (and zero,
// meaning GOMAXPROCS) must still complete every slot.
func TestRunnerWorkerClamp(t *testing.T) {
	for _, workers := range []int{0, 1, 64} {
		res := RunWith("table1", Options{}, RunnerOptions{Workers: workers})
		s := res.Tables[0].Series[0]
		if len(s.Y) != 5 {
			t.Fatalf("workers=%d: %d slots filled, want 5", workers, len(s.Y))
		}
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("workers=%d: slot %d unfilled", workers, i)
			}
		}
	}
}

// TestPlanReservesAllSlots: every builder must reserve exactly as many
// slots as it appends points plus derived (Finish-filled) cells, so the
// runner can commit results without growing any series.
func TestPlanReservesAllSlots(t *testing.T) {
	opt := Options{Quick: true}
	for _, id := range ExperimentIDs {
		spec, _ := Lookup(id)
		pl := spec.Build(opt)
		slots := 0
		for _, tab := range pl.Tables {
			if tab.Title == "" {
				t.Errorf("%s: table without title", id)
			}
			for _, s := range tab.Series {
				slots += len(s.Y)
			}
		}
		if slots < len(pl.Points) {
			t.Errorf("%s: %d slots reserved for %d points", id, slots, len(pl.Points))
		}
		if len(pl.Points) == 0 {
			t.Errorf("%s: no points", id)
		}
		for _, pt := range pl.Points {
			if pt.Label == "" || pt.Fn == nil || pt.commit == nil {
				t.Errorf("%s: malformed point %+v", id, pt.Label)
			}
		}
	}
}

// TestMeterTracksEnvs checks sim-cost attribution through the Meter.
func TestMeterTracksEnvs(t *testing.T) {
	m := &Meter{}
	env, _ := m.pair(0)
	env.At(5, func() {})
	env.Run()
	if m.Events() != env.Executed() || m.Events() == 0 {
		t.Errorf("Events = %d, env executed %d", m.Events(), env.Executed())
	}
	if m.SimTime() != env.Now() {
		t.Errorf("SimTime = %v, env now %v", m.SimTime(), env.Now())
	}
	m.close()
	if env.LiveProcs() != 0 {
		t.Errorf("close left %d live procs", env.LiveProcs())
	}
}
