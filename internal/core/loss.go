package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ib"
	"repro/internal/ipoib"
	"repro/internal/perftest"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The loss-* family extends the paper's study to lossy WAN circuits: the
// paper's testbed link is clean, but a production IB-WAN circuit (§6,
// "dedicated connections ... may not always be the case") sees packet
// loss, bit errors and outages. Each point arms a per-point seeded fault
// plan via Meter.WithFault, so results are reproducible bit-for-bit at
// any runner parallelism: the seed depends only on the point's label.

// seedFor derives a point's fault seed from its label (FNV-1a), so the
// fault pattern is a pure function of the point identity — independent of
// execution order, parallelism, and the presence of other experiments.
func seedFor(label string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	return h
}

// lossQPCfg is the RC tuning the loss experiments use: a deep retry
// budget with a short timeout, so per-packet loss costs retransmission
// time instead of killing the connection (the verbs default of 7 retries
// at 500 ms is tuned for a clean fabric, not a lossy WAN).
func lossQPCfg() ib.QPConfig {
	return ib.QPConfig{RetryLimit: 30, RetryTimeout: 5 * sim.Millisecond}
}

// lossRates is the per-packet WAN loss sweep, in percent.
func lossRates(quick bool) []float64 {
	if quick {
		return []float64{0, 1}
	}
	return []float64{0, 0.1, 1, 2}
}

// lossGoodput measures RC streaming goodput against per-packet WAN loss,
// one series per WAN delay. Loss hurts quadratically with delay: every
// retransmission costs a timeout plus another WAN round trip.
func lossGoodput(opt Options) *Plan {
	opt.fill()
	t := stats.NewTable("Loss: RC Streaming Goodput vs WAN Packet Loss",
		"Loss (%)", "Goodput (MillionBytes/s)")
	pl := &Plan{Tables: []*stats.Table{t}}
	size := 64 << 10
	count := 512
	if opt.Quick {
		count = 96
	}
	for _, d := range []sim.Time{0, sim.Millisecond} {
		d := d
		s := t.AddSeries(fmt.Sprintf("delay-%v", d))
		for _, pct := range lossRates(opt.Quick) {
			pct := pct
			label := fmt.Sprintf("loss-goodput/%v/%g%%", d, pct)
			pl.point(s, pct, label, func(m *Meter) float64 {
				m.WithFault(&fault.Plan{Seed: seedFor(label), WANLoss: pct / 100})
				env, tb := m.pair(d)
				return perftest.StreamRC(env, tb.A[0].HCA, tb.B[0].HCA, size, count, lossQPCfg())
			})
		}
	}
	return pl
}

// lossLatency measures small-message RC send/recv latency against
// per-packet WAN loss: each lost packet stalls its round trip for a full
// retransmission timeout, so the mean degrades sharply even at sub-percent
// loss.
func lossLatency(opt Options) *Plan {
	opt.fill()
	t := stats.NewTable("Loss: RC Send/Recv Latency (8-byte) vs WAN Packet Loss",
		"Loss (%)", "Latency (us)")
	s := t.AddSeries("rc-8B")
	pl := &Plan{Tables: []*stats.Table{t}}
	iters := 200
	if opt.Quick {
		iters = 50
	}
	for _, pct := range lossRates(opt.Quick) {
		pct := pct
		label := fmt.Sprintf("loss-latency/%g%%", pct)
		pl.point(s, pct, label, func(m *Meter) float64 {
			m.WithFault(&fault.Plan{Seed: seedFor(label), WANLoss: pct / 100})
			env, tb := m.pair(0)
			return perftest.PingRC(env, tb.A[0].HCA, tb.B[0].HCA, 8, iters, lossQPCfg()).Microseconds()
		})
	}
	return pl
}

// lossFlap measures RC streaming goodput across a scheduled WAN outage
// (link down at one quarter of the nominal transfer, back up after the
// outage duration). The RC retry machinery bridges the gap; goodput
// decreases with outage length because the elapsed time absorbs the
// outage plus the retransmission backoff.
func lossFlap(opt Options) *Plan {
	opt.fill()
	t := stats.NewTable("Loss: RC Streaming Goodput vs WAN Outage (link flap)",
		"Outage (ms)", "Goodput (MillionBytes/s)")
	s := t.AddSeries("rc-64KB")
	pl := &Plan{Tables: []*stats.Table{t}}
	size := 64 << 10
	count := 512
	if opt.Quick {
		count = 96
	}
	outages := []sim.Time{0, 10 * sim.Millisecond, 50 * sim.Millisecond}
	if opt.Quick {
		outages = []sim.Time{0, 10 * sim.Millisecond}
	}
	for _, outage := range outages {
		outage := outage
		label := fmt.Sprintf("loss-flap/%v", outage)
		pl.point(s, outage.Seconds()*1e3, label, func(m *Meter) float64 {
			plan := &fault.Plan{Seed: seedFor(label)}
			if outage > 0 {
				down := 2 * sim.Millisecond // inside the transfer
				plan.WANFlaps = []fault.FlapStep{
					{At: down, Down: true},
					{At: down + outage, Down: false},
				}
			}
			m.WithFault(plan)
			env, tb := m.pair(0)
			return perftest.StreamRC(env, tb.A[0].HCA, tb.B[0].HCA, size, count, lossQPCfg())
		})
	}
	return pl
}

// lossTCP measures IPoIB-CM single-stream TCP goodput against per-segment
// loss inside the TCP stack — the classic TCP-under-loss curve, recovered
// by the stack's RTO retransmission with exponential backoff.
func lossTCP(opt Options) *Plan {
	opt.fill()
	// TCP pays a full RTO (50 ms) per loss, so the window must span many
	// RTO stalls for the goodput estimate to mean anything, and the loss
	// sweep sits an order of magnitude below the verbs one.
	if opt.TCPMillis < 400 {
		opt.TCPMillis = 400
	}
	rates := []float64{0, 0.02, 0.1, 0.2}
	if opt.Quick {
		rates = []float64{0, 0.1}
	}
	t := stats.NewTable("Loss: IPoIB-CM TCP Goodput vs Segment Loss",
		"Loss (%)", "Goodput (MillionBytes/s)")
	s := t.AddSeries("1-stream")
	pl := &Plan{Tables: []*stats.Table{t}}
	for _, pct := range rates {
		pct := pct
		label := fmt.Sprintf("loss-tcp/%g%%", pct)
		pl.point(s, pct, label, func(m *Meter) float64 {
			m.WithFault(&fault.Plan{Seed: seedFor(label), TCPLoss: pct / 100})
			return tcpPoint(m, ipoib.Connected, 0, 0, 1, 0, opt)
		})
	}
	return pl
}
