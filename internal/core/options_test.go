package core

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestOptionsFillDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.NASClass != "B" || o.NFSFileMB != 512 || o.TCPMillis != 60 {
		t.Errorf("paper-fidelity defaults wrong: %+v", o)
	}

	q := Options{Quick: true}
	q.fill()
	if q.NASClass != "W" || q.NFSFileMB != 16 || q.TCPMillis != 10 {
		t.Errorf("quick defaults wrong: %+v", q)
	}
}

func TestOptionsFillPreservesOverrides(t *testing.T) {
	o := Options{Quick: true, NASClass: "A", NFSFileMB: 64, TCPMillis: 25}
	o.fill()
	if o.NASClass != "A" || o.NFSFileMB != 64 || o.TCPMillis != 25 {
		t.Errorf("explicit settings clobbered by fill: %+v", o)
	}
	// fill must be idempotent.
	before := o
	o.fill()
	if o != before {
		t.Errorf("fill not idempotent: %+v -> %+v", before, o)
	}
}

func TestOptionsDelays(t *testing.T) {
	full := Options{}.delays()
	if !reflect.DeepEqual(full, cluster.PaperDelays()) {
		t.Errorf("full delays = %v, want paper sweep", full)
	}
	quick := Options{Quick: true}.delays()
	want := []sim.Time{0, sim.Micros(1000)}
	if !reflect.DeepEqual(quick, want) {
		t.Errorf("quick delays = %v, want %v", quick, want)
	}
}

func TestOptionsSizes(t *testing.T) {
	// Full mode: every power of two, inclusive bounds.
	full := Options{}.sizes(2, 16)
	if !reflect.DeepEqual(full, []int{2, 4, 8, 16}) {
		t.Errorf("sizes(2,16) = %v", full)
	}
	// Quick mode truncates to first/middle/last.
	all := stats.Sizes(2, 4<<20)
	quick := Options{Quick: true}.sizes(2, 4<<20)
	want := []int{all[0], all[len(all)/2], all[len(all)-1]}
	if !reflect.DeepEqual(quick, want) {
		t.Errorf("quick sizes = %v, want %v", quick, want)
	}
	if quick[0] != 2 || quick[2] != 4<<20 {
		t.Errorf("quick sizes must keep the boundary sizes: %v", quick)
	}
	// Quick mode leaves short sweeps (<= 3 sizes) untouched.
	short := Options{Quick: true}.sizes(8, 32)
	if !reflect.DeepEqual(short, []int{8, 16, 32}) {
		t.Errorf("quick sizes(8,32) = %v, want all three", short)
	}
	// Degenerate single-size sweep.
	one := Options{Quick: true}.sizes(64, 64)
	if !reflect.DeepEqual(one, []int{64}) {
		t.Errorf("sizes(64,64) = %v", one)
	}
}
