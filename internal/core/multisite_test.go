package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/topo"
)

// TestMultisiteQuickClean runs every multisite experiment on the 3-site
// star in Quick mode and requires a fully populated, error-free result —
// except multisite-loss, whose killed-link points must fail with explicit
// ERR rows while every other cell stays finite.
func TestMultisiteQuickClean(t *testing.T) {
	if testing.Short() {
		t.Skip("multisite sweep skipped in -short mode")
	}
	opt := Options{Quick: true, Topo: "star3"}
	for _, id := range []string{"multisite-bcast", "multisite-allreduce", "multisite-nfs"} {
		id := id
		t.Run(id, func(t *testing.T) {
			res := RunWith(id, opt, RunnerOptions{Workers: 4})
			if len(res.Errors) != 0 {
				t.Fatalf("%s errors: %v", id, res.Errors)
			}
			for _, tab := range res.Tables {
				for _, s := range tab.Series {
					for i, y := range s.Y {
						if math.IsNaN(y) || y < 0 {
							t.Errorf("%s %q[%d] = %v", tab.Title, s.Label, i, y)
						}
					}
				}
			}
		})
	}
}

// TestMultisiteLossIsolation pins per-link fault isolation end to end
// through the experiment harness: on the star, killing one of the two hub
// links must fail exactly the destination behind it (one ERR per killed
// link) and leave every other goodput cell intact.
func TestMultisiteLossIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("multisite loss sweep skipped in -short mode")
	}
	res := RunWith("multisite-loss", Options{Quick: true, Topo: "star3"}, RunnerOptions{Workers: 4})
	if got := len(res.Errors); got != 2 {
		t.Fatalf("errors = %d (%v), want exactly 2 (one per killed link)", got, res.Errors)
	}
	for _, e := range res.Errors {
		if !strings.Contains(e.Label, "kill ") {
			t.Errorf("unexpected failing point %q", e.Label)
		}
	}
	nan := 0
	for _, tab := range res.Tables {
		for _, s := range tab.Series {
			if strings.HasPrefix(s.Label, "no-fault") {
				for i, y := range s.Y {
					if math.IsNaN(y) || y <= 0 {
						t.Errorf("baseline %q[%d] = %v", s.Label, i, y)
					}
				}
			}
			for _, y := range s.Y {
				if math.IsNaN(y) {
					nan++
				}
			}
		}
	}
	if nan != 2 {
		t.Errorf("NaN cells = %d, want 2", nan)
	}
	if !strings.Contains(renderWithErrors(res), "ERR") {
		t.Error("rendered output lacks ERR cells")
	}
}

// TestMultisiteRepeatable reruns the family across worker counts and
// repeats: byte-identical output is required (the per-point fault seeds
// and BFS site trees are pure functions of the spec).
func TestMultisiteRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("multisite determinism sweep skipped in -short mode")
	}
	for _, id := range []string{"multisite-bcast", "multisite-loss"} {
		for _, preset := range []string{"star3", "ring4"} {
			opt := Options{Quick: true, Topo: preset}
			first := renderWithErrors(RunWith(id, opt, RunnerOptions{Workers: 8}))
			second := renderWithErrors(RunWith(id, opt, RunnerOptions{Workers: 1}))
			if first != second {
				t.Errorf("%s [%s] diverges across runs\n--- par=8 ---\n%s\n--- par=1 ---\n%s",
					id, preset, first, second)
			}
		}
	}
}

// TestLeafRadixCrossWANExperiment covers fat-tree clusters under a full
// cross-WAN core experiment: the star3 preset builds every site as a
// two-level LeafRadix-2 tree, so multisite-bcast above already crosses
// leaf -> spine -> WAN; this test pins that the preset really is a fat
// tree (so that coverage cannot silently evaporate) and that the
// hierarchical broadcast result stays sane under it.
func TestLeafRadixCrossWANExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("leaf-radix sweep skipped in -short mode")
	}
	spec, err := topo.Preset("star3", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range spec.Sites {
		if s.LeafRadix != 2 {
			t.Fatalf("star3 site %q LeafRadix = %d, want 2 (fat-tree coverage)", s.Name, s.LeafRadix)
		}
	}
	res := RunWith("multisite-bcast", Options{Quick: true, Topo: "star3"}, RunnerOptions{Workers: 2})
	if len(res.Errors) != 0 {
		t.Fatalf("errors under fat-tree sites: %v", res.Errors)
	}
	// The latency table must show the hierarchical broadcast no slower
	// than flat at the largest size (where flat pays many WAN crossings).
	lat := res.Tables[0]
	flat, hier := lat.Series[0], lat.Series[1]
	last := len(flat.Y) - 1
	if hier.Y[last] > flat.Y[last] {
		t.Errorf("hier bcast (%v us) slower than flat (%v us) at %v bytes through fat-tree sites",
			hier.Y[last], flat.Y[last], flat.X[last])
	}
}
