package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden output files")

// goldenIDs is the representative experiment subset pinned by the golden
// regression test. It covers every simulation layer the kernel
// optimizations touch: the raw DES/event path (table1), verbs latency
// (fig3), UD and RC streaming over the fabric (fig4, fig5), the TCP/IPoIB
// stack (fig7) and MPI collectives (fig11). None of these configure a
// queue bound, so the file also pins the congestion-disabled contract: with
// bounded queues, ECN and credit backpressure compiled in but off, the
// transmit path and tcpsim's slow start must render byte-identical to the
// pre-congestion seed.
var goldenIDs = []string{"table1", "fig3", "fig4", "fig5", "fig7", "fig11"}

// TestGoldenQuickOutput asserts that quick-mode ibwan-exp rendering is
// byte-identical to the checked-in pre-optimization output. The par=1 vs
// par=8 determinism test proves output is independent of scheduling; this
// test additionally proves it is independent of the kernel's internal
// representation (heap layout, freelists, ring buffers), which is the
// contract every performance PR against internal/sim, internal/ib or
// internal/tcpsim must preserve. Regenerate (only when an intentional
// modeling change shifts the numbers) with:
//
//	go test ./internal/core -run TestGoldenQuickOutput -update
func TestGoldenQuickOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep skipped in -short mode")
	}
	var sb strings.Builder
	for _, id := range goldenIDs {
		sb.WriteString(renderTables(RunWith(id, Options{Quick: true}, RunnerOptions{Workers: 1})))
	}
	got := sb.String()
	path := filepath.Join("testdata", "golden_quick.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("quick-mode output diverges from golden %s.\n"+
			"The optimized kernel must render byte-identical results; a diff "+
			"means a behavioral (not just performance) change.\n--- got ---\n%s",
			path, diffHint(string(want), got))
	}
}

// diffHint returns the first diverging line pair, to keep failure output
// readable (the full rendering is thousands of lines).
func diffHint(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return "line " + itoa(i+1) + ":\n  want: " + wl[i] + "\n  got:  " + gl[i]
		}
	}
	return "line count differs: want " + itoa(len(wl)) + ", got " + itoa(len(gl))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
