package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// RunnerOptions configures the parallel experiment runner.
type RunnerOptions struct {
	// Workers bounds how many points are measured concurrently; <= 0
	// selects runtime.GOMAXPROCS(0). Results are independent of the
	// worker count: every slot is reserved before the pool starts, so
	// scheduling only affects wall time, never output.
	Workers int
	// Progress, when non-nil, receives a live single-line status as
	// points complete (typically os.Stderr). The line is erased when the
	// experiment finishes.
	Progress io.Writer
	// OnPoint, when non-nil, is called after each point completes, in
	// completion order (not registry order). Calls are serialized.
	OnPoint func(PointMetrics)
	// Telemetry, when non-nil, is attached to every simulation environment
	// the experiment creates. Metric registries are safe under concurrent
	// points, but a span Recorder is single-writer, so span recording
	// forces Workers to 1. Each point's spans are stacked onto one shared
	// timeline: after a point finishes, the recorder's epoch advances past
	// the point's virtual end time and a harness-level span covering the
	// whole point is emitted.
	Telemetry *telemetry.Telemetry
}

func (o RunnerOptions) workers(points int) int {
	n := o.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > points {
		n = points
	}
	if n < 1 {
		n = 1
	}
	return n
}

// PointMetrics describes the cost of one completed measurement point.
type PointMetrics struct {
	Experiment string
	Label      string
	Wall       time.Duration // host time spent measuring the point
	SimTime    sim.Time      // virtual time reached across the point's envs
	Events     int64         // simulation events executed
}

// ExperimentMetrics aggregates point metrics for one experiment.
type ExperimentMetrics struct {
	ID      string
	Points  int
	Workers int
	Wall    time.Duration // wall time for the whole experiment
	SimTime sim.Time      // summed virtual time across all points
	Events  int64         // summed simulation events across all points
}

// Result pairs an experiment's tables with its runtime metrics.
type Result struct {
	ID      string
	Tables  []*stats.Table
	Metrics ExperimentMetrics
}

// Run generates the tables for one experiment id sequentially. The options
// control the heavyweight experiments; zero values select paper-fidelity
// settings. It panics on an unknown id.
func Run(id string, opt Options) []*stats.Table {
	return RunWith(id, opt, RunnerOptions{Workers: 1}).Tables
}

// RunWith generates one experiment under the given runner options,
// executing its points on a bounded worker pool and reassembling results
// in registry order.
func RunWith(id string, opt Options, ropt RunnerOptions) Result {
	return runSpec(mustLookup(id), opt, ropt)
}

// runSpec expands a spec and executes its plan.
func runSpec(spec Spec, opt Options, ropt RunnerOptions) Result {
	pl := spec.Build(opt)
	start := time.Now()
	workers := ropt.workers(len(pl.Points))
	if ropt.Telemetry != nil && ropt.Telemetry.Spans != nil {
		workers = 1 // the span recorder is single-writer
	}
	agg := ExperimentMetrics{ID: spec.ID, Points: len(pl.Points), Workers: workers}

	var (
		mu   sync.Mutex // guards agg, done and the progress line
		done int
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				pt := &pl.Points[i]
				m := &Meter{tel: ropt.Telemetry}
				t0 := time.Now()
				y := pt.Fn(m)
				pt.commit(y)
				m.close()
				if tel := ropt.Telemetry; tel != nil && tel.Spans != nil {
					// Harness span covering the point, then advance the
					// epoch so the next point stacks after it.
					rec := tel.Spans
					st := m.SimTime()
					rec.RecordAt(0, st, rec.Track("harness", "points"),
						spec.ID+" "+pt.Label, telemetry.NoSpan)
					rec.Advance(st + sim.Millisecond)
				}
				pm := PointMetrics{
					Experiment: spec.ID,
					Label:      pt.Label,
					Wall:       time.Since(t0),
					SimTime:    m.SimTime(),
					Events:     m.Events(),
				}
				mu.Lock()
				agg.SimTime += pm.SimTime
				agg.Events += pm.Events
				done++
				if ropt.Progress != nil {
					fmt.Fprintf(ropt.Progress, "\r\x1b[K[%s] %d/%d points  par=%d  %s",
						spec.ID, done, len(pl.Points), workers, pt.Label)
				}
				if ropt.OnPoint != nil {
					ropt.OnPoint(pm)
				}
				mu.Unlock()
			}
		}()
	}
	for i := range pl.Points {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if pl.Finish != nil {
		pl.Finish()
	}
	agg.Wall = time.Since(start)
	if ropt.Progress != nil {
		fmt.Fprintf(ropt.Progress, "\r\x1b[K[%s] %d points in %v (sim %v, %d events)\n",
			spec.ID, agg.Points, agg.Wall.Round(time.Millisecond), agg.SimTime, agg.Events)
	}
	return Result{ID: spec.ID, Tables: pl.Tables, Metrics: agg}
}

// RunAll generates every experiment sequentially, rendering each table to
// w as it completes.
func RunAll(w io.Writer, opt Options) {
	RunAllWith(w, opt, RunnerOptions{Workers: 1})
}

// RunAllWith generates every registered experiment under the given runner
// options, rendering tables to w in registry order regardless of
// scheduling, and returns per-experiment metrics. Output is byte-identical
// across worker counts.
func RunAllWith(w io.Writer, opt Options, ropt RunnerOptions) []Result {
	results := make([]Result, 0, len(registry))
	for _, spec := range registry {
		res := runSpec(spec, opt, ropt)
		fmt.Fprintf(w, "=== %s ===\n", res.ID)
		for _, t := range res.Tables {
			t.Render(w)
		}
		results = append(results, res)
	}
	return results
}
