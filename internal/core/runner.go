package core

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// RunnerOptions configures the parallel experiment runner.
type RunnerOptions struct {
	// Workers bounds how many points are measured concurrently; <= 0
	// selects runtime.GOMAXPROCS(0). Results are independent of the
	// worker count: every slot is reserved before the pool starts, so
	// scheduling only affects wall time, never output.
	Workers int
	// Progress, when non-nil, receives a live single-line status as
	// points complete (typically os.Stderr). The line is erased when the
	// experiment finishes.
	Progress io.Writer
	// OnPoint, when non-nil, is called after each point completes, in
	// completion order (not registry order). Calls are serialized.
	OnPoint func(PointMetrics)
	// Telemetry, when non-nil, is attached to every simulation environment
	// the experiment creates. Metric registries are safe under concurrent
	// points, but a span Recorder is single-writer, so span recording
	// forces Workers to 1. Each point's spans are stacked onto one shared
	// timeline: after a point finishes, the recorder's epoch advances past
	// the point's virtual end time and a harness-level span covering the
	// whole point is emitted.
	Telemetry *telemetry.Telemetry
	// Fault, when non-nil, is a run-wide chaos plan attached to every
	// simulation environment every point creates (the CLI -fault flag).
	// Points that install their own plan (the loss-* family) override it.
	// Determinism is unaffected: each point owns its environments, so
	// each point draws from its own injector streams regardless of worker
	// count.
	Fault *fault.Plan
	// SampleEvery > 0 arms the sim-time timeline sampler: every environment
	// a point creates gets a private metrics registry sampled at this
	// cadence of virtual time, and the runner assembles one PointTimeline
	// per point (Result.Timelines, plan order). Timelines are a pure
	// function of the simulation — byte-identical at any Workers /
	// ShardWorkers combination — and sampling never perturbs simulated
	// behavior (the hook fires between events, not as an event). Per-env
	// registries merge back into Telemetry.Metrics after each point, so
	// end-of-run dumps still see run-wide totals.
	SampleEvery sim.Time
	// ShardWorkers > 1 lets each point's simulation world run sharded: a
	// shardable multi-site topology splits into per-site event shards
	// driven by up to this many OS workers under the conservative
	// WAN-lookahead window protocol (the CLI -shards flag). Orthogonal to
	// Workers, which parallelizes across points: Workers*ShardWorkers is
	// the peak OS-thread demand. Rendered output is byte-identical at any
	// value — worlds that cannot shard safely just run single-heap. Span
	// recording forces both to 1 (the recorder is single-writer).
	ShardWorkers int
}

func (o RunnerOptions) workers(points int) int {
	n := o.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > points {
		n = points
	}
	if n < 1 {
		n = 1
	}
	return n
}

// PointMetrics describes the cost of one completed measurement point.
type PointMetrics struct {
	Experiment string
	Label      string
	Wall       time.Duration // host time spent measuring the point
	SimTime    sim.Time      // virtual time reached across the point's envs
	Events     int64         // simulation events executed
	// ShardWindows counts the sharded scheduler's barrier windows across
	// the point's partitioned worlds (0 when the point ran single-heap);
	// ShardHorizon is the matching cumulative safe-horizon advance.
	// ShardWindows/Events is the scheduler's synchronization overhead per
	// unit of work; ShardHorizon/ShardWindows its mean window width.
	ShardWindows int64
	ShardHorizon sim.Time
	// Err is non-empty when the point failed (fault injection exhausted a
	// recovery budget, a parameter was invalid); its value landed as NaN.
	Err string
}

// PointError is one failed measurement point, in plan (build) order.
type PointError struct {
	Label string
	Err   string
}

// pointFailure wraps a point-level error so the runner's recover can tell
// a deliberate Meter.Check failure from an arbitrary panic. Both become
// error rows; arbitrary panics keep their message.
type pointFailure struct{ err error }

// runPoint executes one point, converting any failure — a Meter.Check, a
// process panic surfaced by the simulation kernel, a protocol model
// giving up — into an error and a NaN measurement. The rest of the run is
// unaffected: with fault injection armed, a failed point is a result, not
// a crash.
func runPoint(pt *Point, m *Meter) (y float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pf, ok := r.(*pointFailure); ok {
				err = pf.err
			} else {
				err = fmt.Errorf("%v", r)
			}
			y = math.NaN()
		}
	}()
	return pt.Fn(m), nil
}

// ExperimentMetrics aggregates point metrics for one experiment.
type ExperimentMetrics struct {
	ID      string
	Points  int
	Workers int
	Wall    time.Duration // wall time for the whole experiment
	SimTime sim.Time      // summed virtual time across all points
	Events  int64         // summed simulation events across all points
	// ShardWindows/ShardHorizon sum the sharded scheduler's barrier
	// windows and safe-horizon advance across all points (both 0 on
	// single-heap runs).
	ShardWindows int64
	ShardHorizon sim.Time
}

// Result pairs an experiment's tables with its runtime metrics.
type Result struct {
	ID      string
	Tables  []*stats.Table
	Metrics ExperimentMetrics
	// Errors lists failed points in plan order (empty on a clean run).
	// Their table cells render as ERR.
	Errors []PointError
	// Timelines holds each point's sampled timeline in plan order (nil
	// unless RunnerOptions.SampleEvery was set).
	Timelines []telemetry.PointTimeline
}

// Run generates the tables for one experiment id sequentially. The options
// control the heavyweight experiments; zero values select paper-fidelity
// settings. It panics on an unknown id.
func Run(id string, opt Options) []*stats.Table {
	return RunWith(id, opt, RunnerOptions{Workers: 1}).Tables
}

// RunWith generates one experiment under the given runner options,
// executing its points on a bounded worker pool and reassembling results
// in registry order.
func RunWith(id string, opt Options, ropt RunnerOptions) Result {
	return runSpec(mustLookup(id), opt, ropt)
}

// runSpec expands a spec and executes its plan.
func runSpec(spec Spec, opt Options, ropt RunnerOptions) Result {
	pl := spec.Build(opt)
	start := time.Now()
	workers := ropt.workers(len(pl.Points))
	shardWorkers := ropt.ShardWorkers
	if ropt.Telemetry != nil && ropt.Telemetry.Spans != nil {
		workers = 1      // the span recorder is single-writer
		shardWorkers = 1 // and shards would write it concurrently
	}
	agg := ExperimentMetrics{ID: spec.ID, Points: len(pl.Points), Workers: workers}

	var (
		mu   sync.Mutex // guards agg, done and the progress line
		done int
	)
	// Per-point error slots, written by whichever worker ran the point and
	// read only after wg.Wait — error reporting order is plan order, never
	// completion order.
	errs := make([]string, len(pl.Points))
	// Per-point timeline slots, same discipline: assembled in plan order
	// after the pool drains, so serialized timelines are byte-identical at
	// any worker count.
	var timelines []telemetry.PointTimeline
	if ropt.SampleEvery > 0 {
		timelines = make([]telemetry.PointTimeline, len(pl.Points))
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				pt := &pl.Points[i]
				m := &Meter{tel: ropt.Telemetry, fault: ropt.Fault, shardWorkers: shardWorkers, sampleEvery: ropt.SampleEvery}
				var traceOff sim.Time
				if tel := ropt.Telemetry; tel != nil && tel.Spans != nil {
					// The recorder's epoch offset when the point starts
					// (workers is forced to 1 with spans on, so this is
					// exactly where the point's spans will land); counter
					// tracks use it to align under the spans.
					traceOff = tel.Spans.Offset()
				}
				t0 := time.Now()
				y, err := runPoint(pt, m)
				if err != nil {
					errs[i] = err.Error()
				}
				pt.commit(y)
				wins, hor := m.recordShardStats()
				if timelines != nil {
					timelines[i] = m.takeTimeline(spec.ID, pt.Label, traceOff)
				}
				m.close()
				if tel := ropt.Telemetry; tel != nil && tel.Spans != nil {
					// Harness span covering the point, then advance the
					// epoch so the next point stacks after it.
					rec := tel.Spans
					st := m.SimTime()
					rec.RecordAt(0, st, rec.Track("harness", "points"),
						spec.ID+" "+pt.Label, telemetry.NoSpan)
					rec.Advance(st + sim.Millisecond)
				}
				pm := PointMetrics{
					Experiment:   spec.ID,
					Label:        pt.Label,
					Wall:         time.Since(t0),
					SimTime:      m.SimTime(),
					Events:       m.Events(),
					ShardWindows: wins,
					ShardHorizon: hor,
					Err:          errs[i],
				}
				mu.Lock()
				agg.SimTime += pm.SimTime
				agg.Events += pm.Events
				agg.ShardWindows += pm.ShardWindows
				agg.ShardHorizon += pm.ShardHorizon
				done++
				if ropt.Progress != nil {
					fmt.Fprintf(ropt.Progress, "\r\x1b[K[%s] %d/%d points  par=%d  %s",
						spec.ID, done, len(pl.Points), workers, pt.Label)
				}
				if ropt.OnPoint != nil {
					ropt.OnPoint(pm)
				}
				mu.Unlock()
			}
		}()
	}
	for i := range pl.Points {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if pl.Finish != nil {
		pl.Finish()
	}
	agg.Wall = time.Since(start)
	var perr []PointError
	for i, e := range errs {
		if e != "" {
			perr = append(perr, PointError{Label: pl.Points[i].Label, Err: e})
		}
	}
	if ropt.Progress != nil {
		fmt.Fprintf(ropt.Progress, "\r\x1b[K[%s] %d points in %v (sim %v, %d events)\n",
			spec.ID, agg.Points, agg.Wall.Round(time.Millisecond), agg.SimTime, agg.Events)
	}
	return Result{ID: spec.ID, Tables: pl.Tables, Metrics: agg, Errors: perr, Timelines: timelines}
}

// RunAll generates every experiment sequentially, rendering each table to
// w as it completes.
func RunAll(w io.Writer, opt Options) {
	RunAllWith(w, opt, RunnerOptions{Workers: 1})
}

// RunAllWith generates every registered experiment under the given runner
// options, rendering tables to w in registry order regardless of
// scheduling, and returns per-experiment metrics. Output is byte-identical
// across worker counts.
func RunAllWith(w io.Writer, opt Options, ropt RunnerOptions) []Result {
	results := make([]Result, 0, len(registry))
	for _, spec := range registry {
		res := runSpec(spec, opt, ropt)
		fmt.Fprintf(w, "=== %s ===\n", res.ID)
		for _, t := range res.Tables {
			t.Render(w)
		}
		RenderErrors(w, res.Errors)
		results = append(results, res)
	}
	return results
}

// RenderErrors prints one line per failed point after an experiment's
// tables. A clean run prints nothing, keeping fault-free output (and the
// golden fixture) byte-identical to before the fault layer existed.
func RenderErrors(w io.Writer, errs []PointError) {
	for _, e := range errs {
		fmt.Fprintf(w, "!! %s: %s\n", e.Label, e.Err)
	}
}
