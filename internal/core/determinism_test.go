package core

import (
	"bytes"
	"fmt"
	"testing"
)

// renderTables renders an experiment the way the CLI does, for comparison.
func renderTables(res Result) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "=== %s ===\n", res.ID)
	for _, t := range res.Tables {
		t.Render(&buf)
	}
	return buf.String()
}

// TestParallelRunMatchesSequential is the determinism regression test for
// the parallel runner: for every registered experiment, Quick-mode output
// at 8 workers must be byte-identical to the sequential (1-worker) path.
func TestParallelRunMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism sweep skipped in -short mode")
	}
	opt := Options{Quick: true}
	for _, id := range ExperimentIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			seq := renderTables(RunWith(id, opt, RunnerOptions{Workers: 1}))
			par := renderTables(RunWith(id, opt, RunnerOptions{Workers: 8}))
			if seq != par {
				t.Errorf("parallel output diverges from sequential\n--- par=1 ---\n%s\n--- par=8 ---\n%s", seq, par)
			}
		})
	}
}

// TestRunAllWithParallelMatchesSequential checks the full RunAll path,
// including the === headers and table interleaving, across worker counts.
func TestRunAllWithParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll determinism check skipped in -short mode")
	}
	opt := Options{Quick: true, NASClass: "W", NFSFileMB: 4, TCPMillis: 4}
	var seq, par bytes.Buffer
	RunAllWith(&seq, opt, RunnerOptions{Workers: 1})
	RunAllWith(&par, opt, RunnerOptions{Workers: 8})
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Error("RunAllWith output differs between 1 and 8 workers")
	}
}
