package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Spec declares one experiment: a stable identifier, a one-line
// description (the -list output), plus a builder that expands the
// experiment, for a given set of Options, into skeleton tables and the
// independent measurement points that fill them.
type Spec struct {
	ID    string
	Desc  string
	Build func(opt Options) *Plan
}

// Plan is an expanded experiment. Tables are fully shaped at build time —
// every series exists and every slot is reserved in the order the
// sequential harness would have produced — so points may execute in any
// order, on any number of workers, and the rendered output is identical.
type Plan struct {
	Tables []*stats.Table
	Points []Point
	// Finish, if non-nil, runs once after every point has landed. It
	// derives post-processed series (e.g. fig12's slowdown-vs-zero-delay)
	// from the measured ones.
	Finish func()
}

// Point is one independently runnable measurement cell: Fn builds its own
// simulation world(s) through the Meter and returns the measured value,
// which the runner commits into the point's reserved table slot.
type Point struct {
	Label  string
	Fn     func(m *Meter) float64
	commit func(y float64)
}

// point reserves the next slot of series s at x and appends a Point whose
// result fills it.
func (pl *Plan) point(s *stats.Series, x float64, label string, fn func(m *Meter) float64) {
	slot := s.Alloc(x)
	pl.Points = append(pl.Points, Point{
		Label:  label,
		Fn:     fn,
		commit: func(y float64) { s.Set(slot, y) },
	})
}

// Meter tracks the simulation environments a point creates, so the runner
// can attribute simulated time and executed events to the point and unwind
// leftover processes once the point completes.
type Meter struct {
	envs []*sim.Env
	// tel, when non-nil, is attached to every environment the point
	// creates, so layer instrumentation lights up.
	tel *telemetry.Telemetry
	// fault, when non-nil, is attached to every environment the point
	// creates; the wan and tcpsim layers arm it at construction time. It
	// is seeded either by the runner (RunnerOptions.Fault, a run-wide
	// chaos plan) or by the point itself (WithFault, the loss-* family).
	fault *fault.Plan
	// shardWorkers > 1 marks every environment the point creates as
	// eligible for per-site sharding (topo.Build partitions when the
	// topology and fault plan allow it; see RunnerOptions.ShardWorkers).
	shardWorkers int
	// sampleEvery > 0 arms sim-time timeline sampling: every environment
	// the point creates gets its own metrics registry and a Sampler wired
	// to the kernel's sampling hook, so concurrently running points never
	// interleave their sampled deltas. The per-env registries fold back
	// into the shared registry (tel.Metrics) when the point completes —
	// counter and bucket adds commute, so run-wide totals stay independent
	// of point scheduling.
	sampleEvery sim.Time
	samplers    []envSampler
}

// envSampler pairs one sampled environment with its private registry.
type envSampler struct {
	env *sim.Env
	reg *telemetry.Registry
	s   *telemetry.Sampler
}

// NewEnv creates a simulation environment owned by this point.
func (m *Meter) NewEnv() *sim.Env {
	env := sim.NewEnv()
	if m != nil {
		if m.shardWorkers > 1 {
			env.SetShardWorkers(m.shardWorkers)
		}
		if m.sampleEvery > 0 {
			reg := telemetry.NewRegistry()
			t := &telemetry.Telemetry{Metrics: reg}
			if m.tel != nil {
				t.Spans = m.tel.Spans
			}
			telemetry.Attach(env, t)
			s := telemetry.NewSampler(reg, m.sampleEvery)
			env.SetSampler(m.sampleEvery, s.Tick)
			m.samplers = append(m.samplers, envSampler{env: env, reg: reg, s: s})
		} else if m.tel != nil {
			telemetry.Attach(env, m.tel)
		}
		if m.fault != nil {
			// An invalid plan fails this one point (error row), never the
			// whole run.
			m.Check(fault.AttachPlan(env, m.fault))
		}
		m.envs = append(m.envs, env)
	}
	return env
}

// takeTimeline assembles the point's sampled timeline: each environment's
// series stacked end to end (environment i's samples shifted by the virtual
// time consumed by environments 0..i-1, mirroring the span recorder's epoch
// stacking), derived series computed, and the per-env registries merged
// into the run-wide one. Call after the point's Fn returned, before close.
func (m *Meter) takeTimeline(experiment, label string, traceOff sim.Time) telemetry.PointTimeline {
	pt := telemetry.PointTimeline{
		Experiment: experiment, Point: label,
		Every: m.sampleEvery, TraceOffset: traceOff,
	}
	var shared *telemetry.Registry
	if m.tel != nil {
		shared = m.tel.Metrics
	}
	var offset sim.Time
	for _, es := range m.samplers {
		pt.Absorb(es.s.Series(), offset)
		offset += es.env.Now()
		es.reg.MergeInto(shared)
	}
	pt.Finish()
	return pt
}

// WithFault installs a fault plan for every environment the point creates
// from now on, overriding any run-wide plan. The loss-* experiments call
// it with a per-point seeded plan before building their testbeds.
func (m *Meter) WithFault(p *fault.Plan) {
	if m != nil {
		m.fault = p
	}
}

// Check fails the current measurement point if err is non-nil: the point
// commits as an error row (value NaN) instead of a measurement, and the
// rest of the run continues. It must be called from inside a point's Fn.
func (m *Meter) Check(err error) {
	if err != nil {
		panic(&pointFailure{err: err})
	}
}

// pair builds the standard one-node-per-cluster WAN testbed.
func (m *Meter) pair(delay sim.Time) (*sim.Env, *cluster.Testbed) {
	env := m.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	return env, tb
}

// SimTime returns the total virtual time reached across the point's
// environments.
func (m *Meter) SimTime() sim.Time {
	var t sim.Time
	for _, e := range m.envs {
		t += e.Now()
	}
	return t
}

// Events returns the total number of simulation events executed across the
// point's environments.
func (m *Meter) Events() int64 {
	var n int64
	for _, e := range m.envs {
		n += e.Executed()
	}
	return n
}

// recordShardStats publishes the parallel scheduler's progress counters
// for every partitioned world the point ran — windows, cumulative
// safe-horizon advance, and per-shard dispatched-event and barrier-stall
// counts — and returns the point's window and horizon totals for the
// runner's per-point metrics. It consumes interval deltas
// (sim.Env.TakeWindowStats), not cumulative totals, so a world whose stats
// are sampled more than once (warmup phases, repeated harness sampling)
// contributes each window exactly once. Counters are atomic and keyed per
// shard index, so concurrent points on the worker pool aggregate
// race-free. Telemetry publication is skipped without a metrics registry;
// the returned totals are always computed.
func (m *Meter) recordShardStats() (windows int64, horizon sim.Time) {
	if m == nil {
		return 0, 0
	}
	var reg *telemetry.Registry
	if m.tel != nil {
		reg = m.tel.Metrics
	}
	for _, e := range m.envs {
		d := e.TakeWindowStats()
		if d.Shards == nil {
			continue
		}
		windows += d.Windows
		horizon += d.Horizon
		if reg == nil {
			continue
		}
		reg.Counter("sim.shard.windows").Add(d.Windows)
		reg.Counter("sim.shard.horizon").Add(int64(d.Horizon))
		for _, s := range d.Shards {
			reg.Counter(fmt.Sprintf("sim.shard.%d.executed", s.Shard)).Add(s.Executed)
			reg.Counter(fmt.Sprintf("sim.shard.%d.stalls", s.Shard)).Add(s.Stalls)
		}
	}
	return windows, horizon
}

// close shuts down every tracked environment, killing parked processes so
// their goroutines exit.
func (m *Meter) close() {
	for _, e := range m.envs {
		e.Shutdown()
	}
}

// registry lists every experiment in the paper's order. Adding a figure
// means adding a builder and one entry here; the CLI, RunAll, benchmarks
// and the determinism test all pick it up from this table.
var registry = []Spec{
	{"table1", "delay overhead of the Longbow's emulated wire length (Table 1)", table1},
	{"fig3", "verbs-level small-message latency across the WAN bridge", fig3},
	{"fig4", "verbs UD uni/bidirectional bandwidth vs WAN delay", fig4},
	{"fig5", "verbs RC uni/bidirectional bandwidth vs WAN delay", fig5},
	{"fig6", "IPoIB-UD TCP throughput vs delay (windows, parallel streams)", fig6},
	{"fig7", "IPoIB-RC TCP throughput vs delay (MTUs, parallel streams)", fig7},
	{"fig8", "MPI bandwidth vs WAN delay (MVAPICH2 model)", fig8},
	{"fig9", "MPI rendezvous-threshold tuning at 1 ms delay", fig9},
	{"fig10", "multi-pair MPI aggregate message rate vs delay", fig10},
	{"fig11", "MPI broadcast, stock vs WAN-aware hierarchical algorithm", fig11},
	{"fig12", "NAS kernel execution time vs WAN delay (64 procs)", fig12},
	{"fig13", "NFS read throughput over RDMA and IPoIB vs delay", fig13},
	// The loss-* family extends the paper to lossy WAN circuits (see
	// FAULTS.md); each point arms its own seeded fault plan.
	{"loss-goodput", "RC streaming goodput vs per-packet WAN loss", lossGoodput},
	{"loss-latency", "RC small-message latency vs per-packet WAN loss", lossLatency},
	{"loss-flap", "RC streaming goodput across scheduled WAN outages", lossFlap},
	{"loss-tcp", "IPoIB TCP goodput vs per-segment loss", lossTCP},
	// The multisite-* family runs on N-site topologies (Options.Topo picks
	// the topo preset; see multisite.go).
	{"multisite-bcast", "flat vs hierarchical broadcast on an N-site topology (latency + per-link WAN bytes)", multisiteBcast},
	{"multisite-allreduce", "flat vs hierarchical allreduce latency on an N-site topology", multisiteAllreduce},
	{"multisite-nfs", "NFS/RDMA read throughput from each satellite site to a central server", multisiteNFS},
	{"multisite-loss", "RC goodput across an N-site topology with one WAN link killed per series", multisiteLoss},
	// The congest-* family bounds the WAN egress queues and lets congestion
	// emerge from stream contention instead of fault injection (see
	// congest.go).
	{"congest-streams", "IPoIB-UD parallel-stream goodput with bounded/ECN-marked WAN queues", congestStreams},
	{"congest-queue", "IPoIB-UD goodput vs WAN queue bound: tail drop, ECN and lossless backpressure", congestQueue},
	// The failover-* family arms the fabric's self-healing routing layer
	// and kills links mid-run: on redundant presets every point reroutes
	// and lands a measurement instead of an ERR row (see failover.go).
	{"failover-kill", "RC goodput/latency with one WAN link killed mid-run and failover on", failoverKill},
	{"failover-debounce", "failover convergence time vs health-monitor debounce window", failoverDebounce},
	{"failover-services", "MPI/NFS/TCP surviving a mid-run link kill with failover on", failoverServices},
}

// ExperimentIDs lists the registered experiment identifiers, in the
// paper's order.
var ExperimentIDs = func() []string {
	ids := make([]string, len(registry))
	for i, s := range registry {
		ids[i] = s.ID
	}
	return ids
}()

// Specs returns a copy of the experiment registry, in the paper's order
// (the CLI's -list view).
func Specs() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the Spec registered under id.
func Lookup(id string) (Spec, bool) {
	for _, s := range registry {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// mustLookup panics on an unknown id (the CLI validates ids up front; a
// miss here is a programming error).
func mustLookup(id string) Spec {
	s, ok := Lookup(id)
	if !ok {
		panic(fmt.Sprintf("core: unknown experiment %q", id))
	}
	return s
}
