package core

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// timelineBytes runs one experiment with sampling armed and serializes the
// resulting timelines — the exact bytes -timeline-out would write.
func timelineBytes(t *testing.T, id string, opt Options, ropt RunnerOptions) []byte {
	t.Helper()
	ropt.SampleEvery = sim.Millisecond
	res := RunWith(id, opt, ropt)
	if len(res.Timelines) == 0 {
		t.Fatalf("%s: no timelines collected", id)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteTimelineJSON(&buf, ropt.SampleEvery, res.Timelines); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTimelineDeterminism is the tentpole regression: sampled timelines are
// byte-identical at any Workers / ShardWorkers combination, with and
// without a mid-run WAN flap rewriting the event flow.
func TestTimelineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("timeline determinism matrix skipped in -short mode")
	}
	flap := &fault.Plan{Seed: 7, WANFlaps: []fault.FlapStep{
		{At: 2 * sim.Millisecond, Down: true},
		{At: 6 * sim.Millisecond, Down: false},
	}}
	opt := Options{Quick: true, Topo: "star3-hetero"}
	for _, id := range []string{"multisite-allreduce", "multisite-nfs"} {
		for _, plan := range []*fault.Plan{nil, flap} {
			plan := plan
			name := id
			if plan != nil {
				name += "/wan-flap"
			}
			t.Run(name, func(t *testing.T) {
				base := timelineBytes(t, id, opt, RunnerOptions{Workers: 1, Fault: plan})
				for _, ropt := range []RunnerOptions{
					{Workers: 8},
					{Workers: 1, ShardWorkers: 4},
					{Workers: 2, ShardWorkers: 2},
				} {
					ropt.Fault = plan
					got := timelineBytes(t, id, opt, ropt)
					if !bytes.Equal(got, base) {
						t.Fatalf("timeline diverges at workers=%d shards=%d\n--- sequential ---\n%s\n--- got ---\n%s",
							ropt.Workers, ropt.ShardWorkers, base, got)
					}
				}
			})
		}
	}
}

// TestTimelineContent checks that a sampled run actually carries the
// instrumented series: the WAN busy counter, its derived utilization, and
// the hi-res RC window occupancy with populated quantile rows.
func TestTimelineContent(t *testing.T) {
	res := RunWith("loss-flap", Options{Quick: true}, RunnerOptions{Workers: 1, SampleEvery: sim.Millisecond})
	if len(res.Timelines) == 0 {
		t.Fatal("no timelines")
	}
	pt := res.Timelines[0]
	if pt.Experiment != "loss-flap" || pt.Every != sim.Millisecond {
		t.Fatalf("timeline header = %+v", pt)
	}
	want := map[string]string{
		"wan.link.busy.ns":              telemetry.KindCounter,
		"wan.link.utilization.permille": telemetry.KindDerived,
		"ib.rc.window.occupancy":        telemetry.KindHiRes,
		"wan.link.queue.wait.ns":        telemetry.KindHiRes,
		"wan.link.tx.bytes":             telemetry.KindCounter,
	}
	for _, s := range pt.Series {
		if kind, ok := want[s.Name]; ok && kind == s.Kind {
			delete(want, s.Name)
			if len(s.Samples)+len(s.Quantiles) == 0 {
				t.Errorf("series %s/%s has no rows", s.Name, s.Kind)
			}
		}
	}
	if len(want) != 0 {
		t.Errorf("missing series: %v (have %d series)", want, len(pt.Series))
	}
	// The busy counter must carry real traffic, and the derived utilization
	// must be its per-interval permille.
	var busy, util *telemetry.Series
	for i := range pt.Series {
		switch pt.Series[i].Name {
		case "wan.link.busy.ns":
			busy = &pt.Series[i]
		case "wan.link.utilization.permille":
			util = &pt.Series[i]
		}
	}
	var total int64
	for i, smp := range busy.Samples {
		total += smp.V
		if got := util.Samples[i].V; got != smp.V*1000/int64(sim.Millisecond) {
			t.Errorf("utilization row %d = %d, want %d", i, got, smp.V*1000/int64(sim.Millisecond))
		}
	}
	if total == 0 {
		t.Error("wan.link.busy.ns recorded no busy time on a streaming experiment")
	}
}

// TestTimelineMergesSharedRegistry checks that per-env sampled registries
// fold back into the run-wide registry, so -metrics-out totals are the
// same with sampling on or off.
func TestTimelineMergesSharedRegistry(t *testing.T) {
	run := func(every sim.Time) int64 {
		tel := &telemetry.Telemetry{Metrics: telemetry.NewRegistry()}
		RunWith("fig3", Options{Quick: true}, RunnerOptions{Workers: 1, Telemetry: tel, SampleEvery: every})
		return tel.Metrics.Counter("wan.link.tx.pkts").Value()
	}
	off, on := run(0), run(sim.Millisecond)
	if off == 0 || off != on {
		t.Errorf("shared-registry totals: sampling off %d, on %d (want equal, nonzero)", off, on)
	}
}

// TestTimelineOffCostsNothing checks Result.Timelines stays nil and no
// samples are taken when SampleEvery is unset.
func TestTimelineOffCostsNothing(t *testing.T) {
	res := RunWith("fig3", Options{Quick: true}, RunnerOptions{Workers: 1})
	if res.Timelines != nil {
		t.Errorf("Timelines = %v without SampleEvery", res.Timelines)
	}
}
