package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ipoib"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcpsim"
	"repro/internal/topo"
	"repro/internal/wan"
)

// The congest-* family bounds the WAN links' egress queues (ib.QueueConfig
// via the topo layer) and lets congestion emerge from traffic instead of
// being injected by a fault plan: parallel IPoIB-UD TCP streams between the
// first two sites overload a deliberately narrowed long-haul hop, and the
// resulting marks, drops and credit stalls come entirely from queue
// occupancy. The paper's parallel-stream recovery (Figs. 6b/7b) reappears
// here with a cause the two-site testbed could not express — streams
// contending for one bounded bottleneck rather than each filling a private
// window.
//
// Every knob is chosen so the effect is visible even in -quick worlds: the
// links are slowed to congestRate so that a single default-window stream is
// window-limited below the pipe while two or more streams exceed it, and
// the delay is large enough that the bandwidth-delay product dwarfs the
// minimum queue bound. All queue state is shard-local (admission and drain
// run on the transmitting port's shard), so every experiment here runs
// byte-identical on sharded worlds.

const (
	// congestDelay is the family's one-way WAN delay: long enough that the
	// 768 KB default window limits a single stream well below the narrowed
	// pipe (768 KB / ~4.1 ms RTT = ~187 MB/s).
	congestDelay = 2 * sim.Millisecond
	// congestRate narrows the long-haul hop so aggregate demand from two or
	// more default-window streams exceeds it — the contention the bounded
	// queues turn into marks and drops. SDR (1000 MB/s) would never
	// congest: the per-interface host-processing ceiling binds first.
	congestRate = 250e6
	// congestStreamCount is the fixed stream count for the queue-bound
	// sweep: enough aggregate window to overload every swept bound.
	congestStreamCount = 4
)

// congestSeriesSpec is one series of a congest table: a queue configuration
// applied to every WAN link.
type congestSeriesSpec struct {
	name     string
	frac     float64 // queue bound as a fraction of the link BDP; 0 = unbounded
	ecn      bool
	lossless bool
}

// congestStreamSeries are the three transmit-path disciplines compared by
// congest-streams: the seed model's unbounded FIFO, a BDP-sized tail-drop
// queue, and the same queue with ECN marking.
var congestStreamSeries = []congestSeriesSpec{
	{name: "unbounded"},
	{name: "taildrop-bdp", frac: 1},
	{name: "ecn-bdp", frac: 1, ecn: true},
}

// congestNet builds the preset topology with every WAN link narrowed to
// congestRate and, when frac > 0, bounded at frac of its own
// bandwidth-delay product with the given marking/backpressure discipline.
func congestNet(m *Meter, opt Options, sc congestSeriesSpec) *topo.Network {
	spec, err := topo.Preset(opt.Topo, multisiteNodes(opt), congestDelay)
	m.Check(err)
	links := make([]topo.Link, len(spec.Links))
	copy(links, spec.Links)
	for i := range links {
		links[i].Rate = congestRate
		if sc.frac > 0 {
			links[i].QueueBytes = int(sc.frac * float64(wan.BDPQueueBytes(congestRate, links[i].Delay)))
			links[i].ECN = sc.ecn
			links[i].Lossless = sc.lossless
		}
	}
	spec.Links = links
	nw, err := topo.Build(m.NewEnv(), spec)
	m.Check(err)
	return nw
}

// congestLedgers cross-checks the drop accounting after a fault-free
// congest point: every loss must come from queue overflow, never from the
// injected-fault ledger, and disciplines that cannot drop or stall must not
// have. Under a run-wide chaos plan (the chaos matrix runs every experiment
// with one) injected losses are expected, so only the discipline invariants
// that still hold are checked.
func congestLedgers(nw *topo.Network, sc congestSeriesSpec) error {
	faultFree := true
	if pl := fault.PlanFromEnv(nw.Env); pl != nil && pl.Enabled() {
		faultFree = false
	}
	for _, l := range nw.Links() {
		lk := l.Pair.Link()
		if faultFree {
			if d := lk.Drops(); d != 0 {
				return fmt.Errorf("congest: link %s counts %d injected drops in a fault-free run", l.Name(), d)
			}
		}
		if sc.frac == 0 {
			if d, m := lk.OverflowDrops(), lk.ECNMarks(); d != 0 || m != 0 {
				return fmt.Errorf("congest: unbounded link %s counts %d overflow drops, %d marks", l.Name(), d, m)
			}
		}
		if sc.lossless {
			if d := lk.OverflowDrops(); d != 0 {
				return fmt.Errorf("congest: lossless link %s counts %d overflow drops", l.Name(), d)
			}
		} else if s := lk.CreditStalls(); s != 0 {
			return fmt.Errorf("congest: lossy link %s counts %d credit stalls", l.Name(), s)
		}
	}
	return nil
}

// congestTCP runs streams one-way IPoIB-UD TCP flows from the first site to
// the second for dur and returns aggregate steady-state goodput over the
// second half in MillionBytes/s. Flows round-robin over the sites' nodes
// (sharing each interface's serialized stack contexts, as parallel streams
// on one host do); goodput is the receivers' in-order delivered bytes, so
// go-back-N duplicate arrivals under tail drop never inflate the number.
//
// Every per-flow process runs on its own stack's environment — the shard
// that owns the events it waits on — so the world may shard.
func congestTCP(nw *topo.Network, ecn bool, streams int, dur sim.Time) (float64, error) {
	siteA, siteB := nw.Sites()[0], nw.Sites()[1]
	net := ipoib.NewNetwork()
	cfg := tcpsim.Config{ECN: ecn}
	nstacks := streams
	if n := len(siteA.Nodes); nstacks > n {
		nstacks = n
	}
	if n := len(siteB.Nodes); nstacks > n {
		nstacks = n
	}
	sas := make([]*tcpsim.Stack, nstacks)
	sbs := make([]*tcpsim.Stack, nstacks)
	for i := 0; i < nstacks; i++ {
		sas[i] = tcpsim.NewStack(net.Attach(siteA.Nodes[i].HCA, ipoib.Datagram, 0), cfg)
		sbs[i] = tcpsim.NewStack(net.Attach(siteB.Nodes[i].HCA, ipoib.Datagram, 0), cfg)
	}
	// Per-flow slots, each written by exactly one process on one shard.
	conns := make([]*tcpsim.Conn, streams)
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		i := i
		sa, sb := sas[i%nstacks], sbs[i%nstacks]
		port := 6000 + i
		ln := sb.Listen(port)
		sb.Env().Go(fmt.Sprintf("congest-srv-%d", i), func(p *sim.Proc) {
			c, err := ln.Accept(p)
			if err != nil {
				errs[i] = err
				return
			}
			conns[i] = c
		})
		sa.Env().Go(fmt.Sprintf("congest-cli-%d", i), func(p *sim.Proc) {
			c, err := sa.Dial(p, sb.Addr(), port)
			if err != nil {
				errs[i] = err
				return
			}
			for {
				// The paper sends 2 MB application messages.
				if err := c.WriteSynthetic(p, 2<<20); err != nil {
					errs[i] = err
					return
				}
			}
		})
	}
	delivered := func() int64 {
		var n int64
		for _, c := range conns {
			if c != nil {
				n += c.Delivered()
			}
		}
		return n
	}
	nw.Env.RunUntil(dur / 2)
	mid := delivered()
	nw.Env.RunUntil(dur)
	end := delivered()
	if end == 0 {
		// Nothing was delivered inside the window: run on until the
		// connect/retransmission machinery reaches its verdict so a dead
		// WAN (the chaos matrix kills links under congest too) surfaces
		// its error instead of a measurement of nothing.
		nw.Env.RunUntil(dur + 20*sim.Second)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
	}
	return float64(end-mid) / (dur / 2).Seconds() / 1e6, nil
}

// congestDur is the family's per-point measurement window. AIMD needs tens
// of round trips to settle into its sawtooth — and a standing queue doubles
// the effective RTT — so the window is floored well above the quick-mode
// default: the first half absorbs slow start and the synchronized first
// congestion event, the measured second half is steady state.
func congestDur(opt Options) sim.Time {
	ms := opt.TCPMillis
	if ms < 600 {
		ms = 600
	}
	return sim.Time(ms)*sim.Millisecond + 60*congestDelay
}

// congestStreams reproduces the paper's parallel-stream recovery with the
// congestion emerging from a bounded queue: one default-window stream is
// window-limited below the narrowed pipe, and added streams recover the gap
// while the tail-drop and ECN disciplines keep the queue bounded — every
// mark and drop coming from occupancy, with the injected-fault ledger
// reading zero.
func congestStreams(opt Options) *Plan {
	opt.fill()
	t := stats.NewTable(multisiteTitle(opt, "IPoIB-UD aggregate goodput vs parallel streams, bounded WAN queue"),
		"Parallel Streams", "Goodput (MillionBytes/s)")
	pl := &Plan{Tables: []*stats.Table{t}}
	streams := []int{1, 2, 4, 8}
	if opt.Quick {
		streams = []int{1, 4}
	}
	for _, sc := range congestStreamSeries {
		sc := sc
		s := t.AddSeries(sc.name)
		for _, n := range streams {
			n := n
			label := fmt.Sprintf("congest-streams/%s/%s/%d", opt.Topo, sc.name, n)
			pl.point(s, float64(n), label, func(m *Meter) float64 {
				nw := congestNet(m, opt, sc)
				bw, err := congestTCP(nw, sc.ecn, n, congestDur(opt))
				m.Check(err)
				m.Check(congestLedgers(nw, sc))
				return bw
			})
		}
	}
	return pl
}

// congestQueue sweeps the queue bound at a fixed stream count, comparing
// the three bounded disciplines: tail drop loses throughput to go-back-N
// recovery as the bound shrinks, ECN backs the senders off without loss,
// and lossless credit stalls trade drops for head-of-line blocking on the
// stalled port.
func congestQueue(opt Options) *Plan {
	opt.fill()
	t := stats.NewTable(multisiteTitle(opt,
		fmt.Sprintf("IPoIB-UD aggregate goodput vs queue bound, %d streams", congestStreamCount)),
		"Queue Bound (fraction of BDP)", "Goodput (MillionBytes/s)")
	pl := &Plan{Tables: []*stats.Table{t}}
	fracs := []float64{0.25, 0.5, 1, 2}
	if opt.Quick {
		fracs = []float64{0.25, 1}
	}
	disciplines := []congestSeriesSpec{
		{name: "taildrop"},
		{name: "ecn", ecn: true},
		{name: "lossless", lossless: true},
	}
	for _, d := range disciplines {
		d := d
		s := t.AddSeries(d.name)
		for _, frac := range fracs {
			sc := d
			sc.frac = frac
			label := fmt.Sprintf("congest-queue/%s/%s/bdp-%g", opt.Topo, sc.name, frac)
			pl.point(s, frac, label, func(m *Meter) float64 {
				nw := congestNet(m, opt, sc)
				bw, err := congestTCP(nw, sc.ecn, congestStreamCount, congestDur(opt))
				m.Check(err)
				m.Check(congestLedgers(nw, sc))
				return bw
			})
		}
	}
	return pl
}
