package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/nfs"
	"repro/internal/perftest"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// The multisite-* family runs the paper's workloads on N-site topologies —
// the "cluster-of-clusters" deployments its conclusion motivates — built
// through internal/topo. Options.Topo picks the site graph (any topo
// preset); every experiment is a pure function of (preset, options), so
// star-vs-ring comparisons are two invocations of the same id. The family
// exercises what the two-site testbed cannot: multi-hop routing through
// intermediate sites, per-link WAN-byte accounting for the hierarchical
// collectives, and faults that kill one link of many.

// multisiteNodes sizes each site of the preset.
func multisiteNodes(opt Options) int {
	if opt.Quick {
		return 2
	}
	return 4
}

// multisite builds the preset topology at the given all-links delay. An
// unknown preset or malformed spec fails the point (ERR row), never the
// run.
func (m *Meter) multisite(opt Options, delay sim.Time) *topo.Network {
	t, err := topo.Preset(opt.Topo, multisiteNodes(opt), delay)
	m.Check(err)
	nw, err := topo.Build(m.NewEnv(), t)
	m.Check(err)
	return nw
}

// multisiteTitle stamps a table title with the topology it ran on.
func multisiteTitle(opt Options, what string) string {
	return fmt.Sprintf("Multisite [%s]: %s", opt.Topo, what)
}

// bcastOnce runs a single broadcast of size bytes from rank 0 across every
// node of the network and returns the number of bytes the chosen WAN link
// carried for it.
func bcastOnce(nw *topo.Network, size int, hier bool, link *topo.WANLink) int64 {
	w := mpi.NewWorld(nw.Env, nw.Nodes(), mpi.Config{})
	defer w.Shutdown()
	before := link.Pair.Link().TxTotal()
	w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if hier {
			r.HierBcast(p, 0, nil, size)
		} else {
			r.Bcast(p, 0, nil, size)
		}
	})
	return link.Pair.Link().TxTotal() - before
}

// multisiteBcast compares the stock and WAN-aware broadcasts on the
// configured topology: latency vs message size at 1 ms link delay, plus
// the per-link WAN byte count for a fixed 64 KB broadcast — the
// generalization of Fig. 11 that shows the hierarchical algorithm paying
// each link once while the flat algorithms re-cross them.
func multisiteBcast(opt Options) *Plan {
	opt.fill()
	const delay = sim.Millisecond
	lat := stats.NewTable(multisiteTitle(opt, "broadcast latency, 1ms links"),
		"Message Size (Bytes)", "Latency (us)")
	bytesT := stats.NewTable(multisiteTitle(opt, "broadcast WAN bytes per link, 64KB payload"),
		"Link Index", "WAN Bytes")
	pl := &Plan{Tables: []*stats.Table{lat, bytesT}}
	sizes := opt.sizes(64, 128<<10)
	iters := 3
	if opt.Quick {
		iters = 2
	}
	for _, hier := range []bool{false, true} {
		hier := hier
		variant := "Flat"
		if hier {
			variant = "Hier"
		}
		s := lat.AddSeries(variant)
		for _, size := range sizes {
			size := size
			label := fmt.Sprintf("multisite-bcast/%s/%s/%s", opt.Topo, variant, stats.FormatSize(float64(size)))
			pl.point(s, float64(size), label, func(m *Meter) float64 {
				nw := m.multisite(opt, delay)
				w := mpi.NewWorld(nw.Env, nw.Nodes(), mpi.Config{})
				defer w.Shutdown()
				return mpi.BcastLatency(w, size, iters, hier).Microseconds()
			})
		}
		sb := bytesT.AddSeries(variant)
		// One point per WAN link: the link count is a pure function of the
		// preset, so the table shape is known at build time.
		t, err := topo.Preset(opt.Topo, multisiteNodes(opt), delay)
		if err != nil {
			t = topo.Topology{} // unknown preset: no byte points; the latency points carry the error
		}
		for li := range t.Links {
			li, lk := li, t.Links[li]
			label := fmt.Sprintf("multisite-bcast/%s/%s/link%d[%s:%s]", opt.Topo, variant, li, lk.A, lk.B)
			pl.point(sb, float64(li), label, func(m *Meter) float64 {
				nw := m.multisite(opt, delay)
				return float64(bcastOnce(nw, 64<<10, hier, nw.Links()[li]))
			})
		}
	}
	return pl
}

// allreduceLatency measures the mean latency of iters allreduces of a
// vals-element float64 vector across the whole world.
func allreduceLatency(w *mpi.World, vals, iters int, hier bool) sim.Time {
	fin := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		vec := make([]float64, vals)
		for i := 0; i < iters; i++ {
			if hier {
				r.HierAllreduce(p, vec)
			} else {
				r.Allreduce(p, vec)
			}
		}
	})
	return fin / sim.Time(iters)
}

// multisiteAllreduce compares flat and hierarchical allreduce across the
// configured topology as link delay grows: the flat algorithm's
// reduce+broadcast re-crosses WAN links with log(n) rounds, while the
// site-tree variant pays each link one vector in each direction.
func multisiteAllreduce(opt Options) *Plan {
	opt.fill()
	t := stats.NewTable(multisiteTitle(opt, "allreduce latency (1024 doubles)"),
		"Delay (usecs)", "Latency (us)")
	pl := &Plan{Tables: []*stats.Table{t}}
	const vals = 1024
	iters := 3
	if opt.Quick {
		iters = 2
	}
	for _, hier := range []bool{false, true} {
		hier := hier
		variant := "Flat"
		if hier {
			variant = "Hier"
		}
		s := t.AddSeries(variant)
		for _, d := range opt.delays() {
			d := d
			label := fmt.Sprintf("multisite-allreduce/%s/%s/%s", opt.Topo, variant, delayLabel(d))
			pl.point(s, d.Microseconds(), label, func(m *Meter) float64 {
				nw := m.multisite(opt, d)
				w := mpi.NewWorld(nw.Env, nw.Nodes(), mpi.Config{})
				defer w.Shutdown()
				return allreduceLatency(w, vals, iters, hier).Microseconds()
			})
		}
	}
	return pl
}

// multisiteNFS mounts one NFS/RDMA client per satellite site against a
// server at the first site and measures per-client IOzone read throughput
// — the paper's cluster-of-clusters NFS scenario (Fig. 13) with clients
// more than one WAN hop away on ring topologies.
func multisiteNFS(opt Options) *Plan {
	opt.fill()
	t := stats.NewTable(multisiteTitle(opt, "NFS/RDMA read throughput, server at first site"),
		"Client Site Index", "Throughput (MillionBytes/s)")
	pl := &Plan{Tables: []*stats.Table{t}}
	fileMB := int64(opt.NFSFileMB)
	if fileMB > 64 {
		fileMB = 64 // steady-state read: a modest file bounds per-point cost
	}
	spec, err := topo.Preset(opt.Topo, multisiteNodes(opt), 0)
	if err != nil {
		spec = topo.Topology{Sites: []topo.Site{{Name: "?"}, {Name: "??"}}} // shape for the error points
	}
	for _, d := range []sim.Time{0, sim.Millisecond} {
		d := d
		s := t.AddSeries(delayLabel(d))
		for si := 1; si < len(spec.Sites); si++ {
			si, site := si, spec.Sites[si].Name
			label := fmt.Sprintf("multisite-nfs/%s/%s/site-%s", opt.Topo, delayLabel(d), site)
			pl.point(s, float64(si), label, func(m *Meter) float64 {
				nw := m.multisite(opt, d)
				srvNode := nw.Sites()[0].Nodes[0]
				clNode := nw.Sites()[si].Nodes[0]
				srv, cl := nfs.MountRDMA(srvNode, clNode)
				srv.AddSyntheticFile("f", fileMB<<20)
				return nfs.IOzone(nw.Env, cl, "f", nfs.IOzoneConfig{
					FileSize: fileMB << 20, RecordSize: 256 << 10, Threads: 2,
				})
			})
		}
	}
	return pl
}

// multisiteLoss streams RC traffic from the first site to every other site
// while killing one WAN link per series: destinations whose route crosses
// the dead link fail with explicit ERR rows (retry exhaustion), while the
// rest keep their full goodput — per-link fault isolation that a
// single-link testbed cannot express. The no-fault series is the baseline.
func multisiteLoss(opt Options) *Plan {
	opt.fill()
	t := stats.NewTable(multisiteTitle(opt, "RC goodput with one WAN link down"),
		"Destination Site Index", "Goodput (MillionBytes/s)")
	pl := &Plan{Tables: []*stats.Table{t}}
	size := 64 << 10
	count := 256
	if opt.Quick {
		count = 64
	}
	spec, err := topo.Preset(opt.Topo, multisiteNodes(opt), 0)
	if err != nil {
		spec = topo.Topology{Sites: []topo.Site{{Name: "?"}, {Name: "??"}}}
	}
	kills := make([]int, 0, len(spec.Links)+1)
	kills = append(kills, -1) // baseline: no link killed
	for li := range spec.Links {
		kills = append(kills, li)
	}
	for _, kill := range kills {
		kill := kill
		name := "no-fault"
		if kill >= 0 {
			name = fmt.Sprintf("kill %s:%s", spec.Links[kill].A, spec.Links[kill].B)
		}
		s := t.AddSeries(name)
		for si := 1; si < len(spec.Sites); si++ {
			si, site := si, spec.Sites[si].Name
			label := fmt.Sprintf("multisite-loss/%s/%s/site-%s", opt.Topo, name, site)
			pl.point(s, float64(si), label, func(m *Meter) float64 {
				spec, err := topo.Preset(opt.Topo, multisiteNodes(opt), 0)
				m.Check(err)
				if kill >= 0 {
					spec.Links[kill].Fault = &fault.Plan{Seed: seedFor(label), WANDown: true}
				}
				nw, err := topo.Build(m.NewEnv(), spec)
				m.Check(err)
				src := nw.Sites()[0].Nodes[0].HCA
				dst := nw.Sites()[si].Nodes[0].HCA
				return perftest.StreamRC(nw.Env, src, dst, size, count, lossQPCfg())
			})
		}
	}
	return pl
}
