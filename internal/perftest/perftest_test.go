package perftest

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/ib"
	"repro/internal/sim"
)

func pair(delay sim.Time) (*sim.Env, *ib.HCA, *ib.HCA) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	return env, tb.A[0].HCA, tb.B[0].HCA
}

func TestFig3LatencyOrdering(t *testing.T) {
	// Paper Fig. 3: RDMA write < RC send/recv ~ UD send/recv over the
	// Longbow pair, and all well under 10 us at zero delay.
	env1, a1, b1 := pair(0)
	rcLat := SendLatency(env1, a1, b1, ib.RC, 8, 50)
	env2, a2, b2 := pair(0)
	udLat := SendLatency(env2, a2, b2, ib.UD, 8, 50)
	env3, a3, b3 := pair(0)
	wrLat := WriteLatency(env3, a3, b3, 8, 50)
	if wrLat >= rcLat {
		t.Errorf("RDMA write latency (%v) not below RC send/recv (%v)", wrLat, rcLat)
	}
	// The gap is a few hundred nanoseconds of receive-side processing —
	// the write still traverses the full WAN path. Guard against
	// accidentally measuring local completions (which would look ~1us).
	if wrLat < 5*sim.Microsecond {
		t.Errorf("RDMA write latency %v implausibly low; did the ping-pong measure local completions?", wrLat)
	}
	if rcLat < 5*sim.Microsecond || rcLat > 10*sim.Microsecond {
		t.Errorf("RC send/recv latency over Longbows = %v, want ~6-7us", rcLat)
	}
	if udLat < 5*sim.Microsecond || udLat > 10*sim.Microsecond {
		t.Errorf("UD send/recv latency over Longbows = %v, want ~6-7us", udLat)
	}
}

func TestLatencyTracksWANDelay(t *testing.T) {
	env1, a1, b1 := pair(sim.Micros(1000))
	lat := SendLatency(env1, a1, b1, ib.RC, 8, 10)
	if lat < sim.Micros(1000) || lat > sim.Micros(1015) {
		t.Errorf("latency at 1ms delay = %v, want just above 1000us", lat)
	}
}

func TestRCBandwidthWindowAblation(t *testing.T) {
	// A wider in-flight window rescues medium messages at high delay —
	// the mechanism behind the paper's Fig. 5 explanation.
	env1, a1, b1 := pair(sim.Micros(1000))
	narrow := BandwidthRC(env1, a1, b1, 64<<10, 64, 4)
	env2, a2, b2 := pair(sim.Micros(1000))
	wide := BandwidthRC(env2, a2, b2, 64<<10, 64, 32)
	if wide < narrow*3 {
		t.Errorf("window ablation: narrow=%.1f wide=%.1f, want ~8x", narrow, wide)
	}
}

func TestBidirectionalRoughlyDoubles(t *testing.T) {
	env1, a1, b1 := pair(0)
	uni := BandwidthRC(env1, a1, b1, 1<<20, 16, 8)
	env2, a2, b2 := pair(0)
	bi := BiBandwidthRC(env2, a2, b2, 1<<20, 16, 8)
	if bi < 1.7*uni {
		t.Errorf("bidirectional bw %.1f not ~2x unidirectional %.1f", bi, uni)
	}
}

func TestUDBandwidthPeak(t *testing.T) {
	env, a, b := pair(0)
	bw := BandwidthUD(env, a, b, ib.MaxUDPayload, 1000)
	if bw < 930 || bw > 1010 {
		t.Errorf("UD peak = %.1f, want ~967", bw)
	}
}

func TestUDBiBandwidthPeak(t *testing.T) {
	env, a, b := pair(0)
	bw := BiBandwidthUD(env, a, b, ib.MaxUDPayload, 1000)
	if bw < 1800 || bw > 2020 {
		t.Errorf("UD bidirectional peak = %.1f, want ~1940", bw)
	}
}
