// Package perftest reimplements the OFED verbs-level performance tests the
// paper uses for its baseline characterization (§3.2): send/recv latency
// over UD and RC, RDMA-write latency, and streaming bandwidth /
// bidirectional bandwidth over both transports.
package perftest

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
)

// ackSize is the tiny message the bandwidth tests use as a final handshake.
const ackSize = 4

// SendLatency measures half-round-trip send/recv latency between two HCAs
// over the given transport.
func SendLatency(env *sim.Env, a, b *ib.HCA, tr ib.Transport, size, iters int) sim.Time {
	if tr == ib.UD {
		return udLatency(env, a, b, size, iters)
	}
	return PingRC(env, a, b, size, iters, ib.QPConfig{})
}

// PingRC is SendLatency over RC with an explicit QP configuration — the
// knob the fault-injected experiments use to trade the retry budget
// (QPConfig.RetryLimit, RetryTimeout) against loss rate.
//
// Each side's driver process is spawned on its own HCA's environment: on a
// classic (unsharded) world both resolve to env and nothing changes, while
// on a sharded multi-site world each process lives on its endpoint's shard
// and only ever waits on that shard's CQ. The ping-pong needs no other
// synchronization — every wire crossing is the fabric's own.
func PingRC(env *sim.Env, a, b *ib.HCA, size, iters int, qcfg ib.QPConfig) sim.Time {
	qa, qb := ib.CreateRCPair(a, b, nil, nil, qcfg)
	var total sim.Time
	completed := false
	b.Env().Go("lat-b", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			qb.PostRecv(ib.RecvWR{})
			waitFor(p, qb.CQ(), ib.OpRecv)
			qb.PostSend(ib.SendWR{Op: ib.OpSend, Len: size})
			waitFor(p, qb.CQ(), ib.OpSend)
		}
	})
	a.Env().Go("lat-a", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < iters; i++ {
			qa.PostRecv(ib.RecvWR{})
			qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: size})
			waitFor(p, qa.CQ(), ib.OpRecv)
		}
		total = p.Now() - start
		completed = true
		env.Stop()
	})
	env.Run()
	env.Shutdown()
	checkCompleted(completed, "PingRC")
	return total / sim.Time(2*iters)
}

func udLatency(env *sim.Env, a, b *ib.HCA, size, iters int) sim.Time {
	cqa, cqb := ib.NewCQ(env), ib.NewCQ(env)
	qa := a.CreateQP(cqa, ib.QPConfig{Transport: ib.UD})
	qb := b.CreateQP(cqb, ib.QPConfig{Transport: ib.UD})
	var total sim.Time
	completed := false
	env.Go("lat-b", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			qb.PostRecv(ib.RecvWR{})
			waitFor(p, cqb, ib.OpRecv)
			qb.PostSend(ib.SendWR{Op: ib.OpSend, Len: size, DestLID: a.LID(), DestQPN: qa.QPN()})
		}
	})
	env.Go("lat-a", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < iters; i++ {
			qa.PostRecv(ib.RecvWR{})
			qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: size, DestLID: b.LID(), DestQPN: qb.QPN()})
			waitFor(p, cqa, ib.OpRecv)
		}
		total = p.Now() - start
		completed = true
		env.Stop()
	})
	env.Run()
	env.Shutdown()
	checkCompleted(completed, "SendLatency(UD)")
	return total / sim.Time(2*iters)
}

// WriteLatency measures half-round-trip RDMA-write latency (the
// ib_write_lat pattern: each side writes into the peer's region and polls
// for the peer's write).
func WriteLatency(env *sim.Env, a, b *ib.HCA, size, iters int) sim.Time {
	qa, qb := ib.CreateRCPair(a, b, nil, nil, ib.QPConfig{})
	mra := a.RegisterVirtualMR(size)
	mrb := b.RegisterVirtualMR(size)
	var total sim.Time
	completed := false
	env.Go("wlat-b", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			waitNotify(p, qb.CQ()) // peer's write landed
			qb.PostSend(ib.SendWR{Op: ib.OpRDMAWrite, Len: size, RemoteMR: mra, NotifyRemote: true})
		}
	})
	env.Go("wlat-a", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < iters; i++ {
			qa.PostSend(ib.SendWR{Op: ib.OpRDMAWrite, Len: size, RemoteMR: mrb, NotifyRemote: true})
			waitNotify(p, qa.CQ()) // peer's response write
		}
		total = p.Now() - start
		completed = true
		env.Stop()
	})
	env.Run()
	env.Shutdown()
	checkCompleted(completed, "WriteLatency")
	return total / sim.Time(2*iters)
}

// checkStatus aborts the benchmark on an errored completion: the RC
// connection's retry budget ran out, so the measurement cannot finish. The
// panic carries a deterministic message and surfaces as the experiment
// point's error.
func checkStatus(c ib.Completion) {
	if c.Status != ib.StatusOK {
		panic(fmt.Sprintf("perftest: %s completed with %s (communication failure)", c.Op, c.Status))
	}
}

// checkCompleted aborts after env.Run returned without the measurement
// finishing — the run went quiet (every in-flight packet lost, nothing
// left to schedule) without an error completion to pin it on.
func checkCompleted(completed bool, name string) {
	if !completed {
		panic(fmt.Sprintf("perftest: %s did not complete (communication failure)", name))
	}
}

// waitFor polls the CQ until a completion with the given opcode appears.
// For latency tests the interesting completion may be interleaved with the
// local send completions, which are discarded.
func waitFor(p *sim.Proc, cq *ib.CQ, op ib.Opcode) ib.Completion {
	for {
		c := cq.Poll(p)
		checkStatus(c)
		if c.Op == op {
			return c
		}
	}
}

// waitNotify polls the CQ until a remote-write notification appears,
// discarding local completions (a local RDMA-write completion carries no
// source LID; a remote notify does).
func waitNotify(p *sim.Proc, cq *ib.CQ) ib.Completion {
	for {
		c := cq.Poll(p)
		checkStatus(c)
		if c.Op == ib.OpRDMAWrite && c.SrcLID != 0 {
			return c
		}
	}
}

// BandwidthRC measures one-way RC streaming bandwidth (MillionBytes/s) for
// the given message size, sending count messages.
func BandwidthRC(env *sim.Env, a, b *ib.HCA, size, count, window int) float64 {
	return StreamRC(env, a, b, size, count, ib.QPConfig{MaxInflight: window})
}

// StreamRC is BandwidthRC with an explicit QP configuration — the
// fault-injected experiments pass a generous RetryLimit with a short
// RetryTimeout so packet loss costs time instead of killing the
// connection.
//
// The measured window runs from the sender's start to whichever endpoint
// finishes later: the receiver's last in-order delivery or the sender's
// last send completion (the returning ack). On a classic world the receiver
// hands its finish instant to the sender through a zero-latency done event
// and the sender's clock after the wait is exactly that maximum, as before.
// On a sharded world (the endpoints live on different shard environments) a
// zero-latency cross-shard event would violate conservative synchronization,
// so each side records its own timestamp and the maximum is taken after Run
// returns — RC acks ride the in-order delivery stream, so the sender's
// final completion strictly follows the receiver's last delivery and
// stopping the run there seals both timestamps. The two paths compute the
// same value from the same instants.
func StreamRC(env *sim.Env, a, b *ib.HCA, size, count int, qcfg ib.QPConfig) float64 {
	qa, qb := ib.CreateRCPair(a, b, nil, nil, qcfg)
	var start, senderEnd, recvEnd sim.Time
	sent, received := false, false
	classic := a.Env() == b.Env()
	var done *sim.Event
	if classic {
		done = env.NewEvent()
	}
	b.Env().Go("bw-recv", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			qb.PostRecv(ib.RecvWR{})
		}
		for i := 0; i < count; i++ {
			waitFor(p, qb.CQ(), ib.OpRecv)
		}
		recvEnd = p.Now()
		received = true
		if classic {
			done.Trigger(nil)
		}
	})
	a.Env().Go("bw-send", func(p *sim.Proc) {
		start = p.Now()
		for i := 0; i < count; i++ {
			qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: size})
		}
		for i := 0; i < count; i++ {
			waitFor(p, qa.CQ(), ib.OpSend)
		}
		if classic {
			p.Wait(done)
		}
		senderEnd = p.Now()
		sent = true
		env.Stop()
	})
	env.Run()
	env.Shutdown()
	checkCompleted(sent && received, "StreamRC")
	end := senderEnd
	if recvEnd > end {
		end = recvEnd
	}
	elapsed := end - start
	return float64(size) * float64(count) / elapsed.Seconds() / 1e6
}

// BiBandwidthRC measures aggregate two-way RC bandwidth.
func BiBandwidthRC(env *sim.Env, a, b *ib.HCA, size, count, window int) float64 {
	qa, qb := ib.CreateRCPair(a, b, nil, nil, ib.QPConfig{MaxInflight: window})
	finish := func(p *sim.Proc, q *ib.QP) {
		for i := 0; i < count; i++ {
			q.PostRecv(ib.RecvWR{})
		}
		for i := 0; i < count; i++ {
			q.PostSend(ib.SendWR{Op: ib.OpSend, Len: size})
		}
		sends, recvs := 0, 0
		for sends < count || recvs < count {
			c := q.CQ().Poll(p)
			checkStatus(c)
			switch c.Op {
			case ib.OpSend:
				sends++
			case ib.OpRecv:
				recvs++
			}
		}
	}
	var elapsed sim.Time
	completed := false
	env.Go("bibw-b", func(p *sim.Proc) { finish(p, qb) })
	env.Go("bibw-a", func(p *sim.Proc) {
		start := p.Now()
		finish(p, qa)
		elapsed = p.Now() - start
		completed = true
		env.Stop()
	})
	env.Run()
	env.Shutdown()
	checkCompleted(completed, "BiBandwidthRC")
	return 2 * float64(size) * float64(count) / elapsed.Seconds() / 1e6
}

// BandwidthUD measures the steady-state one-way UD streaming rate. Because
// UD is open-loop, the rate is computed between the first and last arrival
// so the pipeline-fill delay (the WAN latency itself) is excluded —
// matching how a long-running ib_send_bw converges.
func BandwidthUD(env *sim.Env, a, b *ib.HCA, size, count int) float64 {
	cqa, cqb := ib.NewCQ(env), ib.NewCQ(env)
	qa := a.CreateQP(cqa, ib.QPConfig{Transport: ib.UD})
	qb := b.CreateQP(cqb, ib.QPConfig{Transport: ib.UD})
	var window sim.Time
	completed := false
	env.Go("udbw-recv", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			qb.PostRecv(ib.RecvWR{})
		}
		var first sim.Time
		for i := 0; i < count; i++ {
			waitFor(p, cqb, ib.OpRecv)
			if i == 0 {
				first = p.Now()
			}
		}
		window = p.Now() - first
		completed = true
		env.Stop()
	})
	env.Go("udbw-send", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: size, DestLID: b.LID(), DestQPN: qb.QPN()})
		}
	})
	env.Run()
	env.Shutdown()
	checkCompleted(completed, "BandwidthUD")
	return float64(size) * float64(count-1) / window.Seconds() / 1e6
}

// BiBandwidthUD measures aggregate two-way UD streaming rate, steady-state.
func BiBandwidthUD(env *sim.Env, a, b *ib.HCA, size, count int) float64 {
	cqa, cqb := ib.NewCQ(env), ib.NewCQ(env)
	qa := a.CreateQP(cqa, ib.QPConfig{Transport: ib.UD})
	qb := b.CreateQP(cqb, ib.QPConfig{Transport: ib.UD})
	rate := func(p *sim.Proc, cq *ib.CQ) float64 {
		var first sim.Time
		for i := 0; i < count; i++ {
			waitFor(p, cq, ib.OpRecv)
			if i == 0 {
				first = p.Now()
			}
		}
		return float64(size) * float64(count-1) / (p.Now() - first).Seconds() / 1e6
	}
	var ra, rb float64
	left := 2
	env.Go("a", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			qa.PostRecv(ib.RecvWR{})
		}
		for i := 0; i < count; i++ {
			qa.PostSend(ib.SendWR{Op: ib.OpSend, Len: size, DestLID: b.LID(), DestQPN: qb.QPN()})
		}
		ra = rate(p, cqa)
		if left--; left == 0 {
			env.Stop()
		}
	})
	env.Go("b", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			qb.PostRecv(ib.RecvWR{})
		}
		for i := 0; i < count; i++ {
			qb.PostSend(ib.SendWR{Op: ib.OpSend, Len: size, DestLID: a.LID(), DestQPN: qa.QPN()})
		}
		rb = rate(p, cqb)
		if left--; left == 0 {
			env.Stop()
		}
	})
	env.Run()
	env.Shutdown()
	checkCompleted(left == 0, "BiBandwidthUD")
	return ra + rb
}
