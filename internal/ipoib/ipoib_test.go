package ipoib

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/ib"
	"repro/internal/sim"
)

type fakePkt struct{ id int }

func twoDevs(t *testing.T, mode Mode, mtu int, delay sim.Time) (*sim.Env, *NetDev, *NetDev) {
	t.Helper()
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	n := NewNetwork()
	da := n.Attach(tb.A[0].HCA, mode, mtu)
	db := n.Attach(tb.B[0].HCA, mode, mtu)
	return env, da, db
}

func TestDatagramDelivery(t *testing.T) {
	env, da, db := twoDevs(t, Datagram, 0, 0)
	var got []int
	var lens []int
	db.SetHandler(func(src ib.LID, payload any, length int, ecn bool) {
		got = append(got, payload.(*fakePkt).id)
		lens = append(lens, length)
	})
	env.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			da.Send(db.LID(), &fakePkt{id: i}, 1500)
		}
	})
	env.Run()
	env.Shutdown()
	if len(got) != 5 {
		t.Fatalf("delivered %d packets, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order = %v", got)
		}
		if lens[i] != 1500 {
			t.Fatalf("length = %d, want 1500", lens[i])
		}
	}
}

func TestConnectedDelivery(t *testing.T) {
	env, da, db := twoDevs(t, Connected, 0, sim.Micros(100))
	count := 0
	db.SetHandler(func(src ib.LID, payload any, length int, ecn bool) {
		count++
		if length != 60000 {
			t.Errorf("length = %d, want 60000", length)
		}
	})
	env.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			da.Send(db.LID(), nil, 60000)
		}
	})
	env.Run()
	env.Shutdown()
	if count != 3 {
		t.Fatalf("delivered %d, want 3", count)
	}
	if da.TxPackets() != 3 || db.RxPackets() != 3 {
		t.Errorf("counters tx=%d rx=%d", da.TxPackets(), db.RxPackets())
	}
}

func TestDatagramMTULimit(t *testing.T) {
	env, da, db := twoDevs(t, Datagram, 0, 0)
	_ = env
	defer func() {
		if recover() == nil {
			t.Fatal("oversize datagram send did not panic")
		}
	}()
	da.Send(db.LID(), nil, DatagramMTU+1)
}

func TestConnectedCustomMTU(t *testing.T) {
	env, da, db := twoDevs(t, Connected, 16384, 0)
	_ = env
	if da.MTU() != 16384 {
		t.Fatalf("MTU = %d", da.MTU())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("send above configured MTU did not panic")
		}
	}()
	da.Send(db.LID(), nil, 16385)
}

func TestBidirectionalTraffic(t *testing.T) {
	env, da, db := twoDevs(t, Datagram, 0, sim.Micros(10))
	gotA, gotB := 0, 0
	da.SetHandler(func(src ib.LID, payload any, length int, ecn bool) { gotA++ })
	db.SetHandler(func(src ib.LID, payload any, length int, ecn bool) { gotB++ })
	env.Go("a", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			da.Send(db.LID(), nil, 1000)
			p.Sleep(sim.Microsecond)
		}
	})
	env.Go("b", func(p *sim.Proc) {
		for i := 0; i < 7; i++ {
			db.Send(da.LID(), nil, 1000)
			p.Sleep(sim.Microsecond)
		}
	})
	env.Run()
	env.Shutdown()
	if gotA != 7 || gotB != 10 {
		t.Errorf("gotA=%d gotB=%d, want 7/10", gotA, gotB)
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1})
	n := NewNetwork()
	n.Attach(tb.A[0].HCA, Datagram, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	n.Attach(tb.A[0].HCA, Connected, 0)
}
