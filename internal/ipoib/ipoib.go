// Package ipoib models the IPoIB driver: IP datagrams carried over
// InfiniBand. Two modes are modeled, matching the paper (§2.1, §3.3):
//
//   - Datagram mode (UD transport): the IP MTU is limited to one IB MTU
//     (2 KB), so a given data volume costs many packets and much per-packet
//     host processing.
//   - Connected mode (RC transport): per-peer reliable connections allow IP
//     MTUs up to 64 KB, amortizing per-packet costs — but inheriting RC's
//     bounded in-flight window, which throttles throughput at large WAN
//     delays (paper Fig. 7 vs Fig. 5).
//
// The package provides an unreliable datagram interface (Send/handler);
// reliability, ordering and flow control above it belong to TCP
// (internal/tcpsim), exactly as in the real stack. IP packets are simulated
// at full wire length but their protocol headers ride as typed values
// (ib.SendWR.Meta) rather than marshaled bytes.
package ipoib

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
)

// Mode selects the IPoIB transport mode.
type Mode int

const (
	// Datagram is IPoIB-UD.
	Datagram Mode = iota
	// Connected is IPoIB-CM over RC.
	Connected
)

func (m Mode) String() string {
	if m == Datagram {
		return "UD"
	}
	return "RC"
}

// MTUs. The datagram-mode IP MTU fits a single IB MTU; connected mode
// allows up to the 64 KB the paper quotes as "the maximum allowed for an IP
// packet".
const (
	// EncapHeader is the IPoIB encapsulation overhead per IP packet.
	EncapHeader = 4
	// DatagramMTU is the datagram-mode IP MTU: one IB MTU minus the
	// encapsulation header — 2044, as in the real driver.
	DatagramMTU = ib.MTU - EncapHeader
	// MaxConnectedMTU is the connected-mode ceiling (the paper's "64K,
	// the maximum allowed for an IP packet").
	MaxConnectedMTU = 65536 - EncapHeader
)

// DefaultCMWindow is the default RC in-flight window for connected-mode
// interfaces. The IPoIB driver posts a deeper transmit queue than raw verbs
// applications, so connected-mode flows keep more messages on the wire; 32
// messages of 64 KB give 2 MB in flight, which is what lets parallel TCP
// streams keep an IPoIB-RC WAN pipe fuller than a single window-limited
// stream (paper Fig. 7b).
const DefaultCMWindow = 32

// recvPool is the number of receive buffers kept posted per QP. TCP's
// window-based flow control keeps in-flight data far below this, so the
// pool never underflows in normal operation.
const recvPool = 1024

// Handler consumes an arriving IP packet: the source interface address, the
// opaque packet payload (as passed to Send), its length in bytes, and
// whether the underlying IB transfer carried a congestion-experienced mark
// from a bounded link queue (the ECN codepoint tcpsim echoes back to the
// sender).
type Handler func(src ib.LID, payload any, length int, ecn bool)

// Network is the IPoIB "subnet": the registry mapping LIDs to interfaces,
// standing in for ARP/neighbour discovery.
type Network struct {
	devs map[ib.LID]*NetDev
}

// NewNetwork creates an empty IPoIB network.
func NewNetwork() *Network { return &Network{devs: make(map[ib.LID]*NetDev)} }

// Dev returns the interface at the given address, or nil.
func (n *Network) Dev(lid ib.LID) *NetDev { return n.devs[lid] }

// NetDev is one IPoIB interface on an HCA.
type NetDev struct {
	net     *Network
	hca     *ib.HCA
	mode    Mode
	mtu     int
	cq      *ib.CQ
	udQP    *ib.QP
	conns   map[ib.LID]*ib.QP // connected-mode per-peer QPs
	handler Handler
	window  int // RC in-flight window override (0 = default)
	rxPkts  int64
	txPkts  int64
}

// Attach creates an IPoIB interface on the HCA with the given mode and IP
// MTU (0 selects the mode's default: 2 KB for datagram, 64 KB for
// connected). The interface starts its receive engine immediately.
func (n *Network) Attach(hca *ib.HCA, mode Mode, mtu int) *NetDev {
	switch mode {
	case Datagram:
		if mtu == 0 {
			mtu = DatagramMTU
		}
		if mtu > DatagramMTU {
			panic(fmt.Sprintf("ipoib: datagram MTU %d exceeds IB MTU %d", mtu, DatagramMTU))
		}
	case Connected:
		if mtu == 0 {
			mtu = MaxConnectedMTU
		}
		if mtu > MaxConnectedMTU {
			panic(fmt.Sprintf("ipoib: connected MTU %d exceeds %d", mtu, MaxConnectedMTU))
		}
	default:
		panic("ipoib: unknown mode")
	}
	if _, dup := n.devs[hca.LID()]; dup {
		panic(fmt.Sprintf("ipoib: HCA %s already has an interface", hca.Name()))
	}
	d := &NetDev{
		net:   n,
		hca:   hca,
		mode:  mode,
		mtu:   mtu,
		cq:    ib.NewCQ(hca.Env()),
		conns: make(map[ib.LID]*ib.QP),
	}
	if mode == Connected {
		d.window = DefaultCMWindow
	}
	if mode == Datagram {
		d.udQP = hca.CreateQP(d.cq, ib.QPConfig{Transport: ib.UD})
		for i := 0; i < recvPool; i++ {
			d.udQP.PostRecv(ib.RecvWR{})
		}
	}
	n.devs[hca.LID()] = d
	d.startReceiver()
	return d
}

// MTU returns the interface IP MTU.
func (d *NetDev) MTU() int { return d.mtu }

// Mode returns the transport mode.
func (d *NetDev) Mode() Mode { return d.mode }

// LID returns the interface address (the HCA LID).
func (d *NetDev) LID() ib.LID { return d.hca.LID() }

// HCA returns the underlying adapter.
func (d *NetDev) HCA() *ib.HCA { return d.hca }

// Env returns the simulation environment.
func (d *NetDev) Env() *sim.Env { return d.hca.Env() }

// SetHandler installs the receive callback (e.g. the TCP demultiplexer).
func (d *NetDev) SetHandler(h Handler) { d.handler = h }

// SetWindow overrides the connected-mode RC in-flight window; it must be
// set before the first Send to a peer.
func (d *NetDev) SetWindow(w int) { d.window = w }

// TxPackets and RxPackets report interface counters.
func (d *NetDev) TxPackets() int64 { return d.txPkts }
func (d *NetDev) RxPackets() int64 { return d.rxPkts }

// Send transmits one IP packet of the given wire length carrying the given
// payload value to the interface at dst. length must not exceed the
// interface MTU; packetization to the MTU is the caller's job (TCP
// segmentation).
func (d *NetDev) Send(dst ib.LID, payload any, length int) {
	if length <= 0 || length > d.mtu {
		panic(fmt.Sprintf("ipoib: packet length %d outside (0, %d]", length, d.mtu))
	}
	peer := d.net.devs[dst]
	if peer == nil {
		panic(fmt.Sprintf("ipoib: no interface at LID %d", dst))
	}
	d.txPkts++
	wire := length + EncapHeader
	switch d.mode {
	case Datagram:
		d.udQP.PostSend(ib.SendWR{
			Op: ib.OpSend, Len: wire, Meta: payload,
			DestLID: dst, DestQPN: peer.udQP.QPN(),
		})
	case Connected:
		d.connTo(peer).PostSend(ib.SendWR{Op: ib.OpSend, Len: wire, Meta: payload})
	}
}

// connTo returns (creating on demand) the connected-mode QP toward the
// peer. Connection establishment is rare control-plane work, modeled as
// instantaneous.
func (d *NetDev) connTo(peer *NetDev) *ib.QP {
	if qp, ok := d.conns[peer.LID()]; ok {
		return qp
	}
	if peer.mode != Connected {
		panic("ipoib: connected-mode send to datagram-mode interface")
	}
	cfg := ib.QPConfig{MaxInflight: d.window}
	local, remote := ib.CreateRCPair(d.hca, peer.hca, d.cq, peer.cq, cfg)
	d.conns[peer.LID()] = local
	peer.conns[d.LID()] = remote
	for i := 0; i < recvPool; i++ {
		local.PostRecv(ib.RecvWR{})
		remote.PostRecv(ib.RecvWR{})
	}
	return local
}

// startReceiver runs the interface's receive engine: it polls the CQ,
// reposts receive buffers and dispatches inbound packets to the handler. It
// models the single NAPI/softirq context a 2008-era IPoIB interface has —
// receive processing for all flows on an interface is serialized, which is
// part of why a host cannot exceed the single-interface stack ceiling no
// matter how many TCP streams it runs (paper Figs. 6b, 7b).
func (d *NetDev) startReceiver() {
	d.Env().Go("ipoib-rx-"+d.hca.Name(), func(p *sim.Proc) {
		for {
			c := d.cq.Poll(p)
			if c.Op != ib.OpRecv {
				continue // send completions need no action
			}
			d.rxPkts++
			if qp := d.qpByQPN(c.QPN); qp != nil {
				qp.PostRecv(ib.RecvWR{})
			}
			if d.handler != nil {
				d.handler(c.SrcLID, c.Meta, c.Bytes-EncapHeader, c.ECN)
			}
		}
	})
}

func (d *NetDev) qpByQPN(qpn int) *ib.QP {
	if d.udQP != nil && d.udQP.QPN() == qpn {
		return d.udQP
	}
	for _, qp := range d.conns {
		if qp.QPN() == qpn {
			return qp
		}
	}
	return nil
}
