// Multisite: build N-site WAN topologies from declarative specs and watch
// the hierarchical broadcast pay each WAN link exactly once. The paper's
// testbed is two clusters on one Longbow pair; this example runs its MPI
// layer on a 3-site star and a 4-site ring (where some site pairs are two
// WAN hops apart) and counts the bytes every Longbow link carries.
package main

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	fmt.Println("ibwan multisite: star and ring site graphs, per-link WAN bytes")
	fmt.Println()

	const size = 256 << 10 // one 256 KB broadcast from rank 0

	for _, preset := range []string{"star3", "ring4"} {
		spec, err := topo.Preset(preset, 2, sim.Millisecond)
		must(err)
		fmt.Printf("%s: %d sites, %d WAN links, 1 ms per link\n",
			preset, len(spec.Sites), len(spec.Links))

		for _, hier := range []bool{false, true} {
			env := sim.NewEnv()
			nw, err := topo.Build(env, spec)
			must(err)
			w := mpi.NewWorld(env, nw.Nodes(), mpi.Config{})

			before := make([]int64, len(nw.Links()))
			for i, l := range nw.Links() {
				before[i] = l.Pair.Link().TxTotal()
			}
			fin := w.Run(func(r *mpi.Rank, p *sim.Proc) {
				if hier {
					r.HierBcast(p, 0, nil, size)
				} else {
					r.Bcast(p, 0, nil, size)
				}
			})

			name := "flat binomial"
			if hier {
				name = "hierarchical"
			}
			fmt.Printf("  %-14s %8.0f us", name, fin.Microseconds())
			for i, l := range nw.Links() {
				fmt.Printf("   %s=%dKB", l.Name(), (l.Pair.Link().TxTotal()-before[i])>>10)
			}
			fmt.Println()
			w.Shutdown()
		}
		fmt.Println()
	}
	fmt.Println("The hierarchical broadcast relays through per-site leaders")
	fmt.Println("along the site tree, so each WAN link carries the payload at")
	fmt.Println("most once (the ring's off-tree link carries nothing), while")
	fmt.Println("the flat tree re-crosses links once per remote child.")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
