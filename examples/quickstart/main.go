// Quickstart: build the paper's cluster-of-clusters testbed — two
// InfiniBand clusters joined by a pair of Obsidian Longbow XR WAN
// extenders — set an emulated distance, and measure verbs-level latency
// and bandwidth across the WAN.
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/ib"
	"repro/internal/perftest"
	"repro/internal/sim"
)

func main() {
	fmt.Println("ibwan quickstart: two clusters, one emulated WAN link")
	fmt.Println()

	for _, km := range []float64{0, 10, 200, 2000} {
		// A fresh simulation per distance keeps runs independent.
		env := sim.NewEnv()
		tb := cluster.New(env, cluster.Config{NodesA: 2, NodesB: 2})
		must(tb.WAN.SetDistanceKM(km))

		a := tb.A[0].HCA // one node in cluster A
		b := tb.B[0].HCA // one node in cluster B

		lat := perftest.SendLatency(env, a, b, ib.RC, 8, 100)

		env2 := sim.NewEnv()
		tb2 := cluster.New(env2, cluster.Config{NodesA: 2, NodesB: 2})
		must(tb2.WAN.SetDistanceKM(km))
		bwSmall := perftest.BandwidthRC(env2, tb2.A[0].HCA, tb2.B[0].HCA, 64<<10, 256, 0)

		env3 := sim.NewEnv()
		tb3 := cluster.New(env3, cluster.Config{NodesA: 2, NodesB: 2})
		must(tb3.WAN.SetDistanceKM(km))
		bwLarge := perftest.BandwidthRC(env3, tb3.A[0].HCA, tb3.B[0].HCA, 4<<20, 16, 0)

		fmt.Printf("distance %6.0f km (%v one-way):\n", km, tb.WAN.Delay())
		fmt.Printf("  RC 8B latency:        %8.2f us\n", lat.Microseconds())
		fmt.Printf("  RC 64KB bandwidth:    %8.1f MillionBytes/s\n", bwSmall)
		fmt.Printf("  RC 4MB bandwidth:     %8.1f MillionBytes/s\n", bwLarge)
		fmt.Println()
	}
	fmt.Println("Note how 64KB messages collapse with distance while 4MB")
	fmt.Println("messages hold the wire rate: RC's bounded in-flight window")
	fmt.Println("cannot cover the WAN bandwidth-delay product with small")
	fmt.Println("messages (paper Fig. 5).")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
