// NFS across the WAN: mount a file server from the remote cluster over
// both transports the paper compares — NFS/RDMA (direct data placement)
// and NFS over TCP/IPoIB — and watch the winner flip as the emulated
// distance grows (paper Fig. 13).
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/ipoib"
	"repro/internal/nfs"
	"repro/internal/sim"
)

func run(transport string, delay sim.Time, threads int) float64 {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	defer env.Shutdown()
	var srv *nfs.Server
	var cl *nfs.Client
	var err error
	switch transport {
	case "RDMA":
		srv, cl = nfs.MountRDMA(tb.B[0], tb.A[0])
	case "IPoIB-RC":
		srv, cl, err = nfs.MountTCP(env, tb.B[0], tb.A[0], ipoib.Connected)
	case "IPoIB-UD":
		srv, cl, err = nfs.MountTCP(env, tb.B[0], tb.A[0], ipoib.Datagram)
	}
	if err != nil {
		panic(err)
	}
	srv.AddSyntheticFile("data", 128<<20)
	return nfs.IOzone(env, cl, "data", nfs.IOzoneConfig{
		FileSize: 128 << 20, RecordSize: 256 << 10, Threads: threads,
	})
}

func main() {
	const threads = 8
	fmt.Printf("NFS read throughput, %d IOzone threads, 128 MB file, 256 KB records\n\n", threads)
	fmt.Printf("%-14s %12s %12s %12s\n", "delay", "RDMA", "IPoIB-RC", "IPoIB-UD")
	for _, us := range []float64{0, 10, 100, 1000} {
		d := sim.Micros(us)
		fmt.Printf("%-14s", fmt.Sprintf("%.0f us", us))
		for _, tr := range []string{"RDMA", "IPoIB-RC", "IPoIB-UD"} {
			fmt.Printf(" %10.1f ", run(tr, d, threads))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("NFS/RDMA wins while the 4 KB-fragment pipeline covers the")
	fmt.Println("bandwidth-delay product; at large separations the TCP window")
	fmt.Println("of NFS/IPoIB-RC keeps more data in flight and takes over —")
	fmt.Println("the crossover the paper reports between Figs. 13(b) and (c).")
}
