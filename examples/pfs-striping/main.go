// Parallel file system striping over the WAN: the paper's future work
// ("parallel file-systems" over IB range extension). A single NFS/RDMA
// mount is limited by one connection's in-flight window once the link gets
// long; striping the file across object servers multiplies the in-flight
// data and recovers aggregate read bandwidth.
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/pfs"
	"repro/internal/sim"
)

func measure(oss int, delay sim.Time) float64 {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: oss, Delay: delay})
	defer env.Shutdown()
	fs := pfs.New(tb.B, 0) // 1 MB stripes
	fs.AddSyntheticFile("dataset", 64<<20)
	cl := fs.Mount(tb.A[0])
	return pfs.Throughput(env, cl, "dataset", 8, 1<<20)
}

func main() {
	fmt.Println("Striped parallel-FS read throughput across the WAN (MillionBytes/s)")
	fmt.Println("64 MB file, 1 MB stripes, 8 reader threads")
	fmt.Println()
	fmt.Printf("%-14s %10s %10s %10s\n", "delay", "1 OSS", "2 OSS", "4 OSS")
	for _, us := range []float64{0, 100, 1000, 10000} {
		d := sim.Micros(us)
		fmt.Printf("%-14s", fmt.Sprintf("%.0f us", us))
		for _, oss := range []int{1, 2, 4} {
			fmt.Printf(" %9.1f ", measure(oss, d))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("At low delay one server already covers the pipe; at 1-10 ms the")
	fmt.Println("per-connection window binds and striping multiplies throughput —")
	fmt.Println("the same medicine as parallel TCP streams, applied to storage.")
}
