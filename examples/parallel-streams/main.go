// Parallel streams: the paper's simplest WAN optimization. A single TCP
// stream over IPoIB is limited to window/RTT once the link gets long;
// multiple streams, each with its own window, fill the pipe again
// (paper Figs. 6(b) and 7(b)).
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/ipoib"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

func throughput(streams int, delay sim.Time) float64 {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	net := ipoib.NewNetwork()
	sa := tcpsim.NewStack(net.Attach(tb.A[0].HCA, ipoib.Datagram, 0), tcpsim.Config{})
	sb := tcpsim.NewStack(net.Attach(tb.B[0].HCA, ipoib.Datagram, 0), tcpsim.Config{})
	for i := 0; i < streams; i++ {
		port := 5000 + i
		ln := sb.Listen(port)
		env.Go("srv", func(p *sim.Proc) { ln.Accept(p) })
		env.Go("cli", func(p *sim.Proc) {
			c, err := sa.Dial(p, sb.Addr(), port)
			if err != nil {
				panic(err)
			}
			for {
				if err := c.WriteSynthetic(p, 2<<20); err != nil {
					panic(err)
				}
			}
		})
	}
	dur := 60*sim.Millisecond + 60*delay
	env.RunUntil(dur / 2)
	mid := sb.Stats().RxBytes
	env.RunUntil(dur)
	bw := float64(sb.Stats().RxBytes-mid) / (dur / 2).Seconds() / 1e6
	env.Shutdown()
	return bw
}

func main() {
	fmt.Println("IPoIB-UD throughput vs parallel TCP streams (MillionBytes/s)")
	fmt.Println()
	fmt.Printf("%-10s", "streams")
	delays := []sim.Time{0, sim.Micros(100), sim.Micros(1000), sim.Micros(10000)}
	for _, d := range delays {
		fmt.Printf("%12s", d.String())
	}
	fmt.Println()
	for _, n := range []int{1, 2, 4, 8} {
		fmt.Printf("%-10d", n)
		for _, d := range delays {
			fmt.Printf("%12.1f", throughput(n, d))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("At zero delay the host stack is the ceiling and extra streams")
	fmt.Println("add nothing; at 1-10 ms each stream is window-limited and the")
	fmt.Println("aggregate grows nearly linearly until the stack ceiling returns.")
}
