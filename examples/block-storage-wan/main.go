// Block storage across the WAN: iSCSI over SDP, the related work's second
// workload on the Obsidian Longbows. A queue-depth-1 initiator pays a full
// round trip per command; tagged command queueing fills the pipe — the
// block-storage incarnation of the paper's parallel-streams medicine.
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/iscsi"
	"repro/internal/sim"
)

// read measures sequential read throughput (MillionBytes/s) at the given
// queue depth with 32 KB commands.
func read(delay sim.Time, qd int) float64 {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: delay})
	defer env.Shutdown()
	iscsi.NewTarget(tb.B[0], 3260, 1<<22) // 2 GB LUN
	const total = 16 << 20
	const nblk = 64 // 32 KB per command
	var bw float64
	env.Go("initiator", func(p *sim.Proc) {
		ini := iscsi.Login(p, tb.A[0], tb.B[0], 3260)
		start := p.Now()
		cmds := total / (nblk * iscsi.BlockSize)
		var inflight []*iscsi.Command
		lba := uint64(0)
		for issued := 0; issued < cmds || len(inflight) > 0; {
			for issued < cmds && len(inflight) < qd {
				inflight = append(inflight, ini.ReadAsync(p, lba, nblk))
				lba += nblk
				issued++
			}
			inflight[0].Await(p)
			inflight = inflight[1:]
		}
		bw = float64(total) / (p.Now() - start).Seconds() / 1e6
		env.Stop()
	})
	env.Run()
	return bw
}

func main() {
	fmt.Println("iSCSI-over-SDP sequential read throughput (MillionBytes/s)")
	fmt.Println("32 KB commands, 16 MB transfer")
	fmt.Println()
	fmt.Printf("%-12s %8s %8s %8s %8s\n", "delay", "QD=1", "QD=4", "QD=8", "QD=16")
	for _, us := range []float64{0, 100, 1000, 10000} {
		fmt.Printf("%-12s", fmt.Sprintf("%.0f us", us))
		for _, qd := range []int{1, 4, 8, 16} {
			fmt.Printf(" %7.1f ", read(sim.Micros(us), qd))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Queue depth is to block storage what parallel streams are to")
	fmt.Println("TCP and client threads are to NFS: more requests in flight to")
	fmt.Println("cover the bandwidth-delay product of the long link.")
}
