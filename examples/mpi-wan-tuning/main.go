// MPI WAN tuning: reproduce the paper's headline protocol optimization
// (Fig. 9) on a 200 km emulated link — adjust the MPI eager/rendezvous
// threshold to the WAN delay and watch medium-message bandwidth recover.
// Also demonstrates the adaptive variant that probes the link at startup.
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sim"
)

const delayUS = 1000 // 200 km of fiber, one way

func measure(cfg mpi.Config, size int) float64 {
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(delayUS)})
	w := mpi.NewWorld(env, []*cluster.Node{tb.A[0], tb.B[0]}, cfg)
	defer w.Shutdown()
	return mpi.Bandwidth(w, size, 4)
}

func main() {
	fmt.Printf("MPI bandwidth across a %dus (200 km) WAN link\n\n", delayUS)
	fmt.Printf("%-12s %-18s %-18s %s\n", "size", "default (8K)", "tuned (64K)", "gain")
	for _, size := range []int{8 << 10, 16 << 10, 32 << 10, 64 << 10} {
		orig := measure(mpi.Config{}, size)
		tuned := measure(mpi.Config{EagerThreshold: core.TunedThreshold}, size)
		fmt.Printf("%-12d %10.1f MB/s    %10.1f MB/s    %+.0f%%\n",
			size, orig, tuned, (tuned/orig-1)*100)
	}

	// The adaptive tuner probes the link instead of being told the delay.
	env := sim.NewEnv()
	tb := cluster.New(env, cluster.Config{NodesA: 1, NodesB: 1, Delay: sim.Micros(delayUS)})
	cfg := core.AutoTune(env, tb.A[0], tb.B[0])
	fmt.Printf("\nAutoTune probed the link and chose threshold = %d bytes\n", cfg.EagerThreshold)
	fmt.Println("(WAN separations vary and can be dynamic, so the paper")
	fmt.Println("recommends adaptive tuning of the protocol threshold.)")
}
